// Tests for the observability subsystem (src/obs): trace span nesting and
// export, metrics aggregation across pool workers, tear-free concurrent
// logging, and the end-to-end contract that a traced pipeline run emits
// valid Chrome trace JSON with all four stage spans while staying
// deterministic across thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/pipeline.hpp"
#include "obs/exposition.hpp"
#include "obs/json_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace scs {
namespace {

namespace fs = std::filesystem;

std::string temp_path(const char* name) {
  return (fs::temp_directory_path() / name).string();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

const TraceEvent* find_event(const std::vector<TraceEvent>& events,
                             const std::string& name) {
  for (const TraceEvent& e : events)
    if (e.name == name) return &e;
  return nullptr;
}

ControlLaw pendulum_teacher() {
  return [](const Vec& x) {
    const double x1 = x[0];
    return Vec{9.875 * x1 - 1.56 * x1 * x1 * x1 + 0.056 * std::pow(x1, 5) -
               x1 - 2.0 * x[1]};
  };
}

class ObsTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace_stop();
    trace_clear();
    set_metrics_enabled(false);
    MetricsRegistry::instance().reset_for_tests();
  }
  void TearDown() override {
    trace_stop();
    trace_clear();
    set_metrics_enabled(false);
  }
};

TEST_F(ObsTest, SpansAreNoOpsWhenDisabled) {
  {
    TraceSpan span("disabled");
    trace_instant("disabled.instant");
  }
  EXPECT_TRUE(trace_snapshot().empty());
}

TEST_F(ObsTest, SpanNestingIsContained) {
  trace_start(temp_path("scs_obs_nest.json"));
  {
    TraceSpan outer("outer");
    {
      TraceSpan inner("inner");
      trace_instant("tick");
    }
  }
  const std::vector<TraceEvent> events = trace_snapshot();
  const TraceEvent* outer = find_event(events, "outer");
  const TraceEvent* inner = find_event(events, "inner");
  const TraceEvent* tick = find_event(events, "tick");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  ASSERT_NE(tick, nullptr);
  EXPECT_EQ(outer->phase, 'X');
  EXPECT_EQ(tick->phase, 'i');
  // Child interval inside the parent interval, instant inside the child.
  EXPECT_GE(inner->ts_ns, outer->ts_ns);
  EXPECT_LE(inner->ts_ns + inner->dur_ns, outer->ts_ns + outer->dur_ns);
  EXPECT_GE(tick->ts_ns, inner->ts_ns);
  EXPECT_LE(tick->ts_ns, inner->ts_ns + inner->dur_ns);
}

TEST_F(ObsTest, CloseEndsSpanEarlyAndDestructorBecomesNoOp) {
  trace_start(temp_path("scs_obs_close.json"));
  {
    TraceSpan span("early");
    span.close();
    span.close();  // idempotent
  }
  int count = 0;
  for (const TraceEvent& e : trace_snapshot())
    if (e.name == "early") ++count;
  EXPECT_EQ(count, 1);
}

TEST_F(ObsTest, TraceWriteEmitsValidChromeJson) {
  const std::string path = temp_path("scs_obs_trace.json");
  trace_start(path);
  {
    TraceSpan span("write.me");
    trace_instant("write.instant");
  }
  ASSERT_TRUE(trace_write(path));
  const std::string blob = slurp(path);
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error;
  EXPECT_NE(blob.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(blob.find("\"write.me\""), std::string::npos);
  EXPECT_NE(blob.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, TraceIdScopeTagsEventsAndRestoresOnExit) {
  trace_start(temp_path("scs_obs_rid.json"));
  trace_instant("before");
  {
    TraceIdScope outer("req-a");
    trace_instant("outer.tick");
    {
      TraceSpan span("outer.span");
      TraceIdScope inner("req-b");
      trace_instant("inner.tick");
    }
    // Back to the outer id after the nested scope unwinds.
    trace_instant("outer.again");
  }
  trace_instant("after");
  const std::vector<TraceEvent> events = trace_snapshot();
  EXPECT_EQ(find_event(events, "before")->id, "");
  EXPECT_EQ(find_event(events, "outer.tick")->id, "req-a");
  EXPECT_EQ(find_event(events, "inner.tick")->id, "req-b");
  // The nested scope unwound before the span closed: back to req-a.
  EXPECT_EQ(find_event(events, "outer.span")->id, "req-a");
  EXPECT_EQ(find_event(events, "outer.again")->id, "req-a");
  EXPECT_EQ(find_event(events, "after")->id, "");
}

TEST_F(ObsTest, TraceCompleteEmitsCrossThreadSpan) {
  trace_start(temp_path("scs_obs_complete.json"));
  const std::int64_t start = trace_now_ns();
  TraceIdScope id("req-x");
  trace_complete("cross.thread", start);
  const std::vector<TraceEvent> events = trace_snapshot();
  const TraceEvent* e = find_event(events, "cross.thread");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->phase, 'X');
  EXPECT_EQ(e->ts_ns, start);
  EXPECT_GE(e->dur_ns, 0);
  EXPECT_EQ(e->id, "req-x");
}

TEST_F(ObsTest, ParallelForPropagatesCorrelationId) {
  trace_start(temp_path("scs_obs_rid_pool.json"));
  TraceIdScope id("req-pool");
  parallel_for(64, 4, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      if (i % 16 == 0) trace_instant("pool.tick");
  });
  int ticks = 0;
  for (const TraceEvent& e : trace_snapshot())
    if (e.name == "pool.tick") {
      ++ticks;
      // Workers inherit the submitting thread's correlation id.
      EXPECT_EQ(e.id, "req-pool");
    }
  EXPECT_EQ(ticks, 4);
}

TEST_F(ObsTest, TraceWriteEmitsRidArgs) {
  const std::string path = temp_path("scs_obs_rid_write.json");
  trace_start(path);
  {
    TraceIdScope id("req-42");
    trace_instant("tagged");
  }
  trace_instant("untagged");
  ASSERT_TRUE(trace_write(path));
  const std::string blob = slurp(path);
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error;
  EXPECT_NE(blob.find("\"args\":{\"rid\":\"req-42\"}"), std::string::npos)
      << blob;
  // The untagged event carries no args object at all.
  const std::size_t untagged = blob.find("\"untagged\"");
  ASSERT_NE(untagged, std::string::npos);
  EXPECT_EQ(blob.find("\"rid\"", untagged), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, CountersAggregateExactlyAcrossPoolWorkers) {
  set_metrics_enabled(true);
  Counter& c = MetricsRegistry::instance().counter("test.parallel_adds");
  constexpr std::size_t kN = 10000;
  parallel_for(kN, 16, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) c.add(1);
  });
  EXPECT_EQ(c.value(), kN);
}

TEST_F(ObsTest, GaugeTracksMaxAndHistogramBuckets) {
  Gauge& g = MetricsRegistry::instance().gauge("test.depth");
  g.set(3);
  g.set(9);
  g.set(2);
  EXPECT_EQ(g.value(), 2);
  EXPECT_EQ(g.max(), 9);

  Histogram& h = MetricsRegistry::instance().histogram("test.iters");
  h.observe(1);
  h.observe(2);
  h.observe(1000);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 1003u);
  EXPECT_EQ(h.max(), 1000u);
}

TEST_F(ObsTest, HistogramQuantileUpperBounds) {
  Histogram& h = MetricsRegistry::instance().histogram("test.quantiles");
  for (int i = 0; i < 90; ++i) h.observe(3);    // bucket le=4
  for (int i = 0; i < 10; ++i) h.observe(500);  // bucket le=512
  EXPECT_EQ(h.quantile_upper(0.5), 4u);
  EXPECT_EQ(h.quantile_upper(0.9), 4u);
  // The tail bucket's bound (512) is clamped to the exact tracked max.
  EXPECT_EQ(h.quantile_upper(0.99), 500u);
  EXPECT_EQ(h.quantile_upper(1.0), 500u);
  Histogram& empty = MetricsRegistry::instance().histogram("test.empty_q");
  EXPECT_EQ(empty.quantile_upper(0.5), 0u);
}

TEST_F(ObsTest, EmptyHistogramQuantilesRenderAsNullNeverZero) {
  set_metrics_enabled(true);
  // Pin the raw API: quantile_upper on an empty histogram returns 0 --
  // callers that render must therefore check count() and emit null.
  Histogram& h = MetricsRegistry::instance().histogram("test.never_obs");
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile_upper(0.5), 0u);
  EXPECT_EQ(h.quantile_upper(0.99), 0u);
  const std::string blob = MetricsRegistry::instance().json();
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error;
  const std::size_t at = blob.find("test.never_obs");
  ASSERT_NE(at, std::string::npos);
  // JSON emits explicit null, not a misleading 0.
  EXPECT_NE(blob.find("\"p50\":null", at), std::string::npos) << blob;
  EXPECT_NE(blob.find("\"p99\":null", at), std::string::npos);
  // The Prometheus exposition omits quantile lines entirely for an empty
  // histogram, keeping buckets/_sum/_count.
  const std::string prom = prometheus_text(MetricsRegistry::instance().snapshot());
  EXPECT_NE(prom.find("scs_test_never_obs_count 0"), std::string::npos)
      << prom;
  EXPECT_EQ(prom.find("scs_test_never_obs_quantile"), std::string::npos);
}

TEST_F(ObsTest, PrometheusTextExposesAllInstrumentKinds) {
  set_metrics_enabled(true);
  MetricsRegistry::instance().counter("serve.warm_hits").add(3);
  MetricsRegistry::instance().gauge("serve.in_flight").set(2);
  Histogram& h = MetricsRegistry::instance().histogram("serve.wait.ms");
  h.observe(3);
  h.observe(700);
  const std::string prom =
      prometheus_text(MetricsRegistry::instance().snapshot());
  EXPECT_NE(prom.find("# TYPE scs_serve_warm_hits counter"),
            std::string::npos)
      << prom;
  EXPECT_NE(prom.find("scs_serve_warm_hits 3"), std::string::npos);
  EXPECT_NE(prom.find("scs_serve_in_flight 2"), std::string::npos);
  EXPECT_NE(prom.find("scs_serve_in_flight_max 2"), std::string::npos);
  // Dots sanitize to underscores; buckets are cumulative with +Inf last.
  EXPECT_NE(prom.find("scs_serve_wait_ms_bucket{le=\"4\"} 1"),
            std::string::npos);
  EXPECT_NE(prom.find("scs_serve_wait_ms_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(prom.find("scs_serve_wait_ms_count 2"), std::string::npos);
  EXPECT_NE(prom.find("scs_serve_wait_ms_quantile{q=\"0.99\"}"),
            std::string::npos);
}

TEST_F(ObsTest, RegistryJsonIncludesDerivedQuantiles) {
  set_metrics_enabled(true);
  Histogram& h = MetricsRegistry::instance().histogram("test.qjson");
  for (int i = 0; i < 100; ++i) h.observe(7);
  const std::string blob = MetricsRegistry::instance().json();
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error;
  // All samples are 7: every quantile's bucket bound (8) clamps to max=7.
  EXPECT_NE(blob.find("\"p50\":7"), std::string::npos) << blob;
  EXPECT_NE(blob.find("\"p90\":7"), std::string::npos);
  EXPECT_NE(blob.find("\"p99\":7", blob.find("test.qjson")),
            std::string::npos);
}

TEST_F(ObsTest, RegistryJsonIsValidAndSorted) {
  set_metrics_enabled(true);
  MetricsRegistry::instance().counter("b.second").add(2);
  MetricsRegistry::instance().counter("a.first").add(1);
  MetricsRegistry::instance().gauge("g.depth").set(5);
  MetricsRegistry::instance().histogram("h.iters").observe(7);
  const std::string blob = MetricsRegistry::instance().json();
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error << "\n" << blob;
  EXPECT_LT(blob.find("a.first"), blob.find("b.second"));
  EXPECT_NE(blob.find("\"gauges\""), std::string::npos);
  EXPECT_NE(blob.find("\"histograms\""), std::string::npos);
}

TEST_F(ObsTest, MetricsWriteDumpsJsonFile) {
  set_metrics_enabled(true);
  MetricsRegistry::instance().counter("test.dump").add(4);
  const std::string path = temp_path("scs_obs_metrics.json");
  ASSERT_TRUE(metrics_write(path));
  const std::string blob = slurp(path);
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error;
  EXPECT_NE(blob.find("\"test.dump\":4"), std::string::npos);
  std::remove(path.c_str());
}

TEST_F(ObsTest, ConcurrentLogLinesNeverTear) {
  // Redirect stderr, hammer log_line from several tagged threads, and
  // require every captured line to be exactly one of the emitted lines.
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  const LogLevel old_level = log_level();
  set_log_level(LogLevel::kInfo);

  constexpr int kThreads = 4;
  constexpr int kLines = 200;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      set_log_tag("t" + std::to_string(t));
      for (int i = 0; i < kLines; ++i)
        log_info("payload-", t, "-", i, "-abcdefghijklmnopqrstuvwxyz");
    });
  }
  for (auto& th : threads) th.join();
  set_log_level(old_level);
  std::cerr.rdbuf(old);

  std::istringstream in(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(in, line)) {
    ++count;
    // "[scs][t<k>] payload-<k>-<i>-abc...z" -- a torn/interleaved line
    // would break the prefix, the tag/payload agreement, or the suffix.
    ASSERT_EQ(line.rfind("[scs][t", 0), 0u) << line;
    const char tag = line[7];
    ASSERT_GE(tag, '0');
    ASSERT_LT(tag, '0' + kThreads);
    const std::string expected_mid = std::string("] payload-") + tag + "-";
    ASSERT_NE(line.find(expected_mid), std::string::npos) << line;
    ASSERT_EQ(line.substr(line.size() - 27), "-abcdefghijklmnopqrstuvwxyz")
        << line;
  }
  EXPECT_EQ(count, kThreads * kLines);
}

TEST_F(ObsTest, LogTagScopeRestoresPreviousTag) {
  set_log_tag("outer");
  {
    LogTagScope scope("inner");
    EXPECT_EQ(log_tag(), "inner");
  }
  EXPECT_EQ(log_tag(), "outer");
  set_log_tag("");
}

TEST_F(ObsTest, TracedPipelineEmitsAllStageSpansAndStaysDeterministic) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.seed = 3;
  cfg.obs.trace_path = temp_path("scs_obs_pipeline_trace.json");
  cfg.obs.metrics_path = temp_path("scs_obs_pipeline_metrics.json");

  const std::size_t default_threads = parallel_threads();
  set_parallel_threads(1);
  const SynthesisResult r1 =
      synthesize_from_law(bench, pendulum_teacher(), cfg);
  const std::vector<TraceEvent> events = trace_snapshot();
  trace_stop();
  trace_clear();
  set_parallel_threads(4);
  const SynthesisResult r4 =
      synthesize_from_law(bench, pendulum_teacher(), cfg);
  trace_stop();
  trace_clear();
  set_parallel_threads(default_threads);

  // Tracing on at both widths: bitwise-identical outcomes.
  EXPECT_EQ(r1.verdict, r4.verdict);
  ASSERT_EQ(r1.controller.size(), r4.controller.size());
  for (std::size_t i = 0; i < r1.controller.size(); ++i)
    EXPECT_EQ(r1.controller[i].to_string(17), r4.controller[i].to_string(17));
  EXPECT_EQ(r1.threads_used, 1);
  EXPECT_EQ(r4.threads_used, 4);

  // Stage spans nest under the run span; the SDP loop leaves instants.
  const TraceEvent* run = find_event(events, "synthesize:C1");
  ASSERT_NE(run, nullptr);
  for (const char* stage : {"stage.pac", "stage.barrier", "stage.validation"}) {
    const TraceEvent* e = find_event(events, stage);
    ASSERT_NE(e, nullptr) << stage;
    EXPECT_GE(e->ts_ns, run->ts_ns) << stage;
    EXPECT_LE(e->ts_ns + e->dur_ns, run->ts_ns + run->dur_ns) << stage;
  }
  ASSERT_NE(find_event(events, "sdp.iteration"), nullptr);

  // The per-run ObsRunScope wrote both files; both must parse.
  std::string error;
  EXPECT_TRUE(json_parse_valid(slurp(cfg.obs.trace_path), &error)) << error;
  EXPECT_TRUE(json_parse_valid(slurp(cfg.obs.metrics_path), &error)) << error;
  // The metrics snapshot also landed on the result.
  EXPECT_FALSE(r1.metrics_json.empty());
  EXPECT_TRUE(json_parse_valid(r1.metrics_json, &error)) << error;
  EXPECT_NE(r1.metrics_json.find("sdp.iterations"), std::string::npos);
  std::remove(cfg.obs.trace_path.c_str());
  std::remove(cfg.obs.metrics_path.c_str());
}

TEST_F(ObsTest, FullSynthesizeTracesRlStage) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.rl_episodes = 3;
  cfg.seed = 5;
  cfg.obs.trace_path = temp_path("scs_obs_rl_trace.json");
  const SynthesisResult result = synthesize(bench, cfg);
  const std::vector<TraceEvent> events = trace_snapshot();
  trace_stop();
  trace_clear();
  EXPECT_GT(result.threads_used, 0);
  // Every stage that actually ran appears as a span. RL and PAC always run;
  // at this tiny training budget the pipeline may stop at the barrier or
  // validation stage, in which case the later spans legitimately never open
  // (the from-law test above covers the full pac/barrier/validation chain).
  EXPECT_NE(find_event(events, "stage.rl"), nullptr);
  EXPECT_NE(find_event(events, "stage.pac"), nullptr);
  if (result.success || result.failure_stage == "validation") {
    EXPECT_NE(find_event(events, "stage.barrier"), nullptr);
    EXPECT_NE(find_event(events, "stage.validation"), nullptr);
  } else if (result.failure_stage == "barrier") {
    EXPECT_NE(find_event(events, "stage.barrier"), nullptr);
  }
  std::string error;
  EXPECT_TRUE(json_parse_valid(slurp(cfg.obs.trace_path), &error)) << error;
  std::remove(cfg.obs.trace_path.c_str());
}

}  // namespace
}  // namespace scs
