// Property-based tests of the Chebyshev fitter: support/equioscillation
// structure at the optimum, affine invariances, and monotonicity in the
// template.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/minimax_fit.hpp"
#include "poly/basis.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

Mat random_design(std::size_t k, std::size_t v, Rng& rng) {
  Mat d(k, v);
  for (std::size_t i = 0; i < k; ++i) {
    d(i, 0) = 1.0;
    for (std::size_t j = 1; j < v; ++j) d(i, j) = rng.uniform(-1.0, 1.0);
  }
  return d;
}

class MinimaxSupport : public ::testing::TestWithParam<int> {};

TEST_P(MinimaxSupport, OptimumHasEnoughActiveSamples) {
  // Chebyshev optimality for a v-dimensional family needs at least v+1
  // active (max-residual) samples in general position.
  Rng rng(GetParam());
  const std::size_t k = 200;
  const std::size_t v = 2 + rng.index(3);
  const Mat design = random_design(k, v, rng);
  Vec targets(k);
  for (std::size_t i = 0; i < k; ++i) targets[i] = rng.uniform(-1.0, 1.0);
  const MinimaxFitResult fit = minimax_fit(design, targets);
  if (!fit.exact) GTEST_SKIP();  // exchange hit its round cap
  EXPECT_GE(fit.support.size(), v + 1) << "v = " << v;
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimaxSupport, ::testing::Range(1, 13));

TEST(MinimaxProperty, TargetShiftShiftsConstantCoefficient) {
  Rng rng(31);
  const Mat design = random_design(150, 3, rng);
  Vec targets(150);
  for (auto& t : targets.data()) t = rng.uniform(-1.0, 1.0);
  const MinimaxFitResult base = minimax_fit(design, targets);
  Vec shifted = targets;
  for (auto& t : shifted.data()) t += 5.0;
  const MinimaxFitResult moved = minimax_fit(design, shifted);
  EXPECT_NEAR(moved.error, base.error, 1e-6 + 1e-4 * base.error);
  EXPECT_NEAR(moved.coefficients[0], base.coefficients[0] + 5.0, 1e-4);
}

TEST(MinimaxProperty, TargetScalingScalesError) {
  Rng rng(32);
  const Mat design = random_design(150, 3, rng);
  Vec targets(150);
  for (auto& t : targets.data()) t = rng.uniform(-1.0, 1.0);
  const MinimaxFitResult base = minimax_fit(design, targets);
  Vec scaled = targets;
  for (auto& t : scaled.data()) t *= 3.0;
  const MinimaxFitResult tripled = minimax_fit(design, scaled);
  EXPECT_NEAR(tripled.error, 3.0 * base.error, 1e-5 + 1e-3 * base.error);
}

TEST(MinimaxProperty, LargerTemplateNeverWorse) {
  // Adding basis columns can only reduce (or keep) the optimal error.
  Rng rng(33);
  const std::size_t k = 500;
  Mat design5(k, 5);
  Vec targets(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double x = rng.uniform(-1.0, 1.0);
    double p = 1.0;
    for (std::size_t j = 0; j < 5; ++j) {
      design5(i, j) = p;
      p *= x;
    }
    targets[i] = std::sin(3.0 * x);
  }
  Mat design3(k, 3);
  for (std::size_t i = 0; i < k; ++i)
    for (std::size_t j = 0; j < 3; ++j) design3(i, j) = design5(i, j);
  const double e3 = minimax_fit(design3, targets).error;
  const double e5 = minimax_fit(design5, targets).error;
  EXPECT_LE(e5, e3 + 1e-9);
}

TEST(MinimaxProperty, SubsetErrorLowerBoundsFullError) {
  // The scenario program over fewer samples is a relaxation.
  Rng rng(34);
  const std::size_t k = 400;
  const Mat design = random_design(k, 4, rng);
  Vec targets(k);
  for (auto& t : targets.data()) t = rng.uniform(-2.0, 2.0);
  Mat half(k / 2, 4);
  Vec half_t(k / 2);
  for (std::size_t i = 0; i < k / 2; ++i) {
    half.set_row(i, design.row(i));
    half_t[i] = targets[i];
  }
  const double e_half = minimax_fit(half, half_t).error;
  const double e_full = minimax_fit(design, targets).error;
  EXPECT_LE(e_half, e_full + 1e-6);
}

}  // namespace
}  // namespace scs
