// Serving-subsystem tests: request wire format, the bounded sharded
// priority queue, dedupe/exactly-one-cold under concurrent submission,
// warm-hit identity, graceful drain, ledger integrity, queued-job
// cancellation, and the spool protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/ledger.hpp"
#include "obs/trace.hpp"
#include "serve/job_queue.hpp"
#include "serve/request.hpp"
#include "serve/server.hpp"
#include "serve/spool.hpp"
#include "util/hash.hpp"

namespace scs {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) : path(fs::temp_directory_path() / tag) {
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::create_directories(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

JobRequest fast_request(std::uint64_t seed) {
  JobRequest r;
  r.benchmark = "C1";
  r.seed = seed;
  r.fast_mode = true;
  r.rl_episodes = 2;
  return r;
}

// ---- Request wire format.

TEST(JobRequestWire, RoundTripsThroughJson) {
  JobRequest r;
  r.id = "my \"job\"";  // escaping must survive
  r.benchmark = "C3";
  r.seed = 42;
  r.fast_mode = true;
  r.rl_episodes = 17;
  r.priority = -3;
  r.deadline_seconds = 1.5;

  JobRequest back;
  std::string error;
  ASSERT_TRUE(parse_job_request(job_request_json(r), &back, &error)) << error;
  EXPECT_EQ(back.id, r.id);
  EXPECT_EQ(back.benchmark, r.benchmark);
  EXPECT_EQ(back.seed, r.seed);
  EXPECT_EQ(back.fast_mode, r.fast_mode);
  EXPECT_EQ(back.rl_episodes, r.rl_episodes);
  EXPECT_EQ(back.priority, r.priority);
  EXPECT_DOUBLE_EQ(back.deadline_seconds, r.deadline_seconds);
}

TEST(JobRequestWire, RejectsMalformedRequests) {
  JobRequest out;
  std::string error;
  EXPECT_FALSE(parse_job_request("not json", &out, &error));
  EXPECT_FALSE(parse_job_request("[1,2]", &out, &error));
  EXPECT_FALSE(parse_job_request("{\"seed\":1}", &out, &error));
  EXPECT_NE(error.find("benchmark"), std::string::npos);
  // Defaults apply for optional fields.
  ASSERT_TRUE(parse_job_request("{\"benchmark\":\"C1\"}", &out, &error));
  EXPECT_EQ(out.seed, 1u);
  EXPECT_EQ(out.rl_episodes, -1);
}

TEST(JobRequestWire, ServeKeyIgnoresSchedulingFields) {
  // The dedupe key is synthesis identity: scheduling knobs (priority,
  // deadline, client id) must not fragment the cache.
  JobRequest a = fast_request(5);
  JobRequest b = a;
  b.id = "different-client";
  b.priority = 9;
  b.deadline_seconds = 123.0;
  EXPECT_EQ(serve_key(a), serve_key(b));

  JobRequest c = a;
  c.seed = 6;
  EXPECT_NE(serve_key(a), serve_key(c));
  JobRequest d = a;
  d.fast_mode = false;
  EXPECT_NE(serve_key(a), serve_key(d));
}

TEST(JobRequestWire, KnowsAllBenchmarks) {
  EXPECT_TRUE(benchmark_id_from_name("C1").has_value());
  EXPECT_TRUE(benchmark_id_from_name("C10").has_value());
  EXPECT_FALSE(benchmark_id_from_name("C99").has_value());
  EXPECT_FALSE(benchmark_id_from_name("").has_value());
}

// ---- ShardedJobQueue.

TEST(ShardedJobQueue, PopsByPriorityThenFifo) {
  ShardedJobQueue q(16, 4);
  std::vector<int> order;
  for (int i = 0; i < 6; ++i) {
    const int priority = (i % 2 == 0) ? 0 : 5;
    ASSERT_EQ(q.push(priority, [&order, i] { order.push_back(i); }),
              ShardedJobQueue::Push::kAccepted);
  }
  std::function<void()> fn;
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(q.pop(fn));
    fn();
  }
  // Priority 5 first (1, 3, 5 in arrival order), then priority 0 (0, 2, 4).
  EXPECT_EQ(order, (std::vector<int>{1, 3, 5, 0, 2, 4}));
  EXPECT_EQ(q.size(), 0u);
}

TEST(ShardedJobQueue, EnforcesCapacityAndReportsFull) {
  ShardedJobQueue q(2, 2);
  EXPECT_EQ(q.push(0, [] {}), ShardedJobQueue::Push::kAccepted);
  EXPECT_EQ(q.push(0, [] {}), ShardedJobQueue::Push::kAccepted);
  EXPECT_EQ(q.push(0, [] {}), ShardedJobQueue::Push::kFull);
  std::function<void()> fn;
  ASSERT_TRUE(q.pop(fn));
  EXPECT_EQ(q.push(0, [] {}), ShardedJobQueue::Push::kAccepted);
}

TEST(ShardedJobQueue, CloseDrainsThenStops) {
  ShardedJobQueue q(8);
  ASSERT_EQ(q.push(0, [] {}), ShardedJobQueue::Push::kAccepted);
  ASSERT_EQ(q.push(0, [] {}), ShardedJobQueue::Push::kAccepted);
  q.close();
  EXPECT_EQ(q.push(0, [] {}), ShardedJobQueue::Push::kClosed);
  std::function<void()> fn;
  EXPECT_TRUE(q.pop(fn));   // accepted items stay poppable
  EXPECT_TRUE(q.pop(fn));
  EXPECT_FALSE(q.pop(fn));  // drained + closed -> consumer exit signal
}

TEST(ShardedJobQueue, ConcurrentPushPopLosesNothing) {
  // 4 producers x 250 items against 4 consumers; every item runs exactly
  // once and the capacity bound holds throughout.
  ShardedJobQueue q(64, 4);
  constexpr int kProducers = 4, kPerProducer = 250;
  std::atomic<int> executed{0}, rejected{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerProducer; ++i) {
        for (;;) {
          const auto outcome = q.push(i % 3, [&executed] { ++executed; });
          if (outcome == ShardedJobQueue::Push::kAccepted) break;
          ASSERT_EQ(outcome, ShardedJobQueue::Push::kFull);
          ++rejected;
          std::this_thread::yield();
        }
        ASSERT_LE(q.size(), 64u);
      }
    });
  }
  std::vector<std::thread> consumers;
  for (int c = 0; c < 4; ++c) {
    consumers.emplace_back([&] {
      std::function<void()> fn;
      while (q.pop(fn)) fn();
    });
  }
  for (auto& t : threads) t.join();
  q.close();
  for (auto& t : consumers) t.join();
  EXPECT_EQ(executed.load(), kProducers * kPerProducer);
}

// ---- SynthesisServer: the exactly-one-cold stress (satellite: concurrent
// submission), warm-hit identity, drain, ledger integrity.

TEST(SynthesisServer, ConcurrentDuplicateSubmitsRunExactlyOneColdPerKey) {
  TempDir ledger_dir("scs_serve_stress_ledger");
  const std::string ledger = (ledger_dir.path / "ledger.jsonl").string();

  ServerConfig config;
  config.workers = 2;
  config.queue_capacity = 64;
  config.store.mode = StoreConfig::Mode::kOff;
  config.ledger_path = ledger;

  constexpr int kUniqueKeys = 2;
  constexpr int kThreads = 6;

  std::atomic<std::uint64_t> accepted{0}, attached{0};
  {
    SynthesisServer server(config);
    std::vector<std::thread> submitters;
    for (int t = 0; t < kThreads; ++t) {
      submitters.emplace_back([&] {
        for (int u = 0; u < kUniqueKeys; ++u) {
          // Every thread submits every unique request -> duplicates race.
          const auto s = server.submit(fast_request(100 + u));
          ASSERT_NE(s.kind, SynthesisServer::Submit::Kind::kRejected)
              << s.error;
          if (s.kind == SynthesisServer::Submit::Kind::kAccepted)
            ++accepted;
          else
            ++attached;
        }
      });
    }
    for (auto& t : submitters) t.join();
    std::vector<std::uint64_t> keys(kUniqueKeys, 0);
    for (int u = 0; u < kUniqueKeys; ++u)
      keys[u] = serve_key(fast_request(100 + u));

    // Exactly one submission per key was accepted for a cold run; all
    // others attached (duplicate in flight or warm hit).
    EXPECT_EQ(accepted.load(), static_cast<std::uint64_t>(kUniqueKeys));
    EXPECT_EQ(attached.load(),
              static_cast<std::uint64_t>(kThreads * kUniqueKeys - kUniqueKeys));

    // All waiters for one key see the *same* result object.
    for (int u = 0; u < kUniqueKeys; ++u) {
      const auto r1 = server.wait(keys[u]);
      const auto r2 = server.result(keys[u]);
      ASSERT_NE(r1, nullptr);
      EXPECT_EQ(r1.get(), r2.get());
      EXPECT_EQ(r1->benchmark, "C1");
    }

    server.drain();
    EXPECT_EQ(server.cold_runs(), static_cast<std::uint64_t>(kUniqueKeys));
    EXPECT_EQ(server.submitted(),
              static_cast<std::uint64_t>(kThreads * kUniqueKeys));
    EXPECT_EQ(server.duplicates() + server.warm_hits(), attached.load());
    EXPECT_EQ(server.rejected(), 0u);
    EXPECT_EQ(server.queue_depth(), 0u);

    // A post-drain submit is rejected, not lost silently.
    const auto late = server.submit(fast_request(999));
    EXPECT_EQ(late.kind, SynthesisServer::Submit::Kind::kRejected);

    // Ledger integrity: one "serve" record per cold run, one "serve-hit"
    // record per warm hit, one "serve-rejected" record per rejection (the
    // post-drain submit above), nothing torn, nothing duplicated.
    const LedgerReadResult read = ledger_read(ledger);
    EXPECT_EQ(read.skipped, 0);
    std::uint64_t cold_records = 0, hit_records = 0, rejected_records = 0;
    for (const LedgerRecord& rec : read.records) {
      if (rec.source == "serve") ++cold_records;
      if (rec.source == "serve-hit") ++hit_records;
      if (rec.source == "serve-rejected") {
        ++rejected_records;
        EXPECT_EQ(rec.verdict, "REJECTED");
      }
    }
    EXPECT_EQ(cold_records, server.cold_runs());
    EXPECT_EQ(hit_records, server.warm_hits());
    EXPECT_EQ(rejected_records, server.rejected());
    EXPECT_EQ(read.records.size(),
              cold_records + hit_records + rejected_records);
  }
}

TEST(SynthesisServer, CancelledQueuedJobFinishesCancelledWithoutSolverWork) {
  ServerConfig config;
  config.workers = 1;  // force the second job to queue behind the first
  config.store.mode = StoreConfig::Mode::kOff;
  SynthesisServer server(config);

  const auto first = server.submit(fast_request(200));
  ASSERT_EQ(first.kind, SynthesisServer::Submit::Kind::kAccepted);
  const auto second = server.submit(fast_request(201));
  ASSERT_EQ(second.kind, SynthesisServer::Submit::Kind::kAccepted);

  EXPECT_TRUE(server.cancel(second.key));
  const auto result = server.wait(second.key);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->verdict, "CANCELLED");
  EXPECT_FALSE(result->success);
  // The cancelled job hit the first stage gate: no RL training, no solver.
  EXPECT_EQ(result->failure_stage, "rl");

  EXPECT_FALSE(server.cancel(second.key));  // already done
  EXPECT_FALSE(server.cancel(0xdeadbeef));  // unknown key
  server.drain();
}

TEST(SynthesisServer, WarmHitMatchesDirectJobRunBitwise) {
  // Golden server-vs-CLI: the served result must be the same bytes a
  // direct SynthesisJob run (what synthesize_cli does) produces.
  const JobRequest request = fast_request(300);
  const SynthesisResult direct =
      make_job(request, StoreConfig{StoreConfig::Mode::kOff, ""}, "").run();

  ServerConfig config;
  config.store.mode = StoreConfig::Mode::kOff;
  SynthesisServer server(config);
  const auto submit = server.submit(request);
  ASSERT_EQ(submit.kind, SynthesisServer::Submit::Kind::kAccepted);
  const auto served = server.wait(submit.key);
  ASSERT_NE(served, nullptr);

  EXPECT_EQ(served->verdict, direct.verdict);
  ASSERT_EQ(served->controller.size(), direct.controller.size());
  for (std::size_t i = 0; i < direct.controller.size(); ++i)
    EXPECT_EQ(served->controller[i].to_string(17),
              direct.controller[i].to_string(17));
  EXPECT_EQ(served->barrier.barrier.to_string(17),
            direct.barrier.barrier.to_string(17));

  // And a repeat submit is a warm hit answered from memory.
  const auto again = server.submit(request);
  EXPECT_EQ(again.kind, SynthesisServer::Submit::Kind::kWarmHit);
  EXPECT_EQ(server.result(again.key).get(), served.get());
  server.drain();
}

// ---- Spool protocol.

TEST(Spool, IngestsRequestsAndWritesResults) {
  TempDir spool("scs_spool_test");
  SpoolLayout layout{spool.str()};
  std::string error;
  ASSERT_TRUE(spool_init(layout, &error)) << error;

  ServerConfig config;
  config.store.mode = StoreConfig::Mode::kOff;
  SynthesisServer server(config);
  SpoolRunner runner(server, layout);

  // A malformed request and an unknown benchmark both produce rejection
  // result files; a valid request is ingested and swept when done.
  std::ofstream(layout.inbox() + "/bad.json") << "{ nope";
  ASSERT_TRUE(atomic_write_file(
      layout.inbox() + "/unknown.json",
      "{\"id\":\"unknown\",\"benchmark\":\"C99\"}"));
  JobRequest good = fast_request(400);
  good.id = "good";
  ASSERT_TRUE(atomic_write_file(layout.inbox() + "/good.json",
                                job_request_json(good)));

  runner.poll_once();
  EXPECT_TRUE(fs::exists(layout.results() + "/bad.json"));
  EXPECT_TRUE(fs::exists(layout.results() + "/unknown.json"));
  EXPECT_TRUE(fs::exists(layout.inbox()) &&
              !fs::exists(layout.inbox() + "/good.json"));
  EXPECT_EQ(runner.pending(), 1u);

  // Wait for the job, then the next poll sweeps the result file out.
  const std::uint64_t key = serve_key(good);
  ASSERT_NE(server.wait(key), nullptr);
  runner.poll_once();
  EXPECT_EQ(runner.pending(), 0u);
  ASSERT_TRUE(fs::exists(layout.results() + "/good.json"));

  // The result and status files are strict JSON with the expected fields.
  std::stringstream result_text;
  result_text << std::ifstream(layout.results() + "/good.json").rdbuf();
  EXPECT_NE(result_text.str().find("\"id\":\"good\""), std::string::npos);
  EXPECT_NE(result_text.str().find("\"verdict\""), std::string::npos);
  std::stringstream status_text;
  status_text << std::ifstream(layout.status_file()).rdbuf();
  EXPECT_NE(status_text.str().find("\"cold_runs\":1"), std::string::npos);

  // Drain marker protocol.
  EXPECT_FALSE(runner.drain_requested());
  ASSERT_TRUE(atomic_write_file(layout.drain_file(), "drain\n"));
  EXPECT_TRUE(runner.drain_requested());

  // Post-drain polls never ingest: a leftover inbox file survives for the
  // next server instance instead of being bounced as a rejection.
  server.drain();
  ASSERT_TRUE(atomic_write_file(layout.inbox() + "/later.json",
                                job_request_json(fast_request(401))));
  runner.poll_once();
  EXPECT_TRUE(fs::exists(layout.inbox() + "/later.json"));
}

TEST(Spool, DuplicateIdWithDifferentConfigIsRejectedNotOrphaned) {
  // Regression: a client reusing an explicit id while the first request
  // under that id is still in flight used to overwrite the pending entry
  // (pending_[id] = p), orphaning the original -- its result was swept
  // under the duplicate's key and the original job's output never
  // surfaced. The duplicate must be rejected; the original must still
  // complete and produce its result.
  TempDir spool("scs_spool_dup_test");
  SpoolLayout layout{spool.str()};
  std::string error;
  ASSERT_TRUE(spool_init(layout, &error)) << error;

  ServerConfig config;
  config.store.mode = StoreConfig::Mode::kOff;
  SynthesisServer server(config);
  SpoolRunner runner(server, layout);

  JobRequest original = fast_request(500);
  original.id = "shared";
  ASSERT_TRUE(atomic_write_file(layout.inbox() + "/a_original.json",
                                job_request_json(original)));
  runner.poll_once();
  EXPECT_EQ(runner.pending(), 1u);

  // Same id, different seed => different serve key: a client error.
  JobRequest duplicate = fast_request(501);
  duplicate.id = "shared";
  ASSERT_TRUE(atomic_write_file(layout.inbox() + "/b_duplicate.json",
                                job_request_json(duplicate)));
  runner.poll_once();

  // The duplicate is bounced with a REJECTED result, and the original's
  // pending entry survives under its own key.
  EXPECT_EQ(runner.pending(), 1u);
  EXPECT_FALSE(fs::exists(layout.inbox() + "/b_duplicate.json"));
  {
    std::stringstream text;
    text << std::ifstream(layout.results() + "/shared.json").rdbuf();
    EXPECT_NE(text.str().find("\"verdict\":\"REJECTED\""), std::string::npos)
        << text.str();
    EXPECT_NE(text.str().find("already in flight"), std::string::npos);
  }

  // The original still completes and its genuine result replaces the
  // rejection note at the shared id.
  ASSERT_NE(server.wait(serve_key(original)), nullptr);
  runner.poll_once();
  EXPECT_EQ(runner.pending(), 0u);
  std::stringstream text;
  text << std::ifstream(layout.results() + "/shared.json").rdbuf();
  EXPECT_EQ(text.str().find("\"verdict\":\"REJECTED\""), std::string::npos);
  EXPECT_NE(text.str().find("\"id\":\"shared\""), std::string::npos);

  // Same id, same config: legitimate duplicate -- dedupes onto the (now
  // finished) job as a warm hit instead of a rejection.
  ASSERT_TRUE(atomic_write_file(layout.inbox() + "/c_same.json",
                                job_request_json(original)));
  runner.poll_once();
  std::stringstream warm;
  warm << std::ifstream(layout.results() + "/shared.json").rdbuf();
  EXPECT_EQ(warm.str().find("REJECTED"), std::string::npos);
}

// ---- Observability (PR 10): backpressure counters, schema-2 status,
// cancel markers, the daemon summary, and request-correlated tracing.

TEST(SynthesisServer, QueueFullSubmitCountsOverflowAndHintsRetry) {
  ServerConfig config;
  config.workers = 1;
  config.queue_capacity = 1;  // worker busy + 1 queued = full
  config.store.mode = StoreConfig::Mode::kOff;
  config.retry_after_seconds = 2.5;
  SynthesisServer server(config);

  const auto running = server.submit(fast_request(600));
  ASSERT_EQ(running.kind, SynthesisServer::Submit::Kind::kAccepted);
  // Give the single worker a moment to pop the first job off the queue.
  const auto queued = [&] {
    for (int tries = 0; tries < 200; ++tries) {
      const auto s = server.submit(fast_request(601));
      if (s.kind == SynthesisServer::Submit::Kind::kAccepted) return s;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return server.submit(fast_request(601));
  }();
  ASSERT_EQ(queued.kind, SynthesisServer::Submit::Kind::kAccepted);

  // The retry loop above may itself have bounced off a full queue, so
  // assert the *delta* caused by this one overflowing submit.
  const std::uint64_t overflow_before = server.overflow();
  const auto overflow = server.submit(fast_request(602));
  EXPECT_EQ(overflow.kind, SynthesisServer::Submit::Kind::kRejected);
  EXPECT_DOUBLE_EQ(overflow.retry_after_seconds, 2.5);
  EXPECT_NE(overflow.error.find("queue full"), std::string::npos)
      << overflow.error;
  EXPECT_EQ(server.overflow(), overflow_before + 1);
  EXPECT_EQ(server.rejected(), server.overflow());

  // Cut the queued job short so the test doesn't pay a second cold solve.
  EXPECT_TRUE(server.cancel(queued.key));
  const auto result = server.wait(queued.key);
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->verdict, "CANCELLED");
  server.drain();
  EXPECT_EQ(server.cancelled(), 1u);
  EXPECT_EQ(server.in_flight(), 0u);
}

TEST(Spool, StatusSchemaTwoExposesCountersAndNullLatency) {
  TempDir spool("scs_spool_status_test");
  SpoolLayout layout{spool.str()};
  std::string error;
  ASSERT_TRUE(spool_init(layout, &error)) << error;
  EXPECT_TRUE(fs::exists(layout.cancel_dir()));

  ServerConfig config;
  config.store.mode = StoreConfig::Mode::kOff;
  SynthesisServer server(config);
  SpoolRunner runner(server, layout);
  runner.set_instance("unit");
  runner.write_status();

  std::stringstream text;
  text << std::ifstream(layout.status_file()).rdbuf();
  const std::string s = text.str();
  EXPECT_NE(s.find("\"schema\":2"), std::string::npos) << s;
  EXPECT_NE(s.find("\"kind\":\"serve_status\""), std::string::npos);
  EXPECT_NE(s.find("\"instance\":\"unit\""), std::string::npos);
  EXPECT_NE(s.find("\"queue_capacity\":64"), std::string::npos);
  EXPECT_NE(s.find("\"retry_after_seconds\""), std::string::npos);
  EXPECT_NE(s.find("\"counters\":{\"submitted\":0"), std::string::npos);
  EXPECT_NE(s.find("\"overflow\":0"), std::string::npos);
  // No traffic yet: latency quantiles are explicit nulls, never 0.
  EXPECT_NE(s.find("\"queue_wait_ms\":{\"count\":0,\"p50\":null"),
            std::string::npos)
      << s;
  server.drain();
}

TEST(Spool, CancelMarkerCancelsPendingJobAndIsConsumed) {
  TempDir spool("scs_spool_cancel_test");
  SpoolLayout layout{spool.str()};
  std::string error;
  ASSERT_TRUE(spool_init(layout, &error)) << error;

  ServerConfig config;
  config.workers = 1;
  config.store.mode = StoreConfig::Mode::kOff;
  SynthesisServer server(config);
  SpoolRunner runner(server, layout);

  // Two jobs through the inbox; the second queues behind the first.
  JobRequest first = fast_request(700);
  first.id = "keep";
  JobRequest second = fast_request(701);
  second.id = "kill";
  ASSERT_TRUE(atomic_write_file(layout.inbox() + "/a.json",
                                job_request_json(first)));
  ASSERT_TRUE(atomic_write_file(layout.inbox() + "/b.json",
                                job_request_json(second)));
  runner.poll_once();
  EXPECT_EQ(runner.pending(), 2u);

  // A marker for an unknown id is deferred, not consumed: the request may
  // still be racing through the inbox, so the next poll retries it. A marker
  // for an id whose result already exists is a no-op and is consumed.
  ASSERT_TRUE(atomic_write_file(layout.cancel_dir() + "/nobody", "cancel\n"));
  EXPECT_EQ(runner.apply_cancel_markers(), 0);
  EXPECT_TRUE(fs::exists(layout.cancel_dir() + "/nobody"));
  ASSERT_TRUE(atomic_write_file(layout.results() + "/nobody.json", "{}\n"));
  EXPECT_EQ(runner.apply_cancel_markers(), 0);
  EXPECT_FALSE(fs::exists(layout.cancel_dir() + "/nobody"));
  fs::remove(layout.results() + "/nobody.json");

  // The real marker cancels the queued job cooperatively.
  ASSERT_TRUE(atomic_write_file(layout.cancel_dir() + "/kill", "cancel\n"));
  EXPECT_EQ(runner.apply_cancel_markers(), 1);
  EXPECT_FALSE(fs::exists(layout.cancel_dir() + "/kill"));
  const auto result = server.wait(serve_key(second));
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->verdict, "CANCELLED");

  ASSERT_NE(server.wait(serve_key(first)), nullptr);
  runner.poll_once();
  std::stringstream text;
  text << std::ifstream(layout.results() + "/kill.json").rdbuf();
  EXPECT_NE(text.str().find("\"verdict\":\"CANCELLED\""), std::string::npos)
      << text.str();
  server.drain();
}

TEST(Spool, DaemonSummaryRecordCarriesLostRequestSignal) {
  TempDir spool("scs_spool_summary_test");
  TempDir ledger_dir("scs_spool_summary_ledger");
  const std::string ledger = (ledger_dir.path / "runs.jsonl").string();
  SpoolLayout layout{spool.str()};
  std::string error;
  ASSERT_TRUE(spool_init(layout, &error)) << error;

  ServerConfig config;
  config.store.mode = StoreConfig::Mode::kOff;
  config.ledger_path = ledger;
  SynthesisServer server(config);
  SpoolRunner runner(server, layout);
  runner.set_instance("summary-unit");

  JobRequest r = fast_request(800);
  r.id = "only";
  ASSERT_TRUE(
      atomic_write_file(layout.inbox() + "/only.json", job_request_json(r)));
  runner.poll_once();
  ASSERT_NE(server.wait(serve_key(r)), nullptr);
  runner.poll_once();
  EXPECT_EQ(runner.ingested_total(), 1u);
  EXPECT_EQ(runner.results_written(), 1u);
  server.drain();
  ASSERT_TRUE(runner.append_daemon_summary());

  const LedgerReadResult read = ledger_read(ledger);
  const LedgerRecord* summary = nullptr;
  for (const LedgerRecord& rec : read.records)
    if (rec.kind == "bench" && rec.source == "serve_daemon") summary = &rec;
  ASSERT_NE(summary, nullptr);
  EXPECT_NE(summary->values_json.find("\"instance\":\"summary-unit\""),
            std::string::npos)
      << summary->values_json;
  EXPECT_NE(summary->values_json.find("\"ingested\":1"), std::string::npos);
  EXPECT_NE(summary->values_json.find("\"results_written\":1"),
            std::string::npos);
  EXPECT_NE(summary->values_json.find("\"queue_wait_ms\""),
            std::string::npos);
}

TEST(SynthesisServer, TracedServeTagsLifecycleWithRequestId) {
  trace_stop();
  trace_clear();
  trace_start((fs::temp_directory_path() / "scs_serve_trace.json").string());

  ServerConfig config;
  config.store.mode = StoreConfig::Mode::kOff;
  SynthesisServer server(config);
  JobRequest request = fast_request(900);
  request.id = "rid-cold";
  const auto cold = server.submit(request);
  ASSERT_EQ(cold.kind, SynthesisServer::Submit::Kind::kAccepted);
  ASSERT_NE(server.wait(cold.key), nullptr);
  JobRequest again = request;
  again.id = "rid-warm";
  const auto warm = server.submit(again);
  EXPECT_EQ(warm.kind, SynthesisServer::Submit::Kind::kWarmHit);
  server.drain();

  bool saw_cold_submit = false, saw_queue_wait = false, saw_publish = false;
  bool saw_warm_instant = false;
  for (const TraceEvent& e : trace_snapshot()) {
    if (e.name == "serve.submit" && e.id == "rid-cold") saw_cold_submit = true;
    if (e.name == "serve.queue_wait" && e.id == "rid-cold")
      saw_queue_wait = true;
    if (e.name == "serve.result_publish" && e.id == "rid-cold")
      saw_publish = true;
    if (e.name == "serve.warm_hit" && e.id == "rid-warm")
      saw_warm_instant = true;
  }
  trace_stop();
  trace_clear();
  EXPECT_TRUE(saw_cold_submit);
  EXPECT_TRUE(saw_queue_wait);
  EXPECT_TRUE(saw_publish);
  EXPECT_TRUE(saw_warm_instant);
}

}  // namespace
}  // namespace scs
