// Tests for polynomial arithmetic: ring axioms, evaluation, substitution,
// derivatives, variable lifting.
#include <gtest/gtest.h>

#include "poly/basis.hpp"
#include "poly/polynomial.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

Polynomial random_poly(std::size_t n, int degree, Rng& rng) {
  const auto basis = monomials_up_to(n, degree);
  Vec c(basis.size());
  for (auto& v : c) v = rng.uniform(-2.0, 2.0);
  return Polynomial::from_coefficients(basis, c);
}

TEST(Polynomial, ConstructionAndDegree) {
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial p = x1 * x1 * 3.0 + x2 * (-1.0) +
                       Polynomial::constant(2, 0.5);
  EXPECT_EQ(p.degree(), 2);
  EXPECT_EQ(p.term_count(), 3u);
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{2.0, 1.0}), 12.0 - 1.0 + 0.5);
}

TEST(Polynomial, ZeroHandling) {
  const Polynomial z(3);
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.degree(), -1);
  const auto p = Polynomial::variable(3, 0);
  EXPECT_TRUE((p - p).is_zero());
  EXPECT_EQ((p * 0.0).term_count(), 0u);
}

TEST(Polynomial, ProductExpandsCorrectly) {
  // (x1 + x2)^2 = x1^2 + 2 x1 x2 + x2^2.
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial sq = (x1 + x2).pow(2);
  EXPECT_DOUBLE_EQ(sq.coefficient(Monomial({2, 0})), 1.0);
  EXPECT_DOUBLE_EQ(sq.coefficient(Monomial({1, 1})), 2.0);
  EXPECT_DOUBLE_EQ(sq.coefficient(Monomial({0, 2})), 1.0);
  EXPECT_EQ(sq.term_count(), 3u);
}

class RingAxioms : public ::testing::TestWithParam<int> {};

TEST_P(RingAxioms, RandomizedIdentities) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.index(4);
  const Polynomial a = random_poly(n, 2, rng);
  const Polynomial b = random_poly(n, 3, rng);
  const Polynomial c = random_poly(n, 2, rng);
  // Commutativity / associativity / distributivity via coefficient equality.
  EXPECT_LT(max_coefficient_diff(a * b, b * a), 1e-12);
  EXPECT_LT(max_coefficient_diff((a * b) * c, a * (b * c)), 1e-9);
  EXPECT_LT(max_coefficient_diff(a * (b + c), a * b + a * c), 1e-10);
  // Evaluation homomorphism at random points.
  for (int t = 0; t < 5; ++t) {
    const Vec x(rng.uniform_vector(n, -1.5, 1.5));
    EXPECT_NEAR((a * b).evaluate(x), a.evaluate(x) * b.evaluate(x), 1e-8);
    EXPECT_NEAR((a + b).evaluate(x), a.evaluate(x) + b.evaluate(x), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RingAxioms, ::testing::Range(1, 21));

TEST(Polynomial, DerivativeKnownCase) {
  // d/dx1 (x1^3 x2 - 2 x1) = 3 x1^2 x2 - 2.
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial p = x1.pow(3) * x2 - x1 * 2.0;
  const Polynomial d = p.derivative(0);
  EXPECT_DOUBLE_EQ(d.coefficient(Monomial({2, 1})), 3.0);
  EXPECT_DOUBLE_EQ(d.coefficient(Monomial({0, 0})), -2.0);
}

class LeibnizRule : public ::testing::TestWithParam<int> {};

TEST_P(LeibnizRule, ProductRuleHolds) {
  Rng rng(100 + GetParam());
  const std::size_t n = 1 + rng.index(3);
  const Polynomial a = random_poly(n, 3, rng);
  const Polynomial b = random_poly(n, 2, rng);
  for (std::size_t i = 0; i < n; ++i) {
    const Polynomial lhs = (a * b).derivative(i);
    const Polynomial rhs = a.derivative(i) * b + a * b.derivative(i);
    EXPECT_LT(max_coefficient_diff(lhs, rhs), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LeibnizRule, ::testing::Range(1, 11));

TEST(Polynomial, SubstituteMatchesEvaluation) {
  Rng rng(5);
  const Polynomial p = random_poly(2, 4, rng);
  const Polynomial q = random_poly(2, 2, rng);
  const Polynomial composed = p.substitute(1, q);
  for (int t = 0; t < 10; ++t) {
    Vec x(rng.uniform_vector(2, -1.0, 1.0));
    Vec x_sub = x;
    x_sub[1] = q.evaluate(x);
    EXPECT_NEAR(composed.evaluate(x), p.evaluate(x_sub), 1e-7);
  }
}

TEST(Polynomial, ExtendAndDropVars) {
  const Polynomial p =
      Polynomial::variable(2, 0) * Polynomial::variable(2, 1) * 2.0;
  const Polynomial lifted = p.extend_vars(1);
  EXPECT_EQ(lifted.num_vars(), 3u);
  EXPECT_NEAR(lifted.evaluate(Vec{2.0, 3.0, 99.0}), 12.0, 1e-12);
  const Polynomial back = lifted.drop_trailing_vars(1);
  EXPECT_LT(max_coefficient_diff(back, p), 1e-15);
}

TEST(Polynomial, DropOccupiedVarThrows) {
  const Polynomial p = Polynomial::variable(2, 1);
  EXPECT_THROW(p.drop_trailing_vars(1), PreconditionError);
}

TEST(Polynomial, CoefficientsRoundTrip) {
  Rng rng(8);
  const auto basis = monomials_up_to(3, 3);
  Vec c(basis.size());
  for (auto& v : c) v = rng.normal();
  const Polynomial p = Polynomial::from_coefficients(basis, c);
  const Vec c2 = p.coefficients_in(basis);
  EXPECT_LT(max_abs_diff(c, c2), 1e-15);
}

TEST(Polynomial, CoefficientsOutsideBasisThrows) {
  const Polynomial p = Polynomial::variable(2, 0).pow(4);
  EXPECT_THROW(p.coefficients_in(monomials_up_to(2, 2)), PreconditionError);
}

TEST(Polynomial, PruneRemovesTinyTerms) {
  Polynomial p = Polynomial::variable(1, 0) +
                 Polynomial::constant(1, 1e-12);
  EXPECT_EQ(p.prune(1e-9), 1u);
  EXPECT_EQ(p.term_count(), 1u);
}

TEST(Polynomial, ToStringReadable) {
  const Polynomial p = Polynomial::variable(2, 0) * Polynomial::variable(2, 0)
                       * 1.5 - Polynomial::constant(2, 2.0);
  EXPECT_EQ(p.to_string(), "1.5*x1^2 - 2");
}

}  // namespace
}  // namespace scs
