// Fleet aggregation (obs/fleet): multi-ledger ingestion for the
// report_cli `fleet` mode. Covers glob expansion, two-instance merging
// (counters, verdict mix, duplicate config-key reconciliation, lost
// requests), concurrent multi-writer ledgers with torn-line tolerance,
// daemon-summary quantile handling, and the "fleet.*" gate samples
// (unknown quantiles must be absent, never 0).
#include "obs/fleet.hpp"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_reader.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger.hpp"

namespace scs {
namespace {

namespace fs = std::filesystem;

class FleetTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("scs_fleet_test_" + std::to_string(::getpid()) + "_" +
            ::testing::UnitTest::GetInstance()->current_test_info()->name());
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  fs::path dir_;
};

LedgerRecord serve_record(const std::string& source,
                          const std::string& benchmark,
                          const std::string& verdict, const std::string& key,
                          double total_seconds) {
  LedgerRecord r;
  r.kind = "synthesis";
  r.source = source;
  r.benchmark = benchmark;
  r.verdict = verdict;
  r.config_key = key;
  r.total_seconds = total_seconds;
  return r;
}

/// A daemon summary as SpoolRunner::append_daemon_summary writes it.
std::string summary_json(const std::string& instance, std::uint64_t submitted,
                         std::uint64_t cold, std::uint64_t warm,
                         std::uint64_t cancelled, std::uint64_t ingested,
                         std::uint64_t written, double warm_p99) {
  JsonWriter w;
  w.begin_object();
  w.key("instance").value(instance);
  w.key("submitted").value(submitted);
  w.key("cold_runs").value(cold);
  w.key("warm_hits").value(warm);
  w.key("duplicates").value(std::uint64_t{0});
  w.key("rejected").value(std::uint64_t{0});
  w.key("cancelled").value(cancelled);
  w.key("overflow").value(std::uint64_t{0});
  w.key("ingested").value(ingested);
  w.key("results_written").value(written);
  w.key("warm_hit_us").begin_object();
  if (warm_p99 >= 0) {
    w.key("count").value(warm);
    w.key("p50").value(warm_p99 / 2);
    w.key("p90").value(warm_p99);
    w.key("p99").value(warm_p99);
  } else {
    w.key("count").value(std::uint64_t{0});
    w.key("p50").null();
    w.key("p90").null();
    w.key("p99").null();
  }
  w.end_object();
  w.key("queue_wait_ms").begin_object();
  w.key("count").value(std::uint64_t{0});
  w.key("p50").null();
  w.key("p90").null();
  w.key("p99").null();
  w.end_object();
  w.end_object();
  return w.str();
}

TEST_F(FleetTest, GlobExpansionMatchesSortsAndDedupes) {
  for (const char* name : {"a.jsonl", "b.jsonl", "notes.txt"})
    std::ofstream(path(name)) << "";
  const auto out = fleet_expand_ledger_args(
      {path("*.jsonl"), path("a.jsonl"), path("missing.jsonl")});
  ASSERT_EQ(out.size(), 3u);  // a, b (glob; a deduped), missing passthrough
  EXPECT_EQ(out[0], path("a.jsonl"));
  EXPECT_EQ(out[1], path("b.jsonl"));
  EXPECT_EQ(out[2], path("missing.jsonl"));
  // '?' matches exactly one character.
  EXPECT_EQ(fleet_expand_ledger_args({path("?.jsonl")}).size(), 2u);
  // A glob matching nothing expands to nothing (the gate's instance floor
  // catches the shrink), while plain paths always pass through.
  EXPECT_TRUE(fleet_expand_ledger_args({path("zz*.jsonl")}).empty());
}

TEST_F(FleetTest, TwoInstancesMergeWithDuplicateKeyReconciliation) {
  const std::string a = path("alpha.jsonl");
  const std::string b = path("beta.jsonl");
  // Both instances cold-solve config key K1 (redundant across the fleet);
  // alpha also serves it warm, beta cold-solves a second key and cancels
  // one job.
  ASSERT_TRUE(
      ledger_append(a, serve_record("serve", "C1", "VERIFIED", "k1", 2.0)));
  ASSERT_TRUE(
      ledger_append(a, serve_record("serve-hit", "C1", "VERIFIED", "k1", 2.0)));
  ASSERT_TRUE(ledger_append_bench("serve_daemon",
                                  summary_json("alpha", 2, 1, 1, 0, 2, 2, 150.0),
                                  a));
  ASSERT_TRUE(
      ledger_append(b, serve_record("serve", "C1", "VERIFIED", "k1", 4.0)));
  ASSERT_TRUE(
      ledger_append(b, serve_record("serve", "C2", "CANCELLED", "k2", 0.1)));
  ASSERT_TRUE(ledger_append_bench("serve_daemon",
                                  summary_json("beta", 2, 2, 0, 1, 2, 2, -1.0),
                                  b));

  const FleetReport rep = fleet_aggregate({a, b});
  ASSERT_EQ(rep.instances.size(), 2u);
  EXPECT_EQ(rep.instances[0].instance, "alpha");  // from the summary
  EXPECT_EQ(rep.instances[1].instance, "beta");
  EXPECT_EQ(rep.submitted, 4u);
  EXPECT_EQ(rep.cold_runs, 3u);
  EXPECT_EQ(rep.warm_hits, 1u);
  EXPECT_EQ(rep.cancelled, 1u);
  EXPECT_EQ(rep.daemon_summaries, 2);
  EXPECT_EQ(rep.lost_requests, 0u);
  EXPECT_EQ(rep.unique_configs, 2u);
  // k1 went cold on both instances: one redundant cold run.
  EXPECT_EQ(rep.redundant_cold_runs, 1u);
  EXPECT_DOUBLE_EQ(rep.warm_hit_rate, 1.0 / 4.0);
  EXPECT_DOUBLE_EQ(rep.dedupe_efficiency, 1.0 / 4.0);
  EXPECT_EQ(rep.verdicts.at("VERIFIED"), 3u);
  EXPECT_EQ(rep.verdicts.at("CANCELLED"), 1u);
  // Worst-instance warm p99 = alpha's 150us; beta (no warm hits) must not
  // drag it to a sentinel.
  EXPECT_DOUBLE_EQ(rep.warm_hit_us_p99, 150.0);
  EXPECT_DOUBLE_EQ(rep.instances[1].warm_hit_us_p99, -1.0);
  // Exact cold quantiles over {2.0, 4.0, 0.1} seconds -> ms.
  EXPECT_DOUBLE_EQ(rep.cold_ms_p50, 2000.0);
  EXPECT_DOUBLE_EQ(rep.cold_ms_p99, 4000.0);
}

TEST_F(FleetTest, LostRequestsFromSummaryImbalance) {
  const std::string a = path("a.jsonl");
  ASSERT_TRUE(ledger_append_bench(
      "serve_daemon", summary_json("a", 5, 5, 0, 0, 5, 3, -1.0), a));
  const FleetReport rep = fleet_aggregate({a});
  EXPECT_EQ(rep.lost_requests, 2u);
}

TEST_F(FleetTest, ConcurrentWritersAndTornLineTolerated) {
  const std::string a = path("inst_a.jsonl");
  const std::string b = path("inst_b.jsonl");
  // Two simulated instances, four writer threads each, appending through
  // the locked ledger_append path concurrently.
  constexpr int kThreads = 8;
  constexpr int kPerThread = 25;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const std::string& path = (t % 2 == 0) ? a : b;
      const std::string inst = (t % 2 == 0) ? "a" : "b";
      for (int i = 0; i < kPerThread; ++i) {
        LedgerRecord r = serve_record(
            "serve", "C1", "VERIFIED",
            "key_" + inst + std::to_string(t) + "_" + std::to_string(i),
            0.5);
        ASSERT_TRUE(ledger_append(path, std::move(r)));
      }
    });
  }
  for (std::thread& th : threads) th.join();
  // Simulate a crash mid-append: a torn trailing line on instance a.
  std::ofstream(a, std::ios::app) << "{\"schema\":1,\"kind\":\"synt";

  const FleetReport rep = fleet_aggregate({a, b});
  ASSERT_EQ(rep.instances.size(), 2u);
  // Every intact record survives; only the torn line is skipped.
  EXPECT_EQ(rep.instances[0].cold_records, 4u * kPerThread);
  EXPECT_EQ(rep.instances[1].cold_records, 4u * kPerThread);
  EXPECT_EQ(rep.skipped_lines, 1);
  EXPECT_EQ(rep.unique_configs, 8u * kPerThread);
  EXPECT_EQ(rep.redundant_cold_runs, 0u);
}

TEST_F(FleetTest, MissingLedgerReportsErrorNotCrash) {
  const std::string a = path("present.jsonl");
  ASSERT_TRUE(
      ledger_append(a, serve_record("serve", "C1", "VERIFIED", "k", 1.0)));
  const FleetReport rep = fleet_aggregate({a, path("absent.jsonl")});
  EXPECT_EQ(rep.instances.size(), 2u);
  EXPECT_FALSE(rep.errors.empty());
  // Instance label for the summary-less ledger falls back to the stem.
  EXPECT_EQ(rep.instances[0].instance, "present");
}

TEST_F(FleetTest, NonServeTrafficIgnored) {
  const std::string a = path("mixed.jsonl");
  ASSERT_TRUE(
      ledger_append(a, serve_record("serve", "C1", "VERIFIED", "k", 1.0)));
  ASSERT_TRUE(ledger_append(
      a, serve_record("synthesize", "C2", "UNVERIFIED", "x", 9.0)));
  ASSERT_TRUE(ledger_append_bench("bench_obs", "{\"n\":1}", a));
  const FleetReport rep = fleet_aggregate({a});
  EXPECT_EQ(rep.instances[0].cold_records, 1u);
  EXPECT_EQ(rep.verdicts.count("UNVERIFIED"), 0u);
  EXPECT_EQ(rep.daemon_summaries, 0);
}

TEST_F(FleetTest, RejectedRecordsCountVerdictsOnly) {
  const std::string a = path("rej.jsonl");
  ASSERT_TRUE(ledger_append(
      a, serve_record("serve-rejected", "C9", "REJECTED", "", 0.0)));
  const FleetReport rep = fleet_aggregate({a});
  EXPECT_EQ(rep.instances[0].cold_records, 0u);
  EXPECT_EQ(rep.instances[0].warm_records, 0u);
  EXPECT_EQ(rep.verdicts.at("REJECTED"), 1u);
  EXPECT_TRUE(rep.instances[0].cold_seconds.empty());
}

TEST_F(FleetTest, FleetJsonParsesAndNullsUnknownQuantiles) {
  const std::string a = path("a.jsonl");
  ASSERT_TRUE(ledger_append_bench(
      "serve_daemon", summary_json("solo", 1, 1, 0, 0, 1, 1, -1.0), a));
  const FleetReport rep = fleet_aggregate({a});
  JsonValue doc;
  std::string error;
  ASSERT_TRUE(json_try_parse(fleet_json(rep), &doc, &error)) << error;
  EXPECT_EQ(doc.find("instances")->int_or(0), 1);
  // No warm hits anywhere: the quantile is null, not 0.
  ASSERT_NE(doc.find("warm_hit_us_p99"), nullptr);
  EXPECT_TRUE(doc.find("warm_hit_us_p99")->is_null());
  // Markdown renders the same unknown as "-".
  EXPECT_NE(fleet_markdown(rep).find("| - |"), std::string::npos);
}

TEST_F(FleetTest, SamplesOmitUnknownQuantilesSoGatesFailLoudly) {
  const std::string a = path("a.jsonl");
  ASSERT_TRUE(ledger_append_bench(
      "serve_daemon", summary_json("solo", 1, 1, 0, 0, 1, 1, -1.0), a));
  MetricSamples samples;
  fleet_samples(fleet_aggregate({a}), &samples);
  EXPECT_NE(samples.find("fleet.instances"), nullptr);
  EXPECT_NE(samples.find("fleet.lost_requests"), nullptr);
  // With one cold run the warm-hit rate is a legitimate 0.0 -- present.
  ASSERT_NE(samples.find("fleet.warm_hit_rate"), nullptr);
  EXPECT_DOUBLE_EQ(samples.find("fleet.warm_hit_rate")->front().number, 0.0);
  // But the -1 sentinel quantiles are never emitted: a baseline keyed on
  // them reports kMissingCurrent instead of passing against a fake number.
  EXPECT_EQ(samples.find("fleet.warm_hit_us_p99"), nullptr);
  EXPECT_EQ(samples.find("fleet.cold_ms_p99"), nullptr);

  BaselineFile gate = baseline_parse(
      "{\"schema\":1,\"name\":\"g\",\"metrics\":{"
      "\"fleet.warm_hit_us_p99\":{\"kind\":\"max\",\"value\":100.0}}}");
  const BaselineReport rep = baseline_compare(gate, samples);
  EXPECT_FALSE(rep.passed());
  EXPECT_EQ(rep.missing, 1);
}

}  // namespace
}  // namespace scs
