// Seed stability and content guarantees of the random system-family
// generator (src/systems/family_gen): a family is bitwise-reproducible
// from (seed, index) alone -- across thread counts, across generate_family
// vs generate_system, and across process runs (checked-in fingerprint) --
// and generated systems can never collide with a C1..C10 stage-cache entry.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "store/stage_cache.hpp"
#include "systems/family_gen.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace scs {
namespace {

FamilyConfig test_config() {
  FamilyConfig cfg;
  cfg.seed = 42;
  cfg.state_dims = {2, 3, 4};
  cfg.min_degree = 1;
  cfg.max_degree = 3;
  return cfg;
}

/// Combined digest of a whole family -- the cross-process fingerprint.
std::uint64_t family_digest(const std::vector<GeneratedSystem>& family) {
  Fnv1a h;
  for (const GeneratedSystem& sys : family)
    hash_append(h, generated_system_digest(sys));
  return h.digest();
}

TEST(FamilyGen, IndexedGenerationMatchesFamily) {
  const FamilyConfig cfg = test_config();
  const std::vector<GeneratedSystem> family = generate_family(cfg, 12);
  ASSERT_EQ(family.size(), 12u);
  for (std::size_t i = 0; i < family.size(); ++i) {
    const GeneratedSystem single = generate_system(cfg, i);
    EXPECT_EQ(generated_system_digest(single),
              generated_system_digest(family[i]))
        << "system " << i;
    EXPECT_EQ(single.benchmark.name, family[i].benchmark.name);
  }
}

TEST(FamilyGen, BitwiseIdenticalAcrossThreadCounts) {
  const FamilyConfig cfg = test_config();
  set_parallel_threads(1);
  const std::vector<GeneratedSystem> f1 = generate_family(cfg, 12);
  set_parallel_threads(4);
  const std::vector<GeneratedSystem> f4 = generate_family(cfg, 12);
  set_parallel_threads(0);
  ASSERT_EQ(f1.size(), f4.size());
  for (std::size_t i = 0; i < f1.size(); ++i) {
    EXPECT_EQ(generated_system_digest(f1[i]), generated_system_digest(f4[i]))
        << "system " << i;
    // Full-precision coefficient strings must agree exactly, not merely
    // within tolerance (same contract as parallel_determinism_test).
    ASSERT_EQ(f1[i].benchmark.ccds.open_field.size(),
              f4[i].benchmark.ccds.open_field.size());
    for (std::size_t c = 0; c < f1[i].benchmark.ccds.open_field.size(); ++c)
      EXPECT_EQ(f1[i].benchmark.ccds.open_field[c].to_string(17),
                f4[i].benchmark.ccds.open_field[c].to_string(17));
  }
}

// The checked-in fingerprint pins the family format across process runs
// and machines: any change to the draw order, the knob set, or the
// numeric construction shows up here. Update the constant ONLY alongside a
// deliberate format change (which orphans previously generated families).
TEST(FamilyGen, CrossProcessFingerprintIsStable) {
  const std::uint64_t digest = family_digest(generate_family(test_config(), 8));
  EXPECT_EQ(hash_to_hex(digest), "e4cc1f48f8246ba5");
}

TEST(FamilyGen, DescriptorMatchesRealizedSystem) {
  const FamilyConfig cfg = test_config();
  std::set<std::string> names;
  for (const GeneratedSystem& sys : generate_family(cfg, 24)) {
    const FamilyDescriptor& d = sys.descriptor;
    const Ccds& ccds = sys.benchmark.ccds;
    EXPECT_EQ(sys.benchmark.id, BenchmarkId::kGenerated);
    EXPECT_EQ(sys.benchmark.name, family_system_name(cfg.seed, d.index));
    EXPECT_TRUE(names.insert(sys.benchmark.name).second) << "duplicate name";
    EXPECT_EQ(ccds.num_states, d.num_states);
    EXPECT_EQ(ccds.num_controls, d.num_controls);
    EXPECT_NE(std::find(cfg.state_dims.begin(), cfg.state_dims.end(),
                        d.num_states),
              cfg.state_dims.end());
    EXPECT_EQ(ccds.field_degree(), d.degree);
    EXPECT_GE(d.degree, cfg.min_degree);
    EXPECT_LE(d.degree, cfg.max_degree);
    EXPECT_GE(d.spectral_radius, cfg.min_spectral_radius);
    EXPECT_LE(d.spectral_radius, cfg.max_spectral_radius);
    if (d.obstacle) {
      // Obstacle geometry: a small unsafe ball offset from the origin; only
      // the enclosing box must dominate both radii.
      EXPECT_LT(d.unsafe_radius, d.box_half_width);
      EXPECT_LT(d.theta_radius, d.box_half_width);
    } else {
      // Shell geometry: Theta strictly inside the safe ball, box outside.
      EXPECT_LT(d.theta_radius, d.unsafe_radius);
      EXPECT_LT(d.unsafe_radius, d.box_half_width);
    }
    EXPECT_NO_THROW(ccds.validate());
  }
}

TEST(FamilyGen, TwoByTwoLinearizationHitsSpectralRadiusExactly) {
  FamilyConfig cfg = test_config();
  cfg.state_dims = {2};
  cfg.min_degree = 1;
  cfg.max_degree = 1;  // pure linear: the field *is* the linearization
  int checked = 0;
  for (const GeneratedSystem& sys : generate_family(cfg, 16)) {
    const Ccds& ccds = sys.benchmark.ccds;
    // Extract A from the linear coefficients of the open field.
    double a[2][2];
    for (std::size_t i = 0; i < 2; ++i)
      for (std::size_t j = 0; j < 2; ++j) {
        std::vector<int> e(3, 0);
        e[j] = 1;
        a[i][j] = ccds.open_field[i].coefficient(Monomial(e));
      }
    // Eigenvalues of a 2x2: modulus^2 from trace/determinant. The generator
    // draws a conjugated rotation-scaled block, so both eigenvalues share
    // one modulus == the prescribed spectral radius.
    const double tr = a[0][0] + a[1][1];
    const double det = a[0][0] * a[1][1] - a[0][1] * a[1][0];
    const double disc = tr * tr / 4.0 - det;
    double radius = 0.0;
    if (disc <= 0.0) {
      radius = std::sqrt(det);  // complex pair: |lambda|^2 = det
    } else {
      const double r1 = std::fabs(tr / 2.0 + std::sqrt(disc));
      const double r2 = std::fabs(tr / 2.0 - std::sqrt(disc));
      radius = std::max(r1, r2);
    }
    EXPECT_NEAR(radius, sys.descriptor.spectral_radius,
                1e-9 * std::max(1.0, sys.descriptor.spectral_radius));
    ++checked;
  }
  EXPECT_EQ(checked, 16);
}

// Satellite guarantee: a generated system can never resolve to a C1..C10
// stage-cache entry. The name prefix ("F<seed>-<i>" vs "C<k>"), the
// distinct BenchmarkId folded into the benchmark hash, and the content
// hash of the dynamics each suffice alone; this checks the end product --
// pairwise-distinct RL stage keys (every downstream key folds the RL key).
TEST(FamilyGen, StageKeysDisjointFromBuiltinBenchmarks) {
  PipelineConfig config;
  config.fast_mode = true;
  std::set<std::uint64_t> keys;
  const auto add_key = [&](const Benchmark& bench) {
    const std::uint64_t key =
        rl_stage_key(bench, config.seed, config.ddpg, config.env,
                     bench.rl.episodes, config.eval_episodes);
    EXPECT_TRUE(keys.insert(key).second)
        << "stage-key collision for " << bench.name;
  };
  for (const auto id : all_benchmark_ids()) add_key(make_benchmark(id));
  for (const GeneratedSystem& sys : generate_family(test_config(), 16))
    add_key(sys.benchmark);
  EXPECT_EQ(keys.size(), 10u + 16u);
}

// Same system content under a different family seed must produce different
// names AND different keys (seed is part of the name, name is hashed).
TEST(FamilyGen, FamilySeedChangesEverySystem) {
  FamilyConfig a = test_config();
  FamilyConfig b = test_config();
  b.seed = 43;
  const auto fa = generate_family(a, 4);
  const auto fb = generate_family(b, 4);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_NE(fa[i].benchmark.name, fb[i].benchmark.name);
    EXPECT_NE(generated_system_digest(fa[i]), generated_system_digest(fb[i]));
  }
}

}  // namespace
}  // namespace scs
