// Tests for the replay buffer and OU exploration noise.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/noise.hpp"
#include "rl/replay.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

Transition make_transition(double tag) {
  Transition t;
  t.state = Vec{tag};
  t.action = Vec{0.0};
  t.reward = tag;
  t.next_state = Vec{tag + 1.0};
  t.done = false;
  return t;
}

TEST(ReplayBuffer, FillsThenWraps) {
  ReplayBuffer buf(3);
  for (int i = 0; i < 5; ++i) buf.add(make_transition(i));
  EXPECT_EQ(buf.size(), 3u);
  // Ring behavior: items 0 and 1 were overwritten by 3 and 4.
  double min_reward = 1e9;
  for (std::size_t i = 0; i < buf.size(); ++i)
    min_reward = std::min(min_reward, buf[i].reward);
  EXPECT_GE(min_reward, 2.0);
}

TEST(ReplayBuffer, SampleReturnsStoredTransitions) {
  ReplayBuffer buf(100);
  for (int i = 0; i < 50; ++i) buf.add(make_transition(i));
  Rng rng(1);
  const auto batch = buf.sample(32, rng);
  EXPECT_EQ(batch.size(), 32u);
  for (const Transition* t : batch) {
    EXPECT_GE(t->reward, 0.0);
    EXPECT_LT(t->reward, 50.0);
    EXPECT_DOUBLE_EQ(t->next_state[0], t->state[0] + 1.0);
  }
}

TEST(ReplayBuffer, SampleCoversBuffer) {
  ReplayBuffer buf(10);
  for (int i = 0; i < 10; ++i) buf.add(make_transition(i));
  Rng rng(2);
  std::vector<bool> seen(10, false);
  for (int round = 0; round < 50; ++round)
    for (const Transition* t : buf.sample(10, rng))
      seen[static_cast<std::size_t>(t->reward)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

TEST(ReplayBuffer, EmptySampleThrows) {
  ReplayBuffer buf(4);
  Rng rng(3);
  EXPECT_THROW(buf.sample(1, rng), PreconditionError);
  EXPECT_THROW(ReplayBuffer(0), PreconditionError);
}

TEST(OuNoise, MeanRevertsTowardZero) {
  OuNoise noise(1, /*theta=*/0.5, /*sigma=*/0.0);
  Rng rng(4);
  // With sigma = 0 the process decays deterministically.
  noise.reset();
  // Seed a nonzero state by sampling once with volatility...
  OuNoise noisy(1, 0.5, 1.0);
  Vec s = noisy.sample(rng);
  (void)s;
  // Deterministic check: run the zero-vol process from a known start.
  // (state starts at 0 and stays 0.)
  const Vec v = noise.sample(rng);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
}

TEST(OuNoise, StationaryVarianceIsBounded) {
  OuNoise noise(1, 0.15, 0.2);
  Rng rng(5);
  double acc2 = 0.0;
  const int steps = 20000;
  for (int i = 0; i < steps; ++i) {
    const Vec v = noise.sample(rng);
    acc2 += v[0] * v[0];
  }
  // OU stationary variance = sigma^2 / (2 theta) = 0.04 / 0.3 = 0.1333.
  const double var = acc2 / steps;
  EXPECT_NEAR(var, 0.1333, 0.05);
}

TEST(OuNoise, ResetZeroesState) {
  OuNoise noise(2, 0.15, 0.5);
  Rng rng(6);
  noise.sample(rng);
  noise.sample(rng);
  noise.reset();
  noise.set_sigma(0.0);
  const Vec v = noise.sample(rng);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(OuNoise, RejectsBadParams) {
  EXPECT_THROW(OuNoise(0), PreconditionError);
  OuNoise noise(1);
  EXPECT_THROW(noise.set_sigma(-1.0), PreconditionError);
}

}  // namespace
}  // namespace scs
