// Tests for the C1..C10 benchmark suite: Table 2's (n_x, d_f) columns, set
// geometry, and open-loop sanity (the plants are stabilizable by smooth
// feedback; the uncontrolled damped cores must not blow up instantly).
#include <gtest/gtest.h>

#include "ode/trajectory.hpp"
#include "systems/benchmarks.hpp"

namespace scs {
namespace {

struct Expected {
  BenchmarkId id;
  std::size_t n;
  int d;
};

class BenchmarkTable : public ::testing::TestWithParam<Expected> {};

TEST_P(BenchmarkTable, DimensionsMatchTable2) {
  const auto [id, n, d] = GetParam();
  const Benchmark b = make_benchmark(id);
  EXPECT_EQ(b.ccds.num_states, n);
  EXPECT_EQ(b.ccds.field_degree(), d);
  EXPECT_EQ(b.ccds.num_controls, 1u);
  EXPECT_NO_THROW(b.ccds.validate());
}

INSTANTIATE_TEST_SUITE_P(
    Table2, BenchmarkTable,
    ::testing::Values(Expected{BenchmarkId::kC1, 2, 5},
                      Expected{BenchmarkId::kC2, 2, 5},
                      Expected{BenchmarkId::kC3, 3, 2},
                      Expected{BenchmarkId::kC4, 4, 3},
                      Expected{BenchmarkId::kC5, 5, 2},
                      Expected{BenchmarkId::kC6, 6, 3},
                      Expected{BenchmarkId::kC7, 7, 2},
                      Expected{BenchmarkId::kC8, 9, 2},
                      Expected{BenchmarkId::kC9, 9, 2},
                      Expected{BenchmarkId::kC10, 12, 1}));

TEST(Benchmarks, AllIdsEnumerated) {
  const auto ids = all_benchmark_ids();
  EXPECT_EQ(ids.size(), 10u);
  EXPECT_EQ(benchmark_name(ids.front()), "C1");
  EXPECT_EQ(benchmark_name(ids.back()), "C10");
}

TEST(Benchmarks, PendulumMatchesPaperExample1) {
  const Benchmark b = make_benchmark(BenchmarkId::kC1);
  // x2' at (x1, x2, u) = (1, 1, 0): -0.056 + 1.56 - 9.875 - 0.1 = -8.471.
  const Vec dx = b.ccds.eval_open(Vec{1.0, 1.0}, Vec{0.0});
  EXPECT_DOUBLE_EQ(dx[0], 1.0);
  EXPECT_NEAR(dx[1], -8.471, 1e-12);
  // Geometry of Example 1.
  EXPECT_TRUE(b.ccds.init_set.contains(Vec{2.1, 0.0}));
  EXPECT_FALSE(b.ccds.init_set.contains(Vec{2.3, 0.0}));
  EXPECT_TRUE(b.ccds.unsafe_set.contains(Vec{2.6, 0.0}));
  EXPECT_FALSE(b.ccds.unsafe_set.contains(Vec{2.0, 0.0}));
}

TEST(Benchmarks, InitSetsAreInsideDomains) {
  Rng rng(2);
  for (const auto id : all_benchmark_ids()) {
    const Benchmark b = make_benchmark(id);
    for (int i = 0; i < 50; ++i) {
      const Vec x = b.ccds.init_set.sample(rng);
      EXPECT_TRUE(b.ccds.domain.contains(x, 1e-9))
          << b.name << " Theta sample escapes Psi";
      EXPECT_FALSE(b.ccds.unsafe_set.contains(x))
          << b.name << " Theta intersects X_u";
    }
  }
}

class BenchmarkStabilizability : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkStabilizability, DampedCoreKeepsShortHorizonsSafe) {
  // With u = 0 every benchmark's damped core must survive a short horizon
  // from Theta without entering X_u -- the RL stage then only has to improve
  // on a benign plant, mirroring the benchmark families the paper cites.
  const auto ids = all_benchmark_ids();
  const Benchmark b = make_benchmark(ids[GetParam()]);
  // C1/C2 (stiff oscillators) genuinely need control; skip the zero-input
  // check for them.
  if (b.name == "C1" || b.name == "C2") GTEST_SKIP();
  Rng rng(17);
  const VectorField f =
      b.ccds.closed_loop_field([&](const Vec&) {
        return Vec(b.ccds.num_controls, 0.0);
      });
  for (int trial = 0; trial < 10; ++trial) {
    const Vec x0 = b.ccds.init_set.sample(rng);
    SimulateOptions opts;
    opts.dt = 0.02;
    opts.max_steps = 500;
    opts.record = false;
    const Trajectory traj = simulate(
        f, x0, opts,
        [&](const Vec& x) { return b.ccds.unsafe_set.contains(x); });
    EXPECT_NE(traj.stop, StopReason::kPredicate)
        << b.name << " entered X_u from " << x0.to_string();
    EXPECT_NE(traj.stop, StopReason::kDiverged) << b.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkStabilizability,
                         ::testing::Range(0, 10));

}  // namespace
}  // namespace scs
