// Tests for the least-squares baseline fitter.
#include <gtest/gtest.h>

#include <cmath>

#include "baseline/ls_fit.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

TEST(LsFit, RecoversExactPolynomial) {
  Rng rng(1);
  std::vector<Vec> pts;
  Vec vals(100);
  for (int i = 0; i < 100; ++i) {
    Vec x(rng.uniform_vector(2, -1.0, 1.0));
    vals[i] = 1.0 - 2.0 * x[0] + 0.5 * x[0] * x[1];
    pts.push_back(std::move(x));
  }
  const LsFitResult fit = ls_polyfit(pts, vals, 2);
  EXPECT_LT(fit.max_error, 1e-9);
  EXPECT_LT(fit.rmse, 1e-9);
  EXPECT_NEAR(fit.poly.evaluate(Vec{0.5, 0.5}), 1.0 - 1.0 + 0.125, 1e-9);
}

TEST(LsFit, MinimizesSquaredErrorNotMaxError) {
  // For a step-like target, LS picks the mean behaviour; the max error is
  // substantially larger than the RMSE -- exactly the weakness Section 3.2
  // attributes to LS baselines.
  Rng rng(2);
  std::vector<Vec> pts;
  Vec vals(400);
  for (int i = 0; i < 400; ++i) {
    Vec x(rng.uniform_vector(1, -1.0, 1.0));
    vals[i] = x[0] > 0.9 ? 1.0 : 0.0;  // rare spike
    pts.push_back(std::move(x));
  }
  const LsFitResult fit = ls_polyfit(pts, vals, 1);
  EXPECT_GT(fit.max_error, 2.5 * fit.rmse);
}

TEST(LsFit, DegreeZeroIsMean) {
  std::vector<Vec> pts = {Vec{0.0}, Vec{1.0}, Vec{2.0}};
  const LsFitResult fit = ls_polyfit(pts, Vec{1.0, 2.0, 6.0}, 0);
  EXPECT_NEAR(fit.poly.evaluate(Vec{0.0}), 3.0, 1e-9);
}

TEST(LsFit, RejectsBadInput) {
  EXPECT_THROW(ls_polyfit({}, Vec(), 1), PreconditionError);
  std::vector<Vec> pts = {Vec{0.0}};
  EXPECT_THROW(ls_polyfit(pts, Vec{1.0, 2.0}, 1), PreconditionError);
  EXPECT_THROW(ls_polyfit(pts, Vec{1.0}, 3),  // more basis than samples
               PreconditionError);
}

}  // namespace
}  // namespace scs
