// Portfolio racing over the barrier ladder: speculative arms on the work
// pool, loser cancellation through child JobControl scopes, winner
// recording, and bitwise-deterministic replay of a recorded winner.
#include <gtest/gtest.h>

#include <vector>

#include "barrier/synthesis.hpp"
#include "poly/polynomial.hpp"
#include "systems/benchmarks.hpp"
#include "systems/ccds.hpp"
#include "util/cancellation.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace scs {
namespace {

/// The 2-D damped oscillator used across the barrier tests: feasible at
/// degree 2 under every lambda strategy.
Ccds toy2() {
  Ccds sys;
  sys.name = "toy2";
  sys.num_states = 2;
  sys.num_controls = 1;
  const auto x1 = Polynomial::variable(3, 0);
  const auto x2 = Polynomial::variable(3, 1);
  const auto u = Polynomial::variable(3, 2);
  sys.open_field = {x2, -x1 - x2 + u};
  const Box box = Box::centered(2, 2.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0, 0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 1.5, box);
  sys.control_bound = 1.0;
  return sys;
}

BarrierConfig race_config() {
  BarrierConfig cfg;
  cfg.degree_schedule = {2, 4};
  cfg.race.enabled = true;
  cfg.race.strategies = {LambdaStrategy::kConstant, LambdaStrategy::kLinear,
                         LambdaStrategy::kAlternating};
  return cfg;
}

TEST(BarrierRace, RaceFindsCertificateAndRecordsWinner) {
  const Ccds sys = toy2();
  const BarrierConfig cfg = race_config();
  const BarrierResult result = synthesize_barrier(sys, {Polynomial(2)}, cfg);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_TRUE(result.raced);
  EXPECT_GE(result.winner_arm, 0);
  EXPECT_FALSE(result.winner_arm_desc.empty());
  EXPECT_FALSE(result.accepted_via.empty());
  EXPECT_GE(result.arms_launched, 1);
  // The winning certificate actually separates Theta from X_u.
  EXPECT_GT(result.barrier.evaluate(Vec{0.0, 0.0}), 0.0);
  EXPECT_LT(result.barrier.evaluate(Vec{1.9, 1.9}), 0.0);
  // Accepted diagnostics describe the accepted solve, so they sit within
  // the acceptance tolerances.
  EXPECT_LE(result.max_identity_residual, cfg.identity_tol);
  EXPECT_GE(result.min_gram_eigenvalue, -cfg.gram_tol);
}

TEST(BarrierRace, ReplayReproducesRacedResultBitwise) {
  const Ccds sys = toy2();
  const BarrierConfig cfg = race_config();
  const BarrierResult raced = synthesize_barrier(sys, {Polynomial(2)}, cfg);
  ASSERT_TRUE(raced.success) << raced.failure_reason;
  ASSERT_GE(raced.winner_arm, 0);

  BarrierConfig replay_cfg = cfg;
  replay_cfg.race.replay_arm = raced.winner_arm;
  const BarrierResult replayed =
      synthesize_barrier(sys, {Polynomial(2)}, replay_cfg);
  ASSERT_TRUE(replayed.success) << replayed.failure_reason;
  EXPECT_TRUE(replayed.raced);
  // Bitwise: Polynomial equality is exact coefficient equality.
  EXPECT_TRUE(replayed.barrier == raced.barrier);
  EXPECT_TRUE(replayed.lambda == raced.lambda);
  EXPECT_EQ(replayed.degree, raced.degree);
  EXPECT_EQ(replayed.strategy_used, raced.strategy_used);
  EXPECT_EQ(replayed.accepted_via, raced.accepted_via);
  EXPECT_EQ(replayed.winner_arm, raced.winner_arm);
  EXPECT_EQ(replayed.winner_arm_desc, raced.winner_arm_desc);
  EXPECT_EQ(replayed.max_identity_residual, raced.max_identity_residual);
  EXPECT_EQ(replayed.min_gram_eigenvalue, raced.min_gram_eigenvalue);
}

TEST(BarrierRace, SerialWinnerArmIsReplayable) {
  // The serial ladder records winner_arm too; pinning it via replay_arm
  // reproduces the serial certificate bitwise (arm numerics are
  // schedule-independent by construction).
  const Ccds sys = toy2();
  BarrierConfig cfg;
  cfg.degree_schedule = {2, 4};
  cfg.lambda_strategy = LambdaStrategy::kLinear;
  const BarrierResult serial = synthesize_barrier(sys, {Polynomial(2)}, cfg);
  ASSERT_TRUE(serial.success) << serial.failure_reason;
  EXPECT_FALSE(serial.raced);
  ASSERT_GE(serial.winner_arm, 0);

  BarrierConfig replay_cfg = cfg;
  replay_cfg.race.replay_arm = serial.winner_arm;
  const BarrierResult replayed =
      synthesize_barrier(sys, {Polynomial(2)}, replay_cfg);
  ASSERT_TRUE(replayed.success) << replayed.failure_reason;
  EXPECT_TRUE(replayed.barrier == serial.barrier);
  EXPECT_TRUE(replayed.lambda == serial.lambda);
  EXPECT_EQ(replayed.winner_arm_desc, serial.winner_arm_desc);
}

TEST(BarrierRace, RaceIsReplayStableAcrossThreadCounts) {
  // Whatever arm wins under contention, its replay must not depend on the
  // pool size: replay runs exactly one arm from its own stream.
  const Ccds sys = toy2();
  const BarrierConfig cfg = race_config();
  const BarrierResult raced = synthesize_barrier(sys, {Polynomial(2)}, cfg);
  ASSERT_TRUE(raced.success) << raced.failure_reason;

  BarrierConfig replay_cfg = cfg;
  replay_cfg.race.replay_arm = raced.winner_arm;
  set_parallel_threads(1);
  const BarrierResult serial_replay =
      synthesize_barrier(sys, {Polynomial(2)}, replay_cfg);
  set_parallel_threads(0);
  ASSERT_TRUE(serial_replay.success) << serial_replay.failure_reason;
  EXPECT_TRUE(serial_replay.barrier == raced.barrier);
  EXPECT_TRUE(serial_replay.lambda == raced.lambda);
}

TEST(BarrierRace, RaceFailsCleanlyWhenNoArmFeasible) {
  // Destabilizing feedback on the pendulum: no degree <= 4 certificate
  // exists, so every arm completes without a winner.
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  BarrierConfig cfg;
  cfg.degree_schedule = {2};
  cfg.lambda_attempts = 2;
  cfg.race.enabled = true;
  cfg.race.strategies = {LambdaStrategy::kConstant, LambdaStrategy::kLinear};
  const BarrierResult result =
      synthesize_barrier(bench.ccds, {x1 * 10.0 + x2 * 2.0}, cfg);
  EXPECT_FALSE(result.success);
  EXPECT_TRUE(result.raced);
  EXPECT_EQ(result.winner_arm, -1);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(BarrierRace, RaceHonorsParentCancel) {
  const Ccds sys = toy2();
  BarrierConfig cfg = race_config();
  JobControl control;
  control.cancel();
  cfg.sdp.control = &control;
  const BarrierResult result = synthesize_barrier(sys, {Polynomial(2)}, cfg);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure_reason.find("preempted"), std::string::npos)
      << result.failure_reason;
}

TEST(BarrierRace, ReplayArmOutOfRangeIsRejected) {
  const Ccds sys = toy2();
  BarrierConfig cfg = race_config();
  cfg.race.replay_arm = 10000;
  const BarrierResult result = synthesize_barrier(sys, {Polynomial(2)}, cfg);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure_reason.find("replay_arm"), std::string::npos)
      << result.failure_reason;
}

TEST(BarrierRace, RaceConfigEntersConfigHash) {
  // Racing can change which certificate is produced, so it must be part
  // of the cache identity.
  BarrierConfig off;
  BarrierConfig on = off;
  on.race.enabled = true;
  on.race.strategies = {LambdaStrategy::kConstant, LambdaStrategy::kLinear};
  Fnv1a h_off, h_on, h_replay;
  hash_append(h_off, off);
  hash_append(h_on, on);
  BarrierConfig replay = on;
  replay.race.replay_arm = 3;
  hash_append(h_replay, replay);
  EXPECT_NE(h_off.digest(), h_on.digest());
  EXPECT_NE(h_on.digest(), h_replay.digest());
}

}  // namespace
}  // namespace scs
