// Property tests over the whole benchmark suite: closed-loop degree
// bookkeeping, evaluation consistency, and Lie-derivative coherence --
// the invariants the SOS stage silently relies on.
#include <gtest/gtest.h>

#include "poly/basis.hpp"
#include "poly/lie.hpp"
#include "systems/benchmarks.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

Polynomial random_controller(std::size_t n, int degree, Rng& rng) {
  const auto basis = monomials_up_to(n, degree);
  Vec c(basis.size());
  for (auto& v : c.data()) v = rng.uniform(-0.5, 0.5);
  return Polynomial::from_coefficients(basis, c);
}

class BenchmarkClosedLoop : public ::testing::TestWithParam<int> {};

TEST_P(BenchmarkClosedLoop, DegreeAndConsistencyInvariants) {
  const Benchmark bench = make_benchmark(all_benchmark_ids()[GetParam()]);
  const Ccds& sys = bench.ccds;
  Rng rng(100 + GetParam());

  for (int d_p = 1; d_p <= 3; ++d_p) {
    const Polynomial p = random_controller(sys.num_states, d_p, rng);
    const auto closed = sys.closed_loop({p});
    ASSERT_EQ(closed.size(), sys.num_states);

    // Degree bound: controls enter the benchmark fields affinely, so
    // deg(closed) <= max(d_f, d_p + (d_f - 1)) is loose but safe; check the
    // tight affine bound deg <= max(d_f, d_p) when u-coefficients are
    // constants (true for every benchmark).
    int closed_deg = 0;
    for (const auto& f : closed) closed_deg = std::max(closed_deg, f.degree());
    EXPECT_LE(closed_deg, std::max(sys.field_degree(), d_p))
        << bench.name << " d_p=" << d_p;

    // Pointwise consistency between symbolic closure and direct evaluation.
    for (int t = 0; t < 10; ++t) {
      const Vec x = sys.domain.sample(rng);
      const Vec u{p.evaluate(x)};
      const Vec direct = sys.eval_open(x, u);
      for (std::size_t i = 0; i < sys.num_states; ++i)
        EXPECT_NEAR(closed[i].evaluate(x), direct[i],
                    1e-7 * (1.0 + std::fabs(direct[i])))
            << bench.name;
    }

    // Lie derivative of a quadratic along the closed loop matches the
    // directional finite difference.
    const auto basis2 = monomials_up_to(sys.num_states, 2);
    Vec bc(basis2.size());
    for (auto& v : bc.data()) v = rng.uniform(-1.0, 1.0);
    const Polynomial barrier = Polynomial::from_coefficients(basis2, bc);
    const Polynomial lie = lie_derivative(barrier, closed);
    for (int t = 0; t < 5; ++t) {
      const Vec x = sys.domain.sample(rng);
      Vec dx(sys.num_states);
      for (std::size_t i = 0; i < sys.num_states; ++i)
        dx[i] = closed[i].evaluate(x);
      const double h = 1e-6;
      Vec xp = x;
      xp.axpy(h, dx);
      Vec xm = x;
      xm.axpy(-h, dx);
      const double fd =
          (barrier.evaluate(xp) - barrier.evaluate(xm)) / (2.0 * h);
      EXPECT_NEAR(lie.evaluate(x), fd, 1e-3 * (1.0 + std::fabs(fd)))
          << bench.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, BenchmarkClosedLoop,
                         ::testing::Range(0, 10));

TEST(BenchmarkProperty, ControlEntersAffinely) {
  // The SOS stage relies on deg_u(f) <= 1 for every benchmark: substituting
  // a degree-d controller must not square it.
  for (const auto id : all_benchmark_ids()) {
    const Benchmark bench = make_benchmark(id);
    const std::size_t n = bench.ccds.num_states;
    const std::size_t m = bench.ccds.num_controls;
    for (const auto& f : bench.ccds.open_field) {
      for (const auto& [mono, coeff] : f.terms()) {
        (void)coeff;
        int u_degree = 0;
        for (std::size_t k = n; k < n + m; ++k)
          u_degree += mono.exponent(k);
        EXPECT_LE(u_degree, 1) << bench.name;
      }
    }
  }
}

}  // namespace
}  // namespace scs
