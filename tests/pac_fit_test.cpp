// Tests for Algorithm 1: PAC polynomial approximation of a control law.
#include <gtest/gtest.h>

#include <cmath>

#include "pac/pac_fit.hpp"
#include "pac/scenario.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

SemialgebraicSet unit_box_domain(std::size_t n) {
  return SemialgebraicSet::from_box(Box::centered(n, 1.0));
}

PacSettings fast_settings() {
  PacSettings s;
  s.eps_list = {0.1, 0.05};  // keeps K small for unit tests
  s.max_degree = 3;
  return s;
}

TEST(PacFit, RecoversExactPolynomialAtDegreeOne) {
  // Target is itself linear: Algorithm 1 must stop at d = 1 with e ~ 0.
  const ScalarFn fn = [](const Vec& x) { return 2.0 * x[0] - 0.5 * x[1]; };
  Rng rng(1);
  const PacResult result =
      pac_approximate(fn, unit_box_domain(2), fast_settings(), rng);
  ASSERT_TRUE(result.success);
  EXPECT_EQ(result.model.degree, 1);
  EXPECT_LT(result.model.error, 1e-9);
  EXPECT_NEAR(result.model.poly.evaluate(Vec{0.5, 0.5}), 0.75, 1e-8);
}

TEST(PacFit, EscalatesDegreeForNonlinearTarget) {
  // tanh(2x) on [-1,1] needs degree 3 for error <= 0.05.
  const ScalarFn fn = [](const Vec& x) { return std::tanh(2.0 * x[0]); };
  Rng rng(2);
  PacSettings s = fast_settings();
  s.tau = 0.05;
  const PacResult result = pac_approximate(fn, unit_box_domain(1), s, rng);
  ASSERT_TRUE(result.success);
  EXPECT_GE(result.model.degree, 2);
  EXPECT_LE(result.model.error, 0.05);
  // The trace covers every degree attempted, in order.
  EXPECT_GE(result.trace.size(), 2u);
  EXPECT_EQ(result.trace.front().degree, 1);
}

TEST(PacFit, FailsWhenTauUnreachable) {
  // A spiky function that low-degree polynomials cannot approximate well.
  const ScalarFn fn = [](const Vec& x) {
    return x[0] > 0.0 ? 1.0 : -1.0;  // step function
  };
  Rng rng(3);
  PacSettings s = fast_settings();
  s.tau = 0.01;
  s.max_degree = 2;
  const PacResult result = pac_approximate(fn, unit_box_domain(1), s, rng);
  EXPECT_FALSE(result.success);
  // Best attempt is still reported.
  EXPECT_GT(result.model.error, 0.01);
}

TEST(PacFit, SampleCountsFollowTheorem3) {
  const ScalarFn fn = [](const Vec& x) { return x[0]; };
  Rng rng(4);
  PacSettings s;
  s.eps_list = {0.1};
  s.max_degree = 1;
  const PacResult result = pac_approximate(fn, unit_box_domain(2), s, rng);
  ASSERT_FALSE(result.trace.empty());
  const PacTraceRow& row = result.trace.front();
  EXPECT_EQ(row.samples,
            scenario_sample_count(0.1, s.eta, pac_template_kappa(2, 1)));
  EXPECT_EQ(row.samples, row.samples_used);
}

TEST(PacFit, SampleCapRecomputesEps) {
  const ScalarFn fn = [](const Vec& x) { return x[0]; };
  Rng rng(5);
  PacSettings s;
  s.eps_list = {0.001};  // would need ~tens of thousands of samples
  s.max_degree = 1;
  PacFitOptions opts;
  opts.max_samples = 500;
  const PacResult result =
      pac_approximate(fn, unit_box_domain(2), s, rng, opts);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_EQ(result.trace.front().samples_used, 500u);
  // Honest eps for 500 samples is much larger than the requested 0.001.
  EXPECT_GT(result.trace.front().eps, 0.05);
}

TEST(PacFit, EmpiricalViolationRateWithinEps) {
  // Fit with a real PAC budget, then measure the hold-out violation rate:
  // Theorem 3 promises it stays below eps (with high confidence).
  const ScalarFn fn = [](const Vec& x) {
    return std::sin(x[0]) * 0.5 + 0.25 * x[1];
  };
  Rng rng(6);
  PacSettings s;
  // check(error_list) needs at least two eps attempts per degree.
  s.eps_list = {0.1, 0.05};
  s.max_degree = 3;
  s.tau = 0.1;
  const PacResult result = pac_approximate(fn, unit_box_domain(2), s, rng);
  ASSERT_TRUE(result.success);
  const double rate = empirical_violation_rate(result.model, fn,
                                               unit_box_domain(2), 20000, rng);
  EXPECT_LE(rate, result.model.eps * 1.5 + 1e-3);
}

TEST(PacFit, VectorWrapperFitsEachChannel) {
  const auto fn = [](const Vec& x) { return Vec{x[0], -2.0 * x[1]}; };
  Rng rng(7);
  const PacVectorResult result = pac_approximate_vector(
      fn, 2, unit_box_domain(2), fast_settings(), rng);
  ASSERT_TRUE(result.success);
  ASSERT_EQ(result.models.size(), 2u);
  EXPECT_NEAR(result.models[0].poly.evaluate(Vec{0.3, 0.9}), 0.3, 1e-6);
  EXPECT_NEAR(result.models[1].poly.evaluate(Vec{0.3, 0.9}), -1.8, 1e-6);
}

TEST(PacFit, TraceRowsAreInternallyConsistent) {
  const ScalarFn fn = [](const Vec& x) { return std::tanh(x[0] + x[1]); };
  Rng rng(8);
  const PacResult result =
      pac_approximate(fn, unit_box_domain(2), fast_settings(), rng);
  int last_degree = 0;
  for (const auto& row : result.trace) {
    EXPECT_GE(row.degree, last_degree);  // degrees never decrease
    last_degree = row.degree;
    EXPECT_GT(row.samples_used, 0u);
    EXPECT_GE(row.error, 0.0);
    if (row.accepted) {
      EXPECT_TRUE(row.converged);
    }
  }
}

TEST(PacFit, MemoryGuardCapsSamples) {
  // A tiny design-matrix budget forces the cap regardless of Theorem 3.
  const ScalarFn fn = [](const Vec& x) { return x[0]; };
  Rng rng(10);
  PacSettings s;
  s.eps_list = {0.001};  // Theorem-3 K would be tens of thousands
  s.max_degree = 1;
  PacFitOptions opts;
  opts.max_design_bytes = 8 * 3 * 2000;  // room for ~2000 rows of v = 3
  const PacResult result =
      pac_approximate(fn, SemialgebraicSet::from_box(Box::centered(2, 1.0)),
                      s, rng, opts);
  ASSERT_FALSE(result.trace.empty());
  EXPECT_LE(result.trace.front().samples_used, 2000u);
  EXPECT_GT(result.trace.front().eps, 0.001);  // honestly recomputed
}

TEST(PacFit, RejectsBadSettings) {
  const ScalarFn fn = [](const Vec& x) { return x[0]; };
  Rng rng(9);
  PacSettings s;
  s.max_degree = 0;
  EXPECT_THROW(pac_approximate(fn, unit_box_domain(1), s, rng),
               PreconditionError);
  PacSettings s2;
  s2.eps_list = {};
  EXPECT_THROW(pac_approximate(fn, unit_box_domain(1), s2, rng),
               PreconditionError);
}

}  // namespace
}  // namespace scs
