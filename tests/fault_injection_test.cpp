// Fault-injection suite: with the deterministic FaultInjector armed, every
// sabotaged computation must either recover through the robustness layer or
// surface a structured status -- never crash, never return a silent wrong
// VERIFIED verdict.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"
#include "math/robust_solve.hpp"
#include "opt/minimax_fit.hpp"
#include "opt/sdp.hpp"
#include "pac/pac_fit.hpp"
#include "util/fault_injector.hpp"
#include "util/thread_pool.hpp"

namespace scs {
namespace {

/// Every test disarms on exit so later suites in this binary run clean.
class FaultInjection : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::instance().disarm(); }

  static Mat spd_matrix(std::size_t n, double diag) {
    Mat a(n, n);
    for (std::size_t i = 0; i < n; ++i) {
      a(i, i) = diag;
      if (i + 1 < n) {
        a(i, i + 1) = -1.0;
        a(i + 1, i) = -1.0;
      }
    }
    return a;
  }
};

TEST_F(FaultInjection, DisarmedInjectorIsInert) {
  FaultInjector& fi = FaultInjector::instance();
  // The binary may have been launched with SCS_FAULT_SEED set; this test is
  // about the disarmed state, so disarm explicitly first.
  fi.disarm();
  ASSERT_FALSE(fi.enabled());
  EXPECT_EQ(fi.perturb_pivot(FaultSite::kCholeskyPivot, 2.5), 2.5);
  EXPECT_EQ(fi.corrupt(FaultSite::kNanBoundary, 1.25), 1.25);
  EXPECT_FALSE(fi.should_fire(FaultSite::kSdpStall));
}

TEST_F(FaultInjection, CholeskyRetrySucceedsUnderPivotSabotage) {
  FaultInjector& fi = FaultInjector::instance();
  fi.arm(/*seed=*/42, /*rate=*/1.0, /*max_fires=*/2);
  fi.arm_site(FaultSite::kLuPivot, false);
  fi.arm_site(FaultSite::kSdpStall, false);
  fi.arm_site(FaultSite::kNanBoundary, false);

  // Well-conditioned SPD system: the sabotaged pivot kills the first
  // factorization attempts; the regularization ladder must recover once the
  // transient-fault budget is spent.
  const Mat a = spd_matrix(6, 4.0);
  Vec b(6);
  for (std::size_t i = 0; i < 6; ++i) b[i] = 1.0 + static_cast<double>(i);
  const LinearSolveReport report = robust_solve_spd(a, b);
  ASSERT_TRUE(report.ok()) << to_string(report.status);
  EXPECT_GT(fi.fires(FaultSite::kCholeskyPivot), 0u);
  EXPECT_GT(report.factor_attempts, 1);
  EXPECT_LT(report.residual_norm, 1e-8);
  // Cross-check against the true solution (clean solve after disarm).
  fi.disarm();
  const LinearSolveReport clean = robust_solve_spd(a, b);
  ASSERT_TRUE(clean.ok());
  for (std::size_t i = 0; i < 6; ++i)
    EXPECT_NEAR(report.x[i], clean.x[i], 1e-6);
}

TEST_F(FaultInjection, NearSingularSpdStillRecovers) {
  FaultInjector& fi = FaultInjector::instance();
  fi.arm(/*seed=*/7, /*rate=*/1.0, /*max_fires=*/1);
  fi.arm_site(FaultSite::kLuPivot, false);
  fi.arm_site(FaultSite::kSdpStall, false);
  fi.arm_site(FaultSite::kNanBoundary, false);

  // Nearly rank-deficient SPD matrix (tiny eigenvalue) + a sabotaged pivot:
  // the double-trouble case the regularization ladder exists for.
  Mat a = spd_matrix(5, 2.0);
  a(4, 4) = 1e-15;
  a(3, 4) = 0.0;
  a(4, 3) = 0.0;
  Vec b(5, 1.0);
  const LinearSolveReport report = robust_solve_spd(a, b);
  ASSERT_TRUE(report.ok()) << to_string(report.status);
  EXPECT_TRUE(std::isfinite(report.x.max_abs()));
}

TEST_F(FaultInjection, LuRetrySucceedsUnderPivotZeroing) {
  FaultInjector& fi = FaultInjector::instance();
  fi.arm(/*seed=*/11, /*rate=*/1.0, /*max_fires=*/2);
  fi.arm_site(FaultSite::kCholeskyPivot, false);
  fi.arm_site(FaultSite::kSdpStall, false);
  fi.arm_site(FaultSite::kNanBoundary, false);

  Mat a(4, 4);
  a(0, 0) = 3.0; a(0, 1) = 1.0; a(0, 2) = 0.0; a(0, 3) = 2.0;
  a(1, 0) = 1.0; a(1, 1) = 4.0; a(1, 2) = 1.0; a(1, 3) = 0.0;
  a(2, 0) = 0.0; a(2, 1) = 1.0; a(2, 2) = 5.0; a(2, 3) = 1.0;
  a(3, 0) = 2.0; a(3, 1) = 0.0; a(3, 2) = 1.0; a(3, 3) = 6.0;
  Vec b{1.0, -2.0, 3.0, 0.5};
  const LinearSolveReport report = robust_solve_linear(a, b);
  ASSERT_TRUE(report.ok()) << to_string(report.status);
  EXPECT_GT(fi.fires(FaultSite::kLuPivot), 0u);
  // Residual against the original matrix stays tight after recovery.
  Vec r = b;
  r -= matvec(a, report.x);
  EXPECT_LT(r.max_abs(), 1e-7);
}

TEST_F(FaultInjection, SdpReportsStalledNotGarbage) {
  FaultInjector& fi = FaultInjector::instance();
  fi.arm(/*seed=*/5, /*rate=*/1.0, /*max_fires=*/100000);
  fi.arm_site(FaultSite::kCholeskyPivot, false);
  fi.arm_site(FaultSite::kLuPivot, false);
  fi.arm_site(FaultSite::kNanBoundary, false);

  // min tr(X) s.t. X_00 + X_11 = 2 -- trivially solvable, but every
  // interior-point step is suppressed, so progress is impossible.
  SdpProblem p;
  p.block_dims = {2};
  p.block_obj_weight = {1.0};
  SdpConstraint c;
  c.entries = {{0, 0, 0, 1.0}, {0, 1, 1, 1.0}};
  c.rhs = 2.0;
  p.constraints.push_back(c);

  SdpOptions options;
  options.max_retries = 0;
  const SdpSolution sol = solve_sdp(p, options);
  EXPECT_EQ(sol.status, SdpStatus::kStalled) << to_string(sol.status);
  EXPECT_GT(fi.fires(FaultSite::kSdpStall), 0u);

  // With retries enabled the rescaled restarts are also suppressed: the
  // solver must still come back with a structured stall, having consumed
  // its bounded retry budget, instead of looping or asserting.
  SdpOptions retry_options;
  retry_options.max_retries = 2;
  const SdpSolution retried = solve_sdp(p, retry_options);
  EXPECT_EQ(retried.status, SdpStatus::kStalled) << to_string(retried.status);
  EXPECT_EQ(retried.restarts, 2);
}

TEST_F(FaultInjection, SdpRecoversWhenStallIsTransient) {
  FaultInjector& fi = FaultInjector::instance();
  // Budget below the stall window: the fault delays, then the solve runs.
  fi.arm(/*seed=*/5, /*rate=*/1.0, /*max_fires=*/5);
  fi.arm_site(FaultSite::kCholeskyPivot, false);
  fi.arm_site(FaultSite::kLuPivot, false);
  fi.arm_site(FaultSite::kNanBoundary, false);

  SdpProblem p;
  p.block_dims = {2};
  p.block_obj_weight = {1.0};
  SdpConstraint c;
  c.entries = {{0, 0, 0, 1.0}, {0, 1, 1, 1.0}};
  c.rhs = 2.0;
  p.constraints.push_back(c);
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged) << to_string(sol.status);
  EXPECT_NEAR(sol.primal_objective, 2.0, 1e-5);
}

TEST_F(FaultInjection, MinimaxSurfacesNonFiniteTargetsStructurally) {
  Mat design(4, 2);
  for (std::size_t i = 0; i < 4; ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = static_cast<double>(i);
  }
  Vec targets{0.0, 1.0, std::nan(""), 3.0};
  const MinimaxFitResult fit = minimax_fit(design, targets);
  EXPECT_FALSE(fit.ok);
  EXPECT_NE(fit.note.find("non-finite"), std::string::npos) << fit.note;
}

TEST_F(FaultInjection, PacDropsInjectedNansAndStillFits) {
  // Single-threaded so the injected-NaN positions are reproducible.
  set_parallel_threads(1);
  FaultInjector& fi = FaultInjector::instance();
  fi.arm(/*seed=*/17, /*rate=*/1.0, /*max_fires=*/6);
  fi.arm_site(FaultSite::kCholeskyPivot, false);
  fi.arm_site(FaultSite::kLuPivot, false);
  fi.arm_site(FaultSite::kSdpStall, false);

  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PacSettings settings = bench.pac;
  settings.max_degree = 2;
  PacFitOptions options;
  options.max_samples = 400;
  Rng rng(9);
  const ScalarFn fn = [](const Vec& x) { return 0.5 * x[0] - 0.25 * x[1]; };
  const PacResult result =
      pac_approximate(fn, bench.ccds.domain, settings, rng, options);
  set_parallel_threads(0);

  EXPECT_EQ(fi.fires(FaultSite::kNanBoundary), 6u);
  std::uint64_t dropped = 0;
  for (const auto& row : result.trace) dropped += row.dropped_samples;
  EXPECT_EQ(dropped, 6u);
  // The surviving scenario program still fits the (linear) target well.
  EXPECT_TRUE(std::isfinite(result.model.error));
}

TEST_F(FaultInjection, PipelineReportsUnverifiedInsteadOfAborting) {
  FaultInjector& fi = FaultInjector::instance();
  // Permanently suppress interior-point progress: the barrier stage cannot
  // certify anything, so the pipeline must degrade to a structured
  // UNVERIFIED verdict -- and must NOT claim VERIFIED.
  fi.arm(/*seed=*/23, /*rate=*/1.0, /*max_fires=*/std::uint64_t{1} << 40);
  fi.arm_site(FaultSite::kCholeskyPivot, false);
  fi.arm_site(FaultSite::kLuPivot, false);
  fi.arm_site(FaultSite::kNanBoundary, false);

  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.seed = 3;
  const ControlLaw teacher = [](const Vec& x) {
    const double x1 = x[0];
    return Vec{9.875 * x1 - 1.56 * x1 * x1 * x1 + 0.056 * std::pow(x1, 5) -
               x1 - 2.0 * x[1]};
  };
  const SynthesisResult result = synthesize_from_law(bench, teacher, cfg);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.verdict, "UNVERIFIED");
  EXPECT_EQ(result.failure_stage, "barrier");
  EXPECT_FALSE(result.failure_message.empty());
  EXPECT_GT(fi.fires(FaultSite::kSdpStall), 0u);
}

TEST_F(FaultInjection, DeterministicReplay) {
  FaultInjector& fi = FaultInjector::instance();
  // The same seed must produce the same fire pattern, probe for probe.
  std::vector<bool> first;
  fi.arm(/*seed=*/99, /*rate=*/0.3, /*max_fires=*/1000);
  for (int i = 0; i < 200; ++i)
    first.push_back(fi.should_fire(FaultSite::kNanBoundary));
  const std::uint64_t fires1 = fi.fires(FaultSite::kNanBoundary);
  fi.disarm();
  fi.arm(/*seed=*/99, /*rate=*/0.3, /*max_fires=*/1000);
  for (int i = 0; i < 200; ++i)
    EXPECT_EQ(fi.should_fire(FaultSite::kNanBoundary), first[i]) << i;
  EXPECT_EQ(fi.fires(FaultSite::kNanBoundary), fires1);
}

}  // namespace
}  // namespace scs
