// Tests for the RK4 / RKF45 integrators and trajectory simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "ode/integrator.hpp"
#include "ode/trajectory.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

TEST(Rk4, ExponentialDecayOrder) {
  // xdot = -x, x(0) = 1: x(t) = e^{-t}. RK4 local error ~ dt^5.
  const VectorField f = [](const Vec& x) { return Vec{-x[0]}; };
  Vec x{1.0};
  const double dt = 0.1;
  for (int i = 0; i < 10; ++i) x = rk4_step(f, x, dt);
  // Global error ~ C * dt^4 with C ~ 1e-3 here.
  EXPECT_NEAR(x[0], std::exp(-1.0), 1e-6);
}

TEST(Rk4, HarmonicOscillatorEnergy) {
  // xdot = (x2, -x1): energy conserved to O(dt^4) per period.
  const VectorField f = [](const Vec& x) { return Vec{x[1], -x[0]}; };
  Vec x{1.0, 0.0};
  const double dt = 0.01;
  for (int i = 0; i < 628; ++i) x = rk4_step(f, x, dt);  // ~one period
  EXPECT_NEAR(x[0] * x[0] + x[1] * x[1], 1.0, 1e-8);
  EXPECT_NEAR(x[0], 1.0, 1e-4);
}

TEST(Rk4, ConvergenceOrderIsFour) {
  const VectorField f = [](const Vec& x) { return Vec{x[0]}; };
  const double exact = std::exp(1.0);
  double prev_err = 0.0;
  for (int halvings = 0; halvings < 3; ++halvings) {
    const int steps = 10 << halvings;
    const double dt = 1.0 / steps;
    Vec x{1.0};
    for (int i = 0; i < steps; ++i) x = rk4_step(f, x, dt);
    const double err = std::fabs(x[0] - exact);
    if (halvings > 0) {
      // Halving dt should shrink the error by ~2^4.
      EXPECT_LT(err, prev_err / 12.0);
    }
    prev_err = err;
  }
}

TEST(Rkf45, AdaptiveStepMeetsTolerance) {
  const VectorField f = [](const Vec& x) { return Vec{-10.0 * x[0]}; };
  Vec x{1.0};
  double t = 0.0, dt = 0.1;
  while (t < 1.0) {
    double used = 0.0, next = 0.0;
    x = rkf45_step(f, x, std::min(dt, 1.0 - t), 1e-10, &used, &next);
    t += used;
    dt = next;
  }
  EXPECT_NEAR(x[0], std::exp(-10.0), 1e-6);
}

TEST(Simulate, StopsOnPredicate) {
  const VectorField f = [](const Vec&) { return Vec{1.0}; };  // xdot = 1
  SimulateOptions opts;
  opts.dt = 0.1;
  opts.max_steps = 1000;
  const Trajectory traj = simulate(f, Vec{0.0}, opts,
                                   [](const Vec& x) { return x[0] > 1.0; });
  EXPECT_EQ(traj.stop, StopReason::kPredicate);
  EXPECT_GT(traj.back()[0], 1.0);
  EXPECT_LT(traj.back()[0], 1.3);
}

TEST(Simulate, ReachesHorizon) {
  const VectorField f = [](const Vec& x) { return Vec{-x[0]}; };
  SimulateOptions opts;
  opts.dt = 0.01;
  opts.max_steps = 100;
  const Trajectory traj = simulate(f, Vec{1.0}, opts);
  EXPECT_EQ(traj.stop, StopReason::kHorizonReached);
  EXPECT_EQ(traj.size(), 101u);  // initial state + 100 steps
  EXPECT_NEAR(traj.times.back(), 1.0, 1e-12);
}

TEST(Simulate, DetectsDivergence) {
  const VectorField f = [](const Vec& x) { return Vec{x[0] * x[0]}; };
  SimulateOptions opts;
  opts.dt = 0.5;
  opts.max_steps = 200;
  opts.divergence_norm = 1e3;
  const Trajectory traj = simulate(f, Vec{2.0}, opts);
  EXPECT_EQ(traj.stop, StopReason::kDiverged);
}

TEST(Simulate, CompactModeKeepsEndpoints) {
  const VectorField f = [](const Vec& x) { return Vec{-x[0]}; };
  SimulateOptions opts;
  opts.dt = 0.01;
  opts.max_steps = 50;
  opts.record = false;
  const Trajectory traj = simulate(f, Vec{1.0}, opts);
  EXPECT_LE(traj.size(), 2u);
  EXPECT_LT(traj.back()[0], 1.0);
}

TEST(Integrators, RejectBadInputs) {
  const VectorField f = [](const Vec& x) { return x; };
  EXPECT_THROW(rk4_step(f, Vec{1.0}, 0.0), PreconditionError);
  EXPECT_THROW(rkf45_step(f, Vec{1.0}, -1.0, 1e-6, nullptr, nullptr),
               PreconditionError);
}

}  // namespace
}  // namespace scs
