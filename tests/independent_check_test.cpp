// The independent certificate checker must (a) accept the stored golden C1
// certificate and (b) reject perturbed variants of it -- coefficient noise,
// a shifted/negated barrier, a wrong lambda. (b) is the guard against a
// vacuously-passing checker: a checker that accepts everything would make
// the fuzz campaign's "zero soundness violations" claim meaningless.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "barrier/independent_check.hpp"
#include "obs/json_reader.hpp"
#include "poly/parse.hpp"
#include "systems/benchmarks.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

#ifndef SCS_GOLDEN_DIR
#define SCS_GOLDEN_DIR "tests/golden"
#endif

/// The default rho the pipeline's BarrierConfig uses (the golden C1 run
/// was produced with it).
constexpr double kRho = 1e-3;

struct GoldenCertificate {
  Polynomial controller;
  Polynomial barrier;
  Polynomial lambda;
};

GoldenCertificate load_golden_c1(std::size_t num_states) {
  const std::string path = std::string(SCS_GOLDEN_DIR) + "/c1_verified.json";
  std::ifstream is(path);
  EXPECT_TRUE(is.good()) << "missing golden file " << path;
  std::stringstream buffer;
  buffer << is.rdbuf();
  const JsonValue doc = json_parse(buffer.str());
  GoldenCertificate cert;
  cert.controller =
      parse_polynomial(doc.find("controller")->string_or(""), num_states);
  cert.barrier =
      parse_polynomial(doc.find("barrier")->string_or(""), num_states);
  cert.lambda =
      parse_polynomial(doc.find("lambda")->string_or(""), num_states);
  return cert;
}

class IndependentCheckGolden : public ::testing::Test {
 protected:
  void SetUp() override {
    bench_ = make_benchmark(BenchmarkId::kC1);
    cert_ = load_golden_c1(bench_.ccds.num_states);
    ASSERT_FALSE(cert_.barrier.is_zero());
  }

  IndependentCheckReport check(const Polynomial& barrier,
                               const Polynomial& lambda) const {
    return independent_check(bench_.ccds, {cert_.controller}, barrier, lambda,
                             kRho);
  }

  Benchmark bench_;
  GoldenCertificate cert_;
};

TEST_F(IndependentCheckGolden, AcceptsTheStoredCertificate) {
  const IndependentCheckReport report = check(cert_.barrier, cert_.lambda);
  EXPECT_TRUE(report.accepted) << report.detail;
  // All four conditions must have been evaluated on real points -- an
  // accept that never saw a sample is exactly the vacuous pass this suite
  // exists to rule out.
  ASSERT_EQ(report.conditions.size(), 4u);
  EXPECT_NE(report.find("init"), nullptr);
  EXPECT_NE(report.find("unsafe"), nullptr);
  EXPECT_NE(report.find("lambda_identity"), nullptr);
  EXPECT_GT(report.find("init")->points, 0u);
  EXPECT_GT(report.find("unsafe")->points, 0u);
  EXPECT_GT(report.find("lambda_identity")->points, 0u);
  EXPECT_GT(report.scale, 0.0);
}

TEST_F(IndependentCheckGolden, RejectsAnUpshiftedBarrier) {
  // B + 0.5 stays >= 0 on Theta but violates B < 0 on X_u.
  const Polynomial shifted =
      cert_.barrier + Polynomial::constant(cert_.barrier.num_vars(), 0.5);
  const IndependentCheckReport report = check(shifted, cert_.lambda);
  EXPECT_FALSE(report.accepted);
  ASSERT_NE(report.find("unsafe"), nullptr);
  EXPECT_FALSE(report.find("unsafe")->passed) << report.detail;
}

TEST_F(IndependentCheckGolden, RejectsANegatedBarrier) {
  // -B flips condition (i): B >= 0 on Theta becomes <= 0.
  const IndependentCheckReport report = check(-cert_.barrier, cert_.lambda);
  EXPECT_FALSE(report.accepted);
  ASSERT_NE(report.find("init"), nullptr);
  EXPECT_FALSE(report.find("init")->passed) << report.detail;
}

TEST_F(IndependentCheckGolden, RejectsAWrongLambda) {
  // lambda' = lambda + 10 subtracts 10 B from the certified decrease
  // L_f B - lambda B; where B is near its positive maximum the identity
  // drops far below rho. The barrier itself is untouched -- only the
  // lambda-identity condition may catch this.
  const Polynomial wrong =
      cert_.lambda + Polynomial::constant(cert_.lambda.num_vars(), 10.0);
  const IndependentCheckReport report = check(cert_.barrier, wrong);
  EXPECT_FALSE(report.accepted);
  ASSERT_NE(report.find("lambda_identity"), nullptr);
  EXPECT_FALSE(report.find("lambda_identity")->passed) << report.detail;
}

TEST_F(IndependentCheckGolden, RejectsCoefficientNoise) {
  // Deterministic 35-55% relative noise on every coefficient: the result
  // is no longer a barrier certificate for this system and at least one
  // condition must flag it.
  Rng rng(11);
  Polynomial noisy = cert_.barrier;
  for (const auto& [mono, coeff] : cert_.barrier.terms()) {
    const double factor =
        1.0 + (rng.uniform01() < 0.5 ? -1.0 : 1.0) * rng.uniform(0.35, 0.55);
    noisy.set_coefficient(mono, coeff * factor);
  }
  const IndependentCheckReport report = check(noisy, cert_.lambda);
  EXPECT_FALSE(report.accepted) << report.detail;
}

TEST_F(IndependentCheckGolden, LambdaIdentitySkippedWithoutLambda) {
  // A default-constructed lambda (num_vars 0) disables the identity check
  // but the three Theorem-1 conditions still run.
  const IndependentCheckReport report = check(cert_.barrier, Polynomial());
  EXPECT_TRUE(report.accepted) << report.detail;
  EXPECT_EQ(report.conditions.size(), 3u);
  EXPECT_EQ(report.find("lambda_identity"), nullptr);
}

TEST(IndependentCheck, RequiresMatchingVariableCount) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  EXPECT_THROW(independent_check(bench.ccds, {Polynomial(2)}, Polynomial(3),
                                 Polynomial(), kRho),
               std::exception);
}

}  // namespace
}  // namespace scs
