// Run-ledger tests (src/obs/ledger) plus the JSON reader backing it
// (src/obs/json_reader): record round-trips, torn/truncated-line
// rejection, schema-version policy, and concurrent-append integrity --
// the single-locked-write discipline must keep every record intact when
// many threads append to one file.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/json_reader.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger.hpp"

namespace scs {
namespace {

namespace fs = std::filesystem;

/// Fresh file path in the system temp dir, removed on destruction.
class TempFile {
 public:
  explicit TempFile(const std::string& stem) {
    path_ = (fs::temp_directory_path() /
             (stem + "-" + std::to_string(::getpid()) + ".jsonl"))
                .string();
    std::remove(path_.c_str());
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

LedgerRecord sample_synthesis() {
  LedgerRecord r;
  r.kind = "synthesis";
  r.source = "synthesize";
  r.run_id = "test-run-1";
  r.config_key = "00000000deadbeef";
  r.seed = 2024;
  r.threads = 4;
  r.benchmark = "C1";
  r.verdict = "VERIFIED";
  r.pac_valid = true;
  r.pac_eps = 0.01;
  r.pac_error = 0.0162;
  r.pac_degree = 3;
  r.pac_samples = 7164;
  r.barrier_degree = 4;
  r.rl_seconds = 1.5;
  r.pac_seconds = 0.25;
  r.barrier_seconds = 2.0;
  r.validation_seconds = 0.125;
  r.total_seconds = 3.875;
  r.metrics_json = "{\"counters\":{\"sdp.solves\":3}}";
  return r;
}

// ---- JSON reader --------------------------------------------------------

TEST(JsonReader, ParsesScalarsArraysObjects) {
  const JsonValue doc =
      json_parse("{\"a\": 1.5, \"b\": [true, null, \"x\"], \"c\": -2e3}");
  ASSERT_TRUE(doc.is_object());
  EXPECT_DOUBLE_EQ(doc.find("a")->number_or(0), 1.5);
  const JsonValue* b = doc.find("b");
  ASSERT_TRUE(b != nullptr && b->is_array());
  ASSERT_EQ(b->items.size(), 3u);
  EXPECT_TRUE(b->items[0].bool_or(false));
  EXPECT_TRUE(b->items[1].is_null());
  EXPECT_EQ(b->items[2].string_or(""), "x");
  EXPECT_DOUBLE_EQ(doc.find("c")->number_or(0), -2000.0);
  EXPECT_EQ(doc.find("missing"), nullptr);
}

TEST(JsonReader, DecodesEscapesAndSurrogatePairs) {
  EXPECT_EQ(json_parse("\"a\\n\\t\\\"\\\\b\"").string, "a\n\t\"\\b");
  EXPECT_EQ(json_parse("\"\\u00e9\"").string, "\xc3\xa9");          // e-acute
  EXPECT_EQ(json_parse("\"\\ud83d\\ude00\"").string,
            "\xf0\x9f\x98\x80");  // U+1F600 via surrogate pair
  EXPECT_THROW(json_parse("\"\\ud83d\""), JsonParseError);  // lone surrogate
}

TEST(JsonReader, RejectsWhatTheValidatorRejects) {
  for (const char* bad :
       {"", "{", "{\"a\":1,}", "[1 2]", "nan", "Infinity", "01", "{} x",
        "\"a\nb\""}) {
    EXPECT_THROW(json_parse(bad), JsonParseError) << bad;
    JsonValue out;
    std::string error;
    EXPECT_FALSE(json_try_parse(bad, &out, &error)) << bad;
    EXPECT_FALSE(error.empty()) << bad;
  }
}

TEST(JsonReader, AgreesWithValidatorOnEmittedBlobs) {
  // Everything JsonWriter emits must parse under both the validator and
  // the DOM reader.
  JsonWriter w;
  w.begin_object();
  w.key("weird \"key\"").value("nl\nctl\x01");
  w.key("nums").begin_array().value(0.029328).value(-1).end_array();
  w.end_object();
  EXPECT_TRUE(json_parse_valid(w.str()));
  const JsonValue doc = json_parse(w.str());
  EXPECT_EQ(doc.find("weird \"key\"")->string, "nl\nctl\x01");
}

TEST(JsonReader, DuplicateKeysLastWins) {
  EXPECT_DOUBLE_EQ(json_parse("{\"k\":1,\"k\":2}").find("k")->number, 2.0);
}

// ---- Record round-trip --------------------------------------------------

TEST(Ledger, SynthesisRecordRoundTrips) {
  const LedgerRecord r = sample_synthesis();
  const std::string line = ledger_record_json(r);
  EXPECT_TRUE(json_parse_valid(line));

  LedgerRecord back;
  std::string error;
  ASSERT_TRUE(ledger_record_parse(line, &back, &error)) << error;
  EXPECT_EQ(back.kind, "synthesis");
  EXPECT_EQ(back.source, "synthesize");
  EXPECT_EQ(back.config_key, "00000000deadbeef");
  EXPECT_EQ(back.seed, 2024u);
  EXPECT_EQ(back.threads, 4);
  EXPECT_EQ(back.benchmark, "C1");
  EXPECT_EQ(back.verdict, "VERIFIED");
  EXPECT_TRUE(back.pac_valid);
  EXPECT_DOUBLE_EQ(back.pac_eps, 0.01);
  EXPECT_DOUBLE_EQ(back.pac_error, 0.0162);
  EXPECT_EQ(back.pac_degree, 3);
  EXPECT_EQ(back.pac_samples, 7164u);
  EXPECT_EQ(back.barrier_degree, 4);
  EXPECT_DOUBLE_EQ(back.total_seconds, 3.875);
  EXPECT_EQ(back.metrics_json, "{\"counters\":{\"sdp.solves\":3}}");
}

TEST(Ledger, BenchRecordRoundTrips) {
  LedgerRecord r;
  r.kind = "bench";
  r.source = "bench_obs";
  r.run_id = "id-1";
  r.values_json = "{\"enabled_overhead_pct\":3.5,\"ok\":true}";
  LedgerRecord back;
  std::string error;
  ASSERT_TRUE(ledger_record_parse(ledger_record_json(r), &back, &error))
      << error;
  EXPECT_EQ(back.kind, "bench");
  EXPECT_EQ(back.source, "bench_obs");
  EXPECT_EQ(back.values_json, "{\"enabled_overhead_pct\":3.5,\"ok\":true}");
}

TEST(Ledger, ParseRejectsTornAndForeignRecords) {
  const std::string line = ledger_record_json(sample_synthesis());
  std::string error;
  // Torn write: any strict prefix of a record must be rejected.
  EXPECT_FALSE(ledger_record_parse(line.substr(0, line.size() / 2), nullptr,
                                   &error));
  EXPECT_FALSE(error.empty());
  // Schema from the future: reject, don't misread.
  EXPECT_FALSE(ledger_record_parse(
      "{\"schema\":2,\"kind\":\"synthesis\",\"run_id\":\"x\"}", nullptr,
      &error));
  EXPECT_NE(error.find("schema"), std::string::npos);
  // Unknown kind / missing required fields.
  EXPECT_FALSE(ledger_record_parse(
      "{\"schema\":1,\"kind\":\"mystery\",\"run_id\":\"x\"}", nullptr));
  EXPECT_FALSE(ledger_record_parse(
      "{\"schema\":1,\"kind\":\"synthesis\",\"run_id\":\"x\"}", nullptr));
  EXPECT_FALSE(ledger_record_parse("not json at all", nullptr));
}

// ---- File append / read -------------------------------------------------

TEST(Ledger, AppendFillsIdentityAndReadsBack) {
  TempFile file("scs-ledger-append");
  LedgerRecord r = sample_synthesis();
  r.run_id.clear();  // empty: append assigns a fresh unique id
  r.timestamp_ms = 0;
  ASSERT_TRUE(ledger_append(file.path(), r));
  ASSERT_TRUE(ledger_append(file.path(), r));

  const LedgerReadResult read = ledger_read(file.path());
  EXPECT_EQ(read.skipped, 0) << (read.errors.empty() ? "" : read.errors[0]);
  ASSERT_EQ(read.records.size(), 2u);
  // run_id / timestamp were filled in; ids are unique per append.
  EXPECT_FALSE(read.records[0].run_id.empty());
  EXPECT_NE(read.records[0].run_id, read.records[1].run_id);
  EXPECT_GT(read.records[0].timestamp_ms, 0);
  EXPECT_EQ(read.records[0].benchmark, "C1");
}

TEST(Ledger, ReadSkipsTruncatedTrailingLineKeepsIntactRecords) {
  TempFile file("scs-ledger-torn");
  ASSERT_TRUE(ledger_append(file.path(), sample_synthesis()));
  ASSERT_TRUE(ledger_append(file.path(), sample_synthesis()));
  // Simulate a crash mid-append: half a record, no newline.
  const std::string line = ledger_record_json(sample_synthesis());
  std::ofstream(file.path(), std::ios::app | std::ios::binary)
      << line.substr(0, line.size() / 2);

  const LedgerReadResult read = ledger_read(file.path());
  EXPECT_EQ(read.records.size(), 2u);
  EXPECT_EQ(read.skipped, 1);
  ASSERT_EQ(read.errors.size(), 1u);
  EXPECT_NE(read.errors[0].find("line 3"), std::string::npos)
      << read.errors[0];
}

TEST(Ledger, MissingFileReportsOneErrorZeroRecords) {
  const LedgerReadResult read = ledger_read("/nonexistent/scs-ledger.jsonl");
  EXPECT_TRUE(read.records.empty());
  ASSERT_EQ(read.errors.size(), 1u);
}

TEST(Ledger, ConcurrentAppendsStayIntact) {
  TempFile file("scs-ledger-concurrent");
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50;
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        LedgerRecord r = sample_synthesis();
        r.benchmark = "C" + std::to_string(t + 1);
        r.seed = static_cast<std::uint64_t>(t * kPerThread + i);
        ASSERT_TRUE(ledger_append(file.path(), r));
      }
    });
  }
  for (std::thread& w : workers) w.join();

  const LedgerReadResult read = ledger_read(file.path());
  EXPECT_EQ(read.skipped, 0) << (read.errors.empty() ? "" : read.errors[0]);
  ASSERT_EQ(read.records.size(),
            static_cast<std::size_t>(kThreads * kPerThread));
  // Every record intact and attributable: the (benchmark, seed) pairs are
  // exactly the ones written, each exactly once.
  std::vector<bool> seen(kThreads * kPerThread, false);
  for (const LedgerRecord& r : read.records) {
    ASSERT_LT(r.seed, seen.size());
    EXPECT_FALSE(seen[r.seed]) << "duplicate seed " << r.seed;
    seen[r.seed] = true;
    EXPECT_EQ(r.benchmark,
              "C" + std::to_string(r.seed / kPerThread + 1));
  }
}

TEST(Ledger, ResolvePathPrefersConfigured) {
  EXPECT_EQ(resolve_ledger_path("explicit.jsonl"), "explicit.jsonl");
  // With no SCS_LEDGER in the test environment, empty resolves to off.
  if (ledger_env_path().empty()) EXPECT_EQ(resolve_ledger_path(""), "");
}

}  // namespace
}  // namespace scs
