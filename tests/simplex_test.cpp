// Tests for the two-phase revised simplex LP solver.
#include <gtest/gtest.h>

#include "opt/simplex.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

TEST(Simplex, SolvesTextbookLp) {
  // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (x,y >= 0).
  // Standard form with slacks; optimum (2, 6), objective 36.
  LpProblem lp;
  lp.a = Mat(3, 5);
  lp.a.set_row(0, Vec{1.0, 0.0, 1.0, 0.0, 0.0});
  lp.a.set_row(1, Vec{0.0, 2.0, 0.0, 1.0, 0.0});
  lp.a.set_row(2, Vec{3.0, 2.0, 0.0, 0.0, 1.0});
  lp.b = Vec{4.0, 12.0, 18.0};
  lp.c = Vec{-3.0, -5.0, 0.0, 0.0, 0.0};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 2.0, 1e-8);
  EXPECT_NEAR(sol.x[1], 6.0, 1e-8);
  EXPECT_NEAR(sol.objective, -36.0, 1e-8);
}

TEST(Simplex, DetectsInfeasible) {
  // x1 + x2 = -1 with x >= 0 is infeasible... encoded as x1 + x2 = 1 and
  // x1 + x2 = 3 simultaneously.
  LpProblem lp;
  lp.a = Mat(2, 2);
  lp.a.set_row(0, Vec{1.0, 1.0});
  lp.a.set_row(1, Vec{1.0, 1.0});
  lp.b = Vec{1.0, 3.0};
  lp.c = Vec{1.0, 1.0};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kInfeasible);
}

TEST(Simplex, DetectsUnbounded) {
  // min -x1 s.t. x1 - x2 = 0: x1 can grow without bound.
  LpProblem lp;
  lp.a = Mat(1, 2);
  lp.a.set_row(0, Vec{1.0, -1.0});
  lp.b = Vec{0.0};
  lp.c = Vec{-1.0, 0.0};
  EXPECT_EQ(solve_lp(lp).status, LpStatus::kUnbounded);
}

TEST(Simplex, HandlesNegativeRhs) {
  // -x1 = -5  =>  x1 = 5.
  LpProblem lp;
  lp.a = Mat(1, 1);
  lp.a(0, 0) = -1.0;
  lp.b = Vec{-5.0};
  lp.c = Vec{1.0};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.x[0], 5.0, 1e-9);
}

TEST(Simplex, DegenerateProblemTerminates) {
  // A degenerate LP (redundant constraints meeting at the optimum).
  LpProblem lp;
  lp.a = Mat(3, 5);
  lp.a.set_row(0, Vec{1.0, 1.0, 1.0, 0.0, 0.0});
  lp.a.set_row(1, Vec{1.0, 1.0, 0.0, 1.0, 0.0});
  lp.a.set_row(2, Vec{2.0, 2.0, 0.0, 0.0, 1.0});
  lp.b = Vec{1.0, 1.0, 2.0};
  lp.c = Vec{-1.0, -2.0, 0.0, 0.0, 0.0};
  const LpSolution sol = solve_lp(lp);
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  EXPECT_NEAR(sol.objective, -2.0, 1e-8);
}

class SimplexProperty : public ::testing::TestWithParam<int> {};

TEST_P(SimplexProperty, RandomFeasibleLpSatisfiesKkt) {
  Rng rng(GetParam());
  const std::size_t m = 2 + rng.index(5);
  const std::size_t n = m + 1 + rng.index(6);
  // Construct a feasible problem: pick x0 >= 0, set b = A x0.
  LpProblem lp;
  lp.a = Mat(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j) lp.a(i, j) = rng.uniform(-1.0, 1.0);
  Vec x0(n);
  for (auto& v : x0) v = rng.uniform(0.0, 2.0);
  lp.b = matvec(lp.a, x0);
  lp.c = Vec(n);
  for (auto& v : lp.c.data()) v = rng.uniform(-1.0, 1.0);

  const LpSolution sol = solve_lp(lp);
  if (sol.status == LpStatus::kUnbounded) GTEST_SKIP();
  ASSERT_EQ(sol.status, LpStatus::kOptimal);
  // Primal feasibility.
  EXPECT_LT((matvec(lp.a, sol.x) - lp.b).max_abs(), 1e-6);
  for (double v : sol.x) EXPECT_GE(v, -1e-9);
  // Optimality: objective no worse than a batch of random feasible points
  // built by projecting x0 (weak sanity check) and c'x <= c'x0.
  EXPECT_LE(sol.objective, dot(lp.c, x0) + 1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProperty, ::testing::Range(1, 26));

}  // namespace
}  // namespace scs
