// Tests for the general Putinar positivity certifier.
#include <gtest/gtest.h>

#include "sos/certificate.hpp"
#include "sos/putinar.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

Polynomial ball_constraint(std::size_t n, double radius) {
  Polynomial g = Polynomial::constant(n, radius * radius);
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = Polynomial::variable(n, i);
    g -= xi * xi;
  }
  return g;
}

TEST(Putinar, GloballySosPolynomial) {
  // f = x1^2 + 1 >= 1 everywhere (no constraints).
  const auto x = Polynomial::variable(1, 0);
  const Polynomial f = x * x + Polynomial::constant(1, 1.0);
  PutinarOptions opts;
  opts.margin = 0.9;
  const auto cert = certify_nonnegativity(f, {}, opts);
  ASSERT_TRUE(cert.has_value());
  EXPECT_LT(cert->identity_residual, 1e-4);
}

TEST(Putinar, PositivityOnBallOnly) {
  // f = 1 - x1^2 - x2^2 + 0.2 is >= 0.2 on the unit ball but negative
  // outside: needs the ball multiplier.
  const Polynomial g = ball_constraint(2, 1.0);
  const Polynomial f = g + Polynomial::constant(2, 0.2);
  // Globally (no constraints): not SOS-certifiable.
  EXPECT_FALSE(certify_nonnegativity(f, {}).has_value());
  // On the ball: certifiable.
  const auto cert = certify_nonnegativity(f, {g});
  ASSERT_TRUE(cert.has_value());
  // Certificate identity cross-check.
  EXPECT_TRUE(check_putinar_identity(
      f, cert->sigma0, {g}, cert->multipliers, 1e-3));
}

TEST(Putinar, RespectsMargin) {
  // f = x^2 on [-1,1]: f >= 0 certifiable, f >= 0.5 not.
  const auto x = Polynomial::variable(1, 0);
  const Polynomial f = x * x;
  const Polynomial g = ball_constraint(1, 1.0);
  PutinarOptions ok;
  ok.margin = -1e-6;
  EXPECT_TRUE(certify_nonnegativity(f, {g}, ok).has_value());
  PutinarOptions too_much;
  too_much.margin = 0.5;
  EXPECT_FALSE(certify_nonnegativity(f, {g}, too_much).has_value());
}

TEST(Putinar, HigherDegreeCertificateWhenRequested) {
  // f = x (1 - x) on [0, 1] needs degree-2 multipliers (classical example).
  const auto x = Polynomial::variable(1, 0);
  const Polynomial f = x * (Polynomial::constant(1, 1.0) - x);
  const Polynomial g1 = x;
  const Polynomial g2 = Polynomial::constant(1, 1.0) - x;
  PutinarOptions low;
  low.certificate_degree = 2;
  low.margin = -1e-9;
  // With degree-2 budget the multipliers are degree <= 0 each: infeasible
  // (the leading -x^2 cannot be matched).
  EXPECT_FALSE(certify_nonnegativity(f, {g1, g2}, low).has_value());
  PutinarOptions high;
  high.certificate_degree = 4;
  high.margin = -1e-9;
  EXPECT_TRUE(certify_nonnegativity(f, {g1, g2}, high).has_value());
}

class PutinarRandomBalls : public ::testing::TestWithParam<int> {};

TEST_P(PutinarRandomBalls, ShiftedBallFunctionsCertify) {
  // f = c - ||x||^2 with c > r^2 is positive on the r-ball.
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.index(3);
  const double r = rng.uniform(0.5, 1.5);
  const double c = r * r + rng.uniform(0.1, 1.0);
  Polynomial f = Polynomial::constant(n, c);
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = Polynomial::variable(n, i);
    f -= xi * xi;
  }
  const auto cert = certify_nonnegativity(f, {ball_constraint(n, r)});
  EXPECT_TRUE(cert.has_value()) << "n=" << n << " r=" << r << " c=" << c;
}

INSTANTIATE_TEST_SUITE_P(Seeds, PutinarRandomBalls, ::testing::Range(1, 11));

TEST(Putinar, RejectsMismatchedVariables) {
  EXPECT_THROW(certify_nonnegativity(Polynomial::variable(2, 0),
                                     {Polynomial::variable(3, 0)}),
               PreconditionError);
}

}  // namespace
}  // namespace scs
