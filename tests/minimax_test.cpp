// Tests for the discrete Chebyshev (minimax) fitter: exactness against
// brute-force LP solutions and classical equioscillation cases.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/minimax_fit.hpp"
#include "util/check.hpp"
#include "opt/simplex.hpp"
#include "poly/basis.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

/// Brute-force exact solve of the full minimax LP (small K only).
double brute_force_minimax(const Mat& design, const Vec& targets) {
  const std::size_t k = design.rows();
  const std::size_t v = design.cols();
  LpProblem lp;
  lp.a = Mat(2 * k, 2 * v + 1 + 2 * k);
  lp.b = Vec(2 * k);
  lp.c = Vec(2 * v + 1 + 2 * k, 0.0);
  lp.c[2 * v] = 1.0;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < v; ++j) {
      lp.a(2 * i, j) = design(i, j);
      lp.a(2 * i, v + j) = -design(i, j);
      lp.a(2 * i + 1, j) = -design(i, j);
      lp.a(2 * i + 1, v + j) = design(i, j);
    }
    lp.a(2 * i, 2 * v) = -1.0;
    lp.a(2 * i + 1, 2 * v) = -1.0;
    lp.a(2 * i, 2 * v + 1 + 2 * i) = 1.0;
    lp.a(2 * i + 1, 2 * v + 1 + 2 * i + 1) = 1.0;
    lp.b[2 * i] = targets[i];
    lp.b[2 * i + 1] = -targets[i];
  }
  const LpSolution sol = solve_lp(lp);
  EXPECT_EQ(sol.status, LpStatus::kOptimal);
  return sol.x[2 * v];
}

Mat design_1d(const std::vector<double>& xs, int degree) {
  Mat d(xs.size(), degree + 1);
  for (std::size_t i = 0; i < xs.size(); ++i) {
    double p = 1.0;
    for (int j = 0; j <= degree; ++j) {
      d(i, j) = p;
      p *= xs[i];
    }
  }
  return d;
}

TEST(Minimax, ConstantFitOfTwoPoints) {
  // Best constant approximation of {0, 1} is 1/2 with error 1/2.
  Mat design(2, 1, 1.0);
  const MinimaxFitResult fit = minimax_fit(design, Vec{0.0, 1.0});
  EXPECT_NEAR(fit.coefficients[0], 0.5, 1e-8);
  EXPECT_NEAR(fit.error, 0.5, 1e-8);
  EXPECT_TRUE(fit.exact);
}

TEST(Minimax, LineFitEquioscillation) {
  // Fit a line to y = x^2 on [-1, 1] sampled densely: the Chebyshev line is
  // y = 1/2 with error 1/2 (equioscillation at -1, 0, 1).
  std::vector<double> xs;
  for (int i = 0; i <= 200; ++i) xs.push_back(-1.0 + 0.01 * i);
  Vec targets(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) targets[i] = xs[i] * xs[i];
  const MinimaxFitResult fit = minimax_fit(design_1d(xs, 1), targets);
  EXPECT_NEAR(fit.error, 0.5, 1e-6);
  EXPECT_NEAR(fit.coefficients[0], 0.5, 1e-5);
  EXPECT_NEAR(fit.coefficients[1], 0.0, 1e-5);
}

TEST(Minimax, CubicApproximationOfAbs) {
  // Chebyshev approximation of |x| by cubics on [-1,1]: error = 1/8 with
  // p(x) = 1/8 + x^2 (classical result; x^3 coefficient 0).
  std::vector<double> xs;
  for (int i = 0; i <= 400; ++i) xs.push_back(-1.0 + 0.005 * i);
  Vec targets(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) targets[i] = std::fabs(xs[i]);
  const MinimaxFitResult fit = minimax_fit(design_1d(xs, 3), targets);
  EXPECT_NEAR(fit.error, 0.125, 2e-3);
}

TEST(Minimax, ExactInterpolationGivesZeroError) {
  // K == v samples of a polynomial: residual must vanish.
  Rng rng(4);
  std::vector<double> xs = {-1.0, -0.3, 0.2, 0.9};
  Vec targets(4);
  for (std::size_t i = 0; i < 4; ++i)
    targets[i] = 1.0 + 2.0 * xs[i] - xs[i] * xs[i] + 0.5 * xs[i] * xs[i] * xs[i];
  const MinimaxFitResult fit = minimax_fit(design_1d(xs, 3), targets);
  EXPECT_LT(fit.error, 1e-9);
}

class MinimaxVsBruteForce : public ::testing::TestWithParam<int> {};

TEST_P(MinimaxVsBruteForce, MatchesExactLpOptimum) {
  Rng rng(GetParam());
  const std::size_t k = 10 + rng.index(30);
  const std::size_t v = 2 + rng.index(3);
  Mat design(k, v);
  Vec targets(k);
  for (std::size_t i = 0; i < k; ++i) {
    design(i, 0) = 1.0;
    for (std::size_t j = 1; j < v; ++j) design(i, j) = rng.uniform(-1.0, 1.0);
    targets[i] = rng.uniform(-2.0, 2.0);
  }
  const MinimaxFitResult fit = minimax_fit(design, targets);
  const double exact = brute_force_minimax(design, targets);
  EXPECT_NEAR(fit.error, exact, 1e-5 + 1e-4 * exact);
  EXPECT_GE(fit.error, exact - 1e-9);  // reported error is always feasible
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimaxVsBruteForce, ::testing::Range(1, 21));

TEST(Minimax, LargeSampleCountRuns) {
  // Scenario-scale K with a small basis (like the C4 row of Table 2).
  Rng rng(7);
  const std::size_t k = 50000;
  Mat design(k, 3);
  Vec targets(k);
  for (std::size_t i = 0; i < k; ++i) {
    const double x1 = rng.uniform(-1.0, 1.0);
    const double x2 = rng.uniform(-1.0, 1.0);
    design(i, 0) = 1.0;
    design(i, 1) = x1;
    design(i, 2) = x2;
    targets[i] = std::tanh(x1 - 0.5 * x2);
  }
  const MinimaxFitResult fit = minimax_fit(design, targets);
  EXPECT_GT(fit.error, 0.0);
  EXPECT_LT(fit.error, 0.2);  // tanh is nearly linear on this box
}

TEST(Minimax, RejectsEmptyProblem) {
  EXPECT_THROW(minimax_fit(Mat(), Vec()), PreconditionError);
}

}  // namespace
}  // namespace scs
