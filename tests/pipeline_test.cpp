// End-to-end pipeline tests (fast mode): stages wire together, artifacts
// are consistent, and the decoupled entry point works with external laws.
#include <gtest/gtest.h>

#include <cmath>

#include "core/pipeline.hpp"

namespace scs {
namespace {

/// The provably safe gravity-compensating pendulum law used to decouple the
/// PAC + barrier stages from RL stochasticity.
ControlLaw pendulum_teacher() {
  return [](const Vec& x) {
    const double x1 = x[0];
    const double u = 9.875 * x1 - 1.56 * x1 * x1 * x1 +
                     0.056 * std::pow(x1, 5) - x1 - 2.0 * x[1];
    return Vec{u};
  };
}

TEST(Pipeline, StagesTwoToFourOnPendulumTeacher) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.seed = 3;
  const SynthesisResult result =
      synthesize_from_law(bench, pendulum_teacher(), cfg);
  ASSERT_TRUE(result.success) << result.failure_stage << ": "
                              << result.barrier.failure_reason;
  EXPECT_FALSE(result.controller.empty());
  EXPECT_GE(result.pac.model.degree, 1);
  EXPECT_TRUE(result.barrier.success);
  EXPECT_TRUE(result.validation.passed) << result.validation.detail;
  EXPECT_GT(result.barrier_seconds, 0.0);
}

TEST(Pipeline, SurrogateStaysCloseToTeacher) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.seed = 4;
  const SynthesisResult result =
      synthesize_from_law(bench, pendulum_teacher(), cfg);
  ASSERT_TRUE(result.success);
  // Spot-check |p(x) - u(x)| <= e on fresh points.
  Rng rng(99);
  const auto law = pendulum_teacher();
  // The PAC error is on the normalized scale; the physical surrogate's
  // error bound is e * control_bound.
  const double bound = bench.ccds.control_bound;
  int violations = 0;
  for (int i = 0; i < 500; ++i) {
    const Vec x = bench.ccds.domain.sample(rng);
    if (std::fabs(result.controller[0].evaluate(x) - law(x)[0]) >
        result.pac.model.error * bound + 1e-9)
      ++violations;
  }
  // Theorem 3: violation probability <= eps (here eps is fast-mode-capped,
  // so grant generous slack).
  EXPECT_LT(violations, 500 * 0.2);
}

TEST(Pipeline, FullRlPipelineOnToyIntegrator) {
  // A custom easy benchmark keeps the RL stage reliable in unit tests.
  Benchmark bench;
  bench.id = BenchmarkId::kC1;
  bench.name = "toy-int";
  bench.ccds.name = "toy-int";
  bench.ccds.num_states = 1;
  bench.ccds.num_controls = 1;
  bench.ccds.open_field = {Polynomial::variable(2, 1)};
  const Box box = Box::centered(1, 3.0);
  bench.ccds.init_set = SemialgebraicSet::ball(Vec{0.0}, 0.5);
  bench.ccds.domain = SemialgebraicSet::from_box(box);
  bench.ccds.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0}, 2.0, box);
  bench.ccds.control_bound = 1.0;
  bench.hidden_layers = {16, 16};
  bench.rl = {40, 80, 0.05};
  bench.pac.eps_list = {0.1, 0.05};
  bench.barrier_degrees = {2};

  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.rl_episodes = 40;
  cfg.seed = 5;
  const SynthesisResult result = synthesize(bench, cfg);
  // The RL stage ran and produced a structure string; the certificate may
  // or may not verify at this training budget, but every stage must report.
  EXPECT_EQ(result.dnn_structure, "1-16-16-1");
  EXPECT_FALSE(result.pac.trace.empty());
  EXPECT_GT(result.rl_seconds, 0.0);
  if (!result.success) {
    EXPECT_FALSE(result.failure_stage.empty());
  } else {
    EXPECT_TRUE(result.validation.passed);
  }
}

TEST(Pipeline, FastModeCapsSampleCounts) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.seed = 6;
  const SynthesisResult result =
      synthesize_from_law(bench, pendulum_teacher(), cfg);
  for (const auto& row : result.pac.trace)
    EXPECT_LE(row.samples_used, 2000u);
}

}  // namespace
}  // namespace scs
