// Tests for the utility layer: RNG determinism, logging, stopwatch, checks.
#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/rng.hpp"
#include "util/stopwatch.hpp"

namespace scs {
namespace {

TEST(Rng, DeterministicGivenSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i)
    EXPECT_DOUBLE_EQ(a.uniform(-1.0, 1.0), b.uniform(-1.0, 1.0));
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i)
    if (a.uniform01() == b.uniform01()) ++equal;
  EXPECT_LT(equal, 5);
}

TEST(Rng, UniformRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(2.0, 3.0);
    EXPECT_GE(v, 2.0);
    EXPECT_LT(v, 3.0);
  }
}

TEST(Rng, UniformIntInclusive) {
  Rng rng(8);
  std::set<int> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.uniform_int(1, 3));
  EXPECT_EQ(seen.size(), 3u);
  EXPECT_TRUE(seen.count(1) && seen.count(3));
}

TEST(Rng, IndexCoversRange) {
  Rng rng(9);
  std::set<std::size_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.index(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, NormalMomentsRoughlyCorrect) {
  Rng rng(10);
  double sum = 0.0, sum2 = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.normal(1.0, 2.0);
    sum += v;
    sum2 += v * v;
  }
  const double mean = sum / n;
  const double var = sum2 / n - mean * mean;
  EXPECT_NEAR(mean, 1.0, 0.05);
  EXPECT_NEAR(var, 4.0, 0.2);
}

TEST(Rng, ForkIsIndependent) {
  Rng a(5);
  Rng child = a.fork();
  // The child stream should not track the parent.
  const double c1 = child.uniform01();
  Rng b(5);
  b.fork();
  const double parent_next_a = a.uniform01();
  const double parent_next_b = b.uniform01();
  EXPECT_DOUBLE_EQ(parent_next_a, parent_next_b);  // forking is deterministic
  (void)c1;
}

TEST(Rng, VectorHelpers) {
  Rng rng(11);
  const auto u = rng.uniform_vector(10, -2.0, -1.0);
  EXPECT_EQ(u.size(), 10u);
  for (double v : u) {
    EXPECT_GE(v, -2.0);
    EXPECT_LT(v, -1.0);
  }
  EXPECT_EQ(rng.normal_vector(7).size(), 7u);
}

TEST(Rng, RejectsBadArguments) {
  Rng rng(12);
  EXPECT_THROW(rng.uniform(1.0, 0.0), PreconditionError);
  EXPECT_THROW(rng.index(0), PreconditionError);
  EXPECT_THROW(rng.normal(0.0, -1.0), PreconditionError);
}

TEST(Stopwatch, MeasuresElapsedTime) {
  Stopwatch sw;
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  const double s = sw.seconds();
  EXPECT_GE(s, 0.015);
  EXPECT_LT(s, 2.0);
  EXPECT_NEAR(sw.milliseconds(), sw.seconds() * 1e3, 5.0);
  sw.reset();
  EXPECT_LT(sw.seconds(), 0.015);
}

TEST(Log, LevelOverrideWorks) {
  set_log_level(LogLevel::kSilent);
  EXPECT_EQ(log_level(), LogLevel::kSilent);
  set_log_level(LogLevel::kDebug);
  EXPECT_EQ(log_level(), LogLevel::kDebug);
  set_log_level(LogLevel::kSilent);
}

TEST(Check, MacrosThrowTypedErrors) {
  EXPECT_THROW(SCS_REQUIRE(false, "msg"), PreconditionError);
  EXPECT_THROW(SCS_ASSERT(false, "msg"), InternalError);
  EXPECT_NO_THROW(SCS_REQUIRE(true, ""));
}

}  // namespace
}  // namespace scs
