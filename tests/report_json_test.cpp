// Tests for the shared JSON writer (src/obs/json_writer) and the report
// JSON emitters built on it: escaping round-trips, NaN/Inf handling,
// comma placement, strict parse validation, and the failure-field /
// recorded-thread-width fixes in stage_timings_json.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <string>

#include "core/report.hpp"
#include "obs/json_writer.hpp"

namespace scs {
namespace {

TEST(JsonEscape, PassesPlainTextThrough) {
  EXPECT_EQ(json_escape("benchmark C1"), "benchmark C1");
}

TEST(JsonEscape, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc\rd"), "a\\nb\\tc\\rd");
  EXPECT_EQ(json_escape(std::string("a\x01z", 3)), "a\\u0001z");
  EXPECT_EQ(json_escape(std::string("\0", 1)), "\\u0000");
}

TEST(JsonEscape, EscapedStringsParseAsJson) {
  const std::string nasty =
      "quote \" backslash \\ newline \n tab \t bell \x07 done";
  const std::string doc = "\"" + json_escape(nasty) + "\"";
  std::string error;
  EXPECT_TRUE(json_parse_valid(doc, &error)) << error;
}

TEST(JsonNumber, FiniteRoundTrip) {
  EXPECT_EQ(json_number(0.0), "0");
  const std::string s = json_number(0.029328);
  EXPECT_DOUBLE_EQ(std::stod(s), 0.029328);
}

TEST(JsonNumber, NonFiniteBecomesNull) {
  EXPECT_EQ(json_number(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_number(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_number(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonNumber, NonFiniteBumpsDroppedCounter) {
  // Every NaN/Inf silently mapped to null must be counted, so ledger
  // records and baseline gates can flag runs that produced garbage.
  json_nonfinite_dropped_reset_for_tests();
  json_number(std::numeric_limits<double>::quiet_NaN());
  json_number(std::numeric_limits<double>::infinity());
  json_number(-std::numeric_limits<double>::infinity());
  EXPECT_EQ(json_nonfinite_dropped(), 3u);
}

TEST(JsonNumber, FiniteValuesDoNotBumpDroppedCounter) {
  json_nonfinite_dropped_reset_for_tests();
  json_number(0.0);
  json_number(-1.5e300);
  json_number(std::numeric_limits<double>::max());
  EXPECT_EQ(json_nonfinite_dropped(), 0u);
}

TEST(JsonWriter, NonFiniteValueEmitsNullAndCounts) {
  json_nonfinite_dropped_reset_for_tests();
  JsonWriter w;
  w.begin_array();
  w.value(std::numeric_limits<double>::quiet_NaN());
  w.value(1.0);
  w.end_array();
  EXPECT_EQ(w.str(), "[null,1]");
  EXPECT_TRUE(json_parse_valid(w.str()));
  EXPECT_EQ(json_nonfinite_dropped(), 1u);
}

TEST(JsonWriter, NestedContainersAndCommas) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("C\"1");
  w.key("values").begin_array();
  w.value(1).value(2).value(true).null();
  w.end_array();
  w.key("inner").begin_object();
  w.key("x").value(0.5, 3);
  w.end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"C\\\"1\",\"values\":[1,2,true,null],"
            "\"inner\":{\"x\":0.5}}");
  std::string error;
  EXPECT_TRUE(json_parse_valid(w.str(), &error)) << error;
}

TEST(JsonWriter, RawSplicesPreserialized) {
  JsonWriter inner;
  inner.begin_object();
  inner.key("a").value(1);
  inner.end_object();
  JsonWriter w;
  w.begin_object();
  w.key("first").value(0);
  w.key("nested").raw(inner.str());
  w.key("after").value(2);
  w.end_object();
  EXPECT_EQ(w.str(), "{\"first\":0,\"nested\":{\"a\":1},\"after\":2}");
  EXPECT_TRUE(json_parse_valid(w.str()));
}

TEST(JsonParse, RejectsMalformedDocuments) {
  EXPECT_FALSE(json_parse_valid(""));
  EXPECT_FALSE(json_parse_valid("{"));
  EXPECT_FALSE(json_parse_valid("{\"a\":1,}"));
  EXPECT_FALSE(json_parse_valid("{\"a\" 1}"));
  EXPECT_FALSE(json_parse_valid("\"unterminated"));
  EXPECT_FALSE(json_parse_valid("{} trailing"));
  EXPECT_FALSE(json_parse_valid("nul"));
  EXPECT_FALSE(json_parse_valid("01"));
  // Raw control characters are not allowed inside strings.
  EXPECT_FALSE(json_parse_valid("\"a\nb\""));
}

TEST(JsonParse, AcceptsTypicalDocuments) {
  EXPECT_TRUE(json_parse_valid("null"));
  EXPECT_TRUE(json_parse_valid("  [1, -2.5e3, \"x\", {\"k\": false}]  "));
  EXPECT_TRUE(json_parse_valid("{\"u\":\"\\u00e9\\n\"}"));
}

SynthesisResult sample_result() {
  SynthesisResult r;
  r.benchmark = "C1";
  r.verdict = "UNVERIFIED";
  r.failure_stage = "barrier";
  r.failure_message = "SDP said: \"infeasible\"\n(line2) path\\to\\blob";
  r.rl_seconds = 1.25;
  r.pac_seconds = 0.5;
  r.barrier_seconds = 2.0;
  r.validation_seconds = 0.0;
  r.total_seconds = 3.75;
  r.threads_used = 3;
  return r;
}

TEST(ReportJson, StageTimingsEscapeFailureMessage) {
  const std::string blob = stage_timings_json(sample_result());
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error << "\n" << blob;
  // The quote/newline/backslashes in the failure message must be escaped.
  EXPECT_NE(blob.find("\\\"infeasible\\\""), std::string::npos);
  EXPECT_NE(blob.find("\\n(line2)"), std::string::npos);
  EXPECT_NE(blob.find("path\\\\to\\\\blob"), std::string::npos);
  EXPECT_NE(blob.find("\"failure_stage\":\"barrier\""), std::string::npos);
}

TEST(ReportJson, StageTimingsUseRecordedThreadWidth) {
  // threads_used was recorded at synthesize() entry; the report must echo
  // it rather than sampling the pool width at report time.
  const std::string blob = stage_timings_json(sample_result());
  EXPECT_NE(blob.find("\"threads\":3"), std::string::npos);
}

TEST(ReportJson, StageTimingsIncludeCacheWhenEnabled) {
  SynthesisResult r = sample_result();
  r.cache.enabled = true;
  r.cache.rl.hits = 1;
  r.cache.pac.misses = 2;
  const std::string blob = stage_timings_json(r);
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error;
  EXPECT_NE(blob.find("\"cache\":{\"enabled\":true"), std::string::npos);
}

TEST(ReportJson, CacheStatsCoverAllStages) {
  CacheStats stats;
  stats.enabled = true;
  stats.barrier.corrupt = 1;
  stats.validation.load_seconds = 0.125;
  const std::string blob = cache_stats_json(stats);
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error;
  for (const char* stage : {"\"rl\"", "\"pac\"", "\"barrier\"",
                            "\"validation\""})
    EXPECT_NE(blob.find(stage), std::string::npos) << stage;
  EXPECT_NE(blob.find("\"corrupt\":1"), std::string::npos);
}

TEST(ReportJson, BenchmarkNameWithQuoteStaysParseable) {
  SynthesisResult r = sample_result();
  r.benchmark = "evil\"name";
  const std::string blob = stage_timings_json(r);
  std::string error;
  EXPECT_TRUE(json_parse_valid(blob, &error)) << error << "\n" << blob;
}

}  // namespace
}  // namespace scs
