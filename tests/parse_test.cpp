// Tests for the polynomial text parser.
#include <gtest/gtest.h>

#include "poly/basis.hpp"
#include "poly/parse.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

TEST(Parse, SimpleLinear) {
  const Polynomial p = parse_polynomial("2*x1 - 3*x2 + 1", 2);
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{1.0, 1.0}), 0.0);
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{2.0, 0.0}), 5.0);
}

TEST(Parse, PendulumDynamicsLine) {
  // The paper's Example-1 second component (without u).
  const Polynomial p = parse_polynomial(
      "-0.056*x1^5 + 1.56*x1^3 - 9.875*x1 - 0.1*x2", 2);
  EXPECT_NEAR(p.evaluate(Vec{1.0, 1.0}), -0.056 + 1.56 - 9.875 - 0.1, 1e-12);
  EXPECT_EQ(p.degree(), 5);
}

TEST(Parse, PowersAndProducts) {
  const Polynomial p = parse_polynomial("x1^2*x2 + x1*x2^2", 2);
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{2.0, 3.0}), 12.0 + 18.0);
}

TEST(Parse, ParenthesesAndSigns) {
  const Polynomial p = parse_polynomial("-(x1 - 2)*(x1 + 2)", 1);
  // -(x^2 - 4) = 4 - x^2.
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{0.0}), 4.0);
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{3.0}), -5.0);
}

TEST(Parse, ScientificNotation) {
  const Polynomial p = parse_polynomial("1e-3*x1 + 2.5E2", 1);
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{1000.0}), 1.0 + 250.0);
}

TEST(Parse, ConstantOnly) {
  const Polynomial p = parse_polynomial("  -7.25 ", 3);
  EXPECT_TRUE(p.degree() <= 0);
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{1.0, 2.0, 3.0}), -7.25);
}

TEST(Parse, PowerOfParenthesizedExpression) {
  const Polynomial p = parse_polynomial("(x1 + x2)^3", 2);
  EXPECT_DOUBLE_EQ(p.evaluate(Vec{1.0, 1.0}), 8.0);
  EXPECT_EQ(p.term_count(), 4u);
}

class ParseRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(ParseRoundTrip, ToStringParsesBack) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.index(4);
  const auto basis = monomials_up_to(n, 3);
  Vec c(basis.size());
  for (auto& v : c) v = rng.uniform(-3.0, 3.0);
  const Polynomial p = Polynomial::from_coefficients(basis, c);
  const Polynomial q = parse_polynomial(p.to_string(17), n);
  EXPECT_LT(max_coefficient_diff(p, q), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParseRoundTrip, ::testing::Range(1, 16));

TEST(Parse, RejectsSyntaxErrors) {
  EXPECT_THROW(parse_polynomial("x3", 2), PreconditionError);   // var range
  EXPECT_THROW(parse_polynomial("x0", 2), PreconditionError);   // 1-based
  EXPECT_THROW(parse_polynomial("x1 +", 2), PreconditionError);
  EXPECT_THROW(parse_polynomial("(x1", 2), PreconditionError);
  EXPECT_THROW(parse_polynomial("x1 x2", 2), PreconditionError);
  EXPECT_THROW(parse_polynomial("x1^", 2), PreconditionError);
  EXPECT_THROW(parse_polynomial("", 2), PreconditionError);
}

}  // namespace
}  // namespace scs
