// Tests for variable rescaling (Polynomial::scale_vars) and the SOS
// point-constraint mechanism -- the two ingredients of the unit-box
// normalization that makes the barrier SDP well conditioned.
#include <gtest/gtest.h>

#include "poly/basis.hpp"
#include "sos/sos_program.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

TEST(ScaleVars, MatchesSubstitutionSemantics) {
  // q(x) = p(s .* x).
  Rng rng(1);
  const auto basis = monomials_up_to(3, 4);
  Vec c(basis.size());
  for (auto& v : c.data()) v = rng.uniform(-1.0, 1.0);
  const Polynomial p = Polynomial::from_coefficients(basis, c);
  const Vec s{2.0, 0.5, -1.5};
  const Polynomial q = p.scale_vars(s);
  for (int t = 0; t < 30; ++t) {
    const Vec x(rng.uniform_vector(3, -1.0, 1.0));
    EXPECT_NEAR(q.evaluate(x), p.evaluate(hadamard(s, x)),
                1e-10 * (1.0 + std::fabs(q.evaluate(x))));
  }
}

TEST(ScaleVars, InverseScaleRoundTrips) {
  Rng rng(2);
  const auto basis = monomials_up_to(2, 5);
  Vec c(basis.size());
  for (auto& v : c.data()) v = rng.uniform(-2.0, 2.0);
  const Polynomial p = Polynomial::from_coefficients(basis, c);
  const Vec s{3.0, 0.25};
  const Vec s_inv{1.0 / 3.0, 4.0};
  const Polynomial back = p.scale_vars(s).scale_vars(s_inv);
  EXPECT_LT(max_coefficient_diff(back, p), 1e-10);
}

TEST(ScaleVars, PreservesDegreeAndStructure) {
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial p = x1.pow(3) * x2 - x2 * 2.0;
  const Polynomial q = p.scale_vars(Vec{2.0, 3.0});
  EXPECT_EQ(q.degree(), p.degree());
  EXPECT_EQ(q.term_count(), p.term_count());
  EXPECT_DOUBLE_EQ(q.coefficient(Monomial({3, 1})), 8.0 * 3.0);
  EXPECT_DOUBLE_EQ(q.coefficient(Monomial({0, 1})), -6.0);
}

TEST(ScaleVars, RejectsWrongDimension) {
  EXPECT_THROW(Polynomial::variable(2, 0).scale_vars(Vec{1.0}),
               PreconditionError);
}

TEST(SosPointConstraint, PinsFreePolynomialValue) {
  // Free quadratic f with df/dx == 2x (so f = x^2 + c) and f(2) = 7
  // pins c = 3.
  SosProgram prog(1);
  const auto f = prog.add_free_poly(monomials_up_to(1, 2));
  const Polynomial one = Polynomial::constant(1, 1.0);
  prog.add_identity(-Polynomial::variable(1, 0) * 2.0, {{one, f, 0}});
  prog.add_point_constraint(f, Vec{2.0}, 7.0);
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible) << result.failure_reason;
  EXPECT_NEAR(result.value(f).evaluate(Vec{2.0}), 7.0, 1e-6);
  EXPECT_NEAR(result.value(f).evaluate(Vec{0.0}), 3.0, 1e-6);
}

TEST(SosPointConstraint, WorksOnSosVariables) {
  // SOS s over degree-1 basis with s(0) = 4 and s - (x^2 + free const)...
  // simpler: require s SOS with s(1) = 2 and s - 2 x^2 == free constant c:
  // then s = 2x^2 + c, s(1) = 2 + c = 2 -> c = 0.
  SosProgram prog(1);
  const auto s = prog.add_sos_poly(monomials_up_to(1, 1));
  const auto c = prog.add_free_poly({Monomial(1)});
  const auto x = Polynomial::variable(1, 0);
  const Polynomial one = Polynomial::constant(1, 1.0);
  prog.add_identity(x * x * (-2.0), {{one, s, {}}, {-one, c, {}}});
  prog.add_point_constraint(s, Vec{1.0}, 2.0);
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible) << result.failure_reason;
  EXPECT_NEAR(result.value(c).evaluate(Vec{0.0}), 0.0, 1e-5);
}

TEST(SosPointConstraint, RejectsBadInput) {
  SosProgram prog(2);
  const auto f = prog.add_free_poly(monomials_up_to(2, 1));
  EXPECT_THROW(prog.add_point_constraint(f, Vec{1.0}, 0.0),
               PreconditionError);
  EXPECT_THROW(prog.add_point_constraint({99}, Vec{1.0, 1.0}, 0.0),
               PreconditionError);
}

}  // namespace
}  // namespace scs
