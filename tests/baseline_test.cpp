// Baseline regression gate tests (src/obs/baseline): gate-file parsing
// (bad gates fail loudly), every check kind's pass/improve/regress
// semantics, the missing-current-metric failure, metric flattening
// (BENCH_*.json and google-benchmark shapes), and report rendering.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/baseline.hpp"
#include "obs/json_reader.hpp"
#include "obs/json_writer.hpp"

namespace scs {
namespace {

BaselineFile parse_gate(const std::string& metrics_body) {
  return baseline_parse("{\"schema\":1,\"name\":\"t\",\"metrics\":{" +
                        metrics_body + "}}");
}

MetricSamples one_number(const std::string& key, double v) {
  MetricSamples s;
  s.add(key, JsonValue::make_number(v));
  return s;
}

TEST(BaselineParse, AcceptsDocumentedFormat) {
  const BaselineFile f = parse_gate(
      "\"C1.verdict\":{\"kind\":\"exact\",\"value\":\"VERIFIED\"},"
      "\"C1.pac_eps\":{\"kind\":\"max\",\"value\":0.1},"
      "\"C1.total_seconds\":{\"kind\":\"timing\",\"value\":9.0,"
      "\"rel_tol\":3.0}");
  EXPECT_EQ(f.schema, 1);
  EXPECT_EQ(f.name, "t");
  ASSERT_EQ(f.checks.size(), 3u);
  EXPECT_EQ(f.checks[0].kind, "exact");
  EXPECT_EQ(f.checks[0].expect.string, "VERIFIED");
  EXPECT_EQ(f.checks[2].kind, "timing");
  EXPECT_DOUBLE_EQ(f.checks[2].rel_tol, 3.0);
}

TEST(BaselineParse, BadGatesFailLoudly) {
  // A gate definition that cannot be trusted must throw, not soft-pass.
  EXPECT_THROW(baseline_parse("[]"), JsonParseError);
  EXPECT_THROW(baseline_parse("{\"metrics\":{}}"), JsonParseError);  // schema
  EXPECT_THROW(baseline_parse("{\"schema\":99,\"metrics\":{}}"),
               JsonParseError);
  EXPECT_THROW(baseline_parse("{\"schema\":1}"), JsonParseError);  // metrics
  EXPECT_THROW(parse_gate("\"k\":{\"value\":1}"), JsonParseError);  // no kind
  EXPECT_THROW(parse_gate("\"k\":{\"kind\":\"fuzzy\",\"value\":1}"),
               JsonParseError);
  EXPECT_THROW(parse_gate("\"k\":{\"kind\":\"max\",\"value\":\"str\"}"),
               JsonParseError);  // numeric kinds need numeric values
  EXPECT_THROW(parse_gate("\"k\":{\"kind\":\"timing\",\"value\":1,"
                          "\"rel_tol\":-0.5}"),
               JsonParseError);
  EXPECT_THROW(baseline_load_file("/nonexistent/gate.json"), JsonParseError);
}

TEST(BaselineCompare, ExactRequiresEverySampleEqual) {
  const BaselineFile gate =
      parse_gate("\"C1.verdict\":{\"kind\":\"exact\",\"value\":\"VERIFIED\"}");
  MetricSamples ok;
  ok.add("C1.verdict", JsonValue::make_string("VERIFIED"));
  ok.add("C1.verdict", JsonValue::make_string("VERIFIED"));
  EXPECT_TRUE(baseline_compare(gate, ok).passed());

  MetricSamples mixed;
  mixed.add("C1.verdict", JsonValue::make_string("VERIFIED"));
  mixed.add("C1.verdict", JsonValue::make_string("UNVERIFIED"));
  const BaselineReport r = baseline_compare(gate, mixed);
  EXPECT_FALSE(r.passed());
  EXPECT_EQ(r.regressed, 1);
  EXPECT_EQ(r.rows[0].status, CheckStatus::kRegressed);
}

TEST(BaselineCompare, ExactDistinguishesTypes) {
  const BaselineFile gate =
      parse_gate("\"det\":{\"kind\":\"exact\",\"value\":true}");
  MetricSamples s;
  s.add("det", JsonValue::make_number(1.0));  // 1.0 is not `true`
  EXPECT_EQ(baseline_compare(gate, s).regressed, 1);
}

TEST(BaselineCompare, MaxAndMinGateTheWorstSample) {
  const BaselineFile gate = parse_gate(
      "\"eps\":{\"kind\":\"max\",\"value\":0.1},"
      "\"succ\":{\"kind\":\"min\",\"value\":3}");
  MetricSamples s;
  s.add("eps", JsonValue::make_number(0.01));
  s.add("eps", JsonValue::make_number(0.09));
  s.add("succ", JsonValue::make_number(5));
  EXPECT_TRUE(baseline_compare(gate, s).passed());

  s.add("eps", JsonValue::make_number(0.2));  // one excursion fails the gate
  s.add("succ", JsonValue::make_number(2));
  const BaselineReport r = baseline_compare(gate, s);
  EXPECT_EQ(r.regressed, 2);
}

TEST(BaselineCompare, TimingUsesMedianWithRelativeBand) {
  const BaselineFile gate = parse_gate(
      "\"C1.total_seconds\":{\"kind\":\"timing\",\"value\":10.0,"
      "\"rel_tol\":0.5}");
  // Median of {9, 11, 30} = 11 <= 10 * 1.5: one slow outlier doesn't gate.
  MetricSamples s;
  for (double v : {9.0, 11.0, 30.0})
    s.add("C1.total_seconds", JsonValue::make_number(v));
  const BaselineReport pass = baseline_compare(gate, s);
  EXPECT_TRUE(pass.passed());
  EXPECT_EQ(pass.rows[0].status, CheckStatus::kPass);
  EXPECT_NEAR(pass.rows[0].delta_pct, 10.0, 1e-9);

  const BaselineReport fast = baseline_compare(gate, one_number(
      "C1.total_seconds", 4.0));
  EXPECT_TRUE(fast.passed());  // faster than baseline is not a failure
  EXPECT_EQ(fast.rows[0].status, CheckStatus::kImproved);

  const BaselineReport slow = baseline_compare(gate, one_number(
      "C1.total_seconds", 16.0));
  EXPECT_FALSE(slow.passed());
  EXPECT_EQ(slow.rows[0].status, CheckStatus::kRegressed);
  EXPECT_NEAR(slow.rows[0].delta_pct, 60.0, 1e-9);
}

TEST(BaselineCompare, MissingCurrentMetricFailsTheGate) {
  const BaselineFile gate =
      parse_gate("\"gone.metric\":{\"kind\":\"max\",\"value\":1}");
  const BaselineReport r = baseline_compare(gate, MetricSamples());
  EXPECT_FALSE(r.passed());
  EXPECT_EQ(r.missing, 1);
  EXPECT_EQ(r.rows[0].status, CheckStatus::kMissingCurrent);
}

TEST(BaselineCompare, NonNumericSampleUnderNumericCheckIsMissing) {
  const BaselineFile gate =
      parse_gate("\"t\":{\"kind\":\"timing\",\"value\":1}");
  MetricSamples s;
  s.add("t", JsonValue::make_string("oops"));
  EXPECT_EQ(baseline_compare(gate, s).missing, 1);
}

TEST(BaselineCompare, ExtraCurrentMetricsAreIgnored) {
  const BaselineFile gate =
      parse_gate("\"a\":{\"kind\":\"max\",\"value\":1}");
  MetricSamples s = one_number("a", 0.5);
  s.add("brand.new.instrument", JsonValue::make_number(1e9));
  EXPECT_TRUE(baseline_compare(gate, s).passed());
}

TEST(MetricSamplesTest, FlattensNestedObjectsAndArrays) {
  MetricSamples s;
  s.add_flattened("bench_parallel", json_parse(
      "{\"threads\":4,\"workloads\":[{\"name\":\"matmul\",\"speedup\":2.5},"
      "{\"name\":\"sdp\",\"speedup\":1.5}]}"));
  ASSERT_NE(s.find("bench_parallel.threads"), nullptr);
  ASSERT_NE(s.find("bench_parallel.workloads.0.speedup"), nullptr);
  EXPECT_DOUBLE_EQ(s.find("bench_parallel.workloads.1.speedup")
                       ->front().number, 1.5);
  EXPECT_EQ(s.find("bench_parallel.workloads.0.name")->front().string,
            "matmul");
}

TEST(MetricSamplesTest, GoogleBenchmarkDocsKeyRowsByName) {
  // Keyed by benchmark name, not array index, so a reordered suite still
  // matches the checked-in baseline keys.
  MetricSamples s;
  s.add_flattened("bench_solvers", json_parse(
      "{\"context\":{\"num_cpus\":8},\"benchmarks\":["
      "{\"name\":\"BM_Matmul/64\",\"real_time\":125.5,\"iterations\":100},"
      "{\"name\":\"BM_Lie/2\",\"real_time\":3.25}]}"));
  ASSERT_NE(s.find("bench_solvers.BM_Matmul/64.real_time"), nullptr);
  EXPECT_DOUBLE_EQ(
      s.find("bench_solvers.BM_Matmul/64.real_time")->front().number, 125.5);
  ASSERT_NE(s.find("bench_solvers.BM_Lie/2.real_time"), nullptr);
  // The context block is not flattened in benchmark mode.
  EXPECT_EQ(s.find("bench_solvers.context.num_cpus"), nullptr);
}

TEST(BaselineReport, MarkdownLeadsWithVerdictAndFailures) {
  const BaselineFile gate = parse_gate(
      "\"ok\":{\"kind\":\"max\",\"value\":1},"
      "\"bad\":{\"kind\":\"max\",\"value\":1}");
  MetricSamples s = one_number("ok", 0.5);
  s.add("bad", JsonValue::make_number(2.0));
  const std::vector<BaselineReport> reports = {baseline_compare(gate, s)};

  const std::string md = baseline_report_markdown(reports);
  EXPECT_NE(md.find("**GATE FAILED**"), std::string::npos);
  // Failures are listed before passes.
  EXPECT_LT(md.find("| REGRESSED | bad |"), md.find("| PASS | ok |"));

  const std::string json = baseline_report_json(reports);
  EXPECT_TRUE(json_parse_valid(json));
  const JsonValue doc = json_parse(json);
  EXPECT_FALSE(doc.find("passed")->bool_or(true));
  EXPECT_EQ(doc.find("failing_checks")->int_or(0), 1);
}

TEST(BaselineReport, PassingGateRendersPassed) {
  const BaselineFile gate = parse_gate("\"ok\":{\"kind\":\"min\",\"value\":1}");
  const std::vector<BaselineReport> reports = {
      baseline_compare(gate, one_number("ok", 2.0))};
  EXPECT_NE(baseline_report_markdown(reports).find("**GATE PASSED**"),
            std::string::npos);
  EXPECT_TRUE(json_parse(baseline_report_json(reports))
                  .find("passed")->bool_or(false));
}

}  // namespace
}  // namespace scs
