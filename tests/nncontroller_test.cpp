// Tests for the 'nncontroller' baseline: joint training mechanics and the
// exponential verification-grid behaviour that reproduces Table 2's "x"
// pattern for n >= 4.
#include <gtest/gtest.h>

#include "baseline/nncontroller.hpp"
#include "systems/benchmarks.hpp"

namespace scs {
namespace {

NnControllerConfig fast_config() {
  NnControllerConfig cfg;
  cfg.train_iterations = 600;
  cfg.batch_per_set = 16;
  cfg.grid_cell = 0.2;
  cfg.verify_budget_seconds = 20.0;
  return cfg;
}

TEST(NnController, RunsOnLowDimensionalSystem) {
  // A benign 2-D system: the baseline should at least produce a structure
  // string and finish within budget (verification outcome may vary with
  // the training budget).
  Ccds sys;
  sys.name = "nn-toy";
  sys.num_states = 2;
  sys.num_controls = 1;
  const auto x1 = Polynomial::variable(3, 0);
  const auto x2 = Polynomial::variable(3, 1);
  const auto u = Polynomial::variable(3, 2);
  sys.open_field = {-x1 + u * 0.5, -x2};
  const Box box = Box::centered(2, 2.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0, 0.0}, 0.4);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 1.5, box);
  sys.control_bound = 1.0;

  const NnControllerResult result = run_nncontroller(sys, fast_config());
  EXPECT_EQ(result.barrier_structure, "2-30-1");
  EXPECT_GT(result.train_seconds, 0.0);
  EXPECT_GT(result.grid_points, 0u);
}

TEST(NnController, HighDimensionalGridExceedsBudget) {
  // n = 9: the verification grid is astronomically large; the baseline must
  // refuse with the exponential-scaling reason -- the "x" entries of
  // Table 2.
  const Benchmark bench = make_benchmark(BenchmarkId::kC8);
  NnControllerConfig cfg = fast_config();
  cfg.train_iterations = 50;  // training is irrelevant here
  const NnControllerResult result = run_nncontroller(bench.ccds, cfg);
  EXPECT_FALSE(result.verified);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.reason.find("exponential"), std::string::npos)
      << result.reason;
}

TEST(NnController, FourDimensionsAlreadyTooExpensive) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC4);
  NnControllerConfig cfg = fast_config();
  cfg.train_iterations = 50;
  cfg.grid_cell = 0.05;  // Table-2-style resolution
  const NnControllerResult result = run_nncontroller(bench.ccds, cfg);
  EXPECT_FALSE(result.verified);
}

TEST(NnController, GridPointsScaleWithResolution) {
  Ccds sys;
  sys.name = "nn-1d";
  sys.num_states = 1;
  sys.num_controls = 1;
  sys.open_field = {Polynomial::variable(2, 1) -
                    Polynomial::variable(2, 0)};
  const Box box = Box::centered(1, 1.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0}, 0.2);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0}, 0.8, box);
  sys.control_bound = 1.0;

  NnControllerConfig coarse = fast_config();
  coarse.train_iterations = 100;
  coarse.grid_cell = 0.1;
  NnControllerConfig fine = coarse;
  fine.grid_cell = 0.01;
  const auto r_coarse = run_nncontroller(sys, coarse);
  const auto r_fine = run_nncontroller(sys, fine);
  EXPECT_GT(r_fine.grid_points, 5 * r_coarse.grid_points);
}

}  // namespace
}  // namespace scs
