// Tests for the deterministic work-stealing thread pool: chunk coverage,
// exception propagation, nested parallelism, submit routing, and bitwise
// reproducibility of reductions across thread counts.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cmath>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scs {
namespace {

class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }
};

TEST_F(ThreadPoolTest, EmptyRangeNeverCallsBody) {
  std::atomic<int> calls{0};
  parallel_for(0, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST_F(ThreadPoolTest, EveryIndexCoveredExactlyOnce) {
  set_parallel_threads(4);
  const std::size_t n = 1037;  // deliberately not a multiple of the chunk
  std::vector<std::atomic<int>> hits(n);
  parallel_for(n, 16, [&](std::size_t begin, std::size_t end) {
    ASSERT_LT(begin, end);
    ASSERT_LE(end, n);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST_F(ThreadPoolTest, ChunkBoundariesIndependentOfThreadCount) {
  const auto collect = [](std::size_t threads) {
    set_parallel_threads(threads);
    std::vector<std::pair<std::size_t, std::size_t>> chunks(8);
    parallel_for(100, 13, [&](std::size_t begin, std::size_t end) {
      chunks[begin / 13] = {begin, end};
    });
    return chunks;
  };
  EXPECT_EQ(collect(1), collect(4));
}

TEST_F(ThreadPoolTest, ExceptionPropagates) {
  set_parallel_threads(4);
  EXPECT_THROW(
      parallel_for(1000, 8,
                   [](std::size_t begin, std::size_t) {
                     if (begin == 504) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool must stay usable after an exception.
  std::atomic<int> calls{0};
  parallel_for(64, 8, [&](std::size_t, std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 8);
}

TEST_F(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  set_parallel_threads(4);
  std::atomic<int> inner_calls{0};
  parallel_for(8, 1, [&](std::size_t, std::size_t) {
    parallel_for(32, 4, [&](std::size_t, std::size_t) { ++inner_calls; });
  });
  EXPECT_EQ(inner_calls.load(), 8 * 8);
}

TEST_F(ThreadPoolTest, SubmitFromWorkerRunsTask) {
  ThreadPool pool(2);
  EXPECT_EQ(pool.size(), 2u);
  std::atomic<int> done{0};
  pool.submit([&pool, &done] {
    pool.submit([&done] { ++done; });  // nested submit from a worker
    ++done;
  });
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (done.load() < 2 && std::chrono::steady_clock::now() < deadline)
    std::this_thread::yield();
  EXPECT_EQ(done.load(), 2);
}

TEST_F(ThreadPoolTest, ZeroWorkerPoolRunsInline) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.size(), 0u);
  int calls = 0;
  pool.submit([&calls] { ++calls; });
  EXPECT_EQ(calls, 1);  // ran synchronously on this thread
}

TEST_F(ThreadPoolTest, ReduceBitwiseIdenticalAcrossThreadCounts) {
  // Ill-conditioned summands: any reassociation changes the bits.
  const auto reduce_with = [](std::size_t threads) {
    set_parallel_threads(threads);
    Rng rng(3);
    std::vector<double> values(4096);
    for (auto& v : values) v = rng.normal() * std::pow(10.0, rng.uniform(-8.0, 8.0));
    return parallel_reduce(
        values.size(), 64, 0.0,
        [&](std::size_t begin, std::size_t end) {
          double s = 0.0;
          for (std::size_t i = begin; i < end; ++i) s += values[i];
          return s;
        },
        [](double a, double b) { return a + b; });
  };
  const double t1 = reduce_with(1);
  const double t2 = reduce_with(2);
  const double t4 = reduce_with(4);
  EXPECT_EQ(t1, t2);
  EXPECT_EQ(t1, t4);
}

TEST_F(ThreadPoolTest, SetParallelThreadsReflectsWidth) {
  set_parallel_threads(3);
  EXPECT_EQ(parallel_threads(), 3u);
  set_parallel_threads(1);
  EXPECT_EQ(parallel_threads(), 1u);
  set_parallel_threads(0);
  EXPECT_GE(parallel_threads(), 1u);
}

TEST_F(ThreadPoolTest, ForkStreamsMatchesSequentialForks) {
  Rng a(17), b(17);
  std::vector<Rng> streams = a.fork_streams(5);
  ASSERT_EQ(streams.size(), 5u);
  for (auto& s : streams) {
    Rng expect = b.fork();
    for (int i = 0; i < 16; ++i)
      EXPECT_DOUBLE_EQ(s.uniform01(), expect.uniform01());
  }
}

}  // namespace
}  // namespace scs
