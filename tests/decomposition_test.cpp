// Unit and property tests for LU / Cholesky / QR / symmetric eigen.
#include <gtest/gtest.h>

#include "math/cholesky.hpp"
#include "math/eigen_sym.hpp"
#include "math/lu.hpp"
#include "math/qr.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

Mat random_matrix(std::size_t n, std::size_t m, Rng& rng) {
  Mat a(n, m);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < m; ++j) a(i, j) = rng.normal();
  return a;
}

Mat random_spd(std::size_t n, Rng& rng) {
  const Mat a = random_matrix(n, n + 2, rng);
  Mat spd = matmul_a_bt(a, a);
  for (std::size_t i = 0; i < n; ++i) spd(i, i) += 0.5;
  return spd;
}

TEST(Lu, SolvesKnownSystem) {
  Mat a(2, 2);
  a.set_row(0, Vec{2.0, 1.0});
  a.set_row(1, Vec{1.0, 3.0});
  const Vec x = Lu(a).solve(Vec{5.0, 10.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 3.0, 1e-12);
}

TEST(Lu, DetectsSingular) {
  Mat a(2, 2);
  a.set_row(0, Vec{1.0, 2.0});
  a.set_row(1, Vec{2.0, 4.0});
  EXPECT_TRUE(Lu(a).singular());
  EXPECT_FALSE(solve_linear(a, Vec{1.0, 1.0}).has_value());
}

TEST(Lu, Determinant) {
  Mat a(2, 2);
  a.set_row(0, Vec{3.0, 1.0});
  a.set_row(1, Vec{2.0, 2.0});
  EXPECT_NEAR(Lu(a).determinant(), 4.0, 1e-12);
}

class LuProperty : public ::testing::TestWithParam<int> {};

TEST_P(LuProperty, RandomSolveResidual) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.index(18);
  const Mat a = random_matrix(n, n, rng);
  const Vec b(rng.normal_vector(n));
  Lu lu(a);
  if (lu.singular()) GTEST_SKIP();
  const Vec x = lu.solve(b);
  const Vec r = matvec(a, x) - b;
  EXPECT_LT(r.max_abs(), 1e-8 * (1.0 + b.max_abs()));
}

INSTANTIATE_TEST_SUITE_P(Seeds, LuProperty, ::testing::Range(1, 21));

TEST(Cholesky, FactorsAndSolves) {
  Rng rng(7);
  const Mat a = random_spd(6, rng);
  Cholesky chol(a);
  ASSERT_TRUE(chol.ok());
  const Mat l = chol.lower();
  EXPECT_NEAR(max_abs_diff(matmul_a_bt(l, l), a), 0.0, 1e-9);
  const Vec b(rng.normal_vector(6));
  const Vec x = chol.solve(b);
  EXPECT_LT((matvec(a, x) - b).max_abs(), 1e-9);
}

TEST(Cholesky, RejectsIndefinite) {
  Mat a = Mat::identity(2);
  a(1, 1) = -1.0;
  EXPECT_FALSE(Cholesky(a).ok());
  EXPECT_FALSE(is_positive_definite(a));
}

TEST(Cholesky, LowerInverse) {
  Rng rng(9);
  const Mat a = random_spd(5, rng);
  Cholesky chol(a);
  ASSERT_TRUE(chol.ok());
  const Mat linv = chol.lower_inverse();
  EXPECT_NEAR(max_abs_diff(matmul(linv, chol.lower()), Mat::identity(5)), 0.0,
              1e-9);
  // S^{-1} = L^{-T} L^{-1}.
  const Mat ainv = matmul_at_b(linv, linv);
  EXPECT_NEAR(max_abs_diff(matmul(ainv, a), Mat::identity(5)), 0.0, 1e-8);
}

TEST(Cholesky, TriangularSolves) {
  Rng rng(11);
  const Mat a = random_spd(4, rng);
  Cholesky chol(a);
  ASSERT_TRUE(chol.ok());
  const Vec b(rng.normal_vector(4));
  const Vec y = chol.solve_lower(b);
  EXPECT_LT((matvec(chol.lower(), y) - b).max_abs(), 1e-10);
  const Vec z = chol.solve_lower_t(b);
  EXPECT_LT((matvec_t(chol.lower(), z) - b).max_abs(), 1e-10);
}

TEST(Qr, LeastSquaresMatchesNormalEquations) {
  Rng rng(13);
  const Mat a = random_matrix(30, 5, rng);
  const Vec b(rng.normal_vector(30));
  const Vec x = least_squares(a, b);
  // Normal-equation residual must vanish: A'(Ax - b) = 0.
  const Vec g = matvec_t(a, matvec(a, x) - b);
  EXPECT_LT(g.max_abs(), 1e-9);
}

TEST(Qr, ExactSolveSquare) {
  Rng rng(17);
  const Mat a = random_matrix(6, 6, rng);
  const Vec xtrue(rng.normal_vector(6));
  const Vec b = matvec(a, xtrue);
  const Vec x = Qr(a).solve_least_squares(b);
  EXPECT_LT(max_abs_diff(x, xtrue), 1e-8);
}

TEST(Qr, RankDetectsDeficiency) {
  Mat a(4, 3);
  for (std::size_t i = 0; i < 4; ++i) {
    a(i, 0) = static_cast<double>(i + 1);
    a(i, 1) = 2.0 * static_cast<double>(i + 1);  // dependent column
    a(i, 2) = (i == 0) ? 1.0 : 0.0;
  }
  EXPECT_EQ(Qr(a).rank(), 2u);
}

TEST(EigenSym, DiagonalMatrix) {
  const EigenSym e = eigen_sym(Mat::diag(Vec{3.0, 1.0, 2.0}));
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 2.0, 1e-10);
  EXPECT_NEAR(e.values[2], 3.0, 1e-10);
}

TEST(EigenSym, Known2x2) {
  Mat a(2, 2);
  a.set_row(0, Vec{2.0, 1.0});
  a.set_row(1, Vec{1.0, 2.0});
  const EigenSym e = eigen_sym(a);
  EXPECT_NEAR(e.values[0], 1.0, 1e-10);
  EXPECT_NEAR(e.values[1], 3.0, 1e-10);
  EXPECT_NEAR(min_eigenvalue(a), 1.0, 1e-10);
  EXPECT_NEAR(max_eigenvalue(a), 3.0, 1e-10);
}

class EigenProperty : public ::testing::TestWithParam<int> {};

TEST_P(EigenProperty, ReconstructsMatrix) {
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.index(10);
  Mat a = random_matrix(n, n, rng);
  a.symmetrize();
  const EigenSym e = eigen_sym(a);
  // A == V diag(lambda) V'.
  Mat rec(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    const Vec vk = e.vectors.col(k);
    rec.axpy(e.values[k], outer(vk, vk));
  }
  EXPECT_NEAR(max_abs_diff(rec, a), 0.0, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EigenProperty, ::testing::Range(1, 16));

TEST(EigenSym, PsdMatrixHasNonnegativeMinEig) {
  Rng rng(23);
  const Mat a = random_spd(7, rng);
  EXPECT_GT(min_eigenvalue(a), 0.0);
}

}  // namespace
}  // namespace scs
