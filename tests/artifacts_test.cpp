// Tests for synthesis-artifact persistence.
#include <gtest/gtest.h>

#include <sstream>

#include "core/artifacts.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

SynthesisArtifacts sample_artifacts() {
  SynthesisArtifacts a;
  a.benchmark = "C1";
  a.num_states = 2;
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  a.controller = {x1 * 9.875 - x1.pow(3) * 1.56 - x2 * 2.0};
  a.barrier = Polynomial::constant(2, 5.76) - x1 * x1 - x2 * x2;
  a.lambda = Polynomial::constant(2, -1.0);
  a.barrier_degree = 2;
  a.pac.degree = 3;
  a.pac.error = 0.0293;
  a.pac.eps = 0.001;
  a.pac.eta = 1e-6;
  a.pac.samples = 49632;
  return a;
}

TEST(Artifacts, RoundTripPreservesPolynomials) {
  const SynthesisArtifacts a = sample_artifacts();
  std::stringstream ss;
  save_artifacts(a, ss);
  const SynthesisArtifacts b = load_artifacts(ss);
  EXPECT_EQ(b.benchmark, "C1");
  EXPECT_EQ(b.num_states, 2u);
  ASSERT_EQ(b.controller.size(), 1u);
  EXPECT_LT(max_coefficient_diff(a.controller[0], b.controller[0]), 1e-12);
  EXPECT_LT(max_coefficient_diff(a.barrier, b.barrier), 1e-12);
  EXPECT_LT(max_coefficient_diff(a.lambda, b.lambda), 1e-12);
  EXPECT_EQ(b.barrier_degree, 2);
  EXPECT_EQ(b.pac.samples, 49632u);
  EXPECT_DOUBLE_EQ(b.pac.error, 0.0293);
}

TEST(Artifacts, FileRoundTrip) {
  const SynthesisArtifacts a = sample_artifacts();
  const std::string path = "/tmp/scs_artifacts_test.txt";
  save_artifacts_file(a, path);
  const SynthesisArtifacts b = load_artifacts_file(path);
  EXPECT_LT(max_coefficient_diff(a.barrier, b.barrier), 1e-12);
  std::remove(path.c_str());
}

TEST(Artifacts, ZeroLambdaRoundTrips) {
  SynthesisArtifacts a = sample_artifacts();
  a.lambda = Polynomial(2);  // zero polynomial prints as "0"
  std::stringstream ss;
  save_artifacts(a, ss);
  const SynthesisArtifacts b = load_artifacts(ss);
  EXPECT_TRUE(b.lambda.is_zero() || b.lambda.max_abs_coefficient() == 0.0);
}

TEST(Artifacts, FromResultExtractsFields) {
  SynthesisResult r;
  r.benchmark = "toy";
  r.controller = {Polynomial::variable(2, 0)};
  r.barrier.barrier = Polynomial::constant(2, 1.0);
  r.barrier.degree = 2;
  const SynthesisArtifacts a = artifacts_from(r, 2);
  EXPECT_EQ(a.benchmark, "toy");
  EXPECT_EQ(a.controller.size(), 1u);
}

TEST(Artifacts, RejectsBadHeaderAndTruncation) {
  std::stringstream bad("nope 1\n");
  EXPECT_THROW(load_artifacts(bad), PreconditionError);
  const SynthesisArtifacts a = sample_artifacts();
  std::stringstream ss;
  save_artifacts(a, ss);
  std::string text = ss.str();
  text.resize(text.size() / 3);
  std::stringstream half(text);
  EXPECT_THROW(load_artifacts(half), PreconditionError);
  EXPECT_THROW(load_artifacts_file("/nonexistent/a.txt"), PreconditionError);
}

}  // namespace
}  // namespace scs
