// Tests for synthesis-artifact persistence.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "core/artifacts.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

SynthesisArtifacts sample_artifacts() {
  SynthesisArtifacts a;
  a.benchmark = "C1";
  a.num_states = 2;
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  a.controller = {x1 * 9.875 - x1.pow(3) * 1.56 - x2 * 2.0};
  a.barrier = Polynomial::constant(2, 5.76) - x1 * x1 - x2 * x2;
  a.lambda = Polynomial::constant(2, -1.0);
  a.barrier_degree = 2;
  a.pac.degree = 3;
  a.pac.error = 0.0293;
  a.pac.eps = 0.001;
  a.pac.eta = 1e-6;
  a.pac.samples = 49632;
  return a;
}

TEST(Artifacts, RoundTripPreservesPolynomials) {
  const SynthesisArtifacts a = sample_artifacts();
  std::stringstream ss;
  save_artifacts(a, ss);
  const SynthesisArtifacts b = load_artifacts(ss);
  EXPECT_EQ(b.benchmark, "C1");
  EXPECT_EQ(b.num_states, 2u);
  ASSERT_EQ(b.controller.size(), 1u);
  EXPECT_LT(max_coefficient_diff(a.controller[0], b.controller[0]), 1e-12);
  EXPECT_LT(max_coefficient_diff(a.barrier, b.barrier), 1e-12);
  EXPECT_LT(max_coefficient_diff(a.lambda, b.lambda), 1e-12);
  EXPECT_EQ(b.barrier_degree, 2);
  EXPECT_EQ(b.pac.samples, 49632u);
  EXPECT_DOUBLE_EQ(b.pac.error, 0.0293);
}

TEST(Artifacts, FileRoundTrip) {
  const SynthesisArtifacts a = sample_artifacts();
  const std::string path = "/tmp/scs_artifacts_test.txt";
  save_artifacts_file(a, path);
  const SynthesisArtifacts b = load_artifacts_file(path);
  EXPECT_LT(max_coefficient_diff(a.barrier, b.barrier), 1e-12);
  std::remove(path.c_str());
}

TEST(Artifacts, ZeroLambdaRoundTrips) {
  SynthesisArtifacts a = sample_artifacts();
  a.lambda = Polynomial(2);  // zero polynomial prints as "0"
  std::stringstream ss;
  save_artifacts(a, ss);
  const SynthesisArtifacts b = load_artifacts(ss);
  EXPECT_TRUE(b.lambda.is_zero() || b.lambda.max_abs_coefficient() == 0.0);
}

TEST(Artifacts, FromResultExtractsFields) {
  SynthesisResult r;
  r.benchmark = "toy";
  r.controller = {Polynomial::variable(2, 0)};
  r.barrier.barrier = Polynomial::constant(2, 1.0);
  r.barrier.degree = 2;
  const SynthesisArtifacts a = artifacts_from(r, 2);
  EXPECT_EQ(a.benchmark, "toy");
  EXPECT_EQ(a.controller.size(), 1u);
}

std::string sample_text() {
  std::stringstream ss;
  save_artifacts(sample_artifacts(), ss);
  return ss.str();
}

/// Run load_artifacts on `text` and return the structured error it throws.
ArtifactParseError expect_parse_error(const std::string& text) {
  std::stringstream ss(text);
  try {
    load_artifacts(ss);
  } catch (const ArtifactParseError& e) {
    return e;
  }
  ADD_FAILURE() << "load_artifacts accepted malformed input:\n" << text;
  return ArtifactParseError(0, "", "not thrown");
}

TEST(Artifacts, RejectsBadHeaderWithLineContext) {
  const ArtifactParseError e = expect_parse_error("nope 1\n");
  EXPECT_EQ(e.line(), 1);
  EXPECT_NE(std::string(e.what()).find("scs-artifacts"), std::string::npos);
  EXPECT_EQ(e.content(), "nope 1");
}

TEST(Artifacts, RejectsUnsupportedVersion) {
  const ArtifactParseError e = expect_parse_error("scs-artifacts 99\n");
  EXPECT_EQ(e.line(), 1);
  EXPECT_NE(std::string(e.what()).find("version"), std::string::npos);
}

TEST(Artifacts, RejectsTruncationAtEveryPrefix) {
  // Chopping the file after any line must fail with the line number just
  // past the end -- never crash, never return a partial artifact.
  const std::string text = sample_text();
  std::vector<std::size_t> line_starts{0};
  for (std::size_t i = 0; i < text.size(); ++i)
    if (text[i] == '\n' && i + 1 < text.size()) line_starts.push_back(i + 1);
  for (std::size_t n = 1; n < line_starts.size(); ++n) {
    const ArtifactParseError e =
        expect_parse_error(text.substr(0, line_starts[n]));
    EXPECT_EQ(e.line(), static_cast<int>(n) + 1) << "truncated after line "
                                                 << n;
    EXPECT_NE(std::string(e.what()).find("file ends"), std::string::npos);
  }
}

TEST(Artifacts, RejectsMalformedFieldWithLineNumber) {
  std::string text = sample_text();
  const std::string needle = "states 2";
  text.replace(text.find(needle), needle.size(), "states two");
  const ArtifactParseError e = expect_parse_error(text);
  EXPECT_EQ(e.line(), 3);
  EXPECT_EQ(e.content(), "states two");
  EXPECT_NE(std::string(e.what()).find("malformed"), std::string::npos);
}

TEST(Artifacts, RejectsTrailingJunkOnKeywordLine) {
  std::string text = sample_text();
  const std::string needle = "barrier-degree 2";
  text.replace(text.find(needle), needle.size(), "barrier-degree 2 extra");
  const ArtifactParseError e = expect_parse_error(text);
  EXPECT_EQ(e.line(), 6);
  EXPECT_NE(std::string(e.what()).find("trailing junk"), std::string::npos);
}

TEST(Artifacts, RejectsUnparsablePolynomialWithLineNumber) {
  std::string text = sample_text();
  // Line 5 is the single controller polynomial: replace it wholesale.
  std::vector<std::string> lines;
  std::stringstream ss(text);
  for (std::string l; std::getline(ss, l);) lines.push_back(l);
  lines[4] = "9.875*x1 - @garbage@";
  std::string broken;
  for (const auto& l : lines) broken += l + "\n";
  const ArtifactParseError e = expect_parse_error(broken);
  EXPECT_EQ(e.line(), 5);
  EXPECT_NE(std::string(e.what()).find("controller"), std::string::npos);
}

TEST(Artifacts, RejectsImplausibleChannelCount) {
  std::string text = sample_text();
  const std::string needle = "controller 1";
  text.replace(text.find(needle), needle.size(), "controller 99999");
  const ArtifactParseError e = expect_parse_error(text);
  EXPECT_EQ(e.line(), 4);
  EXPECT_NE(std::string(e.what()).find("implausible"), std::string::npos);
}

TEST(Artifacts, CarriageReturnsAreTolerated) {
  // A file that passed through a CRLF translation still loads.
  std::string text = sample_text();
  std::string crlf;
  for (char c : text) {
    if (c == '\n') crlf += '\r';
    crlf += c;
  }
  std::stringstream ss(crlf);
  const SynthesisArtifacts b = load_artifacts(ss);
  EXPECT_EQ(b.benchmark, "C1");
  EXPECT_EQ(b.num_states, 2u);
}

TEST(Artifacts, MissingFileStillPreconditionError) {
  EXPECT_THROW(load_artifacts_file("/nonexistent/a.txt"), PreconditionError);
}

}  // namespace
}  // namespace scs
