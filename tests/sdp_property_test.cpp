// Property-based tests for the interior-point SDP solver: weak duality,
// complementarity at convergence, invariance under constraint scaling, and
// block-diagonal separability.
#include <gtest/gtest.h>

#include "math/eigen_sym.hpp"
#include "opt/sdp.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

/// Build a random feasible min-trace problem around a known interior X0.
SdpProblem random_feasible(std::size_t n, std::size_t m, Rng& rng,
                           Mat* x0_out = nullptr) {
  Mat l(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) l(i, j) = rng.normal();
  Mat x0 = matmul_a_bt(l, l);
  for (std::size_t i = 0; i < n; ++i) x0(i, i) += 1.0;

  SdpProblem p;
  p.block_dims = {n};
  p.block_obj_weight = {1.0};
  for (std::size_t i = 0; i < m; ++i) {
    SdpConstraint c;
    const std::size_t nnz = 1 + rng.index(3);
    double rhs = 0.0;
    for (std::size_t e = 0; e < nnz; ++e) {
      const std::size_t r = rng.index(n);
      const std::size_t cc = r + rng.index(n - r);
      const double v = rng.uniform(-1.0, 1.0);
      c.entries.push_back({0, r, cc, v});
      rhs += (r == cc) ? v * x0(r, r) : 2.0 * v * x0(r, cc);
    }
    c.rhs = rhs;
    p.constraints.push_back(c);
  }
  if (x0_out != nullptr) *x0_out = x0;
  return p;
}

class SdpDuality : public ::testing::TestWithParam<int> {};

TEST_P(SdpDuality, WeakDualityAndComplementarity) {
  Rng rng(100 + GetParam());
  const std::size_t n = 3 + rng.index(4);
  const std::size_t m = 2 + rng.index(4);
  const SdpProblem p = random_feasible(n, m, rng);
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged);

  // Weak duality: b' y <= <C, X> (+ small numerical slack).
  double by = 0.0;
  for (std::size_t i = 0; i < m; ++i) by += p.constraints[i].rhs * sol.y[i];
  EXPECT_LE(by, sol.primal_objective + 1e-5 * (1.0 + std::fabs(by)));
  // Near-complementarity: the normalized gap is tiny.
  EXPECT_LT(sol.duality_gap, 1e-6);
  // Dual slack S = C - At(y) is PSD: check via its minimum eigenvalue.
  Mat s = Mat::identity(n);
  for (std::size_t i = 0; i < m; ++i) {
    for (const auto& e : p.constraints[i].entries) {
      s(e.row, e.col) -= e.value * sol.y[i];
      if (e.row != e.col) s(e.col, e.row) -= e.value * sol.y[i];
    }
  }
  EXPECT_GT(min_eigenvalue(s), -1e-6);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdpDuality, ::testing::Range(1, 16));

TEST(SdpProperty, ObjectiveNoWorseThanKnownFeasiblePoint) {
  Rng rng(7);
  Mat x0;
  const SdpProblem p = random_feasible(5, 4, rng, &x0);
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged);
  EXPECT_LE(sol.primal_objective, x0.trace() + 1e-6 * x0.trace());
}

TEST(SdpProperty, ScalingConstraintsPreservesSolution) {
  Rng rng(9);
  const SdpProblem p = random_feasible(4, 3, rng);
  SdpProblem scaled = p;
  for (auto& c : scaled.constraints) {
    for (auto& e : c.entries) e.value *= 10.0;
    c.rhs *= 10.0;
  }
  const SdpSolution a = solve_sdp(p);
  const SdpSolution b = solve_sdp(scaled);
  ASSERT_EQ(a.status, SdpStatus::kConverged);
  ASSERT_EQ(b.status, SdpStatus::kConverged);
  EXPECT_NEAR(a.primal_objective, b.primal_objective,
              1e-4 * (1.0 + a.primal_objective));
}

TEST(SdpProperty, IndependentBlocksSolveSeparably) {
  // Two copies of the same single-block problem in one two-block problem
  // must give twice the objective.
  Rng rng(11);
  const SdpProblem single = random_feasible(4, 3, rng);
  SdpProblem doubled;
  doubled.block_dims = {4, 4};
  doubled.block_obj_weight = {1.0, 1.0};
  for (int copy = 0; copy < 2; ++copy) {
    for (const auto& c : single.constraints) {
      SdpConstraint c2 = c;
      for (auto& e : c2.entries) e.block = static_cast<std::size_t>(copy);
      doubled.constraints.push_back(c2);
    }
  }
  const SdpSolution s1 = solve_sdp(single);
  const SdpSolution s2 = solve_sdp(doubled);
  ASSERT_EQ(s1.status, SdpStatus::kConverged);
  ASSERT_EQ(s2.status, SdpStatus::kConverged);
  EXPECT_NEAR(s2.primal_objective, 2.0 * s1.primal_objective,
              1e-4 * (1.0 + s1.primal_objective));
}

}  // namespace
}  // namespace scs
