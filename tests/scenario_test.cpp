// Tests for the scenario-optimization sample bounds (Theorems 2-3),
// cross-checked against the K values printed in the paper's tables.
#include <gtest/gtest.h>

#include <cmath>

#include "pac/scenario.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

TEST(Scenario, MatchesPaperTable1Row3) {
  // C1 / Table 1, d = 3: n = 2, d = 3 -> kappa = C(5,3) + 1 = 11;
  // eps = 0.001, eta = 1e-6 -> K = 49632 (as printed in the paper).
  const std::size_t kappa = pac_template_kappa(2, 3);
  EXPECT_EQ(kappa, 11u);
  EXPECT_EQ(scenario_sample_count(0.001, 1e-6, kappa), 49632u);
}

TEST(Scenario, MatchesPaperTable2RowC4) {
  // C4: n = 4, d_p = 1 -> kappa = 5 + 1 = 6; eps = 1e-4 -> K = 396311.
  const std::size_t kappa = pac_template_kappa(4, 1);
  EXPECT_EQ(kappa, 6u);
  EXPECT_EQ(scenario_sample_count(0.0001, 1e-6, kappa), 396311u);
}

TEST(Scenario, MatchesPaperTable2RowC3) {
  // C3: n = 3, d_p = 2 -> kappa = C(5,2) + 1 = 11; eps = 0.01 -> K = 4964.
  EXPECT_EQ(pac_template_kappa(3, 2), 11u);
  EXPECT_EQ(scenario_sample_count(0.01, 1e-6, 11), 4964u);
}

TEST(Scenario, MatchesPaperTable2RowC10) {
  // C10: n = 12, d_p = 1 -> kappa = 13 + 1 = 14; eps = 0.01 -> K = 5564.
  EXPECT_EQ(pac_template_kappa(12, 1), 14u);
  EXPECT_EQ(scenario_sample_count(0.01, 1e-6, 14), 5564u);
}

TEST(Scenario, KMonotoneInEpsAndKappa) {
  EXPECT_GT(scenario_sample_count(0.001, 1e-6, 10),
            scenario_sample_count(0.01, 1e-6, 10));
  EXPECT_GT(scenario_sample_count(0.01, 1e-6, 50),
            scenario_sample_count(0.01, 1e-6, 10));
  EXPECT_GT(scenario_sample_count(0.01, 1e-9, 10),
            scenario_sample_count(0.01, 1e-3, 10));
}

TEST(Scenario, EpsForSamplesInvertsTheBound) {
  const std::size_t kappa = 11;
  const std::uint64_t k = scenario_sample_count(0.001, 1e-6, kappa);
  const double eps = scenario_eps_for_samples(k, 1e-6, kappa);
  // The achievable eps at the rounded-up K is at most the requested one.
  EXPECT_LE(eps, 0.001 + 1e-12);
  EXPECT_GT(eps, 0.00099);
}

TEST(Scenario, SatisfiesTheorem2Inequality) {
  for (double eps : {0.1, 0.01, 0.001}) {
    for (std::size_t kappa : {3u, 11u, 56u}) {
      const std::uint64_t k = scenario_sample_count(eps, 1e-6, kappa);
      // eps >= (2/K)(ln(1/eta) + kappa) must hold at the returned K...
      EXPECT_GE(eps + 1e-12, (2.0 / static_cast<double>(k)) *
                                 (std::log(1e6) + kappa));
      // ...and fail at K - 1 (least such K).
      EXPECT_LT(eps, (2.0 / static_cast<double>(k - 1)) *
                         (std::log(1e6) + kappa) + 1e-12);
    }
  }
}

TEST(Scenario, RejectsBadArguments) {
  EXPECT_THROW(scenario_sample_count(0.0, 1e-6, 5), PreconditionError);
  EXPECT_THROW(scenario_sample_count(0.5, 0.0, 5), PreconditionError);
  EXPECT_THROW(scenario_eps_for_samples(0, 1e-6, 5), PreconditionError);
}

}  // namespace
}  // namespace scs
