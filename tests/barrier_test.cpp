// Integration tests for barrier-certificate synthesis (Section 4) with
// hand-written stabilizing controllers.
#include <gtest/gtest.h>

#include "barrier/synthesis.hpp"
#include "barrier/validation.hpp"
#include "poly/basis.hpp"
#include "systems/benchmarks.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

/// Linear state feedback as a polynomial controller.
Polynomial linear_feedback(std::size_t n, const std::vector<double>& gains) {
  Polynomial p(n);
  for (std::size_t i = 0; i < gains.size(); ++i)
    p += Polynomial::variable(n, i) * gains[i];
  return p;
}

TEST(Barrier, SimpleStableLinearSystem) {
  // xdot = -x (1-D), Theta = [|x| <= 0.5], X_u = [|x| >= 1.5] in [-2, 2]:
  // B = 1 - x^2 certifies safety; the SOS program must find something.
  Ccds sys;
  sys.name = "toy";
  sys.num_states = 1;
  sys.num_controls = 1;
  const auto x = Polynomial::variable(2, 0);
  const auto u = Polynomial::variable(2, 1);
  sys.open_field = {-x + u};
  const Box box = Box::centered(1, 2.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0}, 1.5, box);
  sys.control_bound = 1.0;

  const Polynomial zero_controller(1);  // u = 0; plant already stable
  BarrierConfig config;
  config.degree_schedule = {2};
  const BarrierResult result = synthesize_barrier(sys, {zero_controller},
                                                  config);
  ASSERT_TRUE(result.success) << result.failure_reason;
  EXPECT_EQ(result.degree, 2);
  // The certificate separates Theta from X_u.
  EXPECT_GT(result.barrier.evaluate(Vec{0.0}), 0.0);
  EXPECT_LT(result.barrier.evaluate(Vec{1.9}), 0.0);
}

TEST(Barrier, PendulumWithGravityCompensation) {
  // Example 1 with a gravity-compensating feedback
  //   u = 9.875 x1 - 1.56 x1^3 + 0.056 x1^5 - x1 - 2 x2,
  // which renders the closed loop a damped linear oscillator
  // (x1' = x2, x2' = -x1 - 2.1 x2) whose radius is monotone non-increasing
  // -- exactly the kind of policy the paper's RL stage converges to (and
  // why Table 2 reports a degree-3+ surrogate for C1).
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial controller =
      x1 * 9.875 - x1.pow(3) * 1.56 + x1.pow(5) * 0.056 - x1 - x2 * 2.0;
  BarrierConfig config;
  const BarrierResult result =
      synthesize_barrier(bench.ccds, {controller}, config);
  ASSERT_TRUE(result.success) << result.failure_reason;
  // Independent numerical validation of Theorem 1's conditions.
  Rng rng(1);
  ValidationConfig vcfg;
  vcfg.samples_per_set = 1000;
  vcfg.simulation_rollouts = 5;
  const ValidationReport report = validate_barrier(
      bench.ccds, {controller}, result.barrier, vcfg, rng);
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(Barrier, InfeasibleForUnsafeController) {
  // Destabilizing feedback u = +10 x1 on the pendulum: trajectories from
  // Theta blow through the shell, so no certificate of degree <= 4 exists.
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  const Polynomial controller = linear_feedback(2, {10.0, 2.0});
  BarrierConfig config;
  config.lambda_attempts = 2;
  const BarrierResult result =
      synthesize_barrier(bench.ccds, {controller}, config);
  EXPECT_FALSE(result.success);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(Barrier, DegreeScheduleGuardSkipsHugePrograms) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC8);  // n = 9
  BarrierConfig config;
  config.degree_schedule = {8};  // deliberately enormous
  config.max_sdp_constraints = 100;
  const BarrierResult result = synthesize_barrier(
      bench.ccds, {linear_feedback(9, {-1.0})}, config);
  EXPECT_FALSE(result.success);
  EXPECT_NE(result.failure_reason.find("size guard"), std::string::npos);
}

TEST(Barrier, LambdaStrategiesReported) {
  EXPECT_EQ(to_string(LambdaStrategy::kZero), "zero");
  EXPECT_EQ(to_string(LambdaStrategy::kConstant), "constant");
  EXPECT_EQ(to_string(LambdaStrategy::kLinear), "linear");
  EXPECT_EQ(to_string(LambdaStrategy::kAlternating), "alternating-BMI");
}

/// Weakly damped toy2 oscillator: xdot = (x2, -x1 - damping x2 + u). The
/// degree-2 joint LMI struggles on low damping, which is what pushes the
/// alternating heuristic into its lambda-/B-step recovery loop.
Ccds toy2_weak(double damping) {
  Ccds sys;
  sys.name = "toy2w";
  sys.num_states = 2;
  sys.num_controls = 1;
  const auto x1 = Polynomial::variable(3, 0);
  const auto x2 = Polynomial::variable(3, 1);
  const auto u = Polynomial::variable(3, 2);
  sys.open_field = {x2, x1 * -1.0 - x2 * damping + u};
  const Box box = Box::centered(2, 2.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0, 0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 1.5, box);
  sys.control_bound = 1.0;
  return sys;
}

// Regression guard for the alternating-BMI diagnostics bug: when a BMI
// step is accepted, max_identity_residual / min_gram_eigenvalue must
// describe the *accepted* solve, not linger from the earlier failed one.
// An accepted solve is by definition within the acceptance tolerances, so
// out-of-tolerance diagnostics on success betray stale values.

TEST(BarrierBmi, BStepAcceptanceReportsAcceptedDiagnostics) {
  // (toy2 damping 1.0, seed 1, degree {2}): the initial LMI fails, the
  // first B-step accepts -- accepted_via pins the path.
  const Ccds sys = toy2_weak(1.0);
  BarrierConfig cfg;
  cfg.lambda_strategy = LambdaStrategy::kAlternating;
  cfg.degree_schedule = {2};
  cfg.lambda_attempts = 1;
  cfg.seed = 1;
  const BarrierResult result = synthesize_barrier(sys, {Polynomial(2)}, cfg);
  ASSERT_TRUE(result.success) << result.failure_reason;
  ASSERT_EQ(result.accepted_via, "bmi-b");
  EXPECT_LE(result.max_identity_residual, cfg.identity_tol);
  EXPECT_GE(result.min_gram_eigenvalue, -cfg.gram_tol);
}

TEST(BarrierBmi, LambdaStepAcceptanceReportsAcceptedDiagnostics) {
  // (toy2 damping 0.4, seed 4, degree {4}): LMI fails, round-1 B-step
  // fails, the round-2 lambda-step accepts. Before the fix this path kept
  // the failed solve's diagnostics in the result.
  const Ccds sys = toy2_weak(0.4);
  BarrierConfig cfg;
  cfg.lambda_strategy = LambdaStrategy::kAlternating;
  cfg.degree_schedule = {4};
  cfg.lambda_attempts = 2;
  cfg.seed = 4;
  const BarrierResult result = synthesize_barrier(sys, {Polynomial(2)}, cfg);
  ASSERT_TRUE(result.success) << result.failure_reason;
  ASSERT_EQ(result.accepted_via, "bmi-lambda");
  EXPECT_LE(result.max_identity_residual, cfg.identity_tol);
  EXPECT_GE(result.min_gram_eigenvalue, -cfg.gram_tol);
}

class BarrierLambdaSweep
    : public ::testing::TestWithParam<LambdaStrategy> {};

TEST_P(BarrierLambdaSweep, ToySystemFeasibleUnderEveryStrategy) {
  Ccds sys;
  sys.name = "toy2";
  sys.num_states = 2;
  sys.num_controls = 1;
  const auto x1 = Polynomial::variable(3, 0);
  const auto x2 = Polynomial::variable(3, 1);
  const auto u = Polynomial::variable(3, 2);
  sys.open_field = {x2, -x1 - x2 + u};
  const Box box = Box::centered(2, 2.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0, 0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 1.5, box);
  sys.control_bound = 1.0;

  BarrierConfig config;
  config.lambda_strategy = GetParam();
  config.degree_schedule = {2, 4};
  const BarrierResult result =
      synthesize_barrier(sys, {Polynomial(2)}, config);
  EXPECT_TRUE(result.success) << result.failure_reason;
}

INSTANTIATE_TEST_SUITE_P(Strategies, BarrierLambdaSweep,
                         ::testing::Values(LambdaStrategy::kConstant,
                                           LambdaStrategy::kLinear,
                                           LambdaStrategy::kAlternating));

}  // namespace
}  // namespace scs
