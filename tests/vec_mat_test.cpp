// Unit tests for the dense vector / matrix substrate.
#include <gtest/gtest.h>

#include "math/mat.hpp"
#include "math/vec.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

TEST(Vec, BasicArithmetic) {
  Vec a{1.0, 2.0, 3.0};
  Vec b{4.0, -1.0, 0.5};
  Vec c = a + b;
  EXPECT_DOUBLE_EQ(c[0], 5.0);
  EXPECT_DOUBLE_EQ(c[1], 1.0);
  EXPECT_DOUBLE_EQ(c[2], 3.5);
  c -= b;
  EXPECT_NEAR(max_abs_diff(c, a), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(dot(a, b), 4.0 - 2.0 + 1.5);
}

TEST(Vec, NormAndScale) {
  Vec a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(a.norm(), 5.0);
  a *= 2.0;
  EXPECT_DOUBLE_EQ(a.norm(), 10.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 8.0);
  EXPECT_DOUBLE_EQ(a.sum(), 14.0);
}

TEST(Vec, Axpy) {
  Vec a{1.0, 1.0};
  Vec b{2.0, -2.0};
  a.axpy(0.5, b);
  EXPECT_DOUBLE_EQ(a[0], 2.0);
  EXPECT_DOUBLE_EQ(a[1], 0.0);
}

TEST(Vec, SizeMismatchThrows) {
  Vec a{1.0};
  Vec b{1.0, 2.0};
  EXPECT_THROW(a += b, PreconditionError);
  EXPECT_THROW(dot(a, b), PreconditionError);
  EXPECT_THROW(a.at(3), PreconditionError);
}

TEST(Vec, Concat) {
  const Vec c = concat(Vec{1.0, 2.0}, Vec{3.0});
  ASSERT_EQ(c.size(), 3u);
  EXPECT_DOUBLE_EQ(c[2], 3.0);
}

TEST(Mat, IdentityAndDiag) {
  const Mat i3 = Mat::identity(3);
  EXPECT_DOUBLE_EQ(i3.trace(), 3.0);
  const Mat d = Mat::diag(Vec{1.0, 2.0, 3.0});
  EXPECT_DOUBLE_EQ(d(1, 1), 2.0);
  EXPECT_DOUBLE_EQ(d(0, 1), 0.0);
}

TEST(Mat, MatmulAgainstHandComputed) {
  Mat a(2, 3);
  a.set_row(0, Vec{1.0, 2.0, 3.0});
  a.set_row(1, Vec{0.0, -1.0, 1.0});
  Mat b(3, 2);
  b.set_row(0, Vec{1.0, 0.0});
  b.set_row(1, Vec{2.0, 1.0});
  b.set_row(2, Vec{-1.0, 2.0});
  const Mat c = matmul(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 8.0);
  EXPECT_DOUBLE_EQ(c(1, 0), -3.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 1.0);
}

TEST(Mat, TransposeProductsMatchExplicit) {
  Rng rng(3);
  Mat a(4, 3), b(4, 5);
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 3; ++j) a(i, j) = rng.normal();
  for (std::size_t i = 0; i < 4; ++i)
    for (std::size_t j = 0; j < 5; ++j) b(i, j) = rng.normal();
  EXPECT_NEAR(max_abs_diff(matmul_at_b(a, b), matmul(a.transpose(), b)), 0.0,
              1e-12);
  Mat c(3, 5);
  for (std::size_t i = 0; i < 3; ++i)
    for (std::size_t j = 0; j < 5; ++j) c(i, j) = rng.normal();
  EXPECT_NEAR(max_abs_diff(matmul_a_bt(a, c.transpose()), matmul(a, c)), 0.0,
              1e-12);
}

TEST(Mat, MatvecVariants) {
  Mat a(2, 3);
  a.set_row(0, Vec{1.0, 2.0, 3.0});
  a.set_row(1, Vec{4.0, 5.0, 6.0});
  const Vec x{1.0, 0.0, -1.0};
  const Vec y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], -2.0);
  EXPECT_DOUBLE_EQ(y[1], -2.0);
  const Vec z = matvec_t(a, Vec{1.0, 1.0});
  EXPECT_DOUBLE_EQ(z[0], 5.0);
  EXPECT_DOUBLE_EQ(z[1], 7.0);
  EXPECT_DOUBLE_EQ(z[2], 9.0);
}

TEST(Mat, SymmetrizeAndFrobenius) {
  Mat a(2, 2);
  a(0, 1) = 2.0;
  a(1, 0) = 0.0;
  a.symmetrize();
  EXPECT_DOUBLE_EQ(a(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(a(1, 0), 1.0);
  EXPECT_DOUBLE_EQ(frob_inner(a, Mat::identity(2)), 0.0);
}

TEST(Mat, OuterProduct) {
  const Mat o = outer(Vec{1.0, 2.0}, Vec{3.0, 4.0});
  EXPECT_DOUBLE_EQ(o(1, 0), 6.0);
  EXPECT_DOUBLE_EQ(o(0, 1), 4.0);
}

TEST(Mat, ShapeMismatchThrows) {
  Mat a(2, 2), b(3, 3);
  EXPECT_THROW(a += b, PreconditionError);
  EXPECT_THROW(matmul(a, b), PreconditionError);
  EXPECT_THROW(Mat(2, 3).trace(), PreconditionError);
}

}  // namespace
}  // namespace scs
