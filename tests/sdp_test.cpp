// Tests for the interior-point SDP solver: known analytic optima, duality,
// free-variable handling, and randomized feasibility sweeps.
#include <gtest/gtest.h>

#include <cmath>

#include "math/cholesky.hpp"
#include "math/eigen_sym.hpp"
#include "opt/sdp.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

TEST(Sdp, MinTraceWithDiagonalConstraint) {
  // min tr(X) s.t. X_00 + X_11 = 2, X PSD (2x2). Optimum: tr(X) = 2.
  SdpProblem p;
  p.block_dims = {2};
  p.block_obj_weight = {1.0};
  SdpConstraint c;
  c.entries = {{0, 0, 0, 1.0}, {0, 1, 1, 1.0}};
  c.rhs = 2.0;
  p.constraints.push_back(c);
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged);
  EXPECT_NEAR(sol.primal_objective, 2.0, 1e-5);
  EXPECT_LT(sol.primal_infeasibility, 1e-6);
}

TEST(Sdp, OffDiagonalConventionDoublesEntry) {
  // Constraint 2*X_01 = 1 via a single off-diagonal entry with value 1.
  // With min tr(X), the optimum is X = [[1/2, 1/2],[1/2, 1/2]], trace 1
  // (rank-one with X_01 = 1/2).
  SdpProblem p;
  p.block_dims = {2};
  p.block_obj_weight = {1.0};
  SdpConstraint c;
  c.entries = {{0, 0, 1, 1.0}};
  c.rhs = 1.0;
  p.constraints.push_back(c);
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged);
  EXPECT_NEAR(2.0 * sol.x[0](0, 1), 1.0, 1e-5);
  EXPECT_NEAR(sol.primal_objective, 1.0, 1e-4);
}

TEST(Sdp, TwoBlocks) {
  // Independent blocks with separate trace constraints.
  SdpProblem p;
  p.block_dims = {2, 3};
  p.block_obj_weight = {1.0, 1.0};
  SdpConstraint c1;
  c1.entries = {{0, 0, 0, 1.0}, {0, 1, 1, 1.0}};
  c1.rhs = 1.0;
  SdpConstraint c2;
  c2.entries = {{1, 0, 0, 1.0}, {1, 1, 1, 1.0}, {1, 2, 2, 1.0}};
  c2.rhs = 3.0;
  p.constraints = {c1, c2};
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged);
  EXPECT_NEAR(sol.x[0].trace(), 1.0, 1e-5);
  EXPECT_NEAR(sol.x[1].trace(), 3.0, 1e-5);
}

TEST(Sdp, FreeVariableShiftsBudget) {
  // tr-minimization with a free variable absorbing the constraint:
  //   X_00 + f = 1, min tr(X) + 0*f -> X = 0, f = 1.
  SdpProblem p;
  p.block_dims = {1};
  p.block_obj_weight = {1.0};
  p.num_free = 1;
  SdpConstraint c;
  c.entries = {{0, 0, 0, 1.0}};
  c.free_terms = {{0, 1.0}};
  c.rhs = 1.0;
  p.constraints.push_back(c);
  // A second constraint pins the free variable: f = 1.
  SdpConstraint c2;
  c2.free_terms = {{0, 1.0}};
  c2.rhs = 1.0;
  p.constraints.push_back(c2);
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged);
  EXPECT_NEAR(sol.free_vars[0], 1.0, 1e-5);
  EXPECT_NEAR(sol.x[0](0, 0), 0.0, 1e-4);
}

TEST(Sdp, FreeVariableWithCost) {
  // min tr(X) + f  s.t. X_00 - f = 0, X_00 + f = 2.
  // => X_00 = f = 1; objective 2.
  SdpProblem p;
  p.block_dims = {1};
  p.block_obj_weight = {1.0};
  p.num_free = 1;
  p.free_obj = Vec{1.0};
  SdpConstraint c1;
  c1.entries = {{0, 0, 0, 1.0}};
  c1.free_terms = {{0, -1.0}};
  c1.rhs = 0.0;
  SdpConstraint c2;
  c2.entries = {{0, 0, 0, 1.0}};
  c2.free_terms = {{0, 1.0}};
  c2.rhs = 2.0;
  p.constraints = {c1, c2};
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged);
  EXPECT_NEAR(sol.x[0](0, 0), 1.0, 1e-5);
  EXPECT_NEAR(sol.free_vars[0], 1.0, 1e-5);
}

TEST(Sdp, StructurallyInfeasibleEmptyRow) {
  SdpProblem p;
  p.block_dims = {1};
  SdpConstraint c;  // no entries, no free terms, nonzero rhs
  c.rhs = 1.0;
  p.constraints.push_back(c);
  EXPECT_EQ(solve_sdp(p).status, SdpStatus::kInfeasible);
}

TEST(Sdp, InfeasibleProblemDoesNotConverge) {
  // X_00 = -1 with X PSD is infeasible.
  SdpProblem p;
  p.block_dims = {1};
  p.block_obj_weight = {1.0};
  SdpConstraint c;
  c.entries = {{0, 0, 0, 1.0}};
  c.rhs = -1.0;
  p.constraints.push_back(c);
  SdpOptions opts;
  opts.max_iterations = 40;
  const SdpSolution sol = solve_sdp(p, opts);
  EXPECT_NE(sol.status, SdpStatus::kConverged);
}

class SdpRandomFeasible : public ::testing::TestWithParam<int> {};

TEST_P(SdpRandomFeasible, RecoversFeasiblePoint) {
  // Construct a feasible problem: pick X0 > 0, random sparse A_i, and set
  // b = A(X0). The solver must return a PSD X with A(X) ~ b.
  Rng rng(GetParam());
  const std::size_t n = 2 + rng.index(5);
  const std::size_t m = 1 + rng.index(2 * n);
  // X0 = L L' + I.
  Mat l(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j <= i; ++j) l(i, j) = rng.normal();
  Mat x0 = matmul_a_bt(l, l);
  for (std::size_t i = 0; i < n; ++i) x0(i, i) += 1.0;

  SdpProblem p;
  p.block_dims = {n};
  p.block_obj_weight = {1.0};
  for (std::size_t i = 0; i < m; ++i) {
    SdpConstraint c;
    const std::size_t nnz = 1 + rng.index(3);
    double rhs = 0.0;
    for (std::size_t e = 0; e < nnz; ++e) {
      const std::size_t r = rng.index(n);
      const std::size_t cc = r + rng.index(n - r);
      const double v = rng.uniform(-1.0, 1.0);
      c.entries.push_back({0, r, cc, v});
      rhs += (r == cc) ? v * x0(r, r) : 2.0 * v * x0(r, cc);
    }
    c.rhs = rhs;
    p.constraints.push_back(c);
  }
  const SdpSolution sol = solve_sdp(p);
  ASSERT_EQ(sol.status, SdpStatus::kConverged) << "seed " << GetParam();
  EXPECT_LT(sol.primal_infeasibility, 1e-6);
  EXPECT_GT(min_eigenvalue(sol.x[0]), -1e-7);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SdpRandomFeasible, ::testing::Range(1, 26));

TEST(Sdp, RejectsBadInput) {
  SdpProblem p;  // no blocks
  EXPECT_THROW(solve_sdp(p), PreconditionError);
  p.block_dims = {2};
  EXPECT_THROW(solve_sdp(p), PreconditionError);  // no constraints
  SdpConstraint c;
  c.entries = {{3, 0, 0, 1.0}};  // bad block index
  p.constraints.push_back(c);
  EXPECT_THROW(solve_sdp(p), PreconditionError);
}

}  // namespace
}  // namespace scs
