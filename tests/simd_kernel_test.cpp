// Solver-core speed layer: SIMD kernel equivalence, Newton-polytope Gram
// pruning, and SDP warm starts.
//
// The SIMD contract (src/math/simd.hpp) is that the AVX2 and scalar paths
// are bitwise identical: elementwise kernels never use FMA, and `dot` uses
// the same four-lane accumulation in both implementations. These tests pin
// that contract directly (kernel vs kernel over ragged lengths) and
// end-to-end (a dense matmul forced through each path). The AVX2 halves
// skip themselves on machines -- or SCS_SIMD=OFF builds -- without the
// vector kernels, so the same test binary runs everywhere.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "math/mat.hpp"
#include "math/simd.hpp"
#include "obs/metrics.hpp"
#include "opt/sdp.hpp"
#include "poly/basis.hpp"
#include "poly/polynomial.hpp"
#include "sos/putinar.hpp"
#include "sos/sos_program.hpp"
#include "store/warm_cache.hpp"
#include "systems/benchmarks.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

bool bits_equal(const std::vector<double>& a, const std::vector<double>& b) {
  return a.size() == b.size() &&
         (a.empty() ||
          std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0);
}

std::vector<double> random_doubles(std::size_t n, Rng& rng) {
  std::vector<double> v(n);
  for (auto& x : v) x = rng.normal();
  return v;
}

/// Restores the CPU-detected kernel on scope exit so a failing ASSERT in
/// one test cannot leak a forced kernel into the next.
struct KernelGuard {
  explicit KernelGuard(simd::Kernel k) { simd::set_kernel_override(k); }
  ~KernelGuard() { simd::set_kernel_override(simd::Kernel::kAuto); }
};

// ---- SIMD-vs-scalar equivalence -------------------------------------------

class SimdEquivalence : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!simd::avx2_available())
      GTEST_SKIP() << "AVX2 kernels unavailable in this build";
  }
};

// Ragged lengths cover every remainder class of the 4-wide vector body,
// including the empty and sub-vector-width cases.
constexpr std::size_t kLengths[] = {0, 1, 2, 3, 4, 5, 7, 8,
                                    15, 16, 17, 31, 64, 67};

TEST_F(SimdEquivalence, ElementwiseKernelsBitwiseIdentical) {
  Rng rng(1);
  for (const std::size_t n : kLengths) {
    const std::vector<double> x = random_doubles(n, rng);
    const std::vector<double> base = random_doubles(n, rng);
    const double s = rng.normal();

    auto run = [&](simd::Kernel k) {
      KernelGuard guard(k);
      std::vector<double> axpy_y = base, add_y = base, sub_y = base,
                          scale_y = base;
      simd::axpy(axpy_y.data(), s, x.data(), n);
      simd::add(add_y.data(), x.data(), n);
      simd::sub(sub_y.data(), x.data(), n);
      simd::scale(scale_y.data(), s, n);
      std::vector<double> out;
      for (const auto* v : {&axpy_y, &add_y, &sub_y, &scale_y})
        out.insert(out.end(), v->begin(), v->end());
      return out;
    };

    EXPECT_TRUE(bits_equal(run(simd::Kernel::kScalar),
                           run(simd::Kernel::kAvx2)))
        << "elementwise kernels diverge at n = " << n;
  }
}

TEST_F(SimdEquivalence, DotBitwiseIdenticalAcrossKernels) {
  Rng rng(2);
  for (const std::size_t n : kLengths) {
    const std::vector<double> x = random_doubles(n, rng);
    const std::vector<double> y = random_doubles(n, rng);
    double scalar = 0.0, avx2 = 0.0;
    {
      KernelGuard guard(simd::Kernel::kScalar);
      scalar = simd::dot(x.data(), y.data(), n);
    }
    {
      KernelGuard guard(simd::Kernel::kAvx2);
      avx2 = simd::dot(x.data(), y.data(), n);
    }
    // Exact equality, not a tolerance: both paths implement the same
    // four-lane accumulation with the same (l0+l1)+(l2+l3) combine.
    EXPECT_EQ(scalar, avx2) << "dot diverges at n = " << n;
  }
}

TEST(SimdKernels, DotMatchesDocumentedLaneStructure) {
  // The contract in simd.hpp: lane j sums terms at indices == j (mod 4),
  // lanes combine as (l0 + l1) + (l2 + l3). Any kernel must reproduce this
  // bit for bit.
  Rng rng(3);
  for (const std::size_t n : kLengths) {
    const std::vector<double> x = random_doubles(n, rng);
    const std::vector<double> y = random_doubles(n, rng);
    double lane[4] = {0.0, 0.0, 0.0, 0.0};
    for (std::size_t i = 0; i < n; ++i) lane[i % 4] += x[i] * y[i];
    const double expected = (lane[0] + lane[1]) + (lane[2] + lane[3]);
    EXPECT_EQ(simd::dot(x.data(), y.data(), n), expected)
        << "lane structure violated at n = " << n;
  }
}

TEST_F(SimdEquivalence, DenseMatmulBitwiseIdentical) {
  // End-to-end: the matmul tiles funnel through axpy/dot, so a whole
  // product must match bit for bit across kernels (ragged size on purpose).
  const std::size_t n = 53;
  Rng rng(4);
  Mat a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = rng.normal();
      b(i, j) = rng.normal();
    }
  auto flatten = [&](simd::Kernel k) {
    KernelGuard guard(k);
    const Mat c = matmul(a, b);
    std::vector<double> out;
    out.reserve(n * n);
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = 0; j < n; ++j) out.push_back(c(i, j));
    return out;
  };
  EXPECT_TRUE(bits_equal(flatten(simd::Kernel::kScalar),
                         flatten(simd::Kernel::kAvx2)));
}

// ---- Newton-polytope Gram pruning -----------------------------------------

TEST(GramPruning, FixpointRemovesConstantThenLinearMonomials) {
  // p = (x1^2+x2^2+x3^2)^2 + sum x_i^4 over the full degree-2 basis: round
  // one kills the constant monomial (its diagonal equation is p's zero
  // constant coefficient); with it gone, each x_i^2 equation becomes
  // diagonal-only and round two kills the linear monomials. 10 -> 6.
  const std::size_t n = 3;
  Polynomial sum_sq(n);
  for (std::size_t i = 0; i < n; ++i)
    sum_sq += Polynomial::variable(n, i).pow(2);
  Polynomial p = sum_sq * sum_sq;
  for (std::size_t i = 0; i < n; ++i)
    p += Polynomial::variable(n, i).pow(4);

  SosProgram prog(n);
  const auto s = prog.add_sos_poly(monomials_up_to(n, 2));
  prog.add_identity(-p, {{Polynomial::constant(n, 1.0), s, {}}});

  const auto stats = prog.gram_prune_stats();
  ASSERT_EQ(stats.original_dims.size(), 1u);
  EXPECT_EQ(stats.original_dims[0], 10u);
  EXPECT_EQ(stats.pruned_dims[0], 6u);
  EXPECT_EQ(stats.removed(), 4u);
  EXPECT_GE(stats.rounds, 2);

  prog.set_gram_pruning(true);
  EXPECT_EQ(prog.compile().block_dims[0], 6u);
  prog.set_gram_pruning(false);
  EXPECT_EQ(prog.compile().block_dims[0], 10u);
}

TEST(GramPruning, SameVerdictAndCertificateAcrossBenchmarkDimensions) {
  // One SOS membership problem per Table-2 benchmark, posed in that
  // benchmark's state dimension: f = sum (j+1) x_j^2 over the full
  // degree-1 Gram basis. The constant monomial is always dead weight, so
  // the pruner must shrink every block by one -- and the pruned and
  // unpruned solves must agree on feasibility and on the extracted
  // polynomial (the Gram matrix is uniquely determined here).
  int reduced = 0;
  for (const BenchmarkId id : all_benchmark_ids()) {
    const Benchmark bench = make_benchmark(id);
    const std::size_t n = bench.ccds.num_states;
    Polynomial f(n);
    for (std::size_t j = 0; j < n; ++j)
      f += Polynomial::constant(n, static_cast<double>(j + 1)) *
           Polynomial::variable(n, j).pow(2);

    SosProgram prog(n);
    const auto s = prog.add_sos_poly(monomials_up_to(n, 1));
    prog.add_identity(-f, {{Polynomial::constant(n, 1.0), s, {}}});

    const auto stats = prog.gram_prune_stats();
    ASSERT_EQ(stats.original_dims[0], n + 1) << bench.name;
    if (stats.pruned_dims[0] < stats.original_dims[0]) ++reduced;

    prog.set_gram_pruning(false);
    const auto full = prog.solve();
    prog.set_gram_pruning(true);
    const auto pruned = prog.solve();
    ASSERT_TRUE(full.feasible) << bench.name;
    ASSERT_TRUE(pruned.feasible) << bench.name;
    EXPECT_LT(max_coefficient_diff(full.value(s), pruned.value(s)), 1e-5)
        << bench.name;
  }
  // Acceptance: a strictly smaller Gram block on at least 3 of C1..C10
  // (here: on all of them).
  EXPECT_GE(reduced, 3);
}

TEST(GramPruning, PutinarOptionFlowsThroughAndCertifiesBothWays) {
  // f = g + 0.2 on the unit ball {g >= 0}, g = 1 - |x|^2: certifiable with
  // and without pruning, with matching multipliers.
  const std::size_t n = 2;
  Polynomial g = Polynomial::constant(n, 1.0);
  for (std::size_t i = 0; i < n; ++i)
    g -= Polynomial::variable(n, i).pow(2);
  const Polynomial f = g + Polynomial::constant(n, 0.2);

  PutinarOptions off;
  const auto cert_off = certify_nonnegativity(f, {g}, off);
  PutinarOptions on;
  on.prune_gram = true;
  const auto cert_on = certify_nonnegativity(f, {g}, on);
  ASSERT_TRUE(cert_off.has_value());
  ASSERT_TRUE(cert_on.has_value());
  EXPECT_LT(max_coefficient_diff(cert_off->sigma0, cert_on->sigma0), 1e-4);
}

TEST(GramPruning, NeverEmptiesABlock) {
  // Even the trivial program s == 0 must keep a 1x1 block: the pruner's
  // job is to shrink, not to delete the variable.
  SosProgram prog(1);
  prog.add_sos_poly(monomials_up_to(1, 0));
  const auto stats = prog.gram_prune_stats();
  EXPECT_GE(stats.pruned_dims[0], 1u);
}

// ---- SDP warm starts ------------------------------------------------------

/// The Gram-block family from bench_solvers: feasible around X0 = I.
SdpProblem gram_block_problem(std::size_t n, unsigned seed) {
  Rng rng(seed);
  SdpProblem p;
  p.block_dims = {n};
  p.block_obj_weight = {1.0};
  for (std::size_t i = 0; i < 2 * n; ++i) {
    SdpConstraint c;
    const std::size_t r = rng.index(n);
    const std::size_t cc = r + rng.index(n - r);
    const double v = rng.uniform(-1.0, 1.0);
    c.entries.push_back({0, r, cc, v});
    c.rhs = (r == cc) ? v : 0.0;
    p.constraints.push_back(c);
  }
  return p;
}

SdpProblem perturb_values(SdpProblem p, double rel, unsigned seed) {
  Rng rng(seed);
  for (SdpConstraint& c : p.constraints) {
    const double f = 1.0 + rel * rng.normal();
    for (SdpEntry& e : c.entries) e.value *= f;
    c.rhs *= f;
  }
  return p;
}

TEST(SdpWarmStart, SeedFromNearbySolveSavesIterationsAndMatchesCold) {
  const SdpProblem base = gram_block_problem(24, 31);
  const SdpSolution base_sol = solve_sdp(base);
  ASSERT_EQ(base_sol.status, SdpStatus::kConverged);

  const SdpProblem near = perturb_values(base, 0.01, 32);
  const SdpSolution cold = solve_sdp(near);
  ASSERT_EQ(cold.status, SdpStatus::kConverged);
  EXPECT_FALSE(cold.warm_started);

  const SdpWarmStart seed = make_warm_start(base_sol);
  const SdpSolution warm = solve_sdp(near, {}, &seed);
  ASSERT_EQ(warm.status, SdpStatus::kConverged);
  EXPECT_TRUE(warm.warm_started);
  EXPECT_LE(warm.iterations, cold.iterations);
  // A seed is a hint, never a correctness input: same optimum either way.
  EXPECT_NEAR(warm.primal_objective, cold.primal_objective, 1e-5);
}

TEST(SdpWarmStart, IncompatibleSeedFallsBackToColdStart) {
  const SdpProblem p = gram_block_problem(12, 33);
  const SdpSolution other = solve_sdp(gram_block_problem(8, 34));
  ASSERT_EQ(other.status, SdpStatus::kConverged);
  const SdpWarmStart seed = make_warm_start(other);  // wrong shape
  const SdpSolution sol = solve_sdp(p, {}, &seed);
  EXPECT_EQ(sol.status, SdpStatus::kConverged);
  EXPECT_FALSE(sol.warm_started);
}

TEST(WarmCache, StructureKeyIgnoresValuesButNotShape) {
  const SdpProblem a = gram_block_problem(10, 35);
  // Same sparsity, different numbers: same key.
  const SdpProblem b = perturb_values(a, 0.5, 36);
  EXPECT_EQ(sdp_structure_key(a), sdp_structure_key(b));
  // Different block size: different key.
  EXPECT_NE(sdp_structure_key(a), sdp_structure_key(gram_block_problem(9, 35)));
}

TEST(WarmCache, HitWithinRadiusMissBeyondIt) {
  WarmStartCache cache;
  const SdpProblem base = gram_block_problem(16, 37);
  EXPECT_FALSE(cache.lookup(base).has_value());  // empty cache: miss

  const SdpSolution sol = solve_sdp(base);
  ASSERT_EQ(sol.status, SdpStatus::kConverged);
  cache.insert(base, sol);
  EXPECT_EQ(cache.size(), 1u);

  // Nearby values: hit.
  EXPECT_TRUE(cache.lookup(perturb_values(base, 0.01, 38)).has_value());
  // Same structure but values far outside the acceptance radius: miss.
  EXPECT_FALSE(cache.lookup(perturb_values(base, 10.0, 39)).has_value());

  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().inserts, 1u);
}

TEST(WarmCache, IgnoresNonConvergedSolutions) {
  WarmStartCache cache;
  const SdpProblem p = gram_block_problem(8, 40);
  SdpSolution stalled;  // default status: not converged
  cache.insert(p, stalled);
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().inserts, 0u);
}

TEST(WarmCache, CachedSolveWarmsSecondCallAndCountsMetrics) {
  set_metrics_enabled(true);
  MetricsRegistry::instance().reset_for_tests();

  WarmStartCache cache;
  const SdpProblem base = gram_block_problem(24, 41);
  const SdpSolution first = solve_sdp_cached(base, {}, cache);
  ASSERT_EQ(first.status, SdpStatus::kConverged);
  EXPECT_FALSE(first.warm_started);  // nothing cached yet

  const SdpProblem near = perturb_values(base, 0.01, 42);
  const SdpSolution second = solve_sdp_cached(near, {}, cache);
  ASSERT_EQ(second.status, SdpStatus::kConverged);
  EXPECT_TRUE(second.warm_started);
  EXPECT_LE(second.iterations, first.iterations);

  auto count = [](const char* name) {
    return MetricsRegistry::instance().counter(name).value();
  };
  EXPECT_EQ(count("sdp.warm.miss"), 1u);
  EXPECT_EQ(count("sdp.warm.hit"), 1u);
  EXPECT_GE(count("sdp.warm.insert"), 1u);
  EXPECT_GE(count("sdp.warm.starts"), 1u);
  set_metrics_enabled(false);
}

TEST(GramPruning, PruneMetricsCountRemovedMonomials) {
  set_metrics_enabled(true);
  MetricsRegistry::instance().reset_for_tests();

  SosProgram prog(2);
  const auto s = prog.add_sos_poly(monomials_up_to(2, 1));
  Polynomial f(2);
  for (std::size_t j = 0; j < 2; ++j)
    f += Polynomial::variable(2, j).pow(2);
  prog.add_identity(-f, {{Polynomial::constant(2, 1.0), s, {}}});
  prog.set_gram_pruning(true);
  ASSERT_TRUE(prog.solve().feasible);

  EXPECT_GE(
      MetricsRegistry::instance().counter("sos.prune.removed").value(), 1u);
  set_metrics_enabled(false);
}

}  // namespace
}  // namespace scs
