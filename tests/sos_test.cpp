// Tests for the SOS program compiler and certificate utilities.
#include <gtest/gtest.h>

#include "poly/basis.hpp"
#include "sos/certificate.hpp"
#include "sos/sos_program.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

Polynomial var(std::size_t n, std::size_t i) {
  return Polynomial::variable(n, i);
}

TEST(SosDecompose, RecognizesSumOfSquares) {
  // p = (x1 - x2)^2 + (x1 + 1)^2 is SOS.
  const auto x1 = var(2, 0);
  const auto x2 = var(2, 1);
  const Polynomial p =
      (x1 - x2).pow(2) + (x1 + Polynomial::constant(2, 1.0)).pow(2);
  const auto dec = sos_decompose(p);
  ASSERT_TRUE(dec.has_value());
  EXPECT_LT(dec->residual, 1e-6);
  EXPECT_GT(dec->min_eigenvalue, -1e-7);
  // Reconstruct and compare.
  const Polynomial rec = sos_poly_from_gram(dec->basis, dec->gram);
  EXPECT_LT(max_coefficient_diff(rec, p), 1e-5);
}

TEST(SosDecompose, RejectsNegativePolynomial) {
  // p = -x1^2 - 1 is negative definite: not SOS.
  const Polynomial p = -var(1, 0).pow(2) - Polynomial::constant(1, 1.0);
  EXPECT_FALSE(sos_decompose(p).has_value());
}

TEST(SosDecompose, RejectsOddDegree) {
  EXPECT_FALSE(sos_decompose(var(1, 0).pow(3)).has_value());
}

TEST(SosDecompose, RejectsIndefinite) {
  // x1^2 - x2^2 is indefinite.
  const Polynomial p = var(2, 0).pow(2) - var(2, 1).pow(2);
  EXPECT_FALSE(sos_decompose(p).has_value());
}

TEST(SosDecompose, MotzkinLikePositiveButNotSos) {
  // The Motzkin polynomial x^4 y^2 + x^2 y^4 - 3 x^2 y^2 + 1 is nonnegative
  // but famously NOT a sum of squares.
  const auto x = var(2, 0);
  const auto y = var(2, 1);
  const Polynomial motzkin = x.pow(4) * y.pow(2) + x.pow(2) * y.pow(4) -
                             x.pow(2) * y.pow(2) * 3.0 +
                             Polynomial::constant(2, 1.0);
  EXPECT_FALSE(sos_decompose(motzkin).has_value());
}

class SosRandomSquares : public ::testing::TestWithParam<int> {};

TEST_P(SosRandomSquares, SumsOfRandomSquaresDecompose) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.index(3);
  Polynomial p(n);
  const auto basis = monomials_up_to(n, 1 + static_cast<int>(rng.index(2)));
  for (int k = 0; k < 3; ++k) {
    Vec c(basis.size());
    for (auto& v : c) v = rng.uniform(-1.0, 1.0);
    const Polynomial q = Polynomial::from_coefficients(basis, c);
    p += q * q;
  }
  EXPECT_TRUE(sos_decompose(p, 1e-5).has_value()) << "seed " << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Seeds, SosRandomSquares, ::testing::Range(1, 16));

TEST(SosProgram, FreePolyEqualityConstraint) {
  // Find free f (degree <= 1) with f - (2 x1 + 3) == 0.
  SosProgram prog(1);
  const auto f = prog.add_free_poly(monomials_up_to(1, 1));
  const Polynomial target = var(1, 0) * 2.0 + Polynomial::constant(1, 3.0);
  prog.add_identity(-target, {{Polynomial::constant(1, 1.0), f, {}}});
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_LT(max_coefficient_diff(result.value(f), target), 1e-5);
}

TEST(SosProgram, DerivativeTermsCompileCorrectly) {
  // Find free B (degree <= 2) with dB/dx1 - 2 x1 == 0 and B(0) pinned by
  // B - x1^2 - s == 0 on a second identity with SOS slack s... simpler:
  // dB/dx1 == 2 x1 and dB/dx2 == 0 and B - x1^2 == 0.
  SosProgram prog(2);
  const auto b = prog.add_free_poly(monomials_up_to(2, 2));
  const Polynomial one = Polynomial::constant(2, 1.0);
  prog.add_identity(-var(2, 0) * 2.0, {{one, b, 0}});
  prog.add_identity(Polynomial(2), {{one, b, 1}});
  prog.add_identity(-var(2, 0).pow(2), {{one, b, {}}});
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_LT(max_coefficient_diff(result.value(b), var(2, 0).pow(2)), 1e-5);
}

TEST(SosProgram, PutinarCertificateOnInterval) {
  // Certify f = x (1 - x) + 0.3 >= 0 on [0, 1] = {g1 = x >= 0, g2 = 1-x >= 0}:
  // find SOS s0, s1, s2 with f = s0 + s1 g1 + s2 g2. The classical
  // certificate x(1-x) = (1-x)^2 x + x^2 (1-x) needs degree-2 multipliers.
  const auto x = var(1, 0);
  const Polynomial f =
      x * (Polynomial::constant(1, 1.0) - x) + Polynomial::constant(1, 0.3);
  const Polynomial g1 = x;
  const Polynomial g2 = Polynomial::constant(1, 1.0) - x;

  SosProgram prog(1);
  const auto s0 = prog.add_sos_poly(monomials_up_to(1, 1));
  const auto s1 = prog.add_sos_poly(monomials_up_to(1, 1));
  const auto s2 = prog.add_sos_poly(monomials_up_to(1, 1));
  const Polynomial one = Polynomial::constant(1, 1.0);
  // f - s0 - s1 g1 - s2 g2 == 0.
  prog.add_identity(f, {{-one, s0, {}}, {-g1, s1, {}}, {-g2, s2, {}}});
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible);
  // Cross-check with the standalone Putinar checker.
  EXPECT_TRUE(check_putinar_identity(
      f, result.value(s0), {g1, g2}, {result.value(s1), result.value(s2)},
      1e-4));
}

TEST(SosProgram, InfeasibleCertificateDetected) {
  // f = x - 2 is negative on part of [0, 1]: no Putinar certificate of any
  // degree exists for nonnegativity on [0,1].
  const auto x = var(1, 0);
  const Polynomial f = x - Polynomial::constant(1, 2.0);
  const Polynomial g1 = x;
  const Polynomial g2 = Polynomial::constant(1, 1.0) - x;
  SosProgram prog(1);
  const auto s0 = prog.add_sos_poly(monomials_up_to(1, 1));
  const auto s1 = prog.add_sos_poly(monomials_up_to(1, 0));
  const auto s2 = prog.add_sos_poly(monomials_up_to(1, 0));
  const Polynomial one = Polynomial::constant(1, 1.0);
  prog.add_identity(f, {{-one, s0, {}}, {-g1, s1, {}}, {-g2, s2, {}}});
  EXPECT_FALSE(prog.solve().feasible);
}

TEST(SosProgram, CompileProducesOneEquationPerMonomial) {
  SosProgram prog(2);
  const auto s0 = prog.add_sos_poly(monomials_up_to(2, 1));
  const Polynomial one = Polynomial::constant(2, 1.0);
  // s0 - (x1^2 + x2^2 + 1) == 0 touches monomials {1, x1, x2, x1^2,
  // x1 x2, x2^2}: 6 equations.
  const Polynomial target =
      var(2, 0).pow(2) + var(2, 1).pow(2) + Polynomial::constant(2, 1.0);
  prog.add_identity(-target, {{one, s0, {}}});
  const SdpProblem sdp = prog.compile();
  EXPECT_EQ(sdp.constraints.size(), 6u);
  EXPECT_EQ(sdp.block_dims.size(), 1u);
  EXPECT_EQ(sdp.block_dims[0], 3u);
}

TEST(SosProgram, RejectsDerivativeOnSosVar) {
  SosProgram prog(1);
  const auto s = prog.add_sos_poly(monomials_up_to(1, 1));
  EXPECT_THROW(
      prog.add_identity(Polynomial(1),
                        {{Polynomial::constant(1, 1.0), s, 0}}),
      PreconditionError);
}

TEST(CheckPutinar, DetectsMismatch) {
  const auto x = var(1, 0);
  EXPECT_FALSE(check_putinar_identity(x, x * x, {}, {}, 1e-9));
}

}  // namespace
}  // namespace scs
