// Tests for the Table 1 / Table 2 plain-text formatting.
#include <gtest/gtest.h>

#include "core/report.hpp"

namespace scs {
namespace {

PacResult sample_pac_result() {
  PacResult pac;
  pac.success = true;
  PacTraceRow r1;
  r1.degree = 1;
  r1.eta = 1e-6;
  r1.eps = 0.0001;
  r1.samples = 356311;
  r1.samples_used = 356311;
  r1.error = 0.150963;
  r1.delta_e = 6e-5;
  r1.converged = true;
  PacTraceRow r2 = r1;
  r2.degree = 2;
  r2.eps = 0.001;
  r2.samples_used = 41632;
  r2.error = 0.065265;
  PacTraceRow r3 = r2;
  r3.degree = 3;
  r3.samples_used = 49632;
  r3.error = 0.029328;
  r3.accepted = true;
  pac.trace = {r1, r2, r3};
  pac.model.degree = 3;
  pac.model.eps = 0.001;
  pac.model.eta = 1e-6;
  pac.model.error = 0.029328;
  pac.model.samples = 49632;
  return pac;
}

TEST(Report, Table1HasOneRowPerDegree) {
  const std::string table = format_table1(sample_pac_result(), 0.05);
  // Header + 3 degree rows.
  int lines = 0;
  for (char c : table)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 4);
  EXPECT_NE(table.find("49632"), std::string::npos);
  EXPECT_NE(table.find("0.150963"), std::string::npos);
}

TEST(Report, Table2RowContainsPipelineData) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  SynthesisResult result;
  result.benchmark = "C1";
  result.dnn_structure = "2-20-20-20-20-1";
  result.pac = sample_pac_result();
  result.controller = {Polynomial(2)};
  result.barrier.success = true;
  result.barrier.degree = 4;
  result.barrier.seconds = 2.871;
  result.success = true;

  NnControllerResult baseline;
  baseline.verified = true;
  baseline.barrier_structure = "2-30-1";
  baseline.verify_seconds = 32.5;

  const std::string header = table2_header();
  const std::string row = table2_row(bench, result, &baseline);
  EXPECT_NE(header.find("T_p(s)"), std::string::npos);
  EXPECT_NE(row.find("C1"), std::string::npos);
  EXPECT_NE(row.find("2-20-20-20-20-1"), std::string::npos);
  EXPECT_NE(row.find("2.871"), std::string::npos);
  EXPECT_NE(row.find("2-30-1"), std::string::npos);
}

TEST(Report, FailedBaselineShowsCross) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC8);
  SynthesisResult result;
  result.pac = sample_pac_result();
  result.controller = {Polynomial(9)};
  result.barrier.success = true;
  result.barrier.degree = 2;
  result.success = true;
  NnControllerResult baseline;  // verified = false
  const std::string row = table2_row(bench, result, &baseline);
  EXPECT_NE(row.find('x'), std::string::npos);
}

TEST(Report, MissingBaselineShowsDash) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC3);
  SynthesisResult result;
  result.pac = sample_pac_result();
  result.controller = {Polynomial(3)};
  result.barrier.success = false;
  const std::string row = table2_row(bench, result, nullptr);
  EXPECT_NE(row.find('-'), std::string::npos);
}

}  // namespace
}  // namespace scs
