// Cancellation / deadline semantics of the job layer: JobControl unit
// behavior, cooperative preemption inside the solver iteration loops, and
// the pipeline-level guarantees -- CANCELLED/DEADLINE verdicts in the
// result and ledger, no partial stage artifacts in the store, and bitwise
// neutrality of an armed-but-idle control.
#include <gtest/gtest.h>

#include <filesystem>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/job.hpp"
#include "core/pipeline.hpp"
#include "obs/ledger.hpp"
#include "opt/minimax_fit.hpp"
#include "opt/sdp.hpp"
#include "opt/simplex.hpp"
#include "store/store.hpp"
#include "util/cancellation.hpp"
#include "util/hash.hpp"

namespace scs {
namespace {

namespace fs = std::filesystem;

struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag) : path(fs::temp_directory_path() / tag) {
    std::error_code ec;
    fs::remove_all(path, ec);
    fs::create_directories(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

// ---- JobControl unit behavior.

TEST(JobControl, StartsIdle) {
  JobControl c;
  EXPECT_FALSE(c.stop_requested());
  EXPECT_FALSE(c.cancelled());
  EXPECT_FALSE(c.has_deadline());
  EXPECT_EQ(c.stop_reason(), JobControl::StopReason::kNone);
  EXPECT_STREQ(to_string(c.stop_reason()), "");
}

TEST(JobControl, CancelIsSticky) {
  JobControl c;
  c.cancel();
  c.cancel();
  EXPECT_TRUE(c.stop_requested());
  EXPECT_EQ(c.stop_reason(), JobControl::StopReason::kCancelled);
  EXPECT_STREQ(to_string(c.stop_reason()), "CANCELLED");
}

TEST(JobControl, DeadlineExpiresAndClears) {
  JobControl c;
  c.set_deadline_after(3600.0);
  EXPECT_TRUE(c.has_deadline());
  EXPECT_FALSE(c.stop_requested());
  EXPECT_GT(c.seconds_remaining(), 3000.0);

  c.set_deadline_after(0.0);  // non-positive = already expired
  EXPECT_TRUE(c.stop_requested());
  EXPECT_EQ(c.stop_reason(), JobControl::StopReason::kDeadline);
  EXPECT_STREQ(to_string(c.stop_reason()), "DEADLINE");

  c.clear_deadline();
  EXPECT_FALSE(c.has_deadline());
  EXPECT_FALSE(c.stop_requested());
}

TEST(JobControl, CancelWinsOverDeadline) {
  JobControl c;
  c.set_deadline_after(-1.0);
  c.cancel();
  EXPECT_EQ(c.stop_reason(), JobControl::StopReason::kCancelled);
}

TEST(JobControl, NullSafeHelper) {
  EXPECT_FALSE(stop_requested(nullptr));
  JobControl c;
  EXPECT_FALSE(stop_requested(&c));
  c.cancel();
  EXPECT_TRUE(stop_requested(&c));
}

TEST(JobControl, ConcurrentCancelIsVisible) {
  JobControl c;
  std::thread t([&] { c.cancel(); });
  while (!c.stop_requested()) std::this_thread::yield();
  t.join();
  EXPECT_TRUE(c.cancelled());
}

// ---- Child scopes (the portfolio racer's arm controls).

TEST(JobControlChild, ParentCancelPropagatesToChildren) {
  JobControl parent;
  JobControl a(&parent);
  JobControl b(&parent);
  EXPECT_FALSE(a.stop_requested());
  parent.cancel();
  EXPECT_TRUE(a.cancelled());
  EXPECT_TRUE(b.cancelled());
  EXPECT_EQ(a.stop_reason(), JobControl::StopReason::kCancelled);
}

TEST(JobControlChild, ChildCancelStaysLocal) {
  JobControl parent;
  JobControl loser(&parent);
  JobControl winner(&parent);
  loser.cancel();
  EXPECT_TRUE(loser.cancelled());
  EXPECT_FALSE(winner.cancelled());
  EXPECT_FALSE(parent.cancelled());
}

TEST(JobControlChild, ParentDeadlineSeenThroughChild) {
  JobControl parent;
  JobControl child(&parent);
  EXPECT_FALSE(child.has_deadline());
  parent.set_deadline_after(3600.0);
  EXPECT_TRUE(child.has_deadline());
  EXPECT_FALSE(child.deadline_expired());
  parent.set_deadline_after(0.0);
  EXPECT_TRUE(child.deadline_expired());
  EXPECT_EQ(child.stop_reason(), JobControl::StopReason::kDeadline);
  // The child's own clear cannot disarm the parent's deadline.
  child.clear_deadline();
  EXPECT_TRUE(child.deadline_expired());
}

TEST(JobControlChild, SecondsRemainingIsNearestInChain) {
  JobControl parent;
  JobControl child(&parent);
  EXPECT_EQ(child.seconds_remaining(),
            std::numeric_limits<double>::infinity());
  parent.set_deadline_after(3600.0);
  child.set_deadline_after(7200.0);
  EXPECT_LE(child.seconds_remaining(), 3600.0);
  child.set_deadline_after(1.0);
  EXPECT_LE(child.seconds_remaining(), 1.0);
}

TEST(JobControlChild, GrandchildSeesWholeChain) {
  JobControl root;
  JobControl mid(&root);
  JobControl leaf(&mid);
  EXPECT_FALSE(leaf.stop_requested());
  root.cancel();
  EXPECT_TRUE(leaf.cancelled());
  EXPECT_TRUE(mid.cancelled());
}

// ---- Solver loops honor the control.

TEST(SolverPreemption, SdpReportsCancelled) {
  // min tr(X) s.t. X_00 + X_11 = 2 -- converges in a few iterations, so a
  // pre-cancelled control must win at the first iteration boundary.
  SdpProblem p;
  p.block_dims = {2};
  p.block_obj_weight = {1.0};
  SdpConstraint c;
  c.entries = {{0, 0, 0, 1.0}, {0, 1, 1, 1.0}};
  c.rhs = 2.0;
  p.constraints.push_back(c);

  JobControl control;
  control.cancel();
  SdpOptions options;
  options.control = &control;
  EXPECT_EQ(solve_sdp(p, options).status, SdpStatus::kCancelled);
}

TEST(SolverPreemption, SdpDeadlineMapsToTimeLimit) {
  SdpProblem p;
  p.block_dims = {2};
  p.block_obj_weight = {1.0};
  SdpConstraint c;
  c.entries = {{0, 0, 0, 1.0}, {0, 1, 1, 1.0}};
  c.rhs = 2.0;
  p.constraints.push_back(c);

  JobControl control;
  control.set_deadline_after(0.0);
  SdpOptions options;
  options.control = &control;
  EXPECT_EQ(solve_sdp(p, options).status, SdpStatus::kTimeLimit);
}

TEST(SolverPreemption, SimplexReportsCancelled) {
  LpProblem lp;
  lp.a = Mat(3, 5);
  lp.a.set_row(0, Vec{1.0, 0.0, 1.0, 0.0, 0.0});
  lp.a.set_row(1, Vec{0.0, 2.0, 0.0, 1.0, 0.0});
  lp.a.set_row(2, Vec{3.0, 2.0, 0.0, 0.0, 1.0});
  lp.b = Vec{4.0, 12.0, 18.0};
  lp.c = Vec{-3.0, -5.0, 0.0, 0.0, 0.0};

  JobControl control;
  control.cancel();
  LpOptions options;
  options.control = &control;
  EXPECT_EQ(solve_lp(lp, options).status, LpStatus::kCancelled);

  control.clear_deadline();
  LpOptions clean;
  EXPECT_EQ(solve_lp(lp, clean).status, LpStatus::kOptimal);
}

TEST(SolverPreemption, MinimaxFitReportsPreempted) {
  Mat design(8, 2);
  Vec targets(8);
  for (int i = 0; i < 8; ++i) {
    design(i, 0) = 1.0;
    design(i, 1) = static_cast<double>(i);
    targets[i] = 0.5 * i + 1.0;
  }
  JobControl control;
  control.cancel();
  MinimaxOptions options;
  options.control = &control;
  const MinimaxFitResult fit = minimax_fit(design, targets, options);
  EXPECT_FALSE(fit.ok);
  EXPECT_NE(fit.note.find("preempted"), std::string::npos);
}

// ---- Pipeline-level guarantees.

PipelineConfig fast_config() {
  PipelineConfig config;
  config.seed = 1;
  config.fast_mode = true;
  config.rl_episodes = 3;
  return config;
}

TEST(JobContextPipeline, CancelledJobYieldsCancelledVerdictAndCleanStore) {
  TempDir cache("scs_job_ctx_cancel_cache");
  TempDir ledger_dir("scs_job_ctx_cancel_ledger");
  const std::string ledger = (ledger_dir.path / "ledger.jsonl").string();

  PipelineConfig config = fast_config();
  config.store.mode = StoreConfig::Mode::kOn;
  config.store.cache_dir = cache.str();
  config.obs.ledger_path = ledger;

  JobControl control;
  control.cancel();  // cancelled before the first stage gate
  JobContext ctx;
  ctx.control = &control;

  const SynthesisJob job(make_benchmark(BenchmarkId::kC1), config);
  const SynthesisResult result = job.run(ctx);

  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.verdict, "CANCELLED");
  EXPECT_EQ(result.failure_stage, "rl");
  EXPECT_NE(result.failure_message.find("preempted"), std::string::npos);

  // No partial artifacts: a preempted run must not poison warm restarts.
  ArtifactStore store(cache.str());
  EXPECT_TRUE(store.list().empty());

  // Exactly one ledger record, carrying the CANCELLED verdict.
  const LedgerReadResult read = ledger_read(ledger);
  ASSERT_EQ(read.records.size(), 1u);
  EXPECT_EQ(read.records[0].verdict, "CANCELLED");
  EXPECT_EQ(read.records[0].source, "synthesize");
  EXPECT_EQ(read.records[0].kind, "synthesis");
}

TEST(JobContextPipeline, ExpiredDeadlineYieldsDeadlineVerdict) {
  PipelineConfig config = fast_config();
  JobControl control;
  control.set_deadline_after(0.0);
  JobContext ctx;
  ctx.control = &control;
  const SynthesisJob job(make_benchmark(BenchmarkId::kC1), config);
  const SynthesisResult result = job.run(ctx);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.verdict, "DEADLINE");
  EXPECT_EQ(result.failure_stage, "rl");
}

TEST(JobContextPipeline, MidRunDeadlinePreemptsBeforeCompletion) {
  // A C1 fast run takes seconds; a 0.5 s deadline must stop it early at a
  // stage or solver boundary with the DEADLINE verdict.
  PipelineConfig config = fast_config();
  JobControl control;
  control.set_deadline_after(0.5);
  JobContext ctx;
  ctx.control = &control;
  const SynthesisJob job(make_benchmark(BenchmarkId::kC1), config);
  const SynthesisResult result = job.run(ctx);
  EXPECT_FALSE(result.success);
  EXPECT_EQ(result.verdict, "DEADLINE");
}

TEST(JobContextPipeline, IdleControlIsBitwiseNeutral) {
  // Design constraint: a JobControl is observation-only. The same job with
  // no control and with an armed-but-never-firing deadline must produce
  // bitwise-identical certificates (precision-17 round-trip strings).
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  const PipelineConfig config = fast_config();
  const SynthesisJob job(bench, config);

  const SynthesisResult plain = job.run();

  JobControl control;
  control.set_deadline_after(1e6);
  JobContext ctx;
  ctx.control = &control;
  const SynthesisResult guarded = job.run(ctx);

  EXPECT_EQ(plain.verdict, guarded.verdict);
  EXPECT_EQ(plain.success, guarded.success);
  ASSERT_EQ(plain.controller.size(), guarded.controller.size());
  for (std::size_t i = 0; i < plain.controller.size(); ++i)
    EXPECT_EQ(plain.controller[i].to_string(17),
              guarded.controller[i].to_string(17));
  EXPECT_EQ(plain.barrier.barrier.to_string(17),
            guarded.barrier.barrier.to_string(17));
  EXPECT_EQ(plain.total_seconds > 0.0, guarded.total_seconds > 0.0);
}

TEST(JobContextPipeline, ConfigKeyIgnoresControlAndMatchesLedgerIdentity) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  const PipelineConfig config = fast_config();
  const SynthesisJob job(bench, config);
  const std::uint64_t key = job.config_key();
  EXPECT_NE(key, 0u);
  // Same benchmark+config -> same key; different seed -> different key.
  EXPECT_EQ(SynthesisJob(bench, config).config_key(), key);
  PipelineConfig other = config;
  other.seed = 2;
  EXPECT_NE(SynthesisJob(bench, other).config_key(), key);

  TempDir ledger_dir("scs_job_ctx_key_ledger");
  const std::string ledger = (ledger_dir.path / "ledger.jsonl").string();
  PipelineConfig with_ledger = config;
  with_ledger.obs.ledger_path = ledger;
  JobControl control;
  control.cancel();
  JobContext ctx;
  ctx.control = &control;
  ctx.source = "job_context_test";
  SynthesisJob(bench, with_ledger).run(ctx);
  const LedgerReadResult read = ledger_read(ledger);
  ASSERT_EQ(read.records.size(), 1u);
  // The ledger's config_key is the job's key rendered hex -- one identity
  // across the serving dedupe map, the stage cache, and the run ledger.
  EXPECT_EQ(read.records[0].config_key, hash_to_hex(key));
  EXPECT_EQ(read.records[0].source, "job_context_test");
}

}  // namespace
}  // namespace scs
