// Tests for MLP text serialization.
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "nn/serialize.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

TEST(Serialize, RoundTripPreservesOutputs) {
  Rng rng(1);
  Mlp net(3, {10, 10}, 2, Activation::kRelu, Activation::kTanh, rng);
  std::stringstream ss;
  save_mlp(net, ss);
  const Mlp loaded = load_mlp(ss);
  EXPECT_EQ(loaded.structure_string(), net.structure_string());
  for (int i = 0; i < 20; ++i) {
    const Vec x(rng.uniform_vector(3, -2.0, 2.0));
    EXPECT_LT(max_abs_diff(net.forward(x), loaded.forward(x)), 1e-12);
  }
}

TEST(Serialize, RoundTripPreservesParametersExactly) {
  Rng rng(2);
  Mlp net(2, {5}, 1, Activation::kTanh, Activation::kIdentity, rng);
  std::stringstream ss;
  save_mlp(net, ss);
  const Mlp loaded = load_mlp(ss);
  EXPECT_LT(max_abs_diff(net.parameters(), loaded.parameters()), 1e-15);
}

TEST(Serialize, FileRoundTrip) {
  Rng rng(3);
  Mlp net(2, {6, 6}, 1, Activation::kRelu, Activation::kTanh, rng);
  const std::string path = "/tmp/scs_serialize_test.mlp";
  save_mlp_file(net, path);
  const Mlp loaded = load_mlp_file(path);
  const Vec x{0.3, -0.9};
  EXPECT_LT(max_abs_diff(net.forward(x), loaded.forward(x)), 1e-12);
  std::remove(path.c_str());
}

TEST(Serialize, RejectsBadHeader) {
  std::stringstream ss("not-a-net 1\n");
  EXPECT_THROW(load_mlp(ss), PreconditionError);
}

TEST(Serialize, RejectsTruncatedData) {
  Rng rng(4);
  Mlp net(2, {4}, 1, Activation::kRelu, Activation::kTanh, rng);
  std::stringstream ss;
  save_mlp(net, ss);
  std::string text = ss.str();
  text.resize(text.size() / 2);
  std::stringstream half(text);
  EXPECT_THROW(load_mlp(half), PreconditionError);
}

TEST(Serialize, RejectsMissingFile) {
  EXPECT_THROW(load_mlp_file("/nonexistent/path/net.mlp"),
               PreconditionError);
}

}  // namespace
}  // namespace scs
