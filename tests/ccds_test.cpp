// Tests for the controlled-CCDS model type.
#include <gtest/gtest.h>

#include "systems/ccds.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

Ccds make_double_integrator() {
  Ccds sys;
  sys.name = "double-integrator";
  sys.num_states = 2;
  sys.num_controls = 1;
  const auto x2 = Polynomial::variable(3, 1);
  const auto u = Polynomial::variable(3, 2);
  sys.open_field = {x2, u};
  const Box box = Box::centered(2, 2.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0, 0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 1.5, box);
  sys.control_bound = 2.0;
  return sys;
}

TEST(Ccds, ValidatePasses) {
  const Ccds sys = make_double_integrator();
  EXPECT_NO_THROW(sys.validate());
  EXPECT_EQ(sys.field_degree(), 1);
}

TEST(Ccds, EvalOpenField) {
  const Ccds sys = make_double_integrator();
  const Vec dx = sys.eval_open(Vec{1.0, 2.0}, Vec{-0.5});
  EXPECT_DOUBLE_EQ(dx[0], 2.0);
  EXPECT_DOUBLE_EQ(dx[1], -0.5);
}

TEST(Ccds, ClosedLoopPolynomialSubstitution) {
  const Ccds sys = make_double_integrator();
  // u = -x1 - x2.
  const Polynomial p =
      -Polynomial::variable(2, 0) - Polynomial::variable(2, 1);
  const auto closed = sys.closed_loop({p});
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_NEAR(closed[1].evaluate(Vec{1.0, 2.0}), -3.0, 1e-12);
}

TEST(Ccds, ClosedLoopFieldClampsControlLaw) {
  const Ccds sys = make_double_integrator();
  // A law that asks for u = 100 gets clamped to the actuator bound 2.
  const ControlLaw law = [](const Vec&) { return Vec{100.0}; };
  const VectorField f = sys.closed_loop_field(law);
  const Vec dx = f(Vec{0.0, 0.0});
  EXPECT_DOUBLE_EQ(dx[1], 2.0);
}

TEST(Ccds, PolynomialFieldIsUnclamped) {
  const Ccds sys = make_double_integrator();
  const Polynomial p = Polynomial::constant(2, 5.0);  // beyond the bound
  const VectorField f = sys.closed_loop_field(std::vector<Polynomial>{p});
  EXPECT_DOUBLE_EQ(f(Vec{0.0, 0.0})[1], 5.0);
}

TEST(Ccds, ValidateCatchesBadShapes) {
  Ccds sys = make_double_integrator();
  sys.open_field.pop_back();
  EXPECT_THROW(sys.validate(), PreconditionError);

  Ccds sys2 = make_double_integrator();
  sys2.control_bound = 0.0;
  EXPECT_THROW(sys2.validate(), PreconditionError);

  Ccds sys3 = make_double_integrator();
  sys3.num_controls = 2;  // field polynomials now have wrong variable count
  EXPECT_THROW(sys3.validate(), PreconditionError);
}

}  // namespace
}  // namespace scs
