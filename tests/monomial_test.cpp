// Tests for monomials, the graded-lex order, and basis enumeration.
#include <gtest/gtest.h>

#include "poly/basis.hpp"
#include "poly/monomial.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

TEST(Monomial, DegreeAndEvaluate) {
  const Monomial m({2, 0, 1});  // x1^2 x3
  EXPECT_EQ(m.degree(), 3);
  EXPECT_DOUBLE_EQ(m.evaluate(Vec{2.0, 5.0, 3.0}), 12.0);
  EXPECT_EQ(m.to_string(), "x1^2*x3");
}

TEST(Monomial, ConstantMonomial) {
  const Monomial one(3);
  EXPECT_TRUE(one.is_constant());
  EXPECT_DOUBLE_EQ(one.evaluate(Vec{7.0, 8.0, 9.0}), 1.0);
  EXPECT_EQ(one.to_string(), "1");
}

TEST(Monomial, Product) {
  const Monomial a({1, 2});
  const Monomial b({0, 3});
  const Monomial c = a * b;
  EXPECT_EQ(c.exponents(), (std::vector<int>{1, 5}));
}

TEST(Monomial, Derivative) {
  const Monomial m({3, 1});
  const auto [k, dm] = m.derivative(0);
  EXPECT_EQ(k, 3);
  EXPECT_EQ(dm.exponents(), (std::vector<int>{2, 1}));
  const auto [k2, dm2] = Monomial({0, 1}).derivative(0);
  EXPECT_EQ(k2, 0);
  (void)dm2;
}

TEST(Monomial, NegativeExponentThrows) {
  EXPECT_THROW(Monomial({1, -1}), PreconditionError);
}

TEST(GrlexOrder, MatchesPaperTemplateOrder) {
  // [x]_2 over two vars must read 1, x1, x2, x1^2, x1 x2, x2^2.
  const auto basis = monomials_up_to(2, 2);
  ASSERT_EQ(basis.size(), 6u);
  EXPECT_EQ(basis[0].to_string(), "1");
  EXPECT_EQ(basis[1].to_string(), "x1");
  EXPECT_EQ(basis[2].to_string(), "x2");
  EXPECT_EQ(basis[3].to_string(), "x1^2");
  EXPECT_EQ(basis[4].to_string(), "x1*x2");
  EXPECT_EQ(basis[5].to_string(), "x2^2");
}

TEST(GrlexOrder, IsStrictWeakOrder) {
  const GrlexLess less;
  const auto basis = monomials_up_to(3, 3);
  for (std::size_t i = 0; i < basis.size(); ++i) {
    EXPECT_FALSE(less(basis[i], basis[i]));
    for (std::size_t j = i + 1; j < basis.size(); ++j) {
      EXPECT_TRUE(less(basis[i], basis[j]));
      EXPECT_FALSE(less(basis[j], basis[i]));
    }
  }
}

TEST(Basis, CountMatchesBinomial) {
  // v = C(n+d, d).
  EXPECT_EQ(monomial_count(2, 3), 10u);
  EXPECT_EQ(monomial_count(9, 2), 55u);
  EXPECT_EQ(monomial_count(12, 1), 13u);
  EXPECT_EQ(monomial_count(4, 0), 1u);
}

class BasisSizes : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BasisSizes, EnumerationMatchesCount) {
  const auto [n, d] = GetParam();
  const auto basis = monomials_up_to(n, d);
  EXPECT_EQ(basis.size(), monomial_count(n, d));
  // All degrees bounded, no duplicates (strict grlex order implies both).
  const GrlexLess less;
  for (std::size_t i = 0; i + 1 < basis.size(); ++i) {
    EXPECT_LE(basis[i].degree(), d);
    EXPECT_TRUE(less(basis[i], basis[i + 1]));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, BasisSizes,
    ::testing::Combine(::testing::Values(1, 2, 3, 5, 9),
                       ::testing::Values(0, 1, 2, 3, 4)));

TEST(Basis, EvaluateBasisMatchesPerMonomial) {
  const auto basis = monomials_up_to(3, 4);
  const Vec x{0.5, -1.2, 2.0};
  const Vec vals = evaluate_basis(basis, x);
  ASSERT_EQ(vals.size(), basis.size());
  for (std::size_t i = 0; i < basis.size(); ++i)
    EXPECT_NEAR(vals[i], basis[i].evaluate(x), 1e-12);
}

TEST(PowInt, MatchesStdPow) {
  EXPECT_DOUBLE_EQ(pow_int(2.0, 10), 1024.0);
  EXPECT_DOUBLE_EQ(pow_int(-3.0, 3), -27.0);
  EXPECT_DOUBLE_EQ(pow_int(5.0, 0), 1.0);
}

}  // namespace
}  // namespace scs
