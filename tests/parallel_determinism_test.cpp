// Hard determinism requirement: the parallelized hot paths (scenario
// generation / PAC fit, Monte-Carlo safety, SDP Schur assembly, dense
// matmul) must produce bitwise-identical results at 1 and 4 threads.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "barrier/mc_safety.hpp"
#include "barrier/validation.hpp"
#include "math/mat.hpp"
#include "opt/sdp.hpp"
#include "pac/pac_fit.hpp"
#include "systems/benchmarks.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scs {
namespace {

class ParallelDeterminismTest : public ::testing::Test {
 protected:
  void TearDown() override { set_parallel_threads(0); }

  /// Run `work` at 1 and at 4 threads; both fingerprints must match bitwise.
  template <typename Work>
  void expect_bitwise_equal(const Work& work) {
    set_parallel_threads(1);
    const std::vector<double> serial = work();
    set_parallel_threads(4);
    const std::vector<double> parallel = work();
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); ++i) {
      // EXPECT_EQ on doubles is exact (bitwise up to NaN), which is the
      // whole point: no tolerance.
      EXPECT_EQ(serial[i], parallel[i]) << "index " << i;
    }
  }
};

TEST_F(ParallelDeterminismTest, PacFit) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  // Shrunk schedule: the full Table-1 sweep would run minutes; two degrees
  // and two error rates exercise the same parallel sampling path.
  PacSettings settings = bench.pac;
  settings.max_degree = 2;
  settings.eps_list = {0.1, 0.01};
  expect_bitwise_equal([&bench, &settings] {
    const ScalarFn fn = [](const Vec& x) {
      return std::tanh(1.5 * x[0] - 0.4 * x[1]);
    };
    PacFitOptions opts;
    opts.max_samples = 4000;
    Rng rng(21);
    const PacResult pac =
        pac_approximate(fn, bench.ccds.domain, settings, rng, opts);
    std::vector<double> out{pac.model.error, pac.model.eps,
                            static_cast<double>(pac.model.degree)};
    Rng grid(5);
    for (int i = 0; i < 16; ++i) {
      const Vec x(grid.uniform_vector(bench.ccds.num_states, -1.0, 1.0));
      out.push_back(pac.model.poly.evaluate(x));
    }
    for (const auto& row : pac.trace) {
      out.push_back(row.error);
      out.push_back(static_cast<double>(row.samples_used));
    }
    return out;
  });
}

TEST_F(ParallelDeterminismTest, EmpiricalViolationRate) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PacSettings settings = bench.pac;
  settings.max_degree = 1;
  settings.eps_list = {0.1};
  expect_bitwise_equal([&bench, &settings] {
    const ScalarFn fn = [](const Vec& x) { return std::tanh(x[0] - x[1]); };
    PacFitOptions opts;
    opts.max_samples = 2000;
    Rng rng(22);
    const PacResult pac =
        pac_approximate(fn, bench.ccds.domain, settings, rng, opts);
    Rng vrng(23);
    PacModel model = pac.model;
    return std::vector<double>{empirical_violation_rate(
        model, fn, bench.ccds.domain, 3000, vrng)};
  });
}

TEST_F(ParallelDeterminismTest, EstimateSafety) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  expect_bitwise_equal([&bench] {
    const ControlLaw law = [&bench](const Vec& x) {
      return Vec{-bench.ccds.control_bound * std::tanh(x[0] + 0.5 * x[1])};
    };
    McSafetyConfig cfg;
    cfg.rollouts = 300;
    cfg.dt = bench.rl.dt;
    cfg.max_steps = 200;
    Rng rng(24);
    const McSafetyResult mc = estimate_safety(bench.ccds, law, cfg, rng);
    return std::vector<double>{static_cast<double>(mc.violations),
                               mc.violation_rate, mc.violation_upper_bound};
  });
}

TEST_F(ParallelDeterminismTest, SdpSolve) {
  // Random sparse constraints on one Gram-sized block (Schur assembly is
  // the parallel path under test).
  SdpProblem p;
  const std::size_t n = 24;
  Rng build(25);
  p.block_dims = {n};
  p.block_obj_weight = {1.0};
  for (std::size_t i = 0; i < 2 * n; ++i) {
    SdpConstraint c;
    const std::size_t r = build.index(n);
    const std::size_t cc = r + build.index(n - r);
    const double v = build.uniform(-1.0, 1.0);
    c.entries.push_back({0, r, cc, v});
    c.rhs = (r == cc) ? v : 0.0;
    p.constraints.push_back(c);
  }
  expect_bitwise_equal([&p] {
    const SdpSolution res = solve_sdp(p);
    std::vector<double> out{res.primal_objective, res.duality_gap,
                            res.primal_infeasibility};
    for (const Mat& x : res.x)
      for (std::size_t i = 0; i < x.rows(); ++i)
        for (std::size_t j = 0; j < x.cols(); ++j) out.push_back(x(i, j));
    return out;
  });
}

TEST_F(ParallelDeterminismTest, MatmulKernels) {
  const std::size_t n = 97;  // odd size exercises partial tiles
  Rng rng(26);
  Mat a(n, n), b(n, n);
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      a(i, j) = (rng.uniform01() < 0.2) ? 0.0 : rng.normal();
      b(i, j) = rng.normal();
    }
  expect_bitwise_equal([&a, &b] {
    std::vector<double> out;
    for (const Mat& m : {matmul(a, b), matmul_at_b(a, b), matmul_a_bt(a, b)})
      for (std::size_t i = 0; i < m.rows(); ++i)
        for (std::size_t j = 0; j < m.cols(); ++j) out.push_back(m(i, j));
    return out;
  });
}

TEST_F(ParallelDeterminismTest, ValidateBarrier) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  // A hand-made quadratic barrier over the pendulum state; the verdict is
  // irrelevant -- only thread-count invariance of the report matters.
  Polynomial barrier(bench.ccds.num_states);
  {
    Polynomial x0 = Polynomial::variable(bench.ccds.num_states, 0);
    Polynomial x1 = Polynomial::variable(bench.ccds.num_states, 1);
    barrier = Polynomial::constant(bench.ccds.num_states, 1.0) - x0 * x0 -
              x1 * x1;
  }
  std::vector<Polynomial> controller;
  {
    Polynomial x0 = Polynomial::variable(bench.ccds.num_states, 0);
    Polynomial x1 = Polynomial::variable(bench.ccds.num_states, 1);
    controller.push_back(-1.0 * x0 - 0.5 * x1);
  }
  expect_bitwise_equal([&] {
    ValidationConfig cfg;
    cfg.samples_per_set = 600;
    cfg.simulation_rollouts = 10;
    cfg.simulation_steps = 200;
    Rng rng(27);
    const ValidationReport report =
        validate_barrier(bench.ccds, controller, barrier, cfg, rng);
    // NaN (no boundary points found) would defeat EXPECT_EQ; map it to a
    // sentinel so "NaN in both runs" still counts as identical.
    const double lie = std::isnan(report.min_lie_on_boundary)
                           ? -1e300
                           : report.min_lie_on_boundary;
    return std::vector<double>{
        report.min_b_on_theta, report.max_b_on_unsafe, lie,
        static_cast<double>(report.boundary_samples),
        static_cast<double>(report.safe_rollouts),
        report.passed ? 1.0 : 0.0};
  });
}

}  // namespace
}  // namespace scs
