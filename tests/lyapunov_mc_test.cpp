// Tests for Lyapunov synthesis and Monte-Carlo safety estimation.
#include <gtest/gtest.h>

#include "barrier/lyapunov.hpp"
#include "barrier/mc_safety.hpp"
#include "poly/lie.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

TEST(Lyapunov, FindsQuadraticForStableLinearSystem) {
  // xdot = (-x1 + x2, -x1 - x2): spiral sink.
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const std::vector<Polynomial> field = {-x1 + x2, -x1 - x2};
  const LyapunovResult r = synthesize_lyapunov(field);
  ASSERT_TRUE(r.success) << r.failure_reason;
  EXPECT_EQ(r.degree, 2);
  // V must be positive away from the origin and decreasing along the flow.
  Rng rng(1);
  const Polynomial lie = lie_derivative(r.function, field);
  for (int i = 0; i < 200; ++i) {
    Vec x(rng.uniform_vector(2, -2.0, 2.0));
    if (x.norm() < 0.1) continue;
    EXPECT_GT(r.function.evaluate(x), 0.0);
    EXPECT_LT(lie.evaluate(x), 0.0);
  }
  EXPECT_NEAR(r.function.evaluate(Vec{0.0, 0.0}), 0.0, 1e-9);
}

TEST(Lyapunov, CubicDampingNeedsNoHighDegree) {
  // xdot = -x - x^3 (1-D).
  const auto x = Polynomial::variable(1, 0);
  const LyapunovResult r = synthesize_lyapunov({-x - x.pow(3)});
  EXPECT_TRUE(r.success) << r.failure_reason;
}

TEST(Lyapunov, RejectsUnstableSystem) {
  // xdot = +x has no Lyapunov function.
  const auto x = Polynomial::variable(1, 0);
  const LyapunovResult r = synthesize_lyapunov({x});
  EXPECT_FALSE(r.success);
}

TEST(Lyapunov, RejectsNonEquilibriumOrigin) {
  const auto x = Polynomial::variable(1, 0);
  const LyapunovResult r =
      synthesize_lyapunov({-x + Polynomial::constant(1, 1.0)});
  EXPECT_FALSE(r.success);
  EXPECT_NE(r.failure_reason.find("equilibrium"), std::string::npos);
}

Ccds mc_system() {
  Ccds sys;
  sys.name = "mc-toy";
  sys.num_states = 1;
  sys.num_controls = 1;
  sys.open_field = {Polynomial::variable(2, 0) * (-1.0) +
                    Polynomial::variable(2, 1)};
  const Box box = Box::centered(1, 3.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0}, 2.0, box);
  sys.control_bound = 1.0;
  return sys;
}

TEST(McSafety, StableLoopHasZeroViolations) {
  const Ccds sys = mc_system();
  Rng rng(2);
  McSafetyConfig cfg;
  cfg.rollouts = 200;
  cfg.max_steps = 500;
  const McSafetyResult r =
      estimate_safety(sys, {Polynomial(1)}, cfg, rng);
  EXPECT_EQ(r.violations, 0u);
  EXPECT_DOUBLE_EQ(r.violation_rate, 0.0);
  // Hoeffding bound with N = 200, eta = 1e-6: sqrt(ln(1e6)/400) ~ 0.186.
  EXPECT_NEAR(r.violation_upper_bound, 0.186, 0.01);
}

TEST(McSafety, UnstableLoopIsFlagged) {
  const Ccds sys = mc_system();
  // u = 2x overwhelms the -x drift: trajectories blow out of the shell.
  const Polynomial destabilizer = Polynomial::variable(1, 0) * 2.0;
  Rng rng(3);
  McSafetyConfig cfg;
  cfg.rollouts = 100;
  cfg.max_steps = 2000;
  const McSafetyResult r = estimate_safety(sys, {destabilizer}, cfg, rng);
  EXPECT_GT(r.violation_rate, 0.5);
  EXPECT_GE(r.violation_upper_bound, r.violation_rate);  // clamped at 1
}

TEST(McSafety, BoundShrinksWithSampleSize) {
  const Ccds sys = mc_system();
  Rng rng(4);
  McSafetyConfig small;
  small.rollouts = 50;
  small.max_steps = 100;
  McSafetyConfig large = small;
  large.rollouts = 800;
  const auto r_small = estimate_safety(sys, {Polynomial(1)}, small, rng);
  const auto r_large = estimate_safety(sys, {Polynomial(1)}, large, rng);
  EXPECT_LT(r_large.violation_upper_bound - r_large.violation_rate,
            r_small.violation_upper_bound - r_small.violation_rate);
}

TEST(McSafety, RejectsBadConfig) {
  const Ccds sys = mc_system();
  Rng rng(5);
  McSafetyConfig cfg;
  cfg.rollouts = 0;
  EXPECT_THROW(estimate_safety(sys, {Polynomial(1)}, cfg, rng),
               PreconditionError);
}

}  // namespace
}  // namespace scs
