// In-process miniature of the fuzz_cli campaign: generate a tiny family,
// push every system through synthesize(), cross-check each verdict with the
// independent checker, and require zero soundness violations plus per-system
// ledger records. Seed 7 / episodes 8 is chosen so at least one system
// reaches VERIFIED even in fast mode -- otherwise the soundness property
// would be tested vacuously.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "barrier/independent_check.hpp"
#include "core/pipeline.hpp"
#include "obs/ledger.hpp"
#include "systems/family_gen.hpp"

namespace scs {
namespace {

struct TempFile {
  std::string path;
  explicit TempFile(const std::string& name) {
    const char* tmp = std::getenv("TMPDIR");
    path = std::string(tmp != nullptr ? tmp : "/tmp") + "/" + name;
    std::remove(path.c_str());
  }
  ~TempFile() { std::remove(path.c_str()); }
};

TEST(FuzzCampaign, MiniCampaignIsSoundAndLedgered) {
  TempFile ledger("scs_fuzz_campaign_test.jsonl");

  FamilyConfig family;
  family.seed = 7;
  family.rl_episodes = 8;
  const std::vector<GeneratedSystem> systems = generate_family(family, 3);
  ASSERT_EQ(systems.size(), 3u);

  PipelineConfig config;
  config.seed = family.seed;
  config.fast_mode = true;
  config.store.mode = StoreConfig::Mode::kOff;
  config.obs.ledger_path = ledger.path;

  IndependentCheckConfig check_cfg;
  check_cfg.mc_samples = 1500;
  check_cfg.grid_budget = 1024;

  int verified = 0;
  int checked = 0;
  int violations = 0;
  for (const GeneratedSystem& gs : systems) {
    const SynthesisResult r = synthesize(gs.benchmark, config);
    if (r.verdict == "VERIFIED") ++verified;
    if (!r.barrier.success) continue;
    ++checked;
    const IndependentCheckReport chk = independent_check(
        gs.benchmark.ccds, r.controller, r.barrier, config.barrier.rho,
        check_cfg);
    if (r.verdict == "VERIFIED" && !chk.accepted) {
      ++violations;
      ADD_FAILURE() << "soundness violation on " << gs.benchmark.name << ": "
                    << chk.detail;
    }
  }

  // The campaign must actually exercise the property: at least one VERIFIED
  // certificate re-checked, and none rejected.
  EXPECT_GE(verified, 1);
  EXPECT_GE(checked, 1);
  EXPECT_EQ(violations, 0);

  // Every system left a per-run synthesis record under its family name.
  const LedgerReadResult read = ledger_read(ledger.path);
  EXPECT_EQ(read.skipped, 0);
  std::vector<std::string> names;
  for (const LedgerRecord& rec : read.records) {
    if (rec.kind == "synthesis") names.push_back(rec.benchmark);
  }
  ASSERT_EQ(names.size(), systems.size());
  for (const GeneratedSystem& gs : systems) {
    EXPECT_NE(std::find(names.begin(), names.end(), gs.benchmark.name),
              names.end())
        << "missing ledger record for " << gs.benchmark.name;
    EXPECT_EQ(gs.benchmark.name.rfind("F7-", 0), 0u);
  }
}

}  // namespace
}  // namespace scs
