// Tests for the DDPG agent: mechanics (shapes, targets, buffers) and a
// small end-to-end learning check on a 1-D task.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/ddpg.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

Ccds integrator_system() {
  Ccds sys;
  sys.name = "ddpg-toy";
  sys.num_states = 1;
  sys.num_controls = 1;
  sys.open_field = {Polynomial::variable(2, 1)};  // xdot = u
  const Box box = Box::centered(1, 3.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0}, 1.0);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0}, 2.0, box);
  sys.control_bound = 1.0;
  return sys;
}

DdpgConfig small_config() {
  DdpgConfig cfg;
  cfg.actor_hidden = {16, 16};
  cfg.critic_hidden = {16, 16};
  cfg.warmup_steps = 100;
  cfg.batch_size = 32;
  return cfg;
}

TEST(Ddpg, ActionInUnitRange) {
  Rng rng(1);
  DdpgAgent agent(3, 2, small_config(), rng);
  for (int i = 0; i < 10; ++i) {
    const Vec a = agent.act(Vec(rng.uniform_vector(3, -2.0, 2.0)));
    ASSERT_EQ(a.size(), 2u);
    EXPECT_LE(std::fabs(a[0]), 1.0);
    EXPECT_LE(std::fabs(a[1]), 1.0);
  }
}

TEST(Ddpg, ControlLawScalesByBound) {
  Rng rng(2);
  DdpgAgent agent(1, 1, small_config(), rng);
  const ControlLaw law = agent.control_law(10.0);
  const Vec x{0.5};
  EXPECT_NEAR(law(x)[0], 10.0 * agent.act(x)[0], 1e-12);
}

TEST(Ddpg, TrainingRunsAndRecordsEpisodes) {
  Rng rng(3);
  const Ccds sys = integrator_system();
  EnvConfig env_cfg;
  env_cfg.max_steps = 50;
  ControlEnv env(sys, env_cfg);
  DdpgAgent agent(1, 1, small_config(), rng);
  const TrainResult result = agent.train(env, 10, rng);
  EXPECT_EQ(result.episodes.size(), 10u);
  for (const auto& ep : result.episodes) {
    EXPECT_GT(ep.steps, 0u);
    EXPECT_LE(ep.steps, 50u);
  }
}

TEST(Ddpg, TrainingChangesParameters) {
  Rng rng(4);
  const Ccds sys = integrator_system();
  EnvConfig env_cfg;
  env_cfg.max_steps = 40;
  ControlEnv env(sys, env_cfg);
  DdpgAgent agent(1, 1, small_config(), rng);
  const Vec before = agent.actor().parameters();
  agent.train(env, 5, rng);
  const Vec after = agent.actor().parameters();
  EXPECT_GT(max_abs_diff(before, after), 1e-6);
}

TEST(Ddpg, LearnsToStaySafeOnIntegrator) {
  // The 1-D integrator with shell unsafe set: staying near 0 maximizes
  // reward. After training, evaluation rollouts should be mostly safe.
  Rng rng(5);
  const Ccds sys = integrator_system();
  EnvConfig env_cfg;
  env_cfg.dt = 0.05;
  env_cfg.max_steps = 100;
  ControlEnv env(sys, env_cfg);
  DdpgConfig cfg = small_config();
  cfg.noise_sigma = 0.3;
  DdpgAgent agent(1, 1, cfg, rng);
  agent.train(env, 60, rng);
  const EvalResult eval = agent.evaluate(env, 20, rng);
  EXPECT_GE(eval.safety_rate, 0.9) << "mean return " << eval.mean_return;
}

TEST(Ddpg, EvaluateIsDeterministicGivenSeed) {
  Rng rng(6);
  const Ccds sys = integrator_system();
  ControlEnv env(sys, {});
  DdpgAgent agent(1, 1, small_config(), rng);
  Rng eval_rng1(42), eval_rng2(42);
  const EvalResult r1 = agent.evaluate(env, 5, eval_rng1);
  const EvalResult r2 = agent.evaluate(env, 5, eval_rng2);
  EXPECT_DOUBLE_EQ(r1.mean_return, r2.mean_return);
  EXPECT_DOUBLE_EQ(r1.safety_rate, r2.safety_rate);
}

TEST(Ddpg, RejectsBadConfig) {
  Rng rng(7);
  DdpgConfig cfg = small_config();
  cfg.gamma = 1.5;
  EXPECT_THROW(DdpgAgent(1, 1, cfg, rng), PreconditionError);
  EXPECT_THROW(DdpgAgent(0, 1, small_config(), rng), PreconditionError);
}

}  // namespace
}  // namespace scs
