// Tests for the content-addressed artifact store: serialization round
// trips, blob framing/corruption, stage-cache keys, and pipeline resume.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/pipeline.hpp"
#include "store/serialize.hpp"
#include "store/stage_cache.hpp"
#include "store/store.hpp"
#include "util/fault_injector.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace scs {
namespace {

namespace fs = std::filesystem;

/// RAII temp directory for store tests.
struct TempDir {
  fs::path path;
  explicit TempDir(const char* tag)
      : path(fs::temp_directory_path() / tag) {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string str() const { return path.string(); }
};

bool bits_equal(const Vec& a, const Vec& b) {
  return a.size() == b.size() &&
         (a.size() == 0 ||
          std::memcmp(a.begin(), b.begin(), a.size() * sizeof(double)) == 0);
}

Polynomial random_polynomial(Rng& rng, std::size_t num_vars, int max_deg) {
  Polynomial p(num_vars);
  const int terms = 1 + static_cast<int>(rng.index(12));
  for (int t = 0; t < terms; ++t) {
    std::vector<int> exps(num_vars);
    for (auto& e : exps) e = static_cast<int>(rng.index(max_deg + 1));
    p += Polynomial::term(rng.normal(), Monomial(exps));
  }
  return p;
}

// ---- Round-trip property tests: serialize -> bytes -> load is the
// identity (bit-exact) for randomly generated instances of every payload
// type, and the byte stream is deterministic (same input -> same hash).

TEST(StoreSerialize, MlpRoundTripIsBitExactProperty) {
  Rng rng(101);
  for (int trial = 0; trial < 20; ++trial) {
    const std::size_t in = 1 + rng.index(5);
    const std::size_t out = 1 + rng.index(3);
    std::vector<std::size_t> hidden;
    const std::size_t layers = rng.index(3);
    for (std::size_t l = 0; l < layers; ++l) hidden.push_back(1 + rng.index(8));
    const Mlp net(in, hidden, out, Activation::kRelu, Activation::kTanh, rng);

    BinaryWriter w;
    write_mlp(w, net);
    const std::vector<unsigned char> bytes = w.bytes();
    BinaryReader r(bytes);
    const Mlp back = read_mlp(r);
    EXPECT_TRUE(r.at_end());

    ASSERT_EQ(back.layer_count(), net.layer_count());
    EXPECT_TRUE(bits_equal(back.parameters(), net.parameters()));
    for (std::size_t l = 0; l < net.layer_count(); ++l)
      EXPECT_EQ(back.activation(l), net.activation(l));
    // Bit-identical forward pass on random probes.
    for (int probe = 0; probe < 4; ++probe) {
      const Vec x(rng.uniform_vector(in, -2.0, 2.0));
      EXPECT_TRUE(bits_equal(net.forward(x), back.forward(x)));
    }
    // Determinism: a second serialization hashes identically.
    BinaryWriter w2;
    write_mlp(w2, net);
    Fnv1a h1, h2;
    h1.update(bytes.data(), bytes.size());
    h2.update(w2.bytes().data(), w2.bytes().size());
    EXPECT_EQ(h1.digest(), h2.digest());
  }
}

TEST(StoreSerialize, PolynomialAndPacModelRoundTripProperty) {
  Rng rng(202);
  for (int trial = 0; trial < 30; ++trial) {
    const std::size_t n = 1 + rng.index(4);
    const Polynomial p = random_polynomial(rng, n, 3);
    BinaryWriter w;
    write_polynomial(w, p);
    BinaryReader r(w.bytes());
    const Polynomial q = read_polynomial(r);
    EXPECT_TRUE(r.at_end());
    EXPECT_EQ(p.to_string(17), q.to_string(17));

    PacModel m;
    m.poly = p;
    m.error = rng.uniform(0.0, 1.0);
    m.eps = rng.uniform(0.0, 0.1);
    m.eta = 1e-6;
    m.samples = rng.index(100000);
    m.degree = p.degree();
    m.pac_valid = rng.index(2) == 0;
    BinaryWriter wm;
    write_pac_model(wm, m);
    BinaryReader rm(wm.bytes());
    const PacModel back = read_pac_model(rm);
    EXPECT_TRUE(rm.at_end());
    EXPECT_EQ(back.poly.to_string(17), m.poly.to_string(17));
    EXPECT_EQ(std::memcmp(&back.error, &m.error, sizeof(double)), 0);
    EXPECT_EQ(back.samples, m.samples);
    EXPECT_EQ(back.pac_valid, m.pac_valid);
  }
}

TEST(StoreSerialize, SampleSetRoundTripAndDimCheck) {
  Rng rng(303);
  std::vector<Vec> samples;
  for (int i = 0; i < 50; ++i) samples.emplace_back(rng.uniform_vector(3, -1, 1));
  BinaryWriter w;
  write_sample_set(w, samples);
  BinaryReader r(w.bytes());
  const std::vector<Vec> back = read_sample_set(r);
  ASSERT_EQ(back.size(), samples.size());
  for (std::size_t i = 0; i < samples.size(); ++i)
    EXPECT_TRUE(bits_equal(samples[i], back[i]));
}

// ---- Blob framing: any single flipped byte is detected.

TEST(StoreBlob, EncodeDecodeRoundTrip) {
  std::vector<unsigned char> payload;
  Rng rng(404);
  for (int i = 0; i < 2000; ++i)
    payload.push_back(static_cast<unsigned char>(rng.index(256)));
  const auto blob = encode_blob("rl", 0xdeadbeefcafe1234ull, "C3", payload);
  BlobHeader header;
  const auto out = decode_blob(blob, &header);
  EXPECT_EQ(out, payload);
  EXPECT_EQ(header.kind, "rl");
  EXPECT_EQ(header.key, 0xdeadbeefcafe1234ull);
  EXPECT_EQ(header.benchmark, "C3");
  EXPECT_EQ(header.format_version, kStoreFormatVersion);
}

TEST(StoreBlob, EveryFlippedByteIsDetected) {
  std::vector<unsigned char> payload{1, 2, 3, 4, 5, 6, 7, 8};
  const auto blob = encode_blob("pac", 42, "C1", payload);
  Rng rng(505);
  // Exhaustive over this small blob: header, payload, and checksum bytes.
  for (std::size_t i = 0; i < blob.size(); ++i) {
    auto corrupted = blob;
    corrupted[i] ^= static_cast<unsigned char>(1 + rng.index(255));
    EXPECT_THROW(decode_blob(corrupted), StoreError) << "byte " << i;
  }
  // Truncation at every length is detected too.
  for (std::size_t len = 0; len < blob.size(); ++len) {
    const std::vector<unsigned char> cut(blob.begin(), blob.begin() + len);
    EXPECT_THROW(decode_blob(cut), StoreError) << "len " << len;
  }
}

// ---- ArtifactStore: filesystem behavior.

TEST(ArtifactStoreTest, PutGetListVerifyGc) {
  TempDir dir("scs_store_test_fs");
  ArtifactStore store(dir.str());
  EXPECT_FALSE(store.contains("rl", 7));
  EXPECT_TRUE(store.list().empty());

  const std::vector<unsigned char> payload{10, 20, 30};
  store.put("rl", 7, "C1", payload);
  store.put("pac", 8, "C1", {1});
  EXPECT_TRUE(store.contains("rl", 7));
  const auto got = store.get("rl", 7);
  ASSERT_TRUE(got.has_value());
  EXPECT_EQ(*got, payload);

  auto blobs = store.verify();
  ASSERT_EQ(blobs.size(), 2u);
  for (const auto& b : blobs) {
    EXPECT_TRUE(b.readable);
    EXPECT_TRUE(b.checksum_ok);
  }

  // Corrupt one blob on disk: verify flags it, gc removes it.
  const std::string path = store.blob_path("rl", 7);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xff');
  }
  EXPECT_THROW(store.get("rl", 7), StoreError);
  int corrupt = 0;
  for (const auto& b : store.verify())
    if (!b.checksum_ok) ++corrupt;
  EXPECT_EQ(corrupt, 1);
  const auto removed = store.gc().removed;
  EXPECT_EQ(removed.size(), 1u);
  EXPECT_FALSE(store.contains("rl", 7));
  EXPECT_TRUE(store.contains("pac", 8));
}

TEST(ArtifactStoreTest, GcEvictsToByteBudget) {
  TempDir dir("scs_store_test_gc");
  ArtifactStore store(dir.str());
  const std::vector<unsigned char> big(4096, 0xab);
  for (std::uint64_t k = 0; k < 6; ++k) store.put("rl", k, "C1", big);
  const auto removed = store.gc(2 * 4200).removed;  // budget for ~2 blobs
  EXPECT_GE(removed.size(), 4u);
  std::uint64_t left = 0;
  for (const auto& b : store.list()) left += b.file_bytes;
  EXPECT_LE(left, 2u * 4200u);
}

// ---- gc vs live readers: the reader-lock interlock (store_cli gc must
// not evict blobs under a running daemon).

TEST(ArtifactStoreTest, GcDefersToOtherProcessReaders) {
  TempDir dir("scs_store_test_gc_lock");
  ArtifactStore store(dir.str());
  store.put("rl", 1, "C1", std::vector<unsigned char>(64, 0x5a));
  // Corrupt the blob so an unskipped gc would certainly remove it.
  {
    std::fstream f(store.blob_path("rl", 1),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(10);
    f.put('\xff');
  }
  // Simulate a lock held by another *live* process: pid 1 always exists.
  std::ofstream(dir.path / "reader-1-0.lock") << "1\n";

  const ArtifactStore::GcReport deferred = store.gc();
  EXPECT_TRUE(deferred.skipped);
  EXPECT_EQ(deferred.busy_pids, std::vector<int>{1});
  EXPECT_TRUE(deferred.removed.empty());
  EXPECT_TRUE(fs::exists(store.blob_path("rl", 1)));

  // --force overrides the interlock (the lock file itself is not a blob,
  // so it survives the pass).
  const ArtifactStore::GcReport forced = store.gc(0, /*force=*/true);
  EXPECT_FALSE(forced.skipped);
  EXPECT_EQ(forced.removed.size(), 1u);
  EXPECT_FALSE(fs::exists(store.blob_path("rl", 1)));
  EXPECT_TRUE(fs::exists(dir.path / "reader-1-0.lock"));
}

TEST(ArtifactStoreTest, GcReapsStaleLocksAndIgnoresOwnProcess) {
  TempDir dir("scs_store_test_gc_stale");
  ArtifactStore store(dir.str());
  store.put("rl", 2, "C1", std::vector<unsigned char>(64, 0x5a));

  // A lock whose owner is dead must be reaped, not block gc forever. A
  // just-reaped child pid is guaranteed dead and not yet recycled.
  const pid_t child = fork();
  ASSERT_GE(child, 0);
  if (child == 0) _exit(0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(child, &wstatus, 0), child);
  const std::string stale =
      "reader-" + std::to_string(child) + "-0.lock";
  std::ofstream(dir.path / stale) << child << "\n";

  // An own-process lock (what an in-process StageCache holds) must not
  // block either -- a tool may hold a cache handle while gc'ing.
  StageCache cache([&] {
    StoreConfig cfg;
    cfg.mode = StoreConfig::Mode::kOn;
    cfg.cache_dir = dir.str();
    return cfg;
  }());
  ASSERT_TRUE(cache.enabled());

  EXPECT_TRUE(live_reader_pids(dir.str()).empty());
  EXPECT_FALSE(fs::exists(dir.path / stale));  // reaped

  const ArtifactStore::GcReport report = store.gc();
  EXPECT_FALSE(report.skipped);
  EXPECT_TRUE(fs::exists(store.blob_path("rl", 2)));  // healthy blob kept
}

// ---- Stage keys: content-addressing and upstream invalidation.

TEST(StageKeys, ConfigAndSeedChangesRekey) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  const std::uint64_t base =
      rl_stage_key(bench, 1, cfg.ddpg, cfg.env, 100, 25);
  EXPECT_NE(base, rl_stage_key(bench, 2, cfg.ddpg, cfg.env, 100, 25));
  EXPECT_NE(base, rl_stage_key(bench, 1, cfg.ddpg, cfg.env, 101, 25));
  DdpgConfig ddpg2 = cfg.ddpg;
  ddpg2.actor_lr *= 2.0;
  EXPECT_NE(base, rl_stage_key(bench, 1, ddpg2, cfg.env, 100, 25));
  const Benchmark other = make_benchmark(BenchmarkId::kC2);
  EXPECT_NE(base, rl_stage_key(other, 1, cfg.ddpg, cfg.env, 100, 25));
  // Same inputs -> same key (pure function of content).
  EXPECT_EQ(base, rl_stage_key(bench, 1, cfg.ddpg, cfg.env, 100, 25));
}

TEST(StageKeys, UpstreamChangePropagatesDownstream) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  const std::uint64_t rl1 = rl_stage_key(bench, 1, cfg.ddpg, cfg.env, 100, 25);
  const std::uint64_t rl2 = rl_stage_key(bench, 1, cfg.ddpg, cfg.env, 200, 25);
  const std::uint64_t pac1 = pac_stage_key(rl1, 1, bench.pac, cfg.pac_fit,
                                           bench.ccds.control_bound, 1);
  const std::uint64_t pac2 = pac_stage_key(rl2, 1, bench.pac, cfg.pac_fit,
                                           bench.ccds.control_bound, 1);
  EXPECT_NE(pac1, pac2);  // RL episode change re-keys the PAC stage
  const std::uint64_t bar1 = barrier_stage_key(pac1, cfg.barrier);
  const std::uint64_t bar2 = barrier_stage_key(pac2, cfg.barrier);
  EXPECT_NE(bar1, bar2);  // ... and the barrier stage
  EXPECT_NE(validation_stage_key(bar1, 1, cfg.validation),
            validation_stage_key(bar2, 1, cfg.validation));
  // Stages with the same upstream and config agree.
  EXPECT_EQ(bar1, barrier_stage_key(pac1, cfg.barrier));
}

// ---- StageCache: hit/miss/corrupt accounting and fault injection.

RlStagePayload sample_rl_payload() {
  Rng rng(42);
  RlStagePayload p;
  p.actor = Mlp(2, {8}, 1, Activation::kRelu, Activation::kTanh, rng);
  p.dnn_structure = "2-8-1";
  p.eval.mean_return = -3.5;
  return p;
}

TEST(StageCacheTest, MissThenStoreThenHit) {
  TempDir dir("scs_store_test_cache");
  StoreConfig cfg;
  cfg.mode = StoreConfig::Mode::kOn;
  cfg.cache_dir = dir.str();
  StageCache cache(cfg);
  ASSERT_TRUE(cache.enabled());

  StageCounters c;
  EXPECT_FALSE(cache.load_rl(99, c).has_value());
  EXPECT_EQ(c.misses, 1);
  const RlStagePayload p = sample_rl_payload();
  cache.store_rl(99, "C1", p, c);
  EXPECT_EQ(c.stores, 1);
  const auto hit = cache.load_rl(99, c);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(c.hits, 1);
  EXPECT_TRUE(bits_equal(hit->actor.parameters(), p.actor.parameters()));
  EXPECT_EQ(hit->dnn_structure, "2-8-1");
}

TEST(StageCacheTest, ArmedCorruptionFaultDegradesToMiss) {
  TempDir dir("scs_store_test_fault");
  StoreConfig cfg;
  cfg.mode = StoreConfig::Mode::kOn;
  cfg.cache_dir = dir.str();
  StageCache cache(cfg);
  StageCounters c;
  cache.store_rl(7, "C1", sample_rl_payload(), c);

  // Arm only the store_corrupt site at rate 1: the next load flips a blob
  // byte in memory, the checksum catches it, and the load degrades to a
  // structured miss (corrupt counted) instead of crashing or returning
  // garbage.
  FaultInjector& inj = FaultInjector::instance();
  inj.arm(1234, 1.0, 4);
  for (int s = 0; s < static_cast<int>(FaultSite::kCount); ++s)
    inj.arm_site(static_cast<FaultSite>(s), false);
  inj.arm_site(FaultSite::kStoreCorrupt, true);
  const auto miss = cache.load_rl(7, c);
  const std::uint64_t fires = inj.fires(FaultSite::kStoreCorrupt);
  inj.disarm();
  EXPECT_FALSE(miss.has_value());
  EXPECT_EQ(c.corrupt, 1);
  EXPECT_EQ(c.misses, 1);
  EXPECT_EQ(c.hits, 0);
  EXPECT_EQ(fires, 1u);

  // Disarmed, the on-disk blob is intact and loads cleanly.
  const auto hit = cache.load_rl(7, c);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(c.hits, 1);
}

TEST(StageCacheTest, OffModeDisables) {
  StoreConfig cfg;
  cfg.mode = StoreConfig::Mode::kOff;
  cfg.cache_dir = "/tmp/should_not_be_used";
  StageCache cache(cfg);
  EXPECT_FALSE(cache.enabled());
  EXPECT_TRUE(resolve_cache_dir(cfg).empty());
}

// ---- Pipeline resume: cold run populates, warm run skips RL and
// reproduces the cold result bit for bit; a corrupted store degrades to
// recompute with identical output.

std::string controller_fingerprint(const SynthesisResult& r) {
  std::ostringstream os;
  os << r.verdict << "|" << r.dnn_structure << "|";
  for (const auto& p : r.controller) os << p.to_string(17) << ";";
  os << r.barrier.barrier.to_string(17);
  return os.str();
}

TEST(PipelineResume, WarmRunSkipsRlAndIsBitwiseIdentical) {
  TempDir dir("scs_store_test_resume");
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  cfg.seed = 2024;
  cfg.fast_mode = true;
  cfg.store.mode = StoreConfig::Mode::kOn;
  cfg.store.cache_dir = dir.str();

  const SynthesisResult cold = synthesize(bench, cfg);
  EXPECT_TRUE(cold.cache.enabled);
  EXPECT_EQ(cold.cache.rl.hits, 0);
  EXPECT_EQ(cold.cache.rl.misses, 1);
  EXPECT_EQ(cold.cache.rl.stores, 1);

  // Warm run at a different thread count: still an RL hit, still bitwise
  // identical (stage keys and payloads are thread-count independent).
  set_parallel_threads(1);
  const SynthesisResult warm = synthesize(bench, cfg);
  set_parallel_threads(0);
  EXPECT_EQ(warm.cache.rl.hits, 1);
  EXPECT_EQ(warm.cache.rl.misses, 0);
  EXPECT_EQ(controller_fingerprint(warm), controller_fingerprint(cold));

  // A corrupt store never poisons a run: every armed load fails its
  // checksum, the pipeline recomputes each stage, and the output is still
  // identical to the cold run.
  FaultInjector& inj = FaultInjector::instance();
  inj.arm(99, 1.0, 100);
  for (int s = 0; s < static_cast<int>(FaultSite::kCount); ++s)
    inj.arm_site(static_cast<FaultSite>(s), false);
  inj.arm_site(FaultSite::kStoreCorrupt, true);
  const SynthesisResult recomputed = synthesize(bench, cfg);
  inj.disarm();
  EXPECT_GE(recomputed.cache.rl.corrupt + recomputed.cache.pac.corrupt +
                recomputed.cache.barrier.corrupt +
                recomputed.cache.validation.corrupt,
            1);
  EXPECT_EQ(recomputed.cache.rl.hits, 0);
  EXPECT_EQ(controller_fingerprint(recomputed), controller_fingerprint(cold));

  // Off-mode run is unaffected by (and does not touch) the store.
  PipelineConfig off = cfg;
  off.store.mode = StoreConfig::Mode::kOff;
  const SynthesisResult uncached = synthesize(bench, off);
  EXPECT_FALSE(uncached.cache.enabled);
  EXPECT_EQ(controller_fingerprint(uncached), controller_fingerprint(cold));
}

}  // namespace
}  // namespace scs
