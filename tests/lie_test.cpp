// Tests for Lie derivatives and closed-loop composition.
#include <gtest/gtest.h>

#include "poly/basis.hpp"
#include "poly/lie.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

Polynomial random_poly(std::size_t n, int degree, Rng& rng) {
  const auto basis = monomials_up_to(n, degree);
  Vec c(basis.size());
  for (auto& v : c) v = rng.uniform(-1.0, 1.0);
  return Polynomial::from_coefficients(basis, c);
}

TEST(LieDerivative, KnownCase) {
  // B = x1^2 + x2^2, f = (x2, -x1): L_f B = 2 x1 x2 - 2 x2 x1 = 0
  // (rotation preserves the radius).
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial b = x1 * x1 + x2 * x2;
  const Polynomial lie = lie_derivative(b, {x2, -x1});
  EXPECT_TRUE(lie.is_zero());
}

TEST(LieDerivative, DampedSystemDecreasesRadius) {
  // f = (-x1, -x2): L_f (x1^2 + x2^2) = -2 x1^2 - 2 x2^2.
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial b = x1 * x1 + x2 * x2;
  const Polynomial lie = lie_derivative(b, {-x1, -x2});
  EXPECT_LT(max_coefficient_diff(lie, b * (-2.0)), 1e-14);
}

TEST(LieDerivative, LinearInBarrier) {
  Rng rng(2);
  std::vector<Polynomial> f = {random_poly(3, 2, rng), random_poly(3, 2, rng),
                               random_poly(3, 2, rng)};
  const Polynomial b1 = random_poly(3, 3, rng);
  const Polynomial b2 = random_poly(3, 2, rng);
  const Polynomial lhs = lie_derivative(b1 + b2 * 2.0, f);
  const Polynomial rhs = lie_derivative(b1, f) + lie_derivative(b2, f) * 2.0;
  EXPECT_LT(max_coefficient_diff(lhs, rhs), 1e-10);
}

TEST(LieDerivative, LeibnizProductRule) {
  Rng rng(3);
  std::vector<Polynomial> f = {random_poly(2, 2, rng), random_poly(2, 2, rng)};
  const Polynomial a = random_poly(2, 2, rng);
  const Polynomial b = random_poly(2, 2, rng);
  const Polynomial lhs = lie_derivative(a * b, f);
  const Polynomial rhs = lie_derivative(a, f) * b + a * lie_derivative(b, f);
  EXPECT_LT(max_coefficient_diff(lhs, rhs), 1e-9);
}

TEST(CloseLoop, SubstitutesController) {
  // f(x, u) = (x2, u): with u = -x1 - x2 the loop is (x2, -x1 - x2).
  const std::size_t t = 3;  // x1, x2, u
  const auto x1 = Polynomial::variable(t, 0);
  const auto x2 = Polynomial::variable(t, 1);
  const auto u = Polynomial::variable(t, 2);
  const Polynomial p =
      -Polynomial::variable(2, 0) - Polynomial::variable(2, 1);
  const auto closed = close_loop({x2, u}, 2, {p});
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].num_vars(), 2u);
  EXPECT_LT(max_coefficient_diff(closed[1], p), 1e-14);
}

TEST(CloseLoop, NonlinearControlEntry) {
  // f2 = x1 + u^2 with u = x2: closed f2 = x1 + x2^2.
  const std::size_t t = 3;
  const auto x1 = Polynomial::variable(t, 0);
  const auto x2 = Polynomial::variable(t, 1);
  const auto u = Polynomial::variable(t, 2);
  const auto closed = close_loop({x2, x1 + u * u}, 2,
                                 {Polynomial::variable(2, 1)});
  const auto expect = Polynomial::variable(2, 0) +
                      Polynomial::variable(2, 1).pow(2);
  EXPECT_LT(max_coefficient_diff(closed[1], expect), 1e-14);
}

TEST(CloseLoop, EvaluationConsistency) {
  Rng rng(5);
  // Random open field over (x1, x2, u) and random controller p(x).
  std::vector<Polynomial> f = {random_poly(3, 2, rng), random_poly(3, 2, rng)};
  const Polynomial p = random_poly(2, 2, rng);
  const auto closed = close_loop(f, 2, {p});
  for (int t = 0; t < 20; ++t) {
    const Vec x(rng.uniform_vector(2, -1.0, 1.0));
    const Vec z = concat(x, Vec{p.evaluate(x)});
    for (std::size_t i = 0; i < 2; ++i)
      EXPECT_NEAR(closed[i].evaluate(x), f[i].evaluate(z), 1e-9);
  }
}

TEST(CloseLoop, RejectsBadShapes) {
  const auto x1 = Polynomial::variable(3, 0);
  EXPECT_THROW(close_loop({x1, x1}, 2, {}), PreconditionError);
  EXPECT_THROW(
      close_loop({x1, x1}, 2, {Polynomial::variable(3, 0)}),
      PreconditionError);
}

}  // namespace
}  // namespace scs
