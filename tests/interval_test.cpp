// Tests for interval arithmetic and the branch-and-bound bound prover.
#include <gtest/gtest.h>

#include "sos/interval.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

TEST(Interval, BasicArithmetic) {
  const Interval a(1.0, 2.0), b(-1.0, 3.0);
  const Interval sum = a + b;
  EXPECT_DOUBLE_EQ(sum.lo, 0.0);
  EXPECT_DOUBLE_EQ(sum.hi, 5.0);
  const Interval diff = a - b;
  EXPECT_DOUBLE_EQ(diff.lo, -2.0);
  EXPECT_DOUBLE_EQ(diff.hi, 3.0);
  const Interval prod = a * b;
  EXPECT_DOUBLE_EQ(prod.lo, -2.0);
  EXPECT_DOUBLE_EQ(prod.hi, 6.0);
}

TEST(Interval, EvenPowerTightAtZero) {
  const Interval x(-2.0, 1.0);
  const Interval sq = x.pow(2);
  EXPECT_DOUBLE_EQ(sq.lo, 0.0);  // tight, not [-?, 4] naive product
  EXPECT_DOUBLE_EQ(sq.hi, 4.0);
  const Interval cube = x.pow(3);
  EXPECT_DOUBLE_EQ(cube.lo, -8.0);
  EXPECT_DOUBLE_EQ(cube.hi, 1.0);
}

TEST(Interval, EnclosureContainsSampledValues) {
  Rng rng(1);
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial p = x1 * x1 * 2.0 - x1 * x2 + x2.pow(3) * 0.5 -
                       Polynomial::constant(2, 1.0);
  const Box box(Vec{-1.5, -0.5}, Vec{0.5, 2.0});
  const Interval range = interval_enclosure(p, box);
  for (int i = 0; i < 500; ++i) {
    const double v = p.evaluate(box.sample(rng));
    EXPECT_GE(v, range.lo - 1e-12);
    EXPECT_LE(v, range.hi + 1e-12);
  }
}

TEST(ProveLowerBound, ProvesPositiveDefiniteQuadratic) {
  // p = x1^2 + x2^2 + 0.1 >= 0.1 on [-1,1]^2.
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial p = x1 * x1 + x2 * x2 + Polynomial::constant(2, 0.1);
  const BoundResult r = prove_lower_bound(p, Box::centered(2, 1.0), 0.05);
  EXPECT_TRUE(r.proven);
  EXPECT_GE(r.certified_lower_bound, 0.05);
}

TEST(ProveLowerBound, RefutesFalseClaim) {
  // p = x^2 - 0.5 is negative near 0: p >= 0 is false on [-1,1].
  const auto x = Polynomial::variable(1, 0);
  const Polynomial p = x * x - Polynomial::constant(1, 0.5);
  const BoundResult r = prove_lower_bound(p, Box::centered(1, 1.0), 0.0);
  EXPECT_FALSE(r.proven);
  EXPECT_FALSE(r.budget_exhausted);
  // The witness region contains a true violation.
  EXPECT_LT(p.evaluate(r.counterexample_region.center()), 0.0);
}

TEST(ProveLowerBound, NeedsSubdivisionForIndefiniteTerms) {
  // p = (x1 - x2)^2 + 0.01: naive enclosure of x1^2 - 2x1x2 + x2^2 on
  // [-1,1]^2 is [-2 + 0.01, ...], so subdivision is required -- but it is
  // genuinely nonnegative, so the proof must eventually close (the
  // minimum 0.01 sits on the diagonal; the prover needs slack below it).
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial p = (x1 - x2).pow(2) + Polynomial::constant(2, 0.01);
  const BoundResult r = prove_lower_bound(p, Box::centered(2, 1.0), 0.0);
  EXPECT_TRUE(r.proven);
  EXPECT_GT(r.boxes_processed, 1u);
}

TEST(ProveLowerBound, BudgetExhaustionIsReported) {
  // A claim whose infimum equals the threshold on a whole curve (the
  // diagonal) cannot close: enclosures of (x1 - x2)^2 on diagonal boxes
  // never clear 0 strictly, and midpoints never refute.
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial p = (x1 - x2).pow(2);
  BoundOptions opts;
  opts.max_boxes = 8;
  const BoundResult r = prove_lower_bound(p, Box::centered(2, 1.0), 0.0,
                                          opts);
  EXPECT_FALSE(r.proven);
  EXPECT_TRUE(r.budget_exhausted);
}

TEST(ProveLowerBound, BarrierConditionUseCase) {
  // Shell-geometry condition (ii): B = 1.44 - ||x||^2 < 0 on the unsafe
  // shell; prove -B >= 0.2 on a far sub-box of X_u.
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial b =
      Polynomial::constant(2, 1.44) - x1 * x1 - x2 * x2;
  const Box far_box(Vec{1.5, -3.0}, Vec{3.0, 3.0});  // ||x|| >= 1.5 there
  const BoundResult r = prove_lower_bound(-b, far_box, 0.2);
  EXPECT_TRUE(r.proven);
}

TEST(Interval, RejectsBadInputs) {
  EXPECT_THROW(Interval(2.0, 1.0), PreconditionError);
  EXPECT_THROW(Interval(0.0, 1.0).pow(-1), PreconditionError);
  EXPECT_THROW(
      interval_enclosure(Polynomial::variable(2, 0), Box::centered(3, 1.0)),
      PreconditionError);
}

}  // namespace
}  // namespace scs
