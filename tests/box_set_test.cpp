// Tests for boxes and semialgebraic sets.
#include <gtest/gtest.h>

#include <cmath>

#include "systems/semialgebraic.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

TEST(Box, ContainsAndClamp) {
  const Box b(Vec{-1.0, 0.0}, Vec{1.0, 2.0});
  EXPECT_TRUE(b.contains(Vec{0.0, 1.0}));
  EXPECT_FALSE(b.contains(Vec{1.5, 1.0}));
  EXPECT_TRUE(b.contains(Vec{1.1, 1.0}, 0.2));
  const Vec c = b.clamp(Vec{5.0, -3.0});
  EXPECT_DOUBLE_EQ(c[0], 1.0);
  EXPECT_DOUBLE_EQ(c[1], 0.0);
}

TEST(Box, SampleStaysInside) {
  Rng rng(1);
  const Box b = Box::centered(4, 2.5);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(b.contains(b.sample(rng)));
}

TEST(Box, CenterAndWidths) {
  const Box b(Vec{-1.0, 2.0}, Vec{3.0, 4.0});
  EXPECT_DOUBLE_EQ(b.center()[0], 1.0);
  EXPECT_DOUBLE_EQ(b.center()[1], 3.0);
  EXPECT_DOUBLE_EQ(b.widths()[0], 4.0);
}

TEST(Box, GridCoversCorners) {
  const Box b = Box::centered(2, 1.0);
  const auto grid = b.grid(3);
  EXPECT_EQ(grid.size(), 9u);
  // All corners present.
  int corners = 0;
  for (const auto& p : grid)
    if (std::fabs(p[0]) == 1.0 && std::fabs(p[1]) == 1.0) ++corners;
  EXPECT_EQ(corners, 4);
}

TEST(Box, RejectsInvertedBounds) {
  EXPECT_THROW(Box(Vec{1.0}, Vec{0.0}), PreconditionError);
}

TEST(SemialgebraicSet, BallMembershipAndDistance) {
  const auto ball = SemialgebraicSet::ball(Vec{1.0, 0.0}, 2.0);
  EXPECT_TRUE(ball.contains(Vec{1.0, 1.0}));
  EXPECT_TRUE(ball.contains(Vec{3.0, 0.0}));
  EXPECT_FALSE(ball.contains(Vec{3.5, 0.0}));
  EXPECT_TRUE(ball.has_analytic_distance());
  EXPECT_NEAR(ball.distance_to(Vec{4.0, 0.0}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(ball.distance_to(Vec{1.0, 0.5}), 0.0);
}

TEST(SemialgebraicSet, OutsideBallIsComplementShell) {
  const Box psi = Box::centered(2, 5.0);
  const auto shell = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 2.0, psi);
  EXPECT_FALSE(shell.contains(Vec{0.0, 0.0}));
  EXPECT_TRUE(shell.contains(Vec{3.0, 0.0}));
  // Distance from an interior point to the shell boundary.
  EXPECT_NEAR(shell.distance_to(Vec{0.5, 0.0}), 1.5, 1e-12);
  EXPECT_DOUBLE_EQ(shell.distance_to(Vec{2.5, 0.0}), 0.0);
}

TEST(SemialgebraicSet, FromBoxInequalitiesAreLinear) {
  const auto set = SemialgebraicSet::from_box(Box::centered(3, 2.0));
  EXPECT_EQ(set.inequalities().size(), 6u);
  for (const auto& g : set.inequalities()) EXPECT_EQ(g.degree(), 1);
  EXPECT_TRUE(set.contains(Vec{1.9, -1.9, 0.0}));
  EXPECT_FALSE(set.contains(Vec{2.1, 0.0, 0.0}));
  EXPECT_NEAR(set.distance_to(Vec{3.0, 0.0, 0.0}), 1.0, 1e-12);
}

TEST(SemialgebraicSet, SamplingRespectsMembership) {
  Rng rng(3);
  const Box psi = Box::centered(3, 3.0);
  const auto shell = SemialgebraicSet::outside_ball(Vec(3, 0.0), 1.5, psi);
  const auto pts = shell.sample_many(200, rng);
  for (const auto& p : pts) {
    EXPECT_TRUE(shell.contains(p));
    EXPECT_TRUE(psi.contains(p));
  }
}

TEST(SemialgebraicSet, SampleFailsOnEmptySet) {
  // Ball of radius 1 centered far outside its sampling box.
  std::vector<Polynomial> ineqs;
  const auto x = Polynomial::variable(1, 0);
  // x >= 10 within box [-1, 1]: empty.
  ineqs.push_back(x - Polynomial::constant(1, 10.0));
  SemialgebraicSet empty(std::move(ineqs), Box::centered(1, 1.0));
  Rng rng(5);
  EXPECT_THROW(empty.sample(rng, 1000), PreconditionError);
}

TEST(SemialgebraicSet, MonteCarloDistanceFallback) {
  // A set without analytic distance: half-space x1 >= 1 in a box.
  std::vector<Polynomial> ineqs;
  ineqs.push_back(Polynomial::variable(2, 0) - Polynomial::constant(2, 1.0));
  SemialgebraicSet half(std::move(ineqs), Box::centered(2, 2.0));
  EXPECT_FALSE(half.has_analytic_distance());
  Rng rng(7);
  const double d = half.distance_to(Vec{0.0, 0.0}, &rng);
  // True distance is 1; the sampled estimate is an upper bound and should
  // be in a sane range.
  EXPECT_GE(d, 1.0 - 1e-9);
  EXPECT_LE(d, 1.8);
}

}  // namespace
}  // namespace scs
