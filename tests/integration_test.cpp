// Cross-module integration tests: obstacle-type unsafe sets, multi-input
// systems, and PAC -> barrier composition on non-pendulum geometry.
#include <gtest/gtest.h>

#include <cmath>

#include "barrier/synthesis.hpp"
#include "barrier/validation.hpp"
#include "pac/pac_fit.hpp"
#include "poly/basis.hpp"
#include "ode/trajectory.hpp"
#include "systems/benchmarks.hpp"

namespace scs {
namespace {

/// 3-D damped system with an obstacle ball (C9-style geometry, small n so
/// the test stays fast).
Ccds obstacle_system() {
  Ccds sys;
  sys.name = "obstacle-3d";
  sys.num_states = 3;
  sys.num_controls = 1;
  const auto x1 = Polynomial::variable(4, 0);
  const auto x2 = Polynomial::variable(4, 1);
  const auto x3 = Polynomial::variable(4, 2);
  const auto u = Polynomial::variable(4, 3);
  sys.open_field = {-x1 * 0.5 + x2 * 0.1, -x2 * 0.5 + x3 * 0.1,
                    -x3 * 0.5 + u};
  const Box psi = Box::centered(3, 2.0);
  Vec obstacle{1.2, 1.2, 0.0};
  sys.init_set = SemialgebraicSet::ball(Vec(3, 0.0), 0.4);
  sys.domain = SemialgebraicSet::from_box(psi);
  sys.unsafe_set = SemialgebraicSet::ball(obstacle, 0.5);
  sys.control_bound = 1.0;
  return sys;
}

TEST(Integration, ObstacleGeometryBarrier) {
  const Ccds sys = obstacle_system();
  // u = 0: the plant contracts to the origin, away from the obstacle.
  BarrierConfig cfg;
  const BarrierResult result = synthesize_barrier(sys, {Polynomial(3)}, cfg);
  ASSERT_TRUE(result.success) << result.failure_reason;
  // The certificate separates Theta (positive) from the obstacle (negative).
  EXPECT_GT(result.barrier.evaluate(Vec{0.0, 0.0, 0.0}), 0.0);
  EXPECT_LT(result.barrier.evaluate(Vec{1.2, 1.2, 0.0}), 0.0);

  Rng rng(3);
  ValidationConfig vcfg;
  vcfg.samples_per_set = 800;
  vcfg.simulation_rollouts = 5;
  const ValidationReport report =
      validate_barrier(sys, {Polynomial(3)}, result.barrier, vcfg, rng);
  EXPECT_TRUE(report.passed) << report.detail;
}

TEST(Integration, MultiInputCloseLoopAndPacFit) {
  // Two-input system: each channel fit independently by the PAC stage.
  Ccds sys;
  sys.name = "two-input";
  sys.num_states = 2;
  sys.num_controls = 2;
  const auto x1 = Polynomial::variable(4, 0);
  const auto x2 = Polynomial::variable(4, 1);
  const auto u1 = Polynomial::variable(4, 2);
  const auto u2 = Polynomial::variable(4, 3);
  sys.open_field = {-x1 + u1, -x2 + u2};
  const Box psi = Box::centered(2, 2.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0, 0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(psi);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 1.5, psi);
  sys.control_bound = 2.0;
  sys.validate();

  // A vector law to approximate.
  const auto law = [](const Vec& x) {
    return Vec{-0.5 * x[0], std::tanh(x[1])};
  };
  Rng rng(4);
  PacSettings settings;
  settings.eps_list = {0.1, 0.05};
  const PacVectorResult pac =
      pac_approximate_vector(law, 2, sys.domain, settings, rng);
  ASSERT_TRUE(pac.success);
  ASSERT_EQ(pac.models.size(), 2u);

  // Close the loop with both fitted channels and certify.
  const std::vector<Polynomial> controller = {pac.models[0].poly,
                                              pac.models[1].poly};
  const auto closed = sys.closed_loop(controller);
  EXPECT_EQ(closed.size(), 2u);
  BarrierConfig cfg;
  cfg.degree_schedule = {2};
  const BarrierResult result = synthesize_barrier(sys, controller, cfg);
  EXPECT_TRUE(result.success) << result.failure_reason;
}

TEST(Integration, BarrierCertificateImpliesSimulationSafety) {
  // Property check: whenever the barrier stage accepts, closed-loop
  // simulations from Theta never reach X_u within a long horizon.
  const Benchmark bench = make_benchmark(BenchmarkId::kC3);
  const Polynomial controller =
      -Polynomial::variable(3, 0) * 0.4 - Polynomial::variable(3, 2) * 0.4;
  BarrierConfig cfg;
  const BarrierResult result =
      synthesize_barrier(bench.ccds, {controller}, cfg);
  ASSERT_TRUE(result.success) << result.failure_reason;

  Rng rng(5);
  const VectorField field = bench.ccds.closed_loop_field(
      std::vector<Polynomial>{controller});
  for (int trial = 0; trial < 10; ++trial) {
    const Vec x0 = bench.ccds.init_set.sample(rng);
    SimulateOptions opts;
    opts.dt = 0.02;
    opts.max_steps = 2000;
    opts.record = false;
    const Trajectory traj =
        simulate(field, x0, opts, [&](const Vec& x) {
          return bench.ccds.unsafe_set.contains(x);
        });
    EXPECT_EQ(traj.stop, StopReason::kHorizonReached);
  }
}

TEST(Integration, BarrierLevelSetSeparatesReachableTube) {
  // B must stay nonnegative along closed-loop trajectories from Theta
  // (the defining property of barrier invariance).
  const Benchmark bench = make_benchmark(BenchmarkId::kC5);
  Polynomial controller(5);  // u = 0; the cascade is already contracting
  BarrierConfig cfg;
  const BarrierResult result =
      synthesize_barrier(bench.ccds, {controller}, cfg);
  ASSERT_TRUE(result.success) << result.failure_reason;

  Rng rng(6);
  const VectorField field = bench.ccds.closed_loop_field(
      std::vector<Polynomial>{controller});
  for (int trial = 0; trial < 5; ++trial) {
    Vec x = bench.ccds.init_set.sample(rng);
    for (int step = 0; step < 1000; ++step) {
      x = rk4_step(field, x, 0.02);
      EXPECT_GE(result.barrier.evaluate(x), -1e-6)
          << "B went negative on a trajectory at step " << step;
    }
  }
}

}  // namespace
}  // namespace scs
