// Tests for the independent barrier-certificate validation module.
#include <gtest/gtest.h>

#include "barrier/validation.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

Ccds stable_toy() {
  Ccds sys;
  sys.name = "val-toy";
  sys.num_states = 2;
  sys.num_controls = 1;
  const auto x1 = Polynomial::variable(3, 0);
  const auto x2 = Polynomial::variable(3, 1);
  const auto u = Polynomial::variable(3, 2);
  sys.open_field = {-x1 + u, -x2};
  const Box box = Box::centered(2, 3.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0, 0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 2.0, box);
  sys.control_bound = 1.0;
  return sys;
}

/// The textbook certificate for the shell geometry: B = r_m^2 - ||x||^2.
Polynomial shell_barrier(double r_mid) {
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  return Polynomial::constant(2, r_mid * r_mid) - x1 * x1 - x2 * x2;
}

TEST(Validation, AcceptsTrueCertificate) {
  const Ccds sys = stable_toy();
  Rng rng(1);
  ValidationConfig cfg;
  cfg.samples_per_set = 1000;
  cfg.simulation_rollouts = 10;
  const ValidationReport report =
      validate_barrier(sys, {Polynomial(2)}, shell_barrier(1.0), cfg, rng);
  EXPECT_TRUE(report.passed) << report.detail;
  EXPECT_GT(report.min_b_on_theta, 0.0);
  EXPECT_LT(report.max_b_on_unsafe, 0.0);
  EXPECT_GT(report.boundary_samples, 0u);
  EXPECT_EQ(report.safe_rollouts, report.total_rollouts);
}

TEST(Validation, RejectsBarrierNegativeOnTheta) {
  // B = -1 everywhere violates condition (i).
  const Ccds sys = stable_toy();
  Rng rng(2);
  ValidationConfig cfg;
  cfg.samples_per_set = 200;
  cfg.simulation_rollouts = 2;
  const ValidationReport report = validate_barrier(
      sys, {Polynomial(2)}, Polynomial::constant(2, -1.0), cfg, rng);
  EXPECT_FALSE(report.passed);
  EXPECT_LT(report.min_b_on_theta, 0.0);
}

TEST(Validation, RejectsBarrierPositiveOnUnsafe) {
  // B = +1 everywhere violates condition (ii).
  const Ccds sys = stable_toy();
  Rng rng(3);
  ValidationConfig cfg;
  cfg.samples_per_set = 200;
  cfg.simulation_rollouts = 2;
  const ValidationReport report = validate_barrier(
      sys, {Polynomial(2)}, Polynomial::constant(2, 1.0), cfg, rng);
  EXPECT_FALSE(report.passed);
  EXPECT_GT(report.max_b_on_unsafe, 0.0);
}

TEST(Validation, RejectsWhenDynamicsCrossLevelSet) {
  // Destabilized plant: xdot = +x under u = 2x (bound allows it... the
  // polynomial controller is unclamped). Trajectories cross B = 0 outward.
  Ccds sys = stable_toy();
  const Polynomial controller = Polynomial::variable(2, 0) * 2.0;
  Rng rng(4);
  ValidationConfig cfg;
  cfg.samples_per_set = 1000;
  cfg.simulation_rollouts = 10;
  const ValidationReport report =
      validate_barrier(sys, {controller}, shell_barrier(1.0), cfg, rng);
  EXPECT_FALSE(report.passed);
}

TEST(Validation, RejectsWrongVariableCount) {
  const Ccds sys = stable_toy();
  Rng rng(5);
  ValidationConfig cfg;
  EXPECT_THROW(validate_barrier(sys, {Polynomial(2)},
                                Polynomial::variable(3, 0), cfg, rng),
               PreconditionError);
}

}  // namespace
}  // namespace scs
