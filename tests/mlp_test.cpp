// Tests for the MLP substrate: forward pass, gradient checking, parameter
// round trips, soft updates.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/mlp.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

TEST(Mlp, ForwardShapesAndStructureString) {
  Rng rng(1);
  Mlp net(3, {30, 30, 30, 30, 30}, 1, Activation::kRelu, Activation::kTanh,
          rng);
  EXPECT_EQ(net.input_dim(), 3u);
  EXPECT_EQ(net.output_dim(), 1u);
  EXPECT_EQ(net.layer_count(), 6u);
  EXPECT_EQ(net.structure_string(), "3-30-30-30-30-30-1");
  const Vec y = net.forward(Vec{0.1, -0.2, 0.3});
  ASSERT_EQ(y.size(), 1u);
  EXPECT_LE(std::fabs(y[0]), 1.0);  // tanh output range
}

TEST(Mlp, ParameterRoundTrip) {
  Rng rng(2);
  Mlp net(2, {5}, 2, Activation::kRelu, Activation::kIdentity, rng);
  const Vec p = net.parameters();
  EXPECT_EQ(p.size(), net.parameter_count());
  EXPECT_EQ(p.size(), 2u * 5u + 5u + 5u * 2u + 2u);
  Vec p2 = p;
  for (auto& v : p2) v += 0.5;
  net.set_parameters(p2);
  EXPECT_LT(max_abs_diff(net.parameters(), p2), 1e-15);
}

TEST(Mlp, GradientCheckTanh) {
  // Finite-difference check of dL/dtheta with L = y (single output).
  Rng rng(3);
  Mlp net(2, {4, 4}, 1, Activation::kTanh, Activation::kTanh, rng);
  const Vec x{0.3, -0.7};

  Mlp::Workspace ws;
  net.forward(x, ws);
  Vec grad(net.parameter_count(), 0.0);
  net.backward(ws, Vec{1.0}, grad);

  const Vec p = net.parameters();
  const double h = 1e-6;
  for (std::size_t i = 0; i < p.size(); i += 7) {  // spot check
    Vec pp = p;
    pp[i] += h;
    net.set_parameters(pp);
    const double yp = net.forward(x)[0];
    pp[i] -= 2 * h;
    net.set_parameters(pp);
    const double ym = net.forward(x)[0];
    net.set_parameters(p);
    EXPECT_NEAR(grad[i], (yp - ym) / (2 * h), 1e-5)
        << "parameter index " << i;
  }
}

TEST(Mlp, GradientCheckReluInputGradient) {
  Rng rng(4);
  Mlp net(3, {8}, 2, Activation::kRelu, Activation::kIdentity, rng);
  const Vec x{0.5, -0.3, 0.9};
  Mlp::Workspace ws;
  net.forward(x, ws);
  Vec grad(net.parameter_count(), 0.0);
  const Vec dy{1.0, -2.0};
  const Vec dx = net.backward(ws, dy, grad);

  const double h = 1e-6;
  for (std::size_t i = 0; i < 3; ++i) {
    Vec xp = x;
    xp[i] += h;
    const Vec yp = net.forward(xp);
    xp[i] -= 2 * h;
    const Vec ym = net.forward(xp);
    const double fd = (dot(dy, yp) - dot(dy, ym)) / (2 * h);
    EXPECT_NEAR(dx[i], fd, 1e-5);
  }
}

TEST(Mlp, BackwardAccumulatesAcrossSamples) {
  Rng rng(5);
  Mlp net(1, {3}, 1, Activation::kTanh, Activation::kIdentity, rng);
  Vec g1(net.parameter_count(), 0.0);
  Mlp::Workspace ws;
  net.forward(Vec{0.5}, ws);
  net.backward(ws, Vec{1.0}, g1);
  // Same sample twice accumulates exactly double.
  Vec g2(net.parameter_count(), 0.0);
  net.forward(Vec{0.5}, ws);
  net.backward(ws, Vec{1.0}, g2);
  net.forward(Vec{0.5}, ws);
  net.backward(ws, Vec{1.0}, g2);
  for (std::size_t i = 0; i < g1.size(); ++i)
    EXPECT_NEAR(g2[i], 2.0 * g1[i], 1e-12);
}

TEST(Mlp, SoftUpdateInterpolates) {
  Rng rng(6);
  Mlp a(2, {4}, 1, Activation::kRelu, Activation::kTanh, rng);
  Mlp b(2, {4}, 1, Activation::kRelu, Activation::kTanh, rng);
  const Vec pa = a.parameters();
  const Vec pb = b.parameters();
  a.soft_update_from(b, 0.25);
  const Vec pc = a.parameters();
  for (std::size_t i = 0; i < pa.size(); ++i)
    EXPECT_NEAR(pc[i], 0.75 * pa[i] + 0.25 * pb[i], 1e-12);
}

TEST(Mlp, RejectsBadShapes) {
  Rng rng(7);
  Mlp net(2, {4}, 1, Activation::kRelu, Activation::kTanh, rng);
  EXPECT_THROW(net.set_parameters(Vec(3)), PreconditionError);
  Mlp other(3, {4}, 1, Activation::kRelu, Activation::kTanh, rng);
  EXPECT_THROW(net.soft_update_from(other, 0.1), PreconditionError);
  EXPECT_THROW(Mlp(0, {}, 1, Activation::kRelu, Activation::kTanh, rng),
               PreconditionError);
}

TEST(Activations, Values) {
  const Vec pre{-1.0, 0.0, 2.0};
  const Vec relu = activate(Activation::kRelu, pre);
  EXPECT_DOUBLE_EQ(relu[0], 0.0);
  EXPECT_DOUBLE_EQ(relu[2], 2.0);
  const Vec th = activate(Activation::kTanh, pre);
  EXPECT_NEAR(th[0], std::tanh(-1.0), 1e-15);
  const Vec id = activate(Activation::kIdentity, pre);
  EXPECT_DOUBLE_EQ(id[0], -1.0);
}

}  // namespace
}  // namespace scs
