// Golden end-to-end regression: the C1 pendulum pipeline (VERIFIED) and a
// deliberately uncontrollable system (UNVERIFIED) at fixed seeds, compared
// against checked-in golden files with explicit tolerances. Each run is also
// required to be bitwise-identical across 1 and 4 worker threads.
//
// Regenerate the goldens after an intentional numeric change with
//   SCS_UPDATE_GOLDEN=1 ./golden_pipeline_test
// and commit the diff alongside the change that caused it.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include "core/pipeline.hpp"
#include "poly/parse.hpp"
#include "util/thread_pool.hpp"

namespace scs {
namespace {

#ifndef SCS_GOLDEN_DIR
#define SCS_GOLDEN_DIR "tests/golden"
#endif

constexpr double kCoeffTol = 1e-9;   // golden coefficient agreement
constexpr double kScalarTol = 1e-9;  // golden scalar agreement

ControlLaw pendulum_teacher() {
  return [](const Vec& x) {
    const double x1 = x[0];
    return Vec{9.875 * x1 - 1.56 * x1 * x1 * x1 + 0.056 * std::pow(x1, 5) -
               x1 - 2.0 * x[1]};
  };
}

/// A 1-state system x' = u driven toward the unsafe set by its "teacher":
/// no barrier certificate exists, so the pipeline must deterministically
/// report UNVERIFIED (and never crash on the way there).
Benchmark unstable_benchmark() {
  Benchmark bench;
  bench.id = BenchmarkId::kC1;
  bench.name = "golden-unstable";
  bench.ccds.name = "golden-unstable";
  bench.ccds.num_states = 1;
  bench.ccds.num_controls = 1;
  bench.ccds.open_field = {Polynomial::variable(2, 1)};
  const Box box = Box::centered(1, 3.0);
  bench.ccds.init_set = SemialgebraicSet::ball(Vec{0.0}, 0.5);
  bench.ccds.domain = SemialgebraicSet::from_box(box);
  bench.ccds.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0}, 2.0, box);
  bench.ccds.control_bound = 3.0;
  bench.pac.max_degree = 2;
  bench.barrier_degrees = {2};
  return bench;
}

ControlLaw destabilizing_law() {
  return [](const Vec& x) { return Vec{2.0 * x[0]}; };
}

// ---- Minimal flat-JSON helpers (string and number fields, one per key).

std::string json_escape(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  return out;
}

std::string extract_string(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": \"";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return {};
  std::string out;
  for (std::size_t i = pos + needle.size(); i < json.size(); ++i) {
    if (json[i] == '\\') {
      ++i;
      if (i < json.size()) out.push_back(json[i]);
    } else if (json[i] == '"') {
      break;
    } else {
      out.push_back(json[i]);
    }
  }
  return out;
}

double extract_number(const std::string& json, const std::string& key) {
  const std::string needle = "\"" + key + "\": ";
  const auto pos = json.find(needle);
  if (pos == std::string::npos) return std::nan("");
  return std::strtod(json.c_str() + pos + needle.size(), nullptr);
}

/// The persisted signature of one golden pipeline run.
struct GoldenRecord {
  std::string verdict;
  std::string failure_stage;
  std::string controller;  // polynomial, full precision
  std::string barrier;     // polynomial, full precision (empty if none)
  std::string lambda;      // the certificate's lambda(x) (empty if none);
                           // consumed by independent_check_test as the
                           // stored-certificate input for perturbation tests
  double pac_error = 0.0;
  double pac_eps = 0.0;
  int pac_degree = 0;
  int barrier_degree = 0;
};

GoldenRecord record_of(const SynthesisResult& result) {
  GoldenRecord rec;
  rec.verdict = result.verdict;
  rec.failure_stage = result.failure_stage;
  if (!result.controller.empty())
    rec.controller = result.controller.front().to_string(17);
  if (result.barrier.success) {
    rec.barrier = result.barrier.barrier.to_string(17);
    rec.lambda = result.barrier.lambda.to_string(17);
    rec.barrier_degree = result.barrier.degree;
  }
  rec.pac_error = result.pac.model.error;
  rec.pac_eps = result.pac.model.eps;
  rec.pac_degree = result.pac.model.degree;
  return rec;
}

void save_golden(const GoldenRecord& rec, const std::string& path) {
  std::ofstream os(path);
  ASSERT_TRUE(os.good()) << "cannot write " << path;
  os.precision(17);
  os << "{\n"
     << "  \"verdict\": \"" << json_escape(rec.verdict) << "\",\n"
     << "  \"failure_stage\": \"" << json_escape(rec.failure_stage) << "\",\n"
     << "  \"controller\": \"" << json_escape(rec.controller) << "\",\n"
     << "  \"barrier\": \"" << json_escape(rec.barrier) << "\",\n"
     << "  \"lambda\": \"" << json_escape(rec.lambda) << "\",\n"
     << "  \"pac_error\": " << rec.pac_error << ",\n"
     << "  \"pac_eps\": " << rec.pac_eps << ",\n"
     << "  \"pac_degree\": " << rec.pac_degree << ",\n"
     << "  \"barrier_degree\": " << rec.barrier_degree << "\n"
     << "}\n";
}

GoldenRecord load_golden(const std::string& path, bool& found) {
  GoldenRecord rec;
  std::ifstream is(path);
  found = is.good();
  if (!found) return rec;
  std::stringstream buffer;
  buffer << is.rdbuf();
  const std::string json = buffer.str();
  rec.verdict = extract_string(json, "verdict");
  rec.failure_stage = extract_string(json, "failure_stage");
  rec.controller = extract_string(json, "controller");
  rec.barrier = extract_string(json, "barrier");
  rec.lambda = extract_string(json, "lambda");
  rec.pac_error = extract_number(json, "pac_error");
  rec.pac_eps = extract_number(json, "pac_eps");
  rec.pac_degree = static_cast<int>(extract_number(json, "pac_degree"));
  rec.barrier_degree =
      static_cast<int>(extract_number(json, "barrier_degree"));
  return rec;
}

void expect_poly_near(const std::string& got, const std::string& want,
                      std::size_t num_vars, const char* what) {
  ASSERT_EQ(got.empty(), want.empty()) << what;
  if (got.empty()) return;
  const Polynomial pg = parse_polynomial(got, num_vars);
  const Polynomial pw = parse_polynomial(want, num_vars);
  EXPECT_LT(max_coefficient_diff(pg, pw), kCoeffTol) << what;
}

void compare_to_golden(const SynthesisResult& result,
                       const std::string& golden_name,
                       std::size_t num_vars) {
  const std::string path = std::string(SCS_GOLDEN_DIR) + "/" + golden_name;
  const GoldenRecord rec = record_of(result);
  if (std::getenv("SCS_UPDATE_GOLDEN") != nullptr) {
    save_golden(rec, path);
    GTEST_SKIP() << "golden updated: " << path;
  }
  bool found = false;
  const GoldenRecord want = load_golden(path, found);
  ASSERT_TRUE(found) << "missing golden file " << path
                     << " (run with SCS_UPDATE_GOLDEN=1 to create)";
  EXPECT_EQ(rec.verdict, want.verdict);
  EXPECT_EQ(rec.failure_stage, want.failure_stage);
  EXPECT_EQ(rec.pac_degree, want.pac_degree);
  EXPECT_EQ(rec.barrier_degree, want.barrier_degree);
  EXPECT_NEAR(rec.pac_error, want.pac_error,
              kScalarTol * std::max(1.0, std::fabs(want.pac_error)));
  EXPECT_NEAR(rec.pac_eps, want.pac_eps,
              kScalarTol * std::max(1.0, std::fabs(want.pac_eps)));
  expect_poly_near(rec.controller, want.controller, num_vars, "controller");
  expect_poly_near(rec.barrier, want.barrier, num_vars, "barrier");
  expect_poly_near(rec.lambda, want.lambda, num_vars, "lambda");
}

/// Run at an explicit worker count, restoring the default afterwards.
SynthesisResult run_with_threads(const Benchmark& bench, const ControlLaw& law,
                                 const PipelineConfig& cfg,
                                 std::size_t threads) {
  set_parallel_threads(threads);
  SynthesisResult result = synthesize_from_law(bench, law, cfg);
  set_parallel_threads(0);
  return result;
}

TEST(GoldenPipeline, VerifiedC1MatchesGoldenAcrossThreadCounts) {
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);
  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.seed = 3;

  const SynthesisResult r1 =
      run_with_threads(bench, pendulum_teacher(), cfg, 1);
  const SynthesisResult r4 =
      run_with_threads(bench, pendulum_teacher(), cfg, 4);

  // Bitwise thread-count determinism: the full-precision signatures of the
  // two runs must agree exactly, not merely within tolerance.
  EXPECT_EQ(record_of(r1).controller, record_of(r4).controller);
  EXPECT_EQ(record_of(r1).barrier, record_of(r4).barrier);
  EXPECT_EQ(r1.pac.model.error, r4.pac.model.error);
  EXPECT_EQ(r1.verdict, r4.verdict);

  ASSERT_EQ(r1.verdict, "VERIFIED")
      << r1.failure_stage << ": " << r1.failure_message;
  compare_to_golden(r1, "c1_verified.json", bench.ccds.num_states);
}

TEST(GoldenPipeline, UnstableSystemIsDeterministicallyUnverified) {
  const Benchmark bench = unstable_benchmark();
  PipelineConfig cfg;
  cfg.fast_mode = true;
  cfg.seed = 5;

  const SynthesisResult r1 =
      run_with_threads(bench, destabilizing_law(), cfg, 1);
  const SynthesisResult r4 =
      run_with_threads(bench, destabilizing_law(), cfg, 4);

  EXPECT_EQ(record_of(r1).controller, record_of(r4).controller);
  EXPECT_EQ(r1.pac.model.error, r4.pac.model.error);
  EXPECT_EQ(r1.verdict, r4.verdict);

  ASSERT_EQ(r1.verdict, "UNVERIFIED");
  EXPECT_FALSE(r1.success);
  EXPECT_FALSE(r1.failure_message.empty());
  compare_to_golden(r1, "unstable_unverified.json", bench.ccds.num_states);
}

}  // namespace
}  // namespace scs
