// Additional SOS-compiler coverage: shared variables across identities,
// derivative-term compilation against hand-expanded equations, and
// diagnostics on infeasible programs.
#include <gtest/gtest.h>

#include "poly/basis.hpp"
#include "sos/sos_program.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

Polynomial var(std::size_t n, std::size_t i) {
  return Polynomial::variable(n, i);
}

TEST(SosProgramExtra, SharedVariableAcrossIdentities) {
  // One free quadratic B constrained by two identities simultaneously:
  //   B - x1^2 - s_a       == 0   (B >= x1^2 globally, as an SOS gap)
  //   (x1^2 + 4 - B) - s_b == 0   (B <= x1^2 + 4 globally)
  // Both must hold for the same B.
  SosProgram prog(1);
  const auto b = prog.add_free_poly(monomials_up_to(1, 2));
  const auto sa = prog.add_sos_poly(monomials_up_to(1, 1));
  const auto sb = prog.add_sos_poly(monomials_up_to(1, 1));
  const Polynomial one = Polynomial::constant(1, 1.0);
  const auto x = var(1, 0);
  prog.add_identity(-(x * x), {{one, b, {}}, {-one, sa, {}}});
  prog.add_identity(x * x + Polynomial::constant(1, 4.0),
                    {{-one, b, {}}, {-one, sb, {}}});
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible) << result.failure_reason;
  const Polynomial bb = result.value(b);
  // x^2 <= B <= x^2 + 4 on sampled points.
  for (double t = -1.5; t <= 1.5; t += 0.25) {
    const double v = bb.evaluate(Vec{t});
    EXPECT_GE(v, t * t - 1e-4);
    EXPECT_LE(v, t * t + 4.0 + 1e-4);
  }
}

TEST(SosProgramExtra, DerivativeTermEquationsMatchHandExpansion) {
  // Identity: x2 * dB/dx1 - 3 x1 x2 == 0 over B in span{1, x1, x2, x1^2}.
  // Hand expansion: dB/dx1 = b_{x1} + 2 b_{x1^2} x1, so the identity's
  // monomial equations are:
  //   x2:      b_{x1} = 0
  //   x1 x2:   2 b_{x1^2} - 3 = 0.
  SosProgram prog(2);
  std::vector<Monomial> basis = {Monomial(2), Monomial({1, 0}),
                                 Monomial({0, 1}), Monomial({2, 0})};
  const auto b = prog.add_free_poly(basis);
  prog.add_identity(-(var(2, 0) * var(2, 1) * 3.0), {{var(2, 1), b, 0}});
  const SdpProblem sdp = prog.compile();
  EXPECT_EQ(sdp.constraints.size(), 2u);
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_NEAR(result.value(b).coefficient(Monomial({2, 0})), 1.5, 1e-6);
  EXPECT_NEAR(result.value(b).coefficient(Monomial({1, 0})), 0.0, 1e-6);
}

TEST(SosProgramExtra, InfeasibleReportsReason) {
  // -1 - s == 0 with s SOS: impossible (s(x) = -1 < 0).
  SosProgram prog(1);
  const auto s = prog.add_sos_poly(monomials_up_to(1, 0));
  prog.add_identity(Polynomial::constant(1, -1.0),
                    {{-Polynomial::constant(1, 1.0), s, {}}});
  const auto result = prog.solve();
  EXPECT_FALSE(result.feasible);
  EXPECT_FALSE(result.failure_reason.empty());
}

TEST(SosProgramExtra, MultiplierPolynomialsScaleEquations) {
  // q(x) * f == target with q = x1 + 2: checks multiplier expansion.
  SosProgram prog(1);
  const auto f = prog.add_free_poly(monomials_up_to(1, 1));
  const auto x = var(1, 0);
  const Polynomial q = x + Polynomial::constant(1, 2.0);
  // q * f == x^2 + 2x  =>  f == x.
  prog.add_identity(-(x * x + x * 2.0), {{q, f, {}}});
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_LT(max_coefficient_diff(result.value(f), x), 1e-6);
}

TEST(SosProgramExtra, GramEigenvalueReported) {
  SosProgram prog(1);
  const auto s = prog.add_sos_poly(monomials_up_to(1, 1));
  const auto x = var(1, 0);
  // s == (x + 1)^2 exactly.
  prog.add_identity(-(x + Polynomial::constant(1, 1.0)).pow(2),
                    {{Polynomial::constant(1, 1.0), s, {}}});
  const auto result = prog.solve();
  ASSERT_TRUE(result.feasible);
  EXPECT_GT(result.min_gram_eigenvalue, -1e-8);
}

TEST(SosProgramExtra, RejectsForeignVariables) {
  SosProgram prog(2);
  EXPECT_THROW(prog.add_free_poly(monomials_up_to(3, 1)), PreconditionError);
  const auto f = prog.add_free_poly(monomials_up_to(2, 1));
  EXPECT_THROW(
      prog.add_identity(Polynomial(3),
                        {{Polynomial::constant(2, 1.0), f, {}}}),
      PreconditionError);
}

}  // namespace
}  // namespace scs
