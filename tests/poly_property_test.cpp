// Seeded property tests across the scs_poly layer (~200 randomized cases):
// ring axioms on random polynomials, Lie-derivative linearity and the
// product (Leibniz) rule, and compose-vs-evaluate agreement for
// substitution, variable scaling, and closed-loop composition. Each suite
// is parameterized by an explicit seed so a failure replays exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "poly/basis.hpp"
#include "poly/lie.hpp"
#include "poly/polynomial.hpp"
#include "util/rng.hpp"

namespace scs {
namespace {

Polynomial random_poly(std::size_t n, int degree, Rng& rng) {
  const auto basis = monomials_up_to(n, degree);
  Vec c(basis.size());
  for (auto& v : c) v = rng.uniform(-2.0, 2.0);
  return Polynomial::from_coefficients(basis, c);
}

std::vector<Polynomial> random_field(std::size_t n, int degree, Rng& rng) {
  std::vector<Polynomial> f;
  for (std::size_t i = 0; i < n; ++i) f.push_back(random_poly(n, degree, rng));
  return f;
}

// ---------------------------------------------------------------------------
// Ring axioms. 60 seeds x (7 coefficient identities + 4 evaluation points).

class PolyRing : public ::testing::TestWithParam<int> {};

TEST_P(PolyRing, AxiomsHoldOnRandomPolynomials) {
  Rng rng(GetParam());
  const std::size_t n = 1 + rng.index(4);
  const Polynomial a = random_poly(n, 1 + rng.index(3), rng);
  const Polynomial b = random_poly(n, 1 + rng.index(3), rng);
  const Polynomial c = random_poly(n, 1 + rng.index(2), rng);
  const Polynomial one = Polynomial::constant(n, 1.0);
  const Polynomial zero(n);

  // Additive group.
  EXPECT_LT(max_coefficient_diff((a + b) + c, a + (b + c)), 1e-12);
  EXPECT_LT(max_coefficient_diff(a + b, b + a), 1e-12);
  EXPECT_TRUE((a - a).is_zero());
  EXPECT_LT(max_coefficient_diff(a + zero, a), 1e-15);
  // Multiplicative monoid + distributivity.
  EXPECT_LT(max_coefficient_diff(a * b, b * a), 1e-12);
  EXPECT_LT(max_coefficient_diff((a * b) * c, a * (b * c)), 1e-9);
  EXPECT_LT(max_coefficient_diff(a * one, a), 1e-15);
  EXPECT_LT(max_coefficient_diff(a * (b + c), a * b + a * c), 1e-10);
  // Scalar compatibility: 3a = a + a + a.
  EXPECT_LT(max_coefficient_diff(a * 3.0, a + a + a), 1e-12);

  // Evaluation is a ring homomorphism at random points.
  for (int t = 0; t < 4; ++t) {
    const Vec x(rng.uniform_vector(n, -1.5, 1.5));
    EXPECT_NEAR((a * b).evaluate(x), a.evaluate(x) * b.evaluate(x), 1e-8);
    EXPECT_NEAR((a - b).evaluate(x), a.evaluate(x) - b.evaluate(x), 1e-10);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PolyRing, ::testing::Range(1, 61));

// ---------------------------------------------------------------------------
// Lie derivative: linearity in B and the Leibniz product rule. 60 seeds.

class LieDerivative : public ::testing::TestWithParam<int> {};

TEST_P(LieDerivative, LinearityAndProductRule) {
  Rng rng(1000 + GetParam());
  const std::size_t n = 2 + rng.index(3);
  const auto f = random_field(n, 2, rng);
  const Polynomial b1 = random_poly(n, 1 + rng.index(3), rng);
  const Polynomial b2 = random_poly(n, 1 + rng.index(3), rng);
  const double alpha = rng.uniform(-3.0, 3.0);
  const double beta = rng.uniform(-3.0, 3.0);

  // L_f is linear: L_f(alpha B1 + beta B2) = alpha L_f B1 + beta L_f B2.
  const Polynomial lhs = lie_derivative(b1 * alpha + b2 * beta, f);
  const Polynomial rhs =
      lie_derivative(b1, f) * alpha + lie_derivative(b2, f) * beta;
  EXPECT_LT(max_coefficient_diff(lhs, rhs), 1e-9);

  // Leibniz: L_f(B1 B2) = B1 L_f B2 + B2 L_f B1.
  const Polynomial prod = lie_derivative(b1 * b2, f);
  const Polynomial leibniz =
      b1 * lie_derivative(b2, f) + b2 * lie_derivative(b1, f);
  EXPECT_LT(max_coefficient_diff(prod, leibniz), 1e-8);

  // L_f of a constant vanishes.
  EXPECT_TRUE(lie_derivative(Polynomial::constant(n, 4.2), f).is_zero());

  // Chain check at a random point: L_f B(x) = grad B(x) . f(x).
  const Vec x(rng.uniform_vector(n, -1.0, 1.0));
  double grad_dot_f = 0.0;
  for (std::size_t i = 0; i < n; ++i)
    grad_dot_f += b1.derivative(i).evaluate(x) * f[i].evaluate(x);
  EXPECT_NEAR(lie_derivative(b1, f).evaluate(x), grad_dot_f, 1e-8);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LieDerivative, ::testing::Range(1, 61));

// ---------------------------------------------------------------------------
// Compose-vs-evaluate agreement: symbolic substitution / scaling /
// closed-loop composition must match pointwise evaluation. 60 seeds.

class ComposeEvaluate : public ::testing::TestWithParam<int> {};

TEST_P(ComposeEvaluate, SubstituteMatchesPointwise) {
  Rng rng(2000 + GetParam());
  const std::size_t n = 2 + rng.index(2);
  const Polynomial p = random_poly(n, 1 + rng.index(3), rng);
  const Polynomial q = random_poly(n, 1 + rng.index(2), rng);
  const std::size_t var = rng.index(n);
  const Polynomial composed = p.substitute(var, q);

  for (int t = 0; t < 4; ++t) {
    const Vec x(rng.uniform_vector(n, -1.2, 1.2));
    Vec x_sub = x;
    x_sub[var] = q.evaluate(x);
    EXPECT_NEAR(composed.evaluate(x), p.evaluate(x_sub),
                1e-7 * std::max(1.0, std::fabs(p.evaluate(x_sub))));
  }
}

TEST_P(ComposeEvaluate, ScaleVarsMatchesPointwise) {
  Rng rng(3000 + GetParam());
  const std::size_t n = 1 + rng.index(3);
  const Polynomial p = random_poly(n, 1 + rng.index(3), rng);
  Vec s(n);
  for (auto& si : s) si = rng.uniform(0.2, 3.0);
  const Polynomial scaled = p.scale_vars(s);
  for (int t = 0; t < 4; ++t) {
    const Vec x(rng.uniform_vector(n, -1.0, 1.0));
    Vec sx = x;
    for (std::size_t i = 0; i < n; ++i) sx[i] = s[i] * x[i];
    EXPECT_NEAR(scaled.evaluate(x), p.evaluate(sx),
                1e-8 * std::max(1.0, std::fabs(p.evaluate(sx))));
  }
}

TEST_P(ComposeEvaluate, ClosedLoopMatchesPointwise) {
  Rng rng(4000 + GetParam());
  const std::size_t n = 2;  // states
  const std::size_t m = 1 + rng.index(2);  // controls
  // Open-loop field over (x, u).
  std::vector<Polynomial> open_field;
  for (std::size_t i = 0; i < n; ++i)
    open_field.push_back(random_poly(n + m, 2, rng));
  // Controller polynomials over x only.
  std::vector<Polynomial> controller;
  for (std::size_t k = 0; k < m; ++k)
    controller.push_back(random_poly(n, 1 + rng.index(2), rng));

  const auto closed = close_loop(open_field, n, controller);
  ASSERT_EQ(closed.size(), n);
  for (int t = 0; t < 4; ++t) {
    const Vec x(rng.uniform_vector(n, -1.0, 1.0));
    Vec xu(n + m);
    for (std::size_t i = 0; i < n; ++i) xu[i] = x[i];
    for (std::size_t k = 0; k < m; ++k)
      xu[n + k] = controller[k].evaluate(x);
    for (std::size_t i = 0; i < n; ++i) {
      const double expect = open_field[i].evaluate(xu);
      EXPECT_NEAR(closed[i].evaluate(x), expect,
                  1e-7 * std::max(1.0, std::fabs(expect)));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComposeEvaluate, ::testing::Range(1, 21));

}  // namespace
}  // namespace scs
