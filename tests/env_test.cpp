// Tests for the RL environment: reward shaping Eq. (4), termination
// handling, and actuator scaling.
#include <gtest/gtest.h>

#include <cmath>

#include "rl/env.hpp"
#include "systems/benchmarks.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

Ccds simple_system() {
  Ccds sys;
  sys.name = "env-toy";
  sys.num_states = 1;
  sys.num_controls = 1;
  sys.open_field = {Polynomial::variable(2, 1)};  // xdot = u
  const Box box = Box::centered(1, 4.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0}, 0.5);
  sys.domain = SemialgebraicSet::from_box(box);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0}, 2.0, box);
  sys.control_bound = 1.0;
  return sys;
}

TEST(ControlEnv, ResetFromInitSamplesTheta) {
  ControlEnv env(simple_system(), {});
  Rng rng(1);
  for (int i = 0; i < 20; ++i) {
    const Vec x = env.reset_from_init(rng);
    EXPECT_LE(std::fabs(x[0]), 0.5);
  }
}

TEST(ControlEnv, TrainingResetMixesThetaAndDomain) {
  EnvConfig cfg;
  cfg.restart_domain_fraction = 0.5;
  ControlEnv env(simple_system(), cfg);
  Rng rng(1);
  int outside_theta = 0;
  for (int i = 0; i < 100; ++i)
    if (std::fabs(env.reset(rng)[0]) > 0.5) ++outside_theta;
  EXPECT_GT(outside_theta, 10);
  EXPECT_LT(outside_theta, 90);
}

TEST(ControlEnv, RewardMatchesEq4OutsideBelt) {
  // r = beta1 * dist(X_u, x); at x = 0 the distance to the shell is 2.
  EnvConfig cfg;
  ControlEnv env(simple_system(), cfg);
  EXPECT_NEAR(env.reward_at(Vec{0.0}), 2.0, 1e-12);
  EXPECT_NEAR(env.reward_at(Vec{1.0}), 1.0, 1e-12);
}

TEST(ControlEnv, RewardPenalizedInsideBelt) {
  // Inside the belt (dist < delta = 0.1) the penalty min(beta2/dist, cap)
  // kicks in; with dist = 0.05 the raw penalty 5/0.05 = 100 is capped at 5.
  EnvConfig cfg;
  ControlEnv env(simple_system(), cfg);
  const double r = env.reward_at(Vec{1.95});
  EXPECT_NEAR(r, 1.0 * 0.05 - 5.0, 1e-9);
}

TEST(ControlEnv, BeltPenaltyCanBeDisabled) {
  EnvConfig cfg;
  cfg.use_belt_penalty = false;
  ControlEnv env(simple_system(), cfg);
  EXPECT_NEAR(env.reward_at(Vec{1.95}), 0.05, 1e-9);
}

TEST(ControlEnv, StepIntegratesAndScalesAction) {
  EnvConfig cfg;
  cfg.dt = 0.1;
  ControlEnv env(simple_system(), cfg);
  Rng rng(2);
  env.reset(rng);
  const Vec x0 = env.state();
  // Normalized action 0.5 -> physical u = 0.5 (bound 1): x moves by ~0.05.
  const StepResult sr = env.step(Vec{0.5});
  EXPECT_NEAR(sr.next_state[0] - x0[0], 0.05, 1e-9);
  EXPECT_FALSE(sr.done);
}

TEST(ControlEnv, ActionClampedToUnitBox) {
  EnvConfig cfg;
  cfg.dt = 0.1;
  ControlEnv env(simple_system(), cfg);
  Rng rng(3);
  env.reset(rng);
  const Vec x0 = env.state();
  const StepResult sr = env.step(Vec{100.0});  // clamps to 1.0
  EXPECT_NEAR(sr.next_state[0] - x0[0], 0.1, 1e-9);
}

TEST(ControlEnv, TerminatesOnUnsafeEntryWhenConfigured) {
  EnvConfig cfg;
  cfg.dt = 0.5;
  cfg.max_steps = 1000;
  cfg.terminate_on_violation = true;
  ControlEnv env(simple_system(), cfg);
  Rng rng(4);
  env.reset(rng);
  // Drive hard right until the trajectory crosses |x| = 2.
  StepResult sr;
  for (int i = 0; i < 20; ++i) {
    sr = env.step(Vec{1.0});
    if (sr.done) break;
  }
  EXPECT_TRUE(sr.done);
  EXPECT_TRUE(sr.violated);
  EXPECT_DOUBLE_EQ(sr.reward, -cfg.terminal_penalty);
}

TEST(ControlEnv, UnsafeEntryNonTerminalByDefault) {
  // Training default: entering X_u flags the violation but the episode
  // continues with the Eq. (4) capped penalty (-Delta r_min).
  EnvConfig cfg;
  cfg.dt = 0.5;
  cfg.max_steps = 1000;
  cfg.action_penalty = 0.0;  // keep the asserted rewards exact
  ControlEnv env(simple_system(), cfg);
  Rng rng(4);
  env.reset(rng);
  StepResult sr;
  for (int i = 0; i < 10; ++i) {
    sr = env.step(Vec{1.0});
    if (sr.violated) break;
  }
  EXPECT_TRUE(sr.violated);
  EXPECT_FALSE(sr.done);
  EXPECT_DOUBLE_EQ(sr.reward, -cfg.penalty_cap);
  // Leaving Psi (|x| > 4) *is* terminal.
  for (int i = 0; i < 20 && !sr.done; ++i) sr = env.step(Vec{1.0});
  EXPECT_TRUE(sr.done);
  EXPECT_DOUBLE_EQ(sr.reward, -cfg.terminal_penalty);
}

TEST(ControlEnv, DomainRestartsCoverPsi) {
  EnvConfig cfg;
  cfg.restart_domain_fraction = 1.0;
  ControlEnv env(simple_system(), cfg);
  Rng rng(11);
  bool saw_outside_theta = false;
  for (int i = 0; i < 50; ++i) {
    const Vec x = env.reset(rng);
    if (std::fabs(x[0]) > 0.5) saw_outside_theta = true;
  }
  EXPECT_TRUE(saw_outside_theta);
  // Evaluation resets always come from Theta.
  for (int i = 0; i < 20; ++i)
    EXPECT_LE(std::fabs(env.reset_from_init(rng)[0]), 0.5);
}

TEST(ControlEnv, TerminatesAtHorizon) {
  EnvConfig cfg;
  cfg.max_steps = 5;
  ControlEnv env(simple_system(), cfg);
  Rng rng(5);
  env.reset(rng);
  StepResult sr;
  for (int i = 0; i < 5; ++i) sr = env.step(Vec{0.0});
  EXPECT_TRUE(sr.done);
  EXPECT_FALSE(sr.violated);
}

TEST(ControlEnv, PaperConstantsAreDefaults) {
  const EnvConfig cfg;
  EXPECT_DOUBLE_EQ(cfg.beta1, 1.0);
  EXPECT_DOUBLE_EQ(cfg.beta2, 5.0);
  EXPECT_DOUBLE_EQ(cfg.belt_delta, 0.1);
}

TEST(ControlEnv, RejectsWrongActionSize) {
  ControlEnv env(simple_system(), {});
  Rng rng(6);
  env.reset(rng);
  EXPECT_THROW(env.step(Vec{0.0, 0.0}), PreconditionError);
}

}  // namespace
}  // namespace scs
