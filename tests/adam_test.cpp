// Tests for the Adam optimizer.
#include <gtest/gtest.h>

#include <cmath>

#include "nn/adam.hpp"
#include "util/check.hpp"

namespace scs {
namespace {

TEST(Adam, MinimizesQuadratic) {
  // f(x) = (x - 3)^2: Adam must converge to 3.
  Adam opt(1, {.lr = 0.1});
  Vec x{0.0};
  for (int i = 0; i < 500; ++i) {
    const Vec g{2.0 * (x[0] - 3.0)};
    opt.step(x, g);
  }
  EXPECT_NEAR(x[0], 3.0, 1e-3);
}

TEST(Adam, FirstStepHasSizeLr) {
  // With bias correction, the first Adam step is ~lr * sign(grad).
  Adam opt(2, {.lr = 0.01});
  Vec x{0.0, 0.0};
  opt.step(x, Vec{5.0, -0.001});
  EXPECT_NEAR(x[0], -0.01, 1e-6);
  EXPECT_NEAR(x[1], 0.01, 1e-6);
}

TEST(Adam, ResetClearsState) {
  Adam opt(1, {.lr = 0.1});
  Vec x{0.0};
  opt.step(x, Vec{1.0});
  opt.reset();
  Vec y{0.0};
  opt.step(y, Vec{1.0});
  EXPECT_NEAR(y[0], -0.1, 1e-9);
}

TEST(Adam, MinimizesRosenbrockish) {
  // A tougher 2-D bowl: f = (1-a)^2 + 5 (b - a^2)^2.
  Adam opt(2, {.lr = 0.02});
  Vec x{-1.0, 1.0};
  for (int i = 0; i < 8000; ++i) {
    const double a = x[0], b = x[1];
    Vec g{-2.0 * (1.0 - a) - 20.0 * (b - a * a) * a, 10.0 * (b - a * a)};
    opt.step(x, g);
  }
  EXPECT_NEAR(x[0], 1.0, 0.05);
  EXPECT_NEAR(x[1], 1.0, 0.1);
}

TEST(Adam, RejectsBadInputs) {
  EXPECT_THROW(Adam(1, {.lr = 0.0}), PreconditionError);
  EXPECT_THROW(Adam(1, {.beta1 = 1.0}), PreconditionError);
  Adam opt(2);
  Vec x{0.0};
  EXPECT_THROW(opt.step(x, Vec{1.0}), PreconditionError);
}

}  // namespace
}  // namespace scs
