// Bring your own system: define a CCDS from scratch (a controlled Van der
// Pol oscillator), wrap it as a Benchmark, and run the synthesis pipeline.
//
// This is the template to copy when applying the library to a new plant.
#include <iostream>

#include "core/pipeline.hpp"

int main() {
  using namespace scs;

  // ---- 1. Dynamics over (x1, x2, u): a reversed Van der Pol oscillator
  // with damping injection through u.
  //      x1' = x2
  //      x2' = -x1 + 0.8 (1 - x1^2) x2 * (-1) + u
  Ccds sys;
  sys.name = "van-der-pol";
  sys.num_states = 2;
  sys.num_controls = 1;
  const auto x1 = Polynomial::variable(3, 0);
  const auto x2 = Polynomial::variable(3, 1);
  const auto u = Polynomial::variable(3, 2);
  const auto one = Polynomial::constant(3, 1.0);
  sys.open_field = {
      x2,
      -x1 - (one - x1 * x1) * x2 * 0.8 + u,
  };

  // ---- 2. Safety geometry: start near the origin, never leave the r = 2
  // ball while staying inside the [-3, 3]^2 operating box.
  const Box psi = Box::centered(2, 3.0);
  sys.init_set = SemialgebraicSet::ball(Vec{0.0, 0.0}, 0.8);
  sys.domain = SemialgebraicSet::from_box(psi);
  sys.unsafe_set = SemialgebraicSet::outside_ball(Vec{0.0, 0.0}, 2.0, psi);
  sys.control_bound = 4.0;
  sys.validate();

  // ---- 3. Wrap as a Benchmark with pipeline budgets.
  Benchmark bench;
  bench.id = BenchmarkId::kC1;  // id is only used for bookkeeping
  bench.name = sys.name;
  bench.ccds = sys;
  bench.hidden_layers = {30, 30, 30};
  bench.rl = {150, 200, 0.02};
  bench.pac.tau = 0.05;
  bench.barrier_degrees = {2, 4};

  // ---- 4. Synthesize.
  PipelineConfig config;
  config.seed = 42;
  config.pac_fit.max_samples = 20000;
  const SynthesisResult result = synthesize(bench, config);

  std::cout << "RL safety rate: " << result.rl_eval.safety_rate << "\n";
  if (!result.controller.empty())
    std::cout << "surrogate controller p(x) = "
              << result.controller[0].to_string(4) << "\n";
  if (result.barrier.success)
    std::cout << "barrier certificate (degree " << result.barrier.degree
              << "): B(x) = " << result.barrier.barrier.to_string(4) << "\n";
  std::cout << (result.success ? "verified safe." : "not verified: ")
            << result.barrier.failure_reason << "\n";
  return result.success ? 0 : 1;
}
