// Synthesis-as-a-service daemon: watch a spool directory for JSONL job
// requests, dedupe them through the stage-cache key, run cold jobs on a
// bounded sharded priority queue, and answer repeats from memory.
//
//   ./synthesize_server --spool /tmp/scs-spool --workers 2
//       --cache-dir /tmp/scs-cache --ledger runs.jsonl
//
// Clients drop request files into <spool>/inbox/ (see serve_cli);
// results appear as <spool>/results/<id>.json and <spool>/status.json is
// refreshed every poll. SIGTERM / SIGINT -- or touching <spool>/ctl/drain
// -- triggers a graceful drain: the inbox stops being ingested, queued
// jobs finish, every finished job is swept to results/, then the process
// exits 0.
//
// Options:
//   --spool <dir>     spool root (required)
//   --workers <n>     worker threads consuming the job queue (default 2)
//   --queue-cap <n>   bounded queue capacity; beyond it requests stay in
//                     the inbox as the overflow buffer (default 64)
//   --cache-dir <dir> artifact store shared by all jobs (enables the warm
//                     fast path across restarts; overrides SCS_CACHE_DIR)
//   --no-cache        disable the artifact store
//   --ledger <file>   per-job run-ledger records (source "serve" for cold
//                     runs, "serve-hit" for warm hits)
//   --poll-ms <n>     inbox poll interval (default 200)
//   --max-jobs <n>    exit after ingesting n requests (0 = run forever;
//                     used by tests and the CI smoke)
//   --idle-exit <s>   exit after s seconds with an empty inbox, no pending
//                     jobs, and nothing queued (0 = never; tests/CI)
//   --trace <file>    per-request Chrome trace: every span/instant of a
//                     request's lifecycle (spool ingest, queue wait, solve
//                     incl. race arms, cancellation, result write) carries
//                     its id as args.rid; written at drain
//   --instance <name> label stamped into status.json / the ledger daemon
//                     summary (default: the spool directory name)
//   --no-metrics      disable the metrics registry (on by default here:
//                     the daemon is the thing the exposition files
//                     observe; status.json latency quantiles and
//                     metrics.txt need it)
//
// Live exposition: every poll refreshes <spool>/status.json (schema 2 --
// queue depth/capacity, in-flight, counters, latency quantiles) and
// <spool>/metrics.txt (Prometheus text). At drain the daemon appends a
// "serve_daemon" summary record to the ledger -- the per-instance input
// for `report_cli fleet`.
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <thread>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/server.hpp"
#include "serve/spool.hpp"
#include "util/stopwatch.hpp"

namespace {

volatile std::sig_atomic_t g_stop = 0;

void handle_signal(int) { g_stop = 1; }

void print_usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --spool <dir> [--workers <n>] [--queue-cap <n>]\n"
            << "       [--cache-dir <dir> | --no-cache] [--ledger <file>]\n"
            << "       [--poll-ms <n>] [--max-jobs <n>] [--idle-exit <s>]\n"
            << "       [--trace <file>] [--instance <name>] [--no-metrics]\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scs;
  std::string spool_root;
  ServerConfig config;
  int poll_ms = 200;
  std::uint64_t max_jobs = 0;
  double idle_exit_seconds = 0.0;
  std::string trace_path;
  std::string instance;
  bool metrics_on = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--spool") {
      spool_root = next("a directory");
    } else if (arg == "--workers") {
      config.workers = std::atoi(next("a count"));
    } else if (arg == "--queue-cap") {
      config.queue_capacity =
          static_cast<std::size_t>(std::atoll(next("a count")));
    } else if (arg == "--cache-dir") {
      config.store.mode = StoreConfig::Mode::kOn;
      config.store.cache_dir = next("a directory");
    } else if (arg == "--no-cache") {
      config.store.mode = StoreConfig::Mode::kOff;
    } else if (arg == "--ledger") {
      config.ledger_path = next("a file");
    } else if (arg == "--poll-ms") {
      poll_ms = std::atoi(next("a count"));
    } else if (arg == "--max-jobs") {
      max_jobs = std::strtoull(next("a count"), nullptr, 10);
    } else if (arg == "--idle-exit") {
      idle_exit_seconds = std::atof(next("a duration"));
    } else if (arg == "--trace") {
      trace_path = next("a file");
    } else if (arg == "--instance") {
      instance = next("a name");
    } else if (arg == "--no-metrics") {
      metrics_on = false;
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }
  if (spool_root.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  if (poll_ms < 1) poll_ms = 1;

  SpoolLayout layout{spool_root};
  std::string error;
  if (!spool_init(layout, &error)) {
    std::cerr << "spool init failed: " << error << "\n";
    return 1;
  }

  std::signal(SIGTERM, handle_signal);
  std::signal(SIGINT, handle_signal);

  // The daemon is observed through status.json/metrics.txt, so metrics are
  // on unless explicitly refused; tracing stays opt-in (it buffers events).
  if (metrics_on) set_metrics_enabled(true);
  if (!trace_path.empty()) trace_start(trace_path);

  SynthesisServer server(config);
  SpoolRunner runner(server, layout);
  if (!instance.empty()) runner.set_instance(instance);
  std::cout << "synthesize_server: watching " << layout.inbox() << " ("
            << config.workers << " workers, queue capacity "
            << config.queue_capacity << ")\n";
  runner.write_status();

  std::uint64_t ingested = 0;
  Stopwatch idle_clock;
  while (g_stop == 0) {
    const int n = runner.poll_once();
    ingested += static_cast<std::uint64_t>(n);
    if (runner.drain_requested()) break;
    if (max_jobs > 0 && ingested >= max_jobs) break;
    const bool idle = (n == 0) && runner.pending() == 0 &&
                      server.queue_depth() == 0;
    if (!idle) idle_clock.reset();
    if (idle_exit_seconds > 0.0 && idle_clock.seconds() >= idle_exit_seconds)
      break;
    std::this_thread::sleep_for(std::chrono::milliseconds(poll_ms));
  }

  // Graceful drain: no new work, queued jobs finish, every finished job is
  // swept into results/ before exit.
  std::cout << "synthesize_server: draining ("
            << (g_stop != 0 ? "signal" : "requested") << ")\n";
  server.drain();
  runner.poll_once();  // final sweep + status
  runner.append_daemon_summary();
  if (!trace_path.empty() && trace_write(trace_path))
    std::cout << "synthesize_server: trace written to " << trace_path << "\n";
  std::cout << "synthesize_server: done -- " << server.submitted()
            << " submitted, " << server.cold_runs() << " cold, "
            << server.warm_hits() << " warm, " << server.rejected()
            << " rejected, " << server.cancelled() << " cancelled\n";
  return 0;
}
