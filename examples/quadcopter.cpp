// C10: the 12-state linearized quadrotor -- the paper's largest benchmark.
// Demonstrates that the pipeline scales to dimension 12: a degree-1
// surrogate controller and a degree-2 barrier certificate, exactly the
// (d_p, d_B) = (1, 2) row of Table 2.
//
// Run:  ./quadcopter [episodes]
#include <cstdlib>
#include <iostream>

#include "core/pipeline.hpp"

int main(int argc, char** argv) {
  using namespace scs;

  const Benchmark quad = make_benchmark(BenchmarkId::kC10);
  std::cout << "System: 12-state linearized quadrotor (single collective-"
               "thrust input)\n"
            << "Theta: ball r=0.4, X_u: outside r=1.5, Psi: [-2,2]^12\n\n";

  PipelineConfig config;
  config.seed = 10;
  config.rl_episodes = (argc > 1) ? std::atoi(argv[1]) : 150;
  config.pac_fit.max_samples = 20000;  // drop for paper-exact K

  const SynthesisResult result = synthesize(quad, config);

  std::cout << "RL: " << result.dnn_structure << " actor, safety rate "
            << result.rl_eval.safety_rate << " (" << result.rl_seconds
            << " s)\n";
  std::cout << "PAC: degree " << result.pac.model.degree << ", e = "
            << result.pac.model.error << ", K = " << result.pac.model.samples
            << " (" << result.pac_seconds << " s)\n";
  if (result.barrier.success) {
    std::cout << "Barrier: degree " << result.barrier.degree << " in "
              << result.barrier_seconds << " s\n";
    std::cout << "Validation: " << result.validation.detail << "\n";
    std::cout << "\n=> verified safe controller for a 12-dimensional system\n";
  } else {
    std::cout << "Barrier failed: " << result.barrier.failure_reason << "\n";
  }
  return result.success ? 0 : 1;
}
