// Example 1 in detail: reproduces the paper's Table-1-style Algorithm-1
// trace on the pendulum, prints the surrogate controller and certificate,
// and dumps closed-loop trajectories for plotting.
//
// Run:  ./pendulum_study [trajectory.csv]
#include <cmath>
#include <fstream>
#include <iostream>

#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "ode/trajectory.hpp"
#include "pac/pac_fit.hpp"

int main(int argc, char** argv) {
  using namespace scs;

  const Benchmark bench = make_benchmark(BenchmarkId::kC1);

  // The auxiliary controller: a gravity-compensating law of the kind DDPG
  // converges to on this system (see examples/quickstart.cpp for the full
  // RL run). Using a fixed teacher makes this study deterministic.
  const ControlLaw teacher = [](const Vec& x) {
    const double x1 = x[0];
    return Vec{9.875 * x1 - 1.56 * x1 * x1 * x1 + 0.056 * std::pow(x1, 5) -
               x1 - 2.0 * x[1]};
  };

  // ---- Algorithm 1 with the paper's parameters (eta = 1e-6, tau = 0.05).
  Rng rng(7);
  const ScalarFn channel = [&teacher](const Vec& x) { return teacher(x)[0]; };
  const PacResult pac =
      pac_approximate(channel, bench.ccds.domain, bench.pac, rng);

  std::cout << "Algorithm 1 trace (compare with Table 1):\n"
            << format_table1(pac, bench.pac.tau) << "\n";
  if (!pac.success) {
    std::cout << "PAC approximation did not reach tau\n";
    return 1;
  }
  std::cout << "p(x) = " << pac.model.poly.to_string(5) << "\n\n";

  // ---- Barrier certificate for the closed loop under p(x).
  BarrierConfig bcfg;
  const BarrierResult barrier =
      synthesize_barrier(bench.ccds, {pac.model.poly}, bcfg);
  if (!barrier.success) {
    std::cout << "barrier synthesis failed: " << barrier.failure_reason
              << "\n";
    return 1;
  }
  std::cout << "B(x) of degree " << barrier.degree << " found in "
            << barrier.seconds << " s (lambda = "
            << barrier.lambda.to_string(3) << ")\n"
            << "B(x) = " << barrier.barrier.to_string(5) << "\n\n";

  // ---- Trajectory dump from the rim of Theta.
  const std::string path = (argc > 1) ? argv[1] : "pendulum_trajectories.csv";
  std::ofstream csv(path);
  csv << "trajectory,t,x1,x2,B\n";
  const VectorField field =
      bench.ccds.closed_loop_field(std::vector<Polynomial>{pac.model.poly});
  for (int k = 0; k < 8; ++k) {
    const double angle = 2.0 * M_PI * k / 8.0;
    const Vec x0{2.2 * std::cos(angle), 2.2 * std::sin(angle)};
    SimulateOptions opts;
    opts.dt = 0.01;
    opts.max_steps = 1500;
    const Trajectory traj = simulate(field, x0, opts);
    for (std::size_t i = 0; i < traj.size(); i += 10) {
      csv << k << ',' << traj.times[i] << ',' << traj.states[i][0] << ','
          << traj.states[i][1] << ','
          << barrier.barrier.evaluate(traj.states[i]) << '\n';
    }
    const double r = traj.back().norm();
    std::cout << "trajectory " << k << ": start radius 2.2 -> final radius "
              << r << (r < 2.5 ? "  (safe)" : "  (UNSAFE)") << "\n";
  }
  std::cout << "\nwrote " << path << "\n";
  return 0;
}
