// Spool client for synthesize_server.
//
//   ./serve_cli --spool <dir> submit C1 [--seed <n>] [--fast]
//               [--episodes <n>] [--priority <p>] [--deadline <s>]
//               [--id <name>] [--wait [--timeout <s>]]
//   ./serve_cli --spool <dir> status
//   ./serve_cli --spool <dir> result <id> [--wait [--timeout <s>]]
//   ./serve_cli --spool <dir> drain
//
// submit drops one request file into <spool>/inbox/ (atomic write, so the
// server never reads a half-written request). The request id defaults to
// "<benchmark>-s<seed>"; the result lands at <spool>/results/<id>.json.
// status prints <spool>/status.json. drain touches <spool>/ctl/drain --
// the server finishes queued jobs, sweeps results, and exits.
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "serve/request.hpp"
#include "serve/spool.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace scs;

void print_usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --spool <dir> <command> [options]\n"
      << "commands:\n"
      << "  submit <benchmark> [--seed <n>] [--fast] [--episodes <n>]\n"
      << "         [--priority <p>] [--deadline <s>] [--id <name>]\n"
      << "         [--wait [--timeout <s>]]\n"
      << "  status\n"
      << "  result <id> [--wait [--timeout <s>]]\n"
      << "  drain\n";
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

int print_result_file(const SpoolLayout& layout, const std::string& id,
                      bool wait, double timeout_seconds) {
  const std::string path = layout.results() + "/" + id + ".json";
  Stopwatch clock;
  for (;;) {
    std::string text;
    if (read_file(path, &text)) {
      std::cout << text << "\n";
      // Exit 0 on VERIFIED, 1 otherwise -- scriptable like synthesize_cli.
      return text.find("\"verdict\":\"VERIFIED\"") != std::string::npos ? 0 : 1;
    }
    if (!wait) {
      std::cerr << "no result yet at " << path << " (use --wait)\n";
      return 3;
    }
    if (timeout_seconds > 0.0 && clock.seconds() > timeout_seconds) {
      std::cerr << "timed out waiting for " << path << "\n";
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string spool_root, command;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spool") {
      if (i + 1 >= argc) {
        std::cerr << "--spool needs a directory\n";
        return 2;
      }
      spool_root = argv[++i];
    } else if (command.empty()) {
      command = arg;
    } else {
      rest.push_back(arg);
    }
  }
  if (spool_root.empty() || command.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  const SpoolLayout layout{spool_root};

  if (command == "status") {
    std::string text;
    if (!read_file(layout.status_file(), &text)) {
      std::cerr << "no status file at " << layout.status_file()
                << " (is the server running?)\n";
      return 3;
    }
    std::cout << text << "\n";
    return 0;
  }

  if (command == "drain") {
    if (!atomic_write_file(layout.drain_file(), "drain\n")) {
      std::cerr << "cannot write " << layout.drain_file() << "\n";
      return 1;
    }
    std::cout << "drain requested via " << layout.drain_file() << "\n";
    return 0;
  }

  bool wait = false;
  double timeout_seconds = 0.0;

  if (command == "result") {
    std::string id;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] == "--wait")
        wait = true;
      else if (rest[i] == "--timeout" && i + 1 < rest.size())
        timeout_seconds = std::atof(rest[++i].c_str());
      else if (id.empty())
        id = rest[i];
    }
    if (id.empty()) {
      print_usage(argv[0]);
      return 2;
    }
    return print_result_file(layout, id, wait, timeout_seconds);
  }

  if (command != "submit") {
    print_usage(argv[0]);
    return 2;
  }

  JobRequest request;
  request.benchmark.clear();
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= rest.size()) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(2);
      }
      return rest[++i].c_str();
    };
    if (arg == "--seed")
      request.seed = std::strtoull(next("a number"), nullptr, 10);
    else if (arg == "--fast")
      request.fast_mode = true;
    else if (arg == "--episodes")
      request.rl_episodes = std::atoi(next("a count"));
    else if (arg == "--priority")
      request.priority = std::atoi(next("a number"));
    else if (arg == "--deadline")
      request.deadline_seconds = std::atof(next("a duration"));
    else if (arg == "--id")
      request.id = next("a name");
    else if (arg == "--wait")
      wait = true;
    else if (arg == "--timeout")
      timeout_seconds = std::atof(next("a duration"));
    else if (request.benchmark.empty())
      request.benchmark = arg;
    else {
      print_usage(argv[0]);
      return 2;
    }
  }
  if (request.benchmark.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  if (request.id.empty())
    request.id = request.benchmark + "-s" + std::to_string(request.seed);

  // Unique inbox filename; the atomic write keeps half-written requests
  // invisible to the server.
  const std::string file = layout.inbox() + "/" + request.id + "-" +
                           std::to_string(::getpid()) + ".json";
  if (!atomic_write_file(file, job_request_json(request) + "\n")) {
    std::cerr << "cannot write " << file
              << " (did synthesize_server create the spool?)\n";
    return 1;
  }
  std::cout << "submitted " << request.id << " -> " << file << "\n";
  if (!wait) return 0;
  return print_result_file(layout, request.id, true, timeout_seconds);
}
