// Spool client for synthesize_server.
//
//   ./serve_cli --spool <dir> submit C1 [--seed <n>] [--fast]
//               [--episodes <n>] [--priority <p>] [--deadline <s>]
//               [--id <name>] [--wait [--timeout <s>]]
//   ./serve_cli --spool <dir> status [--json]
//   ./serve_cli --spool <dir> result <id> [--wait [--timeout <s>]]
//   ./serve_cli --spool <dir> cancel <id>
//   ./serve_cli --spool <dir> drain
//
// submit drops one request file into <spool>/inbox/ (atomic write, so the
// server never reads a half-written request). The request id defaults to
// "<benchmark>-s<seed>"; the result lands at <spool>/results/<id>.json.
// When the server's bounded queue is full, submit says so -- the request
// is buffered in the inbox (nothing is lost) and the server's suggested
// retry-after is printed instead of a bare failure.
// status renders <spool>/status.json (schema 2) human-readably: queue
// occupancy, in-flight count, the counter set, and latency quantiles
// (--json for the raw document). cancel drops a marker under
// <spool>/ctl/cancel/ -- the server cooperatively stops the job, which
// finishes with verdict CANCELLED. drain touches <spool>/ctl/drain -- the
// server finishes queued jobs, sweeps results, and exits.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <unistd.h>

#include "obs/json_reader.hpp"
#include "serve/request.hpp"
#include "serve/spool.hpp"
#include "util/stopwatch.hpp"

namespace {

using namespace scs;

void print_usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0 << " --spool <dir> <command> [options]\n"
      << "commands:\n"
      << "  submit <benchmark> [--seed <n>] [--fast] [--episodes <n>]\n"
      << "         [--priority <p>] [--deadline <s>] [--id <name>]\n"
      << "         [--wait [--timeout <s>]]\n"
      << "  status [--json]\n"
      << "  result <id> [--wait [--timeout <s>]]\n"
      << "  cancel <id>\n"
      << "  drain\n";
}

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return true;
}

std::string fmt_latency(const JsonValue* lat, const char* name) {
  const JsonValue* h = lat != nullptr ? lat->find(name) : nullptr;
  if (h == nullptr) return "-";
  const std::int64_t count = h->find("count") ? h->find("count")->int_or(0) : 0;
  if (count == 0) return "(none observed)";
  char buf[96];
  std::snprintf(buf, sizeof buf, "p50 %lld / p90 %lld / p99 %lld  (n=%lld)",
                static_cast<long long>(h->find("p50")->int_or(0)),
                static_cast<long long>(h->find("p90")->int_or(0)),
                static_cast<long long>(h->find("p99")->int_or(0)),
                static_cast<long long>(count));
  return buf;
}

std::uint64_t counter_of(const JsonValue& doc, const char* name) {
  const JsonValue* counters = doc.find("counters");
  const JsonValue* v = counters != nullptr ? counters->find(name) : nullptr;
  return v != nullptr ? static_cast<std::uint64_t>(v->int_or(0)) : 0;
}

/// Render status.json (schema 2) for humans. Unknown schemas fall back to
/// the raw document rather than misreading fields.
int print_status(const std::string& text, bool raw) {
  if (raw) {
    std::cout << text << "\n";
    return 0;
  }
  JsonValue doc;
  if (!json_try_parse(text, &doc) || !doc.is_object() ||
      (doc.find("schema") ? doc.find("schema")->int_or(0) : 0) !=
          kStatusSchemaVersion) {
    std::cout << text << "\n";
    return 0;
  }
  const auto u64 = [&doc](const char* key) -> std::uint64_t {
    const JsonValue* v = doc.find(key);
    return v != nullptr ? static_cast<std::uint64_t>(v->int_or(0)) : 0;
  };
  const std::uint64_t depth = u64("queue_depth");
  const std::uint64_t cap = u64("queue_capacity");
  const bool draining =
      doc.find("draining") != nullptr && doc.find("draining")->bool_or(false);
  std::cout << "instance  "
            << (doc.find("instance") ? doc.find("instance")->string_or("?")
                                     : "?")
            << (draining ? "  [draining]" : "") << "\n";
  std::cout << "queue     " << depth << "/" << cap << " across "
            << u64("shards") << " shard(s), " << u64("in_flight")
            << " in flight, " << u64("pending") << " pending sweep\n";
  std::cout << "traffic   submitted " << counter_of(doc, "submitted")
            << " | cold " << counter_of(doc, "cold_runs") << " | warm "
            << counter_of(doc, "warm_hits") << " | dup "
            << counter_of(doc, "duplicates") << " | rejected "
            << counter_of(doc, "rejected") << " | cancelled "
            << counter_of(doc, "cancelled") << " | overflow "
            << counter_of(doc, "overflow") << "\n";
  std::cout << "spool     ingested " << u64("ingested")
            << ", results written " << u64("results_written") << "\n";
  const JsonValue* lat = doc.find("latency");
  std::cout << "latency   queue_wait_ms  " << fmt_latency(lat, "queue_wait_ms")
            << "\n"
            << "          run_ms         " << fmt_latency(lat, "run_ms")
            << "\n"
            << "          warm_hit_us    " << fmt_latency(lat, "warm_hit_us")
            << "\n";
  if (!draining && cap > 0 && depth >= cap) {
    const double retry = doc.find("retry_after_seconds")
                             ? doc.find("retry_after_seconds")->number_or(1.0)
                             : 1.0;
    std::cout << "backpressure: queue is FULL -- new submits stay buffered "
                 "in the inbox; retry after ~"
              << retry << "s\n";
  }
  const JsonValue* jobs = doc.find("jobs");
  if (jobs != nullptr && jobs->is_array() && !jobs->items.empty()) {
    std::cout << "jobs\n";
    for (const JsonValue& j : jobs->items) {
      std::cout << "  " << (j.find("id") ? j.find("id")->string_or("?") : "?")
                << "  " << (j.find("state") ? j.find("state")->string_or("?")
                                            : "?")
                << "  "
                << (j.find("benchmark") ? j.find("benchmark")->string_or("?")
                                        : "?");
      const std::string verdict =
          j.find("verdict") ? j.find("verdict")->string_or("") : "";
      if (!verdict.empty()) std::cout << "  " << verdict;
      std::cout << "\n";
    }
  }
  return 0;
}

int print_result_file(const SpoolLayout& layout, const std::string& id,
                      bool wait, double timeout_seconds) {
  const std::string path = layout.results() + "/" + id + ".json";
  Stopwatch clock;
  for (;;) {
    std::string text;
    if (read_file(path, &text)) {
      std::cout << text << "\n";
      // Exit 0 on VERIFIED, 1 otherwise -- scriptable like synthesize_cli.
      return text.find("\"verdict\":\"VERIFIED\"") != std::string::npos ? 0 : 1;
    }
    if (!wait) {
      std::cerr << "no result yet at " << path << " (use --wait)\n";
      return 3;
    }
    if (timeout_seconds > 0.0 && clock.seconds() > timeout_seconds) {
      std::cerr << "timed out waiting for " << path << "\n";
      return 3;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string spool_root, command;
  std::vector<std::string> rest;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--spool") {
      if (i + 1 >= argc) {
        std::cerr << "--spool needs a directory\n";
        return 2;
      }
      spool_root = argv[++i];
    } else if (command.empty()) {
      command = arg;
    } else {
      rest.push_back(arg);
    }
  }
  if (spool_root.empty() || command.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  const SpoolLayout layout{spool_root};

  if (command == "status") {
    std::string text;
    if (!read_file(layout.status_file(), &text)) {
      std::cerr << "no status file at " << layout.status_file()
                << " (is the server running?)\n";
      return 3;
    }
    bool raw = false;
    for (const std::string& r : rest)
      if (r == "--json") raw = true;
    return print_status(text, raw);
  }

  if (command == "cancel") {
    std::string id;
    for (const std::string& r : rest)
      if (id.empty() && r[0] != '-') id = r;
    if (id.empty()) {
      print_usage(argv[0]);
      return 2;
    }
    const std::string marker = layout.cancel_dir() + "/" + id;
    if (!atomic_write_file(marker, "cancel\n")) {
      std::cerr << "cannot write " << marker
                << " (is the spool initialized by a current server?)\n";
      return 1;
    }
    std::cout << "cancel requested for " << id << " via " << marker << "\n";
    return 0;
  }

  if (command == "drain") {
    if (!atomic_write_file(layout.drain_file(), "drain\n")) {
      std::cerr << "cannot write " << layout.drain_file() << "\n";
      return 1;
    }
    std::cout << "drain requested via " << layout.drain_file() << "\n";
    return 0;
  }

  bool wait = false;
  double timeout_seconds = 0.0;

  if (command == "result") {
    std::string id;
    for (std::size_t i = 0; i < rest.size(); ++i) {
      if (rest[i] == "--wait")
        wait = true;
      else if (rest[i] == "--timeout" && i + 1 < rest.size())
        timeout_seconds = std::atof(rest[++i].c_str());
      else if (id.empty())
        id = rest[i];
    }
    if (id.empty()) {
      print_usage(argv[0]);
      return 2;
    }
    return print_result_file(layout, id, wait, timeout_seconds);
  }

  if (command != "submit") {
    print_usage(argv[0]);
    return 2;
  }

  JobRequest request;
  request.benchmark.clear();
  for (std::size_t i = 0; i < rest.size(); ++i) {
    const std::string& arg = rest[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= rest.size()) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(2);
      }
      return rest[++i].c_str();
    };
    if (arg == "--seed")
      request.seed = std::strtoull(next("a number"), nullptr, 10);
    else if (arg == "--fast")
      request.fast_mode = true;
    else if (arg == "--episodes")
      request.rl_episodes = std::atoi(next("a count"));
    else if (arg == "--priority")
      request.priority = std::atoi(next("a number"));
    else if (arg == "--deadline")
      request.deadline_seconds = std::atof(next("a duration"));
    else if (arg == "--id")
      request.id = next("a name");
    else if (arg == "--wait")
      wait = true;
    else if (arg == "--timeout")
      timeout_seconds = std::atof(next("a duration"));
    else if (request.benchmark.empty())
      request.benchmark = arg;
    else {
      print_usage(argv[0]);
      return 2;
    }
  }
  if (request.benchmark.empty()) {
    print_usage(argv[0]);
    return 2;
  }
  if (request.id.empty())
    request.id = request.benchmark + "-s" + std::to_string(request.seed);

  // Unique inbox filename; the atomic write keeps half-written requests
  // invisible to the server.
  const std::string file = layout.inbox() + "/" + request.id + "-" +
                           std::to_string(::getpid()) + ".json";
  if (!atomic_write_file(file, job_request_json(request) + "\n")) {
    std::cerr << "cannot write " << file
              << " (did synthesize_server create the spool?)\n";
    return 1;
  }
  std::cout << "submitted " << request.id << " -> " << file << "\n";
  // Surface backpressure instead of failing silently later: when the
  // server's bounded queue is at capacity the request stays buffered in
  // the inbox (nothing is lost) and the server's retry-after applies.
  {
    std::string status_text;
    JsonValue doc;
    if (read_file(layout.status_file(), &status_text) &&
        json_try_parse(status_text, &doc) && doc.is_object()) {
      const std::int64_t depth =
          doc.find("queue_depth") ? doc.find("queue_depth")->int_or(0) : 0;
      const std::int64_t cap = doc.find("queue_capacity")
                                   ? doc.find("queue_capacity")->int_or(0)
                                   : 0;
      if (cap > 0 && depth >= cap) {
        const double retry =
            doc.find("retry_after_seconds")
                ? doc.find("retry_after_seconds")->number_or(1.0)
                : 1.0;
        std::cout << "note: server queue is full (" << depth << "/" << cap
                  << "); the request waits in the inbox overflow buffer -- "
                     "expect an extra ~"
                  << retry << "s before it is picked up\n";
      }
    }
  }
  if (!wait) return 0;
  return print_result_file(layout, request.id, true, timeout_seconds);
}
