// Command-line front end: run the pipeline on a named benchmark and persist
// the verified artifacts (controller, barrier certificate, PAC metadata).
//
//   ./synthesize_cli [options] C3 out.txt [episodes]
//   ./synthesize_cli --load out.txt        # re-validate saved artifacts
//
// Options:
//   --cache-dir <dir>   checkpoint every stage in <dir> (overrides
//                       SCS_CACHE_DIR); a re-run with the same seed and
//                       config resumes from the last finished stage
//   --no-cache          disable the artifact store for this run
//   --trace <file>      export a Chrome trace-event timeline of the run
//                       (open in chrome://tracing or ui.perfetto.dev)
//   --metrics <file>    dump the solver/store/pool metrics registry as JSON
//   --ledger <file>     append this run's record to a JSONL run ledger
//                       (see src/obs/ledger.hpp; SCS_LEDGER is the env
//                       equivalent, report_cli the consumer)
//   --fast              shrunken budgets (smoke tests / CI)
//   --deadline <s>      wall-clock budget; the run stops at the next stage /
//                       solver-iteration boundary and reports verdict
//                       DEADLINE (exit code 1, no partial cache artifacts)
//   --seed <n>          pipeline seed (default 2024); for gen:<i> targets it
//                       is also the family seed
//   --dims <d1,d2,...>  state dimensions of the generated family (gen:<i>
//                       targets only; must match the fuzz_cli invocation)
//
// Besides C1..C10 the benchmark may be "gen:<index>": system <index> of the
// random family defined by --seed/--dims (src/systems/family_gen) -- the
// triage path for a system fuzz_cli flagged, reproduced bit for bit.
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "barrier/independent_check.hpp"
#include "barrier/validation.hpp"
#include "core/artifacts.hpp"
#include "core/job.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"
#include "systems/family_gen.hpp"

namespace {

int run_load(const char* path) {
  using namespace scs;
  const SynthesisArtifacts a = load_artifacts_file(path);
  std::cout << "loaded artifacts for " << a.benchmark << " (n = "
            << a.num_states << ")\n"
            << "controller p(x) = " << a.controller[0].to_string(5) << "\n"
            << "barrier B(x)    = " << a.barrier.to_string(5) << "\n"
            << "PAC: degree " << a.pac.degree << ", e = " << a.pac.error
            << ", eps = " << a.pac.eps << ", K = " << a.pac.samples << "\n";
  // Re-validate against the named benchmark if it is one of C1..C10.
  for (const auto id : all_benchmark_ids()) {
    const Benchmark bench = make_benchmark(id);
    if (bench.name != a.benchmark) continue;
    Rng rng(1);
    ValidationConfig cfg;
    const ValidationReport report = validate_barrier(
        bench.ccds, a.controller, a.barrier, cfg, rng);
    std::cout << "re-validation: " << (report.passed ? "PASSED" : "FAILED")
              << " -- " << report.detail << "\n";
    return report.passed ? 0 : 1;
  }
  std::cout << "(not a built-in benchmark; skipping re-validation)\n";
  return 0;
}

void print_usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--cache-dir <dir>] [--no-cache] [--trace <file>]\n"
            << "       [--metrics <file>] [--ledger <file>] [--fast]\n"
            << "       [--seed <n>] [--dims <d1,d2,...>] "
            << "<C1..C10|gen:<index>> <output-file> "
            << "[episodes]\n       " << argv0 << " --load <file>\n";
}

bool parse_dims(const std::string& text, std::vector<std::size_t>& out) {
  out.clear();
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const int v = std::atoi(part.c_str());
    if (v < 1 || v > 12) return false;
    out.push_back(static_cast<std::size_t>(v));
  }
  return !out.empty();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scs;
  if (argc >= 3 && std::strcmp(argv[1], "--load") == 0)
    return run_load(argv[2]);

  StoreConfig store;
  ObsConfig obs;
  bool fast = false;
  double deadline_seconds = 0.0;
  std::uint64_t seed = 2024;
  std::vector<std::size_t> dims = {2, 3};
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed") {
      if (i + 1 >= argc) {
        std::cerr << "--seed needs a number argument\n";
        return 2;
      }
      seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--dims") {
      if (i + 1 >= argc || !parse_dims(argv[i + 1], dims)) {
        std::cerr << "--dims needs a comma-separated list in 1..12\n";
        return 2;
      }
      ++i;
    } else if (arg == "--no-cache") {
      store.mode = StoreConfig::Mode::kOff;
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::cerr << "--cache-dir needs a directory argument\n";
        return 2;
      }
      store.mode = StoreConfig::Mode::kOn;
      store.cache_dir = argv[++i];
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "--trace needs a file argument\n";
        return 2;
      }
      obs.trace_path = argv[++i];
    } else if (arg == "--metrics") {
      if (i + 1 >= argc) {
        std::cerr << "--metrics needs a file argument\n";
        return 2;
      }
      obs.metrics_path = argv[++i];
    } else if (arg == "--ledger") {
      if (i + 1 >= argc) {
        std::cerr << "--ledger needs a file argument\n";
        return 2;
      }
      obs.ledger_path = argv[++i];
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--deadline") {
      if (i + 1 >= argc) {
        std::cerr << "--deadline needs a seconds argument\n";
        return 2;
      }
      deadline_seconds = std::atof(argv[++i]);
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    print_usage(argv[0]);
    return 2;
  }

  const std::string& name = positional[0];
  Benchmark bench;
  bool resolved = false;
  bool generated = false;
  if (name.rfind("gen:", 0) == 0) {
    // Reproduce system <index> of the fuzz family defined by --seed/--dims
    // (bitwise-identical to what fuzz_cli ran with the same knobs).
    const long index = std::atol(name.c_str() + 4);
    if (index < 0) {
      std::cerr << "gen:<index> needs a non-negative index\n";
      return 2;
    }
    FamilyConfig family;
    family.seed = seed;
    family.state_dims = dims;
    const GeneratedSystem gs =
        generate_system(family, static_cast<std::size_t>(index));
    bench = gs.benchmark;
    resolved = true;
    generated = true;
    std::cout << "generated system " << bench.name << ": n="
              << gs.descriptor.num_states << ", d_f=" << gs.descriptor.degree
              << ", spectral radius " << gs.descriptor.spectral_radius
              << (gs.descriptor.obstacle ? ", obstacle" : ", shell") << "\n";
  } else {
    for (const auto id : all_benchmark_ids()) {
      Benchmark candidate = make_benchmark(id);
      if (candidate.name != name) continue;
      bench = std::move(candidate);
      resolved = true;
      break;
    }
  }
  if (!resolved) {
    std::cerr << "unknown benchmark '" << name
              << "' (expected C1..C10 or gen:<index>)\n";
    return 2;
  }

  PipelineConfig config;
  config.seed = seed;
  config.store = store;
  config.obs = obs;
  config.fast_mode = fast;
  if (positional.size() > 2)
    config.rl_episodes = std::atoi(positional[2].c_str());
  config.pac_fit.max_samples = 50000;
  // The CLI is a thin client of the same job unit the serving daemon runs:
  // one SynthesisJob, one optional JobControl.
  const SynthesisJob job(bench, config);
  JobControl control;
  if (deadline_seconds > 0.0) control.set_deadline_after(deadline_seconds);
  JobContext ctx;
  ctx.control = (deadline_seconds > 0.0) ? &control : nullptr;
  ctx.source = "synthesize_cli";
  const SynthesisResult result = job.run(ctx);
  std::cout << "timings: " << stage_timings_json(result) << "\n";
  if (!obs.trace_path.empty())
    std::cout << "trace written to " << obs.trace_path << "\n";
  if (!obs.metrics_path.empty())
    std::cout << "metrics written to " << obs.metrics_path << "\n";
  if (!obs.ledger_path.empty())
    std::cout << "ledger record appended to " << obs.ledger_path << "\n";
  if (result.barrier.success && (generated || result.success)) {
    // Cross-check the certificate with the solver-state-free checker (the
    // fuzz campaign's soundness oracle) and show the per-condition verdicts
    // -- this is the triage view for a flagged system.
    const IndependentCheckReport chk =
        independent_check(bench.ccds, result.controller, result.barrier,
                          config.barrier.rho);
    std::cout << "independent check: " << chk.detail << "\n";
    for (const ConditionCheck& c : chk.conditions) {
      if (c.passed || c.witness.empty()) continue;
      std::cout << "  " << c.name << " witness: (";
      for (std::size_t i = 0; i < c.witness.size(); ++i)
        std::cout << (i ? ", " : "") << c.witness[i];
      std::cout << ")\n";
    }
  }
  if (!result.success) {
    std::cerr << "synthesis failed at stage '" << result.failure_stage
              << "' (verdict " << result.verdict << "): "
              << (result.failure_message.empty() ? result.barrier.failure_reason
                                                 : result.failure_message)
              << "\n";
    return 1;
  }
  save_artifacts_file(artifacts_from(result, bench.ccds.num_states),
                      positional[1]);
  std::cout << "verified controller + certificate written to "
            << positional[1] << "\n";
  return 0;
}
