// Command-line front end: run the pipeline on a named benchmark and persist
// the verified artifacts (controller, barrier certificate, PAC metadata).
//
//   ./synthesize_cli C3 out.txt [episodes]
//   ./synthesize_cli --load out.txt        # re-validate saved artifacts
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "barrier/validation.hpp"
#include "core/artifacts.hpp"
#include "core/pipeline.hpp"

namespace {

int run_load(const char* path) {
  using namespace scs;
  const SynthesisArtifacts a = load_artifacts_file(path);
  std::cout << "loaded artifacts for " << a.benchmark << " (n = "
            << a.num_states << ")\n"
            << "controller p(x) = " << a.controller[0].to_string(5) << "\n"
            << "barrier B(x)    = " << a.barrier.to_string(5) << "\n"
            << "PAC: degree " << a.pac.degree << ", e = " << a.pac.error
            << ", eps = " << a.pac.eps << ", K = " << a.pac.samples << "\n";
  // Re-validate against the named benchmark if it is one of C1..C10.
  for (const auto id : all_benchmark_ids()) {
    const Benchmark bench = make_benchmark(id);
    if (bench.name != a.benchmark) continue;
    Rng rng(1);
    ValidationConfig cfg;
    const ValidationReport report = validate_barrier(
        bench.ccds, a.controller, a.barrier, cfg, rng);
    std::cout << "re-validation: " << (report.passed ? "PASSED" : "FAILED")
              << " -- " << report.detail << "\n";
    return report.passed ? 0 : 1;
  }
  std::cout << "(not a built-in benchmark; skipping re-validation)\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scs;
  if (argc >= 3 && std::strcmp(argv[1], "--load") == 0)
    return run_load(argv[2]);
  if (argc < 3) {
    std::cerr << "usage: " << argv[0] << " <C1..C10> <output-file> "
              << "[episodes]\n       " << argv[0] << " --load <file>\n";
    return 2;
  }

  const std::string name = argv[1];
  for (const auto id : all_benchmark_ids()) {
    const Benchmark bench = make_benchmark(id);
    if (bench.name != name) continue;

    PipelineConfig config;
    config.seed = 2024;
    if (argc > 3) config.rl_episodes = std::atoi(argv[3]);
    config.pac_fit.max_samples = 50000;
    const SynthesisResult result = synthesize(bench, config);
    if (!result.success) {
      std::cerr << "synthesis failed at stage '" << result.failure_stage
                << "': " << result.barrier.failure_reason << "\n";
      return 1;
    }
    save_artifacts_file(artifacts_from(result, bench.ccds.num_states),
                        argv[2]);
    std::cout << "verified controller + certificate written to " << argv[2]
              << "\n";
    return 0;
  }
  std::cerr << "unknown benchmark '" << name << "' (expected C1..C10)\n";
  return 2;
}
