// Command-line front end: run the pipeline on a named benchmark and persist
// the verified artifacts (controller, barrier certificate, PAC metadata).
//
//   ./synthesize_cli [options] C3 out.txt [episodes]
//   ./synthesize_cli --load out.txt        # re-validate saved artifacts
//
// Options:
//   --cache-dir <dir>   checkpoint every stage in <dir> (overrides
//                       SCS_CACHE_DIR); a re-run with the same seed and
//                       config resumes from the last finished stage
//   --no-cache          disable the artifact store for this run
//   --trace <file>      export a Chrome trace-event timeline of the run
//                       (open in chrome://tracing or ui.perfetto.dev)
//   --metrics <file>    dump the solver/store/pool metrics registry as JSON
//   --ledger <file>     append this run's record to a JSONL run ledger
//                       (see src/obs/ledger.hpp; SCS_LEDGER is the env
//                       equivalent, report_cli the consumer)
//   --fast              shrunken budgets (smoke tests / CI)
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "barrier/validation.hpp"
#include "core/artifacts.hpp"
#include "core/pipeline.hpp"
#include "core/report.hpp"

namespace {

int run_load(const char* path) {
  using namespace scs;
  const SynthesisArtifacts a = load_artifacts_file(path);
  std::cout << "loaded artifacts for " << a.benchmark << " (n = "
            << a.num_states << ")\n"
            << "controller p(x) = " << a.controller[0].to_string(5) << "\n"
            << "barrier B(x)    = " << a.barrier.to_string(5) << "\n"
            << "PAC: degree " << a.pac.degree << ", e = " << a.pac.error
            << ", eps = " << a.pac.eps << ", K = " << a.pac.samples << "\n";
  // Re-validate against the named benchmark if it is one of C1..C10.
  for (const auto id : all_benchmark_ids()) {
    const Benchmark bench = make_benchmark(id);
    if (bench.name != a.benchmark) continue;
    Rng rng(1);
    ValidationConfig cfg;
    const ValidationReport report = validate_barrier(
        bench.ccds, a.controller, a.barrier, cfg, rng);
    std::cout << "re-validation: " << (report.passed ? "PASSED" : "FAILED")
              << " -- " << report.detail << "\n";
    return report.passed ? 0 : 1;
  }
  std::cout << "(not a built-in benchmark; skipping re-validation)\n";
  return 0;
}

void print_usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--cache-dir <dir>] [--no-cache] [--trace <file>]\n"
            << "       [--metrics <file>] [--ledger <file>] [--fast] "
            << "<C1..C10> <output-file> "
            << "[episodes]\n       " << argv0 << " --load <file>\n";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace scs;
  if (argc >= 3 && std::strcmp(argv[1], "--load") == 0)
    return run_load(argv[2]);

  StoreConfig store;
  ObsConfig obs;
  bool fast = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--no-cache") {
      store.mode = StoreConfig::Mode::kOff;
    } else if (arg == "--cache-dir") {
      if (i + 1 >= argc) {
        std::cerr << "--cache-dir needs a directory argument\n";
        return 2;
      }
      store.mode = StoreConfig::Mode::kOn;
      store.cache_dir = argv[++i];
    } else if (arg == "--trace") {
      if (i + 1 >= argc) {
        std::cerr << "--trace needs a file argument\n";
        return 2;
      }
      obs.trace_path = argv[++i];
    } else if (arg == "--metrics") {
      if (i + 1 >= argc) {
        std::cerr << "--metrics needs a file argument\n";
        return 2;
      }
      obs.metrics_path = argv[++i];
    } else if (arg == "--ledger") {
      if (i + 1 >= argc) {
        std::cerr << "--ledger needs a file argument\n";
        return 2;
      }
      obs.ledger_path = argv[++i];
    } else if (arg == "--fast") {
      fast = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (positional.size() < 2) {
    print_usage(argv[0]);
    return 2;
  }

  const std::string& name = positional[0];
  for (const auto id : all_benchmark_ids()) {
    const Benchmark bench = make_benchmark(id);
    if (bench.name != name) continue;

    PipelineConfig config;
    config.seed = 2024;
    config.store = store;
    config.obs = obs;
    config.fast_mode = fast;
    if (positional.size() > 2)
      config.rl_episodes = std::atoi(positional[2].c_str());
    config.pac_fit.max_samples = 50000;
    const SynthesisResult result = synthesize(bench, config);
    std::cout << "timings: " << stage_timings_json(result) << "\n";
    if (!obs.trace_path.empty())
      std::cout << "trace written to " << obs.trace_path << "\n";
    if (!obs.metrics_path.empty())
      std::cout << "metrics written to " << obs.metrics_path << "\n";
    if (!obs.ledger_path.empty())
      std::cout << "ledger record appended to " << obs.ledger_path << "\n";
    if (!result.success) {
      std::cerr << "synthesis failed at stage '" << result.failure_stage
                << "': " << result.barrier.failure_reason << "\n";
      return 1;
    }
    save_artifacts_file(artifacts_from(result, bench.ccds.num_states),
                        positional[1]);
    std::cout << "verified controller + certificate written to "
              << positional[1] << "\n";
    return 0;
  }
  std::cerr << "unknown benchmark '" << name << "' (expected C1..C10)\n";
  return 2;
}
