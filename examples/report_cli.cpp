// Regression gate + Table-2 reproduction dashboard over the run ledger.
//
//   ./report_cli --ledger scs_ledger.jsonl
//                --bench bench_obs=BENCH_obs.json
//                --bench bench_solvers=BENCH_solvers.json
//                --baseline baselines/bench_obs.json
//                --baseline baselines/table2_fast.json
//                [--markdown report.md] [--json report.json] [--no-dashboard]
//
// Inputs:
//   --ledger <file>       JSONL run ledger (obs/ledger.hpp). Synthesis
//                         records become "<benchmark>.<field>" metric
//                         samples (verdict, pac_eps, stage timings, the
//                         metrics snapshot under "<benchmark>.metrics.");
//                         bench records flatten under their source name.
//                         Repeatable.
//   --bench <name>=<file> A BENCH_*.json blob or google-benchmark
//                         --benchmark_out JSON, flattened under <name>.
//                         Repeatable.
//   --baseline <file>     A baselines/*.json gate file (obs/baseline.hpp).
//                         Repeatable; every baseline must pass.
//
// Outputs: a markdown report (stdout, or --markdown <file>) containing the
// Table-2 reproduction dashboard -- current ledger verdicts / epsilon /
// timings per benchmark next to the paper's published claims (values the
// repo never transcribed from the paper render as "n/r") -- followed by
// the per-baseline delta tables; --json writes the machine-readable
// equivalent for CI artifacts.
//
// Exit code: 0 when every baseline check passes (improvements included);
// 1 when any check regressed or a baselined metric is missing from the
// current run; 2 on usage/load errors (a gate that cannot load must fail
// loudly). This is what `scripts/ci.sh perf` runs.
//
// Fleet mode (`scripts/ci.sh fleet`):
//
//   ./report_cli fleet --ledger 'spool-a/runs.jsonl' --ledger 'fleet/*.jsonl'
//                [--baseline baselines/fleet.json]
//                [--markdown fleet.md] [--json fleet.json]
//
// treats each --ledger path (globs allowed, filename-level) as one daemon
// instance and merges their serve records + daemon summaries into a
// per-instance / fleet-wide dashboard (obs/fleet.hpp): dedupe efficiency,
// warm-hit rate, latency quantiles, verdict mix, lost requests, redundant
// cold runs. Baselines gate the "fleet.*" samples; exit codes as above.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "obs/baseline.hpp"
#include "obs/fleet.hpp"
#include "obs/json_reader.hpp"
#include "obs/ledger.hpp"
#include "systems/paper_table2.hpp"

namespace {

using namespace scs;

void print_usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--ledger <file>]... [--bench <name>=<json-file>]...\n"
      << "       [--baseline <json-file>]... [--markdown <file>]\n"
      << "       [--json <file>] [--no-dashboard]\n"
      << "   or: " << argv0
      << " fleet --ledger <file-or-glob>... [--baseline <json-file>]...\n"
      << "       [--markdown <file>] [--json <file>]\n";
}

/// `report_cli fleet`: merge N instance ledgers into the fleet dashboard
/// and gate the fleet.* samples.
int run_fleet(int argc, char** argv) {
  std::vector<std::string> ledger_args;
  std::vector<std::string> baseline_paths;
  std::string markdown_path;
  std::string json_path;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ledger") {
      ledger_args.push_back(next("a file or glob argument"));
    } else if (arg == "--baseline") {
      baseline_paths.push_back(next("a file argument"));
    } else if (arg == "--markdown") {
      markdown_path = next("a file argument");
    } else if (arg == "--json") {
      json_path = next("a file argument");
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }
  if (ledger_args.empty()) {
    print_usage(argv[0]);
    return 2;
  }

  const std::vector<std::string> paths = fleet_expand_ledger_args(ledger_args);
  if (paths.empty()) {
    std::cerr << "error: no ledger files matched "
              << "(globs expand against existing files)\n";
    return 2;
  }
  const FleetReport report = fleet_aggregate(paths);
  for (const std::string& e : report.errors)
    std::cerr << "warning: " << e << "\n";
  if (report.instances.empty()) {
    std::cerr << "error: none of the ledgers could be read\n";
    return 2;
  }

  MetricSamples samples;
  fleet_samples(report, &samples);
  std::vector<BaselineReport> reports;
  for (const std::string& path : baseline_paths) {
    try {
      reports.push_back(baseline_compare(baseline_load_file(path), samples));
    } catch (const JsonParseError& e) {
      std::cerr << "error: baseline '" << path << "': " << e.what() << "\n";
      return 2;
    }
  }

  std::ostringstream md;
  md << fleet_markdown(report);
  if (!reports.empty()) md << "\n" << baseline_report_markdown(reports);
  if (markdown_path.empty()) {
    std::cout << md.str();
  } else {
    std::ofstream(markdown_path) << md.str();
    std::cout << "fleet markdown written to " << markdown_path << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream(json_path) << fleet_json(report) << "\n";
    std::cout << "fleet json written to " << json_path << "\n";
  }

  bool passed = true;
  for (const BaselineReport& r : reports) {
    passed = passed && r.passed();
    std::cerr << "gate " << r.name << ": "
              << (r.passed() ? "PASSED" : "FAILED") << " (" << r.regressed
              << " regressed, " << r.missing << " missing)\n";
  }
  return passed ? 0 : 1;
}

std::string read_file(const std::string& path, bool& ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    ok = false;
    return {};
  }
  std::ostringstream os;
  os << in.rdbuf();
  ok = true;
  return os.str();
}

/// Fold one synthesis ledger record into the dotted-key sample set.
void add_synthesis_samples(MetricSamples& samples, const LedgerRecord& r) {
  const std::string& b = r.benchmark;
  samples.add(b + ".verdict", JsonValue::make_string(r.verdict));
  samples.add(b + ".pac_valid", JsonValue::make_bool(r.pac_valid));
  samples.add(b + ".pac_eps", JsonValue::make_number(r.pac_eps));
  samples.add(b + ".pac_error", JsonValue::make_number(r.pac_error));
  samples.add(b + ".pac_degree", JsonValue::make_number(r.pac_degree));
  samples.add(b + ".pac_samples",
              JsonValue::make_number(static_cast<double>(r.pac_samples)));
  samples.add(b + ".barrier_degree",
              JsonValue::make_number(r.barrier_degree));
  samples.add(b + ".rl_seconds", JsonValue::make_number(r.rl_seconds));
  samples.add(b + ".pac_seconds", JsonValue::make_number(r.pac_seconds));
  samples.add(b + ".barrier_seconds",
              JsonValue::make_number(r.barrier_seconds));
  samples.add(b + ".validation_seconds",
              JsonValue::make_number(r.validation_seconds));
  samples.add(b + ".total_seconds", JsonValue::make_number(r.total_seconds));
  samples.add(b + ".json_dropped",
              JsonValue::make_number(static_cast<double>(r.json_dropped)));
  if (!r.metrics_json.empty()) {
    JsonValue metrics;
    std::string error;
    if (json_try_parse(r.metrics_json, &metrics, &error))
      samples.add_flattened(b + ".metrics", metrics);
  }
}

/// The most recent synthesis record per benchmark (file order = append
/// order), for the dashboard's "current run" column.
const LedgerRecord* latest_synthesis(const std::vector<LedgerRecord>& records,
                                     const std::string& benchmark) {
  const LedgerRecord* latest = nullptr;
  for (const LedgerRecord& r : records)
    if (r.kind == "synthesis" && r.benchmark == benchmark) latest = &r;
  return latest;
}

std::string fmt(double v) { return paper_value_repr(v); }

std::string dashboard_markdown(const std::vector<LedgerRecord>& records) {
  std::ostringstream os;
  os << "## Table 2 reproduction dashboard\n\n"
     << "Paper columns show the published claims recorded in this repo; "
        "values the paper prints but the repo never transcribed are `n/r`. "
        "Run columns come from the most recent ledger record per "
        "benchmark (`--` = benchmark not in the ledger).\n\n"
     << "| Bench | n_x | d_f | DNN (paper) | paper verdict | run verdict | "
        "eps | e | d_p | d_B | T_p (s) | total (s) |\n"
     << "|---|---|---|---|---|---|---|---|---|---|---|---|\n";
  int present = 0, verified = 0;
  for (const PaperTable2Row& p : paper_table2()) {
    os << "| " << p.name << " | " << p.n_x << " | " << p.d_f << " | `"
       << p.dnn_structure << "` | "
       << (p.verified ? "VERIFIED" : "UNVERIFIED") << " | ";
    const LedgerRecord* r = latest_synthesis(records, p.name);
    if (r == nullptr) {
      os << "-- | -- | -- | -- | -- | -- | -- |\n";
      continue;
    }
    ++present;
    if (r->verdict == "VERIFIED") ++verified;
    const bool match = (r->verdict == "VERIFIED") == p.verified;
    os << r->verdict << (match ? "" : " (!)") << " | " << fmt(r->pac_eps)
       << " | " << fmt(r->pac_error) << " | "
       << paper_value_repr(r->pac_degree) << " | "
       << (r->barrier_degree > 0 ? paper_value_repr(r->barrier_degree)
                                 : std::string("x"))
       << " | " << fmt(r->barrier_seconds) << " | " << fmt(r->total_seconds)
       << " |\n";
  }
  os << "\nPaper claim: 10/10 VERIFIED. This run: " << verified << "/"
     << present << " of the benchmarks present in the ledger.\n";
  return os.str();
}

/// The most recent fuzz-campaign summary in the ledger (bench records with
/// source "fuzz_campaign" carry the campaign JSON in values_json).
const LedgerRecord* latest_fuzz_campaign(
    const std::vector<LedgerRecord>& records) {
  const LedgerRecord* latest = nullptr;
  for (const LedgerRecord& r : records)
    if (r.kind == "bench" && r.source == "fuzz_campaign" &&
        !r.values_json.empty())
      latest = &r;
  return latest;
}

void fuzz_bucket_table(std::ostringstream& os, const char* title,
                       const JsonValue& doc, const char* key) {
  const JsonValue* buckets = doc.find(key);
  if (buckets == nullptr || !buckets->is_array() || buckets->items.empty())
    return;
  os << "### Success rate by " << title << "\n\n"
     << "| bucket | runs | verified | rate | mean seconds |\n"
     << "|---|---|---|---|---|\n";
  for (const JsonValue& b : buckets->items) {
    os << "| " << (b.find("bucket") ? b.find("bucket")->string_or("?") : "?")
       << " | " << (b.find("runs") ? b.find("runs")->int_or(0) : 0) << " | "
       << (b.find("verified") ? b.find("verified")->int_or(0) : 0) << " | "
       << fmt(b.find("rate") ? b.find("rate")->number_or(0.0) : 0.0) << " | "
       << fmt(b.find("mean_seconds")
                  ? b.find("mean_seconds")->number_or(0.0)
                  : 0.0)
       << " |\n";
  }
  os << "\n";
}

/// Render the latest fuzz campaign as bucketed success-rate curves, with
/// the soundness cross-check verdict up front. Empty string when the
/// ledger has no campaign record.
std::string fuzz_markdown(const std::vector<LedgerRecord>& records) {
  const LedgerRecord* r = latest_fuzz_campaign(records);
  if (r == nullptr) return {};
  JsonValue doc;
  std::string error;
  if (!json_try_parse(r->values_json, &doc, &error)) return {};
  const JsonValue* c = doc.find("campaign");
  if (c == nullptr) return {};
  std::ostringstream os;
  const auto num = [&](const char* k) {
    const JsonValue* v = c->find(k);
    return v ? v->int_or(0) : std::int64_t{0};
  };
  os << "## Fuzz campaign (seed " << num("seed") << ")\n\n"
     << "Random-family soundness sweep (src/systems/family_gen + "
        "examples/fuzz_cli): every VERIFIED verdict is re-validated by the "
        "independent certificate checker.\n\n"
     << "- systems: " << num("ran") << " ran / " << num("count")
     << " generated";
  if (num("skipped") > 0) os << " (" << num("skipped") << " skipped)";
  os << "\n- verdicts: " << num("verified") << " VERIFIED, "
     << num("unverified") << " UNVERIFIED\n"
     << "- independent checker: " << num("checker_accepted") << "/"
     << num("checked") << " certificates accepted\n"
     << "- **soundness violations: " << num("soundness_violations")
     << "**\n\n";
  fuzz_bucket_table(os, "state dimension", doc, "by_n");
  fuzz_bucket_table(os, "field degree", doc, "by_degree");
  fuzz_bucket_table(os, "spectral radius", doc, "by_radius");
  const JsonValue* violations = doc.find("violations");
  if (violations != nullptr && violations->is_array() &&
      !violations->items.empty()) {
    os << "### Soundness violations\n\n";
    for (const JsonValue& v : violations->items)
      os << "- `"
         << (v.find("benchmark") ? v.find("benchmark")->string_or("?") : "?")
         << "`: "
         << (v.find("detail") ? v.find("detail")->string_or("") : "") << "\n";
    os << "\n";
  }
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::string(argv[1]) == "fleet") return run_fleet(argc, argv);
  std::vector<std::string> ledger_paths;
  std::vector<std::pair<std::string, std::string>> bench_inputs;
  std::vector<std::string> baseline_paths;
  std::string markdown_path;
  std::string json_path;
  bool dashboard = true;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ledger") {
      ledger_paths.push_back(next("a file argument"));
    } else if (arg == "--bench") {
      const std::string spec = next("a <name>=<json-file> argument");
      const std::size_t eq = spec.find('=');
      if (eq == std::string::npos || eq == 0 || eq + 1 == spec.size()) {
        std::cerr << "--bench expects <name>=<json-file>, got '" << spec
                  << "'\n";
        return 2;
      }
      bench_inputs.emplace_back(spec.substr(0, eq), spec.substr(eq + 1));
    } else if (arg == "--baseline") {
      baseline_paths.push_back(next("a file argument"));
    } else if (arg == "--markdown") {
      markdown_path = next("a file argument");
    } else if (arg == "--json") {
      json_path = next("a file argument");
    } else if (arg == "--no-dashboard") {
      dashboard = false;
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }
  if (ledger_paths.empty() && bench_inputs.empty()) {
    print_usage(argv[0]);
    return 2;
  }

  // ---- Gather current metrics.
  MetricSamples samples;
  std::vector<LedgerRecord> all_records;
  for (const std::string& path : ledger_paths) {
    const LedgerReadResult read = ledger_read(path);
    if (read.records.empty() && !read.errors.empty()) {
      std::cerr << "error: " << read.errors.front() << "\n";
      return 2;
    }
    for (const std::string& e : read.errors)
      std::cerr << "warning: ledger " << path << ": " << e << "\n";
    for (const LedgerRecord& r : read.records) {
      if (r.kind == "synthesis") {
        add_synthesis_samples(samples, r);
      } else if (!r.values_json.empty()) {
        JsonValue values;
        std::string error;
        if (json_try_parse(r.values_json, &values, &error))
          samples.add_flattened(r.source, values);
      }
      all_records.push_back(r);
    }
  }
  for (const auto& [name, path] : bench_inputs) {
    bool ok = false;
    const std::string text = read_file(path, ok);
    if (!ok) {
      std::cerr << "error: cannot read bench file '" << path << "'\n";
      return 2;
    }
    try {
      samples.add_flattened(name, json_parse(text));
    } catch (const JsonParseError& e) {
      std::cerr << "error: bench file '" << path << "': " << e.what() << "\n";
      return 2;
    }
  }

  // ---- Evaluate every baseline gate.
  std::vector<BaselineReport> reports;
  for (const std::string& path : baseline_paths) {
    try {
      reports.push_back(baseline_compare(baseline_load_file(path), samples));
    } catch (const JsonParseError& e) {
      // A gate file that cannot load is a loud failure, not a soft pass.
      std::cerr << "error: baseline '" << path << "': " << e.what() << "\n";
      return 2;
    }
  }

  // ---- Emit.
  std::ostringstream md;
  md << "# Run report\n\n";
  if (dashboard) md << dashboard_markdown(all_records) << "\n";
  // The fuzz section keys off the ledger itself (empty when no campaign
  // record), so it renders even under --no-dashboard.
  md << fuzz_markdown(all_records);
  if (!reports.empty()) md << baseline_report_markdown(reports);

  if (markdown_path.empty()) {
    std::cout << md.str();
  } else {
    std::ofstream(markdown_path) << md.str();
    std::cout << "markdown report written to " << markdown_path << "\n";
  }
  if (!json_path.empty()) {
    std::ofstream(json_path) << baseline_report_json(reports) << "\n";
    std::cout << "json report written to " << json_path << "\n";
  }

  bool passed = true;
  for (const BaselineReport& r : reports) {
    passed = passed && r.passed();
    std::cerr << "gate " << r.name << ": "
              << (r.passed() ? "PASSED" : "FAILED") << " (" << r.regressed
              << " regressed, " << r.missing << " missing)\n";
  }
  return passed ? 0 : 1;
}
