// Soundness fuzz campaign: drive N generated random systems through the
// full synthesize() pipeline and cross-check every verdict against the
// independent certificate checker (src/barrier/independent_check).
//
//   ./fuzz_cli --seed 2024 --count 64 --dims 2,3 --fast
//              --ledger fuzz.jsonl --summary fuzz.json
//
// The soundness property under attack: a VERIFIED verdict must survive
// re-validation by a checker that shares no state with the solver. Any
// VERIFIED-but-rejected system is a soundness violation; the campaign exits
// nonzero if it finds even one. UNVERIFIED results are fine (fuzzed systems
// are often genuinely hard) -- they only feed the success-rate curves.
//
// Options:
//   --seed <n>        family seed; also the pipeline seed (default 1)
//   --count <n>       systems to generate and run (default 64)
//   --dims <list>     comma-separated state dimensions to draw from ("2,3")
//   --degree-min/--degree-max <d>    field-degree range (default 1..3)
//   --spectral-min/--spectral-max <r> spectral-radius range (default 0.3..1.5)
//   --episodes <n>    RL episodes per system (default 40)
//   --fast            shrink every pipeline budget (CI)
//   --threads <n>     worker threads (0 = hardware default)
//   --ledger <file>   append per-system synthesis records + the campaign
//                     summary (kind "bench", source "fuzz_campaign") here
//   --cache-dir <dir> artifact store: re-running the same campaign resumes
//                     from cached stages instead of recomputing
//   --no-cache        disable the artifact store
//   --summary <file>  also write the campaign summary JSON to this file
//   --max-seconds <s> time budget: stop launching new systems once elapsed
//                     (skipped systems are reported, not failed), and arm a
//                     shared job deadline so in-flight runs preempt at the
//                     next stage/solver boundary (verdict DEADLINE) instead
//                     of overshooting the budget by a full pipeline run
//   --verbose         per-system progress lines
//
// Exit code: 0 = campaign clean, 1 = soundness violation(s), 2 = usage.
#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <mutex>
#include <sstream>
#include <string>
#include <vector>

#include "barrier/independent_check.hpp"
#include "core/job.hpp"
#include "core/pipeline.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger.hpp"
#include "systems/family_gen.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace scs;

struct FuzzOutcome {
  FamilyDescriptor desc;
  std::string benchmark;
  std::string verdict;
  std::string failure_stage;
  double total_seconds = 0.0;
  bool ran = false;      // false when the time budget skipped this system
  bool checked = false;  // independent checker ran (a barrier existed)
  bool accepted = false;
  bool violation = false;  // VERIFIED but checker-rejected
  std::string check_detail;
};

struct Bucket {
  std::string label;
  int runs = 0;
  int verified = 0;
  double seconds = 0.0;
};

void bucket_add(std::vector<Bucket>& buckets, const std::string& label,
                const FuzzOutcome& o) {
  for (Bucket& b : buckets) {
    if (b.label != label) continue;
    ++b.runs;
    if (o.verdict == "VERIFIED") ++b.verified;
    b.seconds += o.total_seconds;
    return;
  }
  Bucket b;
  b.label = label;
  b.runs = 1;
  b.verified = (o.verdict == "VERIFIED") ? 1 : 0;
  b.seconds = o.total_seconds;
  buckets.push_back(std::move(b));
}

void write_buckets(JsonWriter& w, const char* key,
                   const std::vector<Bucket>& buckets) {
  w.key(key).begin_array();
  for (const Bucket& b : buckets) {
    w.begin_object();
    w.key("bucket").value(b.label);
    w.key("runs").value(b.runs);
    w.key("verified").value(b.verified);
    w.key("rate").value(b.runs > 0 ? static_cast<double>(b.verified) / b.runs
                                   : 0.0);
    w.key("mean_seconds")
        .value(b.runs > 0 ? b.seconds / b.runs : 0.0);
    w.end_object();
  }
  w.end_array();
}

std::string radius_bucket(double r, double lo, double hi) {
  // Three fixed terciles of the configured range, so the bucket labels are
  // stable across campaigns with the same knobs.
  const double w = (hi - lo) / 3.0;
  const int k = std::min(2, std::max(0, static_cast<int>((r - lo) / w)));
  std::ostringstream os;
  os.precision(3);
  os << "[" << lo + k * w << "," << (k == 2 ? hi : lo + (k + 1) * w) << ")";
  return os.str();
}

bool parse_dims(const std::string& text, std::vector<std::size_t>& out) {
  out.clear();
  std::stringstream ss(text);
  std::string part;
  while (std::getline(ss, part, ',')) {
    const int v = std::atoi(part.c_str());
    if (v < 1 || v > 12) return false;
    out.push_back(static_cast<std::size_t>(v));
  }
  return !out.empty();
}

void print_usage(const char* argv0) {
  std::cerr
      << "usage: " << argv0
      << " [--seed <n>] [--count <n>] [--dims <d1,d2,...>]\n"
      << "       [--degree-min <d>] [--degree-max <d>]\n"
      << "       [--spectral-min <r>] [--spectral-max <r>] [--episodes <n>]\n"
      << "       [--fast] [--threads <n>] [--ledger <file>]\n"
      << "       [--cache-dir <dir>] [--no-cache] [--summary <file>]\n"
      << "       [--max-seconds <s>] [--verbose]\n";
}

}  // namespace

int main(int argc, char** argv) {
  FamilyConfig family;
  std::size_t count = 64;
  int episodes = 40;
  bool fast = false;
  bool verbose = false;
  int threads = -1;
  double max_seconds = 0.0;
  std::string ledger_path, summary_path;
  StoreConfig store;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* what) -> const char* {
      if (i + 1 >= argc) {
        std::cerr << arg << " needs " << what << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--seed") {
      family.seed = std::strtoull(next("a number"), nullptr, 10);
    } else if (arg == "--count") {
      count = static_cast<std::size_t>(std::atoll(next("a number")));
    } else if (arg == "--dims") {
      if (!parse_dims(next("a comma-separated list"), family.state_dims)) {
        std::cerr << "--dims expects dimensions in 1..12, e.g. 2,3\n";
        return 2;
      }
    } else if (arg == "--degree-min") {
      family.min_degree = std::atoi(next("a degree"));
    } else if (arg == "--degree-max") {
      family.max_degree = std::atoi(next("a degree"));
    } else if (arg == "--spectral-min") {
      family.min_spectral_radius = std::atof(next("a radius"));
    } else if (arg == "--spectral-max") {
      family.max_spectral_radius = std::atof(next("a radius"));
    } else if (arg == "--episodes") {
      episodes = std::atoi(next("a count"));
    } else if (arg == "--fast") {
      fast = true;
    } else if (arg == "--threads") {
      threads = std::atoi(next("a count"));
    } else if (arg == "--ledger") {
      ledger_path = next("a file");
    } else if (arg == "--summary") {
      summary_path = next("a file");
    } else if (arg == "--cache-dir") {
      store.mode = StoreConfig::Mode::kOn;
      store.cache_dir = next("a directory");
    } else if (arg == "--no-cache") {
      store.mode = StoreConfig::Mode::kOff;
    } else if (arg == "--max-seconds") {
      max_seconds = std::atof(next("a duration"));
    } else if (arg == "--verbose") {
      verbose = true;
    } else {
      print_usage(argv[0]);
      return 2;
    }
  }
  if (count == 0) {
    std::cerr << "--count must be positive\n";
    return 2;
  }
  if (threads >= 0) set_parallel_threads(static_cast<std::size_t>(threads));

  family.rl_episodes = episodes;
  const std::vector<GeneratedSystem> systems = generate_family(family, count);

  PipelineConfig base;
  base.seed = family.seed;
  base.fast_mode = fast;
  base.store = store;
  base.obs.ledger_path = ledger_path;

  IndependentCheckConfig check_cfg;
  if (fast) {
    check_cfg.mc_samples = 1500;
    check_cfg.grid_budget = 1024;
  }

  std::cout << "fuzz campaign: seed " << family.seed << ", " << count
            << " systems, dims {";
  for (std::size_t i = 0; i < family.state_dims.size(); ++i)
    std::cout << (i ? "," : "") << family.state_dims[i];
  std::cout << "}, degree " << family.min_degree << ".." << family.max_degree
            << ", spectral radius [" << family.min_spectral_radius << ", "
            << family.max_spectral_radius << "]\n";

  Stopwatch campaign_clock;
  // One shared deadline for the whole campaign: every in-flight job polls
  // it at stage and solver-iteration boundaries, so --max-seconds bounds
  // the campaign instead of merely gating new launches.
  JobControl campaign_control;
  if (max_seconds > 0.0) campaign_control.set_deadline_after(max_seconds);
  std::vector<FuzzOutcome> outcomes(count);
  std::mutex io_mutex;
  // One task per system (chunk 1), same sharding as synthesize_many; each
  // run derives all randomness from base.seed + the system's own content,
  // so the campaign is reproducible at any thread count.
  parallel_for(count, 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) {
      const GeneratedSystem& gs = systems[i];
      FuzzOutcome& o = outcomes[i];
      o.desc = gs.descriptor;
      o.benchmark = gs.benchmark.name;
      if (max_seconds > 0.0 && campaign_clock.seconds() > max_seconds)
        continue;  // time budget: skip, never fail
      o.ran = true;
      // Same job unit the serving daemon and synthesize_cli run.
      const SynthesisJob job(gs.benchmark, base);
      JobContext ctx;
      ctx.control = (max_seconds > 0.0) ? &campaign_control : nullptr;
      ctx.source = "fuzz_cli";
      const SynthesisResult r = job.run(ctx);
      o.verdict = r.verdict;
      o.failure_stage = r.failure_stage;
      o.total_seconds = r.total_seconds;
      if (r.barrier.success) {
        const IndependentCheckReport chk =
            independent_check(gs.benchmark.ccds, r.controller, r.barrier,
                              base.barrier.rho, check_cfg);
        o.checked = true;
        o.accepted = chk.accepted;
        o.check_detail = chk.detail;
        o.violation = (r.verdict == "VERIFIED") && !chk.accepted;
      }
      if (verbose || o.violation) {
        std::lock_guard<std::mutex> lock(io_mutex);
        std::cout << (o.violation ? "SOUNDNESS VIOLATION " : "") << o.benchmark
                  << ": " << o.verdict << " (n=" << o.desc.num_states
                  << ", d=" << o.desc.degree
                  << ", rho=" << o.desc.spectral_radius << ", "
                  << o.total_seconds << "s)"
                  << (o.checked
                          ? (o.accepted ? ", checker ACCEPTED"
                                        : ", checker REJECTED")
                          : "")
                  << "\n";
        if (o.violation) std::cout << "  " << o.check_detail << "\n";
      }
    }
  });

  // ---- Aggregate.
  int ran = 0, skipped = 0, verified = 0, checked = 0, accepted = 0;
  std::vector<FuzzOutcome> violations;
  std::vector<Bucket> by_n, by_degree, by_radius;
  for (const FuzzOutcome& o : outcomes) {
    if (!o.ran) {
      ++skipped;
      continue;
    }
    ++ran;
    if (o.verdict == "VERIFIED") ++verified;
    if (o.checked) {
      ++checked;
      if (o.accepted) ++accepted;
    }
    if (o.violation) violations.push_back(o);
    bucket_add(by_n, "n=" + std::to_string(o.desc.num_states), o);
    bucket_add(by_degree, "d=" + std::to_string(o.desc.degree), o);
    bucket_add(by_radius,
               radius_bucket(o.desc.spectral_radius,
                             family.min_spectral_radius,
                             family.max_spectral_radius),
               o);
  }
  const auto by_label = [](const Bucket& a, const Bucket& b) {
    return a.label < b.label;
  };
  std::sort(by_n.begin(), by_n.end(), by_label);
  std::sort(by_degree.begin(), by_degree.end(), by_label);
  std::sort(by_radius.begin(), by_radius.end(), by_label);

  JsonWriter w;
  w.begin_object();
  w.key("campaign").begin_object();
  w.key("seed").value(family.seed);
  w.key("count").value(static_cast<std::int64_t>(count));
  w.key("ran").value(ran);
  w.key("skipped").value(skipped);
  w.key("fast").value(fast);
  w.key("verified").value(verified);
  w.key("unverified").value(ran - verified);
  w.key("verified_rate")
      .value(ran > 0 ? static_cast<double>(verified) / ran : 0.0);
  w.key("checked").value(checked);
  w.key("checker_accepted").value(accepted);
  w.key("checker_rejected").value(checked - accepted);
  w.key("soundness_violations")
      .value(static_cast<std::int64_t>(violations.size()));
  w.key("total_seconds").value(campaign_clock.seconds());
  w.end_object();
  write_buckets(w, "by_n", by_n);
  write_buckets(w, "by_degree", by_degree);
  write_buckets(w, "by_radius", by_radius);
  w.key("violations").begin_array();
  for (const FuzzOutcome& o : violations) {
    w.begin_object();
    w.key("benchmark").value(o.benchmark);
    w.key("n").value(static_cast<std::int64_t>(o.desc.num_states));
    w.key("degree").value(o.desc.degree);
    w.key("spectral_radius").value(o.desc.spectral_radius);
    w.key("detail").value(o.check_detail);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  const std::string summary = w.str();

  if (!summary_path.empty()) {
    std::ofstream(summary_path) << summary << "\n";
    std::cout << "summary written to " << summary_path << "\n";
  }
  if (!ledger_path.empty()) {
    ledger_append_bench("fuzz_campaign", summary, ledger_path);
    std::cout << "campaign summary appended to " << ledger_path << "\n";
  }

  std::cout << "ran " << ran << "/" << count << " systems ("
            << skipped << " skipped by time budget) in "
            << campaign_clock.seconds() << "s: " << verified << " VERIFIED, "
            << ran - verified << " UNVERIFIED; checker ran on " << checked
            << " certificates, accepted " << accepted << ", "
            << violations.size() << " soundness violation(s)\n";
  for (const Bucket& b : by_n)
    std::cout << "  " << b.label << ": " << b.verified << "/" << b.runs
              << " verified\n";
  if (!violations.empty()) {
    std::cerr << "FUZZ CAMPAIGN FAILED: " << violations.size()
              << " VERIFIED verdict(s) rejected by the independent checker\n";
    return 1;
  }
  return 0;
}
