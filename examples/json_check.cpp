// Dependency-free JSON validity checker for CI smoke jobs:
//
//   ./json_check file.json [more.json ...]
//
// Exits 0 when every file parses as a complete JSON document (per
// scs::json_parse_valid, the same strict parser the unit tests use),
// 1 with a diagnostic otherwise. Used by scripts/ci.sh to assert that
// synthesize_cli --trace / --metrics emitted well-formed output.
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "obs/json_writer.hpp"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: " << argv[0] << " <file.json> [more.json ...]\n";
    return 2;
  }
  int failures = 0;
  for (int i = 1; i < argc; ++i) {
    std::ifstream in(argv[i]);
    if (!in) {
      std::cerr << argv[i] << ": cannot open\n";
      ++failures;
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    if (scs::json_parse_valid(buf.str(), &error)) {
      std::cout << argv[i] << ": ok (" << buf.str().size() << " bytes)\n";
    } else {
      std::cerr << argv[i] << ": INVALID JSON: " << error << "\n";
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
