// Inspect and maintain a content-addressed artifact store (src/store).
//
//   ./store_cli [--dir <dir>] ls                 # one line per blob
//   ./store_cli [--dir <dir>] info <hex-key>     # header of one blob
//   ./store_cli [--dir <dir>] verify             # full checksum pass
//   ./store_cli [--dir <dir>] gc [max-bytes] [--force]
//                                                # drop corrupt/oldest blobs
//
// gc defers (exit 3) while another live process -- e.g. a running
// synthesize_server -- holds a reader lock on the store, because evicting
// a blob mid-pipeline silently degrades that run. --force overrides.
// The store directory defaults to $SCS_CACHE_DIR.
#include <cstdlib>
#include <iomanip>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "store/stage_cache.hpp"
#include "store/store.hpp"
#include "util/hash.hpp"

namespace {

using namespace scs;

std::string human_bytes(std::uint64_t bytes) {
  std::ostringstream os;
  if (bytes >= 1024 * 1024)
    os << std::fixed << std::setprecision(1)
       << static_cast<double>(bytes) / (1024.0 * 1024.0) << " MiB";
  else if (bytes >= 1024)
    os << std::fixed << std::setprecision(1)
       << static_cast<double>(bytes) / 1024.0 << " KiB";
  else
    os << bytes << " B";
  return os.str();
}

void print_row(const BlobInfo& info, bool with_checksum) {
  std::cout << std::left << std::setw(12)
            << (info.readable ? info.header.kind : std::string("?"))
            << std::setw(18)
            << (info.readable ? hash_to_hex(info.header.key)
                              : std::string("?"))
            << std::setw(10)
            << (info.readable ? info.header.benchmark : std::string("?"))
            << std::setw(11) << human_bytes(info.file_bytes);
  if (with_checksum)
    std::cout << std::setw(9) << (info.checksum_ok ? "ok" : "CORRUPT");
  else if (!info.readable)
    std::cout << std::setw(9) << "CORRUPT";
  std::cout << info.file << "\n";
}

int cmd_ls(ArtifactStore& store) {
  const auto blobs = store.list();
  for (const auto& b : blobs) print_row(b, /*with_checksum=*/false);
  std::cout << blobs.size() << " blob(s) in " << store.root() << "\n";
  return 0;
}

int cmd_info(ArtifactStore& store, const std::string& key_hex) {
  std::uint64_t key = 0;
  if (!hash_from_hex(key_hex, key)) {
    std::cerr << "'" << key_hex << "' is not a hex key (expected up to 16 "
              << "hex digits, as printed by ls)\n";
    return 2;
  }
  for (const auto& b : store.list()) {
    if (!b.readable || b.header.key != key) continue;
    std::cout << "file:           " << b.path << "\n"
              << "kind:           " << b.header.kind << "\n"
              << "key:            " << hash_to_hex(b.header.key) << "\n"
              << "benchmark:      " << b.header.benchmark << "\n"
              << "format version: " << b.header.format_version << "\n"
              << "payload:        " << human_bytes(b.header.payload_size)
              << " (" << b.header.payload_size << " bytes)\n"
              << "file size:      " << human_bytes(b.file_bytes) << "\n";
    return 0;
  }
  std::cerr << "no blob with key " << hash_to_hex(key) << " in "
            << store.root() << "\n";
  return 1;
}

int cmd_verify(ArtifactStore& store) {
  const auto blobs = store.verify();
  int corrupt = 0;
  for (const auto& b : blobs) {
    print_row(b, /*with_checksum=*/true);
    if (!b.checksum_ok) ++corrupt;
  }
  std::cout << blobs.size() << " blob(s), " << corrupt << " corrupt\n";
  return corrupt == 0 ? 0 : 1;
}

int cmd_gc(ArtifactStore& store, std::uint64_t max_bytes, bool force) {
  const ArtifactStore::GcReport report = store.gc(max_bytes, force);
  if (report.skipped) {
    std::cerr << "gc skipped: store in use by live process(es)";
    for (int pid : report.busy_pids) std::cerr << " " << pid;
    std::cerr << " (re-run with --force to override)\n";
    return 3;
  }
  for (const auto& f : report.removed) std::cout << "removed " << f << "\n";
  std::cout << report.removed.size() << " file(s) removed from "
            << store.root() << "\n";
  return 0;
}

void print_usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--dir <store-dir>] <ls | info <hex-key> | verify | gc "
            << "[max-bytes] [--force]>\n"
            << "store directory defaults to $SCS_CACHE_DIR\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  if (const char* env = std::getenv("SCS_CACHE_DIR")) dir = env;
  bool force = false;
  std::vector<std::string> positional;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dir") {
      if (i + 1 >= argc) {
        std::cerr << "--dir needs a directory argument\n";
        return 2;
      }
      dir = argv[++i];
    } else if (arg == "--force") {
      force = true;
    } else {
      positional.push_back(arg);
    }
  }
  if (dir.empty()) {
    std::cerr << "no store directory: pass --dir or set SCS_CACHE_DIR\n";
    return 2;
  }
  if (positional.empty()) {
    print_usage(argv[0]);
    return 2;
  }

  ArtifactStore store(dir);
  const std::string& cmd = positional[0];
  if (cmd == "ls") return cmd_ls(store);
  if (cmd == "verify") return cmd_verify(store);
  if (cmd == "info") {
    if (positional.size() < 2) {
      std::cerr << "info needs a key (see ls output)\n";
      return 2;
    }
    return cmd_info(store, positional[1]);
  }
  if (cmd == "gc") {
    std::uint64_t max_bytes = 0;
    if (positional.size() > 1)
      max_bytes = std::strtoull(positional[1].c_str(), nullptr, 10);
    return cmd_gc(store, max_bytes, force);
  }
  std::cerr << "unknown command '" << cmd << "'\n";
  print_usage(argv[0]);
  return 2;
}
