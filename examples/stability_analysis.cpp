// Extension showcase: beyond the paper's barrier pipeline, the library can
//   (1) synthesize a global Lyapunov function for the closed loop,
//   (2) *prove* barrier conditions over boxes with interval branch-and-
//       bound (no sampling gaps), and
//   (3) attach Hoeffding-style confidence bounds to Monte-Carlo safety
//       estimates.
// All three run here on a hand-closed loop of the paper's pendulum.
#include <cmath>
#include <iostream>

#include "barrier/lyapunov.hpp"
#include "barrier/mc_safety.hpp"
#include "barrier/synthesis.hpp"
#include "sos/interval.hpp"
#include "systems/benchmarks.hpp"

int main() {
  using namespace scs;
  const Benchmark bench = make_benchmark(BenchmarkId::kC1);

  // The gravity-compensating controller (see examples/pendulum_study.cpp).
  const auto x1 = Polynomial::variable(2, 0);
  const auto x2 = Polynomial::variable(2, 1);
  const Polynomial controller =
      x1 * 9.875 - x1.pow(3) * 1.56 + x1.pow(5) * 0.056 - x1 - x2 * 2.0;
  const auto closed = bench.ccds.closed_loop({controller});

  // ---- (1) Global Lyapunov function.
  std::cout << "=== Lyapunov synthesis for the closed loop ===\n";
  const LyapunovResult lyap = synthesize_lyapunov(closed);
  if (lyap.success) {
    std::cout << "V(x) = " << lyap.function.to_string(4) << "  (degree "
              << lyap.degree << ")\n\n";
  } else {
    std::cout << "no global Lyapunov function found: "
              << lyap.failure_reason << "\n\n";
  }

  // ---- (2) Barrier certificate + interval proof of its conditions.
  std::cout << "=== Barrier certificate + interval verification ===\n";
  BarrierConfig bcfg;
  const BarrierResult barrier =
      synthesize_barrier(bench.ccds, {controller}, bcfg);
  if (!barrier.success) {
    std::cout << "barrier stage failed: " << barrier.failure_reason << "\n";
    return 1;
  }
  std::cout << "B(x) of degree " << barrier.degree << " found in "
            << barrier.seconds << " s\n";

  // Condition (i) proven on the inscribed box of Theta (radius 2.2 ball).
  const double r = 2.2 / std::sqrt(2.0);
  const BoundResult cond1 = prove_lower_bound(
      barrier.barrier, Box::centered(2, r), 0.0);
  std::cout << "B >= 0 on the inscribed box of Theta: "
            << (cond1.proven ? "PROVEN" : "not proven") << " ("
            << cond1.boxes_processed << " boxes)\n";

  // Condition (ii) proven on an unsafe corner box (inside X_u).
  const Box corner(Vec{2.6, 3.0}, Vec{3.14, 5.0});
  const BoundResult cond2 =
      prove_lower_bound(-barrier.barrier, corner, 0.0);
  std::cout << "B <= 0 on an X_u corner box:            "
            << (cond2.proven ? "PROVEN" : "not proven") << " ("
            << cond2.boxes_processed << " boxes)\n\n";

  // ---- (3) Monte-Carlo safety with confidence.
  std::cout << "=== Monte-Carlo safety estimate ===\n";
  Rng rng(7);
  McSafetyConfig mcfg;
  mcfg.rollouts = 500;
  const McSafetyResult mc =
      estimate_safety(bench.ccds, {controller}, mcfg, rng);
  std::cout << mc.violations << "/" << mc.rollouts
            << " rollouts violated; P(violation) <= "
            << mc.violation_upper_bound
            << " with confidence 1 - 1e-6 (Hoeffding)\n";
  return 0;
}
