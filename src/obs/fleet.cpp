#include "obs/fleet.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <string_view>
#include <system_error>

#include "obs/json_reader.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger.hpp"

namespace scs {

namespace {

namespace fs = std::filesystem;

/// Filename-level wildcard match: '*' matches any run (not crossing '/',
/// which never appears in a filename component), '?' any one character.
bool wildcard_match(std::string_view pattern, std::string_view name) {
  std::size_t p = 0, n = 0;
  std::size_t star = std::string_view::npos, star_n = 0;
  while (n < name.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '?' || pattern[p] == name[n])) {
      ++p, ++n;
    } else if (p < pattern.size() && pattern[p] == '*') {
      star = p++;
      star_n = n;
    } else if (star != std::string_view::npos) {
      p = star + 1;
      n = ++star_n;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '*') ++p;
  return p == pattern.size();
}

bool has_wildcard(std::string_view s) {
  return s.find('*') != std::string_view::npos ||
         s.find('?') != std::string_view::npos;
}

/// Exact quantile (rank ceil(q*n)) over an unsorted sample vector; sorts a
/// copy. -1 when empty.
double exact_quantile(std::vector<double> v, double q) {
  if (v.empty()) return -1.0;
  std::sort(v.begin(), v.end());
  double rank = std::ceil(q * static_cast<double>(v.size()));
  if (rank < 1.0) rank = 1.0;
  std::size_t idx = static_cast<std::size_t>(rank) - 1;
  if (idx >= v.size()) idx = v.size() - 1;
  return v[idx];
}

std::uint64_t u64_field(const JsonValue& obj, const char* key) {
  const JsonValue* v = obj.find(key);
  if (v == nullptr || !v->is_number() || v->number < 0) return 0;
  return static_cast<std::uint64_t>(v->number);
}

/// Quantile field that may be null/absent (never observed): -1 then.
double quantile_field(const JsonValue* obj, const char* key) {
  if (obj == nullptr) return -1.0;
  const JsonValue* v = obj->find(key);
  if (v == nullptr || !v->is_number()) return -1.0;
  return v->number;
}

void ingest_daemon_summary(const LedgerRecord& rec, FleetInstanceStats* st) {
  JsonValue doc;
  if (!json_try_parse(rec.values_json, &doc) || !doc.is_object()) return;
  ++st->summaries;
  const JsonValue* inst = doc.find("instance");
  if (inst != nullptr && inst->is_string() && st->instance.empty())
    st->instance = inst->string;
  st->submitted += u64_field(doc, "submitted");
  st->cold_runs += u64_field(doc, "cold_runs");
  st->warm_hits += u64_field(doc, "warm_hits");
  st->duplicates += u64_field(doc, "duplicates");
  st->rejected += u64_field(doc, "rejected");
  st->cancelled += u64_field(doc, "cancelled");
  st->overflow += u64_field(doc, "overflow");
  const std::uint64_t ingested = u64_field(doc, "ingested");
  const std::uint64_t written = u64_field(doc, "results_written");
  st->ingested += ingested;
  st->results_written += written;
  if (ingested > written) st->lost_requests += ingested - written;
  // Latest summary's quantiles win (they describe the most recent daemon
  // lifetime); keep the previous ones when this lifetime saw no traffic.
  const JsonValue* warm = doc.find("warm_hit_us");
  if (quantile_field(warm, "p99") >= 0) {
    st->warm_hit_us_p50 = quantile_field(warm, "p50");
    st->warm_hit_us_p90 = quantile_field(warm, "p90");
    st->warm_hit_us_p99 = quantile_field(warm, "p99");
  }
  const JsonValue* wait = doc.find("queue_wait_ms");
  if (quantile_field(wait, "p99") >= 0)
    st->queue_wait_ms_p99 = quantile_field(wait, "p99");
}

FleetInstanceStats read_instance(const std::string& path,
                                 std::vector<std::string>* errors) {
  FleetInstanceStats st;
  st.ledger_path = path;
  const LedgerReadResult read = ledger_read(path);
  st.skipped_lines = read.skipped;
  if (read.records.empty() && !read.errors.empty())
    errors->push_back(path + ": " + read.errors.front());
  for (const LedgerRecord& rec : read.records) {
    if (rec.kind == "bench") {
      if (rec.source == "serve_daemon") ingest_daemon_summary(rec, &st);
      continue;
    }
    if (rec.source == "serve") {
      ++st.cold_records;
      st.cold_seconds.push_back(rec.total_seconds);
      if (!rec.config_key.empty()) {
        st.served_keys.insert(rec.config_key);
        st.cold_keys.insert(rec.config_key);
      }
    } else if (rec.source == "serve-hit") {
      ++st.warm_records;
      if (!rec.config_key.empty()) st.served_keys.insert(rec.config_key);
    } else if (rec.source != "serve-rejected") {
      continue;  // non-serve traffic (synthesize_cli runs etc.)
    }
    if (!rec.verdict.empty()) ++st.verdicts[rec.verdict];
  }
  if (st.instance.empty())
    st.instance = fs::path(path).stem().string();
  return st;
}

std::string fmt_quantity(double v, const char* unit) {
  if (v < 0) return "-";
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.3g%s", v, unit);
  return buf;
}

std::string fmt_rate(double v) {
  if (v < 0) return "-";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.1f%%", v * 100.0);
  return buf;
}

void json_quantile(JsonWriter& w, const char* key, double v) {
  if (v < 0)
    w.key(key).null();
  else
    w.key(key).value(v);
}

void add_sample(MetricSamples* out, const std::string& key, double v) {
  out->add(key, JsonValue::make_number(v));
}

void add_quantile_sample(MetricSamples* out, const std::string& key,
                         double v) {
  if (v >= 0) add_sample(out, key, v);
}

}  // namespace

std::vector<std::string> fleet_expand_ledger_args(
    const std::vector<std::string>& args) {
  std::vector<std::string> out;
  for (const std::string& arg : args) {
    if (!has_wildcard(arg)) {
      out.push_back(arg);
      continue;
    }
    const fs::path p(arg);
    const fs::path dir = p.parent_path().empty() ? "." : p.parent_path();
    const std::string pattern = p.filename().string();
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
      if (!entry.is_regular_file(ec)) continue;
      const std::string name = entry.path().filename().string();
      if (wildcard_match(pattern, name))
        out.push_back((p.parent_path() / name).string());
    }
    // A glob matching nothing falls through silently here; the caller sees
    // it as a shrunken instance count, which the fleet gate's instance
    // floor turns into a loud failure.
  }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

FleetReport fleet_aggregate(const std::vector<std::string>& paths) {
  FleetReport rep;
  std::vector<double> all_cold_seconds;
  std::map<std::string, int> cold_instances_per_key;
  std::set<std::string> all_keys;
  for (const std::string& path : paths) {
    FleetInstanceStats st = read_instance(path, &rep.errors);
    rep.submitted += st.submitted;
    rep.cold_runs += st.cold_runs;
    rep.warm_hits += st.warm_hits;
    rep.duplicates += st.duplicates;
    rep.rejected += st.rejected;
    rep.cancelled += st.cancelled;
    rep.overflow += st.overflow;
    rep.lost_requests += st.lost_requests;
    rep.daemon_summaries += st.summaries;
    rep.skipped_lines += st.skipped_lines;
    for (const auto& [verdict, n] : st.verdicts) rep.verdicts[verdict] += n;
    all_cold_seconds.insert(all_cold_seconds.end(), st.cold_seconds.begin(),
                            st.cold_seconds.end());
    for (const std::string& key : st.cold_keys) ++cold_instances_per_key[key];
    all_keys.insert(st.served_keys.begin(), st.served_keys.end());
    rep.warm_hit_us_p50 = std::max(rep.warm_hit_us_p50, st.warm_hit_us_p50);
    rep.warm_hit_us_p90 = std::max(rep.warm_hit_us_p90, st.warm_hit_us_p90);
    rep.warm_hit_us_p99 = std::max(rep.warm_hit_us_p99, st.warm_hit_us_p99);
    rep.instances.push_back(std::move(st));
  }
  rep.unique_configs = all_keys.size();
  for (const auto& [key, n] : cold_instances_per_key)
    if (n > 1) rep.redundant_cold_runs += static_cast<std::uint64_t>(n - 1);
  if (rep.warm_hits + rep.cold_runs > 0)
    rep.warm_hit_rate = static_cast<double>(rep.warm_hits) /
                        static_cast<double>(rep.warm_hits + rep.cold_runs);
  if (rep.submitted > 0)
    rep.dedupe_efficiency =
        static_cast<double>(rep.warm_hits + rep.duplicates) /
        static_cast<double>(rep.submitted);
  if (!all_cold_seconds.empty()) {
    rep.cold_ms_p50 = exact_quantile(all_cold_seconds, 0.50) * 1e3;
    rep.cold_ms_p90 = exact_quantile(all_cold_seconds, 0.90) * 1e3;
    rep.cold_ms_p99 = exact_quantile(all_cold_seconds, 0.99) * 1e3;
  }
  return rep;
}

std::string fleet_markdown(const FleetReport& rep) {
  std::string out;
  out += "## Fleet dashboard (" + std::to_string(rep.instances.size()) +
         " instance" + (rep.instances.size() == 1 ? "" : "s") + ")\n\n";
  out += "| metric | value |\n|---|---|\n";
  auto row = [&out](const std::string& k, const std::string& v) {
    out += "| " + k + " | " + v + " |\n";
  };
  row("submitted", std::to_string(rep.submitted));
  row("cold runs", std::to_string(rep.cold_runs));
  row("warm hits", std::to_string(rep.warm_hits));
  row("duplicates attached", std::to_string(rep.duplicates));
  row("rejected", std::to_string(rep.rejected));
  row("cancelled", std::to_string(rep.cancelled));
  row("overflow submits", std::to_string(rep.overflow));
  row("lost requests", std::to_string(rep.lost_requests));
  row("warm-hit rate", fmt_rate(rep.warm_hit_rate));
  row("dedupe efficiency", fmt_rate(rep.dedupe_efficiency));
  row("unique configs", std::to_string(rep.unique_configs));
  row("redundant cold runs (cross-instance)",
      std::to_string(rep.redundant_cold_runs));
  row("cold latency p50/p90/p99",
      fmt_quantity(rep.cold_ms_p50, "ms") + " / " +
          fmt_quantity(rep.cold_ms_p90, "ms") + " / " +
          fmt_quantity(rep.cold_ms_p99, "ms"));
  row("warm-hit latency p50/p90/p99 (worst instance)",
      fmt_quantity(rep.warm_hit_us_p50, "us") + " / " +
          fmt_quantity(rep.warm_hit_us_p90, "us") + " / " +
          fmt_quantity(rep.warm_hit_us_p99, "us"));
  row("daemon summaries", std::to_string(rep.daemon_summaries));
  row("skipped ledger lines", std::to_string(rep.skipped_lines));

  out += "\n### Verdict mix\n\n| verdict | count |\n|---|---|\n";
  if (rep.verdicts.empty()) out += "| (none) | 0 |\n";
  for (const auto& [verdict, n] : rep.verdicts)
    out += "| " + verdict + " | " + std::to_string(n) + " |\n";

  out +=
      "\n### Instances\n\n"
      "| instance | submitted | cold | warm | dup | rejected | cancelled | "
      "lost | warm p99 | wait p99 | torn lines |\n"
      "|---|---|---|---|---|---|---|---|---|---|---|\n";
  for (const FleetInstanceStats& st : rep.instances) {
    out += "| " + st.instance + " | " + std::to_string(st.submitted) + " | " +
           std::to_string(st.cold_runs) + " | " +
           std::to_string(st.warm_hits) + " | " +
           std::to_string(st.duplicates) + " | " +
           std::to_string(st.rejected) + " | " +
           std::to_string(st.cancelled) + " | " +
           std::to_string(st.lost_requests) + " | " +
           fmt_quantity(st.warm_hit_us_p99, "us") + " | " +
           fmt_quantity(st.queue_wait_ms_p99, "ms") + " | " +
           std::to_string(st.skipped_lines) + " |\n";
  }
  if (!rep.errors.empty()) {
    out += "\n### Read errors\n\n";
    for (const std::string& e : rep.errors) out += "- " + e + "\n";
  }
  return out;
}

std::string fleet_json(const FleetReport& rep) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(1);
  w.key("kind").value("fleet");
  w.key("instances").value(static_cast<std::uint64_t>(rep.instances.size()));
  w.key("daemon_summaries").value(static_cast<std::int64_t>(rep.daemon_summaries));
  w.key("submitted").value(rep.submitted);
  w.key("cold_runs").value(rep.cold_runs);
  w.key("warm_hits").value(rep.warm_hits);
  w.key("duplicates").value(rep.duplicates);
  w.key("rejected").value(rep.rejected);
  w.key("cancelled").value(rep.cancelled);
  w.key("overflow").value(rep.overflow);
  w.key("lost_requests").value(rep.lost_requests);
  w.key("unique_configs").value(rep.unique_configs);
  w.key("redundant_cold_runs").value(rep.redundant_cold_runs);
  json_quantile(w, "warm_hit_rate", rep.warm_hit_rate);
  json_quantile(w, "dedupe_efficiency", rep.dedupe_efficiency);
  json_quantile(w, "cold_ms_p50", rep.cold_ms_p50);
  json_quantile(w, "cold_ms_p90", rep.cold_ms_p90);
  json_quantile(w, "cold_ms_p99", rep.cold_ms_p99);
  json_quantile(w, "warm_hit_us_p50", rep.warm_hit_us_p50);
  json_quantile(w, "warm_hit_us_p90", rep.warm_hit_us_p90);
  json_quantile(w, "warm_hit_us_p99", rep.warm_hit_us_p99);
  w.key("skipped_lines").value(static_cast<std::int64_t>(rep.skipped_lines));
  w.key("verdicts").begin_object();
  for (const auto& [verdict, n] : rep.verdicts) w.key(verdict).value(n);
  w.end_object();
  w.key("per_instance").begin_array();
  for (const FleetInstanceStats& st : rep.instances) {
    w.begin_object();
    w.key("instance").value(st.instance);
    w.key("ledger").value(st.ledger_path);
    w.key("summaries").value(static_cast<std::int64_t>(st.summaries));
    w.key("submitted").value(st.submitted);
    w.key("cold_runs").value(st.cold_runs);
    w.key("warm_hits").value(st.warm_hits);
    w.key("duplicates").value(st.duplicates);
    w.key("rejected").value(st.rejected);
    w.key("cancelled").value(st.cancelled);
    w.key("overflow").value(st.overflow);
    w.key("ingested").value(st.ingested);
    w.key("results_written").value(st.results_written);
    w.key("lost_requests").value(st.lost_requests);
    w.key("cold_records").value(st.cold_records);
    w.key("warm_records").value(st.warm_records);
    json_quantile(w, "warm_hit_us_p50", st.warm_hit_us_p50);
    json_quantile(w, "warm_hit_us_p90", st.warm_hit_us_p90);
    json_quantile(w, "warm_hit_us_p99", st.warm_hit_us_p99);
    json_quantile(w, "queue_wait_ms_p99", st.queue_wait_ms_p99);
    w.key("skipped_lines").value(static_cast<std::int64_t>(st.skipped_lines));
    w.end_object();
  }
  w.end_array();
  if (!rep.errors.empty()) {
    w.key("errors").begin_array();
    for (const std::string& e : rep.errors) w.value(e);
    w.end_array();
  }
  w.end_object();
  return w.str();
}

void fleet_samples(const FleetReport& rep, MetricSamples* out) {
  add_sample(out, "fleet.instances",
             static_cast<double>(rep.instances.size()));
  add_sample(out, "fleet.daemon_summaries",
             static_cast<double>(rep.daemon_summaries));
  add_sample(out, "fleet.submitted", static_cast<double>(rep.submitted));
  add_sample(out, "fleet.cold_runs", static_cast<double>(rep.cold_runs));
  add_sample(out, "fleet.warm_hits", static_cast<double>(rep.warm_hits));
  add_sample(out, "fleet.duplicates", static_cast<double>(rep.duplicates));
  add_sample(out, "fleet.rejected", static_cast<double>(rep.rejected));
  add_sample(out, "fleet.cancelled", static_cast<double>(rep.cancelled));
  add_sample(out, "fleet.overflow", static_cast<double>(rep.overflow));
  add_sample(out, "fleet.lost_requests",
             static_cast<double>(rep.lost_requests));
  add_sample(out, "fleet.unique_configs",
             static_cast<double>(rep.unique_configs));
  add_sample(out, "fleet.redundant_cold_runs",
             static_cast<double>(rep.redundant_cold_runs));
  add_sample(out, "fleet.skipped_lines",
             static_cast<double>(rep.skipped_lines));
  add_quantile_sample(out, "fleet.warm_hit_rate", rep.warm_hit_rate);
  add_quantile_sample(out, "fleet.dedupe_efficiency", rep.dedupe_efficiency);
  add_quantile_sample(out, "fleet.cold_ms_p50", rep.cold_ms_p50);
  add_quantile_sample(out, "fleet.cold_ms_p90", rep.cold_ms_p90);
  add_quantile_sample(out, "fleet.cold_ms_p99", rep.cold_ms_p99);
  add_quantile_sample(out, "fleet.warm_hit_us_p50", rep.warm_hit_us_p50);
  add_quantile_sample(out, "fleet.warm_hit_us_p90", rep.warm_hit_us_p90);
  add_quantile_sample(out, "fleet.warm_hit_us_p99", rep.warm_hit_us_p99);
}

}  // namespace scs
