// RAII trace spans exported as Chrome trace-event JSON.
//
// Spans record wall-clock begin/end (steady clock, nanosecond resolution)
// plus a small per-thread id, and are written out as complete "X" events --
// load the file in chrome://tracing or https://ui.perfetto.dev to see the
// pipeline's stage nesting, per-solver-iteration instants, and cross-thread
// fan-out on a timeline.
//
// Constraints mirror obs/metrics.hpp: a single relaxed atomic load per site
// when disabled, and no feedback into the computation -- timestamps exist
// only in the exported file, never in cached artifacts or results, so
// tracing cannot perturb bitwise determinism.
//
// Activation: env SCS_TRACE=<path> arms collection at first use and writes
// the file at process exit; trace_start()/trace_write() do the same
// programmatically (PipelineConfig::obs, synthesize_cli --trace).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scs {

struct TraceEvent {
  std::string name;
  std::string id;           // correlation id ("rid" arg); empty = uncorrelated
  std::uint32_t tid = 0;    // small stable per-thread id (0 = first seen)
  std::int64_t ts_ns = 0;   // begin, relative to the trace clock origin
  std::int64_t dur_ns = 0;  // 0 for instant events
  char phase = 'X';         // 'X' = complete span, 'i' = instant
};

/// Collection gate: one relaxed atomic load. First call also arms from the
/// SCS_TRACE environment variable (non-empty => enabled + atexit export).
bool trace_enabled();

/// Enable collection and remember `path` as the default export target. A
/// second call while already collecting keeps the first path (the
/// synthesize_many fan-out may race several identical configs).
void trace_start(const std::string& path);

/// Disable collection (buffered events are kept until cleared/written).
void trace_stop();

/// Export everything collected so far as Chrome trace-event JSON to `path`
/// (default: the path given to trace_start / SCS_TRACE). Returns false when
/// no path is known or on I/O failure. Does not clear the buffer.
bool trace_write(const std::string& path = "");

/// Drop all buffered events (tests).
void trace_clear();

/// Copy of the buffered events (tests; order = completion order).
std::vector<TraceEvent> trace_snapshot();

/// Number of events dropped after the buffer cap was hit.
std::uint64_t trace_dropped();

/// Stable small id of the calling thread (assigned on first use).
std::uint32_t trace_thread_id();

/// Record an instant event (e.g. one solver iteration). Call sites guard
/// with trace_enabled().
void trace_instant(const char* name);

/// Nanoseconds since the trace clock origin; pairs with trace_complete()
/// for spans that begin on one thread and end on another (queue waits).
std::int64_t trace_now_ns();

/// Record a complete 'X' event spanning [start_ns, now] on the calling
/// thread. For cross-thread intervals where TraceSpan's RAII shape does
/// not fit; start_ns comes from trace_now_ns() at the interval's origin.
void trace_complete(std::string name, std::int64_t start_ns);

/// Ambient correlation id of the calling thread ("" when unset). Every
/// event recorded while a TraceIdScope is active carries this id as the
/// "rid" arg in the exported trace, so one serve request's full timeline
/// (spool ingest -> queue wait -> solve -> result write, across threads)
/// can be cut from a fleet trace by id.
const std::string& trace_correlation_id();

/// RAII: installs `id` as the calling thread's correlation id, restoring
/// the previous id on destruction. Scopes nest; the pool's parallel_for
/// re-installs the submitting thread's id inside worker-thread helpers so
/// fan-out (race arms, SDP chunks) stays attributed to the request.
/// Cost with tracing disabled: two thread-local string moves, no locks --
/// but serve/pipeline sites additionally guard installation on
/// trace_enabled() so the disabled path stays at one relaxed load.
class TraceIdScope {
 public:
  explicit TraceIdScope(std::string id);
  ~TraceIdScope();
  TraceIdScope(const TraceIdScope&) = delete;
  TraceIdScope& operator=(const TraceIdScope&) = delete;

 private:
  std::string prev_;
};

/// RAII span: records one complete event from construction to destruction.
/// Construction with tracing disabled costs one relaxed load; such a span
/// stays inactive even if tracing is enabled before it closes.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name);
  /// Dynamic-name overload (e.g. "synthesize:" + benchmark).
  explicit TraceSpan(std::string name);
  ~TraceSpan();
  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// End the span now (records the event; the destructor becomes a no-op).
  /// For sections whose locals must outlive the span.
  void close();

 private:
  bool active_;
  std::string name_;
  std::int64_t start_ns_ = 0;
};

}  // namespace scs
