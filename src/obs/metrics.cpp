#include "obs/metrics.hpp"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>

#include "obs/json_writer.hpp"

namespace scs {

// Instruments live in node-stable maps so references handed to callers
// survive any later registration. One mutex guards registration only; the
// hot path (instrument updates) never takes it.
struct MetricsRegistry::Impl {
  mutable std::mutex mu;
  std::map<std::string, std::unique_ptr<Counter>> counters;
  std::map<std::string, std::unique_ptr<Gauge>> gauges;
  std::map<std::string, std::unique_ptr<Histogram>> histograms;
};

std::uint64_t Histogram::quantile_upper(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // ceil(q * n) with a floor of 1: the q-quantile rank among n samples.
  std::uint64_t rank = static_cast<std::uint64_t>(q * static_cast<double>(n));
  if (static_cast<double>(rank) < q * static_cast<double>(n)) ++rank;
  if (rank == 0) rank = 1;
  const std::uint64_t mx = max();
  std::uint64_t cum = 0;
  for (int b = 0; b < kBuckets; ++b) {
    cum += bucket_count(b);
    if (cum >= rank) {
      if (b == kBuckets - 1) return mx;  // unbounded tail: max is the bound
      return std::min(bucket_bound(b), mx);
    }
  }
  return mx;  // racing observes: fall back to the tracked max
}

MetricsRegistry::Impl& MetricsRegistry::impl() const {
  static Impl* impl = new Impl;  // leaked: usable from atexit handlers
  return *impl;
}

MetricsRegistry& MetricsRegistry::instance() {
  static MetricsRegistry* reg = new MetricsRegistry;
  return *reg;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.counters[name];
  if (!slot) slot = std::make_unique<Counter>();
  return *slot;
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.gauges[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return *slot;
}

Histogram& MetricsRegistry::histogram(const std::string& name) {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  auto& slot = im.histograms[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return *slot;
}

std::string MetricsRegistry::json() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  JsonWriter w;
  w.begin_object();
  w.key("counters").begin_object();
  for (const auto& [name, c] : im.counters) w.key(name).value(c->value());
  w.end_object();
  w.key("gauges").begin_object();
  for (const auto& [name, g] : im.gauges) {
    w.key(name).begin_object();
    w.key("value").value(static_cast<std::int64_t>(g->value()));
    w.key("max").value(static_cast<std::int64_t>(g->max()));
    w.end_object();
  }
  w.end_object();
  w.key("histograms").begin_object();
  for (const auto& [name, h] : im.histograms) {
    w.key(name).begin_object();
    w.key("count").value(h->count());
    w.key("sum").value(h->sum());
    w.key("max").value(h->max());
    // Derived quantile estimates (bucket upper bounds, clamped to max) so
    // ledger/baseline consumers get p50/p90/p99 without re-deriving them
    // from the raw buckets -- which stay alongside for exact analysis.
    // Empty histogram => null: a never-observed latency is unknown, not 0.
    if (h->count() == 0) {
      w.key("p50").null();
      w.key("p90").null();
      w.key("p99").null();
    } else {
      w.key("p50").value(h->quantile_upper(0.50));
      w.key("p90").value(h->quantile_upper(0.90));
      w.key("p99").value(h->quantile_upper(0.99));
    }
    w.key("buckets").begin_array();
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      const std::uint64_t n = h->bucket_count(b);
      if (n == 0) continue;  // sparse: empty buckets carry no information
      w.begin_object();
      if (b == Histogram::kBuckets - 1)
        w.key("le").value("inf");
      else
        w.key("le").value(Histogram::bucket_bound(b));
      w.key("count").value(n);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_object();
  w.end_object();
  return w.str();
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  MetricsSnapshot snap;
  snap.counters.reserve(im.counters.size());
  for (const auto& [name, c] : im.counters)
    snap.counters.push_back({name, c->value()});
  snap.gauges.reserve(im.gauges.size());
  for (const auto& [name, g] : im.gauges)
    snap.gauges.push_back({name, g->value(), g->max()});
  snap.histograms.reserve(im.histograms.size());
  for (const auto& [name, h] : im.histograms) {
    MetricsSnapshot::HistogramSample s;
    s.name = name;
    s.count = h->count();
    s.sum = h->sum();
    s.max = h->max();
    s.p50 = h->quantile_upper(0.50);
    s.p90 = h->quantile_upper(0.90);
    s.p99 = h->quantile_upper(0.99);
    for (int b = 0; b < Histogram::kBuckets; ++b)
      s.buckets[b] = h->bucket_count(b);
    snap.histograms.push_back(std::move(s));
  }
  return snap;
}

void MetricsRegistry::reset_for_tests() {
  Impl& im = impl();
  std::lock_guard<std::mutex> lk(im.mu);
  for (auto& [name, c] : im.counters) c->reset();
  for (auto& [name, g] : im.gauges) g->reset();
  for (auto& [name, h] : im.histograms) h->reset();
}

namespace {

/// One-time env arming: resolves g_metrics_state from -1 to 0/1 (without
/// clobbering a concurrent explicit set_metrics_enabled) and registers the
/// atexit dump when SCS_METRICS names a path. Returns the path ("" unset).
const std::string& arm_env_once() {
  static const std::string* path = [] {
    auto* p = new std::string;  // leaked: usable from the atexit handler
    int state = 0;
    const char* env = std::getenv("SCS_METRICS");
    if (env != nullptr && *env != '\0') {
      *p = env;
      state = 1;
      std::atexit([] { metrics_write(metrics_env_path()); });
    }
    int expected = -1;
    detail::g_metrics_state.compare_exchange_strong(expected, state,
                                                    std::memory_order_relaxed);
    return p;
  }();
  return *path;
}

}  // namespace

namespace detail {

std::atomic<int> g_metrics_state{-1};

bool metrics_arm_from_env() {
  arm_env_once();
  return g_metrics_state.load(std::memory_order_relaxed) > 0;
}

}  // namespace detail

void set_metrics_enabled(bool on) {
  arm_env_once();  // keep the SCS_METRICS atexit dump armed regardless
  detail::g_metrics_state.store(on ? 1 : 0, std::memory_order_relaxed);
}

const std::string& metrics_env_path() { return arm_env_once(); }

bool metrics_write(const std::string& path) {
  if (path.empty()) return false;
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << MetricsRegistry::instance().json() << '\n';
  return static_cast<bool>(out);
}

}  // namespace scs
