// Minimal JSON emission and validation shared by every component that
// writes JSON (reports, trace export, metrics dump, benchmark outputs).
//
// Before this existed each emitter concatenated raw strings, so a benchmark
// name or failure message containing a quote, backslash, or control
// character produced unparseable output. All emission now funnels through
// JsonWriter (or json_escape directly), and json_parse_valid gives tests
// and CI smoke jobs a dependency-free way to assert that an emitted blob
// actually parses.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace scs {

/// Escape `s` for inclusion inside a JSON string literal (no surrounding
/// quotes): ", \, and control characters below 0x20 become escape
/// sequences; everything else passes through byte-for-byte.
std::string json_escape(std::string_view s);

/// Format a double as a JSON number: finite values round-trip via
/// max_digits10; NaN/Inf (not representable in JSON) become null and bump
/// the process-wide json_nonfinite_dropped() counter.
/// `precision` <= 0 means shortest round-trip.
std::string json_number(double v, int precision = 0);

/// Process-wide count of non-finite doubles that json_number turned into
/// null. A nonzero value in a ledger record flags that some emitted metric
/// was NaN/Inf at the source. Kept as a plain atomic here (not a
/// MetricsRegistry counter) so the registry's own serialization can drop a
/// non-finite value without re-entering its lock.
std::uint64_t json_nonfinite_dropped();

/// Reset the dropped-value counter (tests only).
void json_nonfinite_dropped_reset_for_tests();

/// Streaming JSON builder with automatic comma placement. Usage:
///
///   JsonWriter w;
///   w.begin_object();
///   w.key("name").value(name);          // value is escaped
///   w.key("items").begin_array();
///   w.value(1).value(2);
///   w.end_array();
///   w.end_object();
///   std::string blob = w.str();
///
/// The writer does not validate call order beyond what the comma logic
/// needs; emitting a key outside an object is a programming error.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Emit an object key (escaped) followed by ':'.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view s);  // escaped string value
  JsonWriter& value(const char* s) { return value(std::string_view(s)); }
  JsonWriter& value(bool b);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(double v, int precision = 0);
  JsonWriter& null();

  /// Splice a pre-serialized JSON value (e.g. another writer's str()).
  JsonWriter& raw(std::string_view json);

  const std::string& str() const { return out_; }

 private:
  void before_value();

  std::string out_;
  // One frame per open container: true once the first element was written
  // (so the next element needs a comma). `expect_value_` is set between a
  // key and its value.
  std::vector<bool> has_elem_;
  bool expect_value_ = false;
};

/// Strict validating parse of a complete JSON document (single value plus
/// optional surrounding whitespace). Returns true when `text` is valid
/// JSON; on failure `error` (if non-null) gets a short reason with the
/// byte offset. No DOM is built.
bool json_parse_valid(std::string_view text, std::string* error = nullptr);

}  // namespace scs
