#include "obs/json_reader.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

namespace scs {

const JsonValue* JsonValue::find(std::string_view key) const {
  if (!is_object()) return nullptr;
  const JsonValue* found = nullptr;
  for (const auto& [k, v] : members)
    if (k == key) found = &v;
  return found;
}

std::int64_t JsonValue::int_or(std::int64_t fallback) const {
  if (!is_number() || !std::isfinite(number)) return fallback;
  return static_cast<std::int64_t>(number);
}

JsonValue JsonValue::make_bool(bool b) {
  JsonValue v;
  v.type = Type::kBool;
  v.boolean = b;
  return v;
}

JsonValue JsonValue::make_number(double d) {
  JsonValue v;
  v.type = Type::kNumber;
  v.number = d;
  return v;
}

JsonValue JsonValue::make_string(std::string s) {
  JsonValue v;
  v.type = Type::kString;
  v.string = std::move(s);
  return v;
}

namespace {

/// Same grammar and limits as the json_parse_valid validator
/// (src/obs/json_writer.cpp), but building the document as it goes.
struct Reader {
  std::string_view text;
  std::size_t pos = 0;

  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError(why, pos);
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos;
      else
        break;
    }
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  void literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) fail("bad literal");
    pos += lit.size();
  }

  /// Append `cp` to `out` as UTF-8.
  static void append_utf8(std::string& out, std::uint32_t cp) {
    if (cp < 0x80) {
      out += static_cast<char>(cp);
    } else if (cp < 0x800) {
      out += static_cast<char>(0xC0 | (cp >> 6));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      out += static_cast<char>(0xE0 | (cp >> 12));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      out += static_cast<char>(0xF0 | (cp >> 18));
      out += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      out += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  std::uint32_t hex4() {
    std::uint32_t v = 0;
    for (int k = 0; k < 4; ++k, ++pos) {
      if (eof()) fail("bad \\u escape");
      const char c = text[pos];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v |= static_cast<std::uint32_t>(c - '0');
      else if (c >= 'a' && c <= 'f')
        v |= static_cast<std::uint32_t>(c - 'a' + 10);
      else if (c >= 'A' && c <= 'F')
        v |= static_cast<std::uint32_t>(c - 'A' + 10);
      else
        fail("bad \\u escape");
    }
    return v;
  }

  std::string string() {
    if (eof() || peek() != '"') fail("expected string");
    ++pos;
    std::string out;
    while (!eof()) {
      const unsigned char c = text[pos];
      if (c == '"') {
        ++pos;
        return out;
      }
      if (c < 0x20) fail("raw control character in string");
      if (c == '\\') {
        ++pos;
        if (eof()) fail("truncated escape");
        const char e = text[pos];
        switch (e) {
          case '"': out += '"'; ++pos; break;
          case '\\': out += '\\'; ++pos; break;
          case '/': out += '/'; ++pos; break;
          case 'b': out += '\b'; ++pos; break;
          case 'f': out += '\f'; ++pos; break;
          case 'n': out += '\n'; ++pos; break;
          case 'r': out += '\r'; ++pos; break;
          case 't': out += '\t'; ++pos; break;
          case 'u': {
            ++pos;
            std::uint32_t cp = hex4();
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              // High surrogate: the low half must follow immediately.
              if (text.substr(pos, 2) != "\\u") fail("lone high surrogate");
              pos += 2;
              const std::uint32_t lo = hex4();
              if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate");
              cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
            } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
              fail("lone low surrogate");
            }
            append_utf8(out, cp);
            break;
          }
          default:
            fail("bad escape character");
        }
      } else {
        out += static_cast<char>(c);
        ++pos;
      }
    }
    fail("unterminated string");
  }

  void digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      fail("expected digit");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
  }

  double number() {
    const std::size_t start = pos;
    if (!eof() && peek() == '-') ++pos;
    if (eof()) fail("truncated number");
    if (peek() == '0')
      ++pos;
    else
      digits();
    if (!eof() && peek() == '.') {
      ++pos;
      digits();
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      digits();
    }
    // The slice passed the strict grammar above, so strtod consumes exactly
    // this range; out-of-range magnitudes saturate to +-inf, which is still
    // an honest reading of the text.
    const std::string slice(text.substr(start, pos - start));
    return std::strtod(slice.c_str(), nullptr);
  }

  JsonValue value(int depth) {
    if (depth > 256) fail("nesting too deep");
    skip_ws();
    if (eof()) fail("expected value");
    JsonValue v;
    const char c = peek();
    if (c == '{') {
      v.type = JsonValue::Type::kObject;
      object(v, depth);
    } else if (c == '[') {
      v.type = JsonValue::Type::kArray;
      array(v, depth);
    } else if (c == '"') {
      v.type = JsonValue::Type::kString;
      v.string = string();
    } else if (c == 't') {
      literal("true");
      v.type = JsonValue::Type::kBool;
      v.boolean = true;
    } else if (c == 'f') {
      literal("false");
      v.type = JsonValue::Type::kBool;
      v.boolean = false;
    } else if (c == 'n') {
      literal("null");
    } else if (c == '-' || std::isdigit(static_cast<unsigned char>(c))) {
      v.type = JsonValue::Type::kNumber;
      v.number = number();
    } else {
      fail("unexpected character");
    }
    return v;
  }

  void object(JsonValue& v, int depth) {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      if (eof() || peek() != ':') fail("expected ':'");
      ++pos;
      v.members.emplace_back(std::move(key), value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return;
      }
      fail("expected ',' or '}'");
    }
  }

  void array(JsonValue& v, int depth) {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return;
    }
    for (;;) {
      v.items.push_back(value(depth + 1));
      skip_ws();
      if (eof()) fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return;
      }
      fail("expected ',' or ']'");
    }
  }
};

}  // namespace

JsonValue json_parse(std::string_view text) {
  Reader r{text};
  JsonValue v = r.value(0);
  r.skip_ws();
  if (!r.eof()) r.fail("trailing garbage");
  return v;
}

bool json_try_parse(std::string_view text, JsonValue* out, std::string* error) {
  try {
    JsonValue v = json_parse(text);
    if (out != nullptr) *out = std::move(v);
    return true;
  } catch (const JsonParseError& e) {
    if (error != nullptr) *error = e.what();
    if (out != nullptr) *out = JsonValue{};
    return false;
  }
}

}  // namespace scs
