// Prometheus-style text exposition of a MetricsSnapshot.
//
// The daemon's periodic exporter (serve/spool) renders the registry into
// <spool>/metrics.txt in the Prometheus text format (version 0.0.4) so any
// standard scraper -- or a human with `cat` -- can watch a live instance
// without parsing JSON. Rendering is pull-only and file-based like the rest
// of the spool protocol: no sockets, no background HTTP server.
//
// Conventions:
//   - every name is prefixed "scs_" and sanitized to [a-zA-Z0-9_:]
//     (dots in registry names become underscores: serve.warm_hits ->
//     scs_serve_warm_hits);
//   - gauges additionally expose their high-water mark as <name>_max;
//   - histograms expose cumulative _bucket{le="..."} series (upper bounds
//     are the registry's power-of-two bounds, last is le="+Inf") plus _sum
//     and _count, matching Prometheus histogram semantics;
//   - quantiles are NOT exposed for empty histograms (a never-observed
//     latency is unknown, not 0); non-empty histograms expose
//     <name>_quantile{q="0.5|0.9|0.99"} upper-bound estimates.
#pragma once

#include <string>

#include "obs/metrics.hpp"

namespace scs {

/// Sanitize a registry instrument name into a Prometheus metric name
/// component: [a-zA-Z0-9_:] pass through, everything else becomes '_'.
/// (No "scs_" prefix; prometheus_text adds it.)
std::string prometheus_sanitize(const std::string& name);

/// Render the whole snapshot as Prometheus text exposition format.
std::string prometheus_text(const MetricsSnapshot& snap);

}  // namespace scs
