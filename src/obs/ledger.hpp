// Append-only, schema-versioned JSONL run ledger.
//
// PR 4's trace spans and metrics registry die with the process; nothing
// tracks how a run compared to yesterday's. The ledger is the persistence
// layer for exactly that: every synthesize()/synthesize_from_law() run
// (and every bench_* harness) appends one self-contained JSON record --
// run identity, per-stage wall-clock, verdict, PAC epsilon, metrics
// snapshot -- to a shared .jsonl file, turning ad-hoc console output into
// a cross-run time series the baseline gate (src/obs/baseline,
// examples/report_cli) can regress against.
//
// Write discipline mirrors log_line: the full record (one line, trailing
// newline included) is formatted first and lands in a single locked
// append, so concurrent synthesize_many workers -- or several processes
// appending to the same file via O_APPEND -- never interleave mid-record.
// A reader that finds a torn or truncated trailing line (crash mid-write)
// rejects that line and keeps every intact record before it.
//
// Determinism: the ledger only *observes* finished results. Nothing in
// the numeric stack reads it back, so arming it cannot perturb bitwise
// 1-vs-N-thread reproducibility (parallel_determinism_test).
//
// Activation (first match wins):
//   - PipelineConfig::obs.ledger_path / an explicit path argument;
//   - env SCS_LEDGER=<path> arms every pipeline run and bench harness.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace scs {

/// Bump when a field changes meaning or a required field is added; readers
/// reject records from other schema versions instead of misreading them
/// (same policy as the artifact store's format version).
inline constexpr int kLedgerSchemaVersion = 1;

/// One ledger line. Two kinds share the identity header:
///   "synthesis" -- one pipeline run on one benchmark (stage timings,
///                  verdict, PAC model, metrics snapshot);
///   "bench"     -- one bench_* harness completion (its summary JSON
///                  riding along in values_json).
struct LedgerRecord {
  // ---- Identity header (both kinds).
  int schema = kLedgerSchemaVersion;
  std::string kind = "synthesis";
  /// Unique per append: "<timestamp_ms>-<pid>-<seq>". Filled by
  /// ledger_append when empty.
  std::string run_id;
  /// Producer: "synthesize", "synthesize_from_law", "bench_obs", ...
  std::string source;
  /// Wall-clock at append, ms since the Unix epoch (filled when 0).
  std::int64_t timestamp_ms = 0;
  /// Best-effort git HEAD of the working tree ("" when not a checkout).
  /// Filled by ledger_append when empty.
  std::string git_head;
  /// Identity of the run's configuration: the hex stage-cache-style key
  /// folding benchmark content + seed + config slice (see
  /// src/store/stage_cache), so "same config_key" means "comparable runs".
  std::string config_key;
  std::uint64_t seed = 0;
  int threads = 0;

  // ---- Synthesis payload (kind == "synthesis").
  std::string benchmark;
  std::string verdict;  // "VERIFIED" | "UNVERIFIED"
  std::string failure_stage;
  bool pac_valid = true;
  double pac_eps = 0.0;
  double pac_error = 0.0;
  int pac_degree = 0;
  std::uint64_t pac_samples = 0;
  int barrier_degree = 0;
  /// Portfolio-race provenance (PR 9): true when the barrier stage raced
  /// its ladder arms (or replayed a recorded winner); race_winner_arm is
  /// the flat arm index to pin via BarrierRaceConfig::replay_arm for a
  /// bitwise replay (-1 = no winner / not raced). Optional in schema 1:
  /// absent fields parse to these defaults.
  bool barrier_raced = false;
  int race_winner_arm = -1;
  int race_arms_launched = 0;
  int race_arms_cancelled = 0;
  double rl_seconds = 0.0;
  double pac_seconds = 0.0;
  double barrier_seconds = 0.0;
  double validation_seconds = 0.0;
  double total_seconds = 0.0;
  /// Non-finite doubles dropped (serialized as null) by the process's
  /// JsonWriter up to this record -- a poisoned-output tripwire.
  std::uint64_t json_dropped = 0;
  /// Raw MetricsRegistry snapshot JSON ("" when metrics were off).
  std::string metrics_json;

  // ---- Bench payload (kind == "bench"): the harness's summary object
  // (e.g. the exact blob it wrote to BENCH_*.json), "" for none.
  std::string values_json;
};

/// Serialize one record as a single JSON object (no trailing newline).
/// Guaranteed to parse under json_parse / json_parse_valid.
std::string ledger_record_json(const LedgerRecord& record);

/// Parse one ledger line. Returns false (with a reason in `error` when
/// non-null) for malformed JSON, a schema-version mismatch, an unknown
/// kind, or a missing required field -- the torn/truncated-record path.
bool ledger_record_parse(std::string_view line, LedgerRecord* out,
                         std::string* error = nullptr);

/// Append `record` to the JSONL file at `path` (created on first use),
/// filling run_id / timestamp_ms / git_head when unset. One atomic locked
/// write of the complete line. Returns false on I/O failure (logged, never
/// throws -- the ledger must not take down a run it observes).
bool ledger_append(const std::string& path, LedgerRecord record);

/// Convenience for bench harnesses: append a "bench" record carrying the
/// harness's summary JSON to `path`, or to SCS_LEDGER when `path` is
/// empty. No-op (returning false) when neither names a file.
bool ledger_append_bench(const std::string& source,
                         const std::string& values_json,
                         const std::string& path = "");

struct LedgerReadResult {
  std::vector<LedgerRecord> records;
  /// Lines rejected (torn writes, foreign schema, malformed JSON).
  int skipped = 0;
  /// One "line <n>: <reason>" entry per rejected line.
  std::vector<std::string> errors;
};

/// Read every intact record from a ledger file. Blank lines are ignored;
/// malformed lines are counted and reported, never fatal. A missing file
/// yields zero records plus one error entry.
LedgerReadResult ledger_read(const std::string& path);

/// Ledger path requested via SCS_LEDGER ("" when unset).
std::string ledger_env_path();

/// Effective ledger path for a run: `configured` when non-empty, else
/// SCS_LEDGER, else "" (ledger off).
std::string resolve_ledger_path(const std::string& configured);

/// Best-effort current git HEAD: reads .git/HEAD (following one level of
/// ref indirection) from `dir` upward. Returns "" when no checkout is
/// found. Pure filesystem -- no subprocess.
std::string git_head_describe(const std::string& dir = ".");

}  // namespace scs
