// Baseline regression gate: compare the current run's metrics (ledger
// records, BENCH_*.json blobs, google-benchmark output) against checked-in
// baselines/*.json with per-metric tolerance bands.
//
// A baseline file is a flat map of metric key -> check:
//
//   {
//     "schema": 1,
//     "name": "bench_obs",
//     "metrics": {
//       "bench_obs.traced_thread_determinism": {"kind": "exact",
//                                               "value": true},
//       "bench_obs.disabled_overhead_pct":     {"kind": "max",
//                                               "value": 5.0},
//       "C1.total_seconds": {"kind": "timing", "value": 9.0,
//                            "rel_tol": 3.0}
//     }
//   }
//
// Check kinds:
//   "exact"  -- every current sample must equal value (verdict strings,
//               determinism booleans, structural integers). Exact for
//               verdicts/eps bounds per the Table-2 gate.
//   "max"    -- worst (largest) current sample must be <= value
//               (PAC epsilon bounds, overhead percentages).
//   "min"    -- worst (smallest) current sample must be >= value
//               (success counts, sample floors).
//   "timing" -- median of the current samples must be <=
//               value * (1 + rel_tol). Relative, median-of-N: timings are
//               noisy, so one slow outlier does not gate, and a faster run
//               reports kImproved instead of failing.
//
// A baseline key with no current sample is kMissingCurrent and FAILS the
// gate: a benchmark silently dropping out of the bench suite must not
// read as a pass. Current metrics with no baseline entry are ignored
// (adding instrumentation never breaks the gate).
#pragma once

#include <map>
#include <string>
#include <vector>

#include "obs/json_reader.hpp"

namespace scs {

inline constexpr int kBaselineSchemaVersion = 1;

struct BaselineCheck {
  std::string key;
  std::string kind;  // "exact" | "max" | "min" | "timing"
  JsonValue expect;  // scalar
  double rel_tol = 0.0;  // timing only: allowed relative slowdown
};

struct BaselineFile {
  int schema = kBaselineSchemaVersion;
  std::string name;
  std::vector<BaselineCheck> checks;
};

/// Parse a baseline document. Throws JsonParseError on malformed JSON or
/// a structurally invalid / version-skewed baseline (a bad gate definition
/// must fail loudly, not soft-pass).
BaselineFile baseline_parse(std::string_view text);

/// Load + parse a baseline file; throws JsonParseError (missing file
/// included -- a named gate that cannot load is a gate failure).
BaselineFile baseline_load_file(const std::string& path);

/// Current metric samples, keyed by dotted metric name. Multiple samples
/// per key (several ledger records of the same benchmark) feed the
/// median-of-N timing comparison and worst-case max/min checks.
class MetricSamples {
 public:
  void add(const std::string& key, JsonValue scalar);
  const std::vector<JsonValue>* find(const std::string& key) const;
  std::size_t size() const { return samples_.size(); }
  const std::map<std::string, std::vector<JsonValue>>& all() const {
    return samples_;
  }

  /// Flatten a parsed JSON document into dotted keys under `prefix`:
  /// objects recurse ("a.b.c"), arrays index ("a.0"), scalars land as
  /// samples. google-benchmark documents (top-level "benchmarks" array)
  /// flatten as "<prefix>.<benchmark name>.<field>" instead.
  void add_flattened(const std::string& prefix, const JsonValue& doc);

 private:
  std::map<std::string, std::vector<JsonValue>> samples_;
};

enum class CheckStatus {
  kPass,
  kImproved,        // timing: median below baseline
  kRegressed,       // tolerance band or exact/bound check violated
  kMissingCurrent,  // baseline key absent from the current metrics
};

const char* check_status_name(CheckStatus s);

struct CheckResult {
  std::string key;
  std::string kind;
  CheckStatus status = CheckStatus::kPass;
  std::string baseline_repr;  // human-readable expectation
  std::string current_repr;   // human-readable observation
  /// Timing checks: (median - baseline) / baseline * 100 (0 otherwise).
  double delta_pct = 0.0;
  std::string detail;  // one-line explanation for failures
};

struct BaselineReport {
  std::string name;
  std::vector<CheckResult> rows;
  int regressed = 0;
  int missing = 0;
  bool passed() const { return regressed == 0 && missing == 0; }
};

/// Evaluate every check in `baseline` against `current`.
BaselineReport baseline_compare(const BaselineFile& baseline,
                                const MetricSamples& current);

/// Markdown delta report over one or more gate evaluations (one table per
/// baseline file, failures listed first).
std::string baseline_report_markdown(const std::vector<BaselineReport>& reports);

/// The same content as a JSON document (machine-readable CI artifact).
std::string baseline_report_json(const std::vector<BaselineReport>& reports);

}  // namespace scs
