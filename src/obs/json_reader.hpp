// Strict JSON value parser -- the read half of the obs JSON stack.
//
// PR 4 gave every emitter a shared JsonWriter plus a validating
// (DOM-free) json_parse_valid; this module adds the missing consumer
// side: a small document model (JsonValue) and a strict recursive-descent
// parser over exactly the grammar json_parse_valid accepts. It backs the
// run-ledger reader (src/obs/ledger), the baseline comparator
// (src/obs/baseline), and report_cli's ingestion of BENCH_*.json /
// google-benchmark output.
//
// Strictness matches the validator: no comments, no trailing commas, no
// bare NaN/Infinity tokens, raw control characters rejected inside
// strings, one value per document, nesting capped. \uXXXX escapes are
// decoded to UTF-8 (surrogate pairs included); a lone surrogate is an
// error rather than silently mangled data.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace scs {

/// Parse failure: `what()` carries a short reason plus the byte offset.
class JsonParseError : public std::runtime_error {
 public:
  JsonParseError(const std::string& why, std::size_t offset)
      : std::runtime_error(why + " at offset " + std::to_string(offset)),
        offset_(offset) {}
  std::size_t offset() const { return offset_; }

 private:
  std::size_t offset_;
};

/// One parsed JSON value. Object members keep insertion order (ledger and
/// baseline files are written with deliberate key order; round-trips and
/// error messages stay readable).
class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> items;                            // arrays
  std::vector<std::pair<std::string, JsonValue>> members;  // objects

  bool is_null() const { return type == Type::kNull; }
  bool is_bool() const { return type == Type::kBool; }
  bool is_number() const { return type == Type::kNumber; }
  bool is_string() const { return type == Type::kString; }
  bool is_array() const { return type == Type::kArray; }
  bool is_object() const { return type == Type::kObject; }

  /// Member lookup (objects only). Last occurrence wins when a document
  /// carries duplicate keys, matching what a streaming overwrite would do.
  /// Returns nullptr when absent or when this value is not an object.
  const JsonValue* find(std::string_view key) const;

  // Leaf accessors with defaults (no throwing on shape mismatch -- ledger
  // consumers degrade per record, they do not abort a whole file).
  double number_or(double fallback) const {
    return is_number() ? number : fallback;
  }
  bool bool_or(bool fallback) const { return is_bool() ? boolean : fallback; }
  const std::string& string_or(const std::string& fallback) const {
    return is_string() ? string : fallback;
  }
  /// Number coerced to int64 (truncating); `fallback` when not a number.
  std::int64_t int_or(std::int64_t fallback) const;

  // Construction helpers (tests, synthetic baselines).
  static JsonValue make_null() { return JsonValue{}; }
  static JsonValue make_bool(bool b);
  static JsonValue make_number(double v);
  static JsonValue make_string(std::string s);
};

/// Parse a complete JSON document (single value + surrounding whitespace).
/// Throws JsonParseError on any deviation from the grammar.
JsonValue json_parse(std::string_view text);

/// Non-throwing variant: returns false and fills `error` (if non-null)
/// instead. `out` is left default-constructed on failure.
bool json_try_parse(std::string_view text, JsonValue* out,
                    std::string* error = nullptr);

}  // namespace scs
