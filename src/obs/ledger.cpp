#include "obs/ledger.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <sstream>

#include "obs/json_reader.hpp"
#include "obs/json_writer.hpp"

#ifdef _WIN32
#include <process.h>
#else
#include <unistd.h>
#endif

namespace scs {

namespace {

std::mutex& ledger_mutex() {
  static std::mutex mu;
  return mu;
}

std::int64_t now_ms() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::system_clock::now().time_since_epoch())
      .count();
}

int process_id() {
#ifdef _WIN32
  return _getpid();
#else
  return static_cast<int>(getpid());
#endif
}

std::string next_run_id(std::int64_t ts_ms) {
  static std::atomic<std::uint64_t> seq{0};
  std::ostringstream os;
  os << ts_ms << '-' << process_id() << '-'
     << seq.fetch_add(1, std::memory_order_relaxed);
  return os.str();
}

/// First line of a small text file, trimmed ("" on failure).
std::string read_first_line(const std::string& path) {
  std::ifstream in(path);
  if (!in) return {};
  std::string line;
  std::getline(in, line);
  while (!line.empty() && (line.back() == '\r' || line.back() == '\n' ||
                           line.back() == ' '))
    line.pop_back();
  return line;
}

}  // namespace

std::string git_head_describe(const std::string& dir) {
  // Walk up a few levels looking for .git/HEAD; enough for "run from the
  // repo root or a build subdirectory", which is the only case we serve.
  std::string base = dir.empty() ? std::string(".") : dir;
  for (int depth = 0; depth < 6; ++depth) {
    const std::string head = read_first_line(base + "/.git/HEAD");
    if (!head.empty()) {
      constexpr std::string_view kRefPrefix = "ref: ";
      if (head.rfind(kRefPrefix, 0) == 0) {
        const std::string ref = head.substr(kRefPrefix.size());
        const std::string sha = read_first_line(base + "/.git/" + ref);
        return sha.empty() ? head : sha;
      }
      return head;  // detached HEAD: already a sha
    }
    base += "/..";
  }
  return {};
}

std::string ledger_env_path() {
  const char* env = std::getenv("SCS_LEDGER");
  return (env != nullptr && *env != '\0') ? std::string(env) : std::string();
}

std::string resolve_ledger_path(const std::string& configured) {
  if (!configured.empty()) return configured;
  return ledger_env_path();
}

std::string ledger_record_json(const LedgerRecord& r) {
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(r.schema);
  w.key("kind").value(r.kind);
  w.key("run_id").value(r.run_id);
  w.key("source").value(r.source);
  w.key("timestamp_ms").value(r.timestamp_ms);
  w.key("git_head").value(r.git_head);
  w.key("config_key").value(r.config_key);
  w.key("seed").value(r.seed);
  w.key("threads").value(r.threads);
  if (r.kind == "synthesis") {
    w.key("benchmark").value(r.benchmark);
    w.key("verdict").value(r.verdict);
    w.key("failure_stage").value(r.failure_stage);
    w.key("pac_valid").value(r.pac_valid);
    w.key("pac_eps").value(r.pac_eps);
    w.key("pac_error").value(r.pac_error);
    w.key("pac_degree").value(r.pac_degree);
    w.key("pac_samples").value(r.pac_samples);
    w.key("barrier_degree").value(r.barrier_degree);
    w.key("barrier_raced").value(r.barrier_raced);
    w.key("race_winner_arm").value(r.race_winner_arm);
    w.key("race_arms_launched").value(r.race_arms_launched);
    w.key("race_arms_cancelled").value(r.race_arms_cancelled);
    w.key("rl_seconds").value(r.rl_seconds, 6);
    w.key("pac_seconds").value(r.pac_seconds, 6);
    w.key("barrier_seconds").value(r.barrier_seconds, 6);
    w.key("validation_seconds").value(r.validation_seconds, 6);
    w.key("total_seconds").value(r.total_seconds, 6);
    w.key("json_dropped").value(r.json_dropped);
    if (!r.metrics_json.empty()) w.key("metrics").raw(r.metrics_json);
  } else if (!r.values_json.empty()) {
    w.key("values").raw(r.values_json);
  }
  w.end_object();
  return w.str();
}

namespace {

bool parse_fail(std::string* error, const std::string& why) {
  if (error != nullptr) *error = why;
  return false;
}

/// Re-serialize a parsed JsonValue (for round-tripping the metrics/values
/// sub-objects back into the record's raw-JSON fields).
void write_value(JsonWriter& w, const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull: w.null(); break;
    case JsonValue::Type::kBool: w.value(v.boolean); break;
    case JsonValue::Type::kNumber: w.value(v.number); break;
    case JsonValue::Type::kString: w.value(v.string); break;
    case JsonValue::Type::kArray:
      w.begin_array();
      for (const JsonValue& item : v.items) write_value(w, item);
      w.end_array();
      break;
    case JsonValue::Type::kObject:
      w.begin_object();
      for (const auto& [k, member] : v.members) {
        w.key(k);
        write_value(w, member);
      }
      w.end_object();
      break;
  }
}

std::string reserialize(const JsonValue& v) {
  JsonWriter w;
  write_value(w, v);
  return w.str();
}

}  // namespace

bool ledger_record_parse(std::string_view line, LedgerRecord* out,
                         std::string* error) {
  JsonValue doc;
  std::string parse_error;
  if (!json_try_parse(line, &doc, &parse_error))
    return parse_fail(error, parse_error);
  if (!doc.is_object()) return parse_fail(error, "record is not an object");

  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_number())
    return parse_fail(error, "missing schema field");
  if (schema->int_or(0) != kLedgerSchemaVersion)
    return parse_fail(error, "unsupported schema version " +
                                 std::to_string(schema->int_or(0)));

  LedgerRecord r;
  r.schema = static_cast<int>(schema->int_or(0));
  const JsonValue* kind = doc.find("kind");
  if (kind == nullptr || !kind->is_string())
    return parse_fail(error, "missing kind field");
  r.kind = kind->string;
  if (r.kind != "synthesis" && r.kind != "bench")
    return parse_fail(error, "unknown record kind '" + r.kind + "'");

  const auto str = [&doc](const char* key) -> std::string {
    const JsonValue* v = doc.find(key);
    return v != nullptr ? v->string_or("") : std::string();
  };
  const auto num = [&doc](const char* key) -> double {
    const JsonValue* v = doc.find(key);
    return v != nullptr ? v->number_or(0.0) : 0.0;
  };

  r.run_id = str("run_id");
  r.source = str("source");
  r.timestamp_ms = static_cast<std::int64_t>(num("timestamp_ms"));
  r.git_head = str("git_head");
  r.config_key = str("config_key");
  r.seed = static_cast<std::uint64_t>(num("seed"));
  r.threads = static_cast<int>(num("threads"));
  if (r.run_id.empty()) return parse_fail(error, "missing run_id");

  if (r.kind == "synthesis") {
    const JsonValue* bench = doc.find("benchmark");
    const JsonValue* verdict = doc.find("verdict");
    if (bench == nullptr || !bench->is_string())
      return parse_fail(error, "synthesis record missing benchmark");
    if (verdict == nullptr || !verdict->is_string())
      return parse_fail(error, "synthesis record missing verdict");
    r.benchmark = bench->string;
    r.verdict = verdict->string;
    r.failure_stage = str("failure_stage");
    const JsonValue* pv = doc.find("pac_valid");
    r.pac_valid = pv != nullptr ? pv->bool_or(true) : true;
    r.pac_eps = num("pac_eps");
    r.pac_error = num("pac_error");
    r.pac_degree = static_cast<int>(num("pac_degree"));
    r.pac_samples = static_cast<std::uint64_t>(num("pac_samples"));
    r.barrier_degree = static_cast<int>(num("barrier_degree"));
    // Race fields are optional (records predating PR 9 omit them).
    const JsonValue* raced = doc.find("barrier_raced");
    r.barrier_raced = raced != nullptr ? raced->bool_or(false) : false;
    const JsonValue* warm = doc.find("race_winner_arm");
    r.race_winner_arm =
        warm != nullptr ? static_cast<int>(warm->number_or(-1.0)) : -1;
    r.race_arms_launched = static_cast<int>(num("race_arms_launched"));
    r.race_arms_cancelled = static_cast<int>(num("race_arms_cancelled"));
    r.rl_seconds = num("rl_seconds");
    r.pac_seconds = num("pac_seconds");
    r.barrier_seconds = num("barrier_seconds");
    r.validation_seconds = num("validation_seconds");
    r.total_seconds = num("total_seconds");
    r.json_dropped = static_cast<std::uint64_t>(num("json_dropped"));
    if (const JsonValue* m = doc.find("metrics"); m != nullptr)
      r.metrics_json = reserialize(*m);
  } else {
    if (const JsonValue* v = doc.find("values"); v != nullptr)
      r.values_json = reserialize(*v);
  }
  if (out != nullptr) *out = std::move(r);
  return true;
}

bool ledger_append(const std::string& path, LedgerRecord record) {
  if (path.empty()) return false;
  if (record.timestamp_ms == 0) record.timestamp_ms = now_ms();
  if (record.run_id.empty()) record.run_id = next_run_id(record.timestamp_ms);
  if (record.git_head.empty()) {
    // Resolved once: every record of a process comes from the same tree.
    static const std::string head = git_head_describe();
    record.git_head = head;
  }
  std::string line = ledger_record_json(record);
  line += '\n';
  // One locked write of the fully formatted line (the log_line discipline):
  // in-process appenders serialize on the mutex; cross-process appenders
  // rely on O_APPEND (std::ios::app) making each single write atomic.
  std::lock_guard<std::mutex> lk(ledger_mutex());
  std::ofstream out(path, std::ios::app | std::ios::binary);
  if (!out) return false;
  out.write(line.data(), static_cast<std::streamsize>(line.size()));
  out.flush();
  return static_cast<bool>(out);
}

bool ledger_append_bench(const std::string& source,
                         const std::string& values_json,
                         const std::string& path) {
  const std::string target = resolve_ledger_path(path);
  if (target.empty()) return false;
  LedgerRecord r;
  r.kind = "bench";
  r.source = source;
  r.values_json = values_json;
  return ledger_append(target, std::move(r));
}

LedgerReadResult ledger_read(const std::string& path) {
  LedgerReadResult result;
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    result.errors.push_back("cannot open ledger file '" + path + "'");
    return result;
  }
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    LedgerRecord r;
    std::string error;
    if (ledger_record_parse(line, &r, &error)) {
      result.records.push_back(std::move(r));
    } else {
      ++result.skipped;
      result.errors.push_back("line " + std::to_string(line_no) + ": " +
                              error);
    }
  }
  return result;
}

}  // namespace scs
