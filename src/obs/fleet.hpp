// Fleet aggregation: merge serve-layer evidence from several daemon
// instances' ledgers into one dashboard (report_cli `fleet` mode).
//
// Each synthesize_server instance appends to its own ledger: "synthesis"
// records with source "serve" (cold runs), "serve-hit" (dedupe warm hits)
// and verdicts including REJECTED/CANCELLED, plus one "bench" record with
// source "serve_daemon" at drain carrying the instance's final counters and
// latency quantiles (the daemon summary). Fleet aggregation reads N such
// ledgers -- one per instance, paths or globs -- and derives:
//
//   per instance : traffic counters, verdict mix, cold-latency quantiles,
//                  warm-hit latency quantiles, lost requests
//                  (ingested - results written);
//   fleet-wide   : the same rolled up, plus dedupe efficiency (fraction of
//                  submits that avoided a cold run), warm-hit rate, distinct
//                  config keys, and redundant cold runs -- config keys
//                  cold-solved on more than one instance, i.e. the work a
//                  cross-instance shared inbox (ROADMAP 1(b)) would save.
//
// The rollup feeds three renderers: markdown and JSON dashboards, and
// MetricSamples under "fleet.*" for the baselines/fleet.json SLO gate
// (zero lost requests, warm-hit latency ceiling).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "obs/baseline.hpp"

namespace scs {

/// Everything learned about one instance from one ledger file.
struct FleetInstanceStats {
  std::string ledger_path;
  /// Instance label: the daemon summary's "instance" field when present,
  /// else the ledger filename stem.
  std::string instance;

  // -- From "synthesis" records (serve traffic).
  std::uint64_t cold_records = 0;  // source == "serve"
  std::uint64_t warm_records = 0;  // source == "serve-hit"
  std::map<std::string, std::uint64_t> verdicts;  // verdict -> count
  std::vector<double> cold_seconds;  // cold-run total_seconds (unsorted)
  std::set<std::string> served_keys;  // distinct config keys (cold + warm)
  std::set<std::string> cold_keys;    // keys cold-solved on this instance
  int skipped_lines = 0;  // torn/foreign lines the reader rejected

  // -- From "serve_daemon" bench summaries (counters summed when a ledger
  //    holds several daemon lifetimes).
  int summaries = 0;
  std::uint64_t submitted = 0;
  std::uint64_t cold_runs = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t overflow = 0;
  std::uint64_t ingested = 0;
  std::uint64_t results_written = 0;
  /// Requests this instance ingested but never produced a result file for
  /// (max(0, ingested - results_written), summed over summaries).
  std::uint64_t lost_requests = 0;
  /// Warm-hit latency quantiles from the summary, microseconds; -1 when the
  /// instance never served a warm hit (rendered as "-", never 0).
  double warm_hit_us_p50 = -1.0;
  double warm_hit_us_p90 = -1.0;
  double warm_hit_us_p99 = -1.0;
  /// Queue-wait p99 from the summary, milliseconds; -1 when unknown.
  double queue_wait_ms_p99 = -1.0;
};

/// The merged fleet view.
struct FleetReport {
  std::vector<FleetInstanceStats> instances;

  // Rollups (sums / merges over instances).
  std::uint64_t submitted = 0;
  std::uint64_t cold_runs = 0;
  std::uint64_t warm_hits = 0;
  std::uint64_t duplicates = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t overflow = 0;
  std::uint64_t lost_requests = 0;
  int daemon_summaries = 0;
  std::map<std::string, std::uint64_t> verdicts;
  /// Distinct config keys served anywhere in the fleet.
  std::uint64_t unique_configs = 0;
  /// Sum over keys of (instances that cold-solved the key - 1): cold work
  /// a fleet-wide dedupe would have avoided. 0 when every key was cold on
  /// at most one instance.
  std::uint64_t redundant_cold_runs = 0;
  /// warm_hits / (warm_hits + cold_runs); -1 when no traffic.
  double warm_hit_rate = -1.0;
  /// (warm_hits + duplicates) / submitted -- the fraction of submitted
  /// requests that never cost a cold solve; -1 when no submits.
  double dedupe_efficiency = -1.0;
  /// Exact quantiles over every instance's cold-run total_seconds, in
  /// milliseconds; -1 when no cold runs were recorded.
  double cold_ms_p50 = -1.0;
  double cold_ms_p90 = -1.0;
  double cold_ms_p99 = -1.0;
  /// Worst (max) warm-hit quantile across instances, microseconds; -1 when
  /// no instance served a warm hit.
  double warm_hit_us_p50 = -1.0;
  double warm_hit_us_p90 = -1.0;
  double warm_hit_us_p99 = -1.0;
  int skipped_lines = 0;
  /// Per-file read errors worth surfacing (missing ledger etc.).
  std::vector<std::string> errors;
};

/// Expand ledger path arguments: a component containing '*' or '?' is
/// matched (filename-level wildcards, '*' does not cross '/') against the
/// parent directory; plain paths pass through even when absent (the
/// aggregator reports them as errors). Result is sorted and deduplicated.
std::vector<std::string> fleet_expand_ledger_args(
    const std::vector<std::string>& args);

/// Read every ledger in `paths` (one instance each) and merge.
FleetReport fleet_aggregate(const std::vector<std::string>& paths);

/// Human dashboard: fleet rollup table, per-instance table, verdict mix.
std::string fleet_markdown(const FleetReport& report);

/// The same content as one JSON document (machine-readable artifact).
std::string fleet_json(const FleetReport& report);

/// Emit baseline-gate samples under "fleet.*" (instances, daemon_summaries,
/// submitted, cold_runs, warm_hits, duplicates, rejected, cancelled,
/// overflow, lost_requests, unique_configs, redundant_cold_runs,
/// warm_hit_rate, dedupe_efficiency, cold_ms_p50/p90/p99,
/// warm_hit_us_p50/p90/p99, skipped_lines). Unknown quantiles (-1) are NOT
/// emitted, so a gate on them fails as kMissingCurrent instead of passing
/// against a sentinel.
void fleet_samples(const FleetReport& report, MetricSamples* out);

}  // namespace scs
