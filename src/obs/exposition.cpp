#include "obs/exposition.hpp"

#include <string>

namespace scs {

namespace {

bool prom_ok(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '_' || c == ':';
}

void append_metric_line(std::string& out, const std::string& name,
                        const std::string& labels, std::uint64_t value) {
  out += "scs_";
  out += name;
  out += labels;
  out += ' ';
  out += std::to_string(value);
  out += '\n';
}

}  // namespace

std::string prometheus_sanitize(const std::string& name) {
  std::string out = name;
  for (char& c : out)
    if (!prom_ok(c)) c = '_';
  // Metric names must not start with a digit (the scs_ prefix already
  // guarantees that here, but keep the component self-contained).
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

std::string prometheus_text(const MetricsSnapshot& snap) {
  std::string out;
  for (const auto& c : snap.counters) {
    const std::string name = prometheus_sanitize(c.name);
    out += "# TYPE scs_" + name + " counter\n";
    append_metric_line(out, name, "", c.value);
  }
  for (const auto& g : snap.gauges) {
    const std::string name = prometheus_sanitize(g.name);
    out += "# TYPE scs_" + name + " gauge\n";
    out += "scs_" + name + ' ' + std::to_string(g.value) + '\n';
    out += "# TYPE scs_" + name + "_max gauge\n";
    out += "scs_" + name + "_max " + std::to_string(g.max) + '\n';
  }
  for (const auto& h : snap.histograms) {
    const std::string name = prometheus_sanitize(h.name);
    out += "# TYPE scs_" + name + " histogram\n";
    std::uint64_t cum = 0;
    for (int b = 0; b < Histogram::kBuckets; ++b) {
      cum += h.buckets[b];
      const std::string le =
          b == Histogram::kBuckets - 1
              ? std::string("+Inf")
              : std::to_string(Histogram::bucket_bound(b));
      append_metric_line(out, name + "_bucket", "{le=\"" + le + "\"}", cum);
    }
    append_metric_line(out, name + "_sum", "", h.sum);
    append_metric_line(out, name + "_count", "", h.count);
    if (h.count > 0) {
      // Upper-bound quantile estimates; omitted entirely when empty so a
      // never-observed latency cannot scrape as 0.
      append_metric_line(out, name + "_quantile", "{q=\"0.5\"}", h.p50);
      append_metric_line(out, name + "_quantile", "{q=\"0.9\"}", h.p90);
      append_metric_line(out, name + "_quantile", "{q=\"0.99\"}", h.p99);
    }
  }
  return out;
}

}  // namespace scs
