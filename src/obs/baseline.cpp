#include "obs/baseline.hpp"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "obs/json_writer.hpp"

namespace scs {

namespace {

[[noreturn]] void bad_baseline(const std::string& why) {
  throw JsonParseError("baseline: " + why, 0);
}

bool is_scalar(const JsonValue& v) {
  return v.is_null() || v.is_bool() || v.is_number() || v.is_string();
}

std::string scalar_repr(const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kNull: return "null";
    case JsonValue::Type::kBool: return v.boolean ? "true" : "false";
    case JsonValue::Type::kNumber: return json_number(v.number);
    case JsonValue::Type::kString: return v.string;
    default: return "<non-scalar>";
  }
}

bool scalar_equal(const JsonValue& a, const JsonValue& b) {
  if (a.type != b.type) return false;
  switch (a.type) {
    case JsonValue::Type::kNull: return true;
    case JsonValue::Type::kBool: return a.boolean == b.boolean;
    case JsonValue::Type::kNumber: return a.number == b.number;
    case JsonValue::Type::kString: return a.string == b.string;
    default: return false;
  }
}

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return (n % 2 == 1) ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Numeric view of the samples; non-numbers are skipped (a verdict string
/// showing up under a timing key should read as "no numeric sample", and
/// the check then fails as missing rather than crashing).
std::vector<double> numeric_samples(const std::vector<JsonValue>& samples) {
  std::vector<double> out;
  for (const JsonValue& s : samples)
    if (s.is_number() && std::isfinite(s.number)) out.push_back(s.number);
  return out;
}

}  // namespace

const char* check_status_name(CheckStatus s) {
  switch (s) {
    case CheckStatus::kPass: return "PASS";
    case CheckStatus::kImproved: return "IMPROVED";
    case CheckStatus::kRegressed: return "REGRESSED";
    case CheckStatus::kMissingCurrent: return "MISSING";
  }
  return "UNKNOWN";
}

BaselineFile baseline_parse(std::string_view text) {
  const JsonValue doc = json_parse(text);
  if (!doc.is_object()) bad_baseline("document is not an object");
  BaselineFile file;
  const JsonValue* schema = doc.find("schema");
  if (schema == nullptr || !schema->is_number())
    bad_baseline("missing schema field");
  file.schema = static_cast<int>(schema->int_or(0));
  if (file.schema != kBaselineSchemaVersion)
    bad_baseline("unsupported schema version " + std::to_string(file.schema));
  if (const JsonValue* name = doc.find("name"); name != nullptr)
    file.name = name->string_or("");
  const JsonValue* metrics = doc.find("metrics");
  if (metrics == nullptr || !metrics->is_object())
    bad_baseline("missing metrics object");
  for (const auto& [key, spec] : metrics->members) {
    if (!spec.is_object()) bad_baseline("check '" + key + "' is not an object");
    BaselineCheck check;
    check.key = key;
    const JsonValue* kind = spec.find("kind");
    if (kind == nullptr || !kind->is_string())
      bad_baseline("check '" + key + "' has no kind");
    check.kind = kind->string;
    if (check.kind != "exact" && check.kind != "max" && check.kind != "min" &&
        check.kind != "timing")
      bad_baseline("check '" + key + "' has unknown kind '" + check.kind +
                   "'");
    const JsonValue* value = spec.find("value");
    if (value == nullptr || !is_scalar(*value))
      bad_baseline("check '" + key + "' has no scalar value");
    check.expect = *value;
    if (check.kind != "exact" && !check.expect.is_number())
      bad_baseline("check '" + key + "': kind '" + check.kind +
                   "' needs a numeric value");
    if (const JsonValue* tol = spec.find("rel_tol"); tol != nullptr) {
      if (!tol->is_number() || tol->number < 0.0)
        bad_baseline("check '" + key + "' has invalid rel_tol");
      check.rel_tol = tol->number;
    }
    file.checks.push_back(std::move(check));
  }
  return file;
}

BaselineFile baseline_load_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw JsonParseError("cannot open baseline file '" + path + "'", 0);
  std::ostringstream buf;
  buf << in.rdbuf();
  BaselineFile file = baseline_parse(buf.str());
  if (file.name.empty()) file.name = path;
  return file;
}

void MetricSamples::add(const std::string& key, JsonValue scalar) {
  samples_[key].push_back(std::move(scalar));
}

const std::vector<JsonValue>* MetricSamples::find(
    const std::string& key) const {
  const auto it = samples_.find(key);
  return it != samples_.end() ? &it->second : nullptr;
}

namespace {

void flatten_into(MetricSamples& out, const std::string& prefix,
                  const JsonValue& v) {
  switch (v.type) {
    case JsonValue::Type::kObject:
      for (const auto& [k, member] : v.members)
        flatten_into(out, prefix.empty() ? k : prefix + "." + k, member);
      break;
    case JsonValue::Type::kArray:
      for (std::size_t i = 0; i < v.items.size(); ++i)
        flatten_into(out, prefix + "." + std::to_string(i), v.items[i]);
      break;
    default:
      out.add(prefix, v);
  }
}

}  // namespace

void MetricSamples::add_flattened(const std::string& prefix,
                                  const JsonValue& doc) {
  // google-benchmark output: {"context": {...}, "benchmarks": [{"name":
  // "BM_Matmul/64/100", "real_time": ..., ...}, ...]}. Key rows by the
  // benchmark's own name instead of its array index so a reordered or
  // extended suite still matches the checked-in keys.
  const JsonValue* benchmarks = doc.find("benchmarks");
  if (benchmarks != nullptr && benchmarks->is_array()) {
    for (const JsonValue& row : benchmarks->items) {
      const JsonValue* name = row.find("name");
      if (name == nullptr || !name->is_string()) continue;
      for (const auto& [k, member] : row.members) {
        if (k == "name") continue;
        if (is_scalar(member))
          add(prefix + "." + name->string + "." + k, member);
      }
    }
    return;
  }
  flatten_into(*this, prefix, doc);
}

BaselineReport baseline_compare(const BaselineFile& baseline,
                                const MetricSamples& current) {
  BaselineReport report;
  report.name = baseline.name;
  for (const BaselineCheck& check : baseline.checks) {
    CheckResult row;
    row.key = check.key;
    row.kind = check.kind;
    row.baseline_repr = scalar_repr(check.expect);
    if (check.kind == "timing")
      row.baseline_repr += " (rel_tol " + json_number(check.rel_tol, 4) + ")";

    const std::vector<JsonValue>* samples = current.find(check.key);
    if (samples == nullptr || samples->empty()) {
      row.status = CheckStatus::kMissingCurrent;
      row.current_repr = "-";
      row.detail = "no current sample for gated metric";
      ++report.missing;
      report.rows.push_back(std::move(row));
      continue;
    }

    if (check.kind == "exact") {
      const auto mismatch =
          std::find_if(samples->begin(), samples->end(),
                       [&](const JsonValue& s) {
                         return !scalar_equal(s, check.expect);
                       });
      if (mismatch == samples->end()) {
        row.status = CheckStatus::kPass;
        row.current_repr = scalar_repr(samples->front());
      } else {
        row.status = CheckStatus::kRegressed;
        row.current_repr = scalar_repr(*mismatch);
        row.detail = "expected " + row.baseline_repr + ", observed " +
                     row.current_repr;
        ++report.regressed;
      }
      report.rows.push_back(std::move(row));
      continue;
    }

    const std::vector<double> nums = numeric_samples(*samples);
    if (nums.empty()) {
      row.status = CheckStatus::kMissingCurrent;
      row.current_repr = scalar_repr(samples->front());
      row.detail = "no numeric sample for numeric check";
      ++report.missing;
      report.rows.push_back(std::move(row));
      continue;
    }

    if (check.kind == "max" || check.kind == "min") {
      // Worst sample must satisfy the bound: a single epsilon excursion in
      // a median-of-N batch is still a PAC-statement violation.
      const double worst = check.kind == "max"
                               ? *std::max_element(nums.begin(), nums.end())
                               : *std::min_element(nums.begin(), nums.end());
      const bool ok = check.kind == "max" ? worst <= check.expect.number
                                          : worst >= check.expect.number;
      row.current_repr = json_number(worst);
      if (ok) {
        row.status = CheckStatus::kPass;
      } else {
        row.status = CheckStatus::kRegressed;
        row.detail = std::string("bound ") +
                     (check.kind == "max" ? "<= " : ">= ") +
                     scalar_repr(check.expect) + " violated by " +
                     row.current_repr;
        ++report.regressed;
      }
      report.rows.push_back(std::move(row));
      continue;
    }

    // kind == "timing": median-of-N against a relative band.
    const double med = median(nums);
    const double base = check.expect.number;
    const double limit = base * (1.0 + check.rel_tol);
    row.current_repr = json_number(med, 6) + " (n=" +
                       std::to_string(nums.size()) + ")";
    row.delta_pct = base > 0.0 ? (med - base) / base * 100.0 : 0.0;
    if (med <= limit) {
      row.status = med < base ? CheckStatus::kImproved : CheckStatus::kPass;
    } else {
      row.status = CheckStatus::kRegressed;
      row.detail = "median " + json_number(med, 6) + " exceeds " +
                   json_number(limit, 6) + " (baseline " +
                   json_number(base, 6) + " +" +
                   json_number(check.rel_tol * 100.0, 4) + "%)";
      ++report.regressed;
    }
    report.rows.push_back(std::move(row));
  }
  return report;
}

std::string baseline_report_markdown(
    const std::vector<BaselineReport>& reports) {
  std::ostringstream os;
  os << "# Baseline regression report\n\n";
  int failures = 0;
  for (const BaselineReport& r : reports)
    failures += r.regressed + r.missing;
  os << (failures == 0 ? "**GATE PASSED**" : "**GATE FAILED**") << " — "
     << failures << " failing check(s) across " << reports.size()
     << " baseline file(s).\n";
  for (const BaselineReport& r : reports) {
    os << "\n## " << (r.name.empty() ? "(unnamed)" : r.name) << " — "
       << (r.passed() ? "passed" : "FAILED") << "\n\n";
    os << "| status | metric | kind | baseline | current | delta | note |\n";
    os << "|---|---|---|---|---|---|---|\n";
    // Failures first so a long table leads with what matters.
    std::vector<const CheckResult*> ordered;
    for (const CheckResult& row : r.rows)
      if (row.status == CheckStatus::kRegressed ||
          row.status == CheckStatus::kMissingCurrent)
        ordered.push_back(&row);
    for (const CheckResult& row : r.rows)
      if (row.status == CheckStatus::kPass ||
          row.status == CheckStatus::kImproved)
        ordered.push_back(&row);
    for (const CheckResult* row : ordered) {
      std::string delta;
      if (row->kind == "timing")
        delta = (row->delta_pct >= 0 ? "+" : "") +
                json_number(row->delta_pct, 3) + "%";
      os << "| " << check_status_name(row->status) << " | " << row->key
         << " | " << row->kind << " | " << row->baseline_repr << " | "
         << row->current_repr << " | " << delta << " | " << row->detail
         << " |\n";
    }
  }
  return os.str();
}

std::string baseline_report_json(const std::vector<BaselineReport>& reports) {
  JsonWriter w;
  w.begin_object();
  int failures = 0;
  for (const BaselineReport& r : reports)
    failures += r.regressed + r.missing;
  w.key("passed").value(failures == 0);
  w.key("failing_checks").value(failures);
  w.key("baselines").begin_array();
  for (const BaselineReport& r : reports) {
    w.begin_object();
    w.key("name").value(r.name);
    w.key("passed").value(r.passed());
    w.key("regressed").value(r.regressed);
    w.key("missing").value(r.missing);
    w.key("checks").begin_array();
    for (const CheckResult& row : r.rows) {
      w.begin_object();
      w.key("key").value(row.key);
      w.key("kind").value(row.kind);
      w.key("status").value(check_status_name(row.status));
      w.key("baseline").value(row.baseline_repr);
      w.key("current").value(row.current_repr);
      if (row.kind == "timing") w.key("delta_pct").value(row.delta_pct, 4);
      if (!row.detail.empty()) w.key("detail").value(row.detail);
      w.end_object();
    }
    w.end_array();
    w.end_object();
  }
  w.end_array();
  w.end_object();
  return w.str();
}

}  // namespace scs
