// Process-wide metrics registry: named counters, gauges, and histograms
// capturing solver and pipeline behavior (SDP iterations/restarts/stalls,
// simplex pivots, factorization regularization retries, PAC samples
// drawn/dropped, artifact-store hits/misses/corruptions, thread-pool
// steals and queue depth).
//
// Design constraints, in order:
//   1. Near-zero overhead when disabled. Every instrumentation site guards
//      with `if (metrics_enabled())` -- a single relaxed atomic load -- and
//      caches its instrument in a function-local static, so the disabled
//      cost is one load + one predictable branch, no locks, no lookups.
//   2. No effect on determinism. Instruments only *observe*; nothing in the
//      numeric stack reads them back, and nothing metric-related enters
//      cached artifacts or SynthesisResult numerics.
//   3. Safe concurrent aggregation. All instrument state is relaxed
//      atomics, so pool workers increment freely; totals are exact because
//      fetch_add is atomic regardless of memory order.
//
// Activation: env SCS_METRICS=<path> enables collection at first use and
// dumps the registry as JSON to <path> at process exit; tests and the CLI
// enable programmatically with set_metrics_enabled() / metrics_write().
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace scs {

/// Monotonic event counter.
class Counter {
 public:
  void add(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

/// Last-written value plus the maximum ever written (e.g. queue depth:
/// `set` publishes the instantaneous depth, `max` keeps the high-water
/// mark).
class Gauge {
 public:
  void set(std::int64_t v) {
    value_.store(v, std::memory_order_relaxed);
    std::int64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset() {
    value_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{0};
};

/// Histogram over non-negative integer observations (iteration counts,
/// pivot counts, queue depths) with fixed power-of-two bucket upper bounds
/// 1, 2, 4, ..., 2^(kBuckets-2), +inf. Tracks count/sum/max exactly.
class Histogram {
 public:
  static constexpr int kBuckets = 16;

  void observe(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev &&
           !max_.compare_exchange_weak(prev, v, std::memory_order_relaxed)) {
    }
  }
  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  std::uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  std::uint64_t bucket_count(int b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  /// Upper bound of bucket `b` (the last bucket is unbounded).
  static std::uint64_t bucket_bound(int b) {
    return std::uint64_t{1} << b;
  }
  /// Upper-bound estimate of the q-quantile (q in [0,1]) from the bucket
  /// counts: the bound of the first bucket whose cumulative count reaches
  /// ceil(q * count), clamped to the exact tracked max (so p99 never
  /// reports above an observed value). 0 when the histogram is empty --
  /// callers that surface quantiles must check count() first and render
  /// null/absent instead (the registry JSON and Prometheus exposition do).
  /// Approximate under concurrent observes, like every other read here.
  std::uint64_t quantile_upper(double q) const;
  void reset() {
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
  }

 private:
  static int bucket_of(std::uint64_t v) {
    for (int b = 0; b < kBuckets - 1; ++b)
      if (v <= bucket_bound(b)) return b;
    return kBuckets - 1;
  }

  std::atomic<std::uint64_t> buckets_[kBuckets] = {};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

/// Point-in-time copy of every registered instrument, for exporters that
/// need to iterate the registry (Prometheus text exposition, the daemon's
/// status.json) without touching registration internals. Values are read
/// with relaxed loads, so a snapshot taken under concurrent updates is
/// approximate in the same way every other read here is.
struct MetricsSnapshot {
  struct CounterSample {
    std::string name;
    std::uint64_t value = 0;
  };
  struct GaugeSample {
    std::string name;
    std::int64_t value = 0;
    std::int64_t max = 0;
  };
  struct HistogramSample {
    std::string name;
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::uint64_t max = 0;
    std::uint64_t p50 = 0;  // meaningless when count == 0 (render as null)
    std::uint64_t p90 = 0;
    std::uint64_t p99 = 0;
    std::uint64_t buckets[Histogram::kBuckets] = {};
  };
  std::vector<CounterSample> counters;    // sorted by name
  std::vector<GaugeSample> gauges;        // sorted by name
  std::vector<HistogramSample> histograms;  // sorted by name
};

/// Name -> instrument registry. Instruments are created on first lookup and
/// never destroyed or moved (references stay valid for the process
/// lifetime, so sites may cache them in function-local statics).
/// reset_for_tests() zeroes values without invalidating references.
class MetricsRegistry {
 public:
  static MetricsRegistry& instance();

  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  Histogram& histogram(const std::string& name);

  /// Serialize every registered instrument as one JSON object, sorted by
  /// name: counters as integers, gauges as {value,max}, histograms as
  /// {count,sum,max,buckets:[{le,count},...]}. Quantiles of an empty
  /// histogram are emitted as JSON null, never 0 -- a never-observed serve
  /// latency must not read as "instant".
  std::string json() const;

  /// Copy every instrument's current values (exporters; see
  /// MetricsSnapshot).
  MetricsSnapshot snapshot() const;

  /// Zero every instrument (tests and bench iterations).
  void reset_for_tests();

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

 private:
  MetricsRegistry() = default;
  struct Impl;
  Impl& impl() const;
};

namespace detail {
/// Tri-state collection gate: -1 = not yet armed from the environment,
/// 0 = off, 1 = on. Exposed so metrics_enabled() inlines to a single
/// relaxed load + compare at every instrumentation site.
extern std::atomic<int> g_metrics_state;
/// Slow path (first call only): reads SCS_METRICS, registers the atexit
/// dump when set, and resolves the state to 0/1.
bool metrics_arm_from_env();
}  // namespace detail

/// Collection gate: inlines to one relaxed atomic load and a predictable
/// branch. The first call arms from the SCS_METRICS environment variable
/// (non-empty => enabled + atexit dump).
inline bool metrics_enabled() {
  const int s = detail::g_metrics_state.load(std::memory_order_relaxed);
  if (s >= 0) return s != 0;
  return detail::metrics_arm_from_env();
}

/// Enable / disable collection programmatically (overrides the env gate).
void set_metrics_enabled(bool on);

/// Dump path requested via SCS_METRICS ("" when unset).
const std::string& metrics_env_path();

/// Write the registry JSON to `path` (creates/truncates). Returns false on
/// I/O failure.
bool metrics_write(const std::string& path);

}  // namespace scs
