#include "obs/json_writer.hpp"

#include <atomic>
#include <cmath>
#include <cstdio>
#include <limits>
#include <sstream>

namespace scs {

namespace {
// See json_nonfinite_dropped() in the header for why this is a file-local
// atomic rather than a MetricsRegistry counter.
std::atomic<std::uint64_t> g_nonfinite_dropped{0};
}  // namespace

std::uint64_t json_nonfinite_dropped() {
  return g_nonfinite_dropped.load(std::memory_order_relaxed);
}

void json_nonfinite_dropped_reset_for_tests() {
  g_nonfinite_dropped.store(0, std::memory_order_relaxed);
}

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (unsigned char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += static_cast<char>(c);
        }
    }
  }
  return out;
}

std::string json_number(double v, int precision) {
  if (!std::isfinite(v)) {
    g_nonfinite_dropped.fetch_add(1, std::memory_order_relaxed);
    return "null";
  }
  std::ostringstream os;
  if (precision > 0)
    os.precision(precision);
  else
    os.precision(std::numeric_limits<double>::max_digits10);
  os << v;
  return os.str();
}

void JsonWriter::before_value() {
  if (expect_value_) {
    expect_value_ = false;
    return;
  }
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_elem_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  has_elem_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_elem_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  if (!has_elem_.empty()) {
    if (has_elem_.back()) out_ += ',';
    has_elem_.back() = true;
  }
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  expect_value_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view s) {
  before_value();
  out_ += '"';
  out_ += json_escape(s);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool b) {
  before_value();
  out_ += b ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  before_value();
  out_ += std::to_string(v);
  return *this;
}

JsonWriter& JsonWriter::value(double v, int precision) {
  before_value();
  out_ += json_number(v, precision);
  return *this;
}

JsonWriter& JsonWriter::null() {
  before_value();
  out_ += "null";
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view json) {
  before_value();
  out_ += json;
  return *this;
}

// ---- Validating parser -----------------------------------------------------

namespace {

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  bool fail(const std::string& why) {
    if (error.empty())
      error = why + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size()) {
      const char c = text[pos];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r')
        ++pos;
      else
        break;
    }
  }

  bool eof() const { return pos >= text.size(); }
  char peek() const { return text[pos]; }

  bool literal(std::string_view lit) {
    if (text.substr(pos, lit.size()) != lit) return fail("bad literal");
    pos += lit.size();
    return true;
  }

  bool string() {
    if (eof() || peek() != '"') return fail("expected string");
    ++pos;
    while (!eof()) {
      const unsigned char c = text[pos];
      if (c == '"') {
        ++pos;
        return true;
      }
      if (c < 0x20) return fail("raw control character in string");
      if (c == '\\') {
        ++pos;
        if (eof()) return fail("truncated escape");
        const char e = text[pos];
        if (e == '"' || e == '\\' || e == '/' || e == 'b' || e == 'f' ||
            e == 'n' || e == 'r' || e == 't') {
          ++pos;
        } else if (e == 'u') {
          ++pos;
          for (int k = 0; k < 4; ++k, ++pos) {
            if (eof() || !std::isxdigit(static_cast<unsigned char>(text[pos])))
              return fail("bad \\u escape");
          }
        } else {
          return fail("bad escape character");
        }
      } else {
        ++pos;
      }
    }
    return fail("unterminated string");
  }

  bool digits() {
    if (eof() || !std::isdigit(static_cast<unsigned char>(peek())))
      return fail("expected digit");
    while (!eof() && std::isdigit(static_cast<unsigned char>(peek()))) ++pos;
    return true;
  }

  bool number() {
    if (!eof() && peek() == '-') ++pos;
    if (eof()) return fail("truncated number");
    if (peek() == '0') {
      ++pos;
    } else if (!digits()) {
      return false;
    }
    if (!eof() && peek() == '.') {
      ++pos;
      if (!digits()) return false;
    }
    if (!eof() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!eof() && (peek() == '+' || peek() == '-')) ++pos;
      if (!digits()) return false;
    }
    return true;
  }

  bool value(int depth) {
    if (depth > 256) return fail("nesting too deep");
    skip_ws();
    if (eof()) return fail("expected value");
    const char c = peek();
    if (c == '{') return object(depth);
    if (c == '[') return array(depth);
    if (c == '"') return string();
    if (c == 't') return literal("true");
    if (c == 'f') return literal("false");
    if (c == 'n') return literal("null");
    if (c == '-' || std::isdigit(static_cast<unsigned char>(c)))
      return number();
    return fail("unexpected character");
  }

  bool object(int depth) {
    ++pos;  // '{'
    skip_ws();
    if (!eof() && peek() == '}') {
      ++pos;
      return true;
    }
    for (;;) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (eof() || peek() != ':') return fail("expected ':'");
      ++pos;
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated object");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == '}') {
        ++pos;
        return true;
      }
      return fail("expected ',' or '}'");
    }
  }

  bool array(int depth) {
    ++pos;  // '['
    skip_ws();
    if (!eof() && peek() == ']') {
      ++pos;
      return true;
    }
    for (;;) {
      if (!value(depth + 1)) return false;
      skip_ws();
      if (eof()) return fail("unterminated array");
      if (peek() == ',') {
        ++pos;
        continue;
      }
      if (peek() == ']') {
        ++pos;
        return true;
      }
      return fail("expected ',' or ']'");
    }
  }
};

}  // namespace

bool json_parse_valid(std::string_view text, std::string* error) {
  Parser p{text};
  if (!p.value(0)) {
    if (error != nullptr) *error = p.error;
    return false;
  }
  p.skip_ws();
  if (!p.eof()) {
    if (error != nullptr)
      *error = "trailing garbage at offset " + std::to_string(p.pos);
    return false;
  }
  return true;
}

}  // namespace scs
