#include "obs/trace.hpp"

#include <atomic>
#include <chrono>
#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/json_writer.hpp"

namespace scs {

namespace {

/// Hard cap on buffered events: protects long traced runs from unbounded
/// memory growth. ~56 bytes/event => the cap is a few hundred MB worst
/// case; overflow is counted and reported in the exported file.
constexpr std::size_t kMaxEvents = 1 << 22;

struct TraceState {
  std::atomic<bool> enabled{false};
  std::atomic<std::uint64_t> dropped{0};
  std::atomic<std::uint32_t> next_tid{0};
  std::chrono::steady_clock::time_point origin;
  std::mutex mu;  // guards events + path
  std::vector<TraceEvent> events;
  std::string path;

  TraceState() : origin(std::chrono::steady_clock::now()) {
    const char* env = std::getenv("SCS_TRACE");
    if (env != nullptr && *env != '\0') {
      path = env;
      enabled.store(true, std::memory_order_relaxed);
      std::atexit([] { trace_write(); });
    }
  }
};

TraceState& state() {
  static TraceState* s = new TraceState;  // leaked: usable from atexit
  return *s;
}

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - state().origin)
      .count();
}

void push_event(TraceEvent&& e) {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  if (s.events.size() >= kMaxEvents) {
    s.dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  s.events.push_back(std::move(e));
}

/// Ambient per-thread correlation id. A plain thread_local (not guarded by
/// trace_enabled) so scopes installed before trace_start() still tag events
/// recorded after it; hot sites guard installation themselves.
std::string& tls_correlation_id() {
  thread_local std::string id;
  return id;
}

}  // namespace

bool trace_enabled() {
  return state().enabled.load(std::memory_order_relaxed);
}

void trace_start(const std::string& path) {
  TraceState& s = state();
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (s.path.empty()) s.path = path;
  }
  s.enabled.store(true, std::memory_order_relaxed);
}

void trace_stop() {
  state().enabled.store(false, std::memory_order_relaxed);
}

bool trace_write(const std::string& path) {
  TraceState& s = state();
  std::vector<TraceEvent> events;
  std::string target = path;
  {
    std::lock_guard<std::mutex> lk(s.mu);
    if (target.empty()) target = s.path;
    events = s.events;
  }
  if (target.empty()) return false;
  std::ofstream out(target, std::ios::trunc);
  if (!out) return false;

  JsonWriter w;
  w.begin_object();
  w.key("displayTimeUnit").value("ms");
  w.key("droppedEvents").value(s.dropped.load(std::memory_order_relaxed));
  w.key("traceEvents").begin_array();
  for (const TraceEvent& e : events) {
    w.begin_object();
    w.key("name").value(e.name);
    w.key("cat").value("scs");
    w.key("ph").value(std::string(1, e.phase));
    // Chrome trace timestamps are microseconds; fractional values keep the
    // nanosecond resolution.
    w.key("ts").value(static_cast<double>(e.ts_ns) / 1e3);
    if (e.phase == 'X')
      w.key("dur").value(static_cast<double>(e.dur_ns) / 1e3);
    else
      w.key("s").value("t");  // instant scope: thread
    w.key("pid").value(0);
    w.key("tid").value(static_cast<std::uint64_t>(e.tid));
    if (!e.id.empty()) {
      w.key("args").begin_object();
      w.key("rid").value(e.id);
      w.end_object();
    }
    w.end_object();
  }
  w.end_array();
  w.end_object();
  out << w.str() << '\n';
  return static_cast<bool>(out);
}

void trace_clear() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  s.events.clear();
  s.dropped.store(0, std::memory_order_relaxed);
}

std::vector<TraceEvent> trace_snapshot() {
  TraceState& s = state();
  std::lock_guard<std::mutex> lk(s.mu);
  return s.events;
}

std::uint64_t trace_dropped() {
  return state().dropped.load(std::memory_order_relaxed);
}

std::uint32_t trace_thread_id() {
  thread_local std::uint32_t id =
      state().next_tid.fetch_add(1, std::memory_order_relaxed);
  return id;
}

void trace_instant(const char* name) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.name = name;
  e.id = tls_correlation_id();
  e.tid = trace_thread_id();
  e.ts_ns = now_ns();
  e.phase = 'i';
  push_event(std::move(e));
}

std::int64_t trace_now_ns() { return now_ns(); }

void trace_complete(std::string name, std::int64_t start_ns) {
  if (!trace_enabled()) return;
  TraceEvent e;
  e.name = std::move(name);
  e.id = tls_correlation_id();
  e.tid = trace_thread_id();
  e.ts_ns = start_ns;
  e.dur_ns = now_ns() - start_ns;
  e.phase = 'X';
  push_event(std::move(e));
}

const std::string& trace_correlation_id() { return tls_correlation_id(); }

TraceIdScope::TraceIdScope(std::string id) {
  std::string& tls = tls_correlation_id();
  prev_ = std::move(tls);
  tls = std::move(id);
}

TraceIdScope::~TraceIdScope() { tls_correlation_id() = std::move(prev_); }

TraceSpan::TraceSpan(const char* name) : active_(trace_enabled()) {
  if (!active_) return;
  name_ = name;
  start_ns_ = now_ns();
}

TraceSpan::TraceSpan(std::string name) : active_(trace_enabled()) {
  if (!active_) return;
  name_ = std::move(name);
  start_ns_ = now_ns();
}

void TraceSpan::close() {
  if (!active_) return;
  active_ = false;
  TraceEvent e;
  e.name = std::move(name_);
  e.id = tls_correlation_id();
  e.tid = trace_thread_id();
  e.ts_ns = start_ns_;
  e.dur_ns = now_ns() - start_ns_;
  e.phase = 'X';
  push_event(std::move(e));
}

TraceSpan::~TraceSpan() { close(); }

}  // namespace scs
