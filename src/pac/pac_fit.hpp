// Algorithm 1: PAC-model-based polynomial controller synthesis.
//
// Given an evaluatable controller u(x) (typically the trained DNN actor),
// find the lowest-degree polynomial p(x, c) that is a PAC model of u on the
// domain Psi (Definition 4): for each degree d and error rate eps from the
// schedule, draw the Theorem-3 sample count K, solve the scenario program
// (8) exactly (minimax fit), and accept once the error has converged in K
// and is below the tolerance tau.
#pragma once

#include <functional>
#include <vector>

#include "poly/polynomial.hpp"
#include "systems/benchmarks.hpp"
#include "systems/semialgebraic.hpp"
#include "util/cancellation.hpp"
#include "util/rng.hpp"

namespace scs {

class Fnv1a;

/// Scalar function to approximate (one control channel).
using ScalarFn = std::function<double(const Vec&)>;

/// A PAC model p with P(|p - u| <= error) >= 1 - eps at confidence 1 - eta.
struct PacModel {
  Polynomial poly;
  double error = 0.0;  // e*
  double eps = 0.0;
  double eta = 0.0;
  std::uint64_t samples = 0;  // K
  int degree = 0;             // d_p
  /// False when the scenario program could not be solved and the model is a
  /// plain least-squares fallback: the Theorem-3 statement does NOT hold for
  /// it (eps is reported as 1). Downstream verification still decides.
  bool pac_valid = true;
};

/// One (d, eps) attempt -- a row of Table 1.
struct PacTraceRow {
  int degree = 0;
  double eta = 0.0;
  /// Effective error rate: equals eps_requested unless K was capped, in
  /// which case it is recomputed from samples_used (Theorem 3) so the PAC
  /// statement stays honest.
  double eps = 0.0;
  /// The schedule's eps before any sample-cap adjustment.
  double eps_requested = 0.0;
  std::uint64_t samples = 0;  // K requested by Theorem 3
  std::uint64_t samples_used = 0;  // actual (== samples unless capped)
  double error = 0.0;              // e
  double delta_e = 0.0;            // |e - previous e| at this degree
  bool converged = false;          // check(error_list)
  bool accepted = false;           // converged and e <= tau
  /// Minimax LP failed; this row's model is a least-squares fallback with no
  /// PAC guarantee (eps forced to 1).
  bool degraded = false;
  /// Non-finite samples screened out at the layer boundary before fitting.
  std::uint64_t dropped_samples = 0;
  double seconds = 0.0;
};

struct PacResult {
  bool success = false;
  PacModel model;  // valid when success (otherwise best attempt)
  std::vector<PacTraceRow> trace;
  /// Best model found at each degree attempted (keyed by degree - 1 order
  /// of appearance). Downstream verification may prefer a lower-degree
  /// surrogate when the primary one defeats the SOS stage.
  std::vector<PacModel> per_degree;
  double total_seconds = 0.0;
};

struct PacFitOptions {
  /// Cap on K; 0 = exact Theorem-3 counts up to the memory guard below.
  /// When capped, the recorded eps is recomputed from the actual sample
  /// count, so the PAC statement stays valid (at a weaker error rate).
  std::uint64_t max_samples = 0;
  /// Hard guard on the design matrix size: K is always clipped so that
  /// K * v doubles stay below this budget (the Theorem-3 count for a
  /// high-degree template at eps = 1e-4 can otherwise demand hundreds of
  /// gigabytes). eps is recomputed as above.
  std::uint64_t max_design_bytes = std::uint64_t{2} << 30;  // 2 GiB
  /// Job-level preemption (borrowed, may be null): checked between (d, eps)
  /// attempts and threaded into the minimax LP solves so a cancellation or
  /// job deadline stops the degree ladder early. Runtime plumbing only --
  /// deliberately excluded from hash_append, so preempted and unpreempted
  /// runs share cache keys.
  const JobControl* control = nullptr;
};

void hash_append(Fnv1a& h, const PacFitOptions& o);

/// Run Algorithm 1 for one scalar control channel.
PacResult pac_approximate(const ScalarFn& fn, const SemialgebraicSet& domain,
                          const PacSettings& settings, Rng& rng,
                          const PacFitOptions& options = {});

/// Multi-channel wrapper (Assumption 2 lifts m = 1; for m > 1 each channel
/// is approximated independently and the worst-channel trace is reported).
struct PacVectorResult {
  bool success = false;
  std::vector<PacModel> models;
  std::vector<PacResult> per_channel;
};

PacVectorResult pac_approximate_vector(
    const std::function<Vec(const Vec&)>& fn, std::size_t output_dim,
    const SemialgebraicSet& domain, const PacSettings& settings, Rng& rng,
    const PacFitOptions& options = {});

/// Empirical violation-rate estimate of a PAC model on held-out samples:
/// fraction of fresh draws with |p(x) - u(x)| > model.error. By Theorem 3
/// this should not significantly exceed model.eps.
double empirical_violation_rate(const PacModel& model, const ScalarFn& fn,
                                const SemialgebraicSet& domain,
                                std::size_t samples, Rng& rng);

}  // namespace scs
