// Scenario-optimization sample bounds (Section 2.2, Theorems 2-3).
#pragma once

#include <cstddef>
#include <cstdint>

namespace scs {

/// Theorem 2/3 sample count: the least K with
///     eps >= (2/K) * (ln(1/eta) + kappa),
/// i.e. K = ceil( (2/eps) * (ln(1/eta) + kappa) ).
/// For the polynomial template of degree d over n variables,
/// kappa = C(n+d, d) + 1 (coefficients plus the error variable e).
std::uint64_t scenario_sample_count(double eps, double eta, std::size_t kappa);

/// kappa for a degree-d polynomial template over n variables.
std::size_t pac_template_kappa(std::size_t num_vars, int degree);

/// The achievable error rate for a given sample count (inverse of the
/// bound): eps(K) = (2/K) * (ln(1/eta) + kappa). Used when the sample count
/// is capped in fast mode.
double scenario_eps_for_samples(std::uint64_t samples, double eta,
                                std::size_t kappa);

}  // namespace scs
