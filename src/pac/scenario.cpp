#include "pac/scenario.hpp"

#include <cmath>

#include "poly/basis.hpp"
#include "util/check.hpp"

namespace scs {

std::uint64_t scenario_sample_count(double eps, double eta,
                                    std::size_t kappa) {
  SCS_REQUIRE(eps > 0.0 && eps < 1.0, "scenario_sample_count: bad eps");
  SCS_REQUIRE(eta > 0.0 && eta < 1.0, "scenario_sample_count: bad eta");
  const double k =
      (2.0 / eps) * (std::log(1.0 / eta) + static_cast<double>(kappa));
  return static_cast<std::uint64_t>(std::ceil(k));
}

std::size_t pac_template_kappa(std::size_t num_vars, int degree) {
  return static_cast<std::size_t>(monomial_count(num_vars, degree)) + 1;
}

double scenario_eps_for_samples(std::uint64_t samples, double eta,
                                std::size_t kappa) {
  SCS_REQUIRE(samples > 0, "scenario_eps_for_samples: need samples > 0");
  SCS_REQUIRE(eta > 0.0 && eta < 1.0, "scenario_eps_for_samples: bad eta");
  return (2.0 / static_cast<double>(samples)) *
         (std::log(1.0 / eta) + static_cast<double>(kappa));
}

}  // namespace scs
