#include "pac/pac_fit.hpp"

#include <algorithm>
#include <cmath>

#include "math/robust_solve.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "opt/minimax_fit.hpp"
#include "pac/scenario.hpp"
#include "poly/basis.hpp"
#include "util/check.hpp"
#include "util/fault_injector.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "util/hash.hpp"

namespace scs {

namespace {

/// Samples per parallel chunk for scenario generation. The chunking (and
/// the substream forked for each chunk) depends only on K, so the drawn
/// scenarios are bitwise-identical at any thread count.
constexpr std::size_t kScenarioChunk = 256;

/// Screen non-finite targets (controller evaluation blow-ups, injected
/// NaNs at the law -> PAC boundary) out of the scenario program. Returns the
/// number of rows dropped; design/targets are compacted in place.
std::size_t drop_nonfinite_samples(Mat& design, Vec& targets) {
  const std::size_t k = design.rows();
  std::size_t kept = 0;
  for (std::size_t i = 0; i < k; ++i) {
    bool finite = std::isfinite(targets[i]);
    const double* row = design.row_ptr(i);
    for (std::size_t j = 0; finite && j < design.cols(); ++j)
      finite = std::isfinite(row[j]);
    if (!finite) continue;
    if (kept != i) {
      design.set_row(kept, design.row(i));
      targets[kept] = targets[i];
    }
    ++kept;
  }
  const std::size_t dropped = k - kept;
  if (dropped > 0) {
    Mat compact(kept, design.cols());
    for (std::size_t i = 0; i < kept; ++i) compact.set_row(i, design.row(i));
    design = std::move(compact);
    Vec t(kept);
    for (std::size_t i = 0; i < kept; ++i) t[i] = targets[i];
    targets = std::move(t);
  }
  return dropped;
}

/// Plain least-squares fallback for a failed scenario program: the
/// degradation ladder's last rung before giving up on this (d, eps) attempt.
MinimaxFitResult least_squares_fallback(const Mat& design,
                                        const Vec& targets) {
  MinimaxFitResult out;
  out.ok = false;
  const std::size_t v = design.cols();
  Mat g(v, v);
  Vec rhs(v, 0.0);
  for (std::size_t i = 0; i < design.rows(); ++i) {
    const double* row = design.row_ptr(i);
    for (std::size_t a = 0; a < v; ++a) {
      rhs[a] += row[a] * targets[i];
      for (std::size_t b = a; b < v; ++b) g(a, b) += row[a] * row[b];
    }
  }
  for (std::size_t a = 0; a < v; ++a) {
    g(a, a) += 1e-10;
    for (std::size_t b = a + 1; b < v; ++b) g(b, a) = g(a, b);
  }
  const LinearSolveReport report = robust_solve_spd(g, rhs);
  if (!report.ok()) {
    out.coefficients = Vec(v, 0.0);
    out.error = std::numeric_limits<double>::infinity();
    out.note = "least-squares fallback failed too";
    return out;
  }
  out.ok = true;
  out.coefficients = report.x;
  Vec r = targets;
  r -= matvec(design, out.coefficients);
  out.error = r.max_abs();
  out.note = "least-squares fallback (no PAC guarantee)";
  return out;
}

}  // namespace

PacResult pac_approximate(const ScalarFn& fn, const SemialgebraicSet& domain,
                          const PacSettings& settings, Rng& rng,
                          const PacFitOptions& options) {
  SCS_REQUIRE(settings.max_degree >= 1, "pac_approximate: max_degree >= 1");
  SCS_REQUIRE(!settings.eps_list.empty(), "pac_approximate: empty eps list");
  PacResult result;
  Stopwatch total;

  const std::size_t n = domain.dim();
  double best_error = std::numeric_limits<double>::infinity();

  // Fit in unit-box coordinates y = x / s (s from the domain box): high-
  // degree design matrices on wide boxes are otherwise too ill-conditioned
  // for the weighted least-squares steps. The returned polynomial is mapped
  // back to x-coordinates, so callers never see the scaling.
  Vec s(n, 1.0), s_inv(n, 1.0);
  {
    const Box& box = domain.sampling_box();
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = std::max({std::fabs(box.lo[i]), std::fabs(box.hi[i]), 1e-9});
      s_inv[i] = 1.0 / s[i];
    }
  }

  for (int d = 1; d <= settings.max_degree; ++d) {
    const auto basis = monomials_up_to(n, d);
    const std::size_t kappa = pac_template_kappa(n, d);
    std::vector<double> error_list;
    PacModel degree_best;
    degree_best.error = std::numeric_limits<double>::infinity();

    for (double eps : settings.eps_list) {
      // Job-level preemption: stop the (d, eps) ladder before drawing the
      // next (potentially huge) scenario batch. The caller inspects its
      // JobControl for the stop reason; this result is simply !success.
      if (stop_requested(options.control)) {
        result.total_seconds = total.seconds();
        return result;
      }
      TraceSpan attempt_span("pac.attempt:d" + std::to_string(d));
      Stopwatch sw;
      PacTraceRow row;
      row.degree = d;
      row.eta = settings.eta;
      row.eps = eps;
      row.samples = scenario_sample_count(eps, settings.eta, kappa);
      row.samples_used = row.samples;
      row.eps_requested = eps;
      const char* cap_reason = nullptr;
      if (options.max_samples > 0 && row.samples_used > options.max_samples) {
        row.samples_used = options.max_samples;
        cap_reason = "max_samples";
      }
      // Memory guard on the design matrix (K x v doubles).
      const std::uint64_t bytes_per_sample = 8 * basis.size();
      const std::uint64_t max_by_memory =
          std::max<std::uint64_t>(1000,
                                  options.max_design_bytes / bytes_per_sample);
      if (row.samples_used > max_by_memory) {
        row.samples_used = max_by_memory;
        cap_reason = "max_design_bytes memory guard";
      }
      if (row.samples_used < row.samples) {
        // Recompute the honest error rate achievable with the capped count;
        // silently keeping the requested eps would invalidate the Theorem-3
        // PAC bound.
        row.eps = scenario_eps_for_samples(row.samples_used, settings.eta,
                                           kappa);
        log_info("pac: d=", d, " truncated K ", row.samples, " -> ",
                 row.samples_used, " (", cap_reason, "); effective eps ",
                 row.eps, " vs requested ", row.eps_requested);
      }

      // Draw K i.i.d. samples from Psi (Assumption 1: uniform measure) and
      // evaluate the target plus the basis row at each. Every chunk samples
      // from its own forked substream and fills its own design rows, so
      // generation and design-matrix evaluation run on all cores while the
      // drawn scenarios stay bitwise-identical at any thread count.
      const std::size_t k_used = static_cast<std::size_t>(row.samples_used);
      if (metrics_enabled()) {
        static Counter& drawn =
            MetricsRegistry::instance().counter("pac.samples_drawn");
        drawn.add(k_used);
      }
      std::vector<Rng> streams = rng.fork_streams(
          (k_used + kScenarioChunk - 1) / kScenarioChunk);
      Mat design(k_used, basis.size());
      Vec targets(k_used);
      parallel_for(k_used, kScenarioChunk,
                   [&](std::size_t begin, std::size_t end) {
                     Rng& chunk_rng = streams[begin / kScenarioChunk];
                     // Draw the whole chunk first (sampling and target
                     // evaluation keep their per-index order), then batch-
                     // evaluate the basis rows: evaluate_basis_rows scans
                     // the basis structure once per chunk and fills the
                     // design rows in place, bitwise-identically to the
                     // per-point evaluate_basis it replaces.
                     std::vector<Vec> chunk_pts;
                     chunk_pts.reserve(end - begin);
                     for (std::size_t i = begin; i < end; ++i) {
                       Vec x = domain.sample(chunk_rng);
                       targets[i] = fn(x);
                       if (fault_injection_enabled())
                         targets[i] = FaultInjector::instance().corrupt(
                             FaultSite::kNanBoundary, targets[i]);
                       // Move the design point into unit-box coordinates.
                       for (std::size_t j = 0; j < n; ++j) x[j] *= s_inv[j];
                       chunk_pts.push_back(std::move(x));
                     }
                     evaluate_basis_rows(basis, chunk_pts, design, begin);
                   });
      // Screen non-finite rows at the boundary: a handful of bad samples
      // (diverging controller rollouts, injected NaNs) must not poison the
      // whole scenario program. Dropping rows weakens the Theorem-3 count,
      // so the effective eps is recomputed from what actually survived.
      row.dropped_samples = drop_nonfinite_samples(design, targets);
      if (row.dropped_samples > 0 && metrics_enabled()) {
        static Counter& dropped =
            MetricsRegistry::instance().counter("pac.samples_dropped");
        dropped.add(row.dropped_samples);
      }
      if (row.dropped_samples > 0) {
        const std::uint64_t survived =
            row.samples_used - row.dropped_samples;
        log_info("pac: d=", d, " dropped ", row.dropped_samples,
                 " non-finite sample(s) of ", row.samples_used);
        row.samples_used = survived;
        if (survived < basis.size() + 1) {
          // Not enough scenarios left for a meaningful fit at this degree.
          row.error = std::numeric_limits<double>::infinity();
          row.eps = 1.0;
          row.degraded = true;
          row.seconds = sw.seconds();
          result.trace.push_back(row);
          error_list.push_back(row.error);
          continue;
        }
        row.eps = scenario_eps_for_samples(survived, settings.eta, kappa);
      }
      MinimaxOptions minimax_options;
      minimax_options.control = options.control;
      MinimaxFitResult fit = minimax_fit(design, targets, minimax_options);
      if (!fit.ok && stop_requested(options.control)) {
        // Preempted mid-fit: do not degrade to least squares (that would
        // burn more time); abandon the ladder and report no success.
        result.total_seconds = total.seconds();
        return result;
      }
      if (!fit.ok) {
        // Degradation ladder: the scenario program (8) could not be solved;
        // fall back to a plain least-squares fit so the pipeline can still
        // hand a polynomial to the verification stage. The PAC guarantee is
        // explicitly downgraded (eps = 1, pac_valid = false) -- Theorem 3
        // does not hold for this model.
        log_info("pac: d=", d, " minimax fit failed (", fit.note,
                 "); degrading to least-squares, PAC guarantee withdrawn");
        fit = least_squares_fallback(design, targets);
        row.degraded = true;
        row.eps = 1.0;
        if (metrics_enabled()) {
          static Counter& degraded =
              MetricsRegistry::instance().counter("pac.degraded_fits");
          degraded.add(1);
        }
      }
      row.error = fit.error;
      error_list.push_back(fit.error);
      row.delta_e = (error_list.size() >= 2)
                        ? std::fabs(error_list[error_list.size() - 1] -
                                    error_list[error_list.size() - 2])
                        : std::numeric_limits<double>::quiet_NaN();
      // check(error_list): |delta e| small => e has converged for this d.
      row.converged = error_list.size() >= 2 &&
                      row.delta_e <= settings.delta_e_tol;
      // A degraded (least-squares) row can never be *accepted*: acceptance
      // is the PAC claim of Theorem 3, which the fallback does not carry.
      row.accepted =
          !row.degraded && row.converged && fit.error <= settings.tau;
      row.seconds = sw.seconds();
      result.trace.push_back(row);

      log_debug("pac: d=", d, " eps=", row.eps, " K=", row.samples_used,
                " e=", fit.error);

      // The representative model at this degree is the *latest* attempt:
      // later attempts use more samples, so their error estimates dominate
      // earlier small-K fits (whose minimax error is optimistically low).
      degree_best.poly =
          Polynomial::from_coefficients(basis, fit.coefficients)
              .scale_vars(s_inv);  // back to x-coordinates
      degree_best.error = fit.error;
      degree_best.eps = row.eps;
      degree_best.eta = settings.eta;
      degree_best.samples = row.samples_used;
      degree_best.degree = d;
      degree_best.pac_valid = !row.degraded;

      if (row.accepted) {
        result.success = true;
        result.model = degree_best;
        result.per_degree.push_back(degree_best);
        result.total_seconds = total.seconds();
        return result;
      }
      if (row.converged) {
        // The error has converged in K but exceeds tau: no amount of extra
        // samples helps at this degree -- raise the degree (this matches the
        // per-degree rows of Table 1).
        break;
      }
    }
    if (std::isfinite(degree_best.error))
      result.per_degree.push_back(degree_best);
  }
  // No acceptance: report the lowest-error converged model across degrees.
  for (const auto& m : result.per_degree) {
    if (m.error < best_error) {
      best_error = m.error;
      result.model = m;
    }
  }
  result.total_seconds = total.seconds();
  return result;
}

PacVectorResult pac_approximate_vector(
    const std::function<Vec(const Vec&)>& fn, std::size_t output_dim,
    const SemialgebraicSet& domain, const PacSettings& settings, Rng& rng,
    const PacFitOptions& options) {
  SCS_REQUIRE(output_dim >= 1, "pac_approximate_vector: bad output dim");
  PacVectorResult out;
  out.success = true;
  for (std::size_t k = 0; k < output_dim; ++k) {
    if (stop_requested(options.control)) {
      out.success = false;
      break;
    }
    const ScalarFn channel = [&fn, k](const Vec& x) { return fn(x)[k]; };
    PacResult r = pac_approximate(channel, domain, settings, rng, options);
    out.success = out.success && r.success;
    out.models.push_back(r.model);
    out.per_channel.push_back(std::move(r));
  }
  return out;
}

double empirical_violation_rate(const PacModel& model, const ScalarFn& fn,
                                const SemialgebraicSet& domain,
                                std::size_t samples, Rng& rng) {
  SCS_REQUIRE(samples > 0, "empirical_violation_rate: need samples > 0");
  std::vector<Rng> streams = rng.fork_streams(
      (samples + kScenarioChunk - 1) / kScenarioChunk);
  const std::size_t violations = parallel_reduce(
      samples, kScenarioChunk, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        Rng& chunk_rng = streams[begin / kScenarioChunk];
        std::size_t count = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const Vec x = domain.sample(chunk_rng);
          if (std::fabs(model.poly.evaluate(x) - fn(x)) > model.error)
            ++count;
        }
        return count;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  return static_cast<double>(violations) / static_cast<double>(samples);
}


void hash_append(Fnv1a& h, const PacFitOptions& o) {
  hash_append(h, o.max_samples);
  hash_append(h, o.max_design_bytes);
}

}  // namespace scs
