#include "pac/pac_fit.hpp"

#include <algorithm>
#include <cmath>

#include "opt/minimax_fit.hpp"
#include "pac/scenario.hpp"
#include "poly/basis.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace scs {

namespace {

/// Samples per parallel chunk for scenario generation. The chunking (and
/// the substream forked for each chunk) depends only on K, so the drawn
/// scenarios are bitwise-identical at any thread count.
constexpr std::size_t kScenarioChunk = 256;

}  // namespace

PacResult pac_approximate(const ScalarFn& fn, const SemialgebraicSet& domain,
                          const PacSettings& settings, Rng& rng,
                          const PacFitOptions& options) {
  SCS_REQUIRE(settings.max_degree >= 1, "pac_approximate: max_degree >= 1");
  SCS_REQUIRE(!settings.eps_list.empty(), "pac_approximate: empty eps list");
  PacResult result;
  Stopwatch total;

  const std::size_t n = domain.dim();
  double best_error = std::numeric_limits<double>::infinity();

  // Fit in unit-box coordinates y = x / s (s from the domain box): high-
  // degree design matrices on wide boxes are otherwise too ill-conditioned
  // for the weighted least-squares steps. The returned polynomial is mapped
  // back to x-coordinates, so callers never see the scaling.
  Vec s(n, 1.0), s_inv(n, 1.0);
  {
    const Box& box = domain.sampling_box();
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = std::max({std::fabs(box.lo[i]), std::fabs(box.hi[i]), 1e-9});
      s_inv[i] = 1.0 / s[i];
    }
  }

  for (int d = 1; d <= settings.max_degree; ++d) {
    const auto basis = monomials_up_to(n, d);
    const std::size_t kappa = pac_template_kappa(n, d);
    std::vector<double> error_list;
    PacModel degree_best;
    degree_best.error = std::numeric_limits<double>::infinity();

    for (double eps : settings.eps_list) {
      Stopwatch sw;
      PacTraceRow row;
      row.degree = d;
      row.eta = settings.eta;
      row.eps = eps;
      row.samples = scenario_sample_count(eps, settings.eta, kappa);
      row.samples_used = row.samples;
      row.eps_requested = eps;
      const char* cap_reason = nullptr;
      if (options.max_samples > 0 && row.samples_used > options.max_samples) {
        row.samples_used = options.max_samples;
        cap_reason = "max_samples";
      }
      // Memory guard on the design matrix (K x v doubles).
      const std::uint64_t bytes_per_sample = 8 * basis.size();
      const std::uint64_t max_by_memory =
          std::max<std::uint64_t>(1000,
                                  options.max_design_bytes / bytes_per_sample);
      if (row.samples_used > max_by_memory) {
        row.samples_used = max_by_memory;
        cap_reason = "max_design_bytes memory guard";
      }
      if (row.samples_used < row.samples) {
        // Recompute the honest error rate achievable with the capped count;
        // silently keeping the requested eps would invalidate the Theorem-3
        // PAC bound.
        row.eps = scenario_eps_for_samples(row.samples_used, settings.eta,
                                           kappa);
        log_info("pac: d=", d, " truncated K ", row.samples, " -> ",
                 row.samples_used, " (", cap_reason, "); effective eps ",
                 row.eps, " vs requested ", row.eps_requested);
      }

      // Draw K i.i.d. samples from Psi (Assumption 1: uniform measure) and
      // evaluate the target plus the basis row at each. Every chunk samples
      // from its own forked substream and fills its own design rows, so
      // generation and design-matrix evaluation run on all cores while the
      // drawn scenarios stay bitwise-identical at any thread count.
      const std::size_t k_used = static_cast<std::size_t>(row.samples_used);
      std::vector<Rng> streams = rng.fork_streams(
          (k_used + kScenarioChunk - 1) / kScenarioChunk);
      Mat design(k_used, basis.size());
      Vec targets(k_used);
      parallel_for(k_used, kScenarioChunk,
                   [&](std::size_t begin, std::size_t end) {
                     Rng& chunk_rng = streams[begin / kScenarioChunk];
                     for (std::size_t i = begin; i < end; ++i) {
                       Vec x = domain.sample(chunk_rng);
                       targets[i] = fn(x);
                       // Move the design point into unit-box coordinates.
                       for (std::size_t j = 0; j < n; ++j) x[j] *= s_inv[j];
                       design.set_row(i, evaluate_basis(basis, x));
                     }
                   });
      const MinimaxFitResult fit = minimax_fit(design, targets);
      row.error = fit.error;
      error_list.push_back(fit.error);
      row.delta_e = (error_list.size() >= 2)
                        ? std::fabs(error_list[error_list.size() - 1] -
                                    error_list[error_list.size() - 2])
                        : std::numeric_limits<double>::quiet_NaN();
      // check(error_list): |delta e| small => e has converged for this d.
      row.converged = error_list.size() >= 2 &&
                      row.delta_e <= settings.delta_e_tol;
      row.accepted = row.converged && fit.error <= settings.tau;
      row.seconds = sw.seconds();
      result.trace.push_back(row);

      log_debug("pac: d=", d, " eps=", row.eps, " K=", row.samples_used,
                " e=", fit.error);

      // The representative model at this degree is the *latest* attempt:
      // later attempts use more samples, so their error estimates dominate
      // earlier small-K fits (whose minimax error is optimistically low).
      degree_best.poly =
          Polynomial::from_coefficients(basis, fit.coefficients)
              .scale_vars(s_inv);  // back to x-coordinates
      degree_best.error = fit.error;
      degree_best.eps = row.eps;
      degree_best.eta = settings.eta;
      degree_best.samples = row.samples_used;
      degree_best.degree = d;

      if (row.accepted) {
        result.success = true;
        result.model = degree_best;
        result.per_degree.push_back(degree_best);
        result.total_seconds = total.seconds();
        return result;
      }
      if (row.converged) {
        // The error has converged in K but exceeds tau: no amount of extra
        // samples helps at this degree -- raise the degree (this matches the
        // per-degree rows of Table 1).
        break;
      }
    }
    if (std::isfinite(degree_best.error))
      result.per_degree.push_back(degree_best);
  }
  // No acceptance: report the lowest-error converged model across degrees.
  for (const auto& m : result.per_degree) {
    if (m.error < best_error) {
      best_error = m.error;
      result.model = m;
    }
  }
  result.total_seconds = total.seconds();
  return result;
}

PacVectorResult pac_approximate_vector(
    const std::function<Vec(const Vec&)>& fn, std::size_t output_dim,
    const SemialgebraicSet& domain, const PacSettings& settings, Rng& rng,
    const PacFitOptions& options) {
  SCS_REQUIRE(output_dim >= 1, "pac_approximate_vector: bad output dim");
  PacVectorResult out;
  out.success = true;
  for (std::size_t k = 0; k < output_dim; ++k) {
    const ScalarFn channel = [&fn, k](const Vec& x) { return fn(x)[k]; };
    PacResult r = pac_approximate(channel, domain, settings, rng, options);
    out.success = out.success && r.success;
    out.models.push_back(r.model);
    out.per_channel.push_back(std::move(r));
  }
  return out;
}

double empirical_violation_rate(const PacModel& model, const ScalarFn& fn,
                                const SemialgebraicSet& domain,
                                std::size_t samples, Rng& rng) {
  SCS_REQUIRE(samples > 0, "empirical_violation_rate: need samples > 0");
  std::vector<Rng> streams = rng.fork_streams(
      (samples + kScenarioChunk - 1) / kScenarioChunk);
  const std::size_t violations = parallel_reduce(
      samples, kScenarioChunk, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        Rng& chunk_rng = streams[begin / kScenarioChunk];
        std::size_t count = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const Vec x = domain.sample(chunk_rng);
          if (std::fabs(model.poly.evaluate(x) - fn(x)) > model.error)
            ++count;
        }
        return count;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  return static_cast<double>(violations) / static_cast<double>(samples);
}

}  // namespace scs
