#include "pac/pac_fit.hpp"

#include <algorithm>
#include <cmath>

#include "opt/minimax_fit.hpp"
#include "pac/scenario.hpp"
#include "poly/basis.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"

namespace scs {

namespace {

/// Build the design matrix of basis evaluations at the sampled points.
Mat build_design(const std::vector<Vec>& points,
                 const std::vector<Monomial>& basis) {
  Mat design(points.size(), basis.size());
  for (std::size_t i = 0; i < points.size(); ++i)
    design.set_row(i, evaluate_basis(basis, points[i]));
  return design;
}

}  // namespace

PacResult pac_approximate(const ScalarFn& fn, const SemialgebraicSet& domain,
                          const PacSettings& settings, Rng& rng,
                          const PacFitOptions& options) {
  SCS_REQUIRE(settings.max_degree >= 1, "pac_approximate: max_degree >= 1");
  SCS_REQUIRE(!settings.eps_list.empty(), "pac_approximate: empty eps list");
  PacResult result;
  Stopwatch total;

  const std::size_t n = domain.dim();
  double best_error = std::numeric_limits<double>::infinity();

  // Fit in unit-box coordinates y = x / s (s from the domain box): high-
  // degree design matrices on wide boxes are otherwise too ill-conditioned
  // for the weighted least-squares steps. The returned polynomial is mapped
  // back to x-coordinates, so callers never see the scaling.
  Vec s(n, 1.0), s_inv(n, 1.0);
  {
    const Box& box = domain.sampling_box();
    for (std::size_t i = 0; i < n; ++i) {
      s[i] = std::max({std::fabs(box.lo[i]), std::fabs(box.hi[i]), 1e-9});
      s_inv[i] = 1.0 / s[i];
    }
  }

  for (int d = 1; d <= settings.max_degree; ++d) {
    const auto basis = monomials_up_to(n, d);
    const std::size_t kappa = pac_template_kappa(n, d);
    std::vector<double> error_list;
    PacModel degree_best;
    degree_best.error = std::numeric_limits<double>::infinity();

    for (double eps : settings.eps_list) {
      Stopwatch sw;
      PacTraceRow row;
      row.degree = d;
      row.eta = settings.eta;
      row.eps = eps;
      row.samples = scenario_sample_count(eps, settings.eta, kappa);
      row.samples_used = row.samples;
      if (options.max_samples > 0 && row.samples_used > options.max_samples)
        row.samples_used = options.max_samples;
      // Memory guard on the design matrix (K x v doubles).
      const std::uint64_t bytes_per_sample = 8 * basis.size();
      const std::uint64_t max_by_memory =
          std::max<std::uint64_t>(1000,
                                  options.max_design_bytes / bytes_per_sample);
      if (row.samples_used > max_by_memory) {
        row.samples_used = max_by_memory;
        log_info("pac: capping K at ", max_by_memory,
                 " by the design-matrix memory guard");
      }
      if (row.samples_used < row.samples) {
        // Recompute the honest error rate achievable with the capped count.
        row.eps = scenario_eps_for_samples(row.samples_used, settings.eta,
                                           kappa);
      }

      // Draw K i.i.d. samples from Psi (Assumption 1: uniform measure).
      auto points =
          domain.sample_many(static_cast<std::size_t>(row.samples_used), rng);
      Vec targets(points.size());
      for (std::size_t i = 0; i < points.size(); ++i) {
        targets[i] = fn(points[i]);
        // Move the design point into unit-box coordinates.
        for (std::size_t j = 0; j < n; ++j) points[i][j] *= s_inv[j];
      }

      const Mat design = build_design(points, basis);
      const MinimaxFitResult fit = minimax_fit(design, targets);
      row.error = fit.error;
      error_list.push_back(fit.error);
      row.delta_e = (error_list.size() >= 2)
                        ? std::fabs(error_list[error_list.size() - 1] -
                                    error_list[error_list.size() - 2])
                        : std::numeric_limits<double>::quiet_NaN();
      // check(error_list): |delta e| small => e has converged for this d.
      row.converged = error_list.size() >= 2 &&
                      row.delta_e <= settings.delta_e_tol;
      row.accepted = row.converged && fit.error <= settings.tau;
      row.seconds = sw.seconds();
      result.trace.push_back(row);

      log_debug("pac: d=", d, " eps=", row.eps, " K=", row.samples_used,
                " e=", fit.error);

      // The representative model at this degree is the *latest* attempt:
      // later attempts use more samples, so their error estimates dominate
      // earlier small-K fits (whose minimax error is optimistically low).
      degree_best.poly =
          Polynomial::from_coefficients(basis, fit.coefficients)
              .scale_vars(s_inv);  // back to x-coordinates
      degree_best.error = fit.error;
      degree_best.eps = row.eps;
      degree_best.eta = settings.eta;
      degree_best.samples = row.samples_used;
      degree_best.degree = d;

      if (row.accepted) {
        result.success = true;
        result.model = degree_best;
        result.per_degree.push_back(degree_best);
        result.total_seconds = total.seconds();
        return result;
      }
      if (row.converged) {
        // The error has converged in K but exceeds tau: no amount of extra
        // samples helps at this degree -- raise the degree (this matches the
        // per-degree rows of Table 1).
        break;
      }
    }
    if (std::isfinite(degree_best.error))
      result.per_degree.push_back(degree_best);
  }
  // No acceptance: report the lowest-error converged model across degrees.
  for (const auto& m : result.per_degree) {
    if (m.error < best_error) {
      best_error = m.error;
      result.model = m;
    }
  }
  result.total_seconds = total.seconds();
  return result;
}

PacVectorResult pac_approximate_vector(
    const std::function<Vec(const Vec&)>& fn, std::size_t output_dim,
    const SemialgebraicSet& domain, const PacSettings& settings, Rng& rng,
    const PacFitOptions& options) {
  SCS_REQUIRE(output_dim >= 1, "pac_approximate_vector: bad output dim");
  PacVectorResult out;
  out.success = true;
  for (std::size_t k = 0; k < output_dim; ++k) {
    const ScalarFn channel = [&fn, k](const Vec& x) { return fn(x)[k]; };
    PacResult r = pac_approximate(channel, domain, settings, rng, options);
    out.success = out.success && r.success;
    out.models.push_back(r.model);
    out.per_channel.push_back(std::move(r));
  }
  return out;
}

double empirical_violation_rate(const PacModel& model, const ScalarFn& fn,
                                const SemialgebraicSet& domain,
                                std::size_t samples, Rng& rng) {
  SCS_REQUIRE(samples > 0, "empirical_violation_rate: need samples > 0");
  std::size_t violations = 0;
  for (std::size_t i = 0; i < samples; ++i) {
    const Vec x = domain.sample(rng);
    if (std::fabs(model.poly.evaluate(x) - fn(x)) > model.error)
      ++violations;
  }
  return static_cast<double>(violations) / static_cast<double>(samples);
}

}  // namespace scs
