// Explicit ODE integrators for simulating closed-loop dynamics.
//
// RK4 with a fixed step is the default for RL rollouts (cheap, predictable
// cost per step); adaptive RKF45 is available for higher-accuracy empirical
// safety checks.
#pragma once

#include <functional>

#include "math/vec.hpp"

namespace scs {

/// Autonomous vector field xdot = F(x).
using VectorField = std::function<Vec(const Vec&)>;

/// One classical Runge-Kutta 4 step.
Vec rk4_step(const VectorField& field, const Vec& x, double dt);

/// One adaptive Runge-Kutta-Fehlberg 4(5) step. On return, `dt_used` holds
/// the accepted step and `dt_next` a suggestion for the next one.
Vec rkf45_step(const VectorField& field, const Vec& x, double dt_try,
               double abs_tol, double* dt_used, double* dt_next);

}  // namespace scs
