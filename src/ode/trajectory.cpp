#include "ode/trajectory.hpp"

#include <cmath>

#include "util/check.hpp"

namespace scs {

namespace {
bool is_finite(const Vec& x) {
  for (double v : x)
    if (!std::isfinite(v)) return false;
  return true;
}
}  // namespace

Trajectory simulate(const VectorField& field, const Vec& x0,
                    const SimulateOptions& options, const StopPredicate& stop) {
  SCS_REQUIRE(options.dt > 0.0, "simulate: dt must be positive");
  Trajectory traj;
  traj.states.push_back(x0);
  traj.times.push_back(0.0);

  Vec x = x0;
  double t = 0.0;
  for (std::size_t step = 0; step < options.max_steps; ++step) {
    x = rk4_step(field, x, options.dt);
    t += options.dt;

    if (!is_finite(x) || x.norm() > options.divergence_norm) {
      traj.stop = StopReason::kDiverged;
      break;
    }
    if (options.record) {
      traj.states.push_back(x);
      traj.times.push_back(t);
    }
    if (stop && stop(x)) {
      traj.stop = StopReason::kPredicate;
      break;
    }
  }
  if (!options.record || traj.stop == StopReason::kDiverged) {
    // Always expose the final state even in compact mode / on divergence.
    if (traj.states.back().data() != x.data()) {
      traj.states.push_back(x);
      traj.times.push_back(t);
    }
  }
  return traj;
}

}  // namespace scs
