// Closed-loop trajectory simulation with stop-condition monitoring
// (entering the unsafe region X_u or leaving the domain Psi).
#pragma once

#include <functional>
#include <vector>

#include "math/vec.hpp"
#include "ode/integrator.hpp"

namespace scs {

/// Why a simulation stopped.
enum class StopReason {
  kHorizonReached,  // simulated all requested steps
  kPredicate,       // user stop predicate fired (e.g. entered X_u)
  kDiverged,        // state blew up (non-finite or norm overflow)
};

struct Trajectory {
  std::vector<Vec> states;     // includes the initial state
  std::vector<double> times;   // matching time stamps
  StopReason stop = StopReason::kHorizonReached;

  std::size_t size() const { return states.size(); }
  const Vec& back() const { return states.back(); }
};

/// Predicate evaluated after every step; returning true stops the run.
using StopPredicate = std::function<bool(const Vec&)>;

struct SimulateOptions {
  double dt = 0.01;
  std::size_t max_steps = 1000;
  double divergence_norm = 1e6;  // treat ||x|| beyond this as divergence
  bool record = true;            // keep every state (else only first/last)
};

/// Fixed-step RK4 simulation of an autonomous field.
Trajectory simulate(const VectorField& field, const Vec& x0,
                    const SimulateOptions& options,
                    const StopPredicate& stop = nullptr);

}  // namespace scs
