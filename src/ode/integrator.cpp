#include "ode/integrator.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace scs {

Vec rk4_step(const VectorField& field, const Vec& x, double dt) {
  SCS_REQUIRE(dt > 0.0, "rk4_step: dt must be positive");
  const Vec k1 = field(x);
  Vec x2 = x;
  x2.axpy(0.5 * dt, k1);
  const Vec k2 = field(x2);
  Vec x3 = x;
  x3.axpy(0.5 * dt, k2);
  const Vec k3 = field(x3);
  Vec x4 = x;
  x4.axpy(dt, k3);
  const Vec k4 = field(x4);

  Vec out = x;
  out.axpy(dt / 6.0, k1);
  out.axpy(dt / 3.0, k2);
  out.axpy(dt / 3.0, k3);
  out.axpy(dt / 6.0, k4);
  return out;
}

Vec rkf45_step(const VectorField& field, const Vec& x, double dt_try,
               double abs_tol, double* dt_used, double* dt_next) {
  SCS_REQUIRE(dt_try > 0.0, "rkf45_step: dt must be positive");
  SCS_REQUIRE(abs_tol > 0.0, "rkf45_step: tolerance must be positive");

  // Fehlberg coefficients.
  static const double a2 = 1.0 / 4, a3 = 3.0 / 8, a4 = 12.0 / 13, a5 = 1.0,
                      a6 = 1.0 / 2;
  static const double b21 = 1.0 / 4;
  static const double b31 = 3.0 / 32, b32 = 9.0 / 32;
  static const double b41 = 1932.0 / 2197, b42 = -7200.0 / 2197,
                      b43 = 7296.0 / 2197;
  static const double b51 = 439.0 / 216, b52 = -8.0, b53 = 3680.0 / 513,
                      b54 = -845.0 / 4104;
  static const double b61 = -8.0 / 27, b62 = 2.0, b63 = -3544.0 / 2565,
                      b64 = 1859.0 / 4104, b65 = -11.0 / 40;
  // 5th-order weights and embedded 4th-order weights.
  static const double c1 = 16.0 / 135, c3 = 6656.0 / 12825,
                      c4 = 28561.0 / 56430, c5 = -9.0 / 50, c6 = 2.0 / 55;
  static const double d1 = 25.0 / 216, d3 = 1408.0 / 2565, d4 = 2197.0 / 4104,
                      d5 = -1.0 / 5;
  (void)a2;
  (void)a3;
  (void)a4;
  (void)a5;
  (void)a6;

  double dt = dt_try;
  for (int attempt = 0; attempt < 20; ++attempt) {
    const Vec k1 = field(x);
    Vec t2 = x;
    t2.axpy(dt * b21, k1);
    const Vec k2 = field(t2);
    Vec t3 = x;
    t3.axpy(dt * b31, k1).axpy(dt * b32, k2);
    const Vec k3 = field(t3);
    Vec t4 = x;
    t4.axpy(dt * b41, k1).axpy(dt * b42, k2).axpy(dt * b43, k3);
    const Vec k4 = field(t4);
    Vec t5 = x;
    t5.axpy(dt * b51, k1).axpy(dt * b52, k2).axpy(dt * b53, k3).axpy(dt * b54,
                                                                     k4);
    const Vec k5 = field(t5);
    Vec t6 = x;
    t6.axpy(dt * b61, k1)
        .axpy(dt * b62, k2)
        .axpy(dt * b63, k3)
        .axpy(dt * b64, k4)
        .axpy(dt * b65, k5);
    const Vec k6 = field(t6);

    Vec x5 = x;
    x5.axpy(dt * c1, k1)
        .axpy(dt * c3, k3)
        .axpy(dt * c4, k4)
        .axpy(dt * c5, k5)
        .axpy(dt * c6, k6);
    Vec x4o = x;
    x4o.axpy(dt * d1, k1).axpy(dt * d3, k3).axpy(dt * d4, k4).axpy(dt * d5, k5);

    const double err = max_abs_diff(x5, x4o);
    if (err <= abs_tol || dt <= 1e-12) {
      if (dt_used != nullptr) *dt_used = dt;
      if (dt_next != nullptr) {
        const double grow =
            (err > 0.0) ? 0.9 * std::pow(abs_tol / err, 0.2) : 2.0;
        *dt_next = dt * std::clamp(grow, 0.2, 2.0);
      }
      return x5;
    }
    dt *= std::max(0.2, 0.9 * std::pow(abs_tol / err, 0.25));
  }
  // Tolerance unreachable (stiff segment): return the last attempt.
  if (dt_used != nullptr) *dt_used = dt;
  if (dt_next != nullptr) *dt_next = dt;
  return rk4_step(field, x, dt);
}

}  // namespace scs
