#include "sos/interval.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/check.hpp"

namespace scs {

Interval::Interval(double l, double h) : lo(l), hi(h) {
  SCS_REQUIRE(l <= h, "Interval: lo must be <= hi");
}

Interval Interval::operator+(const Interval& rhs) const {
  return {lo + rhs.lo, hi + rhs.hi};
}

Interval Interval::operator-(const Interval& rhs) const {
  return {lo - rhs.hi, hi - rhs.lo};
}

Interval Interval::operator*(const Interval& rhs) const {
  const double a = lo * rhs.lo;
  const double b = lo * rhs.hi;
  const double c = hi * rhs.lo;
  const double d = hi * rhs.hi;
  return {std::min({a, b, c, d}), std::max({a, b, c, d})};
}

Interval Interval::operator*(double s) const {
  return (s >= 0.0) ? Interval{lo * s, hi * s} : Interval{hi * s, lo * s};
}

Interval Interval::pow(int e) const {
  SCS_REQUIRE(e >= 0, "Interval::pow: negative exponent");
  if (e == 0) return point(1.0);
  if (e == 1) return *this;
  if (e % 2 == 1) {
    // Odd powers are monotone.
    return {pow_int(lo, e), pow_int(hi, e)};
  }
  // Even powers: the minimum is 0 when the interval straddles zero.
  const double plo = pow_int(lo, e);
  const double phi = pow_int(hi, e);
  if (contains(0.0)) return {0.0, std::max(plo, phi)};
  return {std::min(plo, phi), std::max(plo, phi)};
}

Interval interval_enclosure(const Polynomial& p, const Box& box) {
  SCS_REQUIRE(p.num_vars() == box.dim(),
              "interval_enclosure: dimension mismatch");
  Interval acc = Interval::point(0.0);
  for (const auto& [m, c] : p.terms()) {
    Interval term = Interval::point(c);
    for (std::size_t i = 0; i < box.dim(); ++i) {
      const int e = m.exponent(i);
      if (e == 0) continue;
      term = term * Interval(box.lo[i], box.hi[i]).pow(e);
    }
    acc = acc + term;
  }
  return acc;
}

BoundResult prove_lower_bound(const Polynomial& p, const Box& box,
                              double threshold, const BoundOptions& options) {
  SCS_REQUIRE(p.num_vars() == box.dim(),
              "prove_lower_bound: dimension mismatch");
  BoundResult result;
  result.certified_lower_bound = std::numeric_limits<double>::infinity();

  std::deque<Box> queue = {box};
  while (!queue.empty()) {
    if (result.boxes_processed >= options.max_boxes) {
      result.budget_exhausted = true;
      result.counterexample_region = queue.front();
      return result;
    }
    ++result.boxes_processed;
    const Box cur = queue.front();
    queue.pop_front();

    const Interval range = interval_enclosure(p, cur);
    if (range.lo >= threshold + options.slack) {
      result.certified_lower_bound =
          std::min(result.certified_lower_bound, range.lo);
      continue;  // this leaf is proven
    }
    // Quick refutation at the midpoint.
    const Vec mid = cur.center();
    if (p.evaluate(mid) < threshold) {
      result.counterexample_region = cur;
      result.certified_lower_bound = std::min(
          result.certified_lower_bound, p.evaluate(mid));
      return result;  // genuine violation
    }
    // Subdivide along the widest axis.
    std::size_t axis = 0;
    double best_width = -1.0;
    for (std::size_t i = 0; i < cur.dim(); ++i) {
      const double w = cur.hi[i] - cur.lo[i];
      if (w > best_width) {
        best_width = w;
        axis = i;
      }
    }
    if (best_width < 1e-12) {
      // Degenerate box whose enclosure still fails: treat as numerical
      // counterexample evidence.
      result.counterexample_region = cur;
      return result;
    }
    Box left = cur, right = cur;
    left.hi[axis] = mid[axis];
    right.lo[axis] = mid[axis];
    queue.push_back(left);
    queue.push_back(right);
  }

  result.proven = true;
  if (!std::isfinite(result.certified_lower_bound))
    result.certified_lower_bound = threshold;
  return result;
}

}  // namespace scs
