// General Putinar positivity certification: prove f(x) >= margin on a
// basic semialgebraic set K = {g_i >= 0} by finding SOS multipliers with
//
//   f - margin = sigma_0 + sum_i sigma_i g_i        (identity (11)).
//
// This is the reusable core of the barrier program's three conditions and
// a convenient public entry point ("is this polynomial nonnegative on this
// set?") for library users.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "opt/sdp.hpp"
#include "poly/polynomial.hpp"

namespace scs {

struct PutinarOptions {
  /// Degree of the SOS residual sigma_0 (rounded up to even internally);
  /// 0 = choose automatically from deg(f) and the g_i.
  int certificate_degree = 0;
  double margin = 0.0;  // prove f >= margin
  SdpOptions sdp;
  double identity_tol = 1e-5;
  double gram_tol = 1e-6;
  /// Newton-polytope style Gram-basis pruning (SosProgram::set_gram_pruning):
  /// shrinks the PSD blocks without changing feasibility, but perturbs the
  /// interior-point trajectory, so it is opt-in to keep default results
  /// reproducible against older runs.
  bool prune_gram = false;
};

struct PutinarCertificate {
  Polynomial sigma0;
  std::vector<Polynomial> multipliers;  // one per constraint g_i
  double margin = 0.0;
  /// Max |coefficient| of f - margin - sigma0 - sum sigma_i g_i.
  double identity_residual = 0.0;
};

/// Attempt to certify f >= margin on {x | g_i(x) >= 0 for all i}.
/// Returns std::nullopt when no certificate of the chosen degree is found
/// (which does NOT prove f dips below the margin).
std::optional<PutinarCertificate> certify_nonnegativity(
    const Polynomial& f, const std::vector<Polynomial>& constraints,
    const PutinarOptions& options = {});

}  // namespace scs
