#include "sos/sos_program.hpp"

#include <map>

#include "math/eigen_sym.hpp"
#include "math/qr.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace scs {

SosProgram::SosProgram(std::size_t num_vars) : num_vars_(num_vars) {
  SCS_REQUIRE(num_vars > 0, "SosProgram: need at least one variable");
}

SosProgram::PolyVar SosProgram::add_free_poly(
    const std::vector<Monomial>& basis) {
  SCS_REQUIRE(!basis.empty(), "add_free_poly: empty basis");
  for (const auto& m : basis)
    SCS_REQUIRE(m.num_vars() == num_vars_,
                "add_free_poly: basis variable count mismatch");
  VarInfo info;
  info.kind = VarKind::kFree;
  info.basis = basis;
  info.offset = num_free_scalars_;
  num_free_scalars_ += basis.size();
  vars_.push_back(std::move(info));
  return PolyVar{vars_.size() - 1};
}

SosProgram::PolyVar SosProgram::add_sos_poly(
    const std::vector<Monomial>& gram_basis) {
  SCS_REQUIRE(!gram_basis.empty(), "add_sos_poly: empty Gram basis");
  for (const auto& m : gram_basis)
    SCS_REQUIRE(m.num_vars() == num_vars_,
                "add_sos_poly: basis variable count mismatch");
  VarInfo info;
  info.kind = VarKind::kSos;
  info.basis = gram_basis;
  info.offset = num_blocks_;
  ++num_blocks_;
  vars_.push_back(std::move(info));
  return PolyVar{vars_.size() - 1};
}

void SosProgram::add_identity(const Polynomial& constant,
                              std::vector<Term> terms) {
  SCS_REQUIRE(constant.num_vars() == num_vars_,
              "add_identity: constant variable count mismatch");
  for (const auto& t : terms) {
    SCS_REQUIRE(t.var.id < vars_.size(), "add_identity: unknown variable");
    SCS_REQUIRE(t.multiplier.num_vars() == num_vars_,
                "add_identity: multiplier variable count mismatch");
    if (t.derivative_var.has_value()) {
      SCS_REQUIRE(*t.derivative_var < num_vars_,
                  "add_identity: derivative variable out of range");
      SCS_REQUIRE(vars_[t.var.id].kind == VarKind::kFree,
                  "add_identity: derivatives only supported on free polys");
    }
  }
  identities_.push_back({constant, std::move(terms)});
}

void SosProgram::add_point_constraint(PolyVar var, const Vec& point,
                                      double value) {
  SCS_REQUIRE(var.id < vars_.size(), "add_point_constraint: unknown variable");
  SCS_REQUIRE(point.size() == num_vars_,
              "add_point_constraint: point dimension mismatch");
  point_constraints_.push_back({var.id, point, value});
}

SdpProblem SosProgram::compile() const {
  return compile_with(effective_bases());
}

SdpProblem SosProgram::compile_with(
    const std::vector<std::vector<Monomial>>& bases) const {
  SCS_REQUIRE(!identities_.empty(), "compile: no identities added");
  SdpProblem sdp;
  sdp.num_free = num_free_scalars_;
  sdp.block_dims.resize(num_blocks_);
  for (std::size_t k = 0; k < vars_.size(); ++k)
    if (vars_[k].kind == VarKind::kSos)
      sdp.block_dims[vars_[k].offset] = bases[k].size();
  // Feasibility objective: minimize total Gram trace (keeps certificates
  // small and gives the IPM a well-posed optimum).
  sdp.block_obj_weight.assign(num_blocks_, 1.0);

  for (const auto& ident : identities_) {
    // Equations for this identity, keyed by monomial.
    std::map<Monomial, SdpConstraint, GrlexLess> equations;
    const auto equation = [&](const Monomial& mono) -> SdpConstraint& {
      return equations[mono];
    };

    // Constant part: moves to the RHS with a sign flip.
    for (const auto& [mono, coeff] : ident.constant.terms())
      equation(mono).rhs -= coeff;

    for (const auto& term : ident.terms) {
      const VarInfo& info = vars_[term.var.id];
      const std::vector<Monomial>& var_basis = bases[term.var.id];
      if (info.kind == VarKind::kFree) {
        for (std::size_t j = 0; j < var_basis.size(); ++j) {
          // Effective basis element: m_j or d(m_j)/dx_i.
          double scale = 1.0;
          Monomial mj = var_basis[j];
          if (term.derivative_var.has_value()) {
            const auto [k, dm] = mj.derivative(*term.derivative_var);
            if (k == 0) continue;
            scale = static_cast<double>(k);
            mj = dm;
          }
          for (const auto& [qm, qc] : term.multiplier.terms()) {
            const Monomial target = qm * mj;
            equation(target).free_terms.emplace_back(info.offset + j,
                                                     qc * scale);
          }
        }
      } else {
        // SOS variable: q * z' G z. Entry convention: SdpEntry(value = v)
        // contributes v * G(a,a) on the diagonal and 2 v * G(a,b) off it,
        // exactly matching the ordered-pair expansion of z' G z.
        const auto& z = var_basis;
        for (std::size_t a = 0; a < z.size(); ++a) {
          for (std::size_t bcol = a; bcol < z.size(); ++bcol) {
            const Monomial zz = z[a] * z[bcol];
            for (const auto& [qm, qc] : term.multiplier.terms()) {
              const Monomial target = qm * zz;
              SdpEntry e;
              e.block = info.offset;
              e.row = a;
              e.col = bcol;
              e.value = qc;
              equation(target).entries.push_back(e);
            }
          }
        }
      }
    }

    // Merge duplicate free terms / entries per equation and emit.
    for (auto& [mono, con] : equations) {
      (void)mono;
      // Combine repeated free-variable terms.
      std::map<std::size_t, double> combined;
      for (const auto& [idx, coeff] : con.free_terms) combined[idx] += coeff;
      con.free_terms.clear();
      for (const auto& [idx, coeff] : combined)
        if (coeff != 0.0) con.free_terms.emplace_back(idx, coeff);
      // Combine repeated Gram entries.
      std::map<std::tuple<std::size_t, std::size_t, std::size_t>, double>
          centries;
      for (const auto& e : con.entries)
        centries[{e.block, e.row, e.col}] += e.value;
      con.entries.clear();
      for (const auto& [key, value] : centries) {
        if (value == 0.0) continue;
        con.entries.push_back(
            {std::get<0>(key), std::get<1>(key), std::get<2>(key), value});
      }
      sdp.constraints.push_back(std::move(con));
    }
  }

  // Point-evaluation constraints.
  for (const auto& pc : point_constraints_) {
    const VarInfo& info = vars_[pc.var_id];
    const std::vector<Monomial>& var_basis = bases[pc.var_id];
    SdpConstraint con;
    con.rhs = pc.value;
    if (info.kind == VarKind::kFree) {
      for (std::size_t j = 0; j < var_basis.size(); ++j) {
        const double phi = var_basis[j].evaluate(pc.point);
        if (phi != 0.0) con.free_terms.emplace_back(info.offset + j, phi);
      }
    } else {
      // z(x)' G z(x) = value: diagonal entries contribute z_a^2, off-diagonal
      // pairs 2 z_a z_b (the entry convention supplies the factor of two).
      const Vec z = evaluate_basis(var_basis, pc.point);
      for (std::size_t a = 0; a < z.size(); ++a)
        for (std::size_t b = a; b < z.size(); ++b) {
          const double v = z[a] * z[b];
          if (v != 0.0)
            con.entries.push_back({info.offset, a, b, v});
        }
    }
    sdp.constraints.push_back(std::move(con));
  }
  return sdp;
}

std::vector<std::vector<Monomial>> SosProgram::effective_bases(
    int* rounds) const {
  if (rounds != nullptr) *rounds = 0;
  std::vector<std::vector<Monomial>> bases;
  bases.reserve(vars_.size());
  for (const auto& v : vars_) bases.push_back(v.basis);
  if (!prune_gram_ || identities_.empty()) return bases;

  // Map each SDP block back to the PolyVar that owns it.
  std::vector<std::size_t> var_of_block(num_blocks_);
  for (std::size_t k = 0; k < vars_.size(); ++k)
    if (vars_[k].kind == VarKind::kSos) var_of_block[vars_[k].offset] = k;

  // Iterated diagonal-consistency reduction (the monomial-support /
  // Newton-polytope argument on the compiled SDP): a constraint of the form
  //
  //     sum_i c_i G_{b_i}(a_i, a_i) = 0,   all c_i the same sign,
  //
  // with no free-variable terms and no off-diagonal entries forces every
  // participating diagonal to zero, and PSD-ness then zeroes the whole
  // row/column -- so basis monomial a_i can be removed from block b_i
  // without changing the feasible set. Removal shrinks the equation set,
  // which can expose further all-diagonal constraints; iterate to fixpoint.
  for (;;) {
    const SdpProblem sdp = compile_with(bases);
    // dead[block] -> indices (in the *current* pruned basis) forced to 0.
    std::vector<std::vector<bool>> dead(num_blocks_);
    for (std::size_t b = 0; b < num_blocks_; ++b)
      dead[b].assign(sdp.block_dims[b], false);
    bool removed_any = false;
    for (const auto& con : sdp.constraints) {
      if (con.rhs != 0.0 || !con.free_terms.empty() || con.entries.empty())
        continue;
      bool diagonal_same_sign = true;
      const double sign = con.entries.front().value;
      for (const auto& e : con.entries)
        if (e.row != e.col || e.value * sign <= 0.0) {
          diagonal_same_sign = false;
          break;
        }
      if (!diagonal_same_sign) continue;
      for (const auto& e : con.entries) {
        // Keep at least one monomial per block: an all-zero 1x1 Gram is
        // cheaper than teaching the SDP solver about empty blocks.
        std::size_t alive = 0;
        for (const bool d : dead[e.block]) alive += d ? 0u : 1u;
        if (alive <= 1) continue;
        if (!dead[e.block][e.row]) {
          dead[e.block][e.row] = true;
          removed_any = true;
        }
      }
    }
    if (!removed_any) break;
    if (rounds != nullptr) ++*rounds;
    for (std::size_t b = 0; b < num_blocks_; ++b) {
      std::vector<Monomial>& basis = bases[var_of_block[b]];
      std::vector<Monomial> kept;
      kept.reserve(basis.size());
      for (std::size_t a = 0; a < basis.size(); ++a)
        if (!dead[b][a]) kept.push_back(basis[a]);
      basis = std::move(kept);
    }
  }
  return bases;
}

SosProgram::GramPruneStats SosProgram::gram_prune_stats() const {
  GramPruneStats stats;
  SosProgram copy = *this;
  copy.prune_gram_ = true;
  const auto pruned = copy.effective_bases(&stats.rounds);
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    if (vars_[k].kind != VarKind::kSos) continue;
    stats.original_dims.push_back(vars_[k].basis.size());
    stats.pruned_dims.push_back(pruned[k].size());
  }
  return stats;
}

Polynomial sos_poly_from_gram(const std::vector<Monomial>& gram_basis,
                              const Mat& gram) {
  SCS_REQUIRE(gram.rows() == gram_basis.size() &&
                  gram.cols() == gram_basis.size(),
              "sos_poly_from_gram: Gram size mismatch");
  SCS_REQUIRE(!gram_basis.empty(), "sos_poly_from_gram: empty basis");
  Polynomial p(gram_basis.front().num_vars());
  for (std::size_t a = 0; a < gram_basis.size(); ++a) {
    for (std::size_t b = 0; b < gram_basis.size(); ++b) {
      const double g = gram(a, b);
      if (g == 0.0) continue;
      p += Polynomial::term(g, gram_basis[a] * gram_basis[b]);
    }
  }
  return p;
}

SosProgram::Result SosProgram::solve(const SdpOptions& sdp_options,
                                     double identity_tol,
                                     double gram_tol) const {
  Result result;
  const std::vector<std::vector<Monomial>> bases = effective_bases();
  if (metrics_enabled()) {
    std::size_t removed = 0, kept = 0;
    for (std::size_t k = 0; k < vars_.size(); ++k) {
      if (vars_[k].kind != VarKind::kSos) continue;
      removed += vars_[k].basis.size() - bases[k].size();
      kept += bases[k].size();
    }
    static Counter& pruned =
        MetricsRegistry::instance().counter("sos.prune.removed");
    static Counter& dim =
        MetricsRegistry::instance().counter("sos.prune.gram_dim");
    pruned.add(removed);
    dim.add(kept);
  }
  const SdpProblem sdp = compile_with(bases);
  if (sdp.block_dims.empty()) {
    // No SOS variables: the identities are a plain linear system in the free
    // coefficients. Solve it by least squares; the residual check below is
    // the acceptance test.
    const std::size_t m = sdp.constraints.size();
    const std::size_t s = sdp.num_free;
    // One ridge row per free variable keeps the stacked system full column
    // rank even when the identities leave some coefficients untouched
    // (those solve to ~0, the minimum-norm choice).
    Mat bmat(m + s, s);
    Vec rhs(m + s, 0.0);
    for (std::size_t i = 0; i < m; ++i) {
      for (const auto& [idx, coeff] : sdp.constraints[i].free_terms)
        bmat(i, idx) += coeff;
      rhs[i] = sdp.constraints[i].rhs;
    }
    for (std::size_t j = 0; j < s; ++j) bmat(m + j, j) = 1e-10;
    try {
      result.sdp.free_vars = Qr(bmat).solve_least_squares(rhs);
    } catch (const PreconditionError&) {
      result.failure_reason = "free-coefficient system is rank deficient";
      return result;
    }
    result.sdp.status = SdpStatus::kConverged;
    result.sdp.x.clear();
  } else {
    result.sdp = solve_sdp(sdp, sdp_options);
  }

  if (result.sdp.status == SdpStatus::kInfeasible) {
    result.failure_reason = "SDP structurally infeasible";
    return result;
  }
  if (result.sdp.status == SdpStatus::kNumericalFailure &&
      result.sdp.iterations <= 1) {
    result.failure_reason = "SDP numerical failure";
    return result;
  }

  // Extract decision polynomials regardless of status; the residual /
  // PSD checks below are the real acceptance test.
  result.values.resize(vars_.size());
  result.min_gram_eigenvalue = 0.0;
  bool first_gram = true;
  for (std::size_t k = 0; k < vars_.size(); ++k) {
    const VarInfo& info = vars_[k];
    if (info.kind == VarKind::kFree) {
      Vec coeffs(info.basis.size());
      for (std::size_t j = 0; j < info.basis.size(); ++j)
        coeffs[j] = result.sdp.free_vars[info.offset + j];
      result.values[k] = Polynomial::from_coefficients(info.basis, coeffs);
    } else {
      const Mat& gram = result.sdp.x[info.offset];
      result.values[k] = sos_poly_from_gram(bases[k], gram);
      const double ev = min_eigenvalue(gram);
      result.min_gram_eigenvalue =
          first_gram ? ev : std::min(result.min_gram_eigenvalue, ev);
      first_gram = false;
    }
  }

  // Identity residuals, normalized by each identity's coefficient scale so
  // the tolerance is meaningful for large-coefficient dynamics.
  double max_residual = 0.0;
  for (const auto& ident : identities_) {
    Polynomial residual = ident.constant;
    double scale = std::max(1.0, ident.constant.max_abs_coefficient());
    for (const auto& term : ident.terms) {
      Polynomial v = result.values[term.var.id];
      if (term.derivative_var.has_value())
        v = v.derivative(*term.derivative_var);
      scale = std::max(scale, term.multiplier.max_abs_coefficient() *
                                  std::max(1.0, v.max_abs_coefficient()));
      residual += term.multiplier * v;
    }
    const double r = residual.max_abs_coefficient();
    result.identity_residuals.push_back(r);
    max_residual = std::max(max_residual, r / scale);
  }

  // On rejection, carry the structured solver status (stalled, time-limit,
  // ...) so callers can tell a numeric breakdown from a genuinely
  // infeasible SOS program.
  const auto sdp_suffix = [&result]() -> std::string {
    if (result.sdp.status == SdpStatus::kConverged) return "";
    std::string s = std::string(" [sdp ") + to_string(result.sdp.status);
    if (result.sdp.restarts > 0)
      s += " after " + std::to_string(result.sdp.restarts) + " restart(s)";
    return s + "]";
  };
  if (max_residual > identity_tol) {
    result.failure_reason = "identity residual " +
                            std::to_string(max_residual) + " exceeds tol" +
                            sdp_suffix();
    return result;
  }
  if (result.min_gram_eigenvalue < -gram_tol) {
    result.failure_reason = "Gram matrix not PSD (min eig " +
                            std::to_string(result.min_gram_eigenvalue) + ")" +
                            sdp_suffix();
    return result;
  }
  result.feasible = true;
  return result;
}

}  // namespace scs
