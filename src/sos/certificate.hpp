// Standalone SOS certificate utilities: decomposing a polynomial as a sum
// of squares and checking Putinar-style identities (11).
#pragma once

#include <optional>
#include <vector>

#include "math/mat.hpp"
#include "poly/polynomial.hpp"

namespace scs {

struct SosDecomposition {
  std::vector<Monomial> basis;  // z
  Mat gram;                     // G with p = z' G z, G >= 0
  double min_eigenvalue = 0.0;
  double residual = 0.0;  // max |coeff| of p - z' G z
};

/// Try to write p as z' G z with G PSD over the full monomial basis of
/// degree ceil(deg(p)/2). Returns std::nullopt when p is not (numerically)
/// a sum of squares.
std::optional<SosDecomposition> sos_decompose(const Polynomial& p,
                                              double tol = 1e-6);

/// Check the Putinar identity f == sigma0 + sum_i sigma_i * g_i to within a
/// max-coefficient tolerance. (Does not check that the sigmas are SOS.)
bool check_putinar_identity(const Polynomial& f, const Polynomial& sigma0,
                            const std::vector<Polynomial>& g,
                            const std::vector<Polynomial>& sigma,
                            double tol = 1e-6);

}  // namespace scs
