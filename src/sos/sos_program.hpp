// SOS programming: polynomial identities with free and SOS-constrained
// decision polynomials, compiled to a block SDP (Section 4, relaxation (11)).
//
// A program is a conjunction of polynomial identities of the form
//
//     constant(x) + sum_k  q_k(x) * D_k( P_k(x) )  ==  0,
//
// where each P_k is a decision polynomial (free-coefficient or SOS/Gram),
// q_k is a known polynomial multiplier, and D_k is optionally a partial
// derivative d/dx_i (derivatives are only supported on free polynomials --
// that is all the barrier program needs for the Lie term of (12)).
//
// Compilation matches coefficients monomial-by-monomial: free-polynomial
// coefficients become SDP free variables, Gram matrices become PSD blocks.
#pragma once

#include <optional>
#include <vector>

#include "opt/sdp.hpp"
#include "poly/basis.hpp"
#include "poly/polynomial.hpp"

namespace scs {

class SosProgram {
 public:
  /// Handle to a decision polynomial.
  struct PolyVar {
    std::size_t id = 0;
  };

  explicit SosProgram(std::size_t num_vars);

  /// A polynomial with free coefficients over the given monomial basis.
  PolyVar add_free_poly(const std::vector<Monomial>& basis);

  /// An SOS polynomial z(x)' G z(x) with PSD Gram matrix G over the given
  /// monomial vector z.
  PolyVar add_sos_poly(const std::vector<Monomial>& gram_basis);

  /// One term of an identity: multiplier * var, or multiplier * d(var)/dx_i
  /// when derivative_var is set (free polynomials only).
  struct Term {
    Polynomial multiplier;
    PolyVar var;
    std::optional<std::size_t> derivative_var;
  };

  /// Add the identity: constant + sum(terms) == 0.
  void add_identity(const Polynomial& constant, std::vector<Term> terms);

  /// Add the point-evaluation constraint P(point) == value for a decision
  /// polynomial (normalizations such as B(x_c) = 1 that remove the trivial
  /// shrink-to-zero solution of feasibility programs).
  void add_point_constraint(PolyVar var, const Vec& point, double value);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_identities() const { return identities_.size(); }
  std::size_t num_poly_vars() const { return vars_.size(); }

  struct Result {
    bool feasible = false;
    SdpSolution sdp;
    /// Extracted value of every decision polynomial, indexed by PolyVar id.
    std::vector<Polynomial> values;
    /// Max |coefficient| of each identity's residual after substitution.
    std::vector<double> identity_residuals;
    /// Minimum Gram eigenvalue across all SOS variables (>= -tol required).
    double min_gram_eigenvalue = 0.0;
    std::string failure_reason;

    const Polynomial& value(PolyVar v) const { return values[v.id]; }
  };

  /// Compile and solve. Feasibility requires the SDP to converge, every
  /// identity residual to be below `identity_tol`, and every Gram matrix to
  /// be PSD within `gram_tol`.
  Result solve(const SdpOptions& sdp_options = {}, double identity_tol = 1e-5,
               double gram_tol = 1e-7) const;

  /// The compiled SDP (exposed for testing and diagnostics). Applies Gram
  /// pruning (below) when enabled.
  SdpProblem compile() const;

  /// Newton-polytope style Gram-basis pruning (opt-in, default off). Before
  /// compiling, basis monomials whose Gram diagonal is forced to zero by a
  /// same-sign diagonal-only equation are removed, iterated to a fixpoint;
  /// PSD-ness makes the removal exact (any feasible Gram has the whole
  /// row/column zero), so feasibility and extracted certificates are
  /// unchanged while SDP block dimensions shrink. Off by default because
  /// the smaller problem perturbs the interior-point trajectory, which can
  /// flip hard instances between "converged" and "stalled"; enable it where
  /// throughput matters more than run-for-run reproducibility.
  void set_gram_pruning(bool enabled) { prune_gram_ = enabled; }
  bool gram_pruning() const { return prune_gram_; }

  struct GramPruneStats {
    /// Gram dimension per SOS variable, in add_sos_poly order.
    std::vector<std::size_t> original_dims;
    std::vector<std::size_t> pruned_dims;
    int rounds = 0;  // fixpoint iterations that removed something
    std::size_t removed() const {
      std::size_t n = 0;
      for (std::size_t i = 0; i < original_dims.size(); ++i)
        n += original_dims[i] - pruned_dims[i];
      return n;
    }
  };
  /// Run the pruner (regardless of the enable flag) and report the
  /// per-block dimension reduction.
  GramPruneStats gram_prune_stats() const;

 private:
  enum class VarKind { kFree, kSos };
  struct VarInfo {
    VarKind kind;
    std::vector<Monomial> basis;  // coefficient basis or Gram basis
    std::size_t offset = 0;       // free-var offset or block index
  };
  struct Identity {
    Polynomial constant;
    std::vector<Term> terms;
  };
  struct PointConstraint {
    std::size_t var_id;
    Vec point;
    double value;
  };

  /// Compile against explicit per-variable bases (pruned or original);
  /// `bases` is indexed by PolyVar id and must match vars_ in kind/shape.
  SdpProblem compile_with(
      const std::vector<std::vector<Monomial>>& bases) const;

  /// Per-variable bases after pruning (original bases when pruning is
  /// disabled); free-variable bases are always passed through untouched.
  /// `rounds`, when non-null, receives the number of fixpoint iterations
  /// that removed at least one monomial.
  std::vector<std::vector<Monomial>> effective_bases(
      int* rounds = nullptr) const;

  std::size_t num_vars_;
  std::vector<VarInfo> vars_;
  std::vector<Identity> identities_;
  std::vector<PointConstraint> point_constraints_;
  std::size_t num_free_scalars_ = 0;
  std::size_t num_blocks_ = 0;
  bool prune_gram_ = false;
};

/// Reconstruct z' G z as an explicit polynomial.
Polynomial sos_poly_from_gram(const std::vector<Monomial>& gram_basis,
                              const Mat& gram);

}  // namespace scs
