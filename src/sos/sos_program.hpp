// SOS programming: polynomial identities with free and SOS-constrained
// decision polynomials, compiled to a block SDP (Section 4, relaxation (11)).
//
// A program is a conjunction of polynomial identities of the form
//
//     constant(x) + sum_k  q_k(x) * D_k( P_k(x) )  ==  0,
//
// where each P_k is a decision polynomial (free-coefficient or SOS/Gram),
// q_k is a known polynomial multiplier, and D_k is optionally a partial
// derivative d/dx_i (derivatives are only supported on free polynomials --
// that is all the barrier program needs for the Lie term of (12)).
//
// Compilation matches coefficients monomial-by-monomial: free-polynomial
// coefficients become SDP free variables, Gram matrices become PSD blocks.
#pragma once

#include <optional>
#include <vector>

#include "opt/sdp.hpp"
#include "poly/basis.hpp"
#include "poly/polynomial.hpp"

namespace scs {

class SosProgram {
 public:
  /// Handle to a decision polynomial.
  struct PolyVar {
    std::size_t id = 0;
  };

  explicit SosProgram(std::size_t num_vars);

  /// A polynomial with free coefficients over the given monomial basis.
  PolyVar add_free_poly(const std::vector<Monomial>& basis);

  /// An SOS polynomial z(x)' G z(x) with PSD Gram matrix G over the given
  /// monomial vector z.
  PolyVar add_sos_poly(const std::vector<Monomial>& gram_basis);

  /// One term of an identity: multiplier * var, or multiplier * d(var)/dx_i
  /// when derivative_var is set (free polynomials only).
  struct Term {
    Polynomial multiplier;
    PolyVar var;
    std::optional<std::size_t> derivative_var;
  };

  /// Add the identity: constant + sum(terms) == 0.
  void add_identity(const Polynomial& constant, std::vector<Term> terms);

  /// Add the point-evaluation constraint P(point) == value for a decision
  /// polynomial (normalizations such as B(x_c) = 1 that remove the trivial
  /// shrink-to-zero solution of feasibility programs).
  void add_point_constraint(PolyVar var, const Vec& point, double value);

  std::size_t num_vars() const { return num_vars_; }
  std::size_t num_identities() const { return identities_.size(); }
  std::size_t num_poly_vars() const { return vars_.size(); }

  struct Result {
    bool feasible = false;
    SdpSolution sdp;
    /// Extracted value of every decision polynomial, indexed by PolyVar id.
    std::vector<Polynomial> values;
    /// Max |coefficient| of each identity's residual after substitution.
    std::vector<double> identity_residuals;
    /// Minimum Gram eigenvalue across all SOS variables (>= -tol required).
    double min_gram_eigenvalue = 0.0;
    std::string failure_reason;

    const Polynomial& value(PolyVar v) const { return values[v.id]; }
  };

  /// Compile and solve. Feasibility requires the SDP to converge, every
  /// identity residual to be below `identity_tol`, and every Gram matrix to
  /// be PSD within `gram_tol`.
  Result solve(const SdpOptions& sdp_options = {}, double identity_tol = 1e-5,
               double gram_tol = 1e-7) const;

  /// The compiled SDP (exposed for testing and diagnostics).
  SdpProblem compile() const;

 private:
  enum class VarKind { kFree, kSos };
  struct VarInfo {
    VarKind kind;
    std::vector<Monomial> basis;  // coefficient basis or Gram basis
    std::size_t offset = 0;       // free-var offset or block index
  };
  struct Identity {
    Polynomial constant;
    std::vector<Term> terms;
  };
  struct PointConstraint {
    std::size_t var_id;
    Vec point;
    double value;
  };

  std::size_t num_vars_;
  std::vector<VarInfo> vars_;
  std::vector<Identity> identities_;
  std::vector<PointConstraint> point_constraints_;
  std::size_t num_free_scalars_ = 0;
  std::size_t num_blocks_ = 0;
};

/// Reconstruct z' G z as an explicit polynomial.
Polynomial sos_poly_from_gram(const std::vector<Monomial>& gram_basis,
                              const Mat& gram);

}  // namespace scs
