#include "sos/certificate.hpp"

#include "math/eigen_sym.hpp"
#include "poly/basis.hpp"
#include "sos/sos_program.hpp"
#include "util/check.hpp"

namespace scs {

std::optional<SosDecomposition> sos_decompose(const Polynomial& p,
                                              double tol) {
  SCS_REQUIRE(p.num_vars() > 0, "sos_decompose: zero-variable polynomial");
  if (p.is_zero()) {
    SosDecomposition out;
    out.basis = {Monomial(p.num_vars())};
    out.gram = Mat(1, 1, 0.0);
    return out;
  }
  const int deg = p.degree();
  if (deg % 2 != 0) return std::nullopt;  // odd degree cannot be SOS

  SosProgram prog(p.num_vars());
  const auto z = monomials_up_to(p.num_vars(), deg / 2);
  const auto s = prog.add_sos_poly(z);
  // Identity: -p + z' G z == 0.
  prog.add_identity(-p, {{Polynomial::constant(p.num_vars(), 1.0), s, {}}});

  SdpOptions opts;
  opts.tol_feasibility = 1e-9;
  opts.tol_gap = 1e-9;
  const auto result = prog.solve(opts, tol, tol);
  if (!result.feasible) return std::nullopt;

  SosDecomposition out;
  out.basis = z;
  out.gram = result.sdp.x[0];
  out.min_eigenvalue = result.min_gram_eigenvalue;
  out.residual = result.identity_residuals.empty()
                     ? 0.0
                     : result.identity_residuals.front();
  return out;
}

bool check_putinar_identity(const Polynomial& f, const Polynomial& sigma0,
                            const std::vector<Polynomial>& g,
                            const std::vector<Polynomial>& sigma,
                            double tol) {
  SCS_REQUIRE(g.size() == sigma.size(),
              "check_putinar_identity: multiplier count mismatch");
  Polynomial rhs = sigma0;
  for (std::size_t i = 0; i < g.size(); ++i) rhs += sigma[i] * g[i];
  return max_coefficient_diff(f, rhs) <= tol;
}

}  // namespace scs
