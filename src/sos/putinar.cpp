#include "sos/putinar.hpp"

#include <algorithm>

#include "poly/basis.hpp"
#include "sos/sos_program.hpp"
#include "util/check.hpp"

namespace scs {

std::optional<PutinarCertificate> certify_nonnegativity(
    const Polynomial& f, const std::vector<Polynomial>& constraints,
    const PutinarOptions& options) {
  const std::size_t n = f.num_vars();
  SCS_REQUIRE(n > 0, "certify_nonnegativity: zero-variable polynomial");
  for (const auto& g : constraints)
    SCS_REQUIRE(g.num_vars() == n,
                "certify_nonnegativity: constraint variable count mismatch");

  int degree = options.certificate_degree;
  if (degree <= 0) {
    degree = std::max(2, f.degree());
    for (const auto& g : constraints)
      degree = std::max(degree, g.degree() + 2);
  }
  if (degree % 2 != 0) ++degree;

  SosProgram prog(n);
  prog.set_gram_pruning(options.prune_gram);
  const Polynomial one = Polynomial::constant(n, 1.0);
  const Polynomial target =
      f - Polynomial::constant(n, options.margin);

  // target - sigma0 - sum sigma_i g_i == 0.
  std::vector<SosProgram::Term> terms;
  const auto s0 = prog.add_sos_poly(monomials_up_to(n, degree / 2));
  terms.push_back({-one, s0, {}});
  std::vector<SosProgram::PolyVar> multiplier_vars;
  for (const auto& g : constraints) {
    const int gd = std::max(0, (degree - g.degree()) / 2);
    const auto sigma = prog.add_sos_poly(monomials_up_to(n, gd));
    multiplier_vars.push_back(sigma);
    terms.push_back({-g, sigma, {}});
  }
  prog.add_identity(target, std::move(terms));

  const auto result =
      prog.solve(options.sdp, options.identity_tol, options.gram_tol);
  if (!result.feasible) return std::nullopt;

  PutinarCertificate cert;
  cert.sigma0 = result.value(s0);
  for (const auto& v : multiplier_vars)
    cert.multipliers.push_back(result.value(v));
  cert.margin = options.margin;
  cert.identity_residual = result.identity_residuals.empty()
                               ? 0.0
                               : result.identity_residuals.front();
  return cert;
}

}  // namespace scs
