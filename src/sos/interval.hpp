// Rigorous polynomial range bounding by interval arithmetic with
// branch-and-bound subdivision.
//
// This closes the gap the sampling validator leaves: for low dimensions it
// *proves* statements like "B >= 0 on Theta" or "L_f B > 0 on the band
// |B| <= delta" over whole boxes, up to floating-point rounding -- the same
// role the SMT solver plays for the nncontroller baseline, but specialized
// to polynomials and so exponentially cheaper in practice.
#pragma once

#include <cstdint>

#include "poly/polynomial.hpp"
#include "systems/box.hpp"

namespace scs {

/// A closed interval [lo, hi].
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;
  Interval(double l, double h);

  static Interval point(double v) { return {v, v}; }

  Interval operator+(const Interval& rhs) const;
  Interval operator-(const Interval& rhs) const;
  Interval operator*(const Interval& rhs) const;
  Interval operator*(double s) const;

  /// [lo,hi]^e for a non-negative integer exponent (tight for even powers).
  Interval pow(int e) const;

  double width() const { return hi - lo; }
  bool contains(double v) const { return lo <= v && v <= hi; }
};

/// Interval enclosure of p over the box (one evaluation, no subdivision).
Interval interval_enclosure(const Polynomial& p, const Box& box);

struct BoundResult {
  /// Verified: p(x) >= threshold for all x in the box.
  bool proven = false;
  /// A witness box where the bound could not be established (meaningful
  /// when !proven and the budget was not exhausted).
  Box counterexample_region;
  /// Best certified lower bound over the whole box.
  double certified_lower_bound = 0.0;
  std::uint64_t boxes_processed = 0;
  bool budget_exhausted = false;
};

struct BoundOptions {
  std::uint64_t max_boxes = 100000;  // subdivision budget
  double slack = 0.0;                // prove p >= threshold + slack strictly
};

/// Branch-and-bound proof that p >= threshold everywhere on the box.
/// Subdivides along the widest axis until every leaf's interval enclosure
/// clears the threshold, a leaf's midpoint refutes the claim, or the budget
/// runs out.
BoundResult prove_lower_bound(const Polynomial& p, const Box& box,
                              double threshold,
                              const BoundOptions& options = {});

}  // namespace scs
