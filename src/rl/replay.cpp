#include "rl/replay.hpp"

#include "util/check.hpp"

namespace scs {

ReplayBuffer::ReplayBuffer(std::size_t capacity) : capacity_(capacity) {
  SCS_REQUIRE(capacity > 0, "ReplayBuffer: capacity must be positive");
  storage_.reserve(capacity);
}

void ReplayBuffer::add(Transition t) {
  if (storage_.size() < capacity_) {
    storage_.push_back(std::move(t));
  } else {
    storage_[next_] = std::move(t);
    next_ = (next_ + 1) % capacity_;
  }
}

std::vector<const Transition*> ReplayBuffer::sample(std::size_t batch,
                                                    Rng& rng) const {
  SCS_REQUIRE(!storage_.empty(), "ReplayBuffer::sample: buffer is empty");
  std::vector<const Transition*> out;
  out.reserve(batch);
  for (std::size_t i = 0; i < batch; ++i)
    out.push_back(&storage_[rng.index(storage_.size())]);
  return out;
}

}  // namespace scs
