// RL environment wrapping a controlled CCDS (Section 3.1).
//
// State space: the system state x; action space: normalized controls in
// [-1,1]^m scaled by the actuator bound; dynamics: RK4 integration of the
// open-loop field under zero-order hold; reward: Eq. (4) of the paper,
//
//   r_t = beta1 * dist(X_u, x_t)                       outside the belt
//   r_t = rhat - min(beta2 / dist(X_u, x_t), dr_min)   inside the belt,
//
// with the paper's constants beta1 = 1, beta2 = 5, delta = 0.1. Episodes
// additionally terminate (with a penalty) on entering X_u or leaving Psi --
// a standard practical detail the paper leaves implicit.
#pragma once

#include "systems/ccds.hpp"
#include "util/rng.hpp"

namespace scs {

class Fnv1a;

struct EnvConfig {
  double dt = 0.02;
  std::size_t max_steps = 200;
  // Reward shaping (Eq. 4).
  double beta1 = 1.0;
  double beta2 = 5.0;
  double belt_delta = 0.1;
  double penalty_cap = 5.0;  // Delta r_min
  bool use_belt_penalty = true;  // disabled by the reward-shaping ablation
  /// Quadratic action cost on the *normalized* action (standard practice in
  /// continuous control; keeps the learned policy smooth instead of
  /// bang-bang, which is what makes the PAC surrogate's error small).
  double action_penalty = 0.3;
  /// Fraction of episode restarts drawn uniformly from Psi instead of Theta
  /// (random-restart exploration). Algorithm 1 approximates the DNN over
  /// all of Psi, so the policy must be trained -- not just extrapolated --
  /// there. Set to 0 for the paper's literal Theta-only restarts.
  double restart_domain_fraction = 0.5;
  // Terminal handling. Leaving Psi (or diverging) always terminates with
  // `terminal_penalty`. Entering X_u *inside* Psi is terminal only when
  // `terminate_on_violation` is set: during training it is left off so the
  // policy also learns meaningful (penalized, Eq. (4) caps the reward at
  // -Delta r_min there) behaviour on the unsafe part of Psi -- which is what
  // makes the DNN PAC-approximable over the whole domain that the scenario
  // program (8) samples. Safety evaluation always ends at first violation.
  double terminal_penalty = 10.0;
  bool terminate_on_violation = false;
};

void hash_append(Fnv1a& h, const EnvConfig& c);

struct StepResult {
  Vec next_state;
  double reward = 0.0;
  bool done = false;      // horizon, violation, or domain exit
  bool violated = false;  // entered X_u or left Psi
};

class ControlEnv {
 public:
  ControlEnv(const Ccds& system, const EnvConfig& config);

  std::size_t state_dim() const { return system_.num_states; }
  std::size_t action_dim() const { return system_.num_controls; }

  /// Reset for training: samples Theta, or Psi with probability
  /// `restart_domain_fraction` (random-restart exploration).
  Vec reset(Rng& rng);

  /// Reset strictly from Theta (used for safety evaluation, Definition 1).
  Vec reset_from_init(Rng& rng);

  /// Apply a normalized action a in [-1,1]^m (scaled internally by the
  /// actuator bound) and advance one dt.
  StepResult step(const Vec& normalized_action);

  /// Reward at a state, per Eq. (4).
  double reward_at(const Vec& x) const;

  const Ccds& system() const { return system_; }
  const EnvConfig& config() const { return config_; }
  const Vec& state() const { return state_; }

 private:
  Ccds system_;
  EnvConfig config_;
  Vec state_;
  std::size_t steps_ = 0;
};

}  // namespace scs
