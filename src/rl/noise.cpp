#include "rl/noise.hpp"

#include <cmath>

#include "util/check.hpp"

namespace scs {

OuNoise::OuNoise(std::size_t dim, double theta, double sigma, double dt)
    : theta_(theta), sigma_(sigma), dt_(dt), state_(dim, 0.0) {
  SCS_REQUIRE(dim > 0, "OuNoise: dimension must be positive");
  SCS_REQUIRE(theta >= 0.0 && sigma >= 0.0 && dt > 0.0,
              "OuNoise: invalid parameters");
}

void OuNoise::reset() { state_.fill(0.0); }

Vec OuNoise::sample(Rng& rng) {
  const double sq = std::sqrt(dt_);
  for (std::size_t i = 0; i < state_.size(); ++i)
    state_[i] += -theta_ * state_[i] * dt_ + sigma_ * sq * rng.normal();
  return state_;
}

void OuNoise::set_sigma(double sigma) {
  SCS_REQUIRE(sigma >= 0.0, "OuNoise: sigma must be >= 0");
  sigma_ = sigma;
}

}  // namespace scs
