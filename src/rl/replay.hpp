// Experience replay buffer for DDPG (Section 3.1: transition tuples
// (x_t, u_t, r_t, x_{t+1}) collected from simulated trajectories).
#pragma once

#include <vector>

#include "math/vec.hpp"
#include "util/rng.hpp"

namespace scs {

struct Transition {
  Vec state;
  Vec action;  // normalized action in [-1, 1]^m
  double reward = 0.0;
  Vec next_state;
  bool done = false;  // episode terminated at next_state
};

/// Fixed-capacity ring buffer with uniform minibatch sampling.
class ReplayBuffer {
 public:
  explicit ReplayBuffer(std::size_t capacity);

  void add(Transition t);

  std::size_t size() const { return storage_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return storage_.empty(); }

  /// Uniform sample of `batch` transitions (with replacement).
  std::vector<const Transition*> sample(std::size_t batch, Rng& rng) const;

  const Transition& operator[](std::size_t i) const { return storage_[i]; }

 private:
  std::size_t capacity_;
  std::size_t next_ = 0;  // ring insertion point once full
  std::vector<Transition> storage_;
};

}  // namespace scs
