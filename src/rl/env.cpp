#include "rl/env.hpp"

#include <algorithm>
#include <cmath>

#include "ode/integrator.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace scs {

ControlEnv::ControlEnv(const Ccds& system, const EnvConfig& config)
    : system_(system), config_(config), state_(system.num_states, 0.0) {
  system_.validate();
  SCS_REQUIRE(config.dt > 0.0, "ControlEnv: dt must be positive");
  SCS_REQUIRE(config.max_steps > 0, "ControlEnv: max_steps must be positive");
}

Vec ControlEnv::reset(Rng& rng) {
  if (config_.restart_domain_fraction > 0.0 &&
      rng.uniform01() < config_.restart_domain_fraction) {
    // Domain restart: anywhere in Psi (including the unsafe part -- the
    // policy must be well defined wherever the PAC stage will sample).
    state_ = system_.domain.sample(rng);
    steps_ = 0;
    return state_;
  }
  return reset_from_init(rng);
}

Vec ControlEnv::reset_from_init(Rng& rng) {
  state_ = system_.init_set.sample(rng);
  steps_ = 0;
  return state_;
}

double ControlEnv::reward_at(const Vec& x) const {
  const double dist = system_.unsafe_set.distance_to(x);
  const double rhat = config_.beta1 * dist;
  if (!config_.use_belt_penalty) return rhat;
  if (dist < config_.belt_delta) {
    const double penalty =
        (dist > 0.0)
            ? std::min(config_.beta2 / dist, config_.penalty_cap)
            : config_.penalty_cap;
    return rhat - penalty;
  }
  return rhat;
}

StepResult ControlEnv::step(const Vec& normalized_action) {
  SCS_REQUIRE(normalized_action.size() == system_.num_controls,
              "ControlEnv::step: action dimension mismatch");
  Vec u(normalized_action);
  for (auto& v : u) v = std::clamp(v, -1.0, 1.0) * system_.control_bound;

  const Vec u_held = u;
  const auto field = [this, &u_held](const Vec& x) {
    return system_.eval_open(x, u_held);
  };
  StepResult out;
  out.next_state = rk4_step(field, state_, config_.dt);
  ++steps_;

  bool finite = true;
  for (double v : out.next_state)
    if (!std::isfinite(v)) finite = false;

  const bool in_unsafe = finite && system_.unsafe_set.contains(out.next_state);
  const bool in_domain = finite && system_.domain.contains(out.next_state);

  if (!finite || !in_domain) {
    // Outside the modeled domain: nothing sensible to learn there.
    out.violated = true;
    out.done = true;
    out.reward = -config_.terminal_penalty;
    if (finite) state_ = out.next_state;
    return out;
  }
  if (in_unsafe) {
    out.violated = true;
    if (config_.terminate_on_violation) {
      out.done = true;
      out.reward = -config_.terminal_penalty;
      state_ = out.next_state;
      return out;
    }
    // Non-terminal violation: Eq. (4) already caps the reward at
    // -Delta r_min here (dist = 0 lands in the belt branch).
  }

  out.reward = reward_at(out.next_state);
  if (config_.action_penalty > 0.0) {
    double a2 = 0.0;
    for (double v : normalized_action)
      a2 += std::clamp(v, -1.0, 1.0) * std::clamp(v, -1.0, 1.0);
    out.reward -= config_.action_penalty * a2 /
                  static_cast<double>(system_.num_controls);
  }
  out.done = steps_ >= config_.max_steps;
  state_ = out.next_state;
  return out;
}


void hash_append(Fnv1a& h, const EnvConfig& c) {
  hash_append(h, c.dt);
  hash_append(h, static_cast<std::uint64_t>(c.max_steps));
  hash_append(h, c.beta1);
  hash_append(h, c.beta2);
  hash_append(h, c.belt_delta);
  hash_append(h, c.penalty_cap);
  hash_append(h, c.use_belt_penalty);
  hash_append(h, c.action_penalty);
  hash_append(h, c.restart_domain_fraction);
  hash_append(h, c.terminal_penalty);
  hash_append(h, c.terminate_on_violation);
}

}  // namespace scs
