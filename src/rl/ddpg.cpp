#include "rl/ddpg.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/hash.hpp"

namespace scs {

DdpgAgent::DdpgAgent(std::size_t state_dim, std::size_t action_dim,
                     const DdpgConfig& config, Rng& rng)
    : config_(config),
      state_dim_(state_dim),
      action_dim_(action_dim),
      actor_(state_dim, config.actor_hidden, action_dim,
             config.actor_hidden_activation, Activation::kTanh, rng),
      critic_(state_dim + action_dim, config.critic_hidden, 1,
              Activation::kRelu, Activation::kIdentity, rng),
      actor_target_(actor_),
      critic_target_(critic_),
      actor_opt_(actor_.parameter_count(), {.lr = config.actor_lr}),
      critic_opt_(critic_.parameter_count(), {.lr = config.critic_lr}),
      buffer_(config.buffer_capacity),
      noise_(action_dim, config.noise_theta, config.noise_sigma) {
  SCS_REQUIRE(state_dim > 0 && action_dim > 0, "DdpgAgent: bad dimensions");
  SCS_REQUIRE(config.gamma > 0.0 && config.gamma < 1.0,
              "DdpgAgent: gamma must be in (0,1)");
  // Small final-layer initialization (Lillicrap et al.): keeps the tanh
  // actor out of saturation early, which otherwise collapses the policy to
  // a constant +-1 for hundreds of episodes.
  actor_.scale_output_layer(0.01);
  critic_.scale_output_layer(0.1);
  actor_target_ = actor_;
  critic_target_ = critic_;
}

Vec DdpgAgent::act(const Vec& state) const { return actor_.forward(state); }

void DdpgAgent::update_networks(Rng& rng) {
  if (buffer_.size() < config_.batch_size) return;
  const auto batch = buffer_.sample(config_.batch_size, rng);
  const double inv_n = 1.0 / static_cast<double>(batch.size());

  // ---- Critic update: minimize (5), the TD error against the targets.
  Vec critic_grad(critic_.parameter_count(), 0.0);
  for (const Transition* t : batch) {
    double y = t->reward;
    if (!t->done) {
      const Vec a2 = actor_target_.forward(t->next_state);
      const Vec q2 = critic_target_.forward(concat(t->next_state, a2));
      y += config_.gamma * q2[0];
    }
    Mlp::Workspace ws;
    const Vec q = critic_.forward(concat(t->state, t->action), ws);
    // d/dq of (y - q)^2 / N = -2 (y - q) / N.
    Vec dq(1, -2.0 * (y - q[0]) * inv_n);
    critic_.backward(ws, dq, critic_grad);
  }
  Vec critic_params = critic_.parameters();
  critic_opt_.step(critic_params, critic_grad);
  critic_.set_parameters(critic_params);

  // ---- Actor update: ascend Q(x, actor(x)), i.e. minimize (6).
  Vec actor_grad(actor_.parameter_count(), 0.0);
  for (const Transition* t : batch) {
    Mlp::Workspace actor_ws;
    const Vec a = actor_.forward(t->state, actor_ws);
    Mlp::Workspace critic_ws;
    critic_.forward(concat(t->state, a), critic_ws);
    // dJ/dq = -1/N  (J = -mean Q).
    Vec dq(1, -inv_n);
    Vec scratch(critic_.parameter_count(), 0.0);
    const Vec dinput = critic_.backward(critic_ws, dq, scratch);
    // Slice dJ/da from the critic's input gradient, then apply inverting
    // gradients (Hausknecht & Stone): attenuate the component that pushes an
    // action toward its bound proportionally to the remaining headroom, so
    // the tanh actor never drives itself into saturation.
    Vec da(action_dim_);
    for (std::size_t i = 0; i < action_dim_; ++i) {
      double g = dinput[state_dim_ + i];
      const double ai = a[i];
      // The parameter step moves a along -g.
      g *= (g < 0.0) ? 0.5 * (1.0 - ai) : 0.5 * (1.0 + ai);
      da[i] = g;
    }
    actor_.backward(actor_ws, da, actor_grad);
  }
  Vec actor_params = actor_.parameters();
  if (config_.actor_weight_decay > 0.0)
    actor_grad.axpy(config_.actor_weight_decay, actor_params);
  actor_opt_.step(actor_params, actor_grad);
  actor_.set_parameters(actor_params);
  if (config_.actor_weight_norm_cap > 0.0) {
    // Project each layer back into the Frobenius ball (max-norm constraint).
    for (std::size_t k = 0; k < actor_.layer_count(); ++k) {
      Mat& w = actor_.mutable_weight(k);
      const double norm = w.frobenius_norm();
      if (norm > config_.actor_weight_norm_cap)
        w *= config_.actor_weight_norm_cap / norm;
    }
  }

  // ---- Soft target tracking.
  actor_target_.soft_update_from(actor_, config_.soft_tau);
  critic_target_.soft_update_from(critic_, config_.soft_tau);
}

TrainResult DdpgAgent::train(ControlEnv& env, int episodes, Rng& rng) {
  SCS_REQUIRE(env.state_dim() == state_dim_ && env.action_dim() == action_dim_,
              "DdpgAgent::train: environment dimensions mismatch");
  TrainResult result;
  std::size_t global_step = 0;
  double sigma = config_.noise_sigma;

  for (int ep = 0; ep < episodes; ++ep) {
    Vec x = env.reset(rng);
    noise_.reset();
    noise_.set_sigma(sigma);
    EpisodeStats stats;
    for (;;) {
      Vec a;
      if (global_step < config_.warmup_steps) {
        a = Vec(rng.uniform_vector(action_dim_, -1.0, 1.0));
      } else {
        a = actor_.forward(x);
        a += noise_.sample(rng);
        for (auto& v : a) v = std::clamp(v, -1.0, 1.0);
      }
      const StepResult sr = env.step(a);
      buffer_.add({x, a, sr.reward, sr.next_state, sr.done});
      stats.total_reward += sr.reward;
      stats.violated = stats.violated || sr.violated;
      ++stats.steps;
      ++global_step;

      if (global_step >= config_.warmup_steps) {
        for (int k = 0; k < config_.updates_per_step; ++k)
          update_networks(rng);
      }

      if (sr.done) break;
      x = sr.next_state;
    }
    result.episodes.push_back(stats);
    sigma = std::max(config_.noise_sigma_min,
                     sigma * config_.noise_decay_per_episode);
    if ((ep + 1) % 50 == 0)
      log_info("ddpg: episode ", ep + 1, "/", episodes, " return ",
               stats.total_reward, (stats.violated ? " (violated)" : ""));
  }

  // Aggregate statistics over the last 10% (at least 1) of episodes.
  const std::size_t window =
      std::max<std::size_t>(1, result.episodes.size() / 10);
  double sum = 0.0;
  int safe = 0;
  for (std::size_t i = result.episodes.size() - window;
       i < result.episodes.size(); ++i) {
    sum += result.episodes[i].total_reward;
    if (!result.episodes[i].violated) ++safe;
  }
  result.mean_recent_return = sum / static_cast<double>(window);
  result.recent_safety_rate =
      static_cast<double>(safe) / static_cast<double>(window);
  return result;
}

EvalResult DdpgAgent::evaluate(ControlEnv& env, int episodes, Rng& rng) const {
  EvalResult out;
  int safe = 0;
  double sum = 0.0;
  for (int ep = 0; ep < episodes; ++ep) {
    Vec x = env.reset_from_init(rng);
    double total = 0.0;
    bool violated = false;
    for (;;) {
      const Vec a = actor_.forward(x);
      const StepResult sr = env.step(a);
      total += sr.reward;
      // Safety per Definition 1: the first X_u entry ends the rollout.
      if (sr.violated) {
        violated = true;
        break;
      }
      if (sr.done) break;
      x = sr.next_state;
    }
    sum += total;
    if (!violated) ++safe;
  }
  out.mean_return = sum / std::max(1, episodes);
  out.safety_rate = static_cast<double>(safe) / std::max(1, episodes);
  return out;
}

ControlLaw control_law_from_actor(const Mlp& actor, double control_bound) {
  const Mlp actor_copy = actor;
  return [actor_copy, control_bound](const Vec& x) {
    Vec a = actor_copy.forward(x);
    return a * control_bound;
  };
}

ControlLaw DdpgAgent::control_law(double control_bound) const {
  return control_law_from_actor(actor_, control_bound);
}


void hash_append(Fnv1a& h, const DdpgConfig& c) {
  hash_append(h, c.actor_hidden);
  hash_append(h, c.critic_hidden);
  hash_append(h, static_cast<int>(c.actor_hidden_activation));
  hash_append(h, c.actor_lr);
  hash_append(h, c.critic_lr);
  hash_append(h, c.actor_weight_decay);
  hash_append(h, c.actor_weight_norm_cap);
  hash_append(h, c.gamma);
  hash_append(h, c.soft_tau);
  hash_append(h, static_cast<std::uint64_t>(c.batch_size));
  hash_append(h, static_cast<std::uint64_t>(c.buffer_capacity));
  hash_append(h, static_cast<std::uint64_t>(c.warmup_steps));
  hash_append(h, c.updates_per_step);
  hash_append(h, c.noise_sigma);
  hash_append(h, c.noise_theta);
  hash_append(h, c.noise_decay_per_episode);
  hash_append(h, c.noise_sigma_min);
}

}  // namespace scs
