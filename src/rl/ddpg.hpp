// Deep Deterministic Policy Gradient (Lillicrap et al. [14]), as used in
// Section 3.1 to train the auxiliary DNN controller u_RL.
//
// Actor: x -> tanh output in [-1,1]^m (scaled by the actuator bound at the
// environment boundary), ReLU hidden layers -- the "n-30(5)-1" structures of
// Table 2. Critic: (x, a) -> Q value, updated by the TD loss (5); actor
// updated by the deterministic policy gradient (6); target networks follow
// with soft updates.
#pragma once

#include <vector>

#include "nn/adam.hpp"
#include "nn/mlp.hpp"
#include "rl/env.hpp"
#include "rl/noise.hpp"
#include "rl/replay.hpp"
#include "util/rng.hpp"

namespace scs {

class Fnv1a;

struct DdpgConfig {
  std::vector<std::size_t> actor_hidden = {30, 30, 30, 30, 30};
  std::vector<std::size_t> critic_hidden = {64, 64};
  /// Hidden activation of the actor. The paper's Table 2 uses ReLU; tanh
  /// hidden layers give a C-infinity policy surface, which markedly lowers
  /// Algorithm 1's minimax error for the same control performance.
  Activation actor_hidden_activation = Activation::kTanh;
  double actor_lr = 2e-4;
  double critic_lr = 1e-3;
  /// L2 weight decay on the actor: biases the policy toward smooth, small-
  /// weight functions -- the kind a low-degree polynomial can PAC-model.
  double actor_weight_decay = 1e-4;
  /// Max-norm constraint on each actor layer's Frobenius norm (0 = off).
  /// Bounds the policy's global Lipschitz constant by the product of layer
  /// norms, which is what keeps Algorithm 1's minimax error small: a single
  /// sharp ReLU crease anywhere in Psi would dominate e.
  double actor_weight_norm_cap = 0.9;
  double gamma = 0.99;       // reward decay factor
  double soft_tau = 0.005;   // target-network tracking rate
  std::size_t batch_size = 64;
  std::size_t buffer_capacity = 100000;
  std::size_t warmup_steps = 1000;  // uniform random actions before learning
  int updates_per_step = 1;
  // Exploration.
  double noise_sigma = 0.25;
  double noise_theta = 0.15;
  double noise_decay_per_episode = 0.995;
  double noise_sigma_min = 0.02;
};

void hash_append(Fnv1a& h, const DdpgConfig& c);

/// The physical control law induced by a stand-alone actor network --
/// exactly what DdpgAgent::control_law returns, but buildable from an actor
/// deserialized out of the artifact store (warm pipeline runs skip training
/// and reconstruct the law from the cached weights).
ControlLaw control_law_from_actor(const Mlp& actor, double control_bound);

struct EpisodeStats {
  double total_reward = 0.0;
  std::size_t steps = 0;
  bool violated = false;
};

struct TrainResult {
  std::vector<EpisodeStats> episodes;
  double mean_recent_return = 0.0;  // mean over the last 10% of episodes
  double recent_safety_rate = 0.0;  // fraction of recent episodes w/o violation
};

struct EvalResult {
  double mean_return = 0.0;
  double safety_rate = 0.0;  // fraction of rollouts avoiding X_u and Psi exit
};

class DdpgAgent {
 public:
  DdpgAgent(std::size_t state_dim, std::size_t action_dim,
            const DdpgConfig& config, Rng& rng);

  /// Greedy normalized action in [-1,1]^m.
  Vec act(const Vec& state) const;

  /// Train for `episodes` episodes on the environment.
  TrainResult train(ControlEnv& env, int episodes, Rng& rng);

  /// Noise-free evaluation rollouts.
  EvalResult evaluate(ControlEnv& env, int episodes, Rng& rng) const;

  /// The trained deterministic policy as a control law producing *physical*
  /// actions (scaled by `control_bound`).
  ControlLaw control_law(double control_bound) const;

  const Mlp& actor() const { return actor_; }
  const Mlp& critic() const { return critic_; }
  const DdpgConfig& config() const { return config_; }

 private:
  void update_networks(Rng& rng);

  DdpgConfig config_;
  std::size_t state_dim_;
  std::size_t action_dim_;
  Mlp actor_, critic_, actor_target_, critic_target_;
  Adam actor_opt_, critic_opt_;
  ReplayBuffer buffer_;
  OuNoise noise_;
};

}  // namespace scs
