// Ornstein-Uhlenbeck exploration noise, the standard choice for DDPG [14].
#pragma once

#include "math/vec.hpp"
#include "util/rng.hpp"

namespace scs {

class OuNoise {
 public:
  OuNoise(std::size_t dim, double theta = 0.15, double sigma = 0.2,
          double dt = 1.0);

  /// Reset the process state to zero (start of an episode).
  void reset();

  /// Advance the process and return the current noise vector.
  Vec sample(Rng& rng);

  /// Scale the volatility (for exploration decay schedules).
  void set_sigma(double sigma);
  double sigma() const { return sigma_; }

 private:
  double theta_;
  double sigma_;
  double dt_;
  Vec state_;
};

}  // namespace scs
