#include "core/pipeline.hpp"

#include <algorithm>
#include <optional>

#include "core/pipeline_detail.hpp"
#include "core/report.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"

namespace scs {

namespace {

/// Arm tracing / metrics for one run per PipelineConfig::obs, and flush the
/// requested files when the run finishes (destructor). Env-armed
/// observability (SCS_TRACE / SCS_METRICS) flushes at process exit instead
/// and is not touched here.
class ObsRunScope {
 public:
  explicit ObsRunScope(const ObsConfig& obs) : obs_(obs) {
    if (!obs_.trace_path.empty()) trace_start(obs_.trace_path);
    if (!obs_.metrics_path.empty()) set_metrics_enabled(true);
  }
  ~ObsRunScope() {
    if (!obs_.trace_path.empty()) trace_write(obs_.trace_path);
    if (!obs_.metrics_path.empty()) metrics_write(obs_.metrics_path);
  }
  ObsRunScope(const ObsRunScope&) = delete;
  ObsRunScope& operator=(const ObsRunScope&) = delete;

 private:
  ObsConfig obs_;
};

/// Registry snapshot for SynthesisResult (empty when metrics are off).
std::string metrics_snapshot_or_empty() {
  if (!metrics_enabled()) return {};
  return MetricsRegistry::instance().json();
}

/// Append the run's ledger record when a ledger is armed (config or
/// SCS_LEDGER). Observation only, after every numeric field is final; an
/// I/O failure is logged and never fails the run.
void append_ledger(const SynthesisResult& result, std::uint64_t config_key,
                   std::uint64_t seed, const std::string& source,
                   const ObsConfig& obs) {
  const std::string path = resolve_ledger_path(obs.ledger_path);
  if (path.empty()) return;
  if (!ledger_append(path, ledger_record(result, config_key, seed, source)))
    log_info("pipeline[", result.benchmark, "]: ledger append to '", path,
             "' failed");
}

/// Apply fast-mode shrinkage for unit tests.
void apply_fast_mode(PipelineConfig& cfg, int& episodes, PacSettings& pac) {
  episodes = std::min(episodes, 20);
  cfg.ddpg.warmup_steps = std::min<std::size_t>(cfg.ddpg.warmup_steps, 200);
  cfg.env.max_steps = std::min<std::size_t>(cfg.env.max_steps, 80);
  if (cfg.pac_fit.max_samples == 0) cfg.pac_fit.max_samples = 2000;
  cfg.eval_episodes = std::min(cfg.eval_episodes, 5);
  cfg.validation.samples_per_set =
      std::min<std::size_t>(cfg.validation.samples_per_set, 500);
  cfg.validation.simulation_rollouts =
      std::min(cfg.validation.simulation_rollouts, 5);
  cfg.validation.simulation_steps =
      std::min<std::size_t>(cfg.validation.simulation_steps, 500);
  pac.max_degree = std::min(pac.max_degree, 3);
}

/// Benchmark-driven config normalization shared by the run path and the
/// config-key computation (the two must agree, or the ledger identity of a
/// run would drift from the key its artifacts are cached under). Returns
/// the episode budget.
int normalize_config(const Benchmark& benchmark, PipelineConfig& cfg,
                     PacSettings& pac_settings) {
  int episodes =
      (cfg.rl_episodes >= 0) ? cfg.rl_episodes : benchmark.rl.episodes;
  cfg.env.dt = benchmark.rl.dt;
  cfg.env.max_steps = benchmark.rl.steps_per_episode;
  cfg.ddpg.actor_hidden = benchmark.hidden_layers;
  if (cfg.fast_mode) apply_fast_mode(cfg, episodes, pac_settings);
  return episodes;
}

/// Stage-boundary stop gate: when the job control has a stop pending, mark
/// `result` as preempted at `stage` and return true. The CANCELLED /
/// DEADLINE verdict itself is stamped once, at the end of the run.
bool preempted(const JobControl* control, const char* stage,
               SynthesisResult& result) {
  if (!stop_requested(control)) return false;
  result.success = false;
  result.failure_stage = stage;
  result.failure_message = std::string("job preempted at the ") + stage +
                           " stage (cancelled or deadline expired)";
  return true;
}

/// Final verdict: VERIFIED on success; the stop reason (CANCELLED /
/// DEADLINE) when the job was asked to stop; UNVERIFIED otherwise. A
/// stopped run is inconclusive by definition, so the stop reason wins over
/// whatever partial failure the preemption left behind.
void stamp_verdict(SynthesisResult& result, const JobControl* control) {
  if (result.success) {
    result.verdict = "VERIFIED";
    return;
  }
  if (control != nullptr) {
    const JobControl::StopReason reason = control->stop_reason();
    if (reason != JobControl::StopReason::kNone) {
      result.verdict = to_string(reason);
      return;
    }
  }
  result.verdict = "UNVERIFIED";
}

SynthesisResult run_stages_2_to_4_impl(const Benchmark& benchmark,
                                       const ControlLaw& law,
                                       PipelineConfig config,
                                       SynthesisResult result,
                                       StageCache* cache,
                                       std::uint64_t upstream_key,
                                       const JobControl* control) {
  Rng rng(config.seed + 1000);
  const Ccds& sys = benchmark.ccds;
  PacSettings pac_settings = benchmark.pac;
  if (config.fast_mode) {
    int dummy_episodes = 0;
    apply_fast_mode(config, dummy_episodes, pac_settings);
  }
  // Thread job-level preemption into the solver layers. Never hashed:
  // the stage keys computed below are identical with or without a control.
  config.pac_fit.control = control;
  const bool cached = cache != nullptr && cache->enabled();
  if (preempted(control, "pac", result)) return result;

  // ---- Stage 2: PAC polynomial approximation (Algorithm 1).
  // The approximation target is the *normalized* DNN output in [-1, 1]^m --
  // exactly what the paper's tanh-output actors emit -- so the tabulated
  // errors e are comparable to Table 1/2 regardless of actuator scale. The
  // physical controller is bound * p(x).
  TraceSpan pac_span("stage.pac");
  Stopwatch pac_sw;
  const double bound = sys.control_bound;
  std::uint64_t pac_key = 0;
  bool pac_warm = false;
  if (cached) {
    pac_key = pac_stage_key(upstream_key, config.seed, pac_settings,
                            config.pac_fit, bound, sys.num_controls);
    if (auto hit = cache->load_pac(pac_key, result.cache.pac)) {
      result.pac = std::move(hit->pac);
      result.controller = std::move(hit->controller);
      result.pac_degraded = hit->degraded;
      pac_warm = true;
      log_info("pipeline[", benchmark.name, "]: PAC stage from cache");
    }
  }
  if (!pac_warm) {
    const auto vec_fn = [&law, bound](const Vec& x) {
      Vec u = law(x);
      u /= bound;
      return u;
    };
    PacVectorResult pac_vec = pac_approximate_vector(
        vec_fn, sys.num_controls, sys.domain, pac_settings, rng,
        config.pac_fit);
    result.pac = pac_vec.per_channel.front();
    for (const auto& m : pac_vec.models) {
      result.controller.push_back(m.poly * bound);
      result.pac_degraded = result.pac_degraded || !m.pac_valid;
    }
    if (!pac_vec.success) {
      // Algorithm 1 failed to reach tau; proceed with the best model anyway
      // (verification decides), but record the stage as degraded.
      log_info(
          "pipeline: PAC stage did not reach tau; continuing with best fit");
    }
    // A preempted PAC result is partial; caching it would poison warm runs.
    if (cached && !stop_requested(control))
      cache->store_pac(pac_key, benchmark.name,
                       {result.pac, result.controller, result.pac_degraded},
                       result.cache.pac);
  }
  result.pac_seconds = pac_sw.seconds();
  pac_span.close();
  if (preempted(control, "pac", result)) return result;
  if (result.pac_degraded) {
    log_info("pipeline[", benchmark.name,
             "]: PAC guarantee withdrawn (least-squares fallback in use); "
             "any verdict rests on verification + validation alone");
  }

  // ---- Stage 3: barrier-certificate generation. The primary candidate is
  // the PAC-selected surrogate; if the SOS stage rejects it, alternate
  // degrees from the Algorithm-1 sweep are tried (lower-degree surrogates
  // both shrink the SOS program and often smooth the closed loop -- the
  // "broader possibilities for BC selection" of Section 5).
  TraceSpan barrier_span("stage.barrier");
  Stopwatch barrier_sw;
  BarrierConfig barrier_cfg = config.barrier;
  if (barrier_cfg.degree_schedule.empty())
    barrier_cfg.degree_schedule = benchmark.barrier_degrees;
  barrier_cfg.seed = config.seed + 2000;
  barrier_cfg.sdp.control = control;  // preempts mid-interior-point
  std::uint64_t barrier_key = 0;
  bool barrier_warm = false;
  if (cached) {
    barrier_key = barrier_stage_key(pac_key, barrier_cfg);
    if (auto hit = cache->load_barrier(barrier_key, result.cache.barrier)) {
      // The barrier stage may have swapped in a lower-degree surrogate, so
      // the cached entry carries the accepted controller and PAC model too.
      result.barrier = std::move(hit->barrier);
      result.controller = std::move(hit->controller);
      result.pac.model = std::move(hit->pac_model);
      barrier_warm = true;
      log_info("pipeline[", benchmark.name, "]: barrier stage from cache");
    }
  }
  if (!barrier_warm) {
    result.barrier = synthesize_barrier(sys, result.controller, barrier_cfg);
    if (!result.barrier.success && sys.num_controls == 1) {
      for (auto it = result.pac.per_degree.rbegin();
           it != result.pac.per_degree.rend() && !result.barrier.success;
           ++it) {
        if (it->degree == result.pac.model.degree) continue;  // already tried
        const std::vector<Polynomial> candidate = {it->poly * bound};
        BarrierResult retry =
            synthesize_barrier(sys, candidate, barrier_cfg);
        if (retry.success) {
          log_info("pipeline: degree-", it->degree,
                   " surrogate verified after the primary failed");
          result.controller = candidate;
          result.pac.model = *it;
          result.barrier = std::move(retry);
        }
      }
    }
    if (!result.barrier.success &&
        barrier_cfg.lambda_strategy != LambdaStrategy::kAlternating) {
      // Last rung of the barrier-stage ladder: the paper's alternating (BMI)
      // schedule searches over lambda as well, which regularly rescues
      // instances where every fixed-lambda SOS program stalls or is rejected.
      log_info("pipeline[", benchmark.name,
               "]: fixed-lambda SOS failed; retrying with the alternating "
               "schedule before reporting UNVERIFIED");
      BarrierConfig alt_cfg = barrier_cfg;
      alt_cfg.lambda_strategy = LambdaStrategy::kAlternating;
      BarrierResult alt = synthesize_barrier(sys, result.controller, alt_cfg);
      alt.attempts += result.barrier.attempts;
      if (alt.success) {
        log_info("pipeline[", benchmark.name,
                 "]: alternating schedule recovered a certificate");
        result.barrier = std::move(alt);
      }
    }
    // A preempted barrier failure is not a real infeasibility; do not cache
    // it (a re-run without the stop could still find a certificate).
    if (cached && !stop_requested(control))
      cache->store_barrier(
          barrier_key, benchmark.name,
          {result.barrier, result.controller, result.pac.model},
          result.cache.barrier);
  }
  result.barrier_seconds = barrier_sw.seconds();
  barrier_span.close();
  if (preempted(control, "barrier", result)) return result;
  if (!result.barrier.success) {
    result.failure_stage = "barrier";
    result.failure_message =
        "barrier synthesis failed (incl. alternating-schedule retry): " +
        result.barrier.failure_reason;
    return result;
  }

  // ---- Stage 4: independent validation.
  TraceSpan validation_span("stage.validation");
  Stopwatch validation_sw;
  std::uint64_t validation_key = 0;
  bool validation_warm = false;
  if (cached) {
    validation_key =
        validation_stage_key(barrier_key, config.seed, config.validation);
    if (auto hit =
            cache->load_validation(validation_key, result.cache.validation)) {
      result.validation = std::move(hit->report);
      validation_warm = true;
      log_info("pipeline[", benchmark.name, "]: validation stage from cache");
    }
  }
  if (!validation_warm) {
    Rng vrng(config.seed + 3000);
    result.validation = validate_barrier(sys, result.controller,
                                         result.barrier.barrier,
                                         config.validation, vrng);
    if (cached && !stop_requested(control))
      cache->store_validation(validation_key, benchmark.name,
                              {result.validation}, result.cache.validation);
  }
  result.validation_seconds = validation_sw.seconds();
  validation_span.close();
  if (preempted(control, "validation", result)) return result;
  if (!result.validation.passed) {
    result.failure_stage = "validation";
    result.failure_message = "independent numeric validation rejected the "
                             "certificate";
    return result;
  }
  result.success = true;
  return result;
}

/// Never-crash wrapper: any exception escaping a stage (precondition
/// violations included) is converted into a structured UNVERIFIED result.
/// A synthesis pipeline that aborts on one bad instance is useless for
/// batch benchmarking and for the fault-injection suite.
SynthesisResult run_stages_2_to_4(const Benchmark& benchmark,
                                  const ControlLaw& law,
                                  PipelineConfig config,
                                  SynthesisResult result,
                                  StageCache* cache = nullptr,
                                  std::uint64_t upstream_key = 0,
                                  const JobControl* control = nullptr) {
  try {
    // Pass a copy so a throwing stage leaves the caller-visible fields
    // (benchmark name, RL telemetry) intact for the failure report.
    result = run_stages_2_to_4_impl(benchmark, law, std::move(config), result,
                                    cache, upstream_key, control);
  } catch (const std::exception& e) {
    log_info("pipeline[", benchmark.name, "]: stage threw (", e.what(),
             "); reporting UNVERIFIED");
    result.success = false;
    if (result.failure_stage.empty()) result.failure_stage = "exception";
    result.failure_message = e.what();
  }
  stamp_verdict(result, control);
  return result;
}

}  // namespace

namespace detail {

std::uint64_t job_config_key(const Benchmark& benchmark,
                             const PipelineConfig& config, bool from_law) {
  if (from_law) {
    // No RL stage; the identity key folds the benchmark content + seed.
    Fnv1a identity;
    hash_append(identity, benchmark);
    hash_append(identity, config.seed);
    return identity.digest();
  }
  PipelineConfig cfg = config;
  PacSettings pac_settings = benchmark.pac;
  const int episodes = normalize_config(benchmark, cfg, pac_settings);
  return rl_stage_key(benchmark, cfg.seed, cfg.ddpg, cfg.env, episodes,
                      cfg.eval_episodes);
}

SynthesisResult run_synthesis_job(const Benchmark& benchmark,
                                  const ControlLaw* external_law,
                                  const PipelineConfig& config,
                                  const JobContext& ctx) {
  ObsRunScope obs_scope(config.obs);
  LogTagScope tag_scope(benchmark.name);
  // Serve requests correlate the whole run's span tree (this thread and its
  // pool fan-out) under the request id; guarded so the non-traced path
  // stays at one relaxed load.
  std::optional<TraceIdScope> id_scope;
  if (!ctx.request_id.empty() && trace_enabled())
    id_scope.emplace(ctx.request_id);
  TraceSpan run_span("synthesize:" + benchmark.name);
  Stopwatch total_sw;
  SynthesisResult result;
  result.benchmark = benchmark.name;
  result.threads_used = static_cast<int>(parallel_threads());

  // ---- Stages 2-4 only: an external control law stands in for the DNN.
  if (external_law != nullptr) {
    result.dnn_structure = "(external law)";
    const std::uint64_t identity =
        job_config_key(benchmark, config, /*from_law=*/true);
    result = run_stages_2_to_4(benchmark, *external_law, config,
                               std::move(result), ctx.cache, identity,
                               ctx.control);
    result.total_seconds = total_sw.seconds();
    result.metrics_json = metrics_snapshot_or_empty();
    append_ledger(result, identity, config.seed, ctx.source, config.obs);
    return result;
  }

  const Ccds& sys = benchmark.ccds;
  PipelineConfig cfg = config;
  PacSettings pac_settings = benchmark.pac;
  const int episodes = normalize_config(benchmark, cfg, pac_settings);

  // ---- Stage 1: DDPG training of the auxiliary DNN controller, unless the
  // artifact store already holds the trained actor for this exact
  // (benchmark content, config slice, seed, format version) key. The cache
  // handle is either shared (server: one handle across all jobs) or owned
  // by this run.
  std::optional<StageCache> own_cache;
  StageCache* cache = ctx.cache;
  if (cache == nullptr) {
    own_cache.emplace(cfg.store);
    cache = &*own_cache;
  }
  result.cache.enabled = cache->enabled();
  // Computed whether or not the cache is on: the RL stage key doubles as
  // the run's configuration identity (config_key) in the ledger.
  const std::uint64_t rl_key = rl_stage_key(
      benchmark, cfg.seed, cfg.ddpg, cfg.env, episodes, cfg.eval_episodes);

  TraceSpan rl_span("stage.rl");
  Stopwatch rl_sw;
  Rng rng(cfg.seed);
  try {
    if (preempted(ctx.control, "rl", result)) {
      stamp_verdict(result, ctx.control);
    } else {
      ControlLaw law;
      bool rl_warm = false;
      if (cache->enabled()) {
        if (auto hit = cache->load_rl(rl_key, result.cache.rl)) {
          result.dnn_structure = hit->dnn_structure;
          result.rl_eval = hit->eval;
          law = control_law_from_actor(hit->actor, sys.control_bound);
          rl_warm = true;
          result.rl_seconds = rl_sw.seconds();
          log_info("pipeline[", benchmark.name,
                   "]: RL stage from cache (actor ", result.dnn_structure,
                   ", ", result.rl_seconds, "s)");
        }
      }
      if (!rl_warm) {
        ControlEnv env(sys, cfg.env);
        DdpgAgent agent(sys.num_states, sys.num_controls, cfg.ddpg, rng);
        result.dnn_structure = agent.actor().structure_string();
        agent.train(env, episodes, rng);
        result.rl_eval = agent.evaluate(env, cfg.eval_episodes, rng);
        result.rl_seconds = rl_sw.seconds();
        log_info("pipeline[", benchmark.name, "]: RL done in ",
                 result.rl_seconds, "s, eval safety rate ",
                 result.rl_eval.safety_rate);
        law = agent.control_law(sys.control_bound);
        // A cancel that lands mid-training takes effect here: the partially
        // trained actor is never persisted.
        if (cache->enabled() && !stop_requested(ctx.control))
          cache->store_rl(
              rl_key, benchmark.name,
              {agent.actor(), result.dnn_structure, result.rl_eval},
              result.cache.rl);
      }
      rl_span.close();

      result = run_stages_2_to_4(benchmark, law, cfg, std::move(result),
                                 cache->enabled() ? cache : nullptr, rl_key,
                                 ctx.control);
    }
  } catch (const std::exception& e) {
    log_info("pipeline[", benchmark.name, "]: RL stage threw (", e.what(),
             "); reporting UNVERIFIED");
    result.success = false;
    result.failure_stage = "rl";
    result.failure_message = e.what();
    stamp_verdict(result, ctx.control);
  }
  result.total_seconds = total_sw.seconds();
  result.metrics_json = metrics_snapshot_or_empty();
  append_ledger(result, rl_key, cfg.seed, ctx.source, cfg.obs);
  return result;
}

}  // namespace detail

SynthesisResult synthesize(const Benchmark& benchmark,
                           const PipelineConfig& config) {
  return detail::run_synthesis_job(benchmark, nullptr, config, JobContext{});
}

SynthesisResult synthesize_from_law(const Benchmark& benchmark,
                                    const ControlLaw& law,
                                    const PipelineConfig& config) {
  JobContext ctx;
  ctx.source = "synthesize_from_law";
  return detail::run_synthesis_job(benchmark, &law, config, ctx);
}

std::vector<SynthesisResult> synthesize_many(
    const std::vector<Benchmark>& benchmarks, const PipelineConfig& config) {
  std::vector<SynthesisResult> results(benchmarks.size());
  // One task per system; each synthesize() seeds its own Rng chain from
  // config.seed, so the fan-out is embarrassingly parallel and the output
  // matches a sequential loop bitwise at any thread count.
  parallel_for(benchmarks.size(), 1, [&](std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i)
      results[i] = synthesize(benchmarks[i], config);
  });
  return results;
}

}  // namespace scs
