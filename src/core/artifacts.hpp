// Persistence for synthesis artifacts: the verified polynomial controller
// p(x), the barrier certificate B(x), and the PAC metadata, in a plain text
// format that round-trips through the polynomial parser.
//
// Format:
//   scs-artifacts 1
//   benchmark <name>
//   states <n>
//   controller <m>
//   <one polynomial per line>
//   barrier-degree <d_B>
//   barrier <one polynomial line>
//   lambda <one polynomial line>
//   pac <degree> <error> <eps> <eta> <samples>
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "core/pipeline.hpp"

namespace scs {

/// Structured parse failure from load_artifacts: carries the 1-based line
/// number and the offending line so callers (and test assertions) can point
/// at the exact spot in a hand-edited or truncated artifact file.
class ArtifactParseError : public std::runtime_error {
 public:
  ArtifactParseError(int line, std::string content, const std::string& reason);

  int line() const { return line_; }
  const std::string& content() const { return content_; }

 private:
  int line_;
  std::string content_;
};

/// The persistent subset of a SynthesisResult.
struct SynthesisArtifacts {
  std::string benchmark;
  std::size_t num_states = 0;
  std::vector<Polynomial> controller;
  Polynomial barrier;
  Polynomial lambda;
  int barrier_degree = 0;
  PacModel pac;
};

SynthesisArtifacts artifacts_from(const SynthesisResult& result,
                                  std::size_t num_states);

void save_artifacts(const SynthesisArtifacts& artifacts, std::ostream& os);
SynthesisArtifacts load_artifacts(std::istream& is);

void save_artifacts_file(const SynthesisArtifacts& artifacts,
                         const std::string& path);
SynthesisArtifacts load_artifacts_file(const std::string& path);

}  // namespace scs
