#include "core/job.hpp"

#include <utility>

#include "core/pipeline_detail.hpp"

namespace scs {

SynthesisJob::SynthesisJob(Benchmark benchmark, PipelineConfig config)
    : benchmark_(std::move(benchmark)), config_(std::move(config)) {}

SynthesisJob::SynthesisJob(Benchmark benchmark, ControlLaw law,
                           PipelineConfig config)
    : benchmark_(std::move(benchmark)),
      config_(std::move(config)),
      law_(std::move(law)),
      from_law_(true) {}

std::uint64_t SynthesisJob::config_key() const {
  return detail::job_config_key(benchmark_, config_, from_law_);
}

SynthesisResult SynthesisJob::run(const JobContext& ctx) const {
  return detail::run_synthesis_job(benchmark_, from_law_ ? &law_ : nullptr,
                                   config_, ctx);
}

}  // namespace scs
