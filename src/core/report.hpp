// Plain-text table formatting matching the layout of the paper's Table 1
// (Algorithm 1 trace) and Table 2 (benchmark evaluation + baseline).
#pragma once

#include <string>

#include "baseline/nncontroller.hpp"
#include "core/pipeline.hpp"
#include "obs/ledger.hpp"

namespace scs {

/// Table 1: one row per degree attempted by Algorithm 1 (the converged
/// attempt at that degree), columns (d, eta, eps, K, e, delta_e, tau).
std::string format_table1(const PacResult& pac, double tau);

/// Table 2 header (fixed-width columns).
std::string table2_header();

/// One Table 2 row: benchmark data, the Poly.controller pipeline outcome,
/// and the nncontroller baseline outcome (nullptr = not run).
std::string table2_row(const Benchmark& benchmark,
                       const SynthesisResult& result,
                       const NnControllerResult* baseline);

/// Per-stage wall-clock attribution for one pipeline run as a single JSON
/// object: benchmark name, verdict, failure_stage/failure_message (empty on
/// success), rl/pac/barrier/validation/total seconds, and the thread count
/// the run executed with -- the width recorded at synthesize() entry, not
/// the pool width at report time. When the artifact store was enabled for
/// the run, a "cache" sub-object (see cache_stats_json) is appended so warm
/// timings are attributable to cache hits. All strings are JSON-escaped
/// (solver failure messages may embed quotes/newlines).
std::string stage_timings_json(const SynthesisResult& result);

/// Artifact-store telemetry for one run as a JSON object: enabled flag plus
/// per-stage {hits, misses, stores, corrupt, load_seconds, store_seconds}.
std::string cache_stats_json(const CacheStats& stats);

/// Convert a finished pipeline run into its run-ledger record: identity
/// from the RL stage-cache key (rendered hex, see src/store/stage_cache)
/// plus the seed; payload from the result's verdict, PAC model, stage
/// timings, and metrics snapshot. ledger_append fills run_id /
/// timestamp_ms / git_head. Lives here (not in scs_obs) so the ledger
/// stays a plain data layer with no dependency on pipeline types.
LedgerRecord ledger_record(const SynthesisResult& result,
                           std::uint64_t config_key, std::uint64_t seed,
                           const std::string& source);

}  // namespace scs
