// Internal seam between the public synthesize() wrappers, the SynthesisJob
// unit, and the staged implementation in pipeline.cpp. Not part of the
// public surface; only core/*.cpp should include this.
#pragma once

#include <cstdint>

#include "core/job.hpp"

namespace scs {
namespace detail {

/// Run one job. `law` == nullptr runs the full pipeline (RL stage
/// included); otherwise stages 2-4 run against *law.
SynthesisResult run_synthesis_job(const Benchmark& benchmark,
                                  const ControlLaw* law,
                                  const PipelineConfig& config,
                                  const JobContext& ctx);

/// The run-identity key run_synthesis_job records in the ledger for this
/// (benchmark, config) pair: the RL stage key for full runs, the
/// benchmark+seed digest for from-law runs.
std::uint64_t job_config_key(const Benchmark& benchmark,
                             const PipelineConfig& config, bool from_law);

}  // namespace detail
}  // namespace scs
