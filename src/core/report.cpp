#include "core/report.hpp"

#include <iomanip>
#include <sstream>

#include "util/thread_pool.hpp"

namespace scs {

namespace {
std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}
}  // namespace

std::string format_table1(const PacResult& pac, double tau) {
  std::ostringstream os;
  os << std::left << std::setw(4) << "d" << std::setw(10) << "eta"
     << std::setw(10) << "eps" << std::setw(10) << "K" << std::setw(12) << "e"
     << std::setw(12) << "delta_e" << std::setw(8) << "tau" << '\n';
  // One row per degree: the last attempt at that degree (converged or final).
  int last_degree = 0;
  const PacTraceRow* row_for_degree = nullptr;
  const auto flush = [&]() {
    if (row_for_degree == nullptr) return;
    const PacTraceRow& r = *row_for_degree;
    os << std::left << std::setw(4) << r.degree << std::setw(10) << r.eta
       << std::setw(10) << r.eps << std::setw(10) << r.samples_used
       << std::setw(12) << fmt_double(r.error, 6) << std::setw(12)
       << fmt_double(r.delta_e, 2) << std::setw(8) << tau << '\n';
  };
  for (const auto& r : pac.trace) {
    if (r.degree != last_degree) {
      flush();
      last_degree = r.degree;
    }
    row_for_degree = &r;
  }
  flush();
  return os.str();
}

std::string table2_header() {
  std::ostringstream os;
  os << std::left << std::setw(7) << "Bench" << std::setw(5) << "n_x"
     << std::setw(5) << "d_f" << std::setw(17) << "DNN" << std::setw(10)
     << "eps" << std::setw(8) << "eta" << std::setw(9) << "K" << std::setw(11)
     << "e" << std::setw(5) << "d_p" << std::setw(5) << "d_B" << std::setw(10)
     << "T_p(s)" << std::setw(11) << "BC Struc." << std::setw(10) << "T_n(s)";
  return os.str();
}

std::string table2_row(const Benchmark& benchmark,
                       const SynthesisResult& result,
                       const NnControllerResult* baseline) {
  std::ostringstream os;
  os << std::left << std::setw(7) << benchmark.name << std::setw(5)
     << benchmark.ccds.num_states << std::setw(5)
     << benchmark.ccds.field_degree() << std::setw(17) << result.dnn_structure;
  if (result.success || !result.controller.empty()) {
    const PacModel& m = result.pac.model;
    os << std::setw(10) << fmt_double(m.eps, 3) << std::setw(8) << m.eta
       << std::setw(9) << m.samples << std::setw(11) << fmt_double(m.error, 4)
       << std::setw(5) << m.degree;
    if (result.barrier.success) {
      os << std::setw(5) << result.barrier.degree << std::setw(10)
         << fmt_double(result.barrier.seconds, 4);
    } else {
      os << std::setw(5) << "x" << std::setw(10) << "x";
    }
  } else {
    os << std::setw(10) << "x" << std::setw(8) << "x" << std::setw(9) << "x"
       << std::setw(11) << "x" << std::setw(5) << "x" << std::setw(5) << "x"
       << std::setw(10) << "x";
  }
  if (baseline == nullptr) {
    os << std::setw(11) << "-" << std::setw(10) << "-";
  } else if (baseline->verified) {
    os << std::setw(11) << baseline->barrier_structure << std::setw(10)
       << fmt_double(baseline->verify_seconds, 4);
  } else {
    os << std::setw(11) << "x" << std::setw(10) << "x";
  }
  return os.str();
}

std::string stage_timings_json(const SynthesisResult& result) {
  std::ostringstream os;
  os << "{\"benchmark\":\"" << result.benchmark << "\""
     << ",\"verdict\":\"" << result.verdict << "\""
     << ",\"rl_seconds\":" << fmt_double(result.rl_seconds, 6)
     << ",\"pac_seconds\":" << fmt_double(result.pac_seconds, 6)
     << ",\"barrier_seconds\":" << fmt_double(result.barrier_seconds, 6)
     << ",\"validation_seconds\":" << fmt_double(result.validation_seconds, 6)
     << ",\"total_seconds\":" << fmt_double(result.total_seconds, 6)
     << ",\"threads\":" << parallel_threads();
  if (result.cache.enabled)
    os << ",\"cache\":" << cache_stats_json(result.cache);
  os << "}";
  return os.str();
}

namespace {
void append_stage_counters(std::ostringstream& os, const char* stage,
                           const StageCounters& c) {
  os << "\"" << stage << "\":{\"hits\":" << c.hits
     << ",\"misses\":" << c.misses << ",\"stores\":" << c.stores
     << ",\"corrupt\":" << c.corrupt
     << ",\"load_seconds\":" << fmt_double(c.load_seconds, 6)
     << ",\"store_seconds\":" << fmt_double(c.store_seconds, 6) << "}";
}
}  // namespace

std::string cache_stats_json(const CacheStats& stats) {
  std::ostringstream os;
  os << "{\"enabled\":" << (stats.enabled ? "true" : "false") << ",";
  append_stage_counters(os, "rl", stats.rl);
  os << ",";
  append_stage_counters(os, "pac", stats.pac);
  os << ",";
  append_stage_counters(os, "barrier", stats.barrier);
  os << ",";
  append_stage_counters(os, "validation", stats.validation);
  os << "}";
  return os.str();
}

}  // namespace scs
