#include "core/report.hpp"

#include <cstdint>
#include <iomanip>
#include <sstream>

#include "obs/json_writer.hpp"
#include "util/hash.hpp"
#include "util/thread_pool.hpp"

namespace scs {

namespace {
std::string fmt_double(double v, int precision) {
  std::ostringstream os;
  os << std::setprecision(precision) << v;
  return os.str();
}
}  // namespace

std::string format_table1(const PacResult& pac, double tau) {
  std::ostringstream os;
  os << std::left << std::setw(4) << "d" << std::setw(10) << "eta"
     << std::setw(10) << "eps" << std::setw(10) << "K" << std::setw(12) << "e"
     << std::setw(12) << "delta_e" << std::setw(8) << "tau" << '\n';
  // One row per degree: the last attempt at that degree (converged or final).
  int last_degree = 0;
  const PacTraceRow* row_for_degree = nullptr;
  const auto flush = [&]() {
    if (row_for_degree == nullptr) return;
    const PacTraceRow& r = *row_for_degree;
    os << std::left << std::setw(4) << r.degree << std::setw(10) << r.eta
       << std::setw(10) << r.eps << std::setw(10) << r.samples_used
       << std::setw(12) << fmt_double(r.error, 6) << std::setw(12)
       << fmt_double(r.delta_e, 2) << std::setw(8) << tau << '\n';
  };
  for (const auto& r : pac.trace) {
    if (r.degree != last_degree) {
      flush();
      last_degree = r.degree;
    }
    row_for_degree = &r;
  }
  flush();
  return os.str();
}

std::string table2_header() {
  std::ostringstream os;
  os << std::left << std::setw(7) << "Bench" << std::setw(5) << "n_x"
     << std::setw(5) << "d_f" << std::setw(17) << "DNN" << std::setw(10)
     << "eps" << std::setw(8) << "eta" << std::setw(9) << "K" << std::setw(11)
     << "e" << std::setw(5) << "d_p" << std::setw(5) << "d_B" << std::setw(10)
     << "T_p(s)" << std::setw(11) << "BC Struc." << std::setw(10) << "T_n(s)";
  return os.str();
}

std::string table2_row(const Benchmark& benchmark,
                       const SynthesisResult& result,
                       const NnControllerResult* baseline) {
  std::ostringstream os;
  os << std::left << std::setw(7) << benchmark.name << std::setw(5)
     << benchmark.ccds.num_states << std::setw(5)
     << benchmark.ccds.field_degree() << std::setw(17) << result.dnn_structure;
  if (result.success || !result.controller.empty()) {
    const PacModel& m = result.pac.model;
    os << std::setw(10) << fmt_double(m.eps, 3) << std::setw(8) << m.eta
       << std::setw(9) << m.samples << std::setw(11) << fmt_double(m.error, 4)
       << std::setw(5) << m.degree;
    if (result.barrier.success) {
      os << std::setw(5) << result.barrier.degree << std::setw(10)
         << fmt_double(result.barrier.seconds, 4);
    } else {
      os << std::setw(5) << "x" << std::setw(10) << "x";
    }
  } else {
    os << std::setw(10) << "x" << std::setw(8) << "x" << std::setw(9) << "x"
       << std::setw(11) << "x" << std::setw(5) << "x" << std::setw(5) << "x"
       << std::setw(10) << "x";
  }
  if (baseline == nullptr) {
    os << std::setw(11) << "-" << std::setw(10) << "-";
  } else if (baseline->verified) {
    os << std::setw(11) << baseline->barrier_structure << std::setw(10)
       << fmt_double(baseline->verify_seconds, 4);
  } else {
    os << std::setw(11) << "x" << std::setw(10) << "x";
  }
  return os.str();
}

std::string stage_timings_json(const SynthesisResult& result) {
  JsonWriter w;
  w.begin_object();
  w.key("benchmark").value(result.benchmark);
  w.key("verdict").value(result.verdict);
  // Failure attribution rides along so a BENCH_*.json from an UNVERIFIED
  // run is self-explaining (both empty on success).
  w.key("failure_stage").value(result.failure_stage);
  w.key("failure_message").value(result.failure_message);
  w.key("rl_seconds").value(result.rl_seconds, 6);
  w.key("pac_seconds").value(result.pac_seconds, 6);
  w.key("barrier_seconds").value(result.barrier_seconds, 6);
  w.key("validation_seconds").value(result.validation_seconds, 6);
  w.key("total_seconds").value(result.total_seconds, 6);
  // Width the run recorded at synthesize() entry; a default-constructed
  // result (threads_used == 0) falls back to the current pool width.
  const int threads = result.threads_used > 0
                          ? result.threads_used
                          : static_cast<int>(parallel_threads());
  w.key("threads").value(threads);
  if (result.cache.enabled) w.key("cache").raw(cache_stats_json(result.cache));
  w.end_object();
  return w.str();
}

namespace {
void append_stage_counters(JsonWriter& w, const char* stage,
                           const StageCounters& c) {
  w.key(stage).begin_object();
  w.key("hits").value(static_cast<std::int64_t>(c.hits));
  w.key("misses").value(static_cast<std::int64_t>(c.misses));
  w.key("stores").value(static_cast<std::int64_t>(c.stores));
  w.key("corrupt").value(static_cast<std::int64_t>(c.corrupt));
  w.key("load_seconds").value(c.load_seconds, 6);
  w.key("store_seconds").value(c.store_seconds, 6);
  w.end_object();
}
}  // namespace

std::string cache_stats_json(const CacheStats& stats) {
  JsonWriter w;
  w.begin_object();
  w.key("enabled").value(stats.enabled);
  append_stage_counters(w, "rl", stats.rl);
  append_stage_counters(w, "pac", stats.pac);
  append_stage_counters(w, "barrier", stats.barrier);
  append_stage_counters(w, "validation", stats.validation);
  w.end_object();
  return w.str();
}

LedgerRecord ledger_record(const SynthesisResult& result,
                           std::uint64_t config_key, std::uint64_t seed,
                           const std::string& source) {
  LedgerRecord r;
  r.kind = "synthesis";
  r.source = source;
  r.config_key = hash_to_hex(config_key);
  r.seed = seed;
  r.threads = result.threads_used > 0 ? result.threads_used
                                      : static_cast<int>(parallel_threads());
  r.benchmark = result.benchmark;
  r.verdict = result.verdict;
  r.failure_stage = result.failure_stage;
  const PacModel& m = result.pac.model;
  r.pac_valid = m.pac_valid;
  r.pac_eps = m.eps;
  r.pac_error = m.error;
  r.pac_degree = m.degree;
  r.pac_samples = m.samples;
  // 0 = no certificate; the verdict field already says why.
  r.barrier_degree = result.barrier.success ? result.barrier.degree : 0;
  r.barrier_raced = result.barrier.raced;
  r.race_winner_arm = result.barrier.winner_arm;
  r.race_arms_launched = result.barrier.arms_launched;
  r.race_arms_cancelled = result.barrier.arms_cancelled;
  r.rl_seconds = result.rl_seconds;
  r.pac_seconds = result.pac_seconds;
  r.barrier_seconds = result.barrier_seconds;
  r.validation_seconds = result.validation_seconds;
  r.total_seconds = result.total_seconds;
  r.json_dropped = json_nonfinite_dropped();
  r.metrics_json = result.metrics_json;
  return r;
}

}  // namespace scs
