#include "core/artifacts.hpp"

#include <fstream>
#include <sstream>

#include "poly/parse.hpp"
#include "util/check.hpp"

namespace scs {

SynthesisArtifacts artifacts_from(const SynthesisResult& result,
                                  std::size_t num_states) {
  SCS_REQUIRE(!result.controller.empty(),
              "artifacts_from: result has no controller");
  SynthesisArtifacts out;
  out.benchmark = result.benchmark;
  out.num_states = num_states;
  out.controller = result.controller;
  out.barrier = result.barrier.barrier;
  out.lambda = result.barrier.lambda;
  out.barrier_degree = result.barrier.degree;
  out.pac = result.pac.model;
  return out;
}

void save_artifacts(const SynthesisArtifacts& a, std::ostream& os) {
  SCS_REQUIRE(a.num_states > 0, "save_artifacts: missing state count");
  os << "scs-artifacts 1\n";
  os << "benchmark " << (a.benchmark.empty() ? "unnamed" : a.benchmark)
     << "\n";
  os << "states " << a.num_states << "\n";
  os << "controller " << a.controller.size() << "\n";
  for (const auto& p : a.controller) os << p.to_string(17) << "\n";
  os << "barrier-degree " << a.barrier_degree << "\n";
  os << "barrier " << a.barrier.to_string(17) << "\n";
  os << "lambda " << a.lambda.to_string(17) << "\n";
  os << "pac " << a.pac.degree << ' ' << a.pac.error << ' ' << a.pac.eps
     << ' ' << a.pac.eta << ' ' << a.pac.samples << "\n";
}

ArtifactParseError::ArtifactParseError(int line, std::string content,
                                       const std::string& reason)
    : std::runtime_error("load_artifacts: line " + std::to_string(line) +
                         ": " + reason +
                         (content.empty() ? std::string()
                                          : " (got: \"" + content + "\")")),
      line_(line),
      content_(std::move(content)) {}

namespace {

/// Line-oriented reader that tracks the 1-based line number so every parse
/// failure can name the exact line of a hand-edited or truncated file.
class ArtifactLines {
 public:
  explicit ArtifactLines(std::istream& is) : is_(is) {}

  /// Next line, or an ArtifactParseError naming what was expected there.
  std::string next(const std::string& expected) {
    std::string line;
    if (!std::getline(is_, line))
      throw ArtifactParseError(line_number_ + 1, "",
                               "file ends where " + expected + " expected");
    ++line_number_;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    return line;
  }

  int line_number() const { return line_number_; }

 private:
  std::istream& is_;
  int line_number_ = 0;
};

/// Parse "<keyword> <fields...>", requiring the exact keyword, every field
/// to convert, and no trailing junk on the line.
template <typename... Fields>
void parse_fields(ArtifactLines& lines, const std::string& keyword,
                  Fields&... fields) {
  const std::string line = lines.next("'" + keyword + " ...'");
  std::istringstream is(line);
  std::string token;
  if (!(is >> token) || token != keyword)
    throw ArtifactParseError(lines.line_number(), line,
                             "expected keyword '" + keyword + "'");
  if (!(is >> ... >> fields))
    throw ArtifactParseError(
        lines.line_number(), line,
        "malformed value(s) after '" + keyword + "' (expected " +
            std::to_string(sizeof...(Fields)) + " field(s))");
  std::string extra;
  if (is >> extra)
    throw ArtifactParseError(lines.line_number(), line,
                             "trailing junk after '" + keyword + "' fields");
}

Polynomial parse_polynomial_line(ArtifactLines& lines, const std::string& what,
                                 const std::string& line,
                                 std::size_t num_states) {
  try {
    return parse_polynomial(line, num_states);
  } catch (const std::exception& e) {
    throw ArtifactParseError(lines.line_number(), line,
                             "unparsable " + what + " polynomial: " +
                                 e.what());
  }
}

}  // namespace

SynthesisArtifacts load_artifacts(std::istream& is) {
  ArtifactLines lines(is);
  int version = 0;
  parse_fields(lines, "scs-artifacts", version);
  if (version != 1)
    throw ArtifactParseError(lines.line_number(), std::to_string(version),
                             "unsupported format version (expected 1)");
  SynthesisArtifacts a;
  parse_fields(lines, "benchmark", a.benchmark);
  parse_fields(lines, "states", a.num_states);
  if (a.num_states == 0)
    throw ArtifactParseError(lines.line_number(), "",
                             "state count must be positive");
  std::size_t m = 0;
  parse_fields(lines, "controller", m);
  if (m == 0 || m > 1000)
    throw ArtifactParseError(lines.line_number(), std::to_string(m),
                             "implausible controller channel count");
  for (std::size_t k = 0; k < m; ++k) {
    const std::string line =
        lines.next("controller polynomial " + std::to_string(k + 1) + " of " +
                   std::to_string(m));
    a.controller.push_back(
        parse_polynomial_line(lines, "controller", line, a.num_states));
  }
  parse_fields(lines, "barrier-degree", a.barrier_degree);
  {
    std::string line = lines.next("'barrier <polynomial>'");
    if (line.rfind("barrier ", 0) != 0)
      throw ArtifactParseError(lines.line_number(), line,
                               "expected keyword 'barrier'");
    a.barrier = parse_polynomial_line(lines, "barrier", line.substr(8),
                                      a.num_states);
  }
  {
    std::string line = lines.next("'lambda <polynomial>'");
    if (line.rfind("lambda ", 0) != 0)
      throw ArtifactParseError(lines.line_number(), line,
                               "expected keyword 'lambda'");
    a.lambda =
        parse_polynomial_line(lines, "lambda", line.substr(7), a.num_states);
  }
  parse_fields(lines, "pac", a.pac.degree, a.pac.error, a.pac.eps, a.pac.eta,
               a.pac.samples);
  return a;
}

void save_artifacts_file(const SynthesisArtifacts& artifacts,
                         const std::string& path) {
  std::ofstream os(path);
  SCS_REQUIRE(os.good(), "save_artifacts_file: cannot open " + path);
  save_artifacts(artifacts, os);
  SCS_REQUIRE(os.good(), "save_artifacts_file: write failed for " + path);
}

SynthesisArtifacts load_artifacts_file(const std::string& path) {
  std::ifstream is(path);
  SCS_REQUIRE(is.good(), "load_artifacts_file: cannot open " + path);
  return load_artifacts(is);
}

}  // namespace scs
