#include "core/artifacts.hpp"

#include <fstream>
#include <sstream>

#include "poly/parse.hpp"
#include "util/check.hpp"

namespace scs {

SynthesisArtifacts artifacts_from(const SynthesisResult& result,
                                  std::size_t num_states) {
  SCS_REQUIRE(!result.controller.empty(),
              "artifacts_from: result has no controller");
  SynthesisArtifacts out;
  out.benchmark = result.benchmark;
  out.num_states = num_states;
  out.controller = result.controller;
  out.barrier = result.barrier.barrier;
  out.lambda = result.barrier.lambda;
  out.barrier_degree = result.barrier.degree;
  out.pac = result.pac.model;
  return out;
}

void save_artifacts(const SynthesisArtifacts& a, std::ostream& os) {
  SCS_REQUIRE(a.num_states > 0, "save_artifacts: missing state count");
  os << "scs-artifacts 1\n";
  os << "benchmark " << (a.benchmark.empty() ? "unnamed" : a.benchmark)
     << "\n";
  os << "states " << a.num_states << "\n";
  os << "controller " << a.controller.size() << "\n";
  for (const auto& p : a.controller) os << p.to_string(17) << "\n";
  os << "barrier-degree " << a.barrier_degree << "\n";
  os << "barrier " << a.barrier.to_string(17) << "\n";
  os << "lambda " << a.lambda.to_string(17) << "\n";
  os << "pac " << a.pac.degree << ' ' << a.pac.error << ' ' << a.pac.eps
     << ' ' << a.pac.eta << ' ' << a.pac.samples << "\n";
}

SynthesisArtifacts load_artifacts(std::istream& is) {
  std::string magic;
  int version = 0;
  is >> magic >> version;
  SCS_REQUIRE(magic == "scs-artifacts" && version == 1,
              "load_artifacts: bad header");
  SynthesisArtifacts a;
  std::string token;
  is >> token >> a.benchmark;
  SCS_REQUIRE(token == "benchmark", "load_artifacts: expected 'benchmark'");
  is >> token >> a.num_states;
  SCS_REQUIRE(token == "states" && a.num_states > 0,
              "load_artifacts: bad state count");
  std::size_t m = 0;
  is >> token >> m;
  SCS_REQUIRE(token == "controller" && m > 0,
              "load_artifacts: bad controller count");
  std::string line;
  std::getline(is, line);  // consume end of header line
  for (std::size_t k = 0; k < m; ++k) {
    std::getline(is, line);
    SCS_REQUIRE(static_cast<bool>(is), "load_artifacts: truncated controller");
    a.controller.push_back(parse_polynomial(line, a.num_states));
  }
  is >> token >> a.barrier_degree;
  SCS_REQUIRE(token == "barrier-degree", "load_artifacts: expected degree");
  is >> token;
  SCS_REQUIRE(token == "barrier", "load_artifacts: expected 'barrier'");
  std::getline(is, line);
  a.barrier = parse_polynomial(line, a.num_states);
  is >> token;
  SCS_REQUIRE(token == "lambda", "load_artifacts: expected 'lambda'");
  std::getline(is, line);
  a.lambda = parse_polynomial(line, a.num_states);
  is >> token >> a.pac.degree >> a.pac.error >> a.pac.eps >> a.pac.eta >>
      a.pac.samples;
  SCS_REQUIRE(token == "pac" && static_cast<bool>(is),
              "load_artifacts: truncated PAC metadata");
  return a;
}

void save_artifacts_file(const SynthesisArtifacts& artifacts,
                         const std::string& path) {
  std::ofstream os(path);
  SCS_REQUIRE(os.good(), "save_artifacts_file: cannot open " + path);
  save_artifacts(artifacts, os);
  SCS_REQUIRE(os.good(), "save_artifacts_file: write failed for " + path);
}

SynthesisArtifacts load_artifacts_file(const std::string& path) {
  std::ifstream is(path);
  SCS_REQUIRE(is.good(), "load_artifacts_file: cannot open " + path);
  return load_artifacts(is);
}

}  // namespace scs
