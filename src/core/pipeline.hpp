// The paper's end-to-end contribution: synthesize a *verified* polynomial
// controller for a CCDS by
//   (1) training a DNN controller with DDPG           (Section 3.1),
//   (2) PAC-approximating it with a low-degree polynomial via scenario
//       optimization / Algorithm 1                    (Section 3.2),
//   (3) generating a barrier certificate for the closed loop via SOS
//       relaxation                                     (Section 4),
//   (4) independently validating the certificate numerically.
//
// This is the library's primary public entry point.
#pragma once

#include <cstdint>
#include <string>

#include "barrier/synthesis.hpp"
#include "barrier/validation.hpp"
#include "pac/pac_fit.hpp"
#include "rl/ddpg.hpp"
#include "store/stage_cache.hpp"
#include "systems/benchmarks.hpp"

namespace scs {

/// Per-run observability knobs (the env vars SCS_TRACE / SCS_METRICS arm
/// the same machinery process-wide; these fields scope it to one run and
/// write the files when synthesize() returns).
struct ObsConfig {
  /// Non-empty: collect Chrome trace-event spans and export them here.
  std::string trace_path;
  /// Non-empty: enable the metrics registry and dump it as JSON here.
  std::string metrics_path;
  /// Non-empty: append one run-ledger record (obs/ledger.hpp) here when
  /// the run finishes. Env SCS_LEDGER is the fallback when empty.
  std::string ledger_path;
};

struct PipelineConfig {
  std::uint64_t seed = 1;

  // Stage 1: RL. Episode budgets default to the benchmark's RlBudget;
  // override with >= 0. Network sizes come from the benchmark definition.
  DdpgConfig ddpg;
  EnvConfig env;
  int rl_episodes = -1;
  int eval_episodes = 25;

  // Stage 2: PAC approximation (settings come from the benchmark).
  PacFitOptions pac_fit;

  // Stage 3: barrier certificate.
  BarrierConfig barrier;

  // Stage 4: validation.
  ValidationConfig validation;

  /// Shrink every budget for unit tests (small K, few episodes).
  bool fast_mode = false;

  /// Stage checkpointing through the content-addressed artifact store
  /// (src/store). Default kAuto: enabled iff SCS_CACHE_DIR is set and
  /// SCS_CACHE != "off". A warm re-run of an already-cached benchmark skips
  /// RL (and any other cached stage) and reproduces the cold run's
  /// controller/barrier/verdict bit-for-bit.
  StoreConfig store;

  /// Tracing / metrics for this run (see src/obs). Observation only: never
  /// perturbs results, caches, or bitwise determinism.
  ObsConfig obs;
};

struct SynthesisResult {
  std::string benchmark;
  bool success = false;
  std::string failure_stage;  // "rl" | "pac" | "barrier" | "validation"
  /// Final verdict: "VERIFIED" only when every stage succeeded (including
  /// independent validation); otherwise "UNVERIFIED". The pipeline never
  /// aborts the process on a solver failure -- numeric trouble in any stage
  /// degrades to an UNVERIFIED verdict with the reason in failure_message.
  std::string verdict = "UNVERIFIED";
  std::string failure_message;
  /// True when any control channel came from the least-squares fallback
  /// (PAC guarantee withdrawn; see PacModel::pac_valid).
  bool pac_degraded = false;

  // Stage 1.
  std::string dnn_structure;
  EvalResult rl_eval;
  double rl_seconds = 0.0;

  // Stage 2.
  PacResult pac;
  double pac_seconds = 0.0;
  std::vector<Polynomial> controller;  // the synthesized p(x) per channel

  // Stage 3.
  BarrierResult barrier;
  double barrier_seconds = 0.0;  // T_p

  // Stage 4.
  ValidationReport validation;
  double validation_seconds = 0.0;

  /// Wall-clock for the whole pipeline run on this benchmark.
  double total_seconds = 0.0;

  /// Parallel execution width recorded at synthesize() entry -- the width
  /// the run actually used, immune to later set_parallel_threads() calls
  /// (reports sampled the *current* pool width before, which lied after a
  /// pool reconfig). 0 only on default-constructed results.
  int threads_used = 0;

  /// Per-stage artifact-store telemetry (hits/misses/corrupt/load times);
  /// cache.enabled is false when the store is off for this run.
  CacheStats cache;

  /// Snapshot of the process-wide metrics registry (JSON) taken when this
  /// run finished; empty when metrics collection is disabled. Cumulative
  /// across the process, not per-run.
  std::string metrics_json;
};

/// Run the full pipeline on one benchmark.
SynthesisResult synthesize(const Benchmark& benchmark,
                           const PipelineConfig& config = {});

/// Stages 2+3 only, with a caller-provided control law standing in for the
/// trained DNN (used by tests and ablations to decouple stages).
SynthesisResult synthesize_from_law(const Benchmark& benchmark,
                                    const ControlLaw& law,
                                    const PipelineConfig& config = {});

/// Run the full pipeline on several benchmarks concurrently (one task per
/// system on the global thread pool, inner stages parallel too). Every
/// system derives all of its randomness from config.seed alone, so results
/// are positionally aligned with `benchmarks` and bitwise-identical to
/// sequential `synthesize` calls at any thread count.
std::vector<SynthesisResult> synthesize_many(
    const std::vector<Benchmark>& benchmarks,
    const PipelineConfig& config = {});

}  // namespace scs
