// Re-entrant synthesis job unit: one (benchmark, config) work item plus the
// runtime context (cancellation, shared cache, ledger identity) it runs
// under. synthesize_cli, fuzz_cli, and synthesize_server all drive this same
// unit, so CLI and server runs of the same job are bitwise identical.
//
// A JobContext is observation/control plumbing only: nothing in it enters
// cache keys, artifacts, or results (absent a stop), so two runs differing
// only in their context produce identical outputs.
#pragma once

#include <cstdint>
#include <string>

#include "core/pipeline.hpp"
#include "util/cancellation.hpp"

namespace scs {

/// Per-run context a job owner (daemon, CLI signal handler, portfolio
/// racer) hands to the job it runs. All pointers are borrowed and may be
/// null. A run's RNG streams and obs sinks are derived deterministically
/// from the PipelineConfig (seed / obs fields); they belong to the problem
/// statement, not here -- precisely so context never changes results.
struct JobContext {
  /// Cooperative cancellation + wall-clock deadline. Polled at stage
  /// boundaries and inside the SDP / simplex iteration loops. A stopped job
  /// reports verdict "CANCELLED" or "DEADLINE" and stores no artifact for
  /// the preempted (or any later) stage.
  const JobControl* control = nullptr;
  /// Shared stage cache. Null => the job opens its own from config.store.
  /// The server shares one handle across all jobs so per-job setup stays
  /// off the warm-hit path.
  StageCache* cache = nullptr;
  /// Ledger "source" tag recorded with this run.
  std::string source = "synthesize";
  /// Serve request id ("" outside the server). Installed as the trace
  /// correlation id for the run's full span tree -- every span/instant the
  /// run (and its pool fan-out) records carries it as the "rid" arg, so one
  /// request's end-to-end timeline can be cut from a daemon trace. Pure
  /// observation: never hashed, cached, or echoed into results.
  std::string request_id;
};

/// One re-entrant unit of synthesis work. Immutable after construction;
/// run() may be called any number of times and from any thread -- each call
/// is a fresh pipeline pass, deterministic in (benchmark, config).
class SynthesisJob {
 public:
  /// Full pipeline (stages 1-4: RL, PAC, barrier, validation).
  explicit SynthesisJob(Benchmark benchmark, PipelineConfig config = {});
  /// Stages 2-4 with an external control law standing in for the trained
  /// DNN (tests and ablations).
  SynthesisJob(Benchmark benchmark, ControlLaw law, PipelineConfig config = {});

  const Benchmark& benchmark() const { return benchmark_; }
  const PipelineConfig& config() const { return config_; }
  bool from_law() const { return from_law_; }

  /// The run's configuration identity: the value the ledger records as
  /// config_key, and the upstream key of the stage-cache chain. Two jobs
  /// with equal keys produce bitwise-identical results, which is what the
  /// serving layer's dedupe map relies on.
  std::uint64_t config_key() const;

  SynthesisResult run(const JobContext& ctx = {}) const;

 private:
  Benchmark benchmark_;
  PipelineConfig config_;
  ControlLaw law_;
  bool from_law_ = false;
};

}  // namespace scs
