// Filesystem spool protocol: the serving daemon's wire format.
//
// Clients talk to the server through a spool directory instead of a
// socket -- requests are JSONL files dropped into inbox/, results appear
// as results/<id>.json, and control actions are marker files under ctl/.
// Writes on both sides are atomic (tmp + rename), so a half-written
// request is never parsed and a half-written result is never read.
//
//   <spool>/inbox/<name>.json    one JobRequest per file (client writes)
//   <spool>/results/<id>.json    one result per finished job (server writes)
//   <spool>/ctl/drain            graceful-shutdown marker (client touches)
//   <spool>/ctl/cancel/<id>      cancel marker for one request (client)
//   <spool>/status.json          schema-versioned live snapshot, every poll
//   <spool>/metrics.txt          Prometheus text exposition, every poll
//
// Backpressure composes with the queue bound: when submit() reports a
// full queue, the runner leaves the request file in the inbox and retries
// it on the next poll -- the inbox is the overflow buffer, the queue
// capacity bounds memory, and no request is ever dropped.
//
// status.json (schema 2) is the daemon's live exposition: queue depth and
// capacity, shard count, in-flight count, the full hit/cold/rejected/
// cancelled/overflow counter set, and wait/solve/warm-hit latency
// histograms with p50/p90/p99 (null until observed -- never a fake 0).
// serve_cli's `status` command renders it human-readably; metrics.txt is
// the same registry for scrapers.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "serve/server.hpp"

namespace scs {

struct SpoolLayout {
  std::string root;

  std::string inbox() const { return root + "/inbox"; }
  std::string results() const { return root + "/results"; }
  std::string ctl() const { return root + "/ctl"; }
  std::string status_file() const { return root + "/status.json"; }
  std::string metrics_file() const { return root + "/metrics.txt"; }
  std::string drain_file() const { return ctl() + "/drain"; }
  std::string cancel_dir() const { return ctl() + "/cancel"; }
};

/// Version of the status.json document ("schema" field). Bumped when a
/// field changes meaning; consumers (serve_cli status, tests) reject
/// documents from other versions instead of misreading them.
inline constexpr int kStatusSchemaVersion = 2;

/// Create the spool directory tree. Returns false (with `error`) when the
/// directories cannot be created.
bool spool_init(const SpoolLayout& layout, std::string* error = nullptr);

/// Write `content` to `path` atomically (same-directory tmp + rename).
bool atomic_write_file(const std::string& path, const std::string& content);

/// One finished job rendered for results/<id>.json: identity, verdict,
/// timings, and -- on success -- the certified barrier certificate at
/// round-trip precision.
std::string job_result_json(const std::string& id, std::uint64_t key,
                            const SynthesisResult& result, bool warm_hit,
                            double queue_seconds, double run_seconds);

/// Polls an inbox and feeds a SynthesisServer. Single-threaded by design:
/// one runner owns the spool, the server provides the concurrency.
class SpoolRunner {
 public:
  SpoolRunner(SynthesisServer& server, SpoolLayout layout);

  /// One poll round: apply cancel markers, ingest inbox files, sweep
  /// finished jobs into results/, refresh status.json + metrics.txt.
  /// Returns the number of requests ingested this round.
  int poll_once();

  /// True once ctl/drain exists (checked per poll by the daemon loop).
  bool drain_requested() const;

  /// Jobs ingested but not yet swept to results/.
  std::size_t pending() const { return pending_.size(); }

  /// Instance label stamped into status.json and the daemon summary
  /// (default: the spool root's filename).
  void set_instance(std::string instance) { instance_ = std::move(instance); }
  const std::string& instance() const { return instance_; }

  std::uint64_t ingested_total() const { return ingested_total_; }
  std::uint64_t results_written() const { return results_written_; }

  /// Refresh status.json (also called by poll_once).
  void write_status() const;

  /// Refresh metrics.txt from the registry (also called by poll_once;
  /// no-op when metrics collection is off).
  void write_metrics() const;

  /// Apply ctl/cancel/<id> markers: request cooperative cancellation of
  /// the named in-flight jobs, consuming the markers. Returns how many
  /// cancellations were requested (also called by poll_once).
  int apply_cancel_markers();

  /// Append the daemon lifetime summary ("bench" kind, source
  /// "serve_daemon") to the server's ledger: final counters,
  /// ingested/results_written (whose difference is the fleet gate's
  /// lost-request signal), and latency quantiles. Called by the daemon at
  /// drain; false when no ledger is configured.
  bool append_daemon_summary() const;

 private:
  struct Pending {
    std::string id;
    std::uint64_t key = 0;
    bool warm_hit = false;
  };

  /// Sweep pending jobs whose results are ready into results/.
  void sweep_results();
  void write_error_result(const std::string& id, const std::string& error);

  SynthesisServer& server_;
  SpoolLayout layout_;
  std::string instance_;
  std::unordered_map<std::string, Pending> pending_;  // by result id
  std::uint64_t ingested_total_ = 0;
  std::uint64_t results_written_ = 0;
};

}  // namespace scs
