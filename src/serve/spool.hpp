// Filesystem spool protocol: the serving daemon's wire format.
//
// Clients talk to the server through a spool directory instead of a
// socket -- requests are JSONL files dropped into inbox/, results appear
// as results/<id>.json, and control actions are marker files under ctl/.
// Writes on both sides are atomic (tmp + rename), so a half-written
// request is never parsed and a half-written result is never read.
//
//   <spool>/inbox/<name>.json    one JobRequest per file (client writes)
//   <spool>/results/<id>.json    one result per finished job (server writes)
//   <spool>/ctl/drain            graceful-shutdown marker (client touches)
//   <spool>/status.json          server heartbeat, refreshed every poll
//
// Backpressure composes with the queue bound: when submit() reports a
// full queue, the runner leaves the request file in the inbox and retries
// it on the next poll -- the inbox is the overflow buffer, the queue
// capacity bounds memory, and no request is ever dropped.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>

#include "serve/server.hpp"

namespace scs {

struct SpoolLayout {
  std::string root;

  std::string inbox() const { return root + "/inbox"; }
  std::string results() const { return root + "/results"; }
  std::string ctl() const { return root + "/ctl"; }
  std::string status_file() const { return root + "/status.json"; }
  std::string drain_file() const { return ctl() + "/drain"; }
};

/// Create the spool directory tree. Returns false (with `error`) when the
/// directories cannot be created.
bool spool_init(const SpoolLayout& layout, std::string* error = nullptr);

/// Write `content` to `path` atomically (same-directory tmp + rename).
bool atomic_write_file(const std::string& path, const std::string& content);

/// One finished job rendered for results/<id>.json: identity, verdict,
/// timings, and -- on success -- the certified barrier certificate at
/// round-trip precision.
std::string job_result_json(const std::string& id, std::uint64_t key,
                            const SynthesisResult& result, bool warm_hit,
                            double queue_seconds, double run_seconds);

/// Polls an inbox and feeds a SynthesisServer. Single-threaded by design:
/// one runner owns the spool, the server provides the concurrency.
class SpoolRunner {
 public:
  SpoolRunner(SynthesisServer& server, SpoolLayout layout);

  /// One poll round: ingest inbox files, sweep finished jobs into
  /// results/, refresh status.json. Returns the number of requests
  /// ingested this round.
  int poll_once();

  /// True once ctl/drain exists (checked per poll by the daemon loop).
  bool drain_requested() const;

  /// Jobs ingested but not yet swept to results/.
  std::size_t pending() const { return pending_.size(); }

  /// Refresh status.json (also called by poll_once).
  void write_status() const;

 private:
  struct Pending {
    std::string id;
    std::uint64_t key = 0;
    bool warm_hit = false;
  };

  /// Sweep pending jobs whose results are ready into results/.
  void sweep_results();
  void write_error_result(const std::string& id, const std::string& error);

  SynthesisServer& server_;
  SpoolLayout layout_;
  std::unordered_map<std::string, Pending> pending_;  // by result id
  std::uint64_t ingested_total_ = 0;
  std::uint64_t results_written_ = 0;
};

}  // namespace scs
