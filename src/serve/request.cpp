#include "serve/request.hpp"

#include "obs/json_reader.hpp"
#include "obs/json_writer.hpp"
#include "util/check.hpp"

namespace scs {

std::string job_request_json(const JobRequest& request) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(request.id);
  w.key("benchmark").value(request.benchmark);
  w.key("seed").value(static_cast<std::uint64_t>(request.seed));
  w.key("fast_mode").value(request.fast_mode);
  w.key("rl_episodes").value(request.rl_episodes);
  w.key("priority").value(request.priority);
  w.key("deadline_seconds").value(request.deadline_seconds);
  w.end_object();
  return w.str();
}

bool parse_job_request(const std::string& text, JobRequest* out,
                       std::string* error) {
  JsonValue doc;
  if (!json_try_parse(text, &doc, error)) return false;
  if (!doc.is_object()) {
    if (error != nullptr) *error = "request must be a JSON object";
    return false;
  }
  JobRequest req;
  if (const JsonValue* v = doc.find("id")) req.id = v->string_or("");
  const JsonValue* bench = doc.find("benchmark");
  if (bench == nullptr || !bench->is_string() || bench->string.empty()) {
    if (error != nullptr) *error = "missing required string field 'benchmark'";
    return false;
  }
  req.benchmark = bench->string;
  if (const JsonValue* v = doc.find("seed"))
    req.seed = static_cast<std::uint64_t>(v->int_or(1));
  if (const JsonValue* v = doc.find("fast_mode"))
    req.fast_mode = v->bool_or(false);
  if (const JsonValue* v = doc.find("rl_episodes"))
    req.rl_episodes = static_cast<int>(v->int_or(-1));
  if (const JsonValue* v = doc.find("priority"))
    req.priority = static_cast<int>(v->int_or(0));
  if (const JsonValue* v = doc.find("deadline_seconds"))
    req.deadline_seconds = v->number_or(0.0);
  *out = std::move(req);
  return true;
}

std::optional<BenchmarkId> benchmark_id_from_name(const std::string& name) {
  for (BenchmarkId id : all_benchmark_ids())
    if (benchmark_name(id) == name) return id;
  return std::nullopt;
}

SynthesisJob make_job(const JobRequest& request, const StoreConfig& store,
                      const std::string& ledger_path) {
  const std::optional<BenchmarkId> id = benchmark_id_from_name(request.benchmark);
  SCS_REQUIRE(id.has_value(), "make_job: unknown benchmark");
  PipelineConfig config;
  config.seed = request.seed;
  config.fast_mode = request.fast_mode;
  config.rl_episodes = request.rl_episodes;
  config.store = store;
  config.obs.ledger_path = ledger_path;
  return SynthesisJob(make_benchmark(*id), std::move(config));
}

std::uint64_t serve_key(const JobRequest& request) {
  // The key folds benchmark content + seed + config slice; the server's
  // store / ledger settings are not hashed, so a fixed default works here.
  return make_job(request, StoreConfig{}, "").config_key();
}

}  // namespace scs
