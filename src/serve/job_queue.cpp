#include "serve/job_queue.hpp"

#include <algorithm>

namespace scs {

ShardedJobQueue::ShardedJobQueue(std::size_t capacity, std::size_t shards)
    : capacity_(std::max<std::size_t>(1, capacity)) {
  const std::size_t n = (shards == 0) ? 4 : shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    shards_.push_back(std::make_unique<Shard>());
}

ShardedJobQueue::Push ShardedJobQueue::push(int priority,
                                            std::function<void()> fn) {
  if (closed_.load(std::memory_order_acquire)) return Push::kClosed;
  // Reserve a slot first so the capacity bound holds under concurrent
  // pushes (no overshoot between a size check and an insert).
  std::size_t cur = count_.load(std::memory_order_relaxed);
  do {
    if (cur >= capacity_) return Push::kFull;
  } while (!count_.compare_exchange_weak(cur, cur + 1,
                                         std::memory_order_acq_rel));
  const std::uint64_t seq = seq_.fetch_add(1, std::memory_order_relaxed);
  Shard& shard = *shards_[seq % shards_.size()];
  {
    std::lock_guard<std::mutex> lk(shard.m);
    shard.items.push(Item{priority, seq, std::move(fn)});
  }
  {
    std::lock_guard<std::mutex> lk(cv_m_);
    ++version_;
  }
  cv_.notify_one();
  return Push::kAccepted;
}

bool ShardedJobQueue::pop(std::function<void()>& out) {
  for (;;) {
    std::uint64_t seen;
    {
      std::lock_guard<std::mutex> lk(cv_m_);
      seen = version_;
    }
    {
      // Ordered acquisition over all shards: deadlock-free, and exact
      // global (priority, seq) ordering. Pushes touch one shard only, so
      // this scan is the consumers' cost, not the producers'.
      std::vector<std::unique_lock<std::mutex>> locks;
      locks.reserve(shards_.size());
      for (auto& s : shards_) locks.emplace_back(s->m);
      Shard* best = nullptr;
      for (auto& s : shards_) {
        if (s->items.empty()) continue;
        if (best == nullptr || ItemOrder{}(best->items.top(), s->items.top()))
          best = s.get();
      }
      if (best != nullptr) {
        // priority_queue::top() is const&; the item leaves the queue right
        // after, so moving its callable out is safe.
        out = std::move(const_cast<Item&>(best->items.top()).fn);
        best->items.pop();
        count_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
      if (closed_.load(std::memory_order_acquire)) return false;
    }
    std::unique_lock<std::mutex> lk(cv_m_);
    cv_.wait(lk, [&] {
      return version_ != seen || closed_.load(std::memory_order_acquire);
    });
  }
}

void ShardedJobQueue::close() {
  closed_.store(true, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(cv_m_);
    ++version_;
  }
  cv_.notify_all();
}

}  // namespace scs
