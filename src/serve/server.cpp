#include "serve/server.hpp"

#include <algorithm>
#include <exception>
#include <utility>

#include "core/report.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace scs {

namespace {

void bump(const char* name) {
  if (!metrics_enabled()) return;
  MetricsRegistry::instance().counter(name).add(1);
}

/// Correlation id of a request: the client's id, or the hex config key for
/// anonymous in-process submits.
std::string request_rid(const JobRequest& request, std::uint64_t key) {
  return request.id.empty() ? hash_to_hex(key) : request.id;
}

}  // namespace

const char* to_string(JobState state) {
  switch (state) {
    case JobState::kQueued:
      return "queued";
    case JobState::kRunning:
      return "running";
    case JobState::kDone:
      return "done";
  }
  return "?";
}

SynthesisServer::SynthesisServer(const ServerConfig& config)
    : config_(config),
      cache_(config.store),
      queue_(config.queue_capacity, config.queue_shards) {
  const int n = std::max(1, config_.workers);
  workers_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  log_info("serve: server up (", n, " worker(s), queue capacity ",
           queue_.capacity(), ", ", queue_.shard_count(), " shard(s), cache ",
           cache_.enabled() ? "on" : "off", ")");
}

SynthesisServer::~SynthesisServer() { drain(); }

SynthesisServer::Submit SynthesisServer::submit(const JobRequest& request) {
  Submit out;
  Stopwatch submit_sw;
  submitted_.fetch_add(1, std::memory_order_relaxed);
  bump("serve.submitted");
  // Pre-key rejections correlate on the client's id alone.
  std::optional<TraceIdScope> id_scope;
  if (trace_enabled() && !request.id.empty()) id_scope.emplace(request.id);
  if (draining()) {
    out.kind = Submit::Kind::kRejected;
    out.error = "server is draining";
    rejected_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.rejected");
    trace_instant("serve.reject");
    append_rejected_ledger(request, 0, out.error);
    return out;
  }
  if (!benchmark_id_from_name(request.benchmark)) {
    out.kind = Submit::Kind::kRejected;
    out.error = "unknown benchmark '" + request.benchmark + "'";
    rejected_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.rejected");
    trace_instant("serve.reject");
    append_rejected_ledger(request, 0, out.error);
    return out;
  }

  SynthesisJob job = make_job(request, config_.store, config_.ledger_path);
  const std::uint64_t key = job.config_key();
  out.key = key;
  const std::string rid = request_rid(request, key);
  if (trace_enabled()) {
    id_scope.reset();
    id_scope.emplace(rid);
    trace_instant("serve.submit");
  }

  std::shared_ptr<Entry> entry;
  std::shared_ptr<Entry> hit;
  {
    std::lock_guard<std::mutex> lk(jobs_m_);
    auto it = jobs_.find(key);
    if (it != jobs_.end()) {
      hit = it->second;
    } else {
      entry = std::make_shared<Entry>(request, std::move(job), key);
      entry->rid = rid;
      entry->submit_trace_ns = trace_enabled() ? trace_now_ns() : 0;
      jobs_.emplace(key, entry);
    }
  }
  if (hit != nullptr) {
    // Dedupe path: only the inserting thread ever enqueues a key, so a
    // duplicate can never trigger a second cold synthesis.
    bool done;
    {
      std::lock_guard<std::mutex> elk(hit->m);
      done = (hit->state == JobState::kDone);
    }
    if (done) {
      out.kind = Submit::Kind::kWarmHit;
      warm_hits_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.warm_hits");
      trace_instant("serve.warm_hit");
      append_warm_hit_ledger(*hit);
      if (metrics_enabled()) {
        // Whole warm-hit submit path in microseconds: the latency a client
        // pays when the answer is already in memory (fleet SLO input).
        MetricsRegistry::instance().histogram("serve.warm_hit_us").observe(
            static_cast<std::uint64_t>(submit_sw.seconds() * 1e6));
      }
    } else {
      out.kind = Submit::Kind::kDuplicate;
      duplicates_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.duplicates");
      trace_instant("serve.dup_attach");
    }
    return out;
  }

  auto task = [this, entry] { run_entry(entry); };
  switch (queue_.push(request.priority, std::move(task))) {
    case ShardedJobQueue::Push::kAccepted:
      out.kind = Submit::Kind::kAccepted;
      if (metrics_enabled()) {
        MetricsRegistry::instance().gauge("serve.queue_depth").set(
            static_cast<std::int64_t>(queue_.size()));
      }
      return out;
    case ShardedJobQueue::Push::kFull:
      out.error = "queue full";
      out.retry_after_seconds = config_.retry_after_seconds;
      overflow_.fetch_add(1, std::memory_order_relaxed);
      bump("serve.overflow");
      trace_instant("serve.overflow");
      break;
    case ShardedJobQueue::Push::kClosed:
      out.error = "server is draining";
      break;
  }
  // Backpressure / drain race: withdraw the half-registered entry so a
  // retry of the same key is not stranded behind a job that never runs.
  {
    std::lock_guard<std::mutex> lk(jobs_m_);
    auto it = jobs_.find(key);
    if (it != jobs_.end() && it->second == entry) jobs_.erase(it);
  }
  out.kind = Submit::Kind::kRejected;
  rejected_.fetch_add(1, std::memory_order_relaxed);
  bump("serve.rejected");
  trace_instant("serve.reject");
  // Backpressure rejections are retryable (the spool keeps the request in
  // the inbox and resubmits), so they carry no terminal ledger record --
  // only the overflow counter above. A drain-race rejection is terminal.
  if (out.retry_after_seconds == 0.0)
    append_rejected_ledger(request, key, out.error);
  return out;
}

std::shared_ptr<const SynthesisResult> SynthesisServer::wait(
    std::uint64_t key) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(jobs_m_);
    auto it = jobs_.find(key);
    if (it == jobs_.end()) return nullptr;
    entry = it->second;
  }
  std::unique_lock<std::mutex> elk(entry->m);
  entry->cv.wait(elk, [&] { return entry->state == JobState::kDone; });
  return entry->result;
}

std::shared_ptr<const SynthesisResult> SynthesisServer::result(
    std::uint64_t key) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(jobs_m_);
    auto it = jobs_.find(key);
    if (it == jobs_.end()) return nullptr;
    entry = it->second;
  }
  std::lock_guard<std::mutex> elk(entry->m);
  return entry->state == JobState::kDone ? entry->result : nullptr;
}

JobStatus SynthesisServer::status_of(const Entry& entry) const {
  JobStatus s;
  s.key = entry.key;
  s.benchmark = entry.request.benchmark;
  std::lock_guard<std::mutex> elk(entry.m);
  s.id = entry.request.id.empty() ? hash_to_hex(entry.key) : entry.request.id;
  s.state = entry.state;
  s.queue_seconds = (entry.state == JobState::kQueued)
                        ? entry.queued_sw.seconds()
                        : entry.queue_seconds;
  s.run_seconds = entry.run_seconds;
  if (entry.result != nullptr) s.verdict = entry.result->verdict;
  return s;
}

std::optional<JobStatus> SynthesisServer::status(std::uint64_t key) const {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(jobs_m_);
    auto it = jobs_.find(key);
    if (it == jobs_.end()) return std::nullopt;
    entry = it->second;
  }
  return status_of(*entry);
}

std::vector<JobStatus> SynthesisServer::jobs() const {
  std::vector<std::shared_ptr<Entry>> entries;
  {
    std::lock_guard<std::mutex> lk(jobs_m_);
    entries.reserve(jobs_.size());
    for (const auto& [key, entry] : jobs_) entries.push_back(entry);
  }
  std::vector<JobStatus> out;
  out.reserve(entries.size());
  for (const auto& entry : entries) out.push_back(status_of(*entry));
  std::sort(out.begin(), out.end(),
            [](const JobStatus& a, const JobStatus& b) { return a.key < b.key; });
  return out;
}

bool SynthesisServer::cancel(std::uint64_t key) {
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lk(jobs_m_);
    auto it = jobs_.find(key);
    if (it == jobs_.end()) return false;
    entry = it->second;
  }
  {
    std::lock_guard<std::mutex> elk(entry->m);
    if (entry->state == JobState::kDone) return false;
  }
  entry->control.cancel();
  bump("serve.cancel_requests");
  if (trace_enabled()) {
    TraceIdScope id_scope(entry->rid);
    trace_instant("serve.cancel_request");
  }
  return true;
}

void SynthesisServer::drain() {
  draining_.store(true, std::memory_order_release);
  queue_.close();
  std::lock_guard<std::mutex> lk(drain_m_);
  if (joined_) return;
  for (std::thread& t : workers_) t.join();
  joined_ = true;
  log_info("serve: drained (", cold_runs_.load(), " cold run(s), ",
           warm_hits_.load(), " warm hit(s), ", rejected_.load(),
           " rejection(s))");
}

void SynthesisServer::worker_loop() {
  std::function<void()> task;
  while (queue_.pop(task)) {
    task();
    task = nullptr;
    if (metrics_enabled()) {
      MetricsRegistry::instance().gauge("serve.queue_depth").set(
          static_cast<std::int64_t>(queue_.size()));
    }
  }
}

void SynthesisServer::run_entry(const std::shared_ptr<Entry>& entry) {
  // The whole cold run (queue-wait close, solve, result publication)
  // correlates on the request id; the pipeline re-installs the same id via
  // JobContext::request_id for its own span tree and pool fan-out.
  std::optional<TraceIdScope> id_scope;
  if (trace_enabled()) {
    id_scope.emplace(entry->rid);
    trace_complete("serve.queue_wait", entry->submit_trace_ns);
  }
  {
    std::lock_guard<std::mutex> elk(entry->m);
    entry->state = JobState::kRunning;
    entry->queue_seconds = entry->queued_sw.seconds();
  }
  if (metrics_enabled()) {
    MetricsRegistry::instance().histogram("serve.queue_wait_ms").observe(
        static_cast<std::uint64_t>(entry->queue_seconds * 1e3));
  }
  // The deadline arms at start-of-run: queue wait must not eat the budget.
  if (entry->request.deadline_seconds > 0.0)
    entry->control.set_deadline_after(entry->request.deadline_seconds);

  JobContext ctx;
  ctx.control = &entry->control;
  ctx.cache = &cache_;
  ctx.source = "serve";
  ctx.request_id = entry->rid;

  in_flight_.fetch_add(1, std::memory_order_relaxed);
  if (metrics_enabled()) {
    MetricsRegistry::instance().gauge("serve.in_flight").set(
        static_cast<std::int64_t>(in_flight_.load(std::memory_order_relaxed)));
  }
  Stopwatch run_sw;
  std::shared_ptr<SynthesisResult> result;
  try {
    result = std::make_shared<SynthesisResult>(entry->job.run(ctx));
  } catch (const std::exception& e) {
    // The pipeline fences stage exceptions itself; this catches setup-level
    // failures so one bad job can never take a worker down.
    result = std::make_shared<SynthesisResult>();
    result->benchmark = entry->request.benchmark;
    result->verdict = "UNVERIFIED";
    result->failure_stage = "serve";
    result->failure_message = e.what();
    log_info("serve: job ", hash_to_hex(entry->key), " threw: ", e.what());
  }
  in_flight_.fetch_sub(1, std::memory_order_relaxed);
  cold_runs_.fetch_add(1, std::memory_order_relaxed);
  bump("serve.cold_runs");
  if (result->verdict == "CANCELLED" || result->verdict == "DEADLINE") {
    cancelled_.fetch_add(1, std::memory_order_relaxed);
    bump("serve.cancelled");
    trace_instant("serve.cancelled");
  }
  if (metrics_enabled()) {
    MetricsRegistry::instance().gauge("serve.in_flight").set(
        static_cast<std::int64_t>(in_flight_.load(std::memory_order_relaxed)));
    MetricsRegistry::instance().histogram("serve.run_ms").observe(
        static_cast<std::uint64_t>(run_sw.seconds() * 1e3));
  }
  {
    TraceSpan publish_span("serve.result_publish");
    std::lock_guard<std::mutex> elk(entry->m);
    entry->run_seconds = run_sw.seconds();
    entry->result = std::move(result);
    entry->state = JobState::kDone;
  }
  entry->cv.notify_all();
}

void SynthesisServer::append_warm_hit_ledger(const Entry& entry) {
  const std::string path = resolve_ledger_path(config_.ledger_path);
  if (path.empty()) return;
  std::shared_ptr<SynthesisResult> result;
  std::uint64_t seed;
  {
    std::lock_guard<std::mutex> elk(entry.m);
    result = entry.result;
    seed = entry.request.seed;
  }
  if (result == nullptr) return;
  // One ledger record per *job*, warm hits included: the cold run's record
  // came from the pipeline (source "serve"); hits are distinguishable by
  // source so drain audits can count cold-vs-warm exactly.
  ledger_append(path, ledger_record(*result, entry.key, seed, "serve-hit"));
}

void SynthesisServer::append_rejected_ledger(const JobRequest& request,
                                             std::uint64_t key,
                                             const std::string& error) {
  const std::string path = resolve_ledger_path(config_.ledger_path);
  if (path.empty()) return;
  // Rejections never ran, so there is no pipeline record to lean on; a
  // minimal synthesis-kind record (verdict REJECTED, source
  // "serve-rejected") keeps every refused request visible to fleet
  // aggregation's lost-request and verdict-mix accounting.
  SynthesisResult result;
  result.benchmark = request.benchmark;
  result.verdict = "REJECTED";
  result.failure_stage = "serve";
  result.failure_message = error;
  ledger_append(path,
                ledger_record(result, key, request.seed, "serve-rejected"));
}

}  // namespace scs
