// Bounded sharded priority job queue for the serving daemon.
//
// Producers (submission threads) hash-spread pushes over independent
// shards, each guarded by its own mutex, so concurrent submits rarely
// contend; consumers (worker threads) take the globally best item
// (priority desc, then FIFO by sequence number) by briefly holding every
// shard lock -- queue operations are nanoseconds against jobs that run for
// seconds, so exact global ordering is worth the scan.
//
// Backpressure is a hard capacity bound: push() never blocks, it reports
// kFull and the caller answers the client with retry-after. close() stops
// new pushes while letting consumers drain what was accepted -- the
// graceful-shutdown half of the protocol.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <vector>

namespace scs {

class ShardedJobQueue {
 public:
  enum class Push {
    kAccepted,
    kFull,    // capacity reached; retry later
    kClosed,  // drain in progress; permanent
  };

  /// `shards` == 0 picks a small default. Capacity is a strict global
  /// bound across all shards.
  explicit ShardedJobQueue(std::size_t capacity, std::size_t shards = 0);

  Push push(int priority, std::function<void()> fn);

  /// Block until an item is available (returning true with the globally
  /// best item) or the queue is closed *and* drained (returning false --
  /// the consumer's signal to exit).
  bool pop(std::function<void()>& out);

  /// Stop accepting pushes. Already-accepted items remain poppable; once
  /// they are drained, pop() returns false.
  void close();
  bool closed() const { return closed_.load(std::memory_order_acquire); }

  std::size_t size() const { return count_.load(std::memory_order_relaxed); }
  std::size_t capacity() const { return capacity_; }
  std::size_t shard_count() const { return shards_.size(); }

 private:
  struct Item {
    int priority = 0;
    std::uint64_t seq = 0;
    std::function<void()> fn;
  };
  /// "Less" for a max-heap: lower priority is worse; same priority, later
  /// arrival (higher seq) is worse.
  struct ItemOrder {
    bool operator()(const Item& a, const Item& b) const {
      if (a.priority != b.priority) return a.priority < b.priority;
      return a.seq > b.seq;
    }
  };
  struct Shard {
    std::mutex m;
    std::priority_queue<Item, std::vector<Item>, ItemOrder> items;
  };

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t capacity_;
  std::atomic<std::size_t> count_{0};
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<bool> closed_{false};
  // Sleep/wake handshake: version_ bumps (under cv_m_) on every push and on
  // close, so a pop that saw an empty queue can wait without a lost-wakeup
  // race against a concurrent push.
  mutable std::mutex cv_m_;
  std::condition_variable cv_;
  std::uint64_t version_ = 0;
};

}  // namespace scs
