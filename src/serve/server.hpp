// The synthesis-as-a-service core: an in-process daemon that dedupes,
// queues, runs, and serves SynthesisJob units.
//
// Job lifecycle (see DESIGN.md section 15):
//
//   submit ──▶ [dedupe map] ──▶ QUEUED ──▶ RUNNING ──▶ DONE
//                 │ hit                                  ▲
//                 └── duplicate attaches / warm hit ─────┘
//
// Exactly-one-cold guarantee: the dedupe map (serve key -> entry) is the
// single critical section; only the thread that inserts a key enqueues
// work for it. Every later submit of the same key attaches to the entry --
// in flight it is a duplicate, finished it is a warm hit answered from
// memory in microseconds without touching the queue or the solvers.
// Restarting the server empties the map but not the artifact store: the
// first resubmission runs the pipeline against warm stage caches (ms, no
// SDP work) and repopulates the map.
//
// Cancellation / deadline: every entry owns a JobControl threaded into the
// pipeline as the JobContext; cancel() works in any state (a queued entry
// runs, sees the stop at the first stage gate, and finishes as CANCELLED
// without solver work). A request deadline arms when the job starts, so
// queue wait does not consume it.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/job.hpp"
#include "serve/job_queue.hpp"
#include "serve/request.hpp"
#include "util/stopwatch.hpp"

namespace scs {

struct ServerConfig {
  /// Worker threads consuming the job queue. Each job's inner stages still
  /// fan out on the process-wide thread pool; workers only provide
  /// between-job concurrency.
  int workers = 2;
  std::size_t queue_capacity = 64;
  std::size_t queue_shards = 0;  // 0 = auto
  /// Stage cache shared by every job (one handle, opened once).
  StoreConfig store;
  /// Ledger for per-job records ("" falls back to env SCS_LEDGER).
  std::string ledger_path;
  /// Suggested client back-off after a backpressure rejection.
  double retry_after_seconds = 1.0;
};

enum class JobState { kQueued, kRunning, kDone };

const char* to_string(JobState state);

struct JobStatus {
  std::string id;
  std::uint64_t key = 0;
  JobState state = JobState::kQueued;
  std::string benchmark;
  std::string verdict;  // "" until done
  bool warm_hit = false;
  double queue_seconds = 0.0;
  double run_seconds = 0.0;
};

class SynthesisServer {
 public:
  explicit SynthesisServer(const ServerConfig& config = {});
  ~SynthesisServer();
  SynthesisServer(const SynthesisServer&) = delete;
  SynthesisServer& operator=(const SynthesisServer&) = delete;

  struct Submit {
    enum class Kind {
      kAccepted,   // new entry, queued for cold synthesis
      kDuplicate,  // same key already in flight; attached to it
      kWarmHit,    // same key already done; result served from memory
      kRejected,   // backpressure / draining / invalid request
    };
    Kind kind = Kind::kRejected;
    std::uint64_t key = 0;
    std::string error;
    /// Non-zero only for retryable (backpressure) rejections.
    double retry_after_seconds = 0.0;
  };

  Submit submit(const JobRequest& request);

  /// Block until the job with `key` is done; null for an unknown key.
  std::shared_ptr<const SynthesisResult> wait(std::uint64_t key);
  /// Non-blocking: the result if done, null otherwise.
  std::shared_ptr<const SynthesisResult> result(std::uint64_t key) const;
  std::optional<JobStatus> status(std::uint64_t key) const;
  std::vector<JobStatus> jobs() const;

  /// Request cooperative cancellation. True if the key is known and the
  /// job had not finished yet.
  bool cancel(std::uint64_t key);

  /// Graceful shutdown: reject new submits, drain the queue, join the
  /// workers. Idempotent; also run by the destructor.
  void drain();
  bool draining() const { return draining_.load(std::memory_order_acquire); }

  // ---- Telemetry (also exported as serve.* metrics when enabled).
  std::uint64_t submitted() const { return submitted_.load(); }
  std::uint64_t cold_runs() const { return cold_runs_.load(); }
  std::uint64_t warm_hits() const { return warm_hits_.load(); }
  std::uint64_t duplicates() const { return duplicates_.load(); }
  std::uint64_t rejected() const { return rejected_.load(); }
  /// Backpressure rejections only (queue kFull) -- a subset of rejected().
  std::uint64_t overflow() const { return overflow_.load(); }
  /// Jobs that finished with a CANCELLED or DEADLINE verdict.
  std::uint64_t cancelled() const { return cancelled_.load(); }
  /// Jobs currently inside run_entry (cold solves in progress).
  std::uint64_t in_flight() const { return in_flight_.load(); }
  std::size_t queue_depth() const { return queue_.size(); }
  std::size_t queue_shards() const { return queue_.shard_count(); }
  const ServerConfig& config() const { return config_; }

 private:
  struct Entry {
    Entry(JobRequest r, SynthesisJob j, std::uint64_t k)
        : request(std::move(r)), job(std::move(j)), key(k) {}
    JobRequest request;
    SynthesisJob job;
    std::uint64_t key;
    /// Trace correlation id: the client's request id, or the hex key for
    /// anonymous submits. Tags every span/instant of this job's lifecycle.
    std::string rid;
    /// Trace-clock timestamp of the submit, closing the cross-thread
    /// "serve.queue_wait" span when a worker picks the job up.
    std::int64_t submit_trace_ns = 0;
    JobControl control;
    Stopwatch queued_sw;  // started at submit
    mutable std::mutex m;
    std::condition_variable cv;
    JobState state = JobState::kQueued;
    double queue_seconds = 0.0;
    double run_seconds = 0.0;
    std::shared_ptr<SynthesisResult> result;
  };

  void worker_loop();
  void run_entry(const std::shared_ptr<Entry>& entry);
  void append_warm_hit_ledger(const Entry& entry);
  void append_rejected_ledger(const JobRequest& request, std::uint64_t key,
                              const std::string& error);
  JobStatus status_of(const Entry& entry) const;

  ServerConfig config_;
  StageCache cache_;
  ShardedJobQueue queue_;
  mutable std::mutex jobs_m_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Entry>> jobs_;
  std::vector<std::thread> workers_;
  std::atomic<bool> draining_{false};
  std::mutex drain_m_;  // serializes drain() callers
  bool joined_ = false;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> cold_runs_{0};
  std::atomic<std::uint64_t> warm_hits_{0};
  std::atomic<std::uint64_t> duplicates_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> overflow_{0};
  std::atomic<std::uint64_t> cancelled_{0};
  std::atomic<std::uint64_t> in_flight_{0};
};

}  // namespace scs
