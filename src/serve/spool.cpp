#include "serve/spool.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "obs/exposition.hpp"
#include "obs/json_writer.hpp"
#include "obs/ledger.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace scs {

namespace fs = std::filesystem;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

std::string stem_of(const fs::path& p) { return p.stem().string(); }

/// {"p50":...,"p90":...,"p99":...,"count":...} for one registry histogram;
/// quantiles are null until something was observed (a never-seen latency
/// must not read as 0).
void write_latency_object(JsonWriter& w, const char* key,
                          const Histogram& h) {
  const std::uint64_t count = h.count();
  w.key(key).begin_object();
  w.key("count").value(count);
  if (count == 0) {
    w.key("p50").null();
    w.key("p90").null();
    w.key("p99").null();
  } else {
    w.key("p50").value(h.quantile_upper(0.50));
    w.key("p90").value(h.quantile_upper(0.90));
    w.key("p99").value(h.quantile_upper(0.99));
  }
  w.end_object();
}

}  // namespace

bool spool_init(const SpoolLayout& layout, std::string* error) {
  std::error_code ec;
  for (const std::string& dir :
       {layout.inbox(), layout.results(), layout.ctl(),
        layout.cancel_dir()}) {
    fs::create_directories(dir, ec);
    if (ec) {
      if (error != nullptr)
        *error = "cannot create " + dir + ": " + ec.message();
      return false;
    }
  }
  return true;
}

bool atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    if (!out.good()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string job_result_json(const std::string& id, std::uint64_t key,
                            const SynthesisResult& result, bool warm_hit,
                            double queue_seconds, double run_seconds) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("key").value(hash_to_hex(key));
  w.key("benchmark").value(result.benchmark);
  w.key("verdict").value(result.verdict);
  w.key("success").value(result.success);
  w.key("warm_hit").value(warm_hit);
  w.key("failure_stage").value(result.failure_stage);
  w.key("failure_message").value(result.failure_message);
  w.key("queue_seconds").value(queue_seconds);
  w.key("run_seconds").value(run_seconds);
  w.key("total_seconds").value(result.total_seconds);
  w.key("barrier_degree").value(result.barrier.degree);
  if (result.success) {
    // Precision 17 round-trips the certified doubles exactly: the result
    // file is sufficient input for independent re-validation.
    w.key("certificate").value(result.barrier.barrier.to_string(17));
    w.key("controller").begin_array();
    for (const Polynomial& p : result.controller) w.value(p.to_string(17));
    w.end_array();
  }
  w.end_object();
  return w.str();
}

SpoolRunner::SpoolRunner(SynthesisServer& server, SpoolLayout layout)
    : server_(server), layout_(std::move(layout)) {
  instance_ = fs::path(layout_.root).filename().string();
  if (instance_.empty()) instance_ = layout_.root;
}

bool SpoolRunner::drain_requested() const {
  std::error_code ec;
  return fs::exists(layout_.drain_file(), ec);
}

void SpoolRunner::write_error_result(const std::string& id,
                                     const std::string& error) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("verdict").value("REJECTED");
  w.key("success").value(false);
  w.key("error").value(error);
  w.end_object();
  atomic_write_file(layout_.results() + "/" + id + ".json", w.str());
  ++results_written_;
}

int SpoolRunner::poll_once() {
  apply_cancel_markers();
  if (server_.draining()) {
    // Drain mode: stop ingesting (inbox files stay for the next server
    // instance), only sweep finished jobs and refresh the exposition files.
    sweep_results();
    write_status();
    write_metrics();
    return 0;
  }
  // Ingest in filename order so clients can impose FIFO with zero-padded
  // names; priority inside the queue still wins across files.
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(layout_.inbox(), ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  int ingested = 0;
  for (const fs::path& file : files) {
    std::string text;
    if (!read_file(file.string(), &text)) continue;  // retry next poll
    JobRequest request;
    std::string error;
    if (!parse_job_request(text, &request, &error)) {
      write_error_result(stem_of(file), "parse error: " + error);
      fs::remove(file, ec);
      continue;
    }
    // Id-collision guard: a client reusing an explicit id while the first
    // request under that id is still in flight would otherwise overwrite
    // the pending_ entry and orphan the original (its result would never
    // be swept out). Same key is fine -- the submit below dedupes / warm
    // hits onto the in-flight job; a *different* key is a client error and
    // is rejected before it touches the server. (Auto-derived ids hash the
    // key, so a collision there is by construction the same job.)
    if (!request.id.empty()) {
      const auto it = pending_.find(request.id);
      if (it != pending_.end() && it->second.key != serve_key(request)) {
        write_error_result(request.id,
                           "id '" + request.id +
                               "' is already in flight with a different "
                               "configuration");
        fs::remove(file, ec);
        continue;
      }
    }
    const SynthesisServer::Submit submit = server_.submit(request);
    if (submit.kind == SynthesisServer::Submit::Kind::kRejected) {
      if (submit.retry_after_seconds > 0.0) {
        // Backpressure: the inbox is the overflow buffer. Leave this file
        // (and everything after it) for the next poll round.
        log_debug("spool: queue full, deferring ", file.filename().string());
        break;
      }
      write_error_result(stem_of(file), submit.error);
      fs::remove(file, ec);
      continue;
    }
    Pending p;
    p.id = request.id.empty() ? hash_to_hex(submit.key) : request.id;
    p.key = submit.key;
    p.warm_hit = (submit.kind == SynthesisServer::Submit::Kind::kWarmHit);
    if (trace_enabled()) {
      TraceIdScope id_scope(p.id);
      trace_instant("spool.ingest");
    }
    pending_[p.id] = p;
    fs::remove(file, ec);
    ++ingested;
    ++ingested_total_;
  }

  sweep_results();
  write_status();
  write_metrics();
  return ingested;
}

void SpoolRunner::sweep_results() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const Pending& p = it->second;
    std::shared_ptr<const SynthesisResult> result = server_.result(p.key);
    if (result == nullptr) {
      ++it;
      continue;
    }
    const std::optional<JobStatus> status = server_.status(p.key);
    const double queue_s = status ? status->queue_seconds : 0.0;
    const double run_s = status ? status->run_seconds : 0.0;
    const std::string path = layout_.results() + "/" + p.id + ".json";
    {
      // Closes the request's span tree: submit/ingest -> queue_wait ->
      // synthesize -> result_write, all cut by the same rid.
      std::optional<TraceIdScope> id_scope;
      if (trace_enabled()) id_scope.emplace(p.id);
      TraceSpan write_span("spool.result_write");
      atomic_write_file(path, job_result_json(p.id, p.key, *result,
                                              p.warm_hit, queue_s, run_s));
    }
    ++results_written_;
    it = pending_.erase(it);
  }
}

void SpoolRunner::write_status() const {
  MetricsRegistry& reg = MetricsRegistry::instance();
  JsonWriter w;
  w.begin_object();
  w.key("schema").value(kStatusSchemaVersion);
  w.key("kind").value("serve_status");
  w.key("instance").value(instance_);
  w.key("draining").value(server_.draining());
  w.key("queue_depth").value(static_cast<std::uint64_t>(server_.queue_depth()));
  w.key("queue_capacity")
      .value(static_cast<std::uint64_t>(server_.config().queue_capacity));
  // Shard occupancy: depth spread over the sharded queue (exact per-shard
  // sizes are not exposed; depth/shards is the mean occupancy).
  w.key("shards").value(static_cast<std::uint64_t>(server_.queue_shards()));
  w.key("in_flight").value(server_.in_flight());
  w.key("retry_after_seconds").value(server_.config().retry_after_seconds);
  w.key("counters").begin_object();
  w.key("submitted").value(server_.submitted());
  w.key("cold_runs").value(server_.cold_runs());
  w.key("warm_hits").value(server_.warm_hits());
  w.key("duplicates").value(server_.duplicates());
  w.key("rejected").value(server_.rejected());
  w.key("cancelled").value(server_.cancelled());
  w.key("overflow").value(server_.overflow());
  w.end_object();
  w.key("pending").value(static_cast<std::uint64_t>(pending_.size()));
  w.key("ingested").value(ingested_total_);
  w.key("results_written").value(results_written_);
  // Latency histograms (ms / us as named). Counts are 0 and quantiles null
  // until the daemon enables metrics collection and traffic arrives.
  w.key("latency").begin_object();
  write_latency_object(w, "queue_wait_ms",
                       reg.histogram("serve.queue_wait_ms"));
  write_latency_object(w, "run_ms", reg.histogram("serve.run_ms"));
  write_latency_object(w, "warm_hit_us", reg.histogram("serve.warm_hit_us"));
  w.end_object();
  w.key("jobs").begin_array();
  for (const JobStatus& s : server_.jobs()) {
    w.begin_object();
    w.key("id").value(s.id);
    w.key("key").value(hash_to_hex(s.key));
    w.key("state").value(to_string(s.state));
    w.key("benchmark").value(s.benchmark);
    w.key("verdict").value(s.verdict);
    w.key("queue_seconds").value(s.queue_seconds);
    w.key("run_seconds").value(s.run_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  atomic_write_file(layout_.status_file(), w.str());
}

void SpoolRunner::write_metrics() const {
  if (!metrics_enabled()) return;
  atomic_write_file(layout_.metrics_file(),
                    prometheus_text(MetricsRegistry::instance().snapshot()));
}

int SpoolRunner::apply_cancel_markers() {
  std::error_code ec;
  std::vector<fs::path> markers;
  for (const auto& entry : fs::directory_iterator(layout_.cancel_dir(), ec)) {
    if (!entry.is_regular_file(ec)) continue;
    markers.push_back(entry.path());
  }
  int cancelled = 0;
  for (const fs::path& marker : markers) {
    const std::string id = marker.filename().string();
    const auto it = pending_.find(id);
    if (it != pending_.end()) {
      if (server_.cancel(it->second.key)) ++cancelled;
      // An already-finished job ignores the cancel; its result is swept
      // normally. Either way the marker is consumed.
      fs::remove(marker, ec);
    } else if (fs::exists(layout_.results() + "/" + id + ".json", ec)) {
      // Job already finished and was swept out of pending_: cancel is a
      // no-op, consume the marker.
      fs::remove(marker, ec);
    } else {
      // Unknown id: the request may still be sitting in the inbox (the
      // client raced the marker ahead of ingestion). Keep the marker so the
      // next poll -- after ingestion -- can apply it.
      log_debug("spool: cancel marker for unknown id '", id, "' deferred");
    }
  }
  return cancelled;
}

bool SpoolRunner::append_daemon_summary() const {
  const std::string path =
      resolve_ledger_path(server_.config().ledger_path);
  if (path.empty()) return false;
  MetricsRegistry& reg = MetricsRegistry::instance();
  JsonWriter w;
  w.begin_object();
  w.key("instance").value(instance_);
  w.key("submitted").value(server_.submitted());
  w.key("cold_runs").value(server_.cold_runs());
  w.key("warm_hits").value(server_.warm_hits());
  w.key("duplicates").value(server_.duplicates());
  w.key("rejected").value(server_.rejected());
  w.key("cancelled").value(server_.cancelled());
  w.key("overflow").value(server_.overflow());
  w.key("ingested").value(ingested_total_);
  w.key("results_written").value(results_written_);
  write_latency_object(w, "queue_wait_ms",
                       reg.histogram("serve.queue_wait_ms"));
  write_latency_object(w, "run_ms", reg.histogram("serve.run_ms"));
  write_latency_object(w, "warm_hit_us", reg.histogram("serve.warm_hit_us"));
  w.end_object();
  return ledger_append_bench("serve_daemon", w.str(), path);
}

}  // namespace scs
