#include "serve/spool.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "obs/json_writer.hpp"
#include "serve/request.hpp"
#include "util/hash.hpp"
#include "util/log.hpp"

namespace scs {

namespace fs = std::filesystem;

namespace {

bool read_file(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream ss;
  ss << in.rdbuf();
  *out = ss.str();
  return in.good() || in.eof();
}

std::string stem_of(const fs::path& p) { return p.stem().string(); }

}  // namespace

bool spool_init(const SpoolLayout& layout, std::string* error) {
  std::error_code ec;
  for (const std::string& dir :
       {layout.inbox(), layout.results(), layout.ctl()}) {
    fs::create_directories(dir, ec);
    if (ec) {
      if (error != nullptr)
        *error = "cannot create " + dir + ": " + ec.message();
      return false;
    }
  }
  return true;
}

bool atomic_write_file(const std::string& path, const std::string& content) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    if (!out) return false;
    out << content;
    if (!out.good()) return false;
  }
  std::error_code ec;
  fs::rename(tmp, path, ec);
  if (ec) {
    fs::remove(tmp, ec);
    return false;
  }
  return true;
}

std::string job_result_json(const std::string& id, std::uint64_t key,
                            const SynthesisResult& result, bool warm_hit,
                            double queue_seconds, double run_seconds) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("key").value(hash_to_hex(key));
  w.key("benchmark").value(result.benchmark);
  w.key("verdict").value(result.verdict);
  w.key("success").value(result.success);
  w.key("warm_hit").value(warm_hit);
  w.key("failure_stage").value(result.failure_stage);
  w.key("failure_message").value(result.failure_message);
  w.key("queue_seconds").value(queue_seconds);
  w.key("run_seconds").value(run_seconds);
  w.key("total_seconds").value(result.total_seconds);
  w.key("barrier_degree").value(result.barrier.degree);
  if (result.success) {
    // Precision 17 round-trips the certified doubles exactly: the result
    // file is sufficient input for independent re-validation.
    w.key("certificate").value(result.barrier.barrier.to_string(17));
    w.key("controller").begin_array();
    for (const Polynomial& p : result.controller) w.value(p.to_string(17));
    w.end_array();
  }
  w.end_object();
  return w.str();
}

SpoolRunner::SpoolRunner(SynthesisServer& server, SpoolLayout layout)
    : server_(server), layout_(std::move(layout)) {}

bool SpoolRunner::drain_requested() const {
  std::error_code ec;
  return fs::exists(layout_.drain_file(), ec);
}

void SpoolRunner::write_error_result(const std::string& id,
                                     const std::string& error) {
  JsonWriter w;
  w.begin_object();
  w.key("id").value(id);
  w.key("verdict").value("REJECTED");
  w.key("success").value(false);
  w.key("error").value(error);
  w.end_object();
  atomic_write_file(layout_.results() + "/" + id + ".json", w.str());
  ++results_written_;
}

int SpoolRunner::poll_once() {
  if (server_.draining()) {
    // Drain mode: stop ingesting (inbox files stay for the next server
    // instance), only sweep finished jobs and refresh the status file.
    sweep_results();
    write_status();
    return 0;
  }
  // Ingest in filename order so clients can impose FIFO with zero-padded
  // names; priority inside the queue still wins across files.
  std::vector<fs::path> files;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(layout_.inbox(), ec)) {
    if (!entry.is_regular_file(ec)) continue;
    if (entry.path().extension() != ".json") continue;
    files.push_back(entry.path());
  }
  std::sort(files.begin(), files.end());

  int ingested = 0;
  for (const fs::path& file : files) {
    std::string text;
    if (!read_file(file.string(), &text)) continue;  // retry next poll
    JobRequest request;
    std::string error;
    if (!parse_job_request(text, &request, &error)) {
      write_error_result(stem_of(file), "parse error: " + error);
      fs::remove(file, ec);
      continue;
    }
    // Id-collision guard: a client reusing an explicit id while the first
    // request under that id is still in flight would otherwise overwrite
    // the pending_ entry and orphan the original (its result would never
    // be swept out). Same key is fine -- the submit below dedupes / warm
    // hits onto the in-flight job; a *different* key is a client error and
    // is rejected before it touches the server. (Auto-derived ids hash the
    // key, so a collision there is by construction the same job.)
    if (!request.id.empty()) {
      const auto it = pending_.find(request.id);
      if (it != pending_.end() && it->second.key != serve_key(request)) {
        write_error_result(request.id,
                           "id '" + request.id +
                               "' is already in flight with a different "
                               "configuration");
        fs::remove(file, ec);
        continue;
      }
    }
    const SynthesisServer::Submit submit = server_.submit(request);
    if (submit.kind == SynthesisServer::Submit::Kind::kRejected) {
      if (submit.retry_after_seconds > 0.0) {
        // Backpressure: the inbox is the overflow buffer. Leave this file
        // (and everything after it) for the next poll round.
        log_debug("spool: queue full, deferring ", file.filename().string());
        break;
      }
      write_error_result(stem_of(file), submit.error);
      fs::remove(file, ec);
      continue;
    }
    Pending p;
    p.id = request.id.empty() ? hash_to_hex(submit.key) : request.id;
    p.key = submit.key;
    p.warm_hit = (submit.kind == SynthesisServer::Submit::Kind::kWarmHit);
    pending_[p.id] = p;
    fs::remove(file, ec);
    ++ingested;
    ++ingested_total_;
  }

  sweep_results();
  write_status();
  return ingested;
}

void SpoolRunner::sweep_results() {
  for (auto it = pending_.begin(); it != pending_.end();) {
    const Pending& p = it->second;
    std::shared_ptr<const SynthesisResult> result = server_.result(p.key);
    if (result == nullptr) {
      ++it;
      continue;
    }
    const std::optional<JobStatus> status = server_.status(p.key);
    const double queue_s = status ? status->queue_seconds : 0.0;
    const double run_s = status ? status->run_seconds : 0.0;
    const std::string path = layout_.results() + "/" + p.id + ".json";
    atomic_write_file(path, job_result_json(p.id, p.key, *result, p.warm_hit,
                                            queue_s, run_s));
    ++results_written_;
    it = pending_.erase(it);
  }
}

void SpoolRunner::write_status() const {
  JsonWriter w;
  w.begin_object();
  w.key("draining").value(server_.draining());
  w.key("queue_depth").value(static_cast<std::uint64_t>(server_.queue_depth()));
  w.key("submitted").value(server_.submitted());
  w.key("cold_runs").value(server_.cold_runs());
  w.key("warm_hits").value(server_.warm_hits());
  w.key("duplicates").value(server_.duplicates());
  w.key("rejected").value(server_.rejected());
  w.key("pending").value(static_cast<std::uint64_t>(pending_.size()));
  w.key("results_written").value(results_written_);
  w.key("jobs").begin_array();
  for (const JobStatus& s : server_.jobs()) {
    w.begin_object();
    w.key("id").value(s.id);
    w.key("key").value(hash_to_hex(s.key));
    w.key("state").value(to_string(s.state));
    w.key("benchmark").value(s.benchmark);
    w.key("verdict").value(s.verdict);
    w.key("queue_seconds").value(s.queue_seconds);
    w.key("run_seconds").value(s.run_seconds);
    w.end_object();
  }
  w.end_array();
  w.end_object();
  atomic_write_file(layout_.status_file(), w.str());
}

}  // namespace scs
