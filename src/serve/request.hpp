// Serving request layer: the JSONL job description clients submit to
// synthesize_server, its (de)serialization, and its mapping onto a
// SynthesisJob + dedupe key.
//
// A request is the *problem statement* only -- benchmark, seed, budgets.
// Scheduling fields (priority, deadline) ride along but never enter the
// dedupe key: two requests that describe the same synthesis coalesce even
// when one is more urgent than the other, because their results are
// bitwise-identical by construction.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "core/job.hpp"

namespace scs {

struct JobRequest {
  /// Client-chosen handle used to name the result file; defaults to the
  /// dedupe key's hex when empty.
  std::string id;
  /// Benchmark name, "C1".."C10".
  std::string benchmark = "C1";
  std::uint64_t seed = 1;
  bool fast_mode = false;
  /// Episode override; -1 = the benchmark's default budget.
  int rl_episodes = -1;
  /// Scheduling only (not part of the dedupe key): higher runs first.
  int priority = 0;
  /// Scheduling only: wall-clock budget armed when the job *starts*
  /// (queue wait does not consume it); 0 = none.
  double deadline_seconds = 0.0;
};

/// One-line JSON encoding of a request (parses back via
/// parse_job_request; also valid as one JSONL spool line).
std::string job_request_json(const JobRequest& request);

/// Strict parse. Unknown benchmarks are accepted here (submission rejects
/// them with a proper error); unknown keys are ignored so the request
/// schema can grow.
bool parse_job_request(const std::string& text, JobRequest* out,
                       std::string* error = nullptr);

/// "C1".."C10" lookup; nullopt for anything else.
std::optional<BenchmarkId> benchmark_id_from_name(const std::string& name);

/// The SynthesisJob a request describes. `store` / `ledger_path` are the
/// server's (they do not affect the dedupe key). Requires a valid
/// benchmark name -- check benchmark_id_from_name first.
SynthesisJob make_job(const JobRequest& request, const StoreConfig& store,
                      const std::string& ledger_path);

/// Dedupe / cache identity of a request: the job's config_key, i.e. the
/// RL stage key of the store's cache chain. Equal keys => bitwise-equal
/// results.
std::uint64_t serve_key(const JobRequest& request);

}  // namespace scs
