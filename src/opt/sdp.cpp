#include "opt/sdp.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "math/cholesky.hpp"
#include "math/robust_solve.hpp"
#include "math/simd.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/fault_injector.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "util/hash.hpp"

namespace scs {

const char* to_string(SdpStatus status) {
  switch (status) {
    case SdpStatus::kConverged:
      return "converged";
    case SdpStatus::kMaxIterations:
      return "max-iterations";
    case SdpStatus::kNumericalFailure:
      return "numerical-failure";
    case SdpStatus::kInfeasible:
      return "infeasible";
    case SdpStatus::kStalled:
      return "stalled";
    case SdpStatus::kTimeLimit:
      return "time-limit";
    case SdpStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {
/// Default for schur_parallel_threshold(): calibrated so bench_parallel's
/// sdp_schur workload (nl = 48, nc = 96, ~2^17.8) stays serial -- the pool
/// measured 0.74x there -- while large Gram systems still fan out.
constexpr std::size_t kParallelSchurFlops = std::size_t{1} << 19;
thread_local std::size_t g_schur_threshold = kParallelSchurFlops;
}  // namespace

std::size_t schur_parallel_threshold() { return g_schur_threshold; }
void set_schur_parallel_threshold(std::size_t flops) {
  g_schur_threshold = flops;
}
void reset_schur_parallel_threshold() {
  g_schur_threshold = kParallelSchurFlops;
}

namespace {

/// Per-block view of the constraints: which constraints touch this block,
/// and with which entries.
struct BlockIndex {
  // For each constraint touching the block: (constraint id, entry range in
  // the flattened entry arrays below).
  std::vector<std::size_t> constraint_ids;
  std::vector<std::size_t> entry_begin;  // size constraint_ids.size() + 1
  std::vector<std::size_t> rows, cols;
  std::vector<double> vals;
};

/// <A_i, M> with the symmetric-entry convention (off-diagonal entries count
/// twice). M need not be symmetric: the symmetrized value is used.
double inner_with_constraint(const BlockIndex& bi, std::size_t local,
                             const Mat& m) {
  double acc = 0.0;
  for (std::size_t e = bi.entry_begin[local]; e < bi.entry_begin[local + 1];
       ++e) {
    const std::size_t r = bi.rows[e];
    const std::size_t c = bi.cols[e];
    const double v = bi.vals[e];
    if (r == c)
      acc += v * m(r, r);
    else
      acc += v * (m(r, c) + m(c, r));
  }
  return acc;
}

/// Accumulate y-weighted constraint matrices into `out` (dense symmetric).
void accumulate_at(const BlockIndex& bi, const Vec& y, Mat& out) {
  for (std::size_t k = 0; k < bi.constraint_ids.size(); ++k) {
    const double yi = y[bi.constraint_ids[k]];
    if (yi == 0.0) continue;
    for (std::size_t e = bi.entry_begin[k]; e < bi.entry_begin[k + 1]; ++e) {
      const std::size_t r = bi.rows[e];
      const std::size_t c = bi.cols[e];
      const double v = bi.vals[e] * yi;
      out(r, c) += v;
      if (r != c) out(c, r) += v;
    }
  }
}

/// Largest step alpha in (0, 1] with X + alpha * dX positive definite,
/// found by geometric backtracking on Cholesky attempts.
double psd_step_length(const Mat& x, const Mat& dx) {
  double alpha = 1.0;
  for (int k = 0; k < 120; ++k) {
    Mat trial = x;
    trial.axpy(alpha, dx);
    if (Cholesky(trial).ok()) return alpha;
    alpha *= 0.9;
    if (alpha < 1e-10) break;
  }
  return 0.0;
}

struct Residuals {
  Vec rp;               // b - A(X) - B f
  std::vector<Mat> rd;  // C - At(y) - S per block
  Vec rf;               // c_f - B' y
  double mu = 0.0;
};

/// Data-driven starting scale for the identity initial iterates.
double auto_scale(const SdpProblem& problem) {
  Vec b(problem.constraints.size());
  for (std::size_t i = 0; i < problem.constraints.size(); ++i)
    b[i] = problem.constraints[i].rhs;
  double data = b.max_abs();
  for (const auto& con : problem.constraints)
    for (const auto& e : con.entries) data = std::max(data, std::fabs(e.value));
  return 10.0 * std::max(1.0, std::sqrt(data));
}

/// Blend a warm iterate toward `scale * I` just far enough that the result
/// is safely positive definite: try increasing identity weights and keep
/// the first Cholesky-positive candidate. Returns false when even a heavy
/// blend fails (caller falls back to the cold identity start).
bool blend_to_pd(const Mat& seed, double scale, Mat& out) {
  static constexpr double kEta[] = {0.05, 0.2, 0.5, 0.9};
  for (double eta : kEta) {
    Mat trial = seed;
    trial *= (1.0 - eta);
    for (std::size_t i = 0; i < trial.rows(); ++i)
      trial(i, i) += eta * scale;
    trial.symmetrize();
    // A strictly interior iterate, not a boundary one: demand a margin via
    // the Cholesky tolerance so the first IPM step has room to move.
    if (Cholesky(trial, 1e-10 * scale).ok()) {
      out = std::move(trial);
      return true;
    }
  }
  return false;
}

/// One interior-point run at a fixed starting scale. `budget_sw` counts
/// wall-clock across the whole solve_sdp call (retries included).
/// `warm_start` may be null; an unusable seed silently degrades to cold.
SdpSolution solve_sdp_once(const SdpProblem& problem, const SdpOptions& options,
                           const Stopwatch& budget_sw,
                           const SdpWarmStart* warm_start) {
  const std::size_t num_blocks = problem.block_dims.size();
  const std::size_t m = problem.constraints.size();
  const std::size_t s = problem.num_free;
  SCS_REQUIRE(num_blocks > 0, "solve_sdp: need at least one block");
  SCS_REQUIRE(m > 0, "solve_sdp: need at least one constraint");
  SCS_REQUIRE(problem.block_obj_weight.empty() ||
                  problem.block_obj_weight.size() == num_blocks,
              "solve_sdp: objective weight count mismatch");
  SCS_REQUIRE(problem.free_obj.empty() || problem.free_obj.size() == s,
              "solve_sdp: free objective size mismatch");

  SdpSolution sol;

  // Validate entries; reject structurally inconsistent empty rows.
  for (std::size_t i = 0; i < m; ++i) {
    const auto& con = problem.constraints[i];
    for (const auto& e : con.entries) {
      SCS_REQUIRE(e.block < num_blocks, "solve_sdp: entry block out of range");
      SCS_REQUIRE(e.row < problem.block_dims[e.block] &&
                      e.col < problem.block_dims[e.block],
                  "solve_sdp: entry index out of range");
    }
    for (const auto& [idx, coeff] : con.free_terms) {
      (void)coeff;
      SCS_REQUIRE(idx < s, "solve_sdp: free index out of range");
    }
    if (con.entries.empty() && con.free_terms.empty()) {
      if (std::fabs(con.rhs) > 1e-12) {
        sol.status = SdpStatus::kInfeasible;
        return sol;
      }
    }
  }

  // ---- Build per-block constraint indices.
  std::vector<BlockIndex> index(num_blocks);
  {
    // Group each constraint's entries by block.
    for (std::size_t i = 0; i < m; ++i) {
      // Collect blocks touched (small lists; linear scans are fine).
      std::vector<std::size_t> touched;
      for (const auto& e : problem.constraints[i].entries) {
        if (std::find(touched.begin(), touched.end(), e.block) ==
            touched.end())
          touched.push_back(e.block);
      }
      for (std::size_t blk : touched) {
        BlockIndex& bi = index[blk];
        if (bi.entry_begin.empty()) bi.entry_begin.push_back(0);
        bi.constraint_ids.push_back(i);
        for (const auto& e : problem.constraints[i].entries) {
          if (e.block != blk) continue;
          bi.rows.push_back(e.row);
          bi.cols.push_back(e.col);
          bi.vals.push_back(e.value);
        }
        bi.entry_begin.push_back(bi.rows.size());
      }
    }
    for (auto& bi : index)
      if (bi.entry_begin.empty()) bi.entry_begin.push_back(0);
  }

  // Objective data.
  std::vector<double> cw(num_blocks, 0.0);
  if (!problem.block_obj_weight.empty()) cw = problem.block_obj_weight;
  Vec cf(s, 0.0);
  if (!problem.free_obj.empty()) cf = problem.free_obj;

  // RHS vector.
  Vec b(m);
  for (std::size_t i = 0; i < m; ++i) b[i] = problem.constraints[i].rhs;

  // ---- Initial iterates.
  double scale = options.initial_scale;
  if (scale <= 0.0) scale = auto_scale(problem);
  std::vector<Mat> x(num_blocks), sm(num_blocks);
  std::size_t total_dim = 0;
  for (std::size_t l = 0; l < num_blocks; ++l) {
    x[l] = Mat::identity(problem.block_dims[l]) * scale;
    sm[l] = Mat::identity(problem.block_dims[l]) * scale;
    total_dim += problem.block_dims[l];
  }
  Vec f(s, 0.0);
  Vec y(m, 0.0);

  // ---- Warm start: seed (X, y, f) from a previous solve of a structurally
  // identical problem and recompute S = C - At(y) so the dual residual
  // starts near zero. Both cone iterates are blended toward scale * I until
  // strictly positive definite; any mismatch or failed blend degrades to
  // the cold identity start above.
  if (warm_start != nullptr) {
    bool compatible = warm_start->x.size() == num_blocks &&
                      warm_start->y.size() == m &&
                      warm_start->free_vars.size() == s;
    for (std::size_t l = 0; compatible && l < num_blocks; ++l)
      compatible = warm_start->x[l].rows() == problem.block_dims[l] &&
                   warm_start->x[l].cols() == problem.block_dims[l];
    std::vector<Mat> wx(num_blocks), ws(num_blocks);
    if (compatible) {
      for (std::size_t l = 0; compatible && l < num_blocks; ++l) {
        // S seed from the dual side of the candidate y.
        Mat s_seed = Mat::identity(problem.block_dims[l]) * cw[l];
        Vec neg_y = warm_start->y;
        neg_y *= -1.0;
        accumulate_at(index[l], neg_y, s_seed);
        compatible = blend_to_pd(warm_start->x[l], scale, wx[l]) &&
                     blend_to_pd(s_seed, scale, ws[l]);
      }
    }
    if (compatible) {
      x = std::move(wx);
      sm = std::move(ws);
      y = warm_start->y;
      f = warm_start->free_vars;
      sol.warm_started = true;
      if (metrics_enabled()) {
        static Counter& warm =
            MetricsRegistry::instance().counter("sdp.warm.starts");
        warm.add(1);
      }
    } else if (metrics_enabled()) {
      static Counter& rejected =
          MetricsRegistry::instance().counter("sdp.warm.rejected");
      rejected.add(1);
    }
  }

  const auto op_a = [&](const std::vector<Mat>& xs, const Vec& fs) {
    Vec out(m, 0.0);
    for (std::size_t l = 0; l < num_blocks; ++l) {
      const BlockIndex& bi = index[l];
      for (std::size_t k = 0; k < bi.constraint_ids.size(); ++k)
        out[bi.constraint_ids[k]] += inner_with_constraint(bi, k, xs[l]);
    }
    for (std::size_t i = 0; i < m; ++i)
      for (const auto& [idx, coeff] : problem.constraints[i].free_terms)
        out[i] += coeff * fs[idx];
    return out;
  };

  const auto bt_y = [&](const Vec& yv) {
    Vec out(s, 0.0);
    for (std::size_t i = 0; i < m; ++i)
      for (const auto& [idx, coeff] : problem.constraints[i].free_terms)
        out[idx] += coeff * yv[i];
    return out;
  };

  const auto compute_residuals = [&](Residuals& res) {
    res.rp = b - op_a(x, f);
    res.rd.assign(num_blocks, Mat());
    for (std::size_t l = 0; l < num_blocks; ++l) {
      Mat r = Mat::identity(problem.block_dims[l]) * cw[l];
      r -= sm[l];
      // r -= At(y)
      Vec neg_y = y;
      neg_y *= -1.0;
      accumulate_at(index[l], neg_y, r);
      res.rd[l] = std::move(r);
    }
    res.rf = cf - bt_y(y);
    double xs = 0.0;
    for (std::size_t l = 0; l < num_blocks; ++l) xs += frob_inner(x[l], sm[l]);
    res.mu = xs / static_cast<double>(total_dim);
  };

  const double b_norm = 1.0 + b.norm();

  // Stall detector state: the merit must drop by a relative
  // `stall_improvement` at least once per `stall_window` iterations.
  double best_merit = std::numeric_limits<double>::infinity();
  int best_merit_iter = 0;

  Residuals res;
  for (int iter = 0; iter < options.max_iterations; ++iter) {
    sol.iterations = iter + 1;
    if (metrics_enabled()) {
      static Counter& iterations =
          MetricsRegistry::instance().counter("sdp.iterations");
      iterations.add(1);
    }
    if (trace_enabled()) trace_instant("sdp.iteration");

    compute_residuals(res);
    const double p_infeas = res.rp.norm() / b_norm;
    double d_infeas = 0.0;
    for (std::size_t l = 0; l < num_blocks; ++l)
      d_infeas = std::max(d_infeas, res.rd[l].max_abs());
    d_infeas = std::max(d_infeas, res.rf.max_abs());
    const double gap = res.mu;

    sol.primal_infeasibility = p_infeas;
    sol.dual_infeasibility = d_infeas;
    sol.duality_gap = gap;
    if (options.verbose)
      log_info("sdp iter ", iter, " mu=", gap, " p_inf=", p_infeas,
               " d_inf=", d_infeas);

    if (p_infeas < options.tol_feasibility &&
        d_infeas < options.tol_feasibility && gap < options.tol_gap) {
      sol.status = SdpStatus::kConverged;
      break;
    }

    // Wall-clock budget (shared across retries by the caller).
    if (options.wall_clock_budget > 0.0 &&
        budget_sw.seconds() > options.wall_clock_budget) {
      sol.status = SdpStatus::kTimeLimit;
      break;
    }

    // Job-level preemption: a cancellation or job deadline stops the solve
    // here, mid-interior-point, instead of between pipeline stages.
    if (options.control != nullptr && options.control->stop_requested()) {
      sol.status = options.control->cancelled() ? SdpStatus::kCancelled
                                                : SdpStatus::kTimeLimit;
      break;
    }

    // Stall detection on the merit max(p_inf, d_inf, gap).
    const double merit = std::max({p_infeas, d_infeas, gap});
    if (merit < best_merit * (1.0 - options.stall_improvement)) {
      best_merit = merit;
      best_merit_iter = iter;
    } else if (iter - best_merit_iter >= options.stall_window) {
      sol.status = SdpStatus::kStalled;
      if (metrics_enabled()) {
        static Counter& stalls =
            MetricsRegistry::instance().counter("sdp.stalls");
        stalls.add(1);
      }
      break;
    }

    // Fault injection: a suppressed step makes no progress this iteration,
    // so a sustained fault surfaces through the stall detector above.
    if (fault_injection_enabled() &&
        FaultInjector::instance().should_fire(FaultSite::kSdpStall)) {
      if (iter + 1 == options.max_iterations)
        sol.status = SdpStatus::kMaxIterations;
      continue;
    }

    // ---- Factor S blocks and precompute S^{-1}, plus X for step lengths.
    std::vector<Mat> sinv(num_blocks);
    bool ok = true;
    for (std::size_t l = 0; l < num_blocks; ++l) {
      Cholesky cs(sm[l]);
      if (!cs.ok()) {
        ok = false;
        break;
      }
      const Mat linv = cs.lower_inverse();
      sinv[l] = matmul_at_b(linv, linv);  // S^{-1} = L^{-T} L^{-1}
    }
    if (!ok) {
      sol.status = SdpStatus::kNumericalFailure;
      break;
    }

    // ---- Schur complement M_ij = <A_i, sym(X A_j S^{-1})> per block.
    // Columns j fan out over the pool: each constraint kj touching the
    // block owns its W_j = X A_j S^{-1} scratch and its own Schur column,
    // so the writes are disjoint; the block loop stays serial, preserving
    // the per-entry accumulation order regardless of thread count. Small
    // blocks skip the pool entirely (see kParallelSchurFlops below): the
    // fork/join handshake costs more than the assembly, which is what made
    // the bench_parallel sdp_schur workload a slowdown at low thread
    // counts. The gate depends only on the problem shape, so results stay
    // bitwise-identical either way.
    Mat schur(m, m);
    for (std::size_t l = 0; l < num_blocks; ++l) {
      const BlockIndex& bi = index[l];
      const std::size_t nl = problem.block_dims[l];
      const std::size_t nc = bi.constraint_ids.size();
      const auto schur_cols = [&](std::size_t kj_begin, std::size_t kj_end) {
        for (std::size_t kj = kj_begin; kj < kj_end; ++kj) {
          // W = X A_j S^{-1} as a sum of outer products over A_j's entries.
          Mat w(nl, nl);
          for (std::size_t e = bi.entry_begin[kj]; e < bi.entry_begin[kj + 1];
               ++e) {
            const std::size_t r = bi.rows[e];
            const std::size_t c = bi.cols[e];
            const double v = bi.vals[e];
            // v * (X[:,r] Sinv[c,:] + [r != c] X[:,c] Sinv[r,:]).
            for (std::size_t a = 0; a < nl; ++a) {
              const double xa_r = x[l](a, r) * v;
              simd::axpy(w.row_ptr(a), xa_r, sinv[l].row_ptr(c), nl);
            }
            if (r != c) {
              for (std::size_t a = 0; a < nl; ++a) {
                const double xa_c = x[l](a, c) * v;
                simd::axpy(w.row_ptr(a), xa_c, sinv[l].row_ptr(r), nl);
              }
            }
          }
          // M_ij += <A_i, sym(W_j)> down this constraint's Schur column.
          const std::size_t j = bi.constraint_ids[kj];
          for (std::size_t ki = 0; ki < nc; ++ki) {
            const std::size_t i = bi.constraint_ids[ki];
            double acc = 0.0;
            for (std::size_t e = bi.entry_begin[ki];
                 e < bi.entry_begin[ki + 1]; ++e) {
              const std::size_t r = bi.rows[e];
              const std::size_t c = bi.cols[e];
              const double v = bi.vals[e];
              if (r == c)
                acc += v * w(r, r);
              else
                acc += 0.5 * v * (w(r, c) + w(c, r)) * 2.0;
            }
            schur(i, j) += acc;
          }
        }
      };
      // Gate: per-column work is ~nl^2 flops per entry; below the threshold
      // the serial loop beats any dispatch. Calibrated from bench_parallel's
      // sdp_schur workload (nl = 48, nc = 96, ~2^17.8 "flops"), which
      // measured 0.74x through the pool -- so that size and everything
      // smaller stays serial; only substantially larger Schur systems fan
      // out. Columns go to the pool eight at a time: dispatch overhead is
      // per chunk, and a column's output (its own Schur column) is disjoint
      // from every other, so chunking never changes results.
      if (nc * nl * nl < schur_parallel_threshold())
        schur_cols(0, nc);
      else
        parallel_for(nc, 8, schur_cols);
    }
    schur.symmetrize();
    // Tiny ridge to absorb roundoff on nearly dependent rows.
    double diag_max = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      diag_max = std::max(diag_max, schur(i, i));
    for (std::size_t i = 0; i < m; ++i)
      schur(i, i) += 1e-13 * std::max(1.0, diag_max);

    // Robust factorization: a near-singular Schur complement (nearly
    // dependent constraints) gets an escalating ridge before giving up.
    const RobustCholesky rchol_m = robust_cholesky(schur);
    if (!rchol_m.ok()) {
      sol.status = SdpStatus::kNumericalFailure;
      break;
    }
    const Cholesky& chol_m = rchol_m.factor;

    // Free-variable coupling: W = M^{-1} B, T = B' W.
    Mat bmat;  // m x s (dense; s is small)
    Mat w_free;
    Mat t_free;
    const Cholesky* chol_t = nullptr;
    RobustCholesky rchol_t;
    if (s > 0) {
      bmat = Mat(m, s);
      for (std::size_t i = 0; i < m; ++i)
        for (const auto& [idx, coeff] : problem.constraints[i].free_terms)
          bmat(i, idx) += coeff;
      w_free = Mat(m, s);
      for (std::size_t j = 0; j < s; ++j)
        w_free.set_col(j, chol_m.solve(bmat.col(j)));
      t_free = matmul_at_b(bmat, w_free);
      // Ridge for safety (B should have full column rank).
      for (std::size_t j = 0; j < s; ++j) t_free(j, j) += 1e-13;
      rchol_t = robust_cholesky(t_free);
      if (!rchol_t.ok()) {
        sol.status = SdpStatus::kNumericalFailure;
        break;
      }
      chol_t = &rchol_t.factor;
    }

    // Helper: given the complementarity target matrices Z_l (so that
    // dX = Z - sym(X dS S^{-1})), solve for (dy, df, dS, dX).
    const auto solve_direction = [&](const std::vector<Mat>& z,
                                     std::vector<Mat>& dx, Vec& dy, Vec& df,
                                     std::vector<Mat>& ds) {
      // g_i = <A_i, Z - sym(X Rd S^{-1})>.
      Vec g(m, 0.0);
      std::vector<Mat> xrs(num_blocks);
      for (std::size_t l = 0; l < num_blocks; ++l)
        xrs[l] = matmul(matmul(x[l], res.rd[l]), sinv[l]);
      for (std::size_t l = 0; l < num_blocks; ++l) {
        const BlockIndex& bi = index[l];
        for (std::size_t k = 0; k < bi.constraint_ids.size(); ++k) {
          const std::size_t i = bi.constraint_ids[k];
          g[i] += inner_with_constraint(bi, k, z[l]);
          g[i] -= inner_with_constraint(bi, k, xrs[l]);
        }
      }
      Vec rhs1 = res.rp - g;
      const Vec t1 = chol_m.solve(rhs1);
      if (s > 0) {
        const Vec bt1 = matvec_t(bmat, t1);
        df = chol_t->solve(bt1 - res.rf);
        dy = t1 - matvec(w_free, df);
      } else {
        df = Vec(0);
        dy = t1;
      }
      // dS = Rd - At(dy); dX = Z - sym(X dS S^{-1}).
      ds.assign(num_blocks, Mat());
      dx.assign(num_blocks, Mat());
      for (std::size_t l = 0; l < num_blocks; ++l) {
        Mat dsl = res.rd[l];
        Vec neg_dy = dy;
        neg_dy *= -1.0;
        accumulate_at(index[l], neg_dy, dsl);
        Mat xds = matmul(matmul(x[l], dsl), sinv[l]);
        Mat dxl = z[l];
        // dxl -= sym(xds)
        for (std::size_t a = 0; a < dxl.rows(); ++a)
          for (std::size_t bb = 0; bb < dxl.cols(); ++bb)
            dxl(a, bb) -= 0.5 * (xds(a, bb) + xds(bb, a));
        dxl.symmetrize();
        ds[l] = std::move(dsl);
        dx[l] = std::move(dxl);
      }
    };

    // ---- Predictor (affine scaling: Z = -X).
    std::vector<Mat> z(num_blocks);
    for (std::size_t l = 0; l < num_blocks; ++l) {
      z[l] = x[l];
      z[l] *= -1.0;
    }
    std::vector<Mat> dx_aff, ds_aff;
    Vec dy_aff, df_aff;
    solve_direction(z, dx_aff, dy_aff, df_aff, ds_aff);

    double ap_aff = 1.0, ad_aff = 1.0;
    for (std::size_t l = 0; l < num_blocks; ++l) {
      ap_aff = std::min(ap_aff, psd_step_length(x[l], dx_aff[l]));
      ad_aff = std::min(ad_aff, psd_step_length(sm[l], ds_aff[l]));
    }
    ap_aff *= options.step_fraction;
    ad_aff *= options.step_fraction;

    double mu_aff = 0.0;
    for (std::size_t l = 0; l < num_blocks; ++l) {
      Mat xt = x[l];
      xt.axpy(ap_aff, dx_aff[l]);
      Mat st = sm[l];
      st.axpy(ad_aff, ds_aff[l]);
      mu_aff += frob_inner(xt, st);
    }
    mu_aff /= static_cast<double>(total_dim);
    double sigma = std::pow(std::max(0.0, mu_aff / res.mu), 3.0);
    sigma = std::clamp(sigma, 1e-6, 0.99);

    // ---- Corrector: Z = sigma mu S^{-1} - X - sym(dX_aff dS_aff S^{-1}).
    for (std::size_t l = 0; l < num_blocks; ++l) {
      Mat zl = sinv[l] * (sigma * res.mu);
      zl -= x[l];
      const Mat corr = matmul(matmul(dx_aff[l], ds_aff[l]), sinv[l]);
      for (std::size_t a = 0; a < zl.rows(); ++a)
        for (std::size_t bb = 0; bb < zl.cols(); ++bb)
          zl(a, bb) -= 0.5 * (corr(a, bb) + corr(bb, a));
      z[l] = std::move(zl);
    }
    std::vector<Mat> dx, ds;
    Vec dy, df;
    solve_direction(z, dx, dy, df, ds);

    double ap = 1.0, ad = 1.0;
    for (std::size_t l = 0; l < num_blocks; ++l) {
      ap = std::min(ap, psd_step_length(x[l], dx[l]));
      ad = std::min(ad, psd_step_length(sm[l], ds[l]));
    }
    ap *= options.step_fraction;
    ad *= options.step_fraction;
    if (ap < 1e-10 && ad < 1e-10) {
      // Both step lengths collapsed: the iteration can no longer move, which
      // is a stall (often near-infeasibility), not corrupted arithmetic.
      sol.status = SdpStatus::kStalled;
      if (metrics_enabled()) {
        static Counter& stalls =
            MetricsRegistry::instance().counter("sdp.stalls");
        stalls.add(1);
      }
      break;
    }

    for (std::size_t l = 0; l < num_blocks; ++l) {
      x[l].axpy(ap, dx[l]);
      x[l].symmetrize();
      sm[l].axpy(ad, ds[l]);
      sm[l].symmetrize();
    }
    if (s > 0) f.axpy(ap, df);
    y.axpy(ad, dy);

    if (iter + 1 == options.max_iterations)
      sol.status = SdpStatus::kMaxIterations;
  }

  sol.x = std::move(x);
  sol.free_vars = std::move(f);
  sol.y = std::move(y);
  double obj = 0.0;
  for (std::size_t l = 0; l < num_blocks; ++l) obj += cw[l] * sol.x[l].trace();
  obj += dot(cf, sol.free_vars);
  sol.primal_objective = obj;
  return sol;
}

}  // namespace

SdpWarmStart make_warm_start(const SdpSolution& solution) {
  SdpWarmStart warm;
  warm.x = solution.x;
  warm.y = solution.y;
  warm.free_vars = solution.free_vars;
  return warm;
}

SdpSolution solve_sdp(const SdpProblem& problem, const SdpOptions& options,
                      const SdpWarmStart* warm_start) {
  TraceSpan span("sdp.solve");
  if (metrics_enabled()) {
    static Counter& solves = MetricsRegistry::instance().counter("sdp.solves");
    solves.add(1);
  }
  Stopwatch budget_sw;
  SdpSolution best = solve_sdp_once(problem, options, budget_sw, warm_start);
  if (best.status == SdpStatus::kConverged ||
      best.status == SdpStatus::kInfeasible ||
      best.status == SdpStatus::kTimeLimit ||
      best.status == SdpStatus::kCancelled)
    return best;

  // Bounded retry-and-rescale: restart from scaled initial iterates, probing
  // above then below the base scale. Infeasible-start interior-point methods
  // are sensitive to the starting point, so a stalled instance often
  // converges cleanly from a different scale.
  const double base_scale =
      (options.initial_scale > 0.0) ? options.initial_scale
                                    : auto_scale(problem);
  const auto merit_of = [](const SdpSolution& s) {
    return std::max({s.primal_infeasibility, s.dual_infeasibility,
                     s.duality_gap});
  };
  for (int retry = 1; retry <= options.max_retries; ++retry) {
    if (options.wall_clock_budget > 0.0 &&
        budget_sw.seconds() > options.wall_clock_budget)
      break;
    if (options.control != nullptr && options.control->stop_requested())
      break;
    SdpOptions retry_options = options;
    const double factor =
        std::pow(options.retry_scale_factor, (retry + 1) / 2);
    retry_options.initial_scale =
        (retry % 2 == 1) ? base_scale * factor : base_scale / factor;
    log_info("sdp: ", to_string(best.status), " after ", best.iterations,
             " iterations; retry ", retry, "/", options.max_retries,
             " at scale ", retry_options.initial_scale);
    if (metrics_enabled()) {
      static Counter& restarts =
          MetricsRegistry::instance().counter("sdp.restarts");
      restarts.add(1);
    }
    // Retries restart cold: a warm seed that led to a stall or numerical
    // failure is not worth re-trying from.
    SdpSolution next = solve_sdp_once(problem, retry_options, budget_sw,
                                      nullptr);
    next.restarts = retry;
    if (next.status == SdpStatus::kConverged ||
        next.status == SdpStatus::kInfeasible)
      return next;
    if (merit_of(next) < merit_of(best)) best = next;
  }
  return best;
}


void hash_append(Fnv1a& h, const SdpOptions& o) {
  hash_append(h, o.max_iterations);
  hash_append(h, o.tol_feasibility);
  hash_append(h, o.tol_gap);
  hash_append(h, o.step_fraction);
  hash_append(h, o.initial_scale);
  hash_append(h, o.stall_window);
  hash_append(h, o.stall_improvement);
  hash_append(h, o.max_retries);
  hash_append(h, o.retry_scale_factor);
  hash_append(h, o.wall_clock_budget);
}

}  // namespace scs
