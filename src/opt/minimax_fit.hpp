// Discrete linear minimax (Chebyshev) fitting -- the scenario program (8):
//
//     min_c  e   s.t.  |u_i - phi(x_i)' c| <= e  for all K samples,
//
// solved at scale by Lawson's iteratively reweighted least squares followed
// by an exact active-set exchange refinement (each exchange step solves a
// small LP over the current support set with the revised simplex).
//
// The returned error is always the exact achieved max |residual| over all K
// samples, i.e. a feasible objective value of (8); when `exact` is true it
// matches the LP optimum to within `exchange_tol`.
#pragma once

#include <string>

#include "math/mat.hpp"
#include "math/vec.hpp"
#include "util/cancellation.hpp"

namespace scs {

struct MinimaxOptions {
  int lawson_iterations = 40;
  int exchange_rounds = 60;
  int exchange_add_per_round = 8;
  double exchange_tol = 1e-7;  // |e_full - e_support| acceptance threshold
  double ridge = 1e-10;        // Tikhonov jitter for the weighted LS solves
  /// Job-level preemption (borrowed, may be null): checked between Lawson
  /// iterations / exchange rounds and forwarded into the support LPs. A
  /// preempted fit returns ok = false. Runtime plumbing only -- never hashed.
  const JobControl* control = nullptr;
};

struct MinimaxFitResult {
  Vec coefficients;       // c*
  double error = 0.0;     // max_i |u_i - phi_i' c*| over all samples
  double support_error = 0.0;  // LP optimum on the final support set
  bool exact = false;     // exchange converged to the global LP optimum
  /// False when no usable Chebyshev iterate could be produced at all (e.g.
  /// the weighted least-squares core failed even with regularization, or the
  /// targets contain non-finite values). Callers should fall back to a plain
  /// least-squares fit; minimax_fit never throws for numeric reasons.
  bool ok = true;
  std::string note;       // diagnostic for !ok / degraded runs
  int lawson_iterations = 0;
  int exchange_rounds = 0;
  std::vector<std::size_t> support;  // active sample indices at optimum
};

/// Fit: design is K x v (rows are basis evaluations phi(x_i)), targets u_i.
/// Requires K >= 1 and v >= 1; K >= v is needed for a meaningful fit.
MinimaxFitResult minimax_fit(const Mat& design, const Vec& targets,
                             const MinimaxOptions& options = {});

}  // namespace scs
