#include "opt/simplex.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/stopwatch.hpp"

namespace scs {

const char* to_string(LpStatus status) {
  switch (status) {
    case LpStatus::kOptimal:
      return "optimal";
    case LpStatus::kInfeasible:
      return "infeasible";
    case LpStatus::kUnbounded:
      return "unbounded";
    case LpStatus::kIterationLimit:
      return "iteration-limit";
    case LpStatus::kTimeLimit:
      return "time-limit";
    case LpStatus::kCancelled:
      return "cancelled";
  }
  return "?";
}

namespace {

/// Internal revised-simplex core over an explicit column matrix. The basis
/// inverse is maintained densely and refreshed by elementary pivots.
class SimplexCore {
 public:
  SimplexCore(const Mat& a, const Vec& b, const Vec& c, double tol,
              const Stopwatch* budget_sw = nullptr,
              double budget_seconds = 0.0, bool force_bland = false,
              const JobControl* control = nullptr)
      : a_(a),
        b_(b),
        c_(c),
        m_(a.rows()),
        n_(a.cols()),
        tol_(tol),
        budget_sw_(budget_sw),
        budget_seconds_(budget_seconds),
        force_bland_(force_bland),
        control_(control) {}

  /// Run from the given starting basis. Returns the termination status.
  LpStatus run(std::vector<std::size_t>& basis, Mat& binv, int max_iters,
               int* iterations_used) {
    int degenerate_streak = 0;
    for (int it = 0; it < max_iters; ++it) {
      if (iterations_used != nullptr) *iterations_used = it;
      // Wall-clock budget and job-level preemption, checked coarsely to keep
      // the loop lean.
      if ((it & 63) == 0) {
        if (budget_seconds_ > 0.0 && budget_sw_ != nullptr &&
            budget_sw_->seconds() > budget_seconds_)
          return LpStatus::kTimeLimit;
        if (control_ != nullptr && control_->stop_requested())
          return control_->cancelled() ? LpStatus::kCancelled
                                       : LpStatus::kTimeLimit;
      }
      // Duals y = c_B' B^{-1}; reduced costs r_j = c_j - y' A_j.
      Vec cb(m_);
      for (std::size_t i = 0; i < m_; ++i) cb[i] = c_[basis[i]];
      const Vec y = matvec_t(binv, cb);

      // Pricing: Dantzig rule normally; Bland's rule after a degenerate
      // streak (or from the start, in the anti-cycling fallback) to
      // guarantee termination.
      const bool bland =
          force_bland_ || degenerate_streak > 2 * static_cast<int>(m_) + 20;
      std::size_t enter = n_;
      double best = -tol_;
      for (std::size_t j = 0; j < n_; ++j) {
        if (is_basic(basis, j)) continue;
        double rj = c_[j];
        for (std::size_t i = 0; i < m_; ++i) rj -= y[i] * a_(i, j);
        if (bland) {
          if (rj < -tol_) {
            enter = j;
            break;
          }
        } else if (rj < best) {
          best = rj;
          enter = j;
        }
      }
      if (enter == n_) return LpStatus::kOptimal;

      // Direction d = B^{-1} A_enter.
      Vec col(m_);
      for (std::size_t i = 0; i < m_; ++i) col[i] = a_(i, enter);
      const Vec d = matvec(binv, col);
      const Vec xb = matvec(binv, b_);

      // Ratio test.
      std::size_t leave = m_;
      double best_ratio = std::numeric_limits<double>::infinity();
      for (std::size_t i = 0; i < m_; ++i) {
        if (d[i] > tol_) {
          const double ratio = xb[i] / d[i];
          if (ratio < best_ratio - tol_ ||
              (ratio < best_ratio + tol_ &&
               (leave == m_ || basis[i] < basis[leave]))) {
            best_ratio = ratio;
            leave = i;
          }
        }
      }
      if (leave == m_) return LpStatus::kUnbounded;
      degenerate_streak = (best_ratio <= tol_) ? degenerate_streak + 1 : 0;
      if (metrics_enabled()) {
        static Counter& pivots =
            MetricsRegistry::instance().counter("simplex.pivots");
        pivots.add(1);
      }

      // Pivot: update basis and basis inverse.
      basis[leave] = enter;
      const double piv = d[leave];
      for (std::size_t j = 0; j < m_; ++j) binv(leave, j) /= piv;
      for (std::size_t i = 0; i < m_; ++i) {
        if (i == leave) continue;
        const double f = d[i];
        if (f == 0.0) continue;
        for (std::size_t j = 0; j < m_; ++j)
          binv(i, j) -= f * binv(leave, j);
      }
    }
    return LpStatus::kIterationLimit;
  }

 private:
  static bool is_basic(const std::vector<std::size_t>& basis, std::size_t j) {
    return std::find(basis.begin(), basis.end(), j) != basis.end();
  }

  const Mat& a_;
  const Vec& b_;
  const Vec& c_;
  std::size_t m_, n_;
  double tol_;
  const Stopwatch* budget_sw_ = nullptr;
  double budget_seconds_ = 0.0;
  bool force_bland_ = false;
  const JobControl* control_ = nullptr;
};

/// Run one phase; when Dantzig pricing exhausts the iteration budget and the
/// fallback is enabled, rewind to the phase's starting basis and rerun under
/// pure Bland's rule (degenerate pivots cannot cycle there).
LpStatus run_phase(const Mat& a, const Vec& b, const Vec& c,
                   const LpOptions& options, const Stopwatch& budget_sw,
                   std::vector<std::size_t>& basis, Mat& binv,
                   int* total_iterations) {
  const std::vector<std::size_t> basis0 = basis;
  const Mat binv0 = binv;
  int iters = 0;
  SimplexCore core(a, b, c, options.tol, &budget_sw,
                   options.wall_clock_seconds, false, options.control);
  LpStatus st = core.run(basis, binv, options.max_iterations, &iters);
  *total_iterations += iters;
  if (st == LpStatus::kIterationLimit && options.bland_restart) {
    if (metrics_enabled()) {
      static Counter& restarts =
          MetricsRegistry::instance().counter("simplex.bland_restarts");
      restarts.add(1);
    }
    basis = basis0;
    binv = binv0;
    SimplexCore bland(a, b, c, options.tol, &budget_sw,
                      options.wall_clock_seconds, true, options.control);
    st = bland.run(basis, binv, options.max_iterations, &iters);
    *total_iterations += iters;
  }
  return st;
}

}  // namespace

LpSolution solve_lp(const LpProblem& problem, const LpOptions& options) {
  const std::size_t m = problem.a.rows();
  const std::size_t n = problem.a.cols();
  SCS_REQUIRE(problem.b.size() == m && problem.c.size() == n,
              "solve_lp: dimension mismatch");
  LpSolution sol;

  // Normalize to b >= 0 by flipping rows.
  Mat a = problem.a;
  Vec b = problem.b;
  for (std::size_t i = 0; i < m; ++i) {
    if (b[i] < 0.0) {
      b[i] = -b[i];
      for (std::size_t j = 0; j < n; ++j) a(i, j) = -a(i, j);
    }
  }

  // ---- Phase I: minimize the sum of artificials.
  Mat a1(m, n + m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a1(i, j) = a(i, j);
    a1(i, n + i) = 1.0;
  }
  Vec c1(n + m, 0.0);
  for (std::size_t i = 0; i < m; ++i) c1[n + i] = 1.0;

  std::vector<std::size_t> basis(m);
  for (std::size_t i = 0; i < m; ++i) basis[i] = n + i;
  Mat binv = Mat::identity(m);

  Stopwatch budget_sw;
  {
    const LpStatus st =
        run_phase(a1, b, c1, options, budget_sw, basis, binv, &sol.iterations);
    if (st == LpStatus::kIterationLimit || st == LpStatus::kTimeLimit ||
        st == LpStatus::kCancelled) {
      sol.status = st;
      return sol;
    }
  }
  // Check Phase-I objective.
  {
    const Vec xb = matvec(binv, b);
    double art_sum = 0.0;
    for (std::size_t i = 0; i < m; ++i)
      if (basis[i] >= n) art_sum += xb[i];
    if (art_sum > 1e-7) {
      sol.status = LpStatus::kInfeasible;
      return sol;
    }
  }
  // Drive remaining (degenerate) artificials out of the basis if possible.
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) continue;
    // Find a non-basic structural column with a nonzero pivot in row i.
    bool pivoted = false;
    for (std::size_t j = 0; j < n && !pivoted; ++j) {
      if (std::find(basis.begin(), basis.end(), j) != basis.end()) continue;
      double dij = 0.0;
      for (std::size_t k = 0; k < m; ++k) dij += binv(i, k) * a(k, j);
      if (std::fabs(dij) > 1e-8) {
        // Pivot j into row i.
        Vec col(m);
        for (std::size_t k = 0; k < m; ++k) col[k] = a(k, j);
        const Vec d = matvec(binv, col);
        basis[i] = j;
        const double piv = d[i];
        for (std::size_t jj = 0; jj < m; ++jj) binv(i, jj) /= piv;
        for (std::size_t k = 0; k < m; ++k) {
          if (k == i) continue;
          const double f = d[k];
          if (f == 0.0) continue;
          for (std::size_t jj = 0; jj < m; ++jj)
            binv(k, jj) -= f * binv(i, jj);
        }
        pivoted = true;
      }
    }
    // If no pivot exists the row is redundant; the artificial stays basic at
    // level zero, which Phase II tolerates (its cost is forced to zero).
  }

  // ---- Phase II on the original objective (artificial columns frozen).
  Mat a2(m, n + m);
  for (std::size_t i = 0; i < m; ++i) {
    for (std::size_t j = 0; j < n; ++j) a2(i, j) = a(i, j);
    a2(i, n + i) = 1.0;
  }
  Vec c2(n + m, 0.0);
  for (std::size_t j = 0; j < n; ++j) c2[j] = problem.c[j];
  // Large cost pins any residual artificial at zero.
  double big = 1.0;
  for (std::size_t j = 0; j < n; ++j) big += std::fabs(problem.c[j]);
  for (std::size_t i = 0; i < m; ++i) c2[n + i] = 1e6 * big;

  {
    const LpStatus st =
        run_phase(a2, b, c2, options, budget_sw, basis, binv, &sol.iterations);
    if (st != LpStatus::kOptimal) {
      sol.status = st;
      return sol;
    }
  }

  // Extract the solution.
  sol.x = Vec(n, 0.0);
  const Vec xb = matvec(binv, b);
  for (std::size_t i = 0; i < m; ++i) {
    if (basis[i] < n) sol.x[basis[i]] = std::max(0.0, xb[i]);
  }
  sol.objective = dot(problem.c, sol.x);
  Vec cb(m);
  for (std::size_t i = 0; i < m; ++i) cb[i] = c2[basis[i]];
  Vec y = matvec_t(binv, cb);
  // Undo the row flips in the duals.
  for (std::size_t i = 0; i < m; ++i)
    if (problem.b[i] < 0.0) y[i] = -y[i];
  sol.dual = y;
  sol.basis = basis;
  sol.status = LpStatus::kOptimal;
  return sol;
}

}  // namespace scs
