// Dense two-phase revised simplex for standard-form linear programs:
//
//     min c'x   s.t.  A x = b,  x >= 0.
//
// Sized for the small exact LPs inside the minimax exchange refinement
// (tens of rows/columns); the large scenario programs never reach this
// solver directly -- see minimax_fit.hpp.
#pragma once

#include <vector>

#include "math/mat.hpp"
#include "math/vec.hpp"
#include "util/cancellation.hpp"

namespace scs {

enum class LpStatus {
  kOptimal,
  kInfeasible,
  kUnbounded,
  kIterationLimit,
  kTimeLimit,   // wall_clock_seconds budget or job deadline exhausted
  kCancelled,   // LpOptions::control requested cancellation
};

const char* to_string(LpStatus status);

struct LpProblem {
  Mat a;  // m x n
  Vec b;  // length m
  Vec c;  // length n
};

struct LpSolution {
  LpStatus status = LpStatus::kIterationLimit;
  Vec x;
  double objective = 0.0;
  Vec dual;  // y with A' y <= c at optimality
  std::vector<std::size_t> basis;
  int iterations = 0;
};

struct LpOptions {
  int max_iterations = 20000;
  double tol = 1e-9;
  /// Wall-clock budget in seconds for the whole solve (both phases and the
  /// Bland fallback); 0 = unlimited.
  double wall_clock_seconds = 0.0;
  /// When Dantzig pricing hits the iteration limit (heavy degeneracy /
  /// cycling), restart the failed phase once under pure Bland's rule, which
  /// terminates by construction.
  bool bland_restart = true;
  /// Job-level preemption (borrowed, may be null): polled on the same coarse
  /// cadence as the wall-clock budget so a cancellation or job deadline
  /// stops the solve mid-phase. Runtime plumbing only -- never hashed.
  const JobControl* control = nullptr;
};

/// Solve a standard-form LP. Rows of A should be linearly independent;
/// redundant-but-consistent rows are tolerated (artificials pinned at zero).
LpSolution solve_lp(const LpProblem& problem, const LpOptions& options = {});

}  // namespace scs
