// Block-diagonal semidefinite programming with free variables, solved by an
// infeasible-start primal-dual interior-point method (HKM search direction
// with Mehrotra predictor-corrector).
//
// Primal form:
//
//   min  sum_l w_l tr(X_l) + c_f' f
//   s.t. sum_l <A_il, X_l> + (B f)_i = b_i,   i = 1..m
//        X_l >= 0 (PSD),  f free,
//
// which is exactly the shape produced by the SOS compiler for the barrier
// program (12): one PSD block per Gram matrix, free variables for the
// barrier coefficients b, and one equality per matched monomial.
//
// The paper offloads this step to PENBMI / LMI solvers; this in-repo solver
// is the substitution documented in DESIGN.md.
#pragma once

#include <vector>

#include "math/mat.hpp"
#include "math/vec.hpp"
#include "util/cancellation.hpp"

namespace scs {

class Fnv1a;

/// One entry of a symmetric constraint matrix: A(row,col) = A(col,row) =
/// value (specify each unordered pair once; row <= col recommended).
struct SdpEntry {
  std::size_t block = 0;
  std::size_t row = 0;
  std::size_t col = 0;
  double value = 0.0;
};

struct SdpConstraint {
  std::vector<SdpEntry> entries;
  std::vector<std::pair<std::size_t, double>> free_terms;  // (index, coeff)
  double rhs = 0.0;
};

struct SdpProblem {
  std::vector<std::size_t> block_dims;
  std::size_t num_free = 0;
  std::vector<SdpConstraint> constraints;
  /// Per-block objective weight w_l (C_l = w_l * I). A small uniform weight
  /// turns a feasibility problem into a well-posed trace minimization.
  std::vector<double> block_obj_weight;
  Vec free_obj;  // optional; zero if empty
};

enum class SdpStatus {
  kConverged,          // small residuals and duality gap
  kMaxIterations,      // ran out of iterations (inspect residuals)
  kNumericalFailure,   // lost positive definiteness / factorization failed
  kInfeasible,         // structurally infeasible (inconsistent empty row)
  kStalled,            // no merit progress over a full stall window, or the
                       // step lengths collapsed (structured, not garbage)
  kTimeLimit,          // wall_clock_budget / job deadline exhausted mid-solve
  kCancelled,          // SdpOptions::control requested cancellation
};

const char* to_string(SdpStatus status);

struct SdpSolution {
  SdpStatus status = SdpStatus::kNumericalFailure;
  std::vector<Mat> x;  // primal PSD blocks
  Vec free_vars;
  Vec y;               // dual multipliers per constraint
  double primal_objective = 0.0;
  double primal_infeasibility = 0.0;  // ||b - A(X) - Bf|| / (1 + ||b||)
  double dual_infeasibility = 0.0;
  double duality_gap = 0.0;           // normalized <X, S>
  int iterations = 0;
  /// Rescale-and-retry restarts consumed before this solution was produced.
  int restarts = 0;
  /// True when the first interior-point run was seeded from an SdpWarmStart
  /// (retries always restart cold).
  bool warm_started = false;
};

/// Warm-start seed: the final iterates of a previous solve of a structurally
/// identical problem (same block dims, free-variable count, constraint
/// count). The solver blends the seed toward the cold identity start just
/// far enough to restore strict positive definiteness, so a seed from a
/// nearby (perturbed) problem lands deep inside the cone instead of on its
/// boundary. Shape mismatches fall back to a cold start.
struct SdpWarmStart {
  std::vector<Mat> x;  // primal PSD blocks
  Vec y;               // dual multipliers
  Vec free_vars;       // may be empty when the problem has no free vars
};

/// Package a converged solution as a seed for re-solving a perturbed
/// instance of the same program structure.
SdpWarmStart make_warm_start(const SdpSolution& solution);

struct SdpOptions {
  int max_iterations = 100;
  double tol_feasibility = 1e-7;
  double tol_gap = 1e-7;
  double step_fraction = 0.98;
  double initial_scale = 0.0;  // 0 = auto from problem data
  bool verbose = false;

  // ---- Robustness controls.
  /// Stall detector: no relative merit improvement of at least
  /// `stall_improvement` over `stall_window` consecutive iterations reports
  /// kStalled instead of grinding to kMaxIterations.
  int stall_window = 15;
  double stall_improvement = 0.05;
  /// Bounded retry-and-rescale: after kStalled / kNumericalFailure the solve
  /// restarts with the initial scale multiplied by `retry_scale_factor`
  /// (alternating above / below the base scale), up to `max_retries` times.
  int max_retries = 2;
  double retry_scale_factor = 8.0;
  /// Wall-clock budget in seconds for the whole solve including retries;
  /// 0 = unlimited. Exceeding it reports kTimeLimit.
  double wall_clock_budget = 0.0;
  /// Job-level preemption (borrowed, may be null): checked every iteration,
  /// so a cancellation or job deadline stops the solve mid-interior-point
  /// instead of waiting for the constructed budget above. Runtime plumbing
  /// only -- deliberately excluded from hash_append (two runs differing
  /// only in their control share cache keys and, absent a stop, results).
  const JobControl* control = nullptr;
};

/// Solve. `warm_start` (optional, borrowed for the duration of the call)
/// seeds the first interior-point run; retries restart cold. A seed is a
/// hint, never a correctness input: an incompatible or badly conditioned
/// seed degrades to the cold start path.
SdpSolution solve_sdp(const SdpProblem& problem, const SdpOptions& options = {},
                      const SdpWarmStart* warm_start = nullptr);

/// Work threshold (touching-constraint count x block dim^2) at or above
/// which the Schur-complement assembly fans its columns out over the thread
/// pool; smaller blocks assemble serially, where the fork/join handshake
/// would cost more than the work. The gate depends only on the problem
/// shape, and column outputs are disjoint, so results are bitwise-identical
/// either way.
std::size_t schur_parallel_threshold();

/// Bench/test hook (thread-local): override the Schur parallel threshold --
/// 0 forces the pooled path for every size, SIZE_MAX forces serial. Pass
/// `reset_schur_parallel_threshold()` to restore the built-in default.
void set_schur_parallel_threshold(std::size_t flops);
void reset_schur_parallel_threshold();

void hash_append(Fnv1a& h, const SdpOptions& o);

}  // namespace scs
