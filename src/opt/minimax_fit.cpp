#include "opt/minimax_fit.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>

#include "math/cholesky.hpp"
#include "math/robust_solve.hpp"
#include "opt/simplex.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace scs {

namespace {

/// Residuals r = targets - design * c.
Vec residuals(const Mat& design, const Vec& targets, const Vec& c) {
  Vec r = targets;
  r -= matvec(design, c);
  return r;
}

/// Weighted least squares via normal equations, solved through the robust
/// layer: a severely ill-conditioned basis gets diagonal-regularization
/// retries plus one round of iterative refinement instead of an exception.
/// `ok()` is false only when even the regularized factorization failed.
LinearSolveReport weighted_ls(const Mat& design, const Vec& targets,
                              const Vec& w, double ridge) {
  const std::size_t v = design.cols();
  Mat g(v, v);
  Vec rhs(v, 0.0);
  for (std::size_t i = 0; i < design.rows(); ++i) {
    const double wi = w[i];
    if (wi == 0.0) continue;
    const double* row = design.row_ptr(i);
    for (std::size_t a = 0; a < v; ++a) {
      const double wa = wi * row[a];
      rhs[a] += wa * targets[i];
      double* grow = g.row_ptr(a);
      for (std::size_t bcol = a; bcol < v; ++bcol) grow[bcol] += wa * row[bcol];
    }
  }
  // Mirror the upper triangle and add the ridge.
  for (std::size_t a = 0; a < v; ++a) {
    g(a, a) += ridge;
    for (std::size_t bcol = a + 1; bcol < v; ++bcol) g(bcol, a) = g(a, bcol);
  }
  return robust_solve_spd(g, rhs);
}

/// Exact minimax LP over a support subset. Returns (c, e) solving
///   min e  s.t. |u_i - phi_i' c| <= e,  i in support.
struct SupportSolution {
  Vec c;
  double e = 0.0;
  bool ok = false;
};

SupportSolution solve_support_lp(const Mat& design, const Vec& targets,
                                 const std::vector<std::size_t>& support,
                                 const JobControl* control) {
  const std::size_t v = design.cols();
  const std::size_t s = support.size();
  // Variables: c+ (v), c- (v), e (1), slacks (2s). Rows: 2s.
  //   phi' (c+ - c-) - e + s1 = u      (phi'c - u <= e)
  //  -phi' (c+ - c-) - e + s2 = -u     (u - phi'c <= e)
  const std::size_t ncols = 2 * v + 1 + 2 * s;
  LpProblem lp;
  lp.a = Mat(2 * s, ncols);
  lp.b = Vec(2 * s);
  lp.c = Vec(ncols, 0.0);
  lp.c[2 * v] = 1.0;  // minimize e
  for (std::size_t k = 0; k < s; ++k) {
    const double* row = design.row_ptr(support[k]);
    const double u = targets[support[k]];
    for (std::size_t j = 0; j < v; ++j) {
      lp.a(2 * k, j) = row[j];
      lp.a(2 * k, v + j) = -row[j];
      lp.a(2 * k + 1, j) = -row[j];
      lp.a(2 * k + 1, v + j) = row[j];
    }
    lp.a(2 * k, 2 * v) = -1.0;
    lp.a(2 * k + 1, 2 * v) = -1.0;
    lp.a(2 * k, 2 * v + 1 + 2 * k) = 1.0;
    lp.a(2 * k + 1, 2 * v + 1 + 2 * k + 1) = 1.0;
    lp.b[2 * k] = u;
    lp.b[2 * k + 1] = -u;
  }
  LpOptions lp_options;
  lp_options.control = control;
  const LpSolution sol = solve_lp(lp, lp_options);
  SupportSolution out;
  if (sol.status != LpStatus::kOptimal) return out;
  out.c = Vec(v);
  for (std::size_t j = 0; j < v; ++j) out.c[j] = sol.x[j] - sol.x[v + j];
  out.e = sol.x[2 * v];
  out.ok = true;
  return out;
}

}  // namespace

MinimaxFitResult minimax_fit(const Mat& design, const Vec& targets,
                             const MinimaxOptions& options) {
  const std::size_t k_samples = design.rows();
  const std::size_t v = design.cols();
  SCS_REQUIRE(k_samples >= 1 && v >= 1, "minimax_fit: empty problem");
  SCS_REQUIRE(targets.size() == k_samples, "minimax_fit: target size mismatch");

  MinimaxFitResult result;

  // A fit that starts preempted ends preempted: bail before the first
  // normal-equation solve (mid-loop stops are handled below).
  if (stop_requested(options.control)) {
    result.ok = false;
    result.note = "preempted before fitting";
    result.coefficients = Vec(v, 0.0);
    result.error = std::numeric_limits<double>::infinity();
    return result;
  }

  // Non-finite targets (upstream evaluation blow-ups, injected NaNs) poison
  // every normal-equation solve; surface a structured failure instead.
  for (std::size_t i = 0; i < k_samples; ++i) {
    if (!std::isfinite(targets[i])) {
      result.ok = false;
      result.note = "non-finite target at sample " + std::to_string(i);
      result.coefficients = Vec(v, 0.0);
      result.error = std::numeric_limits<double>::infinity();
      return result;
    }
  }

  // ---- Stage 1: Lawson IRLS toward the Chebyshev solution.
  Vec w(k_samples, 1.0 / static_cast<double>(k_samples));
  LinearSolveReport ls = weighted_ls(design, targets, w, options.ridge);
  if (!ls.ok()) {
    result.ok = false;
    result.note = "weighted least-squares core failed even with "
                  "regularization";
    result.coefficients = Vec(v, 0.0);
    result.error = targets.max_abs();
    return result;
  }
  Vec c = std::move(ls.x);
  double prev_e = std::numeric_limits<double>::infinity();
  for (int it = 0; it < options.lawson_iterations; ++it) {
    if (stop_requested(options.control)) {
      result.note = "preempted during Lawson refinement; kept last iterate";
      break;
    }
    const Vec r = residuals(design, targets, c);
    const double e = r.max_abs();
    result.lawson_iterations = it + 1;
    if (e < 1e-14) break;  // exact interpolation
    if (std::fabs(prev_e - e) < 1e-12 * std::max(1.0, e)) break;
    prev_e = e;
    // Lawson update: w_i <- w_i * |r_i|, renormalized.
    double sum = 0.0;
    for (std::size_t i = 0; i < k_samples; ++i) {
      w[i] *= std::fabs(r[i]);
      sum += w[i];
    }
    if (sum <= 0.0) break;
    for (auto& wi : w) wi /= sum;
    LinearSolveReport step = weighted_ls(design, targets, w, options.ridge);
    if (!step.ok()) {
      // Keep the last good iterate; the exchange stage can still refine it.
      result.note = "Lawson step " + std::to_string(it) +
                    " lost the normal equations; kept previous iterate";
      break;
    }
    c = std::move(step.x);
  }

  // ---- Stage 2: exchange refinement with exact support LPs.
  Vec r = residuals(design, targets, c);
  double e_full = r.max_abs();
  std::set<std::size_t> support;
  {
    // Seed with the samples of largest residual.
    std::vector<std::size_t> idx(k_samples);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    const std::size_t seed =
        std::min<std::size_t>(k_samples, 3 * (v + 1));
    std::partial_sort(idx.begin(), idx.begin() + seed, idx.end(),
                      [&r](std::size_t a, std::size_t b) {
                        return std::fabs(r[a]) > std::fabs(r[b]);
                      });
    support.insert(idx.begin(), idx.begin() + seed);
  }

  double e_support = 0.0;
  for (int round = 0; round < options.exchange_rounds; ++round) {
    if (stop_requested(options.control)) {
      result.note = "preempted during exchange refinement; kept best iterate";
      break;
    }
    result.exchange_rounds = round + 1;
    const std::vector<std::size_t> sup(support.begin(), support.end());
    const SupportSolution ss =
        solve_support_lp(design, targets, sup, options.control);
    if (!ss.ok) break;  // fall back to the best iterate found so far
    const Vec r2 = residuals(design, targets, ss.c);
    const double e2 = r2.max_abs();
    if (e2 < e_full) {
      c = ss.c;
      r = r2;
      e_full = e2;
    }
    e_support = ss.e;
    // e_support is a lower bound on the scenario optimum (subset problem);
    // when the achieved full error matches it, the solution is LP-optimal.
    if (e2 <= ss.e + options.exchange_tol) {
      c = ss.c;
      r = r2;
      e_full = e2;
      result.exact = true;
      break;
    }
    // Add the worst violators to the support.
    std::vector<std::size_t> idx(k_samples);
    std::iota(idx.begin(), idx.end(), std::size_t{0});
    const std::size_t add = std::min<std::size_t>(
        k_samples, static_cast<std::size_t>(options.exchange_add_per_round));
    std::partial_sort(idx.begin(), idx.begin() + add, idx.end(),
                      [&r2](std::size_t a, std::size_t b) {
                        return std::fabs(r2[a]) > std::fabs(r2[b]);
                      });
    bool grew = false;
    for (std::size_t i = 0; i < add; ++i)
      grew |= support.insert(idx[i]).second;
    if (!grew) break;  // support saturated; e_full is our best answer
  }

  result.coefficients = c;
  result.error = e_full;
  result.support_error = e_support;
  // Report the active samples (residual within tolerance of the max).
  for (std::size_t i = 0; i < k_samples; ++i)
    if (std::fabs(r[i]) >= e_full - 1e-9 * std::max(1.0, e_full))
      result.support.push_back(i);
  return result;
}

}  // namespace scs
