// Independent certificate checker: re-validates a VERIFIED synthesis result
// from nothing but the system, the controller, and the certificate itself.
//
// validate_barrier (stage 4) runs inside the pipeline and shares its Rng
// discipline and tolerances with the code that produced the certificate; a
// bug there could systematically excuse the SOS stage's mistakes. This
// checker is the fuzz campaign's backstop (examples/fuzz_cli): it reuses no
// solver state, draws from its own seed, and checks the three barrier
// conditions of Theorem 1 on a dense grid plus Monte-Carlo points, with
// interval-padded margins:
//
//   (i)   B(x) >= 0            on Theta
//   (ii)  B(x) <  0            on X_u
//   (iii) L_f B(x) > 0         on the zero level set of B within Psi
//
// plus the lambda identity the Putinar program actually certifies,
//
//   (ii') L_f B(x) - lambda(x) B(x) >= rho   on Psi,
//
// which is strictly stronger than (iii) and is what makes a tampered
// lambda detectable at all. The (iii) band has finite width, and inside it
// the theorem only bounds L_f B by lambda(x)B(x) + rho -- so when lambda is
// available the band check evaluates that exact pointwise bound, and only
// the no-lambda fallback uses the heuristic L_f B >= -margin (which cannot
// account for the sup|lambda|*band slack). Every per-cell interval
// enclosure is also
// aggregated into a *certified* lower bound over the set; when that bound
// already clears the threshold the condition is marked `certified` (a
// proof up to rounding, not just a sampled check).
//
// Accept/reject is driven by the sampled worst values with margins relative
// to the certificate's magnitude (Gram-rounding noise must not fail a
// genuine certificate); `certified` is reported per condition.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "barrier/synthesis.hpp"
#include "poly/polynomial.hpp"
#include "systems/ccds.hpp"

namespace scs {

struct IndependentCheckConfig {
  /// Cap on grid cells per condition (per_dim^n <= grid_budget; dimensions
  /// too high for a 2-point-per-axis grid fall back to pure MC).
  std::size_t grid_budget = 4096;
  /// Monte-Carlo samples per set, drawn from the checker's own seed.
  std::size_t mc_samples = 4000;
  /// Relative tolerance: thresholds are tolerance * max(1, certificate
  /// scale over the domain). Rigorous margins live in the SOS rho / rho';
  /// this only absorbs floating-point and Gram rounding.
  double tolerance = 5e-3;
  /// Relative half-width of the |B| <= band level-set band in (iii).
  double boundary_band = 0.05;
  /// The checker's own Rng seed -- deliberately unrelated to the pipeline's.
  std::uint64_t seed = 0x5afec4ec;
  /// Check the lambda identity (ii') when a lambda polynomial is provided.
  bool check_lambda_identity = true;
};

/// One condition's verdict. `worst` is the extremal sampled value (minimum
/// for >=-type conditions, maximum for (ii)); the condition passed iff it
/// clears `threshold` on the right side.
struct ConditionCheck {
  std::string name;         // "init" | "unsafe" | "lie_band" | "lambda_identity"
  bool passed = false;
  bool certified = false;   // interval bound alone already proves it
  double worst = 0.0;
  double threshold = 0.0;
  /// Certified extremal bound from the per-cell interval enclosures (worst
  /// direction); NaN when the grid was skipped.
  double interval_bound = 0.0;
  std::size_t points = 0;   // samples actually inside the set / band
  Vec witness;              // location of `worst`
};

struct IndependentCheckReport {
  bool accepted = false;
  /// max |B| over domain samples; margin reference for every threshold.
  double scale = 0.0;
  std::vector<ConditionCheck> conditions;
  std::string detail;  // one-line human summary

  /// Lookup by condition name; nullptr when absent.
  const ConditionCheck* find(const std::string& name) const;
};

/// Re-validate a barrier certificate. `lambda` may be a default-constructed
/// Polynomial (num_vars() == 0) to skip the lambda identity; `rho` is the
/// strict-decrease margin the SOS program claimed (BarrierConfig::rho).
IndependentCheckReport independent_check(
    const Ccds& system, const std::vector<Polynomial>& controller,
    const Polynomial& barrier, const Polynomial& lambda, double rho,
    const IndependentCheckConfig& config = {});

/// Convenience: pull barrier / lambda out of a BarrierResult (rho comes
/// from the caller's BarrierConfig; the result does not store it).
IndependentCheckReport independent_check(
    const Ccds& system, const std::vector<Polynomial>& controller,
    const BarrierResult& result, double rho,
    const IndependentCheckConfig& config = {});

}  // namespace scs
