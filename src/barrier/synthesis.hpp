// Barrier-certificate generation for the closed-loop system under the
// synthesized polynomial controller (Section 4, program (12)).
//
// The three conditions of Theorem 1 are encoded with Putinar multipliers:
//
//   (1)  B - sum_i sigma_i g_i            is SOS          (B >= 0 on Theta)
//   (2)  L_f B - lambda B - sum_j phi_j h_j - rho   is SOS (boundary push)
//   (3) -B - rho' - sum_k xi_k q_k        is SOS          (B < 0 on X_u)
//
// lambda(x) makes (2) bilinear; per the paper we either fix lambda to a
// (random) constant / linear polynomial -- an LMI -- or run an alternating
// BMI heuristic (fix lambda, solve for B; fix B, solve for lambda) in place
// of PENBMI.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "opt/sdp.hpp"
#include "poly/polynomial.hpp"
#include "systems/ccds.hpp"
#include "util/rng.hpp"

namespace scs {

class Fnv1a;

enum class LambdaStrategy {
  kZero,         // lambda = 0
  kConstant,     // lambda = random negative constant (LMI)
  kLinear,       // lambda = random linear polynomial (LMI)
  kAlternating,  // alternating BMI heuristic
};

std::string to_string(LambdaStrategy s);

/// Portfolio racing over the (lambda-strategy x degree-rung x attempt) arm
/// grid. When enabled, synthesize_barrier_closed runs every arm
/// speculatively on the work-stealing pool instead of walking the ladder
/// serially; the first arm whose certificate passes the sampled Theorem-1
/// gate wins and every other arm is cancelled through its child JobControl
/// scope. Each arm draws from its own Rng stream (forked by flat arm index
/// from BarrierConfig::seed), so an arm's numerics never depend on the
/// schedule -- only *which* arm wins is timing-dependent. Record the
/// reported winner_arm and replay it to reproduce a raced result bitwise.
struct BarrierRaceConfig {
  bool enabled = false;
  /// Strategies racing side by side; empty = just
  /// BarrierConfig::lambda_strategy. Ignored when racing is off (the
  /// serial ladder also honors a multi-strategy list, which is what the
  /// serial-vs-raced benchmark compares against).
  std::vector<LambdaStrategy> strategies;
  /// Deterministic replay: >= 0 runs only the arm with this flat index
  /// (the winner_arm of a previous raced run) and is bitwise-identical to
  /// the raced result it reproduces. -1 = race normally.
  int replay_arm = -1;
};

void hash_append(Fnv1a& h, const BarrierRaceConfig& c);

struct BarrierConfig {
  std::vector<int> degree_schedule = {2, 4};  // d_B values to attempt
  double rho = 1e-3;        // strict positivity margin in (2)
  double rho_prime = 1e-3;  // strict negativity margin in (3)
  LambdaStrategy lambda_strategy = LambdaStrategy::kConstant;
  int lambda_attempts = 4;   // random lambda retries per degree
  int bmi_rounds = 4;        // alternating rounds (kAlternating only)
  std::uint64_t seed = 7;
  SdpOptions sdp;
  double identity_tol = 2e-5;
  double gram_tol = 1e-6;
  /// Guard: skip degree/dimension combinations whose SDP would exceed this
  /// many equality constraints. The interior-point Schur solve is O(m^3)
  /// per iteration, so m ~ 3000 is the practical single-core ceiling.
  std::size_t max_sdp_constraints = 3000;
  BarrierRaceConfig race;
};

void hash_append(Fnv1a& h, const BarrierConfig& c);

struct BarrierResult {
  bool success = false;
  Polynomial barrier;        // B(x)
  Polynomial lambda;         // the lambda(x) used in (2)
  int degree = 0;            // d_B
  double seconds = 0.0;      // T_p: wall-clock of the verification stage
  LambdaStrategy strategy_used = LambdaStrategy::kConstant;
  int attempts = 0;          // SOS programs solved
  std::string failure_reason;
  double max_identity_residual = 0.0;
  double min_gram_eigenvalue = 0.0;
  /// How the accepted certificate's final solve was produced: "lmi",
  /// "bmi-lambda" (alternating lambda-step), "bmi-b" (alternating B-step);
  /// "" when no certificate was found. The reported diagnostics above
  /// always belong to this accepted solve.
  std::string accepted_via;
  /// True when this result came from a portfolio race (or its replay).
  bool raced = false;
  /// Flat index of the arm that produced the certificate, valid as
  /// BarrierRaceConfig::replay_arm; -1 when no arm succeeded. Also filled
  /// by the serial ladder so serial and replayed runs are comparable.
  int winner_arm = -1;
  /// Human-readable winner identity, "constant/d=4/a=1".
  std::string winner_arm_desc;
  /// Race telemetry (zero when racing was off): arms that began solving,
  /// and arms cancelled or skipped once a winner emerged.
  int arms_launched = 0;
  int arms_cancelled = 0;
};

/// Synthesize a barrier certificate for the closed-loop system
/// f(x, p(x)). `controller` has one polynomial per control input.
BarrierResult synthesize_barrier(const Ccds& system,
                                 const std::vector<Polynomial>& controller,
                                 const BarrierConfig& config);

/// Same, for an already-closed polynomial vector field over the state vars.
BarrierResult synthesize_barrier_closed(
    const Ccds& system, const std::vector<Polynomial>& closed_field,
    const BarrierConfig& config);

}  // namespace scs
