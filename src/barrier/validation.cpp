#include "barrier/validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <utility>

#include "ode/trajectory.hpp"
#include "poly/lie.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"
#include "util/hash.hpp"

namespace scs {

namespace {

/// Samples per parallel chunk. Each chunk draws from its own forked
/// substream and reductions combine per-chunk results in chunk order, so
/// the report is bitwise-identical at any thread count.
constexpr std::size_t kSampleChunk = 256;
constexpr std::size_t kRolloutChunk = 4;

std::size_t chunk_count(std::size_t n, std::size_t chunk) {
  return (n + chunk - 1) / chunk;
}

/// Extremum of `value(x)` over `count` samples of `set` (parallel, chunked).
double sampled_extremum(const SemialgebraicSet& set, std::size_t count,
                        Rng& rng, bool want_min,
                        const std::function<double(const Vec&)>& value) {
  std::vector<Rng> streams =
      rng.fork_streams(chunk_count(count, kSampleChunk));
  const double identity = want_min ? std::numeric_limits<double>::infinity()
                                   : -std::numeric_limits<double>::infinity();
  return parallel_reduce(
      count, kSampleChunk, identity,
      [&](std::size_t begin, std::size_t end) {
        Rng& chunk_rng = streams[begin / kSampleChunk];
        double extremum = identity;
        for (std::size_t i = begin; i < end; ++i) {
          const double v = value(set.sample(chunk_rng));
          extremum = want_min ? std::min(extremum, v) : std::max(extremum, v);
        }
        return extremum;
      },
      [want_min](double a, double b) {
        return want_min ? std::min(a, b) : std::max(a, b);
      });
}

}  // namespace

ValidationReport validate_barrier(const Ccds& system,
                                  const std::vector<Polynomial>& controller,
                                  const Polynomial& barrier,
                                  const ValidationConfig& config, Rng& rng) {
  SCS_REQUIRE(barrier.num_vars() == system.num_states,
              "validate_barrier: barrier variable count mismatch");
  ValidationReport report;
  const auto closed = system.closed_loop(controller);
  const Polynomial lie = lie_derivative(barrier, closed);
  const auto eval_barrier = [&barrier](const Vec& x) {
    return barrier.evaluate(x);
  };

  // Condition (i): B >= 0 on Theta.
  report.min_b_on_theta = sampled_extremum(
      system.init_set, config.samples_per_set, rng, /*want_min=*/true,
      eval_barrier);

  // Condition (ii): B < 0 on X_u.
  report.max_b_on_unsafe = sampled_extremum(
      system.unsafe_set, config.samples_per_set, rng, /*want_min=*/false,
      eval_barrier);

  // Condition (iii): L_f B > 0 on the zero level set of B within Psi.
  // Sample Psi once (chunked substreams), caching B at every point so the
  // band-widening sweep below re-reads values instead of re-evaluating.
  const std::size_t domain_count = config.samples_per_set * 4;
  std::vector<Vec> domain_samples(domain_count);
  std::vector<double> b_values(domain_count);
  {
    std::vector<Rng> streams =
        rng.fork_streams(chunk_count(domain_count, kSampleChunk));
    parallel_for(domain_count, kSampleChunk,
                 [&](std::size_t begin, std::size_t end) {
                   Rng& chunk_rng = streams[begin / kSampleChunk];
                   for (std::size_t i = begin; i < end; ++i) {
                     domain_samples[i] = system.domain.sample(chunk_rng);
                     b_values[i] = barrier.evaluate(domain_samples[i]);
                   }
                 });
  }
  double scale = 0.0;
  for (double v : b_values) scale = std::max(scale, std::fabs(v));

  double band = config.boundary_band * std::max(scale, 1e-9);
  double min_lie = std::numeric_limits<double>::infinity();
  std::size_t found = 0;
  using LieChunk = std::pair<double, std::size_t>;  // (min L_f B, points)
  for (int widen = 0; widen < 6 && found == 0; ++widen) {
    const LieChunk total = parallel_reduce(
        domain_count, kSampleChunk,
        LieChunk{std::numeric_limits<double>::infinity(), 0},
        [&](std::size_t begin, std::size_t end) {
          LieChunk acc{std::numeric_limits<double>::infinity(), 0};
          for (std::size_t i = begin; i < end; ++i) {
            if (std::fabs(b_values[i]) <= band) {
              acc.first = std::min(acc.first,
                                   lie.evaluate(domain_samples[i]));
              ++acc.second;
            }
          }
          return acc;
        },
        [](LieChunk a, LieChunk b) {
          return LieChunk{std::min(a.first, b.first), a.second + b.second};
        });
    min_lie = total.first;
    found = total.second;
    if (found == 0) band *= 2.0;  // level set may be thin: widen the band
  }
  report.boundary_samples = found;
  report.min_lie_on_boundary =
      (found > 0) ? min_lie : std::numeric_limits<double>::quiet_NaN();

  // Simulation spot checks.
  const VectorField field = system.closed_loop_field(controller);
  report.total_rollouts = config.simulation_rollouts;
  const std::size_t rollouts =
      static_cast<std::size_t>(std::max(0, config.simulation_rollouts));
  std::vector<Rng> streams =
      rng.fork_streams(chunk_count(rollouts, kRolloutChunk));
  report.safe_rollouts = static_cast<int>(parallel_reduce(
      rollouts, kRolloutChunk, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        Rng& chunk_rng = streams[begin / kRolloutChunk];
        SimulateOptions opts;
        opts.dt = config.simulation_dt;
        opts.max_steps = config.simulation_steps;
        opts.record = false;
        const auto unsafe = [&](const Vec& x) {
          return system.unsafe_set.contains(x);
        };
        std::size_t safe = 0;
        for (std::size_t r = begin; r < end; ++r) {
          const Vec x0 = system.init_set.sample(chunk_rng);
          const Trajectory traj = simulate(field, x0, opts, unsafe);
          if (traj.stop != StopReason::kPredicate &&
              traj.stop != StopReason::kDiverged)
            ++safe;
        }
        return safe;
      },
      [](std::size_t a, std::size_t b) { return a + b; }));

  // Tolerances are relative to the certificate's magnitude: the rigorous
  // margin lives in the SOS identity's rho / rho' terms; this numerical
  // cross-check must not fail on Gram-rounding noise.
  const double tol = config.tolerance * std::max(1.0, scale);
  const bool cond1 = report.min_b_on_theta >= -tol;
  const bool cond2 = report.max_b_on_unsafe < tol;
  const bool cond3 =
      report.boundary_samples == 0 || report.min_lie_on_boundary > -tol;
  const bool sims = report.safe_rollouts == report.total_rollouts;
  report.passed = cond1 && cond2 && cond3 && sims;

  std::ostringstream os;
  os << "B|Theta min=" << report.min_b_on_theta
     << ", B|Xu max=" << report.max_b_on_unsafe
     << ", LieB|{B~0} min=" << report.min_lie_on_boundary << " ("
     << report.boundary_samples << " pts), rollouts "
     << report.safe_rollouts << "/" << report.total_rollouts;
  report.detail = os.str();
  return report;
}


void hash_append(Fnv1a& h, const ValidationConfig& c) {
  hash_append(h, static_cast<std::uint64_t>(c.samples_per_set));
  hash_append(h, c.boundary_band);
  hash_append(h, c.tolerance);
  hash_append(h, c.simulation_rollouts);
  hash_append(h, c.simulation_dt);
  hash_append(h, static_cast<std::uint64_t>(c.simulation_steps));
}

}  // namespace scs
