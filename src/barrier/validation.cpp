#include "barrier/validation.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "ode/trajectory.hpp"
#include "poly/lie.hpp"
#include "util/check.hpp"

namespace scs {

ValidationReport validate_barrier(const Ccds& system,
                                  const std::vector<Polynomial>& controller,
                                  const Polynomial& barrier,
                                  const ValidationConfig& config, Rng& rng) {
  SCS_REQUIRE(barrier.num_vars() == system.num_states,
              "validate_barrier: barrier variable count mismatch");
  ValidationReport report;
  const auto closed = system.closed_loop(controller);
  const Polynomial lie = lie_derivative(barrier, closed);

  // Condition (i): B >= 0 on Theta.
  double min_theta = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < config.samples_per_set; ++i) {
    const Vec x = system.init_set.sample(rng);
    min_theta = std::min(min_theta, barrier.evaluate(x));
  }
  report.min_b_on_theta = min_theta;

  // Condition (ii): B < 0 on X_u.
  double max_unsafe = -std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < config.samples_per_set; ++i) {
    const Vec x = system.unsafe_set.sample(rng);
    max_unsafe = std::max(max_unsafe, barrier.evaluate(x));
  }
  report.max_b_on_unsafe = max_unsafe;

  // Condition (iii): L_f B > 0 on the zero level set of B within Psi.
  // Sample Psi, keep points in a band |B| <= band * scale.
  double scale = 0.0;
  std::vector<Vec> domain_samples;
  domain_samples.reserve(config.samples_per_set * 4);
  for (std::size_t i = 0; i < config.samples_per_set * 4; ++i) {
    Vec x = system.domain.sample(rng);
    scale = std::max(scale, std::fabs(barrier.evaluate(x)));
    domain_samples.push_back(std::move(x));
  }
  double band = config.boundary_band * std::max(scale, 1e-9);
  double min_lie = std::numeric_limits<double>::infinity();
  std::size_t found = 0;
  for (int widen = 0; widen < 6 && found == 0; ++widen) {
    for (const auto& x : domain_samples) {
      if (std::fabs(barrier.evaluate(x)) <= band) {
        min_lie = std::min(min_lie, lie.evaluate(x));
        ++found;
      }
    }
    if (found == 0) band *= 2.0;  // level set may be thin: widen the band
  }
  report.boundary_samples = found;
  report.min_lie_on_boundary =
      (found > 0) ? min_lie : std::numeric_limits<double>::quiet_NaN();

  // Simulation spot checks.
  const VectorField field = system.closed_loop_field(controller);
  report.total_rollouts = config.simulation_rollouts;
  for (int r = 0; r < config.simulation_rollouts; ++r) {
    const Vec x0 = system.init_set.sample(rng);
    SimulateOptions opts;
    opts.dt = config.simulation_dt;
    opts.max_steps = config.simulation_steps;
    opts.record = false;
    const auto unsafe = [&](const Vec& x) {
      return system.unsafe_set.contains(x);
    };
    const Trajectory traj = simulate(field, x0, opts, unsafe);
    if (traj.stop != StopReason::kPredicate &&
        traj.stop != StopReason::kDiverged)
      ++report.safe_rollouts;
  }

  // Tolerances are relative to the certificate's magnitude: the rigorous
  // margin lives in the SOS identity's rho / rho' terms; this numerical
  // cross-check must not fail on Gram-rounding noise.
  const double tol = config.tolerance * std::max(1.0, scale);
  const bool cond1 = report.min_b_on_theta >= -tol;
  const bool cond2 = report.max_b_on_unsafe < tol;
  const bool cond3 =
      report.boundary_samples == 0 || report.min_lie_on_boundary > -tol;
  const bool sims = report.safe_rollouts == report.total_rollouts;
  report.passed = cond1 && cond2 && cond3 && sims;

  std::ostringstream os;
  os << "B|Theta min=" << report.min_b_on_theta
     << ", B|Xu max=" << report.max_b_on_unsafe
     << ", LieB|{B~0} min=" << report.min_lie_on_boundary << " ("
     << report.boundary_samples << " pts), rollouts "
     << report.safe_rollouts << "/" << report.total_rollouts;
  report.detail = os.str();
  return report;
}

}  // namespace scs
