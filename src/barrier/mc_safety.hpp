// Monte-Carlo safety estimation with PAC-style confidence: the statistical
// counterpart of the barrier certificate, for systems (or horizons) where
// a certificate is not available. Complements Section 5's empirical claims.
#pragma once

#include <cstdint>

#include "systems/ccds.hpp"
#include "util/rng.hpp"

namespace scs {

struct McSafetyConfig {
  std::size_t rollouts = 1000;
  double dt = 0.01;
  std::size_t max_steps = 2000;
  /// Significance level for the confidence interval.
  double eta = 1e-6;
};

struct McSafetyResult {
  std::size_t rollouts = 0;
  std::size_t violations = 0;
  double violation_rate = 0.0;
  /// One-sided Hoeffding upper confidence bound on the true violation
  /// probability: P(violation) <= violation_rate + sqrt(ln(1/eta)/(2N))
  /// with confidence 1 - eta.
  double violation_upper_bound = 1.0;
};

/// Estimate the closed-loop violation probability from Theta under a
/// control law by i.i.d. rollouts.
McSafetyResult estimate_safety(const Ccds& system, const ControlLaw& law,
                               const McSafetyConfig& config, Rng& rng);

/// Same for a polynomial controller (unclamped, as verified by the BC).
McSafetyResult estimate_safety(const Ccds& system,
                               const std::vector<Polynomial>& controller,
                               const McSafetyConfig& config, Rng& rng);

}  // namespace scs
