#include "barrier/lyapunov.hpp"

#include <cmath>

#include "poly/basis.hpp"
#include "poly/lie.hpp"
#include "sos/sos_program.hpp"
#include "util/check.hpp"

namespace scs {

LyapunovResult synthesize_lyapunov(const std::vector<Polynomial>& field,
                                   const LyapunovConfig& config,
                                   double equilibrium_tol) {
  SCS_REQUIRE(!field.empty(), "synthesize_lyapunov: empty field");
  const std::size_t n = field.front().num_vars();
  SCS_REQUIRE(field.size() == n,
              "synthesize_lyapunov: field must be square in its variables");
  LyapunovResult result;

  // The origin must be an equilibrium, or no global V exists.
  const Vec origin(n, 0.0);
  for (const auto& f : field) {
    if (std::fabs(f.evaluate(origin)) > equilibrium_tol) {
      result.failure_reason = "origin is not an equilibrium of the field";
      return result;
    }
  }

  // ||x||^2 as the definiteness witness.
  Polynomial norm2(n);
  for (std::size_t i = 0; i < n; ++i) {
    const auto xi = Polynomial::variable(n, i);
    norm2 += xi * xi;
  }
  const Polynomial margin = norm2 * config.epsilon;
  const Polynomial one = Polynomial::constant(n, 1.0);

  int field_degree = 1;
  for (const auto& f : field)
    field_degree = std::max(field_degree, f.degree());

  for (int d : config.degree_schedule) {
    SCS_REQUIRE(d >= 2 && d % 2 == 0,
                "synthesize_lyapunov: degrees must be even and >= 2");
    // V has no constant/linear part (V(0) = 0 with a minimum there).
    std::vector<Monomial> v_basis;
    for (const auto& m : monomials_up_to(n, d))
      if (m.degree() >= 2) v_basis.push_back(m);

    SosProgram prog(n);
    const auto v_var = prog.add_free_poly(v_basis);

    // Identity 1: V - margin - s0 == 0 with s0 SOS.
    {
      const auto s0 = prog.add_sos_poly(monomials_up_to(n, d / 2));
      // Basis for s0 must also exclude degree-0/1? Not necessary: the
      // identity forces matching coefficients.
      prog.add_identity(-margin, {{one, v_var, {}}, {-one, s0, {}}});
    }
    // Identity 2: -L_f V - margin - s1 == 0 with s1 SOS.
    {
      const int lie_deg = field_degree + d - 1;
      const int s1_deg = (lie_deg % 2 == 0) ? lie_deg : lie_deg + 1;
      const auto s1 = prog.add_sos_poly(monomials_up_to(n, s1_deg / 2));
      std::vector<SosProgram::Term> terms;
      for (std::size_t i = 0; i < n; ++i)
        terms.push_back({-field[i], v_var, i});  // -L_f V
      terms.push_back({-one, s1, {}});
      prog.add_identity(-margin, std::move(terms));
    }

    const auto sol =
        prog.solve(config.sdp, config.identity_tol, config.gram_tol);
    if (sol.feasible) {
      result.success = true;
      result.function = sol.value(v_var);
      result.degree = d;
      result.failure_reason.clear();
      return result;
    }
    result.failure_reason = sol.failure_reason;
  }
  if (result.failure_reason.empty())
    result.failure_reason = "no Lyapunov function in the degree schedule";
  return result;
}

}  // namespace scs
