#include "barrier/independent_check.hpp"

#include <algorithm>
#include <cmath>
#include <functional>
#include <limits>
#include <sstream>

#include "poly/lie.hpp"
#include "sos/interval.hpp"
#include "util/check.hpp"

namespace scs {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Cells per axis so that per_dim^n <= budget (0 when even 2 per axis
/// overflows the budget -- pure-MC fallback for high dimensions).
std::size_t grid_per_dim(std::size_t dim, std::size_t budget) {
  std::size_t per_dim = 0;
  for (std::size_t cand = 2;; ++cand) {
    double cells = 1.0;
    for (std::size_t i = 0; i < dim; ++i) cells *= static_cast<double>(cand);
    if (cells > static_cast<double>(budget)) break;
    per_dim = cand;
    if (per_dim >= 64) break;  // 1-D/2-D: 64 cells per axis is plenty
  }
  return per_dim;
}

/// All points of `set` used for one condition: grid points of the sampling
/// box that lie in the set, plus MC draws from the set itself. MC failure
/// (a set too thin for rejection sampling) degrades to grid-only.
struct PointSet {
  std::vector<Vec> points;
  bool mc_failed = false;
};

PointSet collect_points(const SemialgebraicSet& set,
                        const IndependentCheckConfig& config, Rng& rng) {
  PointSet out;
  const std::size_t per_dim = grid_per_dim(set.dim(), config.grid_budget);
  if (per_dim >= 2) {
    for (const Vec& x : set.sampling_box().grid(per_dim))
      if (set.contains(x)) out.points.push_back(x);
  }
  try {
    for (std::size_t i = 0; i < config.mc_samples; ++i)
      out.points.push_back(set.sample(rng));
  } catch (const std::exception&) {
    out.mc_failed = true;
  }
  return out;
}

/// Certified extremum of `p` over set `S` intersected with its sampling
/// box, from per-cell interval enclosures: a cell counts when every
/// defining inequality's enclosure allows g_i >= 0 somewhere in it
/// (conservative intersection test), and the bound aggregates the worst
/// enclosure end over all such cells. Returns NaN when the dimension is too
/// high for the cell budget.
double interval_extremum(const Polynomial& p, const SemialgebraicSet& set,
                         std::size_t budget, bool want_min) {
  const std::size_t dim = set.dim();
  const std::size_t per_dim = grid_per_dim(dim, budget);
  if (per_dim < 2) return std::numeric_limits<double>::quiet_NaN();
  const Box& box = set.sampling_box();
  std::vector<double> step(dim);
  for (std::size_t i = 0; i < dim; ++i)
    step[i] = (box.hi[i] - box.lo[i]) / static_cast<double>(per_dim);

  std::vector<std::size_t> idx(dim, 0);
  double bound = want_min ? kInf : -kInf;
  for (;;) {
    Vec lo(dim, 0.0), hi(dim, 0.0);
    for (std::size_t i = 0; i < dim; ++i) {
      lo[i] = box.lo[i] + step[i] * static_cast<double>(idx[i]);
      hi[i] = (idx[i] + 1 == per_dim) ? box.hi[i] : lo[i] + step[i];
    }
    const Box cell(lo, hi);
    bool may_intersect = true;
    for (const Polynomial& g : set.inequalities()) {
      if (interval_enclosure(g, cell).hi < 0.0) {
        may_intersect = false;
        break;
      }
    }
    if (may_intersect) {
      const Interval enc = interval_enclosure(p, cell);
      bound = want_min ? std::min(bound, enc.lo) : std::max(bound, enc.hi);
    }
    // Odometer over the cell indices.
    std::size_t d = 0;
    while (d < dim && ++idx[d] == per_dim) idx[d++] = 0;
    if (d == dim) break;
  }
  return bound;
}

/// Sampled extremum of `value` over `points`, with the witness location.
ConditionCheck sampled_extremum(const std::string& name,
                                const std::vector<Vec>& points, bool want_min,
                                const std::function<double(const Vec&)>& value) {
  ConditionCheck check;
  check.name = name;
  check.points = points.size();
  check.worst = want_min ? kInf : -kInf;
  for (const Vec& x : points) {
    const double v = value(x);
    if (want_min ? (v < check.worst) : (v > check.worst)) {
      check.worst = v;
      check.witness = x;
    }
  }
  return check;
}

}  // namespace

const ConditionCheck* IndependentCheckReport::find(
    const std::string& name) const {
  for (const ConditionCheck& c : conditions)
    if (c.name == name) return &c;
  return nullptr;
}

IndependentCheckReport independent_check(
    const Ccds& system, const std::vector<Polynomial>& controller,
    const Polynomial& barrier, const Polynomial& lambda, double rho,
    const IndependentCheckConfig& config) {
  SCS_REQUIRE(barrier.num_vars() == system.num_states,
              "independent_check: barrier variable count mismatch");
  IndependentCheckReport report;
  const auto closed = system.closed_loop(controller);
  const Polynomial lie = lie_derivative(barrier, closed);
  const bool with_lambda =
      config.check_lambda_identity && lambda.num_vars() == system.num_states;
  // decrease = L_f B - lambda B, the polynomial (ii') bounds below by rho.
  const Polynomial decrease =
      with_lambda ? lie - lambda * barrier : Polynomial(system.num_states);

  // Own substreams per set: bitwise-deterministic (the checker is serial)
  // and unrelated to any Rng the pipeline used.
  Rng root(config.seed);
  std::vector<Rng> streams = root.fork_streams(3);
  const PointSet theta = collect_points(system.init_set, config, streams[0]);
  const PointSet unsafe = collect_points(system.unsafe_set, config, streams[1]);
  const PointSet domain = collect_points(system.domain, config, streams[2]);

  const auto eval_b = [&](const Vec& x) { return barrier.evaluate(x); };

  std::vector<double> b_on_domain(domain.points.size());
  for (std::size_t i = 0; i < domain.points.size(); ++i)
    b_on_domain[i] = barrier.evaluate(domain.points[i]);
  for (double v : b_on_domain)
    report.scale = std::max(report.scale, std::fabs(v));
  const double margin = config.tolerance * std::max(1.0, report.scale);

  // (i) B >= 0 on Theta.
  {
    ConditionCheck c = sampled_extremum("init", theta.points,
                                        /*want_min=*/true, eval_b);
    c.threshold = -margin;
    c.interval_bound = interval_extremum(barrier, system.init_set,
                                         config.grid_budget, /*want_min=*/true);
    c.certified = std::isfinite(c.interval_bound) &&
                  c.interval_bound >= c.threshold;
    c.passed = c.points > 0 && (c.worst >= c.threshold || c.certified);
    report.conditions.push_back(std::move(c));
  }

  // (ii) B < 0 on X_u.
  {
    ConditionCheck c = sampled_extremum("unsafe", unsafe.points,
                                        /*want_min=*/false, eval_b);
    c.threshold = margin;
    c.interval_bound = interval_extremum(barrier, system.unsafe_set,
                                         config.grid_budget,
                                         /*want_min=*/false);
    c.certified = std::isfinite(c.interval_bound) &&
                  c.interval_bound < c.threshold;
    c.passed = c.points > 0 && (c.worst < c.threshold || c.certified);
    report.conditions.push_back(std::move(c));
  }

  // (iii) L_f B > 0 on the zero level set of B within Psi. The level set
  // may be thin; widen the band like the stage-4 validator does. An empty
  // band after widening passes vacuously -- the lambda identity below is
  // the non-vacuous guard.
  //
  // The band has finite width, and inside it the theorem only guarantees
  // L_f B >= lambda(x) B(x) + rho -- with lambda > 0 and B slightly
  // negative, L_f B may legitimately dip below zero. So with lambda in
  // hand we check the exact pointwise bound (decrease >= rho) on the band;
  // only the no-lambda fallback uses the heuristic L_f B >= -margin, whose
  // unaccounted sup|lambda|*band slack can falsely reject near-boundary
  // points of genuine certificates.
  {
    const Polynomial& band_poly = with_lambda ? decrease : lie;
    double band_scale = 0.0;
    for (const Vec& x : domain.points)
      band_scale = std::max(band_scale, std::fabs(band_poly.evaluate(x)));
    const double band_margin = config.tolerance * std::max(1.0, band_scale);
    double band = config.boundary_band * std::max(report.scale, 1e-9);
    ConditionCheck c;
    c.name = "lie_band";
    c.interval_bound = std::numeric_limits<double>::quiet_NaN();
    for (int widen = 0; widen < 6 && c.points == 0; ++widen) {
      c.worst = kInf;
      for (std::size_t i = 0; i < domain.points.size(); ++i) {
        if (std::fabs(b_on_domain[i]) > band) continue;
        const double v = band_poly.evaluate(domain.points[i]);
        if (v < c.worst) {
          c.worst = v;
          c.witness = domain.points[i];
        }
        ++c.points;
      }
      if (c.points == 0) band *= 2.0;
    }
    c.threshold = with_lambda ? rho - band_margin : -band_margin;
    c.passed = c.points == 0 || c.worst >= c.threshold;
    report.conditions.push_back(std::move(c));
  }

  // (ii') L_f B - lambda B >= rho on Psi -- the identity the Putinar
  // program actually certified (its Psi multipliers are non-negative on
  // Psi, so the certified polynomial bounds the left side from below).
  if (with_lambda) {
    double dec_scale = 0.0;
    std::vector<double> dec(domain.points.size());
    for (std::size_t i = 0; i < domain.points.size(); ++i) {
      dec[i] = decrease.evaluate(domain.points[i]);
      dec_scale = std::max(dec_scale, std::fabs(dec[i]));
    }
    const double dec_margin = config.tolerance * std::max(1.0, dec_scale);
    ConditionCheck c;
    c.name = "lambda_identity";
    c.worst = kInf;
    c.points = domain.points.size();
    for (std::size_t i = 0; i < domain.points.size(); ++i) {
      if (dec[i] < c.worst) {
        c.worst = dec[i];
        c.witness = domain.points[i];
      }
    }
    c.threshold = rho - dec_margin;
    c.interval_bound = interval_extremum(decrease, system.domain,
                                         config.grid_budget,
                                         /*want_min=*/true);
    c.certified = std::isfinite(c.interval_bound) &&
                  c.interval_bound >= c.threshold;
    c.passed = c.points > 0 && (c.worst >= c.threshold || c.certified);
    report.conditions.push_back(std::move(c));
  }

  report.accepted = true;
  for (const ConditionCheck& c : report.conditions)
    report.accepted = report.accepted && c.passed;

  std::ostringstream os;
  os << (report.accepted ? "ACCEPTED" : "REJECTED");
  for (const ConditionCheck& c : report.conditions) {
    os << "; " << c.name << (c.passed ? " ok" : " VIOLATED") << " worst="
       << c.worst << " thr=" << c.threshold << " (" << c.points << " pts";
    if (c.certified) os << ", certified";
    os << ")";
  }
  if (theta.mc_failed || unsafe.mc_failed || domain.mc_failed)
    os << "; MC degraded to grid-only on some set";
  report.detail = os.str();
  return report;
}

IndependentCheckReport independent_check(
    const Ccds& system, const std::vector<Polynomial>& controller,
    const BarrierResult& result, double rho,
    const IndependentCheckConfig& config) {
  return independent_check(system, controller, result.barrier, result.lambda,
                           rho, config);
}

}  // namespace scs
