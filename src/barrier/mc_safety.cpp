#include "barrier/mc_safety.hpp"

#include <cmath>

#include "ode/trajectory.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace scs {

namespace {

/// Rollouts per parallel chunk. Each chunk draws its initial states from
/// its own forked substream, so the estimate is bitwise-identical at any
/// thread count.
constexpr std::size_t kRolloutChunk = 16;

McSafetyResult run_rollouts(const Ccds& system, const VectorField& field,
                            const McSafetyConfig& config, Rng& rng) {
  SCS_REQUIRE(config.rollouts > 0, "estimate_safety: need rollouts > 0");
  SCS_REQUIRE(config.eta > 0.0 && config.eta < 1.0,
              "estimate_safety: bad eta");
  McSafetyResult result;
  result.rollouts = config.rollouts;
  SimulateOptions opts;
  opts.dt = config.dt;
  opts.max_steps = config.max_steps;
  opts.record = false;
  std::vector<Rng> streams = rng.fork_streams(
      (config.rollouts + kRolloutChunk - 1) / kRolloutChunk);
  result.violations = parallel_reduce(
      config.rollouts, kRolloutChunk, std::size_t{0},
      [&](std::size_t begin, std::size_t end) {
        Rng& chunk_rng = streams[begin / kRolloutChunk];
        std::size_t count = 0;
        for (std::size_t i = begin; i < end; ++i) {
          const Vec x0 = system.init_set.sample(chunk_rng);
          const Trajectory traj =
              simulate(field, x0, opts, [&system](const Vec& x) {
                return system.unsafe_set.contains(x);
              });
          if (traj.stop == StopReason::kPredicate ||
              traj.stop == StopReason::kDiverged)
            ++count;
        }
        return count;
      },
      [](std::size_t a, std::size_t b) { return a + b; });
  result.violation_rate = static_cast<double>(result.violations) /
                          static_cast<double>(result.rollouts);
  const double hoeffding =
      std::sqrt(std::log(1.0 / config.eta) /
                (2.0 * static_cast<double>(result.rollouts)));
  result.violation_upper_bound = std::min(1.0, result.violation_rate +
                                                   hoeffding);
  return result;
}
}  // namespace

McSafetyResult estimate_safety(const Ccds& system, const ControlLaw& law,
                               const McSafetyConfig& config, Rng& rng) {
  return run_rollouts(system, system.closed_loop_field(law), config, rng);
}

McSafetyResult estimate_safety(const Ccds& system,
                               const std::vector<Polynomial>& controller,
                               const McSafetyConfig& config, Rng& rng) {
  return run_rollouts(system, system.closed_loop_field(controller), config,
                      rng);
}

}  // namespace scs
