#include "barrier/mc_safety.hpp"

#include <cmath>

#include "ode/trajectory.hpp"
#include "util/check.hpp"

namespace scs {

namespace {
McSafetyResult run_rollouts(const Ccds& system, const VectorField& field,
                            const McSafetyConfig& config, Rng& rng) {
  SCS_REQUIRE(config.rollouts > 0, "estimate_safety: need rollouts > 0");
  SCS_REQUIRE(config.eta > 0.0 && config.eta < 1.0,
              "estimate_safety: bad eta");
  McSafetyResult result;
  result.rollouts = config.rollouts;
  SimulateOptions opts;
  opts.dt = config.dt;
  opts.max_steps = config.max_steps;
  opts.record = false;
  for (std::size_t i = 0; i < config.rollouts; ++i) {
    const Vec x0 = system.init_set.sample(rng);
    const Trajectory traj =
        simulate(field, x0, opts, [&system](const Vec& x) {
          return system.unsafe_set.contains(x);
        });
    if (traj.stop == StopReason::kPredicate ||
        traj.stop == StopReason::kDiverged)
      ++result.violations;
  }
  result.violation_rate = static_cast<double>(result.violations) /
                          static_cast<double>(result.rollouts);
  const double hoeffding =
      std::sqrt(std::log(1.0 / config.eta) /
                (2.0 * static_cast<double>(result.rollouts)));
  result.violation_upper_bound = std::min(1.0, result.violation_rate +
                                                   hoeffding);
  return result;
}
}  // namespace

McSafetyResult estimate_safety(const Ccds& system, const ControlLaw& law,
                               const McSafetyConfig& config, Rng& rng) {
  return run_rollouts(system, system.closed_loop_field(law), config, rng);
}

McSafetyResult estimate_safety(const Ccds& system,
                               const std::vector<Polynomial>& controller,
                               const McSafetyConfig& config, Rng& rng) {
  return run_rollouts(system, system.closed_loop_field(controller), config,
                      rng);
}

}  // namespace scs
