#include "barrier/synthesis.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "poly/basis.hpp"
#include "sos/sos_program.hpp"
#include "util/cancellation.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/stopwatch.hpp"
#include "util/thread_pool.hpp"
#include "util/hash.hpp"

namespace scs {

std::string to_string(LambdaStrategy s) {
  switch (s) {
    case LambdaStrategy::kZero:
      return "zero";
    case LambdaStrategy::kConstant:
      return "constant";
    case LambdaStrategy::kLinear:
      return "linear";
    case LambdaStrategy::kAlternating:
      return "alternating-BMI";
  }
  return "?";
}

namespace {

int even_ceil(int d) { return (d % 2 == 0) ? d : d + 1; }

int max_degree_of(const std::vector<Polynomial>& polys) {
  int d = 0;
  for (const auto& p : polys) d = std::max(d, p.degree());
  return d;
}

/// Estimated number of equality constraints for the three identities.
std::size_t estimate_constraints(std::size_t n, int d1, int d2, int d3) {
  return static_cast<std::size_t>(monomial_count(n, d1)) +
         static_cast<std::size_t>(monomial_count(n, d2)) +
         static_cast<std::size_t>(monomial_count(n, d3));
}

struct ProgramOutcome {
  bool feasible = false;
  Polynomial barrier;
  Polynomial lambda;
  double max_identity_residual = 0.0;
  double min_gram_eigenvalue = 0.0;
  std::string failure_reason;
};

/// Build and solve one instance of program (12).
///
/// Exactly one of (fixed_barrier, barrier free) and exactly one of
/// (fixed_lambda, lambda free) applies: pass fixed_* == nullptr to make that
/// polynomial a decision variable. Making both free would be the BMI; that
/// combination is rejected.
ProgramOutcome solve_program(const Ccds& system,
                             const std::vector<Polynomial>& closed_field,
                             int barrier_degree, int lambda_degree,
                             const Polynomial* fixed_barrier,
                             const Polynomial* fixed_lambda,
                             const BarrierConfig& config) {
  SCS_REQUIRE(!(fixed_barrier == nullptr && fixed_lambda == nullptr),
              "solve_program: B and lambda cannot both be free (BMI)");
  const std::size_t n = system.num_states;
  ProgramOutcome out;

  const auto& g = system.init_set.inequalities();
  const auto& h = system.domain.inequalities();
  const auto& q = system.unsafe_set.inequalities();

  const int field_deg = std::max(1, max_degree_of(closed_field));
  const int d_b = (fixed_barrier != nullptr)
                      ? std::max(1, fixed_barrier->degree())
                      : barrier_degree;
  const int d_lambda = (fixed_lambda != nullptr)
                           ? std::max(0, fixed_lambda->degree())
                           : lambda_degree;

  // Identity degrees (each rounded up to even for the SOS residual).
  const int d1 = even_ceil(std::max(d_b, max_degree_of(g)));
  const int d2 = even_ceil(std::max({field_deg + d_b - 1, d_lambda + d_b,
                                     max_degree_of(h)}));
  const int d3 = even_ceil(std::max(d_b, max_degree_of(q)));

  const std::size_t est = estimate_constraints(n, d1, d2, d3);
  if (est > config.max_sdp_constraints) {
    out.failure_reason = "SDP size guard: ~" + std::to_string(est) +
                         " constraints exceeds limit";
    return out;
  }

  SosProgram prog(n);
  const Polynomial one = Polynomial::constant(n, 1.0);

  // Decision polynomials.
  SosProgram::PolyVar b_var{}, lambda_var{};
  const bool b_free = (fixed_barrier == nullptr);
  const bool lambda_free = (fixed_lambda == nullptr);
  if (b_free) {
    b_var = prog.add_free_poly(monomials_up_to(n, d_b));
    // Normalize B at the center of Theta: removes the degenerate B ~ 0
    // solution that would otherwise satisfy all identities within numerical
    // noise (certificates scale freely, so this loses no generality as long
    // as B is positive at the chosen anchor -- guaranteed by condition (i)
    // up to the measure-zero case B(x_c) = 0).
    prog.add_point_constraint(b_var,
                              system.init_set.sampling_box().center(), 1.0);
  }
  if (lambda_free)
    lambda_var = prog.add_free_poly(monomials_up_to(n, d_lambda));

  const auto sos_multiplier = [&](int identity_degree,
                                  int constraint_degree) {
    const int gd = std::max(0, (identity_degree - constraint_degree) / 2);
    return prog.add_sos_poly(monomials_up_to(n, gd));
  };

  // ---- Identity (1): B - sum sigma_i g_i - s0 == 0 on coefficients.
  {
    std::vector<SosProgram::Term> terms;
    Polynomial constant(n);
    if (b_free)
      terms.push_back({one, b_var, {}});
    else
      constant += *fixed_barrier;
    for (const auto& gi : g) {
      const auto sigma = sos_multiplier(d1, gi.degree());
      terms.push_back({-gi, sigma, {}});
    }
    const auto s0 = prog.add_sos_poly(monomials_up_to(n, d1 / 2));
    terms.push_back({-one, s0, {}});
    prog.add_identity(constant, std::move(terms));
  }

  // ---- Identity (2): L_f B - lambda B - sum phi_j h_j - rho - s1 == 0.
  {
    std::vector<SosProgram::Term> terms;
    Polynomial constant = Polynomial::constant(n, -config.rho);
    if (b_free) {
      // L_f B: one derivative term per state.
      for (std::size_t i = 0; i < n; ++i)
        terms.push_back({closed_field[i], b_var, i});
      // -lambda * B (lambda is fixed here).
      terms.push_back({-(*fixed_lambda), b_var, {}});
    } else {
      // B fixed: L_f B is a known polynomial; -lambda B has lambda free.
      constant += lie_derivative(*fixed_barrier, closed_field);
      if (lambda_free)
        terms.push_back({-(*fixed_barrier), lambda_var, {}});
      else
        constant -= (*fixed_lambda) * (*fixed_barrier);
    }
    for (const auto& hj : h) {
      const auto phi = sos_multiplier(d2, hj.degree());
      terms.push_back({-hj, phi, {}});
    }
    const auto s1 = prog.add_sos_poly(monomials_up_to(n, d2 / 2));
    terms.push_back({-one, s1, {}});
    prog.add_identity(constant, std::move(terms));
  }

  // ---- Identity (3): -B - rho' - sum xi_k q_k - s2 == 0.
  {
    std::vector<SosProgram::Term> terms;
    Polynomial constant = Polynomial::constant(n, -config.rho_prime);
    if (b_free)
      terms.push_back({-one, b_var, {}});
    else
      constant -= *fixed_barrier;
    for (const auto& qk : q) {
      const auto xi = sos_multiplier(d3, qk.degree());
      terms.push_back({-qk, xi, {}});
    }
    const auto s2 = prog.add_sos_poly(monomials_up_to(n, d3 / 2));
    terms.push_back({-one, s2, {}});
    prog.add_identity(constant, std::move(terms));
  }

  const auto result =
      prog.solve(config.sdp, config.identity_tol, config.gram_tol);
  out.max_identity_residual = 0.0;
  for (double r : result.identity_residuals)
    out.max_identity_residual = std::max(out.max_identity_residual, r);
  out.min_gram_eigenvalue = result.min_gram_eigenvalue;
  if (!result.values.empty()) {
    out.barrier = b_free ? result.value(b_var) : *fixed_barrier;
    out.lambda = lambda_free ? result.value(lambda_var) : *fixed_lambda;
  }
  out.feasible = result.feasible;
  if (!result.feasible) out.failure_reason = result.failure_reason;
  return out;
}

/// Fast sampled gate on the *extracted* certificate: Theorem 1's conditions
/// checked pointwise. The SOS identity plus PSD Gram already imply them up
/// to numerical slack; this catches solutions where that slack is not small.
bool quick_certificate_check(const Ccds& system,
                             const std::vector<Polynomial>& closed_field,
                             const Polynomial& barrier,
                             const BarrierConfig& config, Rng& rng) {
  const Polynomial lie = lie_derivative(barrier, closed_field);
  double scale = 1e-9;
  std::vector<Vec> domain_pts;
  for (int i = 0; i < 2000; ++i) {
    Vec x = system.domain.sample(rng);
    scale = std::max(scale, std::fabs(barrier.evaluate(x)));
    domain_pts.push_back(std::move(x));
  }
  const double tol = 1e-4 * scale;
  for (int i = 0; i < 500; ++i) {
    if (barrier.evaluate(system.init_set.sample(rng)) < -tol) return false;
  }
  for (int i = 0; i < 500; ++i) {
    if (barrier.evaluate(system.unsafe_set.sample(rng)) >
        -0.25 * config.rho_prime)
      return false;
  }
  double band = 0.02 * scale;
  for (int widen = 0; widen < 5; ++widen) {
    std::size_t found = 0;
    bool ok = true;
    for (const auto& x : domain_pts) {
      if (std::fabs(barrier.evaluate(x)) <= band) {
        ++found;
        if (lie.evaluate(x) <= 0.0) {
          ok = false;
          break;
        }
      }
    }
    if (found > 0) return ok;
    band *= 2.0;  // thin level set: widen until we see it
  }
  return true;  // level set does not intersect Psi: condition (iii) vacuous
}

Polynomial random_lambda(std::size_t n, LambdaStrategy strategy, int attempt,
                         Rng& rng) {
  switch (strategy) {
    case LambdaStrategy::kZero:
      return Polynomial(n);
    case LambdaStrategy::kConstant: {
      // A negative constant: on the zero level set the term vanishes, while
      // inside {B > 0} it relaxes the Lie condition (L_f B >= lambda B + rho
      // holds near equilibria only when lambda < 0).
      const double c = (attempt == 0) ? -1.0 : rng.uniform(-2.5, -0.1);
      return Polynomial::constant(n, c);
    }
    case LambdaStrategy::kLinear:
    case LambdaStrategy::kAlternating: {
      Polynomial l = Polynomial::constant(n, rng.uniform(-2.0, -0.2));
      for (std::size_t i = 0; i < n; ++i)
        l += Polynomial::variable(n, i) * rng.uniform(-0.3, 0.3);
      return l;
    }
  }
  return Polynomial(n);
}

// ---- The ladder as an explicit arm grid.
//
// One arm = one (lambda-strategy, degree-rung, attempt) cell of the retry
// ladder, self-contained: its own Rng stream (forked by flat index from
// BarrierConfig::seed, so an arm's draws never depend on which other arms
// ran or what they returned) and its own JobControl scope. The serial
// ladder walks the arms in order; the portfolio racer runs them
// speculatively and cancels the losers.

struct Arm {
  LambdaStrategy strategy = LambdaStrategy::kConstant;
  int degree = 0;   // d_B rung
  int attempt = 0;  // lambda retry within the rung
};

std::string arm_desc(const Arm& arm) {
  return to_string(arm.strategy) + "/d=" + std::to_string(arm.degree) +
         "/a=" + std::to_string(arm.attempt);
}

/// Flatten the configured ladder. Degree-major (cheap rungs first), then
/// strategy, then attempt: with a single strategy this is exactly the
/// classic serial schedule.
std::vector<Arm> enumerate_arms(const BarrierConfig& config) {
  // A non-empty strategy list defines the grid whether or not racing is
  // on: the serial ladder, the racer, and replay must all see the same
  // arm indexing for winner_arm to be meaningful across modes.
  std::vector<LambdaStrategy> strategies;
  if (!config.race.strategies.empty())
    strategies = config.race.strategies;
  else
    strategies = {config.lambda_strategy};
  std::vector<Arm> arms;
  for (int d_b : config.degree_schedule) {
    SCS_REQUIRE(d_b >= 1, "synthesize_barrier: degrees must be >= 1");
    for (LambdaStrategy strategy : strategies) {
      const int attempts = (strategy == LambdaStrategy::kZero)
                               ? 1
                               : config.lambda_attempts;
      for (int attempt = 0; attempt < attempts; ++attempt)
        arms.push_back({strategy, d_b, attempt});
    }
  }
  return arms;
}

struct ArmOutcome {
  /// The final solve of the arm. When feasible, the diagnostics inside are
  /// those of the *accepted* solve (lambda-step, B-step, or plain LMI).
  ProgramOutcome program;
  /// "lmi" | "bmi-lambda" | "bmi-b" when feasible, "" otherwise.
  std::string accepted_via;
  int attempts = 0;  // SOS programs solved by this arm
  /// Stopped by the arm's JobControl (race loser or job-level stop) rather
  /// than by running out of ideas.
  bool preempted = false;
  /// The arm got past its control gate and built at least one program.
  bool launched = false;
};

/// One complete arm: draw lambda, solve the LMI, run the alternating BMI
/// recovery when configured, gate the extracted certificate. `rng` is the
/// arm's private stream; `control` its cancellation scope.
ArmOutcome run_arm(const Ccds& system,
                   const std::vector<Polynomial>& closed_field,
                   const Arm& arm, const BarrierConfig& config,
                   const JobControl* control, Rng rng) {
  ArmOutcome out;
  if (stop_requested(control)) {
    out.preempted = true;
    return out;
  }
  out.launched = true;
  BarrierConfig cfg = config;
  cfg.sdp.control = control;  // preempts every inner solve mid-interior-point

  Polynomial lambda =
      random_lambda(system.num_states, arm.strategy, arm.attempt, rng);
  ++out.attempts;
  ProgramOutcome outcome = solve_program(
      system, closed_field, arm.degree,
      lambda.degree() < 0 ? 0 : lambda.degree(), nullptr, &lambda, cfg);
  std::string via = "lmi";

  // Alternating BMI heuristic: bounce between the lambda-step (B fixed)
  // and the B-step (lambda fixed), starting from the best iterate of the
  // failed LMI solve.
  if (!outcome.feasible && arm.strategy == LambdaStrategy::kAlternating &&
      !outcome.barrier.is_zero()) {
    Polynomial b_cur = outcome.barrier;
    for (int round = 0; round < config.bmi_rounds && !outcome.feasible;
         ++round) {
      if (stop_requested(control)) break;
      // lambda-step: fix B, free lambda (degree 1).
      ++out.attempts;
      ProgramOutcome lam_step = solve_program(system, closed_field,
                                              arm.degree, 1, &b_cur, nullptr,
                                              cfg);
      if (lam_step.lambda.is_zero() && !lam_step.feasible) break;
      lambda = lam_step.lambda;
      if (lam_step.feasible) {
        // Adopt the accepted solve wholesale -- barrier, lambda, AND its
        // diagnostics (the residual/eigenvalue of the earlier failed solve
        // must not outlive it).
        outcome = lam_step;
        via = "bmi-lambda";
        break;
      }
      if (stop_requested(control)) break;
      // B-step: fix lambda, free B.
      ++out.attempts;
      ProgramOutcome b_step =
          solve_program(system, closed_field, arm.degree, lambda.degree(),
                        nullptr, &lambda, cfg);
      // The last solve's diagnostics stand even when the B-step collapses
      // to the zero polynomial and the recovery is abandoned.
      outcome.max_identity_residual = b_step.max_identity_residual;
      outcome.min_gram_eigenvalue = b_step.min_gram_eigenvalue;
      if (b_step.barrier.is_zero()) break;
      b_cur = b_step.barrier;
      outcome = b_step;
      via = "bmi-b";
    }
  }

  if (outcome.feasible &&
      !quick_certificate_check(system, closed_field, outcome.barrier, config,
                               rng)) {
    outcome.feasible = false;
    outcome.failure_reason = "certificate failed the sampled Theorem-1 gate";
  }
  out.preempted = stop_requested(control);
  if (out.preempted) outcome.feasible = false;
  out.accepted_via = outcome.feasible ? via : "";
  out.program = std::move(outcome);
  return out;
}

}  // namespace

namespace {

/// Diagonal rescaling of a semialgebraic set: y-space member iff x = S y is
/// an x-space member. The analytic distance (if any) is dropped; the
/// barrier stage only needs membership and sampling.
SemialgebraicSet scale_set(const SemialgebraicSet& set, const Vec& s) {
  std::vector<Polynomial> ineqs;
  ineqs.reserve(set.inequalities().size());
  for (const auto& g : set.inequalities()) ineqs.push_back(g.scale_vars(s));
  Vec lo = set.sampling_box().lo;
  Vec hi = set.sampling_box().hi;
  for (std::size_t i = 0; i < s.size(); ++i) {
    lo[i] /= s[i];
    hi[i] /= s[i];
  }
  return SemialgebraicSet(std::move(ineqs), Box(lo, hi));
}

}  // namespace

BarrierResult synthesize_barrier_closed(
    const Ccds& system_in, const std::vector<Polynomial>& closed_field_in,
    const BarrierConfig& config) {
  SCS_REQUIRE(closed_field_in.size() == system_in.num_states,
              "synthesize_barrier_closed: field dimension mismatch");
  BarrierResult result;
  Stopwatch sw;
  Rng rng(config.seed);

  // ---- Rescale the problem to the unit box: x = S y with S = diag(s).
  // Degree-8+ monomials on a box reaching |x_i| = 5 take values ~ 1e7, so
  // coefficient-level SOS residual tolerances would not control pointwise
  // error; on [-1,1]^n they do. ydot = S^{-1} f(S y).
  const std::size_t n = system_in.num_states;
  Vec s(n, 1.0);
  {
    const Box& box = system_in.domain.sampling_box();
    for (std::size_t i = 0; i < n; ++i)
      s[i] = std::max({std::fabs(box.lo[i]), std::fabs(box.hi[i]), 1e-9});
  }
  Ccds system = system_in;  // shallow copy; only the sets are rescaled
  system.init_set = scale_set(system_in.init_set, s);
  system.domain = scale_set(system_in.domain, s);
  system.unsafe_set = scale_set(system_in.unsafe_set, s);
  std::vector<Polynomial> closed_field;
  closed_field.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    closed_field.push_back(closed_field_in[i].scale_vars(s) * (1.0 / s[i]));
  Vec s_inv(n);
  for (std::size_t i = 0; i < n; ++i) s_inv[i] = 1.0 / s[i];

  const std::vector<Arm> arms = enumerate_arms(config);
  std::vector<Rng> streams = rng.fork_streams(arms.size());

  // Adopt the arm's accepted solve into the result, mapping the certificate
  // back to the original coordinates: B(x) = B_y(S^{-1} x).
  const auto accept = [&](std::size_t index, const ArmOutcome& out) {
    result.success = true;
    result.barrier = out.program.barrier.scale_vars(s_inv);
    result.lambda = out.program.lambda.scale_vars(s_inv);
    result.degree = arms[index].degree;
    result.strategy_used = arms[index].strategy;
    result.max_identity_residual = out.program.max_identity_residual;
    result.min_gram_eigenvalue = out.program.min_gram_eigenvalue;
    result.accepted_via = out.accepted_via;
    result.winner_arm = static_cast<int>(index);
    result.winner_arm_desc = arm_desc(arms[index]);
    result.failure_reason.clear();
  };

  // ---- Deterministic replay: run exactly the recorded winner arm under
  // its recorded stream. Bitwise-equal to the raced result it reproduces
  // (arm numerics are schedule-independent by construction).
  if (config.race.replay_arm >= 0) {
    const auto index = static_cast<std::size_t>(config.race.replay_arm);
    result.raced = true;
    if (index >= arms.size()) {
      result.seconds = sw.seconds();
      result.failure_reason = "replay_arm out of range for the arm grid";
      return result;
    }
    ArmOutcome out = run_arm(system, closed_field, arms[index], config,
                             config.sdp.control, streams[index]);
    result.attempts = out.attempts;
    result.arms_launched = out.launched ? 1 : 0;
    result.max_identity_residual = out.program.max_identity_residual;
    result.min_gram_eigenvalue = out.program.min_gram_eigenvalue;
    if (out.program.feasible) {
      accept(index, out);
      result.seconds = sw.seconds();
      log_info("barrier: replayed arm ", result.winner_arm_desc, " in ",
               result.seconds, "s");
    } else {
      result.seconds = sw.seconds();
      result.failure_reason =
          out.preempted ? "preempted (job cancelled or deadline)"
                        : "replayed arm no longer yields a certificate: " +
                              out.program.failure_reason;
    }
    return result;
  }

  // ---- Portfolio race: every arm runs speculatively under its own child
  // JobControl; the first feasible arm wins and cancels the rest. Which
  // arm wins is timing-dependent, but each arm's *numerics* are not, so
  // replaying the recorded winner reproduces the result bitwise.
  if (config.race.enabled) {
    result.raced = true;
    std::vector<std::unique_ptr<JobControl>> controls;
    controls.reserve(arms.size());
    for (std::size_t i = 0; i < arms.size(); ++i)
      controls.push_back(std::make_unique<JobControl>(config.sdp.control));
    std::vector<ArmOutcome> outcomes(arms.size());
    std::atomic<int> winner{-1};
    // parallel_for lets the calling thread claim chunks too, so racing
    // composes with outer parallelism (synthesize_many fan-out) without
    // deadlock even when every pool worker is busy.
    parallel_for(arms.size(), 1, [&](std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) {
        if (winner.load(std::memory_order_acquire) >= 0) {
          outcomes[i].preempted = true;
          continue;
        }
        // One span per arm lifetime (correlated to the serve request via
        // the ambient id): winners and mid-solve-cancelled losers are told
        // apart by the race.winner / race.preempted instants inside.
        TraceSpan arm_span(trace_enabled() ? "race.arm:" + arm_desc(arms[i])
                                           : std::string());
        outcomes[i] = run_arm(system, closed_field, arms[i], config,
                              controls[i].get(), streams[i]);
        if (!outcomes[i].program.feasible) {
          if (outcomes[i].preempted) trace_instant("race.preempted");
          continue;
        }
        int expected = -1;
        if (winner.compare_exchange_strong(expected, static_cast<int>(i),
                                           std::memory_order_acq_rel)) {
          trace_instant("race.winner");
          for (std::size_t j = 0; j < arms.size(); ++j)
            if (j != i) controls[j]->cancel();
        } else {
          // Photo finish: another arm won first; this certificate is
          // discarded so the result matches what a replay of the winner
          // produces.
          outcomes[i].preempted = true;
          outcomes[i].program.feasible = false;
          trace_instant("race.preempted");
        }
      }
    });
    const int win = winner.load(std::memory_order_acquire);
    for (std::size_t i = 0; i < arms.size(); ++i) {
      result.attempts += outcomes[i].attempts;
      if (outcomes[i].launched) ++result.arms_launched;
      if (outcomes[i].preempted) ++result.arms_cancelled;
    }
    result.seconds = sw.seconds();
    if (metrics_enabled()) {
      static Counter& launched =
          MetricsRegistry::instance().counter("race.arms_launched");
      static Counter& cancelled =
          MetricsRegistry::instance().counter("race.arms_cancelled");
      static Histogram& latency =
          MetricsRegistry::instance().histogram("race.winner_latency_ms");
      launched.add(result.arms_launched);
      cancelled.add(result.arms_cancelled);
      if (win >= 0)
        latency.observe(static_cast<std::uint64_t>(result.seconds * 1e3));
    }
    if (win >= 0) {
      accept(static_cast<std::size_t>(win),
             outcomes[static_cast<std::size_t>(win)]);
      log_info("barrier: race won by arm ", result.winner_arm_desc, " (",
               result.arms_launched, " launched, ", result.arms_cancelled,
               " cancelled), ", result.seconds, "s");
    } else if (stop_requested(config.sdp.control)) {
      result.failure_reason = "preempted (job cancelled or deadline)";
    } else {
      // Every arm completed naturally; surface the last arm's diagnostics
      // (deterministic: independent of scheduling).
      if (!outcomes.empty()) {
        result.max_identity_residual =
            outcomes.back().program.max_identity_residual;
        result.min_gram_eigenvalue =
            outcomes.back().program.min_gram_eigenvalue;
        result.failure_reason = outcomes.back().program.failure_reason;
      }
      if (result.failure_reason.empty())
        result.failure_reason =
            "no feasible certificate in the degree schedule";
    }
    return result;
  }

  // ---- Serial ladder: walk the arms in order. Identical schedule to the
  // classic nested degree/attempt loops, but each arm draws from its own
  // stream so its numerics match what the racer (and replay) would produce
  // for the same flat index.
  for (std::size_t i = 0; i < arms.size(); ++i) {
    // Job-level preemption: the SDP under a stopped control returns
    // immediately, so without this gate the ladder would still burn one
    // program *construction* per remaining rung.
    if (stop_requested(config.sdp.control)) {
      result.seconds = sw.seconds();
      result.failure_reason = "preempted (job cancelled or deadline)";
      return result;
    }
    ArmOutcome out = run_arm(system, closed_field, arms[i], config,
                             config.sdp.control, streams[i]);
    result.attempts += out.attempts;
    if (out.launched) ++result.arms_launched;
    result.max_identity_residual = out.program.max_identity_residual;
    result.min_gram_eigenvalue = out.program.min_gram_eigenvalue;
    result.failure_reason = out.program.failure_reason;
    if (out.program.feasible) {
      accept(i, out);
      result.seconds = sw.seconds();
      log_info("barrier: found certificate of degree ", result.degree,
               " after ", result.attempts, " attempt(s), ", result.seconds,
               "s");
      return result;
    }
  }
  result.seconds = sw.seconds();
  if (result.failure_reason.empty())
    result.failure_reason = "no feasible certificate in the degree schedule";
  return result;
}

BarrierResult synthesize_barrier(const Ccds& system,
                                 const std::vector<Polynomial>& controller,
                                 const BarrierConfig& config) {
  return synthesize_barrier_closed(system, system.closed_loop(controller),
                                   config);
}


void hash_append(Fnv1a& h, const BarrierRaceConfig& c) {
  hash_append(h, c.enabled ? 1 : 0);
  hash_append(h, static_cast<std::uint64_t>(c.strategies.size()));
  for (LambdaStrategy s : c.strategies) hash_append(h, static_cast<int>(s));
  hash_append(h, c.replay_arm);
}

void hash_append(Fnv1a& h, const BarrierConfig& c) {
  hash_append(h, c.degree_schedule);
  hash_append(h, c.rho);
  hash_append(h, c.rho_prime);
  hash_append(h, static_cast<int>(c.lambda_strategy));
  hash_append(h, c.lambda_attempts);
  hash_append(h, c.bmi_rounds);
  hash_append(h, c.seed);
  hash_append(h, c.sdp);
  hash_append(h, c.identity_tol);
  hash_append(h, c.gram_tol);
  hash_append(h, static_cast<std::uint64_t>(c.max_sdp_constraints));
  hash_append(h, c.race);
}

}  // namespace scs
