// Lyapunov-function synthesis on the same SOS machinery -- the natural
// companion of barrier certificates (and the "stability" half of what
// learned controllers are usually asked to certify).
//
// For a closed-loop polynomial field f with f(0) = 0, find V with
//   V(x) - eps ||x||^2        SOS   (positive definiteness)
//   -L_f V(x) - eps ||x||^2   SOS   (strict decrease)
// over the whole space (global) -- sufficient for asymptotic stability of
// the origin.
#pragma once

#include <string>

#include "opt/sdp.hpp"
#include "poly/polynomial.hpp"

namespace scs {

struct LyapunovConfig {
  std::vector<int> degree_schedule = {2, 4};
  double epsilon = 1e-3;  // definiteness margin coefficient
  SdpOptions sdp;
  double identity_tol = 1e-5;
  double gram_tol = 1e-6;
};

struct LyapunovResult {
  bool success = false;
  Polynomial function;  // V(x)
  int degree = 0;
  std::string failure_reason;
};

/// Synthesize a global polynomial Lyapunov function for the (closed-loop)
/// field. The field must vanish at the origin up to `equilibrium_tol`.
LyapunovResult synthesize_lyapunov(const std::vector<Polynomial>& field,
                                   const LyapunovConfig& config = {},
                                   double equilibrium_tol = 1e-9);

}  // namespace scs
