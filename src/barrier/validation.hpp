// A-posteriori numerical validation of barrier certificates: dense sampling
// of the three conditions of Theorem 1 plus closed-loop simulation spot
// checks. The SOS identity residual check lives in SosProgram::solve; this
// module independently cross-examines the *extracted* certificate.
#pragma once

#include <string>

#include "poly/polynomial.hpp"
#include "systems/ccds.hpp"
#include "util/rng.hpp"

namespace scs {

class Fnv1a;

struct ValidationConfig {
  std::size_t samples_per_set = 4000;
  /// Relative half-width of the B ~ 0 band for condition (iii), as a
  /// fraction of max |B| over the domain samples.
  double boundary_band = 0.05;
  /// Relative slack (scaled by max |B| over the domain) granted to the
  /// sampled condition checks; covers Gram-rounding noise of the SDP.
  double tolerance = 2e-3;
  /// Simulation spot checks: rollouts from Theta that must avoid X_u.
  int simulation_rollouts = 20;
  double simulation_dt = 0.01;
  std::size_t simulation_steps = 3000;
};

void hash_append(Fnv1a& h, const ValidationConfig& c);

struct ValidationReport {
  bool passed = false;
  double min_b_on_theta = 0.0;    // condition (i): should be >= -tol
  double max_b_on_unsafe = 0.0;   // condition (ii): should be < 0
  double min_lie_on_boundary = 0.0;  // condition (iii): should be > 0
  std::size_t boundary_samples = 0;
  int safe_rollouts = 0;
  int total_rollouts = 0;
  std::string detail;
};

/// Validate B for the closed-loop system under the polynomial controller.
ValidationReport validate_barrier(const Ccds& system,
                                  const std::vector<Polynomial>& controller,
                                  const Polynomial& barrier,
                                  const ValidationConfig& config, Rng& rng);

}  // namespace scs
