#include "math/qr.hpp"

#include <cmath>

#include "util/check.hpp"

namespace scs {

Qr::Qr(const Mat& a)
    : m_(a.rows()), n_(a.cols()), qr_(a), beta_(a.cols()), v0_(a.cols(), 0.0) {
  SCS_REQUIRE(m_ >= n_, "Qr: requires rows >= cols");
  for (std::size_t k = 0; k < n_; ++k) {
    // Norm of the trailing part of column k.
    double norm = 0.0;
    for (std::size_t i = k; i < m_; ++i) norm += qr_(i, k) * qr_(i, k);
    norm = std::sqrt(norm);
    if (norm == 0.0) {
      beta_[k] = 0.0;
      continue;
    }
    const double alpha = (qr_(k, k) >= 0.0) ? -norm : norm;
    const double v0 = qr_(k, k) - alpha;
    double vnorm2 = v0 * v0;
    for (std::size_t i = k + 1; i < m_; ++i) vnorm2 += qr_(i, k) * qr_(i, k);
    if (vnorm2 == 0.0) {
      beta_[k] = 0.0;
      qr_(k, k) = alpha;
      continue;
    }
    beta_[k] = 2.0 / vnorm2;
    v0_[k] = v0;
    // Apply H = I - beta v v^T to the trailing columns. The sub-diagonal part
    // of column k already holds v_{k+1..m-1}; v0 is kept separately.
    for (std::size_t j = k + 1; j < n_; ++j) {
      double s = v0 * qr_(k, j);
      for (std::size_t i = k + 1; i < m_; ++i) s += qr_(i, k) * qr_(i, j);
      s *= beta_[k];
      qr_(k, j) -= s * v0;
      for (std::size_t i = k + 1; i < m_; ++i) qr_(i, j) -= s * qr_(i, k);
    }
    qr_(k, k) = alpha;
  }
}

std::size_t Qr::rank(double rel_tol) const {
  double rmax = 0.0;
  for (std::size_t i = 0; i < n_; ++i)
    rmax = std::max(rmax, std::fabs(qr_(i, i)));
  if (rmax == 0.0) return 0;
  std::size_t r = 0;
  for (std::size_t i = 0; i < n_; ++i)
    if (std::fabs(qr_(i, i)) > rel_tol * rmax) ++r;
  return r;
}

Vec Qr::apply_qt(const Vec& b) const {
  SCS_REQUIRE(b.size() == m_, "Qr::apply_qt: size mismatch");
  Vec y(b);
  for (std::size_t k = 0; k < n_; ++k) {
    if (beta_[k] == 0.0) continue;
    double s = v0_[k] * y[k];
    for (std::size_t i = k + 1; i < m_; ++i) s += qr_(i, k) * y[i];
    s *= beta_[k];
    y[k] -= s * v0_[k];
    for (std::size_t i = k + 1; i < m_; ++i) y[i] -= s * qr_(i, k);
  }
  return y;
}

Vec Qr::solve_least_squares(const Vec& b) const {
  Vec y = apply_qt(b);
  Vec x(n_);
  for (std::size_t ii = n_; ii-- > 0;) {
    const double rii = qr_(ii, ii);
    SCS_REQUIRE(std::fabs(rii) > 1e-14,
                "Qr::solve_least_squares: rank-deficient matrix");
    double acc = y[ii];
    for (std::size_t j = ii + 1; j < n_; ++j) acc -= qr_(ii, j) * x[j];
    x[ii] = acc / rii;
  }
  return x;
}

Mat Qr::r() const {
  Mat out(n_, n_);
  for (std::size_t i = 0; i < n_; ++i)
    for (std::size_t j = i; j < n_; ++j) out(i, j) = qr_(i, j);
  return out;
}

Vec least_squares(const Mat& a, const Vec& b) {
  return Qr(a).solve_least_squares(b);
}

}  // namespace scs
