// LU factorization with partial pivoting, and linear solves built on it.
#pragma once

#include <optional>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace scs {

/// LU factorization with partial pivoting of a square matrix.
/// Construction performs the factorization; `singular()` reports whether a
/// pivot collapsed below tolerance (solves then throw).
class Lu {
 public:
  explicit Lu(const Mat& a, double pivot_tol = 1e-13);

  bool singular() const { return singular_; }

  /// Solve A x = b.
  Vec solve(const Vec& b) const;
  /// Solve A X = B column-by-column.
  Mat solve(const Mat& b) const;
  /// Solve A^T x = b (used by the Hager condition estimator).
  Vec solve_transposed(const Vec& b) const;

  /// Determinant of A (0 if flagged singular).
  double determinant() const;

 private:
  Mat lu_;                    // packed L (unit lower) and U
  std::vector<std::size_t> perm_;  // row permutation
  int perm_sign_ = 1;
  bool singular_ = false;
};

/// Convenience: solve A x = b, returning std::nullopt when A is singular.
std::optional<Vec> solve_linear(const Mat& a, const Vec& b);

/// Convenience: inverse of A (throws on singular input).
Mat inverse(const Mat& a);

}  // namespace scs
