// Dense real vector with the operations the numerical kernels need.
//
// This is deliberately a small value type (not an expression-template
// library): problem sizes in this project are at most a few thousand, and
// clarity of the solver code matters more than avoiding temporaries.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <string>
#include <vector>

namespace scs {

class Fnv1a;

class Vec {
 public:
  Vec() = default;
  explicit Vec(std::size_t n, double value = 0.0);
  Vec(std::initializer_list<double> values);
  explicit Vec(std::vector<double> values);

  std::size_t size() const { return data_.size(); }
  bool empty() const { return data_.empty(); }

  double& operator[](std::size_t i) { return data_[i]; }
  double operator[](std::size_t i) const { return data_[i]; }

  /// Bounds-checked access (throws PreconditionError).
  double& at(std::size_t i);
  double at(std::size_t i) const;

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double* begin() { return data_.data(); }
  double* end() { return data_.data() + data_.size(); }
  const double* begin() const { return data_.data(); }
  const double* end() const { return data_.data() + data_.size(); }

  Vec& operator+=(const Vec& rhs);
  Vec& operator-=(const Vec& rhs);
  Vec& operator*=(double s);
  Vec& operator/=(double s);

  /// this += s * rhs.
  Vec& axpy(double s, const Vec& rhs);

  /// Euclidean norm.
  double norm() const;
  /// Maximum absolute entry (0 for empty vectors).
  double max_abs() const;
  /// Sum of entries.
  double sum() const;

  /// Fill with a constant.
  void fill(double value);

  std::string to_string() const;

 private:
  std::vector<double> data_;
};

Vec operator+(Vec lhs, const Vec& rhs);
Vec operator-(Vec lhs, const Vec& rhs);
Vec operator*(double s, Vec v);
Vec operator*(Vec v, double s);
Vec operator/(Vec v, double s);
Vec operator-(Vec v);

/// Dot product; sizes must match.
double dot(const Vec& a, const Vec& b);

/// Elementwise product.
Vec hadamard(const Vec& a, const Vec& b);

/// Concatenate two vectors (used to feed [state; action] into the critic).
Vec concat(const Vec& a, const Vec& b);

/// Maximum absolute difference between two equally sized vectors.
double max_abs_diff(const Vec& a, const Vec& b);

/// Fold a vector into a cache-key digest (size, then raw IEEE-754 bits).
void hash_append(Fnv1a& h, const Vec& v);

}  // namespace scs
