#include "math/eigen_sym.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/check.hpp"

namespace scs {

EigenSym eigen_sym(const Mat& a_in, int max_sweeps, double tol) {
  SCS_REQUIRE(a_in.rows() == a_in.cols(), "eigen_sym: matrix must be square");
  const std::size_t n = a_in.rows();
  Mat a = a_in;
  a.symmetrize();
  Mat v = Mat::identity(n);

  // Scale-aware stopping threshold.
  const double scale = std::max(a.max_abs(), 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    double off = 0.0;
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) off += a(i, j) * a(i, j);
    if (std::sqrt(off) <= tol * scale * n) break;

    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::fabs(apq) <= tol * scale * 1e-3) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        // Classical Jacobi rotation.
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0)
                             ? 1.0 / (theta + std::sqrt(1.0 + theta * theta))
                             : 1.0 / (theta - std::sqrt(1.0 + theta * theta));
        const double c = 1.0 / std::sqrt(1.0 + t * t);
        const double s = t * c;
        // Update A = J^T A J.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = c * akp - s * akq;
          a(k, q) = s * akp + c * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = c * apk - s * aqk;
          a(q, k) = s * apk + c * aqk;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Gather and sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(),
            [&a](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });

  EigenSym out;
  out.values = Vec(n);
  out.vectors = Mat(n, n);
  for (std::size_t k = 0; k < n; ++k) {
    out.values[k] = a(order[k], order[k]);
    for (std::size_t i = 0; i < n; ++i) out.vectors(i, k) = v(i, order[k]);
  }
  return out;
}

double min_eigenvalue(const Mat& a) {
  if (a.rows() == 0) return 0.0;
  return eigen_sym(a).values[0];
}

double max_eigenvalue(const Mat& a) {
  if (a.rows() == 0) return 0.0;
  const EigenSym e = eigen_sym(a);
  return e.values[e.values.size() - 1];
}

}  // namespace scs
