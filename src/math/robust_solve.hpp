// Robust linear solves: condition estimation, diagonal-regularization retry,
// and one round of iterative refinement on top of the raw Cholesky / LU
// factorizations.
//
// The raw factorizations stay lean (a bool `ok` flag); every call site that
// previously treated "not ok" as fatal goes through this layer instead and
// receives a structured SolveStatus: recovered solves are usable (with the
// applied regularization on record), unrecoverable ones are reported without
// throwing.
#pragma once

#include <functional>

#include "math/cholesky.hpp"
#include "math/lu.hpp"
#include "math/mat.hpp"
#include "math/solve_status.hpp"
#include "math/vec.hpp"

namespace scs {

struct RobustSolveOptions {
  /// Maximum diagonal-regularization retries after a failed factorization.
  /// Each retry multiplies the shift by `shift_growth`.
  int max_regularize_attempts = 8;
  double shift_growth = 100.0;
  /// Initial shift as a multiple of max|diag| (floored at an absolute tiny).
  double initial_shift_scale = 1e-14;
  /// Refinement triggers when ||b - A x||_inf > tol * (1 + ||b||_inf).
  double refine_tol = 1e-12;
  /// Estimate cond_1(A) via Hager's method (costs a few extra solves).
  bool estimate_condition = false;
};

/// Outcome of a robust solve. `x` is finite whenever status != kFailed.
struct LinearSolveReport {
  SolveStatus status = SolveStatus::kFailed;
  Vec x;
  /// Final diagonal shift added to A (0 when none was needed).
  double regularization = 0.0;
  /// Factorization attempts performed (1 = clean first try).
  int factor_attempts = 0;
  /// ||b - A x||_inf against the *original* A, after refinement.
  double residual_norm = 0.0;
  /// Whether the refinement correction was applied.
  bool refined = false;
  /// Hager 1-norm condition estimate of the factored matrix (0 = not
  /// requested or unavailable).
  double condition_estimate = 0.0;

  bool ok() const { return status != SolveStatus::kFailed; }
};

/// A Cholesky factor obtained with the same retry ladder, for callers that
/// need the factor itself (repeated solves, e.g. the SDP Schur complement).
struct RobustCholesky {
  Cholesky factor{Mat(), 0.0};
  SolveStatus status = SolveStatus::kFailed;
  double regularization = 0.0;
  int factor_attempts = 0;

  bool ok() const { return status != SolveStatus::kFailed; }
};

/// Factor the SPD matrix `a`, escalating a diagonal shift until the
/// factorization succeeds or the retry budget is exhausted.
RobustCholesky robust_cholesky(const Mat& a,
                               const RobustSolveOptions& options = {});

/// Solve the SPD system A x = b with retry + one round of refinement.
LinearSolveReport robust_solve_spd(const Mat& a, const Vec& b,
                                   const RobustSolveOptions& options = {});

/// Solve the general square system A x = b (LU with partial pivoting) with
/// retry + one round of refinement.
LinearSolveReport robust_solve_linear(const Mat& a, const Vec& b,
                                      const RobustSolveOptions& options = {});

/// 1-norm of a matrix (max column sum).
double norm1(const Mat& a);

/// Hager/Higham estimate of ||A^{-1}||_1 given solves with A and A^T.
/// `solve` must compute A^{-1} v, `solve_t` must compute A^{-T} v.
double estimate_inverse_norm1(
    std::size_t n, const std::function<Vec(const Vec&)>& solve,
    const std::function<Vec(const Vec&)>& solve_t);

/// cond_1(A) estimate for an SPD matrix via its Cholesky factor.
double condition_estimate_spd(const Mat& a, const Cholesky& factor);

/// cond_1(A) estimate for a general square matrix via its LU factor.
double condition_estimate_lu(const Mat& a, const Lu& factor);

}  // namespace scs
