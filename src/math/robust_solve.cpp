#include "math/robust_solve.hpp"

#include <algorithm>
#include <cmath>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace scs {

namespace {

bool all_finite(const Vec& v) {
  for (double x : v.data())
    if (!std::isfinite(x)) return false;
  return true;
}

double max_abs_diag(const Mat& a) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    d = std::max(d, std::fabs(a(i, i)));
  return d;
}

/// ||b - A x||_inf.
double residual_inf(const Mat& a, const Vec& b, const Vec& x) {
  Vec r = b;
  r -= matvec(a, x);
  return r.max_abs();
}

/// One round of iterative refinement against the *original* matrix, using
/// `solve` (built on the possibly-regularized factor) for the correction.
/// Updates x and returns the final residual; sets `refined` when the
/// correction was kept.
double refine_once(const Mat& a, const Vec& b, Vec& x,
                   const std::function<Vec(const Vec&)>& solve,
                   double refine_tol, bool& refined) {
  refined = false;
  double res = residual_inf(a, b, x);
  if (res <= refine_tol * (1.0 + b.max_abs())) return res;
  Vec r = b;
  r -= matvec(a, x);
  const Vec dx = solve(r);
  if (!all_finite(dx)) return res;
  Vec x2 = x;
  x2 += dx;
  const double res2 = residual_inf(a, b, x2);
  if (res2 < res) {
    x = std::move(x2);
    res = res2;
    refined = true;
  }
  return res;
}

}  // namespace

double norm1(const Mat& a) {
  double best = 0.0;
  for (std::size_t j = 0; j < a.cols(); ++j) {
    double s = 0.0;
    for (std::size_t i = 0; i < a.rows(); ++i) s += std::fabs(a(i, j));
    best = std::max(best, s);
  }
  return best;
}

double estimate_inverse_norm1(
    std::size_t n, const std::function<Vec(const Vec&)>& solve,
    const std::function<Vec(const Vec&)>& solve_t) {
  if (n == 0) return 0.0;
  // Hager's algorithm: power iteration on the polytope ||x||_1 <= 1.
  Vec x(n, 1.0 / static_cast<double>(n));
  double est = 0.0;
  std::size_t prev_j = n;
  for (int iter = 0; iter < 5; ++iter) {
    const Vec y = solve(x);
    if (!all_finite(y)) return 0.0;
    double y1 = 0.0;
    for (double v : y.data()) y1 += std::fabs(v);
    est = std::max(est, y1);
    Vec xi(n);
    for (std::size_t i = 0; i < n; ++i) xi[i] = (y[i] >= 0.0) ? 1.0 : -1.0;
    const Vec z = solve_t(xi);
    if (!all_finite(z)) return est;
    std::size_t j = 0;
    for (std::size_t i = 1; i < n; ++i)
      if (std::fabs(z[i]) > std::fabs(z[j])) j = i;
    if (std::fabs(z[j]) <= dot(z, x) || j == prev_j) break;
    prev_j = j;
    x = Vec(n, 0.0);
    x[j] = 1.0;
  }
  return est;
}

double condition_estimate_spd(const Mat& a, const Cholesky& factor) {
  if (!factor.ok()) return 0.0;
  const auto solve = [&factor](const Vec& v) { return factor.solve(v); };
  // A is symmetric: A^{-T} = A^{-1}.
  return norm1(a) * estimate_inverse_norm1(a.rows(), solve, solve);
}

double condition_estimate_lu(const Mat& a, const Lu& factor) {
  if (factor.singular()) return 0.0;
  const auto solve = [&factor](const Vec& v) { return factor.solve(v); };
  const auto solve_t = [&factor](const Vec& v) {
    return factor.solve_transposed(v);
  };
  return norm1(a) * estimate_inverse_norm1(a.rows(), solve, solve_t);
}

RobustCholesky robust_cholesky(const Mat& a,
                               const RobustSolveOptions& options) {
  RobustCholesky out;
  out.factor = Cholesky(a);
  out.factor_attempts = 1;
  if (out.factor.ok()) {
    out.status = SolveStatus::kOk;
    return out;
  }
  double shift =
      std::max(options.initial_shift_scale * std::max(1.0, max_abs_diag(a)),
               1e-300);
  for (int k = 0; k < options.max_regularize_attempts; ++k) {
    Mat shifted = a;
    for (std::size_t i = 0; i < a.rows(); ++i) shifted(i, i) += shift;
    out.factor = Cholesky(shifted);
    ++out.factor_attempts;
    if (metrics_enabled()) {
      static Counter& retries = MetricsRegistry::instance().counter(
          "robust.cholesky_regularize_retries");
      retries.add(1);
    }
    if (out.factor.ok()) {
      out.status = SolveStatus::kRegularized;
      out.regularization = shift;
      return out;
    }
    shift *= options.shift_growth;
  }
  out.status = SolveStatus::kFailed;
  return out;
}

LinearSolveReport robust_solve_spd(const Mat& a, const Vec& b,
                                   const RobustSolveOptions& options) {
  SCS_REQUIRE(a.rows() == a.cols() && b.size() == a.rows(),
              "robust_solve_spd: shape mismatch");
  LinearSolveReport report;
  const RobustCholesky rc = robust_cholesky(a, options);
  report.factor_attempts = rc.factor_attempts;
  report.regularization = rc.regularization;
  if (!rc.ok()) return report;

  report.x = rc.factor.solve(b);
  if (!all_finite(report.x)) {
    report.status = SolveStatus::kFailed;
    return report;
  }
  const auto solve = [&rc](const Vec& v) { return rc.factor.solve(v); };
  report.residual_norm =
      refine_once(a, b, report.x, solve, options.refine_tol, report.refined);
  if (report.refined && metrics_enabled()) {
    static Counter& refinements =
        MetricsRegistry::instance().counter("robust.refinements");
    refinements.add(1);
  }
  report.status = (rc.status == SolveStatus::kRegularized)
                      ? SolveStatus::kRegularized
                      : (report.refined ? SolveStatus::kRefined
                                        : SolveStatus::kOk);
  if (options.estimate_condition)
    report.condition_estimate = condition_estimate_spd(a, rc.factor);
  return report;
}

LinearSolveReport robust_solve_linear(const Mat& a, const Vec& b,
                                      const RobustSolveOptions& options) {
  SCS_REQUIRE(a.rows() == a.cols() && b.size() == a.rows(),
              "robust_solve_linear: shape mismatch");
  LinearSolveReport report;
  Lu lu(a);
  report.factor_attempts = 1;
  double shift = 0.0;
  if (lu.singular()) {
    shift =
        std::max(options.initial_shift_scale * std::max(1.0, max_abs_diag(a)),
                 1e-300);
    for (int k = 0; k < options.max_regularize_attempts; ++k) {
      Mat shifted = a;
      for (std::size_t i = 0; i < a.rows(); ++i) shifted(i, i) += shift;
      lu = Lu(shifted);
      ++report.factor_attempts;
      if (metrics_enabled()) {
        static Counter& retries = MetricsRegistry::instance().counter(
            "robust.lu_regularize_retries");
        retries.add(1);
      }
      if (!lu.singular()) break;
      shift *= options.shift_growth;
    }
    if (lu.singular()) return report;  // kFailed
    report.regularization = shift;
  }

  report.x = lu.solve(b);
  if (!all_finite(report.x)) {
    report.status = SolveStatus::kFailed;
    return report;
  }
  const auto solve = [&lu](const Vec& v) { return lu.solve(v); };
  report.residual_norm =
      refine_once(a, b, report.x, solve, options.refine_tol, report.refined);
  if (report.refined && metrics_enabled()) {
    static Counter& refinements =
        MetricsRegistry::instance().counter("robust.refinements");
    refinements.add(1);
  }
  report.status = (shift > 0.0) ? SolveStatus::kRegularized
                                : (report.refined ? SolveStatus::kRefined
                                                  : SolveStatus::kOk);
  if (options.estimate_condition)
    report.condition_estimate = condition_estimate_lu(a, lu);
  return report;
}

}  // namespace scs
