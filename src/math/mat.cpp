#include "math/mat.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "math/simd.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace scs {

Mat::Mat(std::size_t rows, std::size_t cols, double value)
    : rows_(rows), cols_(cols), data_(rows * cols, value) {}

Mat Mat::identity(std::size_t n) {
  Mat out(n, n);
  for (std::size_t i = 0; i < n; ++i) out(i, i) = 1.0;
  return out;
}

Mat Mat::diag(const Vec& d) {
  Mat out(d.size(), d.size());
  for (std::size_t i = 0; i < d.size(); ++i) out(i, i) = d[i];
  return out;
}

double& Mat::at(std::size_t i, std::size_t j) {
  SCS_REQUIRE(i < rows_ && j < cols_, "Mat::at: index out of range");
  return (*this)(i, j);
}

double Mat::at(std::size_t i, std::size_t j) const {
  SCS_REQUIRE(i < rows_ && j < cols_, "Mat::at: index out of range");
  return (*this)(i, j);
}

Mat& Mat::operator+=(const Mat& rhs) {
  SCS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "Mat::operator+=: shape mismatch");
  simd::add(data_.data(), rhs.data_.data(), data_.size());
  return *this;
}

Mat& Mat::operator-=(const Mat& rhs) {
  SCS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "Mat::operator-=: shape mismatch");
  simd::sub(data_.data(), rhs.data_.data(), data_.size());
  return *this;
}

Mat& Mat::operator*=(double s) {
  simd::scale(data_.data(), s, data_.size());
  return *this;
}

Mat& Mat::axpy(double s, const Mat& rhs) {
  SCS_REQUIRE(rows_ == rhs.rows_ && cols_ == rhs.cols_,
              "Mat::axpy: shape mismatch");
  simd::axpy(data_.data(), s, rhs.data_.data(), data_.size());
  return *this;
}

Mat Mat::transpose() const {
  Mat out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

double Mat::frobenius_norm() const {
  double acc = 0.0;
  for (double v : data_) acc += v * v;
  return std::sqrt(acc);
}

double Mat::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Mat::trace() const {
  SCS_REQUIRE(rows_ == cols_, "Mat::trace: matrix must be square");
  double acc = 0.0;
  for (std::size_t i = 0; i < rows_; ++i) acc += (*this)(i, i);
  return acc;
}

void Mat::symmetrize() {
  SCS_REQUIRE(rows_ == cols_, "Mat::symmetrize: matrix must be square");
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = i + 1; j < cols_; ++j) {
      const double v = 0.5 * ((*this)(i, j) + (*this)(j, i));
      (*this)(i, j) = v;
      (*this)(j, i) = v;
    }
}

Vec Mat::col(std::size_t j) const {
  SCS_REQUIRE(j < cols_, "Mat::col: index out of range");
  Vec out(rows_);
  for (std::size_t i = 0; i < rows_; ++i) out[i] = (*this)(i, j);
  return out;
}

Vec Mat::row(std::size_t i) const {
  SCS_REQUIRE(i < rows_, "Mat::row: index out of range");
  Vec out(cols_);
  for (std::size_t j = 0; j < cols_; ++j) out[j] = (*this)(i, j);
  return out;
}

void Mat::set_row(std::size_t i, const Vec& v) {
  SCS_REQUIRE(i < rows_ && v.size() == cols_, "Mat::set_row: shape mismatch");
  for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) = v[j];
}

void Mat::set_col(std::size_t j, const Vec& v) {
  SCS_REQUIRE(j < cols_ && v.size() == rows_, "Mat::set_col: shape mismatch");
  for (std::size_t i = 0; i < rows_; ++i) (*this)(i, j) = v[i];
}

std::string Mat::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < rows_; ++i) {
    os << (i == 0 ? "[" : " ");
    for (std::size_t j = 0; j < cols_; ++j) {
      if (j) os << ", ";
      os << (*this)(i, j);
    }
    os << (i + 1 == rows_ ? "]" : ";\n");
  }
  return os.str();
}

Mat operator+(Mat lhs, const Mat& rhs) { return lhs += rhs; }
Mat operator-(Mat lhs, const Mat& rhs) { return lhs -= rhs; }
Mat operator*(double s, Mat m) { return m *= s; }
Mat operator*(Mat m, double s) { return m *= s; }

namespace {

// Tiling for the dense kernels: output rows are farmed out to the pool in
// fixed kRowChunk blocks (a pure function of the shape, never of the worker
// count) and the summation index is swept in kInnerBlock panels so the
// streamed operand stays cache-resident across a chunk's rows. Per output
// element the contributions accumulate in ascending-k order in every
// configuration, so tiled, parallel, and plain loops produce bitwise-
// identical sums.
constexpr std::size_t kRowChunk = 32;
constexpr std::size_t kInnerBlock = 64;
// Below this flop count the chunk loop runs inline: the fork/join handshake
// costs more than the multiply.
constexpr std::size_t kParallelFlops = std::size_t{1} << 15;

bool all_zero(const double* p, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i)
    if (p[i] != 0.0) return false;
  return true;
}

template <typename Body>
void for_each_row_block(std::size_t rows, std::size_t flops,
                        const Body& body) {
  if (flops < kParallelFlops) {
    body(0, rows);
    return;
  }
  parallel_for(rows, kRowChunk, body);
}

}  // namespace

Mat matmul(const Mat& a, const Mat& b) {
  SCS_REQUIRE(a.cols() == b.rows(), "matmul: inner dimension mismatch");
  Mat out(a.rows(), b.cols());
  const std::size_t kk = a.cols();
  const std::size_t nn = b.cols();
  for_each_row_block(
      a.rows(), a.rows() * kk * nn, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t k0 = 0; k0 < kk; k0 += kInnerBlock) {
          const std::size_t k1 = std::min(k0 + kInnerBlock, kk);
          for (std::size_t i = r0; i < r1; ++i) {
            const double* a_row = a.row_ptr(i);
            // Density handling lives at the tile level: skip a panel only
            // when this row's whole A slice is zero (identity-like blocks);
            // a per-element zero test mispredicts on dense data.
            if (all_zero(a_row + k0, k1 - k0)) continue;
            double* out_row = out.row_ptr(i);
            for (std::size_t k = k0; k < k1; ++k) {
              const double aik = a_row[k];
              const double* b_row = b.row_ptr(k);
              simd::axpy(out_row, aik, b_row, nn);
            }
          }
        }
      });
  return out;
}

Mat matmul_at_b(const Mat& a, const Mat& b) {
  SCS_REQUIRE(a.rows() == b.rows(), "matmul_at_b: dimension mismatch");
  Mat out(a.cols(), b.cols());
  const std::size_t kk = a.rows();
  const std::size_t nn = b.cols();
  for_each_row_block(
      a.cols(), a.cols() * kk * nn, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t k0 = 0; k0 < kk; k0 += kInnerBlock) {
          const std::size_t k1 = std::min(k0 + kInnerBlock, kk);
          for (std::size_t i = r0; i < r1; ++i) {
            double* out_row = out.row_ptr(i);
            for (std::size_t k = k0; k < k1; ++k) {
              const double aki = a(k, i);
              const double* b_row = b.row_ptr(k);
              simd::axpy(out_row, aki, b_row, nn);
            }
          }
        }
      });
  return out;
}

Mat matmul_a_bt(const Mat& a, const Mat& b) {
  SCS_REQUIRE(a.cols() == b.cols(), "matmul_a_bt: dimension mismatch");
  Mat out(a.rows(), b.rows());
  const std::size_t kk = a.cols();
  const std::size_t nn = b.rows();
  for_each_row_block(
      a.rows(), a.rows() * kk * nn, [&](std::size_t r0, std::size_t r1) {
        for (std::size_t i = r0; i < r1; ++i) {
          const double* a_row = a.row_ptr(i);
          double* out_row = out.row_ptr(i);
          for (std::size_t j = 0; j < nn; ++j)
            out_row[j] = simd::dot(a_row, b.row_ptr(j), kk);
        }
      });
  return out;
}

Vec matvec(const Mat& a, const Vec& x) {
  SCS_REQUIRE(a.cols() == x.size(), "matvec: dimension mismatch");
  Vec out(a.rows());
  for (std::size_t i = 0; i < a.rows(); ++i)
    out[i] = simd::dot(a.row_ptr(i), x.begin(), a.cols());
  return out;
}

Vec matvec_t(const Mat& a, const Vec& x) {
  SCS_REQUIRE(a.rows() == x.size(), "matvec_t: dimension mismatch");
  Vec out(a.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const double xi = x[i];
    if (xi == 0.0) continue;
    simd::axpy(out.begin(), xi, a.row_ptr(i), a.cols());
  }
  return out;
}

Mat outer(const Vec& a, const Vec& b) {
  Mat out(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i)
    for (std::size_t j = 0; j < b.size(); ++j) out(i, j) = a[i] * b[j];
  return out;
}

double frob_inner(const Mat& a, const Mat& b) {
  SCS_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
              "frob_inner: shape mismatch");
  // One flat four-lane dot over the contiguous storage: rows of a row-major
  // matrix are adjacent, so this is the same term set in lane order.
  return simd::dot(a.row_ptr(0), b.row_ptr(0), a.rows() * a.cols());
}

double max_abs_diff(const Mat& a, const Mat& b) {
  SCS_REQUIRE(a.rows() == b.rows() && a.cols() == b.cols(),
              "max_abs_diff: shape mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.rows(); ++i)
    for (std::size_t j = 0; j < a.cols(); ++j)
      m = std::max(m, std::fabs(a(i, j) - b(i, j)));
  return m;
}

}  // namespace scs
