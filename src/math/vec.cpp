#include "math/vec.hpp"

#include <cmath>
#include <sstream>

#include "math/simd.hpp"
#include "util/check.hpp"
#include "util/hash.hpp"

namespace scs {

Vec::Vec(std::size_t n, double value) : data_(n, value) {}

Vec::Vec(std::initializer_list<double> values) : data_(values) {}

Vec::Vec(std::vector<double> values) : data_(std::move(values)) {}

double& Vec::at(std::size_t i) {
  SCS_REQUIRE(i < data_.size(), "Vec::at: index out of range");
  return data_[i];
}

double Vec::at(std::size_t i) const {
  SCS_REQUIRE(i < data_.size(), "Vec::at: index out of range");
  return data_[i];
}

Vec& Vec::operator+=(const Vec& rhs) {
  SCS_REQUIRE(size() == rhs.size(), "Vec::operator+=: size mismatch");
  simd::add(data_.data(), rhs.data_.data(), size());
  return *this;
}

Vec& Vec::operator-=(const Vec& rhs) {
  SCS_REQUIRE(size() == rhs.size(), "Vec::operator-=: size mismatch");
  simd::sub(data_.data(), rhs.data_.data(), size());
  return *this;
}

Vec& Vec::operator*=(double s) {
  simd::scale(data_.data(), s, size());
  return *this;
}

Vec& Vec::operator/=(double s) {
  SCS_REQUIRE(s != 0.0, "Vec::operator/=: division by zero");
  for (auto& v : data_) v /= s;
  return *this;
}

Vec& Vec::axpy(double s, const Vec& rhs) {
  SCS_REQUIRE(size() == rhs.size(), "Vec::axpy: size mismatch");
  simd::axpy(data_.data(), s, rhs.data_.data(), size());
  return *this;
}

double Vec::norm() const {
  return std::sqrt(simd::dot(data_.data(), data_.data(), data_.size()));
}

double Vec::max_abs() const {
  double m = 0.0;
  for (double v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Vec::sum() const {
  double acc = 0.0;
  for (double v : data_) acc += v;
  return acc;
}

void Vec::fill(double value) {
  for (auto& v : data_) v = value;
}

std::string Vec::to_string() const {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < size(); ++i) {
    if (i) os << ", ";
    os << data_[i];
  }
  os << ']';
  return os.str();
}

Vec operator+(Vec lhs, const Vec& rhs) { return lhs += rhs; }
Vec operator-(Vec lhs, const Vec& rhs) { return lhs -= rhs; }
Vec operator*(double s, Vec v) { return v *= s; }
Vec operator*(Vec v, double s) { return v *= s; }
Vec operator/(Vec v, double s) { return v /= s; }
Vec operator-(Vec v) { return v *= -1.0; }

double dot(const Vec& a, const Vec& b) {
  SCS_REQUIRE(a.size() == b.size(), "dot: size mismatch");
  return simd::dot(a.begin(), b.begin(), a.size());
}

Vec hadamard(const Vec& a, const Vec& b) {
  SCS_REQUIRE(a.size() == b.size(), "hadamard: size mismatch");
  Vec out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i] * b[i];
  return out;
}

Vec concat(const Vec& a, const Vec& b) {
  Vec out(a.size() + b.size());
  for (std::size_t i = 0; i < a.size(); ++i) out[i] = a[i];
  for (std::size_t i = 0; i < b.size(); ++i) out[a.size() + i] = b[i];
  return out;
}

double max_abs_diff(const Vec& a, const Vec& b) {
  SCS_REQUIRE(a.size() == b.size(), "max_abs_diff: size mismatch");
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

void hash_append(Fnv1a& h, const Vec& v) {
  hash_append(h, static_cast<std::uint64_t>(v.size()));
  for (std::size_t i = 0; i < v.size(); ++i) hash_append(h, v[i]);
}

}  // namespace scs
