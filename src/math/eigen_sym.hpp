// Symmetric eigen-decomposition via the cyclic Jacobi method.
//
// Gram-matrix blocks in this project are at most a few hundred rows, where
// Jacobi is robust, simple, and fast enough. Used for PSD margin reporting,
// step-length safeguards in the SDP solver, and certificate validation.
#pragma once

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace scs {

struct EigenSym {
  Vec values;    // ascending
  Mat vectors;   // column k is the eigenvector for values[k]
};

/// Full eigen-decomposition of a symmetric matrix (input is symmetrized).
EigenSym eigen_sym(const Mat& a, int max_sweeps = 64, double tol = 1e-12);

/// Smallest eigenvalue of a symmetric matrix.
double min_eigenvalue(const Mat& a);

/// Largest eigenvalue of a symmetric matrix.
double max_eigenvalue(const Mat& a);

}  // namespace scs
