#include "math/cholesky.hpp"

#include <cmath>

#include "math/simd.hpp"
#include "util/check.hpp"
#include "util/fault_injector.hpp"

namespace scs {

Cholesky::Cholesky(const Mat& a, double tol) : l_(a.rows(), a.cols()) {
  SCS_REQUIRE(a.rows() == a.cols(), "Cholesky: matrix must be square");
  const std::size_t n = a.rows();
  // Column-oriented (left-looking) factorization on the lower triangle.
  for (std::size_t j = 0; j < n; ++j) {
    const double* lrow_j = l_.row_ptr(j);
    double djj = a(j, j) - simd::dot(lrow_j, lrow_j, j);
    if (fault_injection_enabled())
      djj = FaultInjector::instance().perturb_pivot(FaultSite::kCholeskyPivot,
                                                    djj);
    if (djj <= tol) {
      ok_ = false;
      return;
    }
    const double ljj = std::sqrt(djj);
    l_(j, j) = ljj;
    const double inv_ljj = 1.0 / ljj;
    for (std::size_t i = j + 1; i < n; ++i) {
      const double* lrow_i = l_.row_ptr(i);
      const double acc = a(i, j) - simd::dot(lrow_i, lrow_j, j);
      l_(i, j) = acc * inv_ljj;
    }
  }
  ok_ = true;
}

Vec Cholesky::solve_lower(const Vec& b) const {
  SCS_REQUIRE(ok_, "Cholesky::solve_lower: factorization failed");
  const std::size_t n = l_.rows();
  SCS_REQUIRE(b.size() == n, "Cholesky::solve_lower: size mismatch");
  Vec y(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = l_.row_ptr(i);
    y[i] = (b[i] - simd::dot(row, y.begin(), i)) / row[i];
  }
  return y;
}

Vec Cholesky::solve_lower_t(const Vec& b) const {
  SCS_REQUIRE(ok_, "Cholesky::solve_lower_t: factorization failed");
  const std::size_t n = l_.rows();
  SCS_REQUIRE(b.size() == n, "Cholesky::solve_lower_t: size mismatch");
  Vec x(b);
  for (std::size_t ii = n; ii-- > 0;) {
    x[ii] /= l_(ii, ii);
    const double xi = x[ii];
    // Subtract column ii of L (below the diagonal) from the remaining rhs.
    for (std::size_t j = 0; j < ii; ++j) x[j] -= l_(ii, j) * xi;
  }
  return x;
}

Vec Cholesky::solve(const Vec& b) const { return solve_lower_t(solve_lower(b)); }

Mat Cholesky::solve(const Mat& b) const {
  Mat out(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) out.set_col(j, solve(b.col(j)));
  return out;
}

Mat Cholesky::lower_inverse() const {
  SCS_REQUIRE(ok_, "Cholesky::lower_inverse: factorization failed");
  const std::size_t n = l_.rows();
  Mat inv(n, n);
  // Forward-substitute each unit vector; result stays lower triangular.
  for (std::size_t j = 0; j < n; ++j) {
    inv(j, j) = 1.0 / l_(j, j);
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = 0.0;
      const double* row = l_.row_ptr(i);
      for (std::size_t k = j; k < i; ++k) acc -= row[k] * inv(k, j);
      inv(i, j) = acc / row[i];
    }
  }
  return inv;
}

double Cholesky::log_det() const {
  SCS_REQUIRE(ok_, "Cholesky::log_det: factorization failed");
  double acc = 0.0;
  for (std::size_t i = 0; i < l_.rows(); ++i) acc += std::log(l_(i, i));
  return 2.0 * acc;
}

bool is_positive_definite(const Mat& a, double tol) {
  return Cholesky(a, tol).ok();
}

std::optional<Vec> solve_spd(const Mat& a, const Vec& b) {
  Cholesky chol(a);
  if (!chol.ok()) return std::nullopt;
  return chol.solve(b);
}

}  // namespace scs
