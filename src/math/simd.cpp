// Portable kernel implementations and the runtime dispatch switch.
//
// The scalar `dot` mirrors the AVX2 lane structure exactly (four
// accumulators, fixed combine order) -- see simd.hpp for the contract.
#include "math/simd.hpp"

#include "util/check.hpp"

namespace scs::simd {

namespace detail {

// Implemented in simd_avx2.cpp (only compiled when SCS_SIMD_AVX2 is
// defined); declarations here keep the dispatch switch in one file.
void axpy_avx2(double* y, double s, const double* x, std::size_t n);
void add_avx2(double* y, const double* x, std::size_t n);
void sub_avx2(double* y, const double* x, std::size_t n);
void scale_avx2(double* y, double s, std::size_t n);
double dot_avx2(const double* x, const double* y, std::size_t n);

}  // namespace detail

namespace {

bool detect_avx2() {
#ifdef SCS_SIMD_AVX2
  return __builtin_cpu_supports("avx2") != 0;
#else
  return false;
#endif
}

// Per-thread override so concurrent benchmark workers can A/B different
// paths without racing; kAuto falls back to the one-time CPU detection.
thread_local Kernel g_override = Kernel::kAuto;

inline bool use_avx2() {
  static const bool cpu_ok = detect_avx2();
  switch (g_override) {
    case Kernel::kScalar:
      return false;
    case Kernel::kAvx2:
      return true;
    case Kernel::kAuto:
    default:
      return cpu_ok;
  }
}

// The portable fallback doubles as the NEON path: on aarch64 NEON is
// baseline, so the "scalar" kernels may use 128-bit intrinsics directly
// (vmul + vadd, never vfma) while keeping the exact lane structure of the
// AVX2 versions.
#if defined(__ARM_NEON) && defined(__aarch64__)
#include <arm_neon.h>

void axpy_scalar(double* y, double s, const double* x, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i),
                               vmulq_f64(vs, vld1q_f64(x + i))));
  for (; i < n; ++i) y[i] += s * x[i];
}

void add_scalar(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i, vaddq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  for (; i < n; ++i) y[i] += x[i];
}

void sub_scalar(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i, vsubq_f64(vld1q_f64(y + i), vld1q_f64(x + i)));
  for (; i < n; ++i) y[i] -= x[i];
}

void scale_scalar(double* y, double s, std::size_t n) {
  const float64x2_t vs = vdupq_n_f64(s);
  std::size_t i = 0;
  for (; i + 2 <= n; i += 2)
    vst1q_f64(y + i, vmulq_f64(vld1q_f64(y + i), vs));
  for (; i < n; ++i) y[i] *= s;
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  // Two 128-bit accumulators give the same four lanes as one AVX2 vector:
  // acc01 holds lanes 0/1, acc23 holds lanes 2/3.
  float64x2_t acc01 = vdupq_n_f64(0.0), acc23 = vdupq_n_f64(0.0);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    acc01 = vaddq_f64(acc01, vmulq_f64(vld1q_f64(x + i), vld1q_f64(y + i)));
    acc23 = vaddq_f64(acc23,
                      vmulq_f64(vld1q_f64(x + i + 2), vld1q_f64(y + i + 2)));
  }
  double l0 = vgetq_lane_f64(acc01, 0), l1 = vgetq_lane_f64(acc01, 1);
  double l2 = vgetq_lane_f64(acc23, 0), l3 = vgetq_lane_f64(acc23, 1);
  if (i < n) l0 += x[i] * y[i];
  if (i + 1 < n) l1 += x[i + 1] * y[i + 1];
  if (i + 2 < n) l2 += x[i + 2] * y[i + 2];
  return (l0 + l1) + (l2 + l3);
}

#else  // plain scalar

void axpy_scalar(double* y, double s, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += s * x[i];
}

void add_scalar(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] += x[i];
}

void sub_scalar(double* y, const double* x, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] -= x[i];
}

void scale_scalar(double* y, double s, std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) y[i] *= s;
}

double dot_scalar(const double* x, const double* y, std::size_t n) {
  double l0 = 0.0, l1 = 0.0, l2 = 0.0, l3 = 0.0;
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    l0 += x[i] * y[i];
    l1 += x[i + 1] * y[i + 1];
    l2 += x[i + 2] * y[i + 2];
    l3 += x[i + 3] * y[i + 3];
  }
  // Tail terms land in the lane their index selects, exactly as a masked
  // SIMD tail would place them.
  if (i < n) l0 += x[i] * y[i];
  if (i + 1 < n) l1 += x[i + 1] * y[i + 1];
  if (i + 2 < n) l2 += x[i + 2] * y[i + 2];
  return (l0 + l1) + (l2 + l3);
}

#endif  // __ARM_NEON

}  // namespace

void set_kernel_override(Kernel k) {
#ifndef SCS_SIMD_AVX2
  SCS_REQUIRE(k != Kernel::kAvx2,
              "simd: AVX2 kernels were not compiled in (SCS_SIMD=OFF)");
#else
  SCS_REQUIRE(k != Kernel::kAvx2 || __builtin_cpu_supports("avx2"),
              "simd: this CPU does not support AVX2");
#endif
  g_override = k;
}

const char* active_kernel_name() { return use_avx2() ? "avx2" : "scalar"; }

bool avx2_available() {
  static const bool cpu_ok = detect_avx2();
  return cpu_ok;
}

void axpy(double* y, double s, const double* x, std::size_t n) {
#ifdef SCS_SIMD_AVX2
  if (use_avx2()) {
    detail::axpy_avx2(y, s, x, n);
    return;
  }
#endif
  axpy_scalar(y, s, x, n);
}

void add(double* y, const double* x, std::size_t n) {
#ifdef SCS_SIMD_AVX2
  if (use_avx2()) {
    detail::add_avx2(y, x, n);
    return;
  }
#endif
  add_scalar(y, x, n);
}

void sub(double* y, const double* x, std::size_t n) {
#ifdef SCS_SIMD_AVX2
  if (use_avx2()) {
    detail::sub_avx2(y, x, n);
    return;
  }
#endif
  sub_scalar(y, x, n);
}

void scale(double* y, double s, std::size_t n) {
#ifdef SCS_SIMD_AVX2
  if (use_avx2()) {
    detail::scale_avx2(y, s, n);
    return;
  }
#endif
  scale_scalar(y, s, n);
}

double dot(const double* x, const double* y, std::size_t n) {
#ifdef SCS_SIMD_AVX2
  if (use_avx2()) return detail::dot_avx2(x, y, n);
#endif
  return dot_scalar(x, y, n);
}

}  // namespace scs::simd
