// Runtime-dispatched dense kernels for the solver core.
//
// Every hot loop in src/math, src/opt and src/poly funnels through the tiny
// kernel set below: elementwise updates (axpy / add / sub / scale) and a
// four-lane dot product. The AVX2 implementations (simd_avx2.cpp, compiled
// with -mavx2 when the SCS_SIMD CMake option is ON) are written so that
// they are *bitwise identical* to the portable fallbacks:
//
//  - Elementwise kernels use separate multiply and add instructions (never
//    FMA), so each y[i] sees exactly the scalar sequence `y[i] + s * x[i]`.
//  - `dot` accumulates in four independent lanes -- lane j sums the terms
//    at indices congruent to j mod 4 -- and combines them in the fixed
//    order (l0 + l1) + (l2 + l3). The scalar fallback implements the same
//    lane structure with four scalar accumulators, so SCS_SIMD=ON and
//    SCS_SIMD=OFF builds produce identical bits on every machine.
//
// Dispatch is decided once at startup (__builtin_cpu_supports) and can be
// overridden per-thread with set_kernel_override for A/B benchmarks and the
// SIMD-vs-scalar equivalence tests: one binary exercises both paths.
#pragma once

#include <cstddef>

namespace scs::simd {

enum class Kernel {
  kAuto,    // pick the best implementation the CPU supports (default)
  kScalar,  // force the portable fallback
  kAvx2,    // force AVX2 (PreconditionError if unsupported or compiled out)
};

/// Force a kernel implementation on the calling thread (kAuto restores the
/// CPU-detected default). Used by benchmarks and equivalence tests.
void set_kernel_override(Kernel k);

/// The implementation that calls on this thread currently dispatch to:
/// "avx2" or "scalar".
const char* active_kernel_name();

/// True when this binary contains the AVX2 kernels and the CPU supports
/// them (the dispatch default is then AVX2).
bool avx2_available();

/// y[i] += s * x[i] for i in [0, n).
void axpy(double* y, double s, const double* x, std::size_t n);

/// y[i] += x[i].
void add(double* y, const double* x, std::size_t n);

/// y[i] -= x[i].
void sub(double* y, const double* x, std::size_t n);

/// y[i] *= s.
void scale(double* y, double s, std::size_t n);

/// Four-lane dot product: lane j accumulates x[i]*y[i] over i == j (mod 4),
/// lanes combine as (l0 + l1) + (l2 + l3). Deterministic across scalar and
/// AVX2 paths, but NOT bitwise-equal to a plain serial accumulation.
double dot(const double* x, const double* y, std::size_t n);

}  // namespace scs::simd
