#include "math/lu.hpp"

#include <cmath>

#include "math/simd.hpp"
#include "util/check.hpp"
#include "util/fault_injector.hpp"

namespace scs {

Lu::Lu(const Mat& a, double pivot_tol) : lu_(a), perm_(a.rows()) {
  SCS_REQUIRE(a.rows() == a.cols(), "Lu: matrix must be square");
  const std::size_t n = a.rows();
  for (std::size_t i = 0; i < n; ++i) perm_[i] = i;

  for (std::size_t k = 0; k < n; ++k) {
    // Partial pivoting: find the largest |entry| in column k at/below row k.
    std::size_t piv = k;
    double best = std::fabs(lu_(k, k));
    for (std::size_t i = k + 1; i < n; ++i) {
      const double v = std::fabs(lu_(i, k));
      if (v > best) {
        best = v;
        piv = i;
      }
    }
    if (fault_injection_enabled())
      best = FaultInjector::instance().perturb_pivot(FaultSite::kLuPivot, best);
    if (best <= pivot_tol) {
      singular_ = true;
      return;
    }
    if (piv != k) {
      for (std::size_t j = 0; j < n; ++j)
        std::swap(lu_(piv, j), lu_(k, j));
      std::swap(perm_[piv], perm_[k]);
      perm_sign_ = -perm_sign_;
    }
    const double inv_pivot = 1.0 / lu_(k, k);
    for (std::size_t i = k + 1; i < n; ++i) {
      const double m = lu_(i, k) * inv_pivot;
      lu_(i, k) = m;
      if (m == 0.0) continue;
      const double* row_k = lu_.row_ptr(k);
      double* row_i = lu_.row_ptr(i);
      // row_i[j] -= m * row_k[j]; the negated-scale axpy is bit-identical.
      simd::axpy(row_i + k + 1, -m, row_k + k + 1, n - k - 1);
    }
  }
}

Vec Lu::solve(const Vec& b) const {
  SCS_REQUIRE(!singular_, "Lu::solve: matrix is singular");
  SCS_REQUIRE(b.size() == lu_.rows(), "Lu::solve: size mismatch");
  const std::size_t n = lu_.rows();
  Vec x(n);
  // Forward substitution with permutation (L has unit diagonal).
  for (std::size_t i = 0; i < n; ++i) {
    const double* row = lu_.row_ptr(i);
    x[i] = b[perm_[i]] - simd::dot(row, x.begin(), i);
  }
  // Back substitution with U.
  for (std::size_t ii = n; ii-- > 0;) {
    const double* row = lu_.row_ptr(ii);
    const double acc =
        x[ii] - simd::dot(row + ii + 1, x.begin() + ii + 1, n - ii - 1);
    x[ii] = acc / row[ii];
  }
  return x;
}

Vec Lu::solve_transposed(const Vec& b) const {
  SCS_REQUIRE(!singular_, "Lu::solve_transposed: matrix is singular");
  SCS_REQUIRE(b.size() == lu_.rows(), "Lu::solve_transposed: size mismatch");
  const std::size_t n = lu_.rows();
  // A = P^T L U, so A^T = U^T L^T P: forward-substitute U^T, back-substitute
  // the unit-diagonal L^T, then undo the row permutation.
  Vec z(n);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    for (std::size_t j = 0; j < i; ++j) acc -= lu_(j, i) * z[j];
    z[i] = acc / lu_(i, i);
  }
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = z[ii];
    for (std::size_t j = ii + 1; j < n; ++j) acc -= lu_(j, ii) * z[j];
    z[ii] = acc;
  }
  Vec x(n);
  for (std::size_t i = 0; i < n; ++i) x[perm_[i]] = z[i];
  return x;
}

Mat Lu::solve(const Mat& b) const {
  SCS_REQUIRE(b.rows() == lu_.rows(), "Lu::solve: shape mismatch");
  Mat out(b.rows(), b.cols());
  for (std::size_t j = 0; j < b.cols(); ++j) out.set_col(j, solve(b.col(j)));
  return out;
}

double Lu::determinant() const {
  if (singular_) return 0.0;
  double det = perm_sign_;
  for (std::size_t i = 0; i < lu_.rows(); ++i) det *= lu_(i, i);
  return det;
}

std::optional<Vec> solve_linear(const Mat& a, const Vec& b) {
  Lu lu(a);
  if (lu.singular()) return std::nullopt;
  return lu.solve(b);
}

Mat inverse(const Mat& a) {
  Lu lu(a);
  SCS_REQUIRE(!lu.singular(), "inverse: matrix is singular");
  return lu.solve(Mat::identity(a.rows()));
}

}  // namespace scs
