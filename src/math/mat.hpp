// Dense row-major matrix.
//
// Sized for this project's workloads: NN layers (tens), Gram matrices
// (up to a few hundred), and interior-point Schur complements (up to a few
// thousand). All algorithms here are cache-friendly straight loops; no BLAS.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "math/vec.hpp"

namespace scs {

class Mat {
 public:
  Mat() = default;
  Mat(std::size_t rows, std::size_t cols, double value = 0.0);

  static Mat identity(std::size_t n);
  /// Diagonal matrix from a vector.
  static Mat diag(const Vec& d);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t i, std::size_t j) {
    return data_[i * cols_ + j];
  }
  double operator()(std::size_t i, std::size_t j) const {
    return data_[i * cols_ + j];
  }

  /// Bounds-checked access.
  double& at(std::size_t i, std::size_t j);
  double at(std::size_t i, std::size_t j) const;

  /// Raw pointer to row i (row-major storage).
  double* row_ptr(std::size_t i) { return data_.data() + i * cols_; }
  const double* row_ptr(std::size_t i) const {
    return data_.data() + i * cols_;
  }

  Mat& operator+=(const Mat& rhs);
  Mat& operator-=(const Mat& rhs);
  Mat& operator*=(double s);

  /// this += s * rhs.
  Mat& axpy(double s, const Mat& rhs);

  Mat transpose() const;

  /// Frobenius norm.
  double frobenius_norm() const;
  /// Maximum absolute entry.
  double max_abs() const;
  /// Trace (must be square).
  double trace() const;

  /// Symmetrize in place: A <- (A + A^T)/2 (must be square).
  void symmetrize();

  /// Column j as a vector.
  Vec col(std::size_t j) const;
  /// Row i as a vector.
  Vec row(std::size_t i) const;
  void set_row(std::size_t i, const Vec& v);
  void set_col(std::size_t j, const Vec& v);

  std::string to_string() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

Mat operator+(Mat lhs, const Mat& rhs);
Mat operator-(Mat lhs, const Mat& rhs);
Mat operator*(double s, Mat m);
Mat operator*(Mat m, double s);

/// Matrix-matrix product.
Mat matmul(const Mat& a, const Mat& b);
/// a^T * b without forming the transpose.
Mat matmul_at_b(const Mat& a, const Mat& b);
/// a * b^T without forming the transpose.
Mat matmul_a_bt(const Mat& a, const Mat& b);

/// Matrix-vector product.
Vec matvec(const Mat& a, const Vec& x);
/// a^T * x without forming the transpose.
Vec matvec_t(const Mat& a, const Vec& x);

/// Outer product a * b^T.
Mat outer(const Vec& a, const Vec& b);

/// <A, B> = sum_ij A_ij B_ij (Frobenius inner product).
double frob_inner(const Mat& a, const Mat& b);

/// Maximum absolute difference between two equally shaped matrices.
double max_abs_diff(const Mat& a, const Mat& b);

}  // namespace scs
