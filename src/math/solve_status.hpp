// Structured outcomes for the robust linear-solve layer.
//
// The factorizations in math/ report failure with a bool; the robustness
// layer (math/robust_solve) turns "failed" into a graded outcome so callers
// can distinguish "clean", "recovered", and "hopeless" instead of asserting.
#pragma once

namespace scs {

enum class SolveStatus {
  kOk,           // factored cleanly, residual within tolerance untouched
  kRefined,      // factored cleanly; iterative refinement reduced a large
                 // residual below tolerance
  kRegularized,  // needed one or more diagonal-regularization retries
  kFailed,       // no finite solution even after regularization
};

inline const char* to_string(SolveStatus status) {
  switch (status) {
    case SolveStatus::kOk:
      return "ok";
    case SolveStatus::kRefined:
      return "refined";
    case SolveStatus::kRegularized:
      return "regularized";
    case SolveStatus::kFailed:
      return "failed";
  }
  return "?";
}

}  // namespace scs
