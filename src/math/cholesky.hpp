// Cholesky factorization of symmetric positive-definite matrices.
//
// This is the workhorse of the interior-point SDP solver: PSD feasibility
// tests, step-length computation, and the Schur-complement solve all go
// through it.
#pragma once

#include <optional>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace scs {

/// Lower-triangular Cholesky factor: A = L L^T.
/// `ok()` is false when A is not (numerically) positive definite.
class Cholesky {
 public:
  explicit Cholesky(const Mat& a, double tol = 0.0);

  bool ok() const { return ok_; }
  const Mat& lower() const { return l_; }

  /// Solve A x = b.
  Vec solve(const Vec& b) const;
  /// Solve L y = b (forward substitution only).
  Vec solve_lower(const Vec& b) const;
  /// Solve L^T x = b (backward substitution only).
  Vec solve_lower_t(const Vec& b) const;
  /// Solve A X = B column-wise.
  Mat solve(const Mat& b) const;

  /// Inverse of the lower factor, L^{-1} (used for SDP scaling matrices).
  Mat lower_inverse() const;

  /// log(det A) = 2 * sum(log diag(L)).
  double log_det() const;

 private:
  Mat l_;
  bool ok_ = false;
};

/// True when the symmetric matrix is positive definite within tolerance.
bool is_positive_definite(const Mat& a, double tol = 0.0);

/// Solve the SPD system A x = b; std::nullopt when not positive definite.
std::optional<Vec> solve_spd(const Mat& a, const Vec& b);

}  // namespace scs
