// Householder QR factorization, least-squares solves, and rank queries.
#pragma once

#include <vector>

#include "math/mat.hpp"
#include "math/vec.hpp"

namespace scs {

/// Householder QR of an m x n matrix with m >= n.
/// Used for least-squares polynomial fitting (baseline LS approximation and
/// the weighted solves inside Lawson's algorithm).
class Qr {
 public:
  explicit Qr(const Mat& a);

  std::size_t rows() const { return m_; }
  std::size_t cols() const { return n_; }

  /// Numerical rank with relative tolerance on |R_ii|.
  std::size_t rank(double rel_tol = 1e-12) const;

  /// Minimum-residual solution of A x = b (A must have full column rank).
  Vec solve_least_squares(const Vec& b) const;

  /// Apply Q^T to a length-m vector.
  Vec apply_qt(const Vec& b) const;

  /// The upper-triangular factor R (n x n leading block).
  Mat r() const;

 private:
  std::size_t m_ = 0, n_ = 0;
  Mat qr_;                       // Householder vectors below diagonal, R above
  Vec beta_;                     // Householder scalar factors
  std::vector<double> v0_;       // first component of each Householder vector
};

/// Least squares solve min ||A x - b||_2 (full column rank required).
Vec least_squares(const Mat& a, const Vec& b);

}  // namespace scs
