// AVX2 kernels. This translation unit is the only one compiled with -mavx2,
// and every function is reached solely through the runtime dispatch in
// simd.cpp after a __builtin_cpu_supports("avx2") check, so the rest of the
// binary stays runnable on plain SSE2 hardware.
//
// Bitwise contract (see simd.hpp): elementwise kernels use separate mul and
// add -- no FMA -- so they reproduce the scalar fallback exactly; `dot`
// keeps four independent lanes (lane j sums indices == j mod 4) and
// combines them with scalar adds in the fixed order (l0 + l1) + (l2 + l3),
// matching the scalar fallback's lane structure bit for bit.
#ifdef SCS_SIMD_AVX2

#include <immintrin.h>

#include <cstddef>

namespace scs::simd::detail {

void axpy_avx2(double* y, double s, const double* x, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, _mm256_mul_pd(vs, vx)));
  }
  for (; i < n; ++i) y[i] += s * x[i];
}

void add_avx2(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_add_pd(vy, vx));
  }
  for (; i < n; ++i) y[i] += x[i];
}

void sub_avx2(double* y, const double* x, std::size_t n) {
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_sub_pd(vy, vx));
  }
  for (; i < n; ++i) y[i] -= x[i];
}

void scale_avx2(double* y, double s, std::size_t n) {
  const __m256d vs = _mm256_set1_pd(s);
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vy = _mm256_loadu_pd(y + i);
    _mm256_storeu_pd(y + i, _mm256_mul_pd(vy, vs));
  }
  for (; i < n; ++i) y[i] *= s;
}

double dot_avx2(const double* x, const double* y, std::size_t n) {
  __m256d acc = _mm256_setzero_pd();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const __m256d vx = _mm256_loadu_pd(x + i);
    const __m256d vy = _mm256_loadu_pd(y + i);
    acc = _mm256_add_pd(acc, _mm256_mul_pd(vx, vy));
  }
  alignas(32) double lane[4];
  _mm256_store_pd(lane, acc);
  // Tail terms join the lane their index selects, then the lanes combine
  // with scalar adds in the same order as the scalar fallback.
  if (i < n) lane[0] += x[i] * y[i];
  if (i + 1 < n) lane[1] += x[i + 1] * y[i + 1];
  if (i + 2 < n) lane[2] += x[i + 2] * y[i + 2];
  return (lane[0] + lane[1]) + (lane[2] + lane[3]);
}

}  // namespace scs::simd::detail

#endif  // SCS_SIMD_AVX2
