#include "util/hash.hpp"

namespace scs {

std::string hash_to_hex(std::uint64_t v) {
  static const char* digits = "0123456789abcdef";
  std::string out(16, '0');
  for (int i = 15; i >= 0; --i) {
    out[static_cast<std::size_t>(i)] = digits[v & 0xf];
    v >>= 4;
  }
  return out;
}

bool hash_from_hex(const std::string& hex, std::uint64_t& out) {
  if (hex.size() != 16) return false;
  std::uint64_t v = 0;
  for (char c : hex) {
    int digit;
    if (c >= '0' && c <= '9')
      digit = c - '0';
    else if (c >= 'a' && c <= 'f')
      digit = 10 + (c - 'a');
    else
      return false;
    v = (v << 4) | static_cast<std::uint64_t>(digit);
  }
  out = v;
  return true;
}

}  // namespace scs
