#include "util/fault_injector.hpp"

#include <cmath>
#include <cstdlib>
#include <limits>
#include <sstream>

#include "util/log.hpp"

namespace scs {

const char* to_string(FaultSite site) {
  switch (site) {
    case FaultSite::kCholeskyPivot:
      return "cholesky";
    case FaultSite::kLuPivot:
      return "lu";
    case FaultSite::kSdpStall:
      return "sdp";
    case FaultSite::kNanBoundary:
      return "nan";
    case FaultSite::kStoreCorrupt:
      return "store_corrupt";
    case FaultSite::kCount:
      break;
  }
  return "?";
}

FaultInjector& FaultInjector::instance() {
  static FaultInjector injector;
  return injector;
}

FaultInjector::FaultInjector() { configure_from_env(); }

void FaultInjector::configure_from_env() {
  const char* seed_env = std::getenv("SCS_FAULT_SEED");
  if (seed_env == nullptr || *seed_env == '\0') return;
  const std::uint64_t seed = std::strtoull(seed_env, nullptr, 10);

  double rate = 0.05;
  if (const char* rate_env = std::getenv("SCS_FAULT_RATE"))
    rate = std::strtod(rate_env, nullptr);
  std::uint64_t max_fires = 8;
  if (const char* fires_env = std::getenv("SCS_FAULT_MAX_FIRES"))
    max_fires = std::strtoull(fires_env, nullptr, 10);

  arm(seed, rate, max_fires);

  if (const char* sites_env = std::getenv("SCS_FAULT_SITES")) {
    for (int i = 0; i < kNumSites; ++i)
      site_on_[i].store(false, std::memory_order_relaxed);
    std::stringstream ss(sites_env);
    std::string name;
    while (std::getline(ss, name, ',')) {
      for (int i = 0; i < kNumSites; ++i)
        if (name == to_string(static_cast<FaultSite>(i)))
          site_on_[i].store(true, std::memory_order_relaxed);
    }
  }
  log_info("fault-injector: armed from SCS_FAULT_SEED=", seed,
           " rate=", rate_, " max_fires=", max_fires_);
}

void FaultInjector::arm(std::uint64_t seed, double rate,
                        std::uint64_t max_fires) {
  std::lock_guard<std::mutex> lock(mu_);
  engine_.seed(seed);
  rate_ = rate;
  max_fires_ = max_fires;
  for (int i = 0; i < kNumSites; ++i) {
    site_on_[i].store(true, std::memory_order_relaxed);
    fires_[i].store(0, std::memory_order_relaxed);
    probes_[i].store(0, std::memory_order_relaxed);
  }
  enabled_.store(true, std::memory_order_relaxed);
}

void FaultInjector::arm_site(FaultSite site, bool on) {
  site_on_[static_cast<int>(site)].store(on, std::memory_order_relaxed);
}

void FaultInjector::disarm() {
  enabled_.store(false, std::memory_order_relaxed);
  for (int i = 0; i < kNumSites; ++i) {
    site_on_[i].store(false, std::memory_order_relaxed);
    fires_[i].store(0, std::memory_order_relaxed);
    probes_[i].store(0, std::memory_order_relaxed);
  }
}

bool FaultInjector::should_fire(FaultSite site) {
  if (!enabled()) return false;
  const int s = static_cast<int>(site);
  if (!site_on_[s].load(std::memory_order_relaxed)) return false;
  probes_[s].fetch_add(1, std::memory_order_relaxed);
  if (fires_[s].load(std::memory_order_relaxed) >= max_fires_) return false;
  double draw;
  {
    std::lock_guard<std::mutex> lock(mu_);
    draw = std::uniform_real_distribution<double>(0.0, 1.0)(engine_);
  }
  if (draw >= rate_) return false;
  fires_[s].fetch_add(1, std::memory_order_relaxed);
  log_debug("fault-injector: fired at site ", to_string(site));
  return true;
}

double FaultInjector::perturb_pivot(FaultSite site, double value) {
  if (!should_fire(site)) return value;
  // Negative defeats the Cholesky positivity test; for LU the magnitude is
  // below any sensible pivot tolerance, forcing the singular path.
  if (site == FaultSite::kCholeskyPivot) return -(std::fabs(value) + 1.0);
  return 0.0;
}

double FaultInjector::corrupt(FaultSite site, double value) {
  if (!should_fire(site)) return value;
  return std::numeric_limits<double>::quiet_NaN();
}

std::uint64_t FaultInjector::fires(FaultSite site) const {
  return fires_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

std::uint64_t FaultInjector::probes(FaultSite site) const {
  return probes_[static_cast<int>(site)].load(std::memory_order_relaxed);
}

}  // namespace scs
