#include "util/stopwatch.hpp"

namespace scs {

Stopwatch::Stopwatch() : start_(std::chrono::steady_clock::now()) {}

void Stopwatch::reset() { start_ = std::chrono::steady_clock::now(); }

double Stopwatch::seconds() const {
  const auto now = std::chrono::steady_clock::now();
  return std::chrono::duration<double>(now - start_).count();
}

double Stopwatch::milliseconds() const { return seconds() * 1e3; }

}  // namespace scs
