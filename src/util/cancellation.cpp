#include "util/cancellation.hpp"

#include <algorithm>
#include <chrono>
#include <limits>

namespace scs {

namespace {

std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

void JobControl::set_deadline_after(double seconds) {
  const double ns = seconds * 1e9;
  std::int64_t deadline;
  if (ns >= static_cast<double>(std::numeric_limits<std::int64_t>::max()) / 2)
    deadline = std::numeric_limits<std::int64_t>::max();
  else
    deadline = now_ns() + static_cast<std::int64_t>(ns);
  // 0 is the "disarmed" sentinel; an adversarially exact hit just moves the
  // deadline by one nanosecond.
  if (deadline == 0) deadline = 1;
  deadline_ns_.store(deadline, std::memory_order_relaxed);
}

bool JobControl::deadline_expired() const {
  const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
  if (d != 0 && now_ns() >= d) return true;
  return parent_ != nullptr && parent_->deadline_expired();
}

double JobControl::seconds_remaining() const {
  const std::int64_t d = deadline_ns_.load(std::memory_order_relaxed);
  double remaining = std::numeric_limits<double>::infinity();
  if (d != 0) remaining = static_cast<double>(d - now_ns()) * 1e-9;
  if (parent_ != nullptr)
    remaining = std::min(remaining, parent_->seconds_remaining());
  return remaining;
}

const char* to_string(JobControl::StopReason reason) {
  switch (reason) {
    case JobControl::StopReason::kNone:
      return "";
    case JobControl::StopReason::kCancelled:
      return "CANCELLED";
    case JobControl::StopReason::kDeadline:
      return "DEADLINE";
  }
  return "";
}

}  // namespace scs
