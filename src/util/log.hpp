// Minimal leveled logging to stderr.
//
// Verbosity is controlled by the SCS_LOG environment variable
// (0 = silent, 1 = info, 2 = debug). Benchmarks and examples use info-level
// progress lines; the test suite runs silent by default.
#pragma once

#include <sstream>
#include <string>

namespace scs {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

/// Current verbosity (initialized from SCS_LOG on first use).
LogLevel log_level();

/// Override the verbosity programmatically (takes precedence over SCS_LOG).
void set_log_level(LogLevel level);

/// Emit one line to stderr if `level` is enabled.
void log_line(LogLevel level, const std::string& message);

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() >= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() >= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

}  // namespace scs
