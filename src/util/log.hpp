// Minimal leveled logging to stderr.
//
// Verbosity is controlled by the SCS_LOG environment variable
// (0 = silent, 1 = info, 2 = debug). Benchmarks and examples use info-level
// progress lines; the test suite runs silent by default.
//
// Concurrency: log_line formats the whole line (prefix, tag, message,
// newline) into one string and performs a single locked write, so lines
// from the synthesize_many fan-out never interleave mid-line. Each line is
// prefixed with the calling thread's tag -- the benchmark name inside a
// pipeline run (LogTagScope), or "w<N>" on pool workers -- so concurrent
// output stays attributable.
#pragma once

#include <sstream>
#include <string>

namespace scs {

enum class LogLevel { kSilent = 0, kInfo = 1, kDebug = 2 };

/// Current verbosity (initialized from SCS_LOG on first use).
LogLevel log_level();

/// Override the verbosity programmatically (takes precedence over SCS_LOG).
void set_log_level(LogLevel level);

/// Emit one line to stderr if `level` is enabled. The write is atomic with
/// respect to other log_line calls (single locked write of a fully
/// formatted line).
void log_line(LogLevel level, const std::string& message);

/// Thread-local line tag ("" = untagged). Workers set "w<N>"; the pipeline
/// scopes the benchmark name around each run.
void set_log_tag(std::string tag);
const std::string& log_tag();

/// RAII: swap the calling thread's tag, restore the previous one on exit.
class LogTagScope {
 public:
  explicit LogTagScope(std::string tag);
  ~LogTagScope();
  LogTagScope(const LogTagScope&) = delete;
  LogTagScope& operator=(const LogTagScope&) = delete;

 private:
  std::string prev_;
};

namespace detail {
template <typename... Args>
std::string concat(Args&&... args) {
  std::ostringstream os;
  (os << ... << args);
  return os.str();
}
}  // namespace detail

template <typename... Args>
void log_info(Args&&... args) {
  if (log_level() >= LogLevel::kInfo)
    log_line(LogLevel::kInfo, detail::concat(std::forward<Args>(args)...));
}

template <typename... Args>
void log_debug(Args&&... args) {
  if (log_level() >= LogLevel::kDebug)
    log_line(LogLevel::kDebug, detail::concat(std::forward<Args>(args)...));
}

}  // namespace scs
