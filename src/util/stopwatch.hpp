// Wall-clock stopwatch used to report the T_p / T_n timing columns of the
// paper's tables and to enforce verification time budgets.
#pragma once

#include <chrono>

namespace scs {

class Stopwatch {
 public:
  Stopwatch();

  /// Restart the stopwatch.
  void reset();

  /// Seconds elapsed since construction / last reset.
  double seconds() const;

  /// Milliseconds elapsed since construction / last reset.
  double milliseconds() const;

 private:
  std::chrono::steady_clock::time_point start_;
};

}  // namespace scs
