// Lightweight runtime-checking macros used across the library.
//
// SCS_REQUIRE is for preconditions on public API arguments (always on);
// SCS_ASSERT is for internal invariants (also always on -- the numerical
// kernels here are small enough that the cost is negligible, and a silent
// invariant violation in a solver is far more expensive than the check).
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace scs {

/// Error thrown when a public-API precondition is violated.
class PreconditionError : public std::invalid_argument {
 public:
  explicit PreconditionError(const std::string& what)
      : std::invalid_argument(what) {}
};

/// Error thrown when an internal invariant is violated (a library bug or a
/// numerically hopeless input).
class InternalError : public std::logic_error {
 public:
  explicit InternalError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void fail_require(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "precondition failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " -- " << msg;
  throw PreconditionError(os.str());
}

[[noreturn]] inline void fail_assert(const char* expr, const char* file,
                                     int line, const std::string& msg) {
  std::ostringstream os;
  os << "internal invariant failed: (" << expr << ") at " << file << ":"
     << line;
  if (!msg.empty()) os << " -- " << msg;
  throw InternalError(os.str());
}
}  // namespace detail

}  // namespace scs

#define SCS_REQUIRE(cond, msg)                                         \
  do {                                                                 \
    if (!(cond)) ::scs::detail::fail_require(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)

#define SCS_ASSERT(cond, msg)                                          \
  do {                                                                 \
    if (!(cond)) ::scs::detail::fail_assert(#cond, __FILE__, __LINE__, (msg)); \
  } while (0)
