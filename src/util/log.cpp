#include "util/log.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>
#include <optional>

namespace scs {

namespace {
std::optional<LogLevel>& override_level() {
  static std::optional<LogLevel> level;
  return level;
}

std::string& tls_log_tag() {
  thread_local std::string tag;
  return tag;
}

std::mutex& log_mutex() {
  static std::mutex mu;
  return mu;
}

LogLevel env_level() {
  const char* env = std::getenv("SCS_LOG");
  if (env == nullptr) return LogLevel::kSilent;
  const int v = std::atoi(env);
  if (v <= 0) return LogLevel::kSilent;
  if (v == 1) return LogLevel::kInfo;
  return LogLevel::kDebug;
}
}  // namespace

LogLevel log_level() {
  if (override_level().has_value()) return *override_level();
  static const LogLevel from_env = env_level();
  return from_env;
}

void set_log_level(LogLevel level) { override_level() = level; }

void log_line(LogLevel level, const std::string& message) {
  if (log_level() < level) return;
  // Format the complete line first, then emit it with one locked write:
  // three separate stream insertions tear under the synthesize_many
  // fan-out, interleaving fragments of concurrent lines.
  std::string line = "[scs]";
  const std::string& tag = tls_log_tag();
  if (!tag.empty()) {
    line += '[';
    line += tag;
    line += ']';
  }
  line += ' ';
  line += message;
  line += '\n';
  std::lock_guard<std::mutex> lk(log_mutex());
  std::cerr.write(line.data(), static_cast<std::streamsize>(line.size()));
}

void set_log_tag(std::string tag) { tls_log_tag() = std::move(tag); }

const std::string& log_tag() { return tls_log_tag(); }

LogTagScope::LogTagScope(std::string tag) : prev_(tls_log_tag()) {
  tls_log_tag() = std::move(tag);
}

LogTagScope::~LogTagScope() { tls_log_tag() = std::move(prev_); }

}  // namespace scs
