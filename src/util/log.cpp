#include "util/log.hpp"

#include <cstdlib>
#include <iostream>
#include <optional>

namespace scs {

namespace {
std::optional<LogLevel>& override_level() {
  static std::optional<LogLevel> level;
  return level;
}

LogLevel env_level() {
  const char* env = std::getenv("SCS_LOG");
  if (env == nullptr) return LogLevel::kSilent;
  const int v = std::atoi(env);
  if (v <= 0) return LogLevel::kSilent;
  if (v == 1) return LogLevel::kInfo;
  return LogLevel::kDebug;
}
}  // namespace

LogLevel log_level() {
  if (override_level().has_value()) return *override_level();
  static const LogLevel from_env = env_level();
  return from_env;
}

void set_log_level(LogLevel level) { override_level() = level; }

void log_line(LogLevel level, const std::string& message) {
  if (log_level() < level) return;
  std::cerr << "[scs] " << message << '\n';
}

}  // namespace scs
