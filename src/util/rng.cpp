#include "util/rng.hpp"

#include "util/check.hpp"

namespace scs {

Rng::Rng(std::uint64_t seed) : engine_(seed) {}

double Rng::uniform(double lo, double hi) {
  SCS_REQUIRE(lo <= hi, "uniform: lo must be <= hi");
  std::uniform_real_distribution<double> dist(lo, hi);
  return dist(engine_);
}

double Rng::uniform01() { return uniform(0.0, 1.0); }

double Rng::normal(double mean, double stddev) {
  SCS_REQUIRE(stddev >= 0.0, "normal: stddev must be >= 0");
  std::normal_distribution<double> dist(mean, stddev);
  return dist(engine_);
}

int Rng::uniform_int(int lo, int hi) {
  SCS_REQUIRE(lo <= hi, "uniform_int: lo must be <= hi");
  std::uniform_int_distribution<int> dist(lo, hi);
  return dist(engine_);
}

std::size_t Rng::index(std::size_t n) {
  SCS_REQUIRE(n > 0, "index: n must be positive");
  std::uniform_int_distribution<std::size_t> dist(0, n - 1);
  return dist(engine_);
}

std::vector<double> Rng::uniform_vector(std::size_t n, double lo, double hi) {
  std::vector<double> out(n);
  for (auto& v : out) v = uniform(lo, hi);
  return out;
}

std::vector<double> Rng::normal_vector(std::size_t n, double mean,
                                       double stddev) {
  std::vector<double> out(n);
  for (auto& v : out) v = normal(mean, stddev);
  return out;
}

Rng Rng::fork() {
  // Draw a fresh 64-bit seed; the child stream is then independent of
  // subsequent draws from this generator.
  return Rng(engine_());
}

std::vector<Rng> Rng::fork_streams(std::size_t n) {
  std::vector<Rng> out;
  out.reserve(n);
  for (std::size_t i = 0; i < n; ++i) out.push_back(fork());
  return out;
}

}  // namespace scs
