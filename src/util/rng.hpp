// Deterministic random number generation.
//
// Every stochastic component of the pipeline (RL exploration, scenario
// sampling, SOS lambda initialization, ...) draws from an explicitly passed
// Rng so that runs are reproducible from a single seed.
#pragma once

#include <cstdint>
#include <random>
#include <vector>

namespace scs {

/// A seeded pseudo-random generator with the handful of distributions the
/// library needs. Thin wrapper over std::mt19937_64; copyable so call sites
/// can fork deterministic sub-streams.
class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0);

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Normal sample with the given mean / standard deviation.
  double normal(double mean = 0.0, double stddev = 1.0);

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi);

  /// Uniform index in [0, n).
  std::size_t index(std::size_t n);

  /// A vector of n i.i.d. uniform samples in [lo, hi).
  std::vector<double> uniform_vector(std::size_t n, double lo, double hi);

  /// A vector of n i.i.d. normal samples.
  std::vector<double> normal_vector(std::size_t n, double mean = 0.0,
                                    double stddev = 1.0);

  /// Derive an independent child generator (for deterministic sub-streams).
  Rng fork();

  /// Derive `n` independent child generators, forked in order. This is the
  /// deterministic-parallelism workhorse: fork one substream per fixed-size
  /// work chunk (serially, before fanning out), and the chunk results are
  /// bitwise-identical no matter how many threads later consume them.
  std::vector<Rng> fork_streams(std::size_t n);

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace scs
