// Deterministic fault injection for the numeric stack.
//
// The robustness layer (math/robust_solve, opt/sdp retries, pac degradation)
// exists to survive ill-conditioned instances that are rare in the benchmark
// suite. The FaultInjector manufactures those instances on demand so the
// recovery paths are *testable*: it can sabotage factorization pivots, freeze
// interior-point progress, and corrupt values crossing layer boundaries with
// NaNs -- all from one seeded stream, so a failing run replays exactly.
//
// Activation:
//   - env var SCS_FAULT_SEED=<uint64> arms the injector at process start;
//     SCS_FAULT_RATE (default 0.05), SCS_FAULT_MAX_FIRES (default 8 per
//     site), and SCS_FAULT_SITES (comma list of
//     "cholesky,lu,sdp,nan,store_corrupt"; default all) tune it;
//   - tests arm it programmatically with arm() / disarm().
//
// Cost when disarmed: one relaxed atomic load per interrogation site, no
// locks, no RNG draws. Hot loops guard with `if (fault_injection_enabled())`.
//
// Firing is budgeted: each site stops injecting after `max_fires` hits, which
// models transient faults (a sabotaged pivot on the first attempt, a clean
// retry) rather than a permanently broken machine.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <random>
#include <string>

namespace scs {

enum class FaultSite : int {
  kCholeskyPivot = 0,  // drive a diagonal pivot negative before the sqrt
  kLuPivot,            // zero the selected pivot (forces the singular path)
  kSdpStall,           // suppress an interior-point step (forces stall)
  kNanBoundary,        // replace a value crossing a layer boundary with NaN
  kStoreCorrupt,       // flip a byte in a loaded artifact-store blob
  kCount,
};

/// Short site name used by SCS_FAULT_SITES and log lines.
const char* to_string(FaultSite site);

class FaultInjector {
 public:
  /// Process-wide instance. First access reads the SCS_FAULT_* environment.
  static FaultInjector& instance();

  /// True when any site may fire. This is the only call allowed on hot paths
  /// without the enabled() guard; it is a single relaxed load.
  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// Arm programmatically (tests): deterministic stream from `seed`, firing
  /// probability `rate` per probe, at most `max_fires` injections per site.
  /// All sites are armed; narrow with arm_site().
  void arm(std::uint64_t seed, double rate, std::uint64_t max_fires = 8);

  /// Enable or disable a single site (the injector must be armed to fire).
  void arm_site(FaultSite site, bool on);

  /// Disarm everything and clear counters.
  void disarm();

  /// Probe a site: true when a fault fires now. Draws from the shared
  /// deterministic stream (mutex-guarded; only reached when armed).
  bool should_fire(FaultSite site);

  /// Pivot sabotage: when firing, returns a value that defeats the
  /// factorization's pivot test (negative for Cholesky, zero for LU);
  /// otherwise returns `value` unchanged.
  double perturb_pivot(FaultSite site, double value);

  /// Boundary corruption: when firing, returns quiet NaN instead of `value`.
  double corrupt(FaultSite site, double value);

  /// Telemetry for tests and postmortems.
  std::uint64_t fires(FaultSite site) const;
  std::uint64_t probes(FaultSite site) const;

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

 private:
  FaultInjector();
  void configure_from_env();

  static constexpr int kNumSites = static_cast<int>(FaultSite::kCount);

  std::atomic<bool> enabled_{false};
  std::array<std::atomic<bool>, kNumSites> site_on_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> fires_{};
  std::array<std::atomic<std::uint64_t>, kNumSites> probes_{};
  std::uint64_t max_fires_ = 0;
  double rate_ = 0.0;
  std::mutex mu_;  // guards engine_
  std::mt19937_64 engine_;
};

/// Free-function guard for hot paths.
inline bool fault_injection_enabled() {
  return FaultInjector::instance().enabled();
}

}  // namespace scs
